module pmedic

go 1.22
