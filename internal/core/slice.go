package core

// Slice is a restriction of a finalized Problem to a subset of its switches
// and controllers: the sub-problem keeps exactly the eligible pairs at kept
// switches, the flows owning at least one such pair, and the delay/capacity
// rows of the kept indices. The hierarchical planner (internal/region) solves
// one Slice per region against region-local controller capacity and merges
// the sub-solutions through the index maps kept here.
//
// Slicing reuses the parent's CSR machinery: kept switches are walked
// ascending and each switch's pair list is already flow-ascending, so the
// gathered pairs arrive in the (Switch, Flow) order Finalize expects without
// any sorting. A slice that keeps everything reproduces the parent problem
// content field for field, which is what makes the K=1 hierarchical solve
// byte-identical to flat PM.
type Slice struct {
	// Sub is the finalized sub-problem over dense local indices.
	Sub *Problem
	// Switches[si] is the parent switch index of local switch si, ascending.
	Switches []int
	// Controllers[sj] is the parent controller index of local controller sj,
	// ascending.
	Controllers []int
	// Flows[sl] is the parent flow index of local flow sl, ascending. Nil
	// means the identity mapping (every parent flow survived).
	Flows []int
	// PairIndex[sk] is the parent pair index of local pair sk. Nil means the
	// identity mapping (every parent pair survived).
	PairIndex []int
}

// Slice restricts p to the switches and controllers marked in keepSwitch and
// keepController (indexed like p's switches/controllers). Flows are derived:
// a flow joins the slice iff it has an eligible pair at a kept switch. The
// returned sub-problem is finalized, inherits Lambda, and recomputes its own
// ideal delay budget over the kept delay columns.
//
// Slice returns (nil, nil) when no eligible pair survives the restriction or
// no controller is kept — there is nothing to solve; callers skip the region.
func (p *Problem) Slice(keepSwitch, keepController []bool) (*Slice, error) {
	if !p.finalized() {
		return nil, ErrInvalidProblem
	}
	sl := &Slice{}
	swLocal := make([]int, p.NumSwitches)
	for i := range swLocal {
		swLocal[i] = -1
		if keepSwitch[i] {
			swLocal[i] = len(sl.Switches)
			sl.Switches = append(sl.Switches, i)
		}
	}
	for j := 0; j < p.NumControllers; j++ {
		if keepController[j] {
			sl.Controllers = append(sl.Controllers, j)
		}
	}
	if len(sl.Switches) == 0 || len(sl.Controllers) == 0 {
		return nil, nil
	}
	if len(sl.Switches) == p.NumSwitches {
		allFlows := true
		for l := 0; l < p.NumFlows; l++ {
			if p.flowPairOff[l+1] == p.flowPairOff[l] {
				allFlows = false
				break
			}
		}
		if allFlows {
			return p.sliceAllSwitches(sl)
		}
	}

	// First pass: mark surviving flows; second pass assigns their local IDs
	// ascending so local flow order mirrors the parent's.
	flowLocal := make([]int, p.NumFlows)
	for l := range flowLocal {
		flowLocal[l] = -1
	}
	numPairs := 0
	for _, i := range sl.Switches {
		for _, k := range p.PairsAtSwitch(i) {
			flowLocal[p.Pairs[k].Flow] = 0
			numPairs++
		}
	}
	if numPairs == 0 {
		return nil, nil
	}
	for l := 0; l < p.NumFlows; l++ {
		if flowLocal[l] == 0 {
			flowLocal[l] = len(sl.Flows)
			sl.Flows = append(sl.Flows, l)
		} else {
			flowLocal[l] = -1
		}
	}

	sub := &Problem{
		NumSwitches:    len(sl.Switches),
		NumControllers: len(sl.Controllers),
		NumFlows:       len(sl.Flows),
		Lambda:         p.Lambda,
	}
	sub.Pairs = make([]Pair, 0, numPairs)
	sl.PairIndex = make([]int, 0, numPairs)
	for si, i := range sl.Switches {
		for _, k := range p.PairsAtSwitch(i) {
			pr := p.Pairs[k]
			sub.Pairs = append(sub.Pairs, Pair{Switch: si, Flow: flowLocal[pr.Flow], PBar: pr.PBar})
			sl.PairIndex = append(sl.PairIndex, k)
		}
	}
	sub.Gamma = make([]int, sub.NumSwitches)
	backing := make([]float64, sub.NumSwitches*sub.NumControllers)
	sub.Delay = make([][]float64, sub.NumSwitches)
	for si, i := range sl.Switches {
		sub.Gamma[si] = p.Gamma[i]
		row := backing[si*sub.NumControllers : (si+1)*sub.NumControllers : (si+1)*sub.NumControllers]
		for sj, j := range sl.Controllers {
			row[sj] = p.Delay[i][j]
		}
		sub.Delay[si] = row
	}
	sub.Rest = make([]int, sub.NumControllers)
	for sj, j := range sl.Controllers {
		sub.Rest[sj] = p.Rest[j]
	}
	if err := sub.Finalize(); err != nil {
		return nil, err
	}
	sub.BudgetMs = sub.IdealDelayBudget()
	// When the parent's class index is already computed, derive the slice's
	// from it instead of letting the solver re-hash the surviving flows.
	sub.deriveSliceClasses(p, swLocal, flowLocal)
	sl.Sub = sub
	return sl, nil
}

// sliceAllSwitches is the fast path for a restriction that keeps every switch
// (hence every pair and, when no flow is pairless, every flow): only the
// controller set shrinks, so the sub-problem shares the parent's pair slice
// and CSR indexes outright and just restricts the delay columns and
// capacities. The depth-1 hierarchical case hits this on every solve — a
// failed controller's whole domain lives in one region — and re-gathering
// hundreds of thousands of pairs there would cost more than the solve itself.
func (p *Problem) sliceAllSwitches(sl *Slice) (*Slice, error) {
	sub := &Problem{
		NumSwitches:     p.NumSwitches,
		NumControllers:  len(sl.Controllers),
		NumFlows:        p.NumFlows,
		Pairs:           p.Pairs,
		Gamma:           p.Gamma,
		Lambda:          p.Lambda,
		TotalIterations: p.TotalIterations,
		swPairs:         p.swPairs,
		swPairOff:       p.swPairOff,
		flowPairs:       p.flowPairs,
		flowPairOff:     p.flowPairOff,
		// The class index depends only on the pairs, never on controllers, so
		// a parent-computed index carries over; a nil one is computed lazily
		// on the sub alone.
		classes: p.classes,
	}
	backing := make([]float64, sub.NumSwitches*sub.NumControllers)
	sub.Delay = make([][]float64, sub.NumSwitches)
	for i := 0; i < sub.NumSwitches; i++ {
		row := backing[i*sub.NumControllers : (i+1)*sub.NumControllers : (i+1)*sub.NumControllers]
		for sj, j := range sl.Controllers {
			row[sj] = p.Delay[i][j]
		}
		sub.Delay[i] = row
	}
	sub.Rest = make([]int, sub.NumControllers)
	for sj, j := range sl.Controllers {
		sub.Rest[sj] = p.Rest[j]
	}
	sub.BudgetMs = sub.IdealDelayBudget()
	sl.Sub = sub
	// Flows and PairIndex stay nil: identity mappings.
	return sl, nil
}

// MergeInto copies a sub-solution for this slice into a parent-indexed
// solution: switch mappings translate through Switches/Controllers and pair
// activations through PairIndex (nil = identity). Indices outside the slice
// are untouched, so disjoint slices merge into one parent solution in any
// order.
func (sl *Slice) MergeInto(parent *Solution, sub *Solution) {
	for si, i := range sl.Switches {
		if sj := sub.SwitchController[si]; sj >= 0 {
			parent.SwitchController[i] = sl.Controllers[sj]
		}
	}
	if sl.PairIndex == nil {
		for k, on := range sub.Active {
			if on {
				parent.Active[k] = true
			}
		}
		return
	}
	for sk, k := range sl.PairIndex {
		if sub.Active[sk] {
			parent.Active[k] = true
		}
	}
}
