package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomProblem generates a valid random instance for property tests.
func randomProblem(rng *rand.Rand) *Problem {
	n := 1 + rng.Intn(6)
	m := 1 + rng.Intn(4)
	l := 1 + rng.Intn(30)
	p := &Problem{
		NumSwitches:    n,
		NumControllers: m,
		NumFlows:       l,
		Rest:           make([]int, m),
		Gamma:          make([]int, n),
		Delay:          make([][]float64, n),
	}
	for j := range p.Rest {
		p.Rest[j] = rng.Intn(40)
	}
	for i := range p.Delay {
		row := make([]float64, m)
		for j := range row {
			row[j] = 0.1 + rng.Float64()*10
		}
		p.Delay[i] = row
	}
	// Every flow gets at least one pair so the instance is "recoverable" in
	// the scenario-builder sense.
	for fl := 0; fl < l; fl++ {
		p.Pairs = append(p.Pairs, Pair{
			Switch: rng.Intn(n),
			Flow:   fl,
			PBar:   2 + rng.Intn(7),
		})
	}
	extra := rng.Intn(3 * l)
	for e := 0; e < extra; e++ {
		p.Pairs = append(p.Pairs, Pair{
			Switch: rng.Intn(n),
			Flow:   rng.Intn(l),
			PBar:   2 + rng.Intn(7),
		})
	}
	if err := p.Finalize(); err != nil {
		panic(err)
	}
	for i := range p.Gamma {
		p.Gamma[i] = p.EligiblePairCount(i) + rng.Intn(10)
	}
	p.BudgetMs = p.IdealDelayBudget()
	return p
}

func TestPMTiny(t *testing.T) {
	p := tinyProblem(t)
	s, err := PM(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(p); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	rep, err := Evaluate(p, s, EvaluateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Capacity 2+2 covers all four pairs: every flow recovered, total 11.
	if rep.RecoveredFlows != 3 {
		t.Fatalf("recovered = %d, want 3", rep.RecoveredFlows)
	}
	if rep.TotalProg != 11 {
		t.Fatalf("total = %d, want 11 (all pairs active)", rep.TotalProg)
	}
	if rep.MinProg != 2 {
		t.Fatalf("min = %d, want 2", rep.MinProg)
	}
}

func TestPMRequiresFinalizedProblem(t *testing.T) {
	p := &Problem{NumSwitches: 1, NumControllers: 1, NumFlows: 1}
	if _, err := PM(p); err == nil {
		t.Fatal("PM must reject unfinalized problems")
	}
	if _, err := RetroFlow(p); err == nil {
		t.Fatal("RetroFlow must reject unfinalized problems")
	}
	if _, err := PG(p); err == nil {
		t.Fatal("PG must reject unfinalized problems")
	}
}

func TestPMDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomProblem(rng)
	a, err := PM(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PM(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.SwitchController, b.SwitchController) || !reflect.DeepEqual(a.Active, b.Active) {
		t.Fatal("PM is not deterministic")
	}
}

func TestPMAbundantCapacityActivatesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(rng)
		for j := range p.Rest {
			p.Rest[j] = len(p.Pairs) + 1
		}
		p.BudgetMs = 1e18 // delay never binds
		s, err := PM(p)
		if err != nil {
			t.Fatal(err)
		}
		for k, on := range s.Active {
			if !on {
				t.Fatalf("trial %d: pair %d inactive despite abundant capacity", trial, k)
			}
		}
	}
}

// TestAlgorithmsProperties checks the invariants every solver must uphold on
// random instances: feasibility, consistent accounting, and the structural
// contract of each solution family.
func TestAlgorithmsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		p := randomProblem(rng)
		pm, err := PM(p)
		if err != nil {
			t.Fatalf("trial %d: PM: %v", trial, err)
		}
		rf, err := RetroFlow(p)
		if err != nil {
			t.Fatalf("trial %d: RetroFlow: %v", trial, err)
		}
		pg, err := PG(p)
		if err != nil {
			t.Fatalf("trial %d: PG: %v", trial, err)
		}
		for _, s := range []*Solution{pm, rf, pg} {
			if err := s.Verify(p); err != nil {
				t.Fatalf("trial %d: %s: %v", trial, s.Algorithm, err)
			}
		}
		// RetroFlow contract: every eligible pair at a mapped switch is
		// active; none at unmapped switches.
		for k, pr := range p.Pairs {
			mapped := rf.SwitchController[pr.Switch] >= 0
			if mapped != rf.Active[k] {
				t.Fatalf("trial %d: RetroFlow pair %d active=%v at mapped=%v switch",
					trial, k, rf.Active[k], mapped)
			}
		}
		// PG contract: flow-level mapping, every active pair charged.
		if pg.PairController == nil {
			t.Fatalf("trial %d: PG must use PairController", trial)
		}
		for k, on := range pg.Active {
			if on && pg.PairController[k] < 0 {
				t.Fatalf("trial %d: PG active pair %d uncharged", trial, k)
			}
			if !on && pg.PairController[k] >= 0 {
				t.Fatalf("trial %d: PG inactive pair %d charged", trial, k)
			}
		}
		// PG recovers at least as many flows as any switch-level solution:
		// its feasible set strictly contains theirs.
		pgRep, err := Evaluate(p, pg, EvaluateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		pmRep, err := Evaluate(p, pm, EvaluateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rfRep, err := Evaluate(p, rf, EvaluateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if pgRep.RecoveredFlows < rfRep.RecoveredFlows {
			t.Fatalf("trial %d: PG recovered %d < RetroFlow %d",
				trial, pgRep.RecoveredFlows, rfRep.RecoveredFlows)
		}
		if pmRep.TotalProg < 0 || pmRep.MinProg < 0 {
			t.Fatalf("trial %d: negative metrics", trial)
		}
	}
}

func TestRetroFlowRespectsGamma(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		p := randomProblem(rng)
		s, err := RetroFlow(p)
		if err != nil {
			t.Fatal(err)
		}
		loads, err := s.ControllerLoads(p)
		if err != nil {
			t.Fatal(err)
		}
		for j, load := range loads {
			if load > p.Rest[j] {
				t.Fatalf("trial %d: controller %d overloaded: %d > %d", trial, j, load, p.Rest[j])
			}
		}
	}
}

func TestRetroFlowCannotMapOversizedSwitch(t *testing.T) {
	// One switch whose γ exceeds every controller's residual: RetroFlow must
	// leave it in legacy mode, PM must still recover its flows per-pair.
	p := &Problem{
		NumSwitches:    1,
		NumControllers: 2,
		NumFlows:       3,
		Rest:           []int{5, 4},
		Gamma:          []int{100},
		Delay:          [][]float64{{1, 2}},
		Pairs: []Pair{
			{Switch: 0, Flow: 0, PBar: 2},
			{Switch: 0, Flow: 1, PBar: 3},
			{Switch: 0, Flow: 2, PBar: 2},
		},
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	p.BudgetMs = p.IdealDelayBudget()

	rf, err := RetroFlow(p)
	if err != nil {
		t.Fatal(err)
	}
	if rf.SwitchController[0] != -1 {
		t.Fatal("RetroFlow mapped a switch exceeding every residual capacity")
	}
	rfRep, err := Evaluate(p, rf, EvaluateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rfRep.RecoveredFlows != 0 {
		t.Fatalf("RetroFlow recovered %d flows, want 0", rfRep.RecoveredFlows)
	}

	pm, err := PM(p)
	if err != nil {
		t.Fatal(err)
	}
	pmRep, err := Evaluate(p, pm, EvaluateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pmRep.RecoveredFlows != 3 {
		t.Fatalf("PM recovered %d flows, want 3 (the paper's headline mechanism)", pmRep.RecoveredFlows)
	}
}

func TestPGBalancesBeforeMaximizing(t *testing.T) {
	// Capacity 2 and flows {0, 1} each with one pair, flow 0's p̄ smaller,
	// plus a second high-p̄ pair for flow 1. Balance-first must cover both
	// flows before upgrading flow 1.
	p := &Problem{
		NumSwitches:    2,
		NumControllers: 1,
		NumFlows:       2,
		Rest:           []int{2},
		Gamma:          []int{5, 5},
		Delay:          [][]float64{{1}, {1}},
		Pairs: []Pair{
			{Switch: 0, Flow: 0, PBar: 2},
			{Switch: 0, Flow: 1, PBar: 3},
			{Switch: 1, Flow: 1, PBar: 8},
		},
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	p.BudgetMs = p.IdealDelayBudget()
	s, err := PG(p)
	if err != nil {
		t.Fatal(err)
	}
	pro := s.FlowProgrammability(p)
	if pro[0] == 0 {
		t.Fatalf("PG starved flow 0: pro=%v", pro)
	}
}

func TestPMRuntimeRecorded(t *testing.T) {
	p := tinyProblem(t)
	s, err := PM(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Runtime <= 0 {
		t.Fatal("Runtime not recorded")
	}
}
