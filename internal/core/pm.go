package core

import (
	"fmt"
	"time"
)

// PM solves the FMSSM instance with the paper's Algorithm 1: iterative
// balanced recovery of the least-programmable flows followed by a final pass
// that spends leftover controller capacity on total programmability.
//
// Two implementations share this entry point and produce byte-identical
// Solutions: the per-flow path (pmFlat, this file) and the class-aggregated
// path (pm_agg.go), which plans over flow equivalence classes and is chosen
// for large instances whose flows compress well (classes.go). The agg ≡ flat
// equivalence is enforced by the randomized property test in agg_test.go.
//
// The paper's listing leaves two orders unspecified and contains two evident
// slips; this implementation resolves them as documented in DESIGN.md §7:
//
//   - The controller scan of lines 20–24 stops at the first (nearest)
//     controller with sufficient capacity (the listing forgets the break).
//   - A sweep in which no test-set switch hosts any least-programmability
//     flow fast-forwards to the next iteration instead of dereferencing a
//     NULL switch index.
//   - Within a switch, floor flows are activated scarcity-first (fewest
//     remaining alternative pairs first), so flows whose only eligible pair
//     sits at an oversubscribed hub switch are not starved by flows that
//     have alternatives elsewhere.
//   - Before the final utilization pass, switches whose controller ran dry
//     while they still had inactive pairs are remapped — whole, preserving
//     the switch-level mapping constraint — to the controller that can
//     absorb their activated load and fund the most additional pairs. This
//     is what keeps PM's total programmability near PG's (the paper's
//     claim) when geography concentrates mappings on few controllers.
func PM(p *Problem) (*Solution, error) {
	if !p.finalized() {
		return nil, fmt.Errorf("%w: problem not finalized", ErrInvalidProblem)
	}
	if ci := p.aggClassIndex(); ci != nil {
		return pmAgg(p, ci)
	}
	return pmFlat(p)
}

// aggMinFlows is the instance size below which aggregation cannot pay for
// its class-index and group bookkeeping.
const aggMinFlows = 1024

// aggClassIndex returns the class index when the aggregated solver paths
// should run: enough flows to matter and at least 2× signature compression.
func (p *Problem) aggClassIndex() *classIndex {
	if p.NumFlows < aggMinFlows {
		return nil
	}
	ci := p.classIndexOf()
	if ci == nil || ci.numClasses*2 > p.NumFlows {
		return nil
	}
	return ci
}

// pmFlat is the per-flow reference implementation of PM.
func pmFlat(p *Problem) (*Solution, error) {
	start := time.Now()
	s := NewSolution("PM", p)
	sc := scratchPool.Get().(*solverScratch)
	defer scratchPool.Put(sc)

	rest := grabInts(&sc.rest, p.NumControllers)
	copy(rest, p.Rest)
	h := grabInts(&sc.h, p.NumFlows) // temporary programmability per flow
	// alternatives[l] counts flow l's not-yet-activated pairs; it drives the
	// scarcity-first activation order.
	alternatives := grabInts(&sc.alternatives, p.NumFlows)
	for _, pr := range p.Pairs {
		alternatives[pr.Flow]++
	}

	inTestSet := grabBools(&sc.inTestSet, p.NumSwitches)
	resetTestSet := func() {
		for i := range inTestSet {
			inTestSet[i] = true
		}
	}
	resetTestSet()
	remaining := p.NumSwitches
	sigma := 0
	testCount := 0

	// Pooled nearest-controller cache (delay-ascending order per switch).
	grabInts(&sc.nearestBuf, p.NumSwitches*p.NumControllers)
	grabBools(&sc.nearestSet, p.NumSwitches)

	minH := func() int {
		m := int(^uint(0) >> 1)
		for _, v := range h {
			if v < m {
				m = v
			}
		}
		if len(h) == 0 {
			return 0
		}
		return m
	}

	// floorPairs[i] counts switch i's pairs whose flow still sits at the
	// current floor σ — the testNum of the paper's lines 5–15, maintained
	// incrementally instead of rescanning every switch's pair list on every
	// balancing iteration. It is rebuilt in O(|Pairs|) when σ advances and
	// decremented (across all of a flow's switches) when an activation lifts
	// the flow off the floor; trackFloor turns the upkeep off once the
	// balancing loop is done.
	floorPairs := grabInts(&sc.floorPairs, p.NumSwitches)
	trackFloor := true
	rebuildFloor := func() {
		for i := range floorPairs {
			floorPairs[i] = 0
		}
		for _, pr := range p.Pairs {
			if h[pr.Flow] == sigma {
				floorPairs[pr.Switch]++
			}
		}
	}
	rebuildFloor()

	activate := func(k, j0 int) {
		l := p.Pairs[k].Flow
		if trackFloor && h[l] == sigma {
			// The flow leaves the floor (p̄ >= 2 > 0): every switch hosting
			// one of its pairs loses a floor pair.
			for _, kk := range p.PairsOfFlow(l) {
				floorPairs[p.Pairs[kk].Switch]--
			}
		}
		rest[j0]--
		h[l] += p.Pairs[k].PBar
		alternatives[l]--
		s.Active[k] = true
	}

	scratch := sc.pairScratch[:0]
	for testCount < p.TotalIterations {
		// Find the switch hosting the most flows whose programmability still
		// sits at the current floor σ (lines 5–15).
		delta, i0 := 0, -1
		for i := 0; i < p.NumSwitches; i++ {
			if inTestSet[i] && floorPairs[i] > delta {
				delta, i0 = floorPairs[i], i
			}
		}
		if i0 < 0 {
			// No switch in the test set can lift a floor flow: end the sweep.
			resetTestSet()
			remaining = p.NumSwitches
			testCount++
			sigma = minH()
			rebuildFloor()
			continue
		}

		// Map switch i0 to a controller (lines 17–29).
		j0 := s.SwitchController[i0]
		if j0 < 0 {
			j0 = mapSwitchPM(p, sc, rest, i0)
			s.SwitchController[i0] = j0
		}
		inTestSet[i0] = false
		remaining--

		// Enable SDN mode for floor flows at i0 while capacity lasts
		// (lines 31–36), scarcity-first.
		scratch = scratch[:0]
		for _, k := range p.PairsAtSwitch(i0) {
			if !s.Active[k] && h[p.Pairs[k].Flow] <= sigma {
				scratch = append(scratch, k)
			}
		}
		// Stable insertion sort, alternatives-ascending. The slice holds one
		// switch's floor pairs (a handful), where insertion beats the
		// reflect-backed sort.SliceStable it replaces.
		for a := 1; a < len(scratch); a++ {
			k := scratch[a]
			alt := alternatives[p.Pairs[k].Flow]
			b := a - 1
			for b >= 0 && alternatives[p.Pairs[scratch[b]].Flow] > alt {
				scratch[b+1] = scratch[b]
				b--
			}
			scratch[b+1] = k
		}
		for _, k := range scratch {
			if rest[j0] <= 0 {
				break
			}
			if h[p.Pairs[k].Flow] <= sigma { // may have been lifted this loop
				activate(k, j0)
			}
		}

		if remaining == 0 {
			resetTestSet()
			remaining = p.NumSwitches
			testCount++
			sigma = minH()
			rebuildFloor()
		}
	}
	sc.pairScratch = scratch
	trackFloor = false

	// Final pass: spend leftover capacity on total programmability
	// (lines 42–50), alternating with switch rebalancing until neither makes
	// progress. Capacity is spent on the highest-p̄ pairs first — the order
	// that maximizes obj₂ under scarcity — and the fill runs before each
	// rebalance so the rebalance sees true saturation.
	// Map any switch the balancing loop never selected (all of its flows
	// were lifted elsewhere first) so the utilization pass can reach its
	// pairs: nearest controller with spare capacity, else nearest.
	for i := 0; i < p.NumSwitches; i++ {
		if s.SwitchController[i] >= 0 || p.EligiblePairCount(i) == 0 {
			continue
		}
		s.SwitchController[i] = mapLeftoverSwitch(p, sc, rest, i)
	}

	// Order pairs PBar-descending with a stable counting sort: p̄ values are
	// small (bounded by the path-count cap), and sorting all pairs was the
	// single hottest line of a sweep under a comparison sort.
	byPBar := pairsByPBarDesc(p, sc)
	for round := 0; round < 64; round++ {
		for _, k := range byPBar {
			if s.Active[k] {
				continue
			}
			j0 := s.SwitchController[p.Pairs[k].Switch]
			if j0 >= 0 && rest[j0] > 0 {
				activate(k, j0)
			}
		}
		moved := rebalanceFlat(p, s, sc, rest)
		upgraded := upgrade(p, s, rest, h, alternatives)
		if !moved && !upgraded {
			break
		}
	}

	// Unmap switches that ended up with no active pair: mapping them would
	// consume a controller session for nothing.
	activeAt := grabBools(&sc.activeAt, p.NumSwitches)
	for k, on := range s.Active {
		if on {
			activeAt[p.Pairs[k].Switch] = true
		}
	}
	for i := range s.SwitchController {
		if !activeAt[i] {
			s.SwitchController[i] = -1
		}
	}

	s.Runtime = time.Since(start)
	return s, nil
}

// mapSwitchPM picks the controller for a newly selected switch (Algorithm 1
// lines 17–29): nearest with capacity for the whole switch (γ flows), else
// nearest that can absorb its SDN-mode control cost — the eligible pair
// count, which is what hybrid routing actually charges — else the controller
// with the most residual capacity (line 26).
func mapSwitchPM(p *Problem, sc *solverScratch, rest []int, i0 int) int {
	nearest := sc.nearestRow(p, i0)
	for _, j := range nearest {
		if rest[j] >= p.Gamma[i0] {
			return j
		}
	}
	for _, j := range nearest {
		if rest[j] >= p.EligiblePairCount(i0) {
			return j
		}
	}
	best := -1
	for j := 0; j < p.NumControllers; j++ {
		if best < 0 || rest[j] > rest[best] {
			best = j
		}
	}
	return best
}

// mapLeftoverSwitch maps a switch the balancing loop never selected: the
// nearest controller with spare capacity, else the nearest outright.
func mapLeftoverSwitch(p *Problem, sc *solverScratch, rest []int, i int) int {
	nearest := sc.nearestRow(p, i)
	j0 := nearest[0]
	for _, j := range nearest {
		if rest[j] > 0 {
			j0 = j
			break
		}
	}
	return j0
}

// pairsByPBarDesc orders all pair indices p̄-descending with a stable
// counting sort into the pooled order buffer: within equal p̄ the (Switch,
// Flow) ascending order of Pairs is preserved.
func pairsByPBarDesc(p *Problem, sc *solverScratch) []int {
	maxPBar := 0
	for _, pr := range p.Pairs {
		if pr.PBar > maxPBar {
			maxPBar = pr.PBar
		}
	}
	bucket := grabInts(&sc.bucket, maxPBar+1)
	for _, pr := range p.Pairs {
		bucket[pr.PBar]++
	}
	for v, acc := maxPBar, 0; v >= 0; v-- {
		bucket[v], acc = acc, acc+bucket[v]
	}
	byPBar := grabInts(&sc.order, len(p.Pairs))
	for k, pr := range p.Pairs {
		byPBar[bucket[pr.PBar]] = k
		bucket[pr.PBar]++
	}
	return byPBar
}

// rebalanceFlat counts per-switch activated/inactive pairs from the solution
// and runs the rebalancing loop.
func rebalanceFlat(p *Problem, s *Solution, sc *solverScratch, rest []int) bool {
	activated := grabInts(&sc.activated, p.NumSwitches)
	inactive := grabInts(&sc.inactiveCnt, p.NumSwitches)
	for k, pr := range p.Pairs {
		if s.Active[k] {
			activated[pr.Switch]++
		} else {
			inactive[pr.Switch]++
		}
	}
	return rebalanceCore(p, s, rest, activated, inactive)
}

// rebalanceCore moves whole switches between controllers when the move lets
// more of the switch's inactive pairs be funded — or, gain being equal,
// lowers control delay — keeping the per-switch single-controller mapping.
// activated/inactive hold the per-switch pair counts; rest is updated in
// place; it reports whether any switch moved.
func rebalanceCore(p *Problem, s *Solution, rest, activated, inactive []int) bool {
	anyMoved := false
	// The move budget guards against ping-pong cycles; gains are strict so
	// cycles are not expected, but the bound makes termination unconditional.
	budget := 4 * p.NumSwitches
	for moved := true; moved && budget > 0; {
		moved = false
		budget--
		for i := 0; i < p.NumSwitches; i++ {
			j := s.SwitchController[i]
			if j < 0 || inactive[i] == 0 {
				continue
			}
			// fundable pairs if the switch stays put vs. moves to j'.
			stay := min(rest[j], inactive[i])
			bestJ, bestGain := -1, 0
			for j2 := 0; j2 < p.NumControllers; j2++ {
				if j2 == j || rest[j2] < activated[i] {
					continue
				}
				gain := min(rest[j2]-activated[i], inactive[i]) - stay
				if gain > bestGain ||
					(gain == bestGain && bestJ >= 0 && p.Delay[i][j2] < p.Delay[i][bestJ]) {
					bestGain, bestJ = gain, j2
				}
			}
			if bestJ < 0 {
				continue
			}
			rest[j] += activated[i]
			rest[bestJ] -= activated[i]
			s.SwitchController[i] = bestJ
			moved, anyMoved = true, true
		}
	}
	return anyMoved
}

// upgrade performs capacity-aware pair swaps: if a flow holds an activated
// low-p̄ pair while a higher-p̄ pair of the same flow sits inactive at a
// switch whose controller has room (or at a switch charged to the same
// controller), swap them. Each swap strictly increases total programmability
// without overloading any controller, so the loop terminates. It reports
// whether anything changed.
func upgrade(p *Problem, s *Solution, rest, h, alternatives []int) bool {
	changed := false
	for l := 0; l < p.NumFlows; l++ {
		ks := p.PairsOfFlow(l)
		for {
			worst, best := -1, -1
			for _, k := range ks {
				if s.Active[k] {
					if worst < 0 || p.Pairs[k].PBar < p.Pairs[worst].PBar {
						worst = k
					}
					continue
				}
				jNew := s.SwitchController[p.Pairs[k].Switch]
				if jNew < 0 {
					continue
				}
				if best < 0 || p.Pairs[k].PBar > p.Pairs[best].PBar {
					best = k
				}
			}
			if worst < 0 || best < 0 || p.Pairs[best].PBar <= p.Pairs[worst].PBar {
				break
			}
			jOld := s.SwitchController[p.Pairs[worst].Switch]
			jNew := s.SwitchController[p.Pairs[best].Switch]
			if jNew != jOld && rest[jNew] <= 0 {
				break
			}
			s.Active[worst] = false
			rest[jOld]++
			alternatives[l]++
			s.Active[best] = true
			rest[jNew]--
			alternatives[l]--
			h[l] += p.Pairs[best].PBar - p.Pairs[worst].PBar
			changed = true
		}
	}
	return changed
}
