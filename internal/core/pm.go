package core

import (
	"fmt"
	"time"
)

// PM solves the FMSSM instance with the paper's Algorithm 1: iterative
// balanced recovery of the least-programmable flows followed by a final pass
// that spends leftover controller capacity on total programmability.
//
// The paper's listing leaves two orders unspecified and contains two evident
// slips; this implementation resolves them as documented in DESIGN.md §7:
//
//   - The controller scan of lines 20–24 stops at the first (nearest)
//     controller with sufficient capacity (the listing forgets the break).
//   - A sweep in which no test-set switch hosts any least-programmability
//     flow fast-forwards to the next iteration instead of dereferencing a
//     NULL switch index.
//   - Within a switch, floor flows are activated scarcity-first (fewest
//     remaining alternative pairs first), so flows whose only eligible pair
//     sits at an oversubscribed hub switch are not starved by flows that
//     have alternatives elsewhere.
//   - Before the final utilization pass, switches whose controller ran dry
//     while they still had inactive pairs are remapped — whole, preserving
//     the switch-level mapping constraint — to the controller that can
//     absorb their activated load and fund the most additional pairs. This
//     is what keeps PM's total programmability near PG's (the paper's
//     claim) when geography concentrates mappings on few controllers.
func PM(p *Problem) (*Solution, error) {
	if !p.finalized() {
		return nil, fmt.Errorf("%w: problem not finalized", ErrInvalidProblem)
	}
	start := time.Now()
	s := NewSolution("PM", p)

	rest := make([]int, p.NumControllers)
	copy(rest, p.Rest)
	h := make([]int, p.NumFlows) // temporary programmability per flow
	// alternatives[l] counts flow l's not-yet-activated pairs; it drives the
	// scarcity-first activation order.
	alternatives := make([]int, p.NumFlows)
	for _, pr := range p.Pairs {
		alternatives[pr.Flow]++
	}

	inTestSet := make([]bool, p.NumSwitches)
	resetTestSet := func() {
		for i := range inTestSet {
			inTestSet[i] = true
		}
	}
	resetTestSet()
	remaining := p.NumSwitches
	sigma := 0
	testCount := 0

	// nearest[i] caches the delay-ascending controller order per switch.
	nearest := make([][]int, p.NumSwitches)

	minH := func() int {
		m := int(^uint(0) >> 1)
		for _, v := range h {
			if v < m {
				m = v
			}
		}
		if len(h) == 0 {
			return 0
		}
		return m
	}

	// floorPairs[i] counts switch i's pairs whose flow still sits at the
	// current floor σ — the testNum of the paper's lines 5–15, maintained
	// incrementally instead of rescanning every switch's pair list on every
	// balancing iteration. It is rebuilt in O(|Pairs|) when σ advances and
	// decremented (across all of a flow's switches) when an activation lifts
	// the flow off the floor; trackFloor turns the upkeep off once the
	// balancing loop is done.
	floorPairs := make([]int, p.NumSwitches)
	trackFloor := true
	rebuildFloor := func() {
		for i := range floorPairs {
			floorPairs[i] = 0
		}
		for _, pr := range p.Pairs {
			if h[pr.Flow] == sigma {
				floorPairs[pr.Switch]++
			}
		}
	}
	rebuildFloor()

	// usedMs tracks total control propagation overhead. PM is delay-
	// conscious the way the paper describes — nearest-controller preferences
	// and delay-aware tie-breaks — but the budget G is not a hard cap for
	// the heuristic (the paper's own Fig. 5(f) discussion has PM below G in
	// only 8 of 15 cases); only the exact solver enforces Eq. (14).
	usedMs := 0.0
	activate := func(k, j0 int) {
		usedMs += p.Delay[p.Pairs[k].Switch][j0]
		l := p.Pairs[k].Flow
		if trackFloor && h[l] == sigma {
			// The flow leaves the floor (p̄ >= 2 > 0): every switch hosting
			// one of its pairs loses a floor pair.
			for _, kk := range p.PairsOfFlow(l) {
				floorPairs[p.Pairs[kk].Switch]--
			}
		}
		rest[j0]--
		h[l] += p.Pairs[k].PBar
		alternatives[l]--
		s.Active[k] = true
	}

	scratch := make([]int, 0, 64)
	for testCount < p.TotalIterations {
		// Find the switch hosting the most flows whose programmability still
		// sits at the current floor σ (lines 5–15).
		delta, i0 := 0, -1
		for i := 0; i < p.NumSwitches; i++ {
			if inTestSet[i] && floorPairs[i] > delta {
				delta, i0 = floorPairs[i], i
			}
		}
		if i0 < 0 {
			// No switch in the test set can lift a floor flow: end the sweep.
			resetTestSet()
			remaining = p.NumSwitches
			testCount++
			sigma = minH()
			rebuildFloor()
			continue
		}

		// Map switch i0 to a controller (lines 17–29).
		j0 := s.SwitchController[i0]
		if j0 < 0 {
			if nearest[i0] == nil {
				nearest[i0] = p.NearestControllers(i0)
			}
			for _, j := range nearest[i0] {
				if rest[j] >= p.Gamma[i0] {
					j0 = j
					break
				}
			}
			if j0 < 0 {
				// No controller can absorb the whole switch (γ flows): try
				// the nearest one that can absorb its SDN-mode control cost —
				// the eligible pair count, which is what hybrid routing
				// actually charges — before falling back to the controller
				// with the most residual capacity (line 26).
				for _, j := range nearest[i0] {
					if rest[j] >= p.EligiblePairCount(i0) {
						j0 = j
						break
					}
				}
			}
			if j0 < 0 {
				best := -1
				for j := 0; j < p.NumControllers; j++ {
					if best < 0 || rest[j] > rest[best] {
						best = j
					}
				}
				j0 = best
			}
			s.SwitchController[i0] = j0
		}
		inTestSet[i0] = false
		remaining--

		// Enable SDN mode for floor flows at i0 while capacity lasts
		// (lines 31–36), scarcity-first.
		scratch = scratch[:0]
		for _, k := range p.PairsAtSwitch(i0) {
			if !s.Active[k] && h[p.Pairs[k].Flow] <= sigma {
				scratch = append(scratch, k)
			}
		}
		// Stable insertion sort, alternatives-ascending. The slice holds one
		// switch's floor pairs (a handful), where insertion beats the
		// reflect-backed sort.SliceStable it replaces.
		for a := 1; a < len(scratch); a++ {
			k := scratch[a]
			alt := alternatives[p.Pairs[k].Flow]
			b := a - 1
			for b >= 0 && alternatives[p.Pairs[scratch[b]].Flow] > alt {
				scratch[b+1] = scratch[b]
				b--
			}
			scratch[b+1] = k
		}
		for _, k := range scratch {
			if rest[j0] <= 0 {
				break
			}
			if h[p.Pairs[k].Flow] <= sigma { // may have been lifted this loop
				activate(k, j0)
			}
		}

		if remaining == 0 {
			resetTestSet()
			remaining = p.NumSwitches
			testCount++
			sigma = minH()
			rebuildFloor()
		}
	}
	trackFloor = false

	// Final pass: spend leftover capacity on total programmability
	// (lines 42–50), alternating with switch rebalancing until neither makes
	// progress. Capacity is spent on the highest-p̄ pairs first — the order
	// that maximizes obj₂ under scarcity — and the fill runs before each
	// rebalance so the rebalance sees true saturation.
	// Map any switch the balancing loop never selected (all of its flows
	// were lifted elsewhere first) so the utilization pass can reach its
	// pairs: nearest controller with spare capacity, else nearest.
	for i := 0; i < p.NumSwitches; i++ {
		if s.SwitchController[i] >= 0 || p.EligiblePairCount(i) == 0 {
			continue
		}
		if nearest[i] == nil {
			nearest[i] = p.NearestControllers(i)
		}
		j0 := nearest[i][0]
		for _, j := range nearest[i] {
			if rest[j] > 0 {
				j0 = j
				break
			}
		}
		s.SwitchController[i] = j0
	}

	// Order pairs PBar-descending with a stable counting sort: p̄ values are
	// small (bounded by the path-count cap), and sorting all pairs was the
	// single hottest line of a sweep under a comparison sort.
	maxPBar := 0
	for _, pr := range p.Pairs {
		if pr.PBar > maxPBar {
			maxPBar = pr.PBar
		}
	}
	bucket := make([]int, maxPBar+1)
	for _, pr := range p.Pairs {
		bucket[pr.PBar]++
	}
	for v, acc := maxPBar, 0; v >= 0; v-- {
		bucket[v], acc = acc, acc+bucket[v]
	}
	byPBar := make([]int, len(p.Pairs))
	for k, pr := range p.Pairs {
		byPBar[bucket[pr.PBar]] = k
		bucket[pr.PBar]++
	}
	for round := 0; round < 64; round++ {
		for _, k := range byPBar {
			if s.Active[k] {
				continue
			}
			j0 := s.SwitchController[p.Pairs[k].Switch]
			if j0 >= 0 && rest[j0] > 0 {
				activate(k, j0)
			}
		}
		moved := rebalance(p, s, rest, &usedMs)
		upgraded := upgrade(p, s, rest, h, alternatives, &usedMs)
		if !moved && !upgraded {
			break
		}
	}

	// Unmap switches that ended up with no active pair: mapping them would
	// consume a controller session for nothing.
	activeAt := make([]bool, p.NumSwitches)
	for k, on := range s.Active {
		if on {
			activeAt[p.Pairs[k].Switch] = true
		}
	}
	for i := range s.SwitchController {
		if !activeAt[i] {
			s.SwitchController[i] = -1
		}
	}

	s.Runtime = time.Since(start)
	return s, nil
}

// rebalance moves whole switches between controllers when the move lets more
// of the switch's inactive pairs be funded — or, gain being equal, lowers
// control delay — keeping the per-switch single-controller mapping and the
// delay budget. rest and usedMs are updated in place; it reports whether any
// switch moved.
func rebalance(p *Problem, s *Solution, rest []int, usedMs *float64) bool {
	activated := make([]int, p.NumSwitches) // currently charged pairs per switch
	inactive := make([]int, p.NumSwitches)
	for k, pr := range p.Pairs {
		if s.Active[k] {
			activated[pr.Switch]++
		} else {
			inactive[pr.Switch]++
		}
	}
	anyMoved := false
	// The move budget guards against ping-pong cycles; gains are strict so
	// cycles are not expected, but the bound makes termination unconditional.
	budget := 4 * p.NumSwitches
	for moved := true; moved && budget > 0; {
		moved = false
		budget--
		for i := 0; i < p.NumSwitches; i++ {
			j := s.SwitchController[i]
			if j < 0 || inactive[i] == 0 {
				continue
			}
			// fundable pairs if the switch stays put vs. moves to j'.
			stay := min(rest[j], inactive[i])
			bestJ, bestGain := -1, 0
			for j2 := 0; j2 < p.NumControllers; j2++ {
				if j2 == j || rest[j2] < activated[i] {
					continue
				}
				gain := min(rest[j2]-activated[i], inactive[i]) - stay
				if gain > bestGain ||
					(gain == bestGain && bestJ >= 0 && p.Delay[i][j2] < p.Delay[i][bestJ]) {
					bestGain, bestJ = gain, j2
				}
			}
			if bestJ < 0 {
				continue
			}
			rest[j] += activated[i]
			rest[bestJ] -= activated[i]
			*usedMs += float64(activated[i]) * (p.Delay[i][bestJ] - p.Delay[i][j])
			s.SwitchController[i] = bestJ
			moved, anyMoved = true, true
		}
	}
	return anyMoved
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// upgrade performs capacity-aware pair swaps: if a flow holds an activated
// low-p̄ pair while a higher-p̄ pair of the same flow sits inactive at a
// switch whose controller has room (or at a switch charged to the same
// controller), swap them — provided the delay budget still holds. Each swap
// strictly increases total programmability without overloading any
// controller, so the loop terminates. It reports whether anything changed.
func upgrade(p *Problem, s *Solution, rest, h, alternatives []int, usedMs *float64) bool {
	changed := false
	for l := 0; l < p.NumFlows; l++ {
		ks := p.PairsOfFlow(l)
		for {
			worst, best := -1, -1
			for _, k := range ks {
				if s.Active[k] {
					if worst < 0 || p.Pairs[k].PBar < p.Pairs[worst].PBar {
						worst = k
					}
					continue
				}
				jNew := s.SwitchController[p.Pairs[k].Switch]
				if jNew < 0 {
					continue
				}
				if best < 0 || p.Pairs[k].PBar > p.Pairs[best].PBar {
					best = k
				}
			}
			if worst < 0 || best < 0 || p.Pairs[best].PBar <= p.Pairs[worst].PBar {
				break
			}
			jOld := s.SwitchController[p.Pairs[worst].Switch]
			jNew := s.SwitchController[p.Pairs[best].Switch]
			if jNew != jOld && rest[jNew] <= 0 {
				break
			}
			deltaMs := p.Delay[p.Pairs[best].Switch][jNew] - p.Delay[p.Pairs[worst].Switch][jOld]
			s.Active[worst] = false
			rest[jOld]++
			alternatives[l]++
			s.Active[best] = true
			rest[jNew]--
			alternatives[l]--
			h[l] += p.Pairs[best].PBar - p.Pairs[worst].PBar
			*usedMs += deltaMs
			changed = true
		}
	}
	return changed
}
