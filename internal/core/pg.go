package core

import (
	"fmt"
	"time"
)

// PG re-implements the flow-level baseline ProgrammabilityGuardian of Guo et
// al. (IEEE/ACM IWQoS'20): a FlowVisor-style middle layer between switches
// and controllers lets every offline flow be mapped to any active controller
// independently, so capacity is allocated per (switch, flow) pair with no
// per-switch mapping constraint at all. This is the upper envelope of
// recovery granularity — at the cost of the middle layer's extra processing
// delay and reliability exposure, which the evaluation charges through the
// middle-layer delay model (Solution.MiddleLayer).
//
// The allocation mirrors PG's two objectives: balanced programmability first
// (round-based lifting of the least-programmable flows, each round picking
// the highest-p̄ unused pair of each floor flow), then full utilization of
// leftover capacity on total programmability. Pairs are charged to the
// controller with the most residual capacity — the middle layer decouples
// placement from delay, which is also why PG's per-flow overhead is the
// worst of the compared algorithms.
//
// Like PM, PG has a per-flow path (pgFlat) and a byte-identical
// class-aggregated path (pg_agg.go) selected for large compressible
// instances.
func PG(p *Problem) (*Solution, error) {
	if !p.finalized() {
		return nil, fmt.Errorf("%w: problem not finalized", ErrInvalidProblem)
	}
	if ci := p.aggClassIndex(); ci != nil {
		return pgAgg(p, ci)
	}
	return pgFlat(p)
}

// pgFlat is the per-flow reference implementation of PG.
func pgFlat(p *Problem) (*Solution, error) {
	start := time.Now()
	s := NewSolution("PG", p)
	s.MiddleLayer = true
	s.PairController = make([]int, len(p.Pairs))
	for k := range s.PairController {
		s.PairController[k] = -1
	}
	sc := scratchPool.Get().(*solverScratch)
	defer scratchPool.Put(sc)

	rest := grabInts(&sc.rest, p.NumControllers)
	copy(rest, p.Rest)
	h := grabInts(&sc.h, p.NumFlows)

	maxRestController := func() int {
		best := -1
		for j := 0; j < p.NumControllers; j++ {
			if rest[j] > 0 && (best < 0 || rest[j] > rest[best]) {
				best = j
			}
		}
		return best
	}
	// bestPair returns flow l's inactive pair with the largest p̄, or -1.
	bestPair := func(l int) int {
		best := -1
		for _, k := range p.PairsOfFlow(l) {
			if s.Active[k] {
				continue
			}
			if best < 0 || p.Pairs[k].PBar > p.Pairs[best].PBar {
				best = k
			}
		}
		return best
	}

	// Phase 1: balanced recovery. Each round lifts every flow currently at
	// the programmability floor by (at most) one pair; rounds repeat until
	// either capacity runs out or no floor flow has an unused pair left.
	for {
		sigma := int(^uint(0) >> 1)
		for _, v := range h {
			if v < sigma {
				sigma = v
			}
		}
		progress := false
		for l := 0; l < p.NumFlows; l++ {
			if h[l] != sigma {
				continue
			}
			k := bestPair(l)
			if k < 0 {
				continue
			}
			j := maxRestController()
			if j < 0 {
				break
			}
			rest[j]--
			s.Active[k] = true
			s.PairController[k] = j
			h[l] += p.Pairs[k].PBar
			progress = true
		}
		if !progress {
			break
		}
	}

	// Phase 2: full utilization — activate any remaining pair while capacity
	// lasts, highest p̄ first.
	// Stable counting sort, p̄-descending: p̄ is bounded by the path-count
	// cap, and the quadratic insertion sort this replaces was PG's hottest
	// loop across a full figure sweep.
	inactive := sc.pairScratch[:0]
	maxPBar := 0
	for k := range p.Pairs {
		if s.Active[k] {
			continue
		}
		inactive = append(inactive, k)
		if p.Pairs[k].PBar > maxPBar {
			maxPBar = p.Pairs[k].PBar
		}
	}
	sc.pairScratch = inactive
	bucket := grabInts(&sc.bucket, maxPBar+1)
	for _, k := range inactive {
		bucket[p.Pairs[k].PBar]++
	}
	for v, acc := maxPBar, 0; v >= 0; v-- {
		bucket[v], acc = acc, acc+bucket[v]
	}
	order := grabInts(&sc.order, len(inactive))
	for _, k := range inactive {
		order[bucket[p.Pairs[k].PBar]] = k
		bucket[p.Pairs[k].PBar]++
	}
	for _, k := range order {
		j := maxRestController()
		if j < 0 {
			break
		}
		rest[j]--
		s.Active[k] = true
		s.PairController[k] = j
	}

	s.Runtime = time.Since(start)
	return s, nil
}
