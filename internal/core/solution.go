package core

import (
	"errors"
	"fmt"
	"time"
)

// Solution is the output of a recovery algorithm for one Problem.
//
// Two families of algorithms share this type:
//
//   - Switch-mapping solutions (PM, Optimal, RetroFlow) fill
//     SwitchController; the controller charged for an active pair is the one
//     its switch is mapped to. RetroFlow additionally sets SwitchLevel: a
//     whole recovered switch costs γ_i capacity regardless of how many of
//     its pairs are eligible.
//   - Flow-mapping solutions (PG) fill PairController directly: each active
//     pair may be charged to a different controller, which is exactly the
//     fine-grained mapping the middle layer buys.
type Solution struct {
	// Algorithm names the producer, e.g. "PM", "RetroFlow", "PG", "Optimal".
	Algorithm string
	// SwitchController[i] is the controller offline switch i is mapped to,
	// or -1 if the switch stays unmapped (legacy mode for all its flows).
	SwitchController []int
	// Active[k] reports whether Pairs[k] is configured in SDN mode.
	Active []bool
	// PairController[k] overrides the charged controller per active pair;
	// nil for switch-mapping solutions.
	PairController []int
	// SwitchLevel selects whole-switch capacity accounting (γ_i per mapped
	// switch) instead of per-active-pair accounting.
	SwitchLevel bool
	// MiddleLayer selects the middle-layer delay model (Problem-independent;
	// evaluation uses the scenario's middle-layer delay matrix when set).
	MiddleLayer bool
	// Runtime is the wall-clock time the algorithm took.
	Runtime time.Duration
}

// NewSolution returns an all-legacy (nothing recovered) solution shell for p.
func NewSolution(algorithm string, p *Problem) *Solution {
	s := &Solution{
		Algorithm:        algorithm,
		SwitchController: make([]int, p.NumSwitches),
		Active:           make([]bool, len(p.Pairs)),
	}
	for i := range s.SwitchController {
		s.SwitchController[i] = -1
	}
	return s
}

// ErrInfeasible reports a solution that violates the problem's constraints.
var ErrInfeasible = errors.New("core: infeasible solution")

// controllerOfPair returns the controller charged for pair k, or -1.
func (s *Solution) controllerOfPair(p *Problem, k int) int {
	if s.PairController != nil {
		return s.PairController[k]
	}
	return s.SwitchController[p.Pairs[k].Switch]
}

// Verify checks structural and capacity feasibility of s against p:
// dimensions match, every switch maps to at most one controller (encoded),
// every active pair is charged to a valid controller, and no controller
// exceeds its residual capacity. The delay budget is a soft constraint in
// the heuristics (as in the paper) and is reported, not enforced, here.
func (s *Solution) Verify(p *Problem) error {
	if !p.finalized() {
		return fmt.Errorf("%w: problem not finalized", ErrInvalidProblem)
	}
	if len(s.SwitchController) != p.NumSwitches {
		return fmt.Errorf("%w: len(SwitchController)=%d, want %d", ErrInfeasible, len(s.SwitchController), p.NumSwitches)
	}
	if len(s.Active) != len(p.Pairs) {
		return fmt.Errorf("%w: len(Active)=%d, want %d", ErrInfeasible, len(s.Active), len(p.Pairs))
	}
	if s.PairController != nil && len(s.PairController) != len(p.Pairs) {
		return fmt.Errorf("%w: len(PairController)=%d, want %d", ErrInfeasible, len(s.PairController), len(p.Pairs))
	}
	for i, j := range s.SwitchController {
		if j < -1 || j >= p.NumControllers {
			return fmt.Errorf("%w: switch %d mapped to controller %d", ErrInfeasible, i, j)
		}
	}
	loads, err := s.ControllerLoads(p)
	if err != nil {
		return err
	}
	for j, load := range loads {
		if load > p.Rest[j] {
			return fmt.Errorf("%w: controller %d load %d exceeds residual %d", ErrInfeasible, j, load, p.Rest[j])
		}
	}
	return nil
}

// ControllerLoads returns the capacity consumed per controller. Switch-level
// solutions charge γ_i per mapped switch; per-flow solutions charge one unit
// per active pair to the pair's controller. An active pair whose controller
// is -1 is an encoding error.
func (s *Solution) ControllerLoads(p *Problem) ([]int, error) {
	loads := make([]int, p.NumControllers)
	if s.SwitchLevel {
		for i, j := range s.SwitchController {
			if j >= 0 {
				loads[j] += p.Gamma[i]
			}
		}
		// Active pairs must be consistent: only at mapped switches.
		for k, on := range s.Active {
			if on && s.controllerOfPair(p, k) < 0 {
				return nil, fmt.Errorf("%w: active pair %d at unmapped switch %d", ErrInfeasible, k, p.Pairs[k].Switch)
			}
		}
		return loads, nil
	}
	for k, on := range s.Active {
		if !on {
			continue
		}
		j := s.controllerOfPair(p, k)
		if j < 0 || j >= p.NumControllers {
			return nil, fmt.Errorf("%w: active pair %d charged to controller %d", ErrInfeasible, k, j)
		}
		loads[j]++
	}
	return loads, nil
}

// FlowProgrammability returns pro^l for every flow: the sum of p̄ over the
// flow's active pairs.
func (s *Solution) FlowProgrammability(p *Problem) []int {
	pro := make([]int, p.NumFlows)
	for k, on := range s.Active {
		if on {
			pro[p.Pairs[k].Flow] += p.Pairs[k].PBar
		}
	}
	return pro
}

// Report aggregates the paper's per-instance metrics for one solution.
type Report struct {
	Algorithm string
	// FlowProg[l] is pro^l.
	FlowProg []int
	// MinProg is r: the minimum pro^l over all offline flows.
	MinProg int
	// TotalProg is Σ_l pro^l.
	TotalProg int
	// Objective is r + λ·TotalProg.
	Objective float64
	// RecoveredFlows counts flows with pro^l >= 1.
	RecoveredFlows int
	// RecoveredSwitches counts offline switches that take part in recovery:
	// mapped switches for switch-mapping solutions, switches with at least
	// one active pair for flow-mapping solutions.
	RecoveredSwitches int
	// ControllerLoad[j] is the capacity consumed on controller j.
	ControllerLoad []int
	// OverheadMs is the total control propagation overhead; PerFlowOverheadMs
	// divides it by RecoveredFlows (the paper's Fig. 4(d)/5(f)/6(f) metric).
	OverheadMs        float64
	PerFlowOverheadMs float64
	// WithinBudget reports OverheadMs <= Problem.BudgetMs.
	WithinBudget bool
	Runtime      time.Duration
}

// EvaluateOptions tunes metric computation.
type EvaluateOptions struct {
	// MiddleDelay, when non-nil and the solution has MiddleLayer set, is the
	// switch×controller delay matrix through the middle layer (propagation
	// via the layer plus its processing time), replacing Problem.Delay in
	// overhead accounting.
	MiddleDelay [][]float64
}

// Evaluate verifies s and computes its Report.
func Evaluate(p *Problem, s *Solution, opts EvaluateOptions) (*Report, error) {
	if err := s.Verify(p); err != nil {
		return nil, err
	}
	loads, err := s.ControllerLoads(p)
	if err != nil {
		return nil, err
	}
	pro := s.FlowProgrammability(p)
	r := &Report{
		Algorithm:      s.Algorithm,
		FlowProg:       pro,
		ControllerLoad: loads,
		Runtime:        s.Runtime,
	}
	r.MinProg = int(^uint(0) >> 1)
	for _, v := range pro {
		r.TotalProg += v
		if v >= 1 {
			r.RecoveredFlows++
		}
		if v < r.MinProg {
			r.MinProg = v
		}
	}
	if len(pro) == 0 {
		r.MinProg = 0
	}
	r.Objective = float64(r.MinProg) + p.Lambda*float64(r.TotalProg)

	delayOf := func(i, j int) float64 {
		if s.MiddleLayer && opts.MiddleDelay != nil {
			return opts.MiddleDelay[i][j]
		}
		return p.Delay[i][j]
	}
	if s.SwitchLevel {
		for i, j := range s.SwitchController {
			if j >= 0 {
				r.RecoveredSwitches++
				r.OverheadMs += float64(p.Gamma[i]) * delayOf(i, j)
			}
		}
	} else {
		touched := make([]bool, p.NumSwitches)
		for k, on := range s.Active {
			if !on {
				continue
			}
			i := p.Pairs[k].Switch
			touched[i] = true
			r.OverheadMs += delayOf(i, s.controllerOfPair(p, k))
		}
		if s.PairController == nil {
			for _, j := range s.SwitchController {
				if j >= 0 {
					r.RecoveredSwitches++
				}
			}
		} else {
			for _, t := range touched {
				if t {
					r.RecoveredSwitches++
				}
			}
		}
	}
	if r.RecoveredFlows > 0 {
		r.PerFlowOverheadMs = r.OverheadMs / float64(r.RecoveredFlows)
	}
	r.WithinBudget = r.OverheadMs <= p.BudgetMs+1e-9
	return r, nil
}
