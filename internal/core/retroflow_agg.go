package core

import "time"

// retroFlowAgg is the class-aggregated RetroFlow path. RetroFlow is switch-
// level: a remapped switch activates every eligible pair located there and
// covers every flow owning one. Flows of one equivalence class share their
// switch set, so whenever a remap covers one member it covers the whole class
// — coverage is class-uniform — and the greedy's two scores collapse to
// per-class terms:
//
//	uncoveredGain(i) = Σ_{classes c at i, uncovered} |members(c)|
//	pbarSum(i)       = Σ_{(c,t) at i} p̄(c,t) · |members(c)|   (static)
//
// The selection loop then runs over N switches and the per-switch class lists
// (~10³ entries) instead of per-flow pair lists (~10⁶), while the emitted
// Solution stays byte-identical to retroFlowFlat: the same switches are
// picked in the same order with the same controllers, and a remap writes the
// same Active bits — only batched per class template instead of per pair.
func retroFlowAgg(p *Problem, ci *classIndex) (*Solution, error) {
	start := time.Now()
	s := NewSolution("RetroFlow", p)
	s.SwitchLevel = true

	rest := make([]int, p.NumControllers)
	copy(rest, p.Rest)
	covered := make([]bool, ci.numClasses)
	mapped := make([]bool, p.NumSwitches)

	// Switch → (class, bit) CSR, the aggregated counterpart of PairsAtSwitch.
	// Template switches are unique within a class, so each (class, switch)
	// contributes exactly one entry.
	swOff := make([]int32, p.NumSwitches+1)
	for _, sw := range ci.tmplSwitch {
		swOff[sw+1]++
	}
	for i := 0; i < p.NumSwitches; i++ {
		swOff[i+1] += swOff[i]
	}
	swClass := make([]int32, len(ci.tmplSwitch))
	swBit := make([]int32, len(ci.tmplSwitch))
	cur := make([]int32, p.NumSwitches)
	copy(cur, swOff[:p.NumSwitches])
	for c := int32(0); c < int32(ci.numClasses); c++ {
		sw, _ := ci.template(c)
		for t, sloc := range sw {
			swClass[cur[sloc]] = c
			swBit[cur[sloc]] = int32(t)
			cur[sloc]++
		}
	}
	members := func(c int32) int {
		return int(ci.memberOff[c+1] - ci.memberOff[c])
	}

	// Phase-2 score is coverage-independent: precompute it once.
	pbarSums := make([]int, p.NumSwitches)
	for i := 0; i < p.NumSwitches; i++ {
		sum := 0
		for x := swOff[i]; x < swOff[i+1]; x++ {
			_, pbar := ci.template(swClass[x])
			sum += int(pbar[swBit[x]]) * members(swClass[x])
		}
		pbarSums[i] = sum
	}

	fitController := func(i int) int {
		for _, j := range p.NearestControllers(i) {
			if rest[j] >= p.Gamma[i] {
				return j
			}
		}
		return -1
	}
	uncoveredGain := func(i int) int {
		gain := 0
		for x := swOff[i]; x < swOff[i+1]; x++ {
			if c := swClass[x]; !covered[c] {
				gain += members(c)
			}
		}
		return gain
	}
	remap := func(i, j int) {
		mapped[i] = true
		s.SwitchController[i] = j
		rest[j] -= p.Gamma[i]
		for x := swOff[i]; x < swOff[i+1]; x++ {
			c, t := swClass[x], swBit[x]
			covered[c] = true
			for _, l := range ci.members[ci.memberOff[c]:ci.memberOff[c+1]] {
				s.Active[p.pairOf(l, t)] = true
			}
		}
	}

	// Phase 1: coverage by uncovered-flow density.
	for {
		bestSwitch, bestController := -1, -1
		var bestNum, bestDen int
		for i := 0; i < p.NumSwitches; i++ {
			if mapped[i] || p.Gamma[i] == 0 {
				continue
			}
			gain := uncoveredGain(i)
			if gain == 0 {
				continue
			}
			j := fitController(i)
			if j < 0 {
				continue
			}
			if bestSwitch < 0 || gain*bestDen > bestNum*p.Gamma[i] {
				bestSwitch, bestController = i, j
				bestNum, bestDen = gain, p.Gamma[i]
			}
		}
		if bestSwitch < 0 {
			break
		}
		remap(bestSwitch, bestController)
	}

	// Phase 2: utilization by programmability density while anything fits.
	for {
		bestSwitch, bestController := -1, -1
		var bestNum, bestDen int
		for i := 0; i < p.NumSwitches; i++ {
			if mapped[i] || p.Gamma[i] == 0 {
				continue
			}
			sum := pbarSums[i]
			if sum == 0 {
				continue
			}
			j := fitController(i)
			if j < 0 {
				continue
			}
			if bestSwitch < 0 || sum*bestDen > bestNum*p.Gamma[i] {
				bestSwitch, bestController = i, j
				bestNum, bestDen = sum, p.Gamma[i]
			}
		}
		if bestSwitch < 0 {
			break
		}
		remap(bestSwitch, bestController)
	}

	s.Runtime = time.Since(start)
	return s, nil
}
