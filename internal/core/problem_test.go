package core

import (
	"errors"
	"math"
	"testing"
)

// tinyProblem builds a small, hand-checkable instance:
//
//	2 switches, 2 controllers, 3 flows.
//	Switch 0: pairs with flows 0 (p̄=2) and 1 (p̄=3).
//	Switch 1: pairs with flows 1 (p̄=2) and 2 (p̄=4).
//	Rest = [2, 2]; delays favor controller 0 for switch 0, 1 for switch 1.
func tinyProblem(t *testing.T) *Problem {
	t.Helper()
	p := &Problem{
		NumSwitches:    2,
		NumControllers: 2,
		NumFlows:       3,
		Rest:           []int{2, 2},
		Gamma:          []int{10, 10},
		Delay: [][]float64{
			{1, 5},
			{5, 1},
		},
		Pairs: []Pair{
			{Switch: 0, Flow: 0, PBar: 2},
			{Switch: 0, Flow: 1, PBar: 3},
			{Switch: 1, Flow: 1, PBar: 2},
			{Switch: 1, Flow: 2, PBar: 4},
		},
	}
	if err := p.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	p.BudgetMs = p.IdealDelayBudget()
	return p
}

func TestFinalizeValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Problem)
	}{
		{"empty", func(p *Problem) { p.NumSwitches = 0 }},
		{"rest size", func(p *Problem) { p.Rest = []int{1} }},
		{"gamma size", func(p *Problem) { p.Gamma = nil }},
		{"delay rows", func(p *Problem) { p.Delay = p.Delay[:1] }},
		{"delay cols", func(p *Problem) { p.Delay[0] = p.Delay[0][:1] }},
		{"negative delay", func(p *Problem) { p.Delay[0][0] = -1 }},
		{"nan delay", func(p *Problem) { p.Delay[1][1] = math.NaN() }},
		{"negative rest", func(p *Problem) { p.Rest[0] = -1 }},
		{"pair switch", func(p *Problem) { p.Pairs[0].Switch = 9 }},
		{"pair flow", func(p *Problem) { p.Pairs[0].Flow = -1 }},
		{"pair pbar", func(p *Problem) { p.Pairs[0].PBar = 1 }},
		{"negative lambda", func(p *Problem) { p.Lambda = -0.5 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := &Problem{
				NumSwitches:    2,
				NumControllers: 2,
				NumFlows:       3,
				Rest:           []int{2, 2},
				Gamma:          []int{10, 10},
				Delay:          [][]float64{{1, 5}, {5, 1}},
				Pairs: []Pair{
					{Switch: 0, Flow: 0, PBar: 2},
					{Switch: 1, Flow: 2, PBar: 4},
				},
			}
			tc.mutate(p)
			if err := p.Finalize(); err == nil {
				t.Fatal("Finalize accepted an invalid problem")
			}
		})
	}
}

func TestFinalizeDerivedFields(t *testing.T) {
	p := tinyProblem(t)
	if p.Lambda != DefaultLambda {
		t.Fatalf("Lambda = %v, want default %v", p.Lambda, DefaultLambda)
	}
	// Flow 1 has pairs at both switches -> TotalIterations = 2.
	if p.TotalIterations != 2 {
		t.Fatalf("TotalIterations = %d, want 2", p.TotalIterations)
	}
	if got := p.PairsAtSwitch(0); len(got) != 2 {
		t.Fatalf("PairsAtSwitch(0) = %v", got)
	}
	if got := p.PairsOfFlow(1); len(got) != 2 {
		t.Fatalf("PairsOfFlow(1) = %v", got)
	}
	if p.EligiblePairCount(1) != 2 {
		t.Fatalf("EligiblePairCount(1) = %d", p.EligiblePairCount(1))
	}
	if p.TotalRest() != 4 {
		t.Fatalf("TotalRest = %d", p.TotalRest())
	}
	if p.MaxPossibleProgrammability() != 11 {
		t.Fatalf("MaxPossibleProgrammability = %d", p.MaxPossibleProgrammability())
	}
}

func TestNearestControllers(t *testing.T) {
	p := tinyProblem(t)
	if got := p.NearestControllers(0); got[0] != 0 || got[1] != 1 {
		t.Fatalf("NearestControllers(0) = %v", got)
	}
	if got := p.NearestControllers(1); got[0] != 1 || got[1] != 0 {
		t.Fatalf("NearestControllers(1) = %v", got)
	}
}

func TestNearestControllersTieBreak(t *testing.T) {
	p := &Problem{
		NumSwitches:    1,
		NumControllers: 3,
		NumFlows:       1,
		Rest:           []int{1, 1, 1},
		Gamma:          []int{1},
		Delay:          [][]float64{{2, 2, 1}},
		Pairs:          []Pair{{Switch: 0, Flow: 0, PBar: 2}},
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	got := p.NearestControllers(0)
	want := []int{2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestIdealDelayBudget(t *testing.T) {
	p := tinyProblem(t)
	// γ=10 each; nearest delays are 1 and 1.
	if p.IdealDelayBudget() != 20 {
		t.Fatalf("G = %v, want 20", p.IdealDelayBudget())
	}
}

func TestVerifyRejectsUnfinalized(t *testing.T) {
	p := &Problem{NumSwitches: 1, NumControllers: 1, NumFlows: 1}
	s := &Solution{SwitchController: []int{-1}, Active: []bool{}}
	if err := s.Verify(p); !errors.Is(err, ErrInvalidProblem) {
		t.Fatalf("error = %v, want ErrInvalidProblem", err)
	}
}
