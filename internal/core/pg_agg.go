package core

import (
	"math/bits"
	"time"
)

// pgAgg is the class-aggregated implementation of PG. PG's output is
// inherently per-copy — every activated pair is charged to the
// argmax-residual controller at its own moment, and PairController records
// that choice — so activations are always walked copy by copy in global
// flow-ID order. The aggregation win is everything around them: the floor
// scan of each phase-1 round touches O(groups) variant groups instead of all
// L flows, and each copy's best pair comes from its group's mask instead of
// a per-flow pair scan. Output is byte-identical to pgFlat (agg_test.go).
func pgAgg(p *Problem, ci *classIndex) (*Solution, error) {
	start := time.Now()
	s := NewSolution("PG", p)
	s.MiddleLayer = true
	s.PairController = make([]int, len(p.Pairs))
	for k := range s.PairController {
		s.PairController[k] = -1
	}
	st := newAggState(p, ci)
	sc := scratchPool.Get().(*solverScratch)
	defer scratchPool.Put(sc)

	rest := grabInts(&sc.rest, p.NumControllers)
	copy(rest, p.Rest)

	maxRestController := func() int {
		best := -1
		for j := 0; j < p.NumControllers; j++ {
			if rest[j] > 0 && (best < 0 || rest[j] > rest[best]) {
				best = j
			}
		}
		return best
	}
	// bestBit returns the highest-p̄ unset template bit of (class, mask),
	// first on ties — PG's bestPair in template order.
	bestBit := func(c int32, mask uint64) int {
		_, pbar := ci.template(c)
		best := -1
		for t := range pbar {
			if mask&(1<<uint(t)) != 0 {
				continue
			}
			if best < 0 || pbar[t] > pbar[best] {
				best = t
			}
		}
		return best
	}

	// Phase 1: balanced recovery rounds. Floor groups (h == σ with an unset
	// pair) are walked merged; each copy charges the argmax-rest controller.
	for {
		sigma := int32(^uint32(0) >> 1)
		st.forEachGroup(func(_ int32, g *aggGroup) {
			if g.h < sigma {
				sigma = g.h
			}
		})
		progress := false
		w := newAggWalker(st)
		st.forEachGroup(func(gid int32, g *aggGroup) {
			if g.h != sigma || bits.OnesCount64(g.mask) == ci.numPairs(g.class) {
				return
			}
			w.addSource(gid, int32(bestBit(g.class, g.mask)))
		})
		w.start()
		for {
			flow, gid, bit, pos, ok := w.next()
			if !ok {
				break
			}
			j := maxRestController()
			if j < 0 {
				break
			}
			g := &st.groups[gid]
			rest[j]--
			k := p.pairOf(flow, bit)
			s.Active[k] = true
			s.PairController[k] = j
			st.addPending(g.class, g.mask|1<<uint(bit), pos)
			progress = true
			w.advance(true)
		}
		w.finish()
		if !progress {
			break
		}
	}

	// Phase 2: full utilization, highest p̄ first. The flat counting sort
	// orders inactive pairs (p̄ desc, switch asc, flow asc); template pairs
	// bucketed by (p̄, switch) with a merged flow walk per cell reproduce it.
	type fillCell struct {
		c, bit, sw, pbar int32
	}
	entries := make([]fillCell, 0, len(ci.tmplSwitch))
	maxPBar := int32(0)
	for i := 0; i < p.NumSwitches; i++ {
		for idx := st.swClassOff[i]; idx < st.swClassOff[i+1]; idx++ {
			c, bit := st.swClass[idx], st.swBit[idx]
			pbar := ci.tmplPBar[ci.tmplOff[c]+bit]
			entries = append(entries, fillCell{c, bit, int32(i), pbar})
			if pbar > maxPBar {
				maxPBar = pbar
			}
		}
	}
	bucket := grabInts(&sc.bucket, int(maxPBar)+1)
	for _, e := range entries {
		bucket[e.pbar]++
	}
	for v, acc := int(maxPBar), 0; v >= 0; v-- {
		bucket[v], acc = acc, acc+bucket[v]
	}
	sorted := make([]fillCell, len(entries))
	for _, e := range entries {
		sorted[bucket[e.pbar]] = e
		bucket[e.pbar]++
	}
	capacityLeft := true
	for ei := 0; ei < len(sorted) && capacityLeft; {
		ej := ei + 1
		for ej < len(sorted) && sorted[ej].pbar == sorted[ei].pbar && sorted[ej].sw == sorted[ei].sw {
			ej++
		}
		w := newAggWalker(st)
		for _, e := range sorted[ei:ej] {
			for gid := st.classHead[e.c]; gid >= 0; gid = st.groups[gid].next {
				g := &st.groups[gid]
				if g.count == 0 || g.mask&(1<<uint(e.bit)) != 0 {
					continue
				}
				w.addSource(gid, e.bit)
			}
		}
		w.start()
		for {
			flow, gid, bit, pos, ok := w.next()
			if !ok {
				break
			}
			j := maxRestController()
			if j < 0 {
				capacityLeft = false
				break
			}
			g := &st.groups[gid]
			rest[j]--
			k := p.pairOf(flow, bit)
			s.Active[k] = true
			s.PairController[k] = j
			st.addPending(g.class, g.mask|1<<uint(bit), pos)
			w.advance(true)
		}
		w.finish()
		ei = ej
	}

	s.Runtime = time.Since(start)
	return s, nil
}
