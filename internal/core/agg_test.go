package core_test

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

// randAggProblem builds a finalized random Problem with deliberately
// duplicated flow signatures (so classes have many members), weighted flows,
// occasional zero-pair flows, delay ties, and capacities scarce enough to cut
// classes mid-way — the regime where the aggregated solvers must fall back
// to per-copy walks and any order discrepancy against the flat path shows.
func randAggProblem(rng *rand.Rand) *core.Problem {
	n := 2 + rng.Intn(8)
	m := 1 + rng.Intn(5)
	numSigs := 1 + rng.Intn(6)
	numFlows := 40 + rng.Intn(160)

	type sigPair struct{ sw, pbar int }
	sigs := make([][]sigPair, numSigs)
	for s := range sigs {
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				sigs[s] = append(sigs[s], sigPair{i, 2 + rng.Intn(5)})
			}
		}
		// A signature may be empty: zero-pair flows stay at the floor forever
		// and must pin σ at 0 in both paths.
	}

	p := &core.Problem{
		NumSwitches:    n,
		NumControllers: m,
		NumFlows:       numFlows,
	}
	for l := 0; l < numFlows; l++ {
		sig := sigs[rng.Intn(numSigs)]
		if rng.Intn(8) == 0 {
			// Occasionally a unique signature: singleton classes must
			// coexist with fat ones.
			sig = nil
			for i := 0; i < n; i++ {
				if rng.Intn(3) == 0 {
					sig = append(sig, sigPair{i, 2 + rng.Intn(5)})
				}
			}
		}
		for _, sp := range sig {
			p.Pairs = append(p.Pairs, core.Pair{Switch: sp.sw, Flow: l, PBar: sp.pbar})
		}
	}
	sort.Slice(p.Pairs, func(a, b int) bool {
		if p.Pairs[a].Switch != p.Pairs[b].Switch {
			return p.Pairs[a].Switch < p.Pairs[b].Switch
		}
		return p.Pairs[a].Flow < p.Pairs[b].Flow
	})

	p.Gamma = make([]int, n)
	for i := range p.Gamma {
		p.Gamma[i] = 1 + rng.Intn(60)
	}
	p.Rest = make([]int, m)
	for j := range p.Rest {
		// Scarce on average: total capacity usually below the pair count.
		p.Rest[j] = rng.Intn(len(p.Pairs)/m + 2)
	}
	p.Delay = make([][]float64, n)
	for i := range p.Delay {
		row := make([]float64, m)
		for j := range row {
			// Integer delays produce frequent ties, exercising the
			// deterministic tie-breaks in both paths.
			row[j] = float64(rng.Intn(12))
		}
		p.Delay[i] = row
	}
	return p
}

// zeroRuntime clears the wall-clock field so solutions compare structurally.
func zeroRuntime(s *core.Solution) *core.Solution {
	s.Runtime = 0
	return s
}

func requireSameSolution(t *testing.T, tag string, flat, agg *core.Solution) {
	t.Helper()
	if !reflect.DeepEqual(zeroRuntime(flat), zeroRuntime(agg)) {
		t.Fatalf("%s: aggregated solution differs from flat\nflat: %+v\nagg:  %+v", tag, flat, agg)
	}
}

func requireSameReport(t *testing.T, tag string, p *core.Problem, flat, agg *core.Solution, opts core.EvaluateOptions) {
	t.Helper()
	rf, err := core.Evaluate(p, flat, opts)
	if err != nil {
		t.Fatalf("%s: evaluate flat: %v", tag, err)
	}
	ra, err := core.Evaluate(p, agg, opts)
	if err != nil {
		t.Fatalf("%s: evaluate agg: %v", tag, err)
	}
	rf.Runtime, ra.Runtime = 0, 0
	if !reflect.DeepEqual(rf, ra) {
		t.Fatalf("%s: aggregated report differs from flat\nflat: %+v\nagg:  %+v", tag, rf, ra)
	}
}

func checkAggEquivalence(t *testing.T, tag string, p *core.Problem, opts core.EvaluateOptions) {
	t.Helper()
	pmFlat, err := core.PMFlat(p)
	if err != nil {
		t.Fatalf("%s: pm flat: %v", tag, err)
	}
	pmA, ok, err := core.PMAgg(p)
	if err != nil {
		t.Fatalf("%s: pm agg: %v", tag, err)
	}
	if !ok {
		t.Fatalf("%s: problem unexpectedly not aggregable", tag)
	}
	requireSameSolution(t, tag+"/PM", pmFlat, pmA)
	requireSameReport(t, tag+"/PM", p, pmFlat, pmA, core.EvaluateOptions{})

	pgFlat, err := core.PGFlat(p)
	if err != nil {
		t.Fatalf("%s: pg flat: %v", tag, err)
	}
	pgA, _, err := core.PGAgg(p)
	if err != nil {
		t.Fatalf("%s: pg agg: %v", tag, err)
	}
	requireSameSolution(t, tag+"/PG", pgFlat, pgA)
	requireSameReport(t, tag+"/PG", p, pgFlat, pgA, opts)

	rfFlat, err := core.RetroFlowFlat(p)
	if err != nil {
		t.Fatalf("%s: retroflow flat: %v", tag, err)
	}
	rfA, _, err := core.RetroFlowAgg(p)
	if err != nil {
		t.Fatalf("%s: retroflow agg: %v", tag, err)
	}
	requireSameSolution(t, tag+"/RetroFlow", rfFlat, rfA)
	requireSameReport(t, tag+"/RetroFlow", p, rfFlat, rfA, core.EvaluateOptions{})
}

// TestRetroFlowAggMatchesFlatRandom pins the switch-level baseline's
// aggregated path against its per-flow reference on its own seed range, in
// addition to the shared checkAggEquivalence coverage above: RetroFlow's
// greedy reads γ and density ratios no other solver touches.
func TestRetroFlowAggMatchesFlatRandom(t *testing.T) {
	iters := 120
	if testing.Short() {
		iters = 25
	}
	for it := 0; it < iters; it++ {
		rng := rand.New(rand.NewSource(int64(7000 + it)))
		p := randAggProblem(rng)
		if len(p.Pairs) == 0 {
			continue
		}
		if err := p.Finalize(); err != nil {
			t.Fatalf("iter %d: finalize: %v", it, err)
		}
		p.BudgetMs = p.IdealDelayBudget()
		flat, err := core.RetroFlowFlat(p)
		if err != nil {
			t.Fatalf("iter %d: flat: %v", it, err)
		}
		agg, ok, err := core.RetroFlowAgg(p)
		if err != nil {
			t.Fatalf("iter %d: agg: %v", it, err)
		}
		if !ok {
			t.Fatalf("iter %d: problem unexpectedly not aggregable", it)
		}
		requireSameSolution(t, t.Name(), flat, agg)
		requireSameReport(t, t.Name(), p, flat, agg, core.EvaluateOptions{})
	}
}

// TestAggMatchesFlatRandom is the core equivalence property: on randomized
// problems the class-aggregated PM/PG must produce byte-identical Solutions
// and Reports to the per-flow reference paths.
func TestAggMatchesFlatRandom(t *testing.T) {
	iters := 120
	if testing.Short() {
		iters = 25
	}
	for it := 0; it < iters; it++ {
		rng := rand.New(rand.NewSource(int64(1000 + it)))
		p := randAggProblem(rng)
		if len(p.Pairs) == 0 {
			continue
		}
		if err := p.Finalize(); err != nil {
			t.Fatalf("iter %d: finalize: %v", it, err)
		}
		p.BudgetMs = p.IdealDelayBudget()
		checkAggEquivalence(t, t.Name(), p, core.EvaluateOptions{})
	}
}

// TestAggMatchesFlatSweep runs the same equivalence over real scenario
// instances: synthetic topologies, all-pairs flows, and every failure case of
// the sweep depths the figures use.
func TestAggMatchesFlatSweep(t *testing.T) {
	type cfg struct{ n, m, capacity, depth int }
	cfgs := []cfg{
		{30, 4, 1600, 1},
		{48, 5, 4200, 2},
	}
	if testing.Short() {
		cfgs = cfgs[:1]
	}
	for _, c := range cfgs {
		dep, err := topo.Synthetic(c.n, c.m, c.capacity)
		if err != nil {
			t.Fatalf("synthetic(%d,%d): %v", c.n, c.m, err)
		}
		flows, err := flow.Generate(dep.Graph, flow.Options{})
		if err != nil {
			t.Fatalf("flows: %v", err)
		}
		ctx, err := scenario.NewContext(dep, flows)
		if err != nil {
			t.Fatalf("context: %v", err)
		}
		tested := 0
		for depth := 1; depth <= c.depth; depth++ {
			for _, failed := range scenario.Combinations(c.m, depth) {
				inst, err := ctx.Build(failed)
				if err != nil {
					continue // infeasible case (e.g. overload) — not under test
				}
				tested++
				tag := t.Name()
				checkAggEquivalence(t, tag, inst.Problem, core.EvaluateOptions{MiddleDelay: inst.MiddleDelay})
			}
		}
		if tested == 0 {
			t.Fatalf("cfg %+v: no feasible failure case was tested", c)
		}
	}
}
