package core

import (
	"math/bits"
	"slices"
)

// classIndex partitions a finalized Problem's flows into equivalence classes:
// two flows are equivalent when their eligible-pair signatures — the sequence
// of (switch, p̄) in switch-ascending order — are identical. Equivalent flows
// are interchangeable for PM and PG: every decision the heuristics take about
// a flow reads only its signature and its per-flow recovery state, never its
// identity, except through iteration order. The aggregated solver paths
// (pm_agg.go, pg_agg.go) therefore plan over classes and only fall back to
// individual copies where iteration order becomes observable (a capacity
// limit cutting a class mid-way), which is what collapses ~10⁶ all-pairs
// flows to the ~10³–10⁴ distinct signatures a carrier-scale failure case
// actually has.
//
// Bit t of a class refers to template pair t; for member flow l the concrete
// pair index is flowPairs[flowPairOff[l]+t] (a flow's pairs are stored
// switch-ascending, matching the template order).
type classIndex struct {
	numClasses int
	// classOf[l] is flow l's class.
	classOf []int32
	// members lists flow indices grouped by class, ascending flow ID within
	// each class: members[memberOff[c]:memberOff[c+1]].
	members   []int32
	memberOff []int32
	// tmplSwitch/tmplPBar hold each class's pair template, flat:
	// tmplOff[c]:tmplOff[c+1]. Template switches are strictly ascending
	// (a simple path meets each offline switch at most once).
	tmplSwitch []int32
	tmplPBar   []int32
	tmplOff    []int32
}

// maxClassPairs bounds per-flow pair counts for aggregation: class state is a
// uint64 bitset over the template pairs.
const maxClassPairs = 64

// classIndexUnusable is the cached sentinel for problems that cannot be
// aggregated.
var classIndexUnusable = &classIndex{numClasses: -1}

// classIndexOf returns the problem's class index, computing and caching it on
// first use, or nil when the problem cannot be aggregated (some flow has more
// than maxClassPairs pairs). The first call is not safe for concurrent use;
// every current caller solves a Problem from a single goroutine at a time
// (the sweep engine parallelizes across Problems, not within one).
func (p *Problem) classIndexOf() *classIndex {
	if p.classes != nil {
		if p.classes.numClasses < 0 {
			return nil
		}
		return p.classes
	}
	L := p.NumFlows
	for l := 0; l < L; l++ {
		if p.flowPairOff[l+1]-p.flowPairOff[l] > maxClassPairs {
			p.classes = classIndexUnusable
			return nil
		}
	}

	// Group flows by signature: sort flow IDs by (signature hash, signature,
	// flow ID) and cut runs of equal signatures. The hash front-loads almost
	// every comparison into one integer compare; the full lexicographic
	// compare only breaks the rare collisions, keeping the grouping exact.
	hash := make([]uint64, L)
	for l := 0; l < L; l++ {
		h := uint64(1469598103934665603)
		for _, k := range p.PairsOfFlow(l) {
			pr := &p.Pairs[k]
			h = (h ^ uint64(pr.Switch)) * 1099511628211
			h = (h ^ uint64(pr.PBar)) * 1099511628211
		}
		hash[l] = h
	}
	sigCmp := func(a, b int32) int {
		ka, kb := p.PairsOfFlow(int(a)), p.PairsOfFlow(int(b))
		if len(ka) != len(kb) {
			return len(ka) - len(kb)
		}
		for t := range ka {
			pa, pb := &p.Pairs[ka[t]], &p.Pairs[kb[t]]
			if pa.Switch != pb.Switch {
				return pa.Switch - pb.Switch
			}
			if pa.PBar != pb.PBar {
				return pa.PBar - pb.PBar
			}
		}
		return 0
	}
	order := make([]int32, L)
	for l := range order {
		order[l] = int32(l)
	}
	slices.SortFunc(order, func(a, b int32) int {
		if hash[a] != hash[b] {
			if hash[a] < hash[b] {
				return -1
			}
			return 1
		}
		if c := sigCmp(a, b); c != 0 {
			return c
		}
		return int(a - b)
	})

	ci := &classIndex{
		classOf:   make([]int32, L),
		members:   order,
		memberOff: make([]int32, 1, L+1),
		tmplOff:   make([]int32, 1, L+1),
	}
	for idx := 0; idx < L; {
		run := idx + 1
		for run < L && hash[order[run]] == hash[order[idx]] && sigCmp(order[run], order[idx]) == 0 {
			run++
		}
		c := int32(ci.numClasses)
		for _, l := range order[idx:run] {
			ci.classOf[l] = c
		}
		for _, k := range p.PairsOfFlow(int(order[idx])) {
			ci.tmplSwitch = append(ci.tmplSwitch, int32(p.Pairs[k].Switch))
			ci.tmplPBar = append(ci.tmplPBar, int32(p.Pairs[k].PBar))
		}
		ci.memberOff = append(ci.memberOff, int32(run))
		ci.tmplOff = append(ci.tmplOff, int32(len(ci.tmplSwitch)))
		ci.numClasses++
		idx = run
	}
	p.classes = ci
	return ci
}

// DeriveResidualClasses fills r's class index from its parent's, where r is
// the residual of parent that excludes every pair at the switches marked in
// excluded (scenario.Instance.Residual). Members of one parent class share a
// signature, so they share the filtered signature too — deriving the residual
// index only has to regroup the parent's classes (thousands) instead of
// re-hashing every flow (millions), which is what puts a residual re-plan
// back on the zero-ish-cost path the parent solve already paid for.
//
// The derived index is identical, field for field, to what classIndexOf
// would compute from scratch on r (enforced by TestDeriveResidualClasses):
// groups are ordered by the same (hash, signature) key and members stay
// ascending by flow ID. The call is a no-op — r computes lazily as before —
// when the parent's index is absent or unusable, or r already has one.
func (r *Problem) DeriveResidualClasses(parent *Problem, excluded []bool) {
	pc := parent.classes
	if pc == nil || pc.numClasses <= 0 || r.classes != nil || r.NumFlows != parent.NumFlows {
		return
	}
	nc := pc.numClasses

	// Filtered-signature hash and length per parent class, same FNV fold as
	// classIndexOf so run order matches a scratch computation.
	hash := make([]uint64, nc)
	flen := make([]int32, nc)
	for c := 0; c < nc; c++ {
		sw, pb := pc.template(int32(c))
		h := uint64(1469598103934665603)
		n := int32(0)
		for t := range sw {
			if excluded[sw[t]] {
				continue
			}
			h = (h ^ uint64(sw[t])) * 1099511628211
			h = (h ^ uint64(pb[t])) * 1099511628211
			n++
		}
		hash[c] = h
		flen[c] = n
	}
	// cmp compares two parent classes' filtered signatures exactly the way
	// classIndexOf's sigCmp compares flows: length first, then pairwise.
	cmp := func(a, b int32) int {
		if flen[a] != flen[b] {
			return int(flen[a] - flen[b])
		}
		swA, pbA := pc.template(a)
		swB, pbB := pc.template(b)
		tb := 0
		for ta := range swA {
			if excluded[swA[ta]] {
				continue
			}
			for excluded[swB[tb]] {
				tb++
			}
			if swA[ta] != swB[tb] {
				return int(swA[ta] - swB[tb])
			}
			if pbA[ta] != pbB[tb] {
				return int(pbA[ta] - pbB[tb])
			}
			tb++
		}
		return 0
	}

	order := make([]int32, nc)
	for c := range order {
		order[c] = int32(c)
	}
	slices.SortFunc(order, func(a, b int32) int {
		if hash[a] != hash[b] {
			if hash[a] < hash[b] {
				return -1
			}
			return 1
		}
		if c := cmp(a, b); c != 0 {
			return c
		}
		return int(a - b)
	})

	ci := &classIndex{
		classOf:   make([]int32, r.NumFlows),
		members:   make([]int32, 0, r.NumFlows),
		memberOff: make([]int32, 1, nc+1),
		tmplOff:   make([]int32, 1, nc+1),
	}
	for idx := 0; idx < nc; {
		run := idx + 1
		for run < nc && hash[order[run]] == hash[order[idx]] && cmp(order[run], order[idx]) == 0 {
			run++
		}
		c := int32(ci.numClasses)
		start := len(ci.members)
		for _, pcls := range order[idx:run] {
			lo, hi := pc.memberOff[pcls], pc.memberOff[pcls+1]
			ci.members = append(ci.members, pc.members[lo:hi]...)
		}
		// Parent member lists are each ascending; a merged group needs one
		// sort to restore the global ascending-flow-ID order of a scratch run.
		if run-idx > 1 {
			slices.Sort(ci.members[start:])
		}
		for _, l := range ci.members[start:] {
			ci.classOf[l] = c
		}
		sw, pb := pc.template(order[idx])
		for t := range sw {
			if excluded[sw[t]] {
				continue
			}
			ci.tmplSwitch = append(ci.tmplSwitch, sw[t])
			ci.tmplPBar = append(ci.tmplPBar, pb[t])
		}
		ci.memberOff = append(ci.memberOff, int32(len(ci.members)))
		ci.tmplOff = append(ci.tmplOff, int32(len(ci.tmplSwitch)))
		ci.numClasses++
		idx = run
	}
	r.classes = ci
}

// deriveSliceClasses fills sub's class index from its parent's, where sub is
// the slow-path Slice of p: swLocal maps parent switch → local switch (-1 =
// dropped) and flowLocal maps parent flow → local flow (-1 = dropped). Members
// of one parent class share a signature, so they share the slice-filtered
// signature too — deriving the slice index regroups the parent's classes
// (thousands) instead of re-hashing the surviving flows (potentially
// millions), which is what keeps a multi-region hierarchical solve from
// paying a fresh classIndexOf per region slice.
//
// A parent class whose template loses every pair contributes no flows — a
// flow joins a slice only through a kept pair — and is dropped; conversely a
// class with any kept pair keeps all its members (equal signatures). Local
// switch and flow numbering are both ascending in parent order, so hashing
// the local switch IDs reproduces classIndexOf's sort keys and member order
// exactly: the derived index is identical, field for field, to a scratch
// computation on sub (enforced by TestDeriveSliceClasses). The call is a
// no-op when the parent's index is absent or unusable, or sub already has
// one.
func (sub *Problem) deriveSliceClasses(p *Problem, swLocal, flowLocal []int) {
	pc := p.classes
	if pc == nil || pc.numClasses <= 0 || sub.classes != nil {
		return
	}
	nc := pc.numClasses

	// The slice gathers pairs switch-major, so its per-flow signatures come
	// out switch-ascending no matter how the parent ordered its Pairs. The
	// parent's templates mirror the parent's order (Finalize never sorts);
	// deriving is only faithful when the two orders agree, i.e. every parent
	// template is switch-nondecreasing (ties keep global pair order in both).
	// Scenario-built problems are switch-major by construction; on a hand-built
	// parent that isn't, bail and let the sub index itself lazily.
	for c := 0; c < nc; c++ {
		for t := pc.tmplOff[c] + 1; t < pc.tmplOff[c+1]; t++ {
			if pc.tmplSwitch[t] < pc.tmplSwitch[t-1] {
				return
			}
		}
	}

	// Filtered-signature hash and length per parent class, folding the LOCAL
	// switch IDs with the same FNV fold as classIndexOf so run order matches a
	// scratch computation on sub.
	hash := make([]uint64, nc)
	flen := make([]int32, nc)
	kept := 0
	for c := 0; c < nc; c++ {
		sw, pb := pc.template(int32(c))
		h := uint64(1469598103934665603)
		n := int32(0)
		for t := range sw {
			si := swLocal[sw[t]]
			if si < 0 {
				continue
			}
			h = (h ^ uint64(si)) * 1099511628211
			h = (h ^ uint64(pb[t])) * 1099511628211
			n++
		}
		hash[c] = h
		flen[c] = n
		if n > 0 {
			kept++
		}
	}
	cmp := func(a, b int32) int {
		if flen[a] != flen[b] {
			return int(flen[a] - flen[b])
		}
		swA, pbA := pc.template(a)
		swB, pbB := pc.template(b)
		tb := 0
		for ta := range swA {
			if swLocal[swA[ta]] < 0 {
				continue
			}
			for swLocal[swB[tb]] < 0 {
				tb++
			}
			if d := swLocal[swA[ta]] - swLocal[swB[tb]]; d != 0 {
				return d
			}
			if pbA[ta] != pbB[tb] {
				return int(pbA[ta] - pbB[tb])
			}
			tb++
		}
		return 0
	}

	order := make([]int32, 0, kept)
	for c := 0; c < nc; c++ {
		if flen[c] > 0 {
			order = append(order, int32(c))
		}
	}
	slices.SortFunc(order, func(a, b int32) int {
		if hash[a] != hash[b] {
			if hash[a] < hash[b] {
				return -1
			}
			return 1
		}
		if c := cmp(a, b); c != 0 {
			return c
		}
		return int(a - b)
	})

	ci := &classIndex{
		classOf:   make([]int32, sub.NumFlows),
		members:   make([]int32, 0, sub.NumFlows),
		memberOff: make([]int32, 1, kept+1),
		tmplOff:   make([]int32, 1, kept+1),
	}
	for idx := 0; idx < len(order); {
		run := idx + 1
		for run < len(order) && hash[order[run]] == hash[order[idx]] && cmp(order[run], order[idx]) == 0 {
			run++
		}
		c := int32(ci.numClasses)
		start := len(ci.members)
		for _, pcls := range order[idx:run] {
			lo, hi := pc.memberOff[pcls], pc.memberOff[pcls+1]
			for _, l := range pc.members[lo:hi] {
				ci.members = append(ci.members, int32(flowLocal[l]))
			}
		}
		// Each parent class's members map to ascending local flow IDs
		// (flowLocal is monotone on kept flows); a merged group needs one sort
		// to restore the global ascending order of a scratch run.
		if run-idx > 1 {
			slices.Sort(ci.members[start:])
		}
		for _, sl := range ci.members[start:] {
			ci.classOf[sl] = c
		}
		sw, pb := pc.template(order[idx])
		for t := range sw {
			si := swLocal[sw[t]]
			if si < 0 {
				continue
			}
			ci.tmplSwitch = append(ci.tmplSwitch, int32(si))
			ci.tmplPBar = append(ci.tmplPBar, pb[t])
		}
		ci.memberOff = append(ci.memberOff, int32(len(ci.members)))
		ci.tmplOff = append(ci.tmplOff, int32(len(ci.tmplSwitch)))
		ci.numClasses++
		idx = run
	}
	sub.classes = ci
}

// ClassCount returns the number of flow equivalence classes of a finalized
// problem, or -1 when the problem cannot be class-aggregated (some flow has
// more than 64 eligible pairs). It is a diagnostic for scale reporting —
// compression factor is NumFlows / ClassCount — and shares the solvers'
// cached index.
func (p *Problem) ClassCount() int {
	ci := p.classIndexOf()
	if ci == nil {
		return -1
	}
	return ci.numClasses
}

// numPairs returns the template length of class c.
func (ci *classIndex) numPairs(c int32) int {
	return int(ci.tmplOff[c+1] - ci.tmplOff[c])
}

// template returns class c's (switch, p̄) template slices.
func (ci *classIndex) template(c int32) (sw, pbar []int32) {
	lo, hi := ci.tmplOff[c], ci.tmplOff[c+1]
	return ci.tmplSwitch[lo:hi], ci.tmplPBar[lo:hi]
}

// pairOf returns the concrete pair index of template bit t for member flow l.
func (p *Problem) pairOf(l int32, t int32) int {
	return p.flowPairs[p.flowPairOff[l]+int32(t)]
}

// maskProg returns the programmability a member of class c holds under the
// given activation mask: Σ p̄ over set template bits.
func (ci *classIndex) maskProg(c int32, mask uint64) int32 {
	_, pbar := ci.template(c)
	var h int32
	for m := mask; m != 0; m &= m - 1 {
		h += pbar[bits.TrailingZeros64(m)]
	}
	return h
}
