package core

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"
)

// sortedRandomProblem is randomProblem with its pairs re-sorted switch-major
// — the order scenario-built problems have and slice-class derivation
// requires (a flow's CSR signature then matches the slice's switch-major
// gather order).
func sortedRandomProblem(t *testing.T, rng *rand.Rand) *Problem {
	t.Helper()
	p := randomProblem(rng)
	slices.SortStableFunc(p.Pairs, func(a, b Pair) int {
		if a.Switch != b.Switch {
			return a.Switch - b.Switch
		}
		return a.Flow - b.Flow
	})
	if err := p.Finalize(); err != nil {
		t.Fatalf("re-Finalize: %v", err)
	}
	return p
}

// sliceMaps rebuilds the swLocal/flowLocal maps Slice computes internally for
// a keepSwitch restriction that keeps every controller, so the test can call
// deriveSliceClasses the way the slow path does.
func sliceMaps(p *Problem, keepSwitch []bool) (swLocal, flowLocal []int) {
	swLocal = make([]int, p.NumSwitches)
	next := 0
	for i := range swLocal {
		swLocal[i] = -1
		if keepSwitch[i] {
			swLocal[i] = next
			next++
		}
	}
	flowLocal = make([]int, p.NumFlows)
	for l := range flowLocal {
		flowLocal[l] = -1
	}
	for _, pr := range p.Pairs {
		if keepSwitch[pr.Switch] {
			flowLocal[pr.Flow] = 0
		}
	}
	next = 0
	for l := range flowLocal {
		if flowLocal[l] == 0 {
			flowLocal[l] = next
			next++
		}
	}
	return swLocal, flowLocal
}

// TestDeriveSliceClasses asserts that the class index a slow-path Slice
// derives from its parent's is identical, field for field, to the index
// classIndexOf computes from scratch on the sub-problem — including group
// order, member order, and templates — across random switch restrictions.
func TestDeriveSliceClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	keepCtl := func(m int) []bool {
		keep := make([]bool, m)
		for j := range keep {
			keep[j] = true
		}
		return keep
	}
	tried := 0
	for trial := 0; tried < 300; trial++ {
		p := sortedRandomProblem(t, rng)
		if p.classIndexOf() == nil {
			t.Fatalf("trial %d: parent index unusable", trial)
		}
		keepSwitch := make([]bool, p.NumSwitches)
		any := false
		strict := false
		for i := range keepSwitch {
			keepSwitch[i] = rng.Intn(3) != 0
			if keepSwitch[i] {
				any = true
			} else {
				strict = true
			}
		}
		if !any || !strict {
			continue // all-kept hits the fast path; none-kept has no slice
		}

		sl, err := p.Slice(keepSwitch, keepCtl(p.NumControllers))
		if err != nil {
			t.Fatalf("trial %d: Slice: %v", trial, err)
		}
		if sl == nil {
			continue // no pair survived
		}
		tried++
		derived := sl.Sub.classes
		if derived == nil {
			t.Fatalf("trial %d: slice did not derive a class index from a usable parent", trial)
		}

		// Scratch: same sub content, index computed from nothing.
		scratch := &Problem{
			NumSwitches:    sl.Sub.NumSwitches,
			NumControllers: sl.Sub.NumControllers,
			NumFlows:       sl.Sub.NumFlows,
			Pairs:          append([]Pair(nil), sl.Sub.Pairs...),
			Rest:           append([]int(nil), sl.Sub.Rest...),
			Gamma:          append([]int(nil), sl.Sub.Gamma...),
			Delay:          append([][]float64(nil), sl.Sub.Delay...),
			Lambda:         sl.Sub.Lambda,
		}
		if err := scratch.Finalize(); err != nil {
			t.Fatalf("trial %d: scratch Finalize: %v", trial, err)
		}
		want := scratch.classIndexOf()
		if want == nil {
			t.Fatalf("trial %d: scratch index unusable", trial)
		}
		if !reflect.DeepEqual(normalizeClassIndex(want), normalizeClassIndex(derived)) {
			t.Fatalf("trial %d: derived slice index differs from scratch:\nscratch: %+v\nderived: %+v",
				trial, want, derived)
		}
	}
}

// TestDeriveSliceClassesNoop covers the guards: no derivation without a
// computed parent index, and no overwrite of an existing sub index.
func TestDeriveSliceClassesNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := sortedRandomProblem(t, rng)
	keepSwitch := make([]bool, p.NumSwitches)
	keepSwitch[0] = true
	keepCtl := make([]bool, p.NumControllers)
	for j := range keepCtl {
		keepCtl[j] = true
	}

	sl, err := p.Slice(keepSwitch, keepCtl) // parent index never computed
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	if sl != nil && sl.Sub.classes != nil {
		t.Fatal("derivation ran without a parent index")
	}

	if p.classIndexOf() == nil {
		t.Fatal("parent index unusable")
	}
	swLocal, flowLocal := sliceMaps(p, keepSwitch)
	sl2, err := p.Slice(keepSwitch, keepCtl)
	if err != nil || sl2 == nil {
		t.Fatalf("Slice: %v (sl=%v)", err, sl2)
	}
	own := sl2.Sub.classes
	if own == nil {
		t.Fatal("slice did not derive with a usable parent index")
	}
	sl2.Sub.deriveSliceClasses(p, swLocal, flowLocal)
	if sl2.Sub.classes != own {
		t.Fatal("derivation overwrote an existing index")
	}
}

// TestDeriveSliceClassesUnsortedParent asserts the safety guard: a parent
// whose pairs are not switch-major has per-flow signatures that will not
// match the slice's switch-major gather order, so derivation must bail and
// leave the sub to index itself lazily.
func TestDeriveSliceClassesUnsortedParent(t *testing.T) {
	p := &Problem{
		NumSwitches:    2,
		NumControllers: 1,
		NumFlows:       1,
		Rest:           []int{4},
		Gamma:          []int{2, 2},
		Delay:          [][]float64{{1}, {1}},
		// Switch-descending for the one flow: CSR signature is (1,·),(0,·).
		Pairs: []Pair{{Switch: 1, Flow: 0, PBar: 3}, {Switch: 0, Flow: 0, PBar: 2}},
	}
	if err := p.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	p.BudgetMs = p.IdealDelayBudget()
	if p.classIndexOf() == nil {
		t.Fatal("parent index unusable")
	}
	sl, err := p.Slice([]bool{true, false}, []bool{true})
	if err != nil || sl == nil {
		t.Fatalf("Slice: %v (sl=%v)", err, sl)
	}
	if sl.Sub.classes != nil {
		t.Fatal("derivation ran on an unsorted parent")
	}
}
