package core_test

import (
	"math/rand"
	"reflect"
	"testing"

	"pmedic/internal/core"
)

func cloneSolution(s *core.Solution) *core.Solution {
	c := *s
	c.SwitchController = append([]int(nil), s.SwitchController...)
	c.Active = append([]bool(nil), s.Active...)
	if s.PairController != nil {
		c.PairController = append([]int(nil), s.PairController...)
	}
	return &c
}

// degrade deactivates every third active pair and unmaps any switch left
// without active pairs — a feasible but clearly suboptimal starting point
// with plenty of slack for the improver to claw back.
func degrade(p *core.Problem, s *core.Solution) *core.Solution {
	d := cloneSolution(s)
	nth := 0
	for k := range d.Active {
		if !d.Active[k] {
			continue
		}
		if nth%3 == 0 {
			d.Active[k] = false
		}
		nth++
	}
	activeAt := make([]bool, p.NumSwitches)
	for k, on := range d.Active {
		if on {
			activeAt[p.Pairs[k].Switch] = true
		}
	}
	for i := range d.SwitchController {
		if !activeAt[i] {
			d.SwitchController[i] = -1
		}
	}
	return d
}

func objective(t *testing.T, p *core.Problem, s *core.Solution) float64 {
	t.Helper()
	rep, err := core.Evaluate(p, s, core.EvaluateOptions{})
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	return rep.Objective
}

// TestImproveNoOpAfterPM pins the quiescence property the K=1 hierarchical
// solve depends on: starting from a finished PM solution, Improve changes
// nothing.
func TestImproveNoOpAfterPM(t *testing.T) {
	for it := 0; it < 60; it++ {
		rng := rand.New(rand.NewSource(int64(8100 + it)))
		p := randAggProblem(rng)
		if err := p.Finalize(); err != nil {
			t.Fatal(err)
		}
		s, err := core.PMFlat(p)
		if err != nil {
			t.Fatal(err)
		}
		got := cloneSolution(s)
		if _, err := core.Improve(p, got, core.ImproveOptions{}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(zeroRuntime(s), zeroRuntime(got)) {
			t.Fatalf("it %d: Improve changed a quiescent PM solution", it)
		}
	}
}

// TestImproveMonotonic starts from a degraded PM solution and checks that
// the objective never decreases as the round budget grows, and that every
// budget recovers at least the degraded baseline.
func TestImproveMonotonic(t *testing.T) {
	for it := 0; it < 40; it++ {
		rng := rand.New(rand.NewSource(int64(8200 + it)))
		p := randAggProblem(rng)
		if err := p.Finalize(); err != nil {
			t.Fatal(err)
		}
		s, err := core.PMFlat(p)
		if err != nil {
			t.Fatal(err)
		}
		start := degrade(p, s)
		prev := objective(t, p, start)
		for rounds := 1; rounds <= 5; rounds++ {
			got := cloneSolution(start)
			if _, err := core.Improve(p, got, core.ImproveOptions{MaxRounds: rounds}); err != nil {
				t.Fatal(err)
			}
			obj := objective(t, p, got)
			if obj < prev {
				t.Fatalf("it %d: objective dropped %.6f -> %.6f at %d rounds", it, prev, obj, rounds)
			}
			prev = obj
		}
	}
}

// TestImproveDeterministic runs the improver twice from identical inputs and
// checks byte-identical results, and that a counting Stop callback lands on
// exactly the same solution as the equivalent MaxRounds budget — the
// deadline-stop determinism contract.
func TestImproveDeterministic(t *testing.T) {
	for it := 0; it < 40; it++ {
		rng := rand.New(rand.NewSource(int64(8300 + it)))
		p := randAggProblem(rng)
		if err := p.Finalize(); err != nil {
			t.Fatal(err)
		}
		s, err := core.PMFlat(p)
		if err != nil {
			t.Fatal(err)
		}
		start := degrade(p, s)

		a := cloneSolution(start)
		b := cloneSolution(start)
		ra, err := core.Improve(p, a, core.ImproveOptions{MaxRounds: 3})
		if err != nil {
			t.Fatal(err)
		}
		rb, err := core.Improve(p, b, core.ImproveOptions{MaxRounds: 3})
		if err != nil {
			t.Fatal(err)
		}
		if ra != rb || !reflect.DeepEqual(a, b) {
			t.Fatalf("it %d: repeated Improve diverged (%d vs %d rounds)", it, ra, rb)
		}

		// Stop after two polls == MaxRounds of 2.
		c := cloneSolution(start)
		d := cloneSolution(start)
		if _, err := core.Improve(p, c, core.ImproveOptions{MaxRounds: 2}); err != nil {
			t.Fatal(err)
		}
		polls := 0
		stop := func() bool {
			polls++
			return polls > 2
		}
		if _, err := core.Improve(p, d, core.ImproveOptions{MaxRounds: 64, Stop: stop}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(c, d) {
			t.Fatalf("it %d: Stop-based deadline diverged from round budget", it)
		}
	}
}

// TestImproveValidation covers the error paths.
func TestImproveValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8400))
	p := randAggProblem(rng)
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	s, err := core.PMFlat(p)
	if err != nil {
		t.Fatal(err)
	}
	bad := cloneSolution(s)
	bad.SwitchLevel = true
	if _, err := core.Improve(p, bad, core.ImproveOptions{}); err == nil {
		t.Fatal("want error for switch-level solution")
	}
	short := cloneSolution(s)
	short.Active = short.Active[:len(short.Active)-1]
	if _, err := core.Improve(p, short, core.ImproveOptions{}); err == nil {
		t.Fatal("want error for shape mismatch")
	}
}
