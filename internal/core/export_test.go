package core

// Test-only exports: the property test in agg_test.go pins the per-flow and
// class-aggregated solver paths against each other regardless of the
// dispatch thresholds in PM/PG.

var (
	PMFlat        = pmFlat
	PGFlat        = pgFlat
	RetroFlowFlat = retroFlowFlat
)

// PMAgg forces the aggregated PM path; it returns false when the problem has
// no usable class index (a flow with more than 64 pairs).
func PMAgg(p *Problem) (*Solution, bool, error) {
	ci := p.classIndexOf()
	if ci == nil {
		return nil, false, nil
	}
	s, err := pmAgg(p, ci)
	return s, true, err
}

// PGAgg forces the aggregated PG path.
func PGAgg(p *Problem) (*Solution, bool, error) {
	ci := p.classIndexOf()
	if ci == nil {
		return nil, false, nil
	}
	s, err := pgAgg(p, ci)
	return s, true, err
}

// RetroFlowAgg forces the aggregated RetroFlow path.
func RetroFlowAgg(p *Problem) (*Solution, bool, error) {
	ci := p.classIndexOf()
	if ci == nil {
		return nil, false, nil
	}
	s, err := retroFlowAgg(p, ci)
	return s, true, err
}

// NumClasses exposes the class count for tests and diagnostics.
func NumClasses(p *Problem) int { return p.ClassCount() }
