package core

import (
	"errors"
	"math"
	"testing"
)

func TestNewSolutionShape(t *testing.T) {
	p := tinyProblem(t)
	s := NewSolution("X", p)
	if len(s.SwitchController) != 2 || len(s.Active) != 4 {
		t.Fatalf("bad shape: %d switches, %d pairs", len(s.SwitchController), len(s.Active))
	}
	for _, j := range s.SwitchController {
		if j != -1 {
			t.Fatal("fresh solution must be unmapped")
		}
	}
	if err := s.Verify(p); err != nil {
		t.Fatalf("empty solution should verify: %v", err)
	}
}

func TestVerifyCatchesCapacityViolation(t *testing.T) {
	p := tinyProblem(t)
	s := NewSolution("X", p)
	s.SwitchController[0] = 0
	s.SwitchController[1] = 0
	for k := range s.Active {
		s.Active[k] = true // 4 active pairs on controller 0 with rest 2
	}
	if err := s.Verify(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}

func TestVerifyCatchesActiveAtUnmapped(t *testing.T) {
	p := tinyProblem(t)
	s := NewSolution("X", p)
	s.Active[0] = true // switch 0 unmapped
	if _, err := s.ControllerLoads(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}

func TestVerifyCatchesBadDimensions(t *testing.T) {
	p := tinyProblem(t)
	s := NewSolution("X", p)
	s.Active = s.Active[:1]
	if err := s.Verify(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}

func TestControllerLoadsSwitchLevel(t *testing.T) {
	p := tinyProblem(t)
	s := NewSolution("RF", p)
	s.SwitchLevel = true
	s.SwitchController[0] = 0
	for _, k := range p.PairsAtSwitch(0) {
		s.Active[k] = true
	}
	loads, err := s.ControllerLoads(p)
	if err != nil {
		t.Fatal(err)
	}
	if loads[0] != p.Gamma[0] {
		t.Fatalf("switch-level load = %d, want γ=%d", loads[0], p.Gamma[0])
	}
}

func TestFlowProgrammability(t *testing.T) {
	p := tinyProblem(t)
	s := NewSolution("X", p)
	s.SwitchController[0] = 0
	s.SwitchController[1] = 1
	s.Active[1] = true // flow 1 at switch 0, p̄=3
	s.Active[2] = true // flow 1 at switch 1, p̄=2
	pro := s.FlowProgrammability(p)
	if pro[0] != 0 || pro[1] != 5 || pro[2] != 0 {
		t.Fatalf("pro = %v, want [0 5 0]", pro)
	}
}

func TestEvaluateMetrics(t *testing.T) {
	p := tinyProblem(t)
	s := NewSolution("X", p)
	s.SwitchController[0] = 0
	s.SwitchController[1] = 1
	// Activate one pair per flow: flows 0 (p̄2), 1 (p̄3 at sw0), 2 (p̄4).
	s.Active[0] = true
	s.Active[1] = true
	s.Active[3] = true
	rep, err := Evaluate(p, s, EvaluateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MinProg != 2 || rep.TotalProg != 9 {
		t.Fatalf("min=%d total=%d, want 2, 9", rep.MinProg, rep.TotalProg)
	}
	if rep.RecoveredFlows != 3 || rep.RecoveredSwitches != 2 {
		t.Fatalf("recovered flows=%d switches=%d", rep.RecoveredFlows, rep.RecoveredSwitches)
	}
	// Overhead: two pairs at switch 0 via controller 0 (delay 1 each) + one
	// pair at switch 1 via controller 1 (delay 1).
	if math.Abs(rep.OverheadMs-3) > 1e-9 {
		t.Fatalf("overhead = %v, want 3", rep.OverheadMs)
	}
	if math.Abs(rep.PerFlowOverheadMs-1) > 1e-9 {
		t.Fatalf("per-flow overhead = %v, want 1", rep.PerFlowOverheadMs)
	}
	if !rep.WithinBudget {
		t.Fatal("3 ms is within the budget of 20 ms")
	}
	wantObj := 2 + p.Lambda*9
	if math.Abs(rep.Objective-wantObj) > 1e-12 {
		t.Fatalf("objective = %v, want %v", rep.Objective, wantObj)
	}
}

func TestEvaluateMiddleLayerDelay(t *testing.T) {
	p := tinyProblem(t)
	s := NewSolution("PG", p)
	s.MiddleLayer = true
	s.PairController = []int{0, -1, -1, -1}
	s.Active[0] = true
	mid := [][]float64{{10, 20}, {30, 40}}
	rep, err := Evaluate(p, s, EvaluateOptions{MiddleDelay: mid})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OverheadMs != 10 {
		t.Fatalf("overhead = %v, want middle-layer 10", rep.OverheadMs)
	}
	if rep.RecoveredSwitches != 1 {
		t.Fatalf("recovered switches = %d, want 1 (flow-level counting)", rep.RecoveredSwitches)
	}
}

func TestEvaluatePairControllerCapacity(t *testing.T) {
	p := tinyProblem(t)
	s := NewSolution("PG", p)
	s.PairController = []int{0, 0, 0, -1}
	s.Active[0], s.Active[1], s.Active[2] = true, true, true
	// Controller 0 rest is 2; three pairs must fail verification.
	if err := s.Verify(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}
