package core

import "fmt"

// ImproveOptions tunes Improve.
type ImproveOptions struct {
	// MaxRounds bounds the number of fill/rebalance/upgrade rounds; 0 selects
	// the same 64-round cap PM's own final pass uses. The deadline is
	// expressed in rounds, not wall time, so a run is deterministic given the
	// solution it starts from and the round budget it gets.
	MaxRounds int
	// Stop, when non-nil, is polled before each round; returning true stops
	// the improver at the last completed round. It is the hook for wall-clock
	// deadlines — but note that a time-based Stop trades the determinism a
	// pure round budget gives.
	Stop func() bool
}

// improveDefaultRounds mirrors pmFlat's final-pass round cap.
const improveDefaultRounds = 64

// Improve runs PM's final utilization pass as a standalone anytime refiner on
// an existing per-flow, switch-mapping solution: per-switch local moves
// (whole-switch rebalancing between controllers), pair fills in global
// p̄-descending order, and same-flow pair upgrades — all against the global
// programmability objective. The hierarchical planner calls it after merging
// per-region solutions, where the cross-region moves it discovers are exactly
// the refinement a region-local solve cannot see.
//
// Every round is monotone: fills only add programmability, upgrades swap a
// flow's active pair for a strictly higher-p̄ one, and rebalancing moves a
// switch only when the move funds strictly more of its inactive pairs. A
// flow's programmability therefore never decreases, so neither objective term
// can worsen — the property TestImproveMonotonic pins.
//
// Improve returns the number of rounds it ran. Starting from a quiescent PM
// solution it is a no-op (0 effective changes), which keeps the K=1
// hierarchical solve byte-identical to flat PM.
func Improve(p *Problem, s *Solution, opts ImproveOptions) (int, error) {
	if !p.finalized() {
		return 0, fmt.Errorf("%w: problem not finalized", ErrInvalidProblem)
	}
	if s.SwitchLevel || s.PairController != nil {
		return 0, fmt.Errorf("%w: Improve needs a per-flow switch-mapping solution", ErrInvalidProblem)
	}
	if len(s.SwitchController) != p.NumSwitches || len(s.Active) != len(p.Pairs) {
		return 0, fmt.Errorf("%w: solution shape does not match problem", ErrInfeasible)
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = improveDefaultRounds
	}

	sc := scratchPool.Get().(*solverScratch)
	defer scratchPool.Put(sc)

	// Reconstruct the solver-internal state pmFlat ends with: residual
	// capacity, per-flow programmability, and per-flow inactive-pair counts.
	rest := grabInts(&sc.rest, p.NumControllers)
	copy(rest, p.Rest)
	h := grabInts(&sc.h, p.NumFlows)
	alternatives := grabInts(&sc.alternatives, p.NumFlows)
	for k, pr := range p.Pairs {
		if s.Active[k] {
			j := s.SwitchController[pr.Switch]
			if j < 0 || j >= p.NumControllers {
				return 0, fmt.Errorf("%w: active pair %d at unmapped switch %d", ErrInfeasible, k, pr.Switch)
			}
			rest[j]--
			h[pr.Flow] += pr.PBar
		} else {
			alternatives[pr.Flow]++
		}
	}
	for j, r := range rest {
		if r < 0 {
			return 0, fmt.Errorf("%w: controller %d over capacity before improvement", ErrInfeasible, j)
		}
	}
	// Unmapped switches stay unmapped: PM only unmaps a switch after proving
	// no controller can fund any of its pairs, and re-mapping one here would
	// open upgrade swaps PM's own configuration never saw — breaking the
	// Improve-is-a-no-op-after-PM property. Adopting stranded switches across
	// capacity boundaries is the hierarchical coordinator's job, not the
	// improver's.
	byPBar := pairsByPBarDesc(p, sc)
	rounds := 0
	for ; rounds < maxRounds; rounds++ {
		if opts.Stop != nil && opts.Stop() {
			break
		}
		filled := false
		for _, k := range byPBar {
			if s.Active[k] {
				continue
			}
			j0 := s.SwitchController[p.Pairs[k].Switch]
			if j0 >= 0 && rest[j0] > 0 {
				l := p.Pairs[k].Flow
				rest[j0]--
				h[l] += p.Pairs[k].PBar
				alternatives[l]--
				s.Active[k] = true
				filled = true
			}
		}
		moved := rebalanceFlat(p, s, sc, rest)
		upgraded := upgrade(p, s, rest, h, alternatives)
		if !filled && !moved && !upgraded {
			rounds++
			break
		}
	}

	// Re-establish PM's terminal invariant: a switch with no active pair
	// stays unmapped.
	activeAt := grabBools(&sc.activeAt, p.NumSwitches)
	for k, on := range s.Active {
		if on {
			activeAt[p.Pairs[k].Switch] = true
		}
	}
	for i := range s.SwitchController {
		if !activeAt[i] {
			s.SwitchController[i] = -1
		}
	}
	return rounds, nil
}
