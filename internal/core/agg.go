package core

import "container/heap"

// This file holds the shared state machinery of the aggregated PM/PG paths:
// variant groups and the merged-order walker.
//
// Within one equivalence class (classes.go), flows start indistinguishable
// and only diverge when a capacity limit cuts an operation mid-class. The
// aggregated solvers therefore keep, per class, a set of *variant groups*:
// all member copies that currently share the same activation mask (a uint64
// over the class's template pairs), stored as sorted position runs into the
// class's member list. Whole-group operations (the common case) cost O(1) in
// the member count; only the copies an operation actually splits are touched
// individually, in exactly the global flow-ID order the per-flow solvers
// iterate in — which is what keeps the aggregated output byte-identical.

// span is a half-open run [lo, hi) of positions into classIndex.members.
type span struct{ lo, hi int32 }

// aggGroup is one variant group: group.count copies of class `class` whose
// activation state is `mask`, at programmability h = Σ p̄ over set bits.
// Groups of one class form a singly linked list via next/classHead.
type aggGroup struct {
	class int32
	next  int32 // next group of the same class, -1 at end
	mask  uint64
	h     int32
	count int32
	spans []span
}

// aggState is the mutable aggregated solver state over a class index.
type aggState struct {
	p  *Problem
	ci *classIndex

	groups    []aggGroup
	classHead []int32 // head of each class's group list, -1 when empty

	// swClasses CSR: for each switch, the (class, bit) template pairs located
	// there — the aggregated counterpart of Problem.PairsAtSwitch.
	swClassOff []int32
	swClass    []int32 // class IDs
	swBit      []int32 // template bit within the class

	// pending copy moves gathered by a walker, flushed per operation.
	pending []pendingTarget
}

type pendingTarget struct {
	class     int32
	mask      uint64
	positions []int32 // ascending member positions moved to this mask
}

// newAggState seeds one all-inactive (mask 0, h 0) group per class and builds
// the switch → (class, bit) index.
func newAggState(p *Problem, ci *classIndex) *aggState {
	st := &aggState{
		p:         p,
		ci:        ci,
		groups:    make([]aggGroup, ci.numClasses),
		classHead: make([]int32, ci.numClasses),
	}
	for c := 0; c < ci.numClasses; c++ {
		lo, hi := ci.memberOff[c], ci.memberOff[c+1]
		st.groups[c] = aggGroup{
			class: int32(c),
			next:  -1,
			count: hi - lo,
			spans: []span{{lo, hi}},
		}
		st.classHead[c] = int32(c)
	}
	st.swClassOff = make([]int32, p.NumSwitches+1)
	for _, sw := range ci.tmplSwitch {
		st.swClassOff[sw+1]++
	}
	for i := 0; i < p.NumSwitches; i++ {
		st.swClassOff[i+1] += st.swClassOff[i]
	}
	st.swClass = make([]int32, len(ci.tmplSwitch))
	st.swBit = make([]int32, len(ci.tmplSwitch))
	cur := make([]int32, p.NumSwitches)
	copy(cur, st.swClassOff[:p.NumSwitches])
	for c := int32(0); c < int32(ci.numClasses); c++ {
		sw, _ := ci.template(c)
		for t, s := range sw {
			st.swClass[cur[s]] = c
			st.swBit[cur[s]] = int32(t)
			cur[s]++
		}
	}
	return st
}

// forEachGroup calls fn for every live group, unlinking dead (count 0) ones
// in passing.
func (st *aggState) forEachGroup(fn func(gid int32, g *aggGroup)) {
	for c := range st.classHead {
		prev := int32(-1)
		for gid := st.classHead[c]; gid >= 0; {
			g := &st.groups[gid]
			next := g.next
			if g.count == 0 {
				if prev < 0 {
					st.classHead[c] = next
				} else {
					st.groups[prev].next = next
				}
			} else {
				fn(gid, g)
				prev = gid
			}
			gid = next
		}
	}
}

// findGroup returns the live group of (class, mask), or -1.
func (st *aggState) findGroup(class int32, mask uint64) int32 {
	for gid := st.classHead[class]; gid >= 0; gid = st.groups[gid].next {
		if g := &st.groups[gid]; g.count > 0 && g.mask == mask {
			return gid
		}
	}
	return -1
}

// newGroup links a fresh empty group for (class, mask) and returns its ID.
func (st *aggState) newGroup(class int32, mask uint64) int32 {
	gid := int32(len(st.groups))
	st.groups = append(st.groups, aggGroup{
		class: class,
		next:  st.classHead[class],
		mask:  mask,
		h:     st.ci.maskProg(class, mask),
	})
	st.classHead[class] = gid
	return gid
}

// mergeSpans merges ascending disjoint runs b into ascending disjoint a,
// coalescing adjacencies.
func mergeSpans(a, b []span) []span {
	if len(a) == 0 {
		return append([]span(nil), b...)
	}
	out := make([]span, 0, len(a)+len(b))
	push := func(s span) {
		if n := len(out); n > 0 && out[n-1].hi == s.lo {
			out[n-1].hi = s.hi
		} else {
			out = append(out, s)
		}
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].lo < b[j].lo {
			push(a[i])
			i++
		} else {
			push(b[j])
			j++
		}
	}
	for ; i < len(a); i++ {
		push(a[i])
	}
	for ; j < len(b); j++ {
		push(b[j])
	}
	return out
}

// spansFromPositions turns an ascending position list into runs.
func spansFromPositions(pos []int32) []span {
	var out []span
	for _, pp := range pos {
		if n := len(out); n > 0 && out[n-1].hi == pp {
			out[n-1].hi = pp + 1
		} else {
			out = append(out, span{pp, pp + 1})
		}
	}
	return out
}

// moveWholeGroup retargets every copy of group gid to newMask: either a pure
// relabel (no live group holds newMask) or a span merge into the one that
// does. The O(1)/O(spans) whole-group move is the aggregation payoff.
func (st *aggState) moveWholeGroup(gid int32, newMask uint64) {
	g := &st.groups[gid]
	if g.mask == newMask || g.count == 0 {
		return
	}
	if tid := st.findGroup(g.class, newMask); tid >= 0 && tid != gid {
		t := &st.groups[tid]
		t.spans = mergeSpans(t.spans, g.spans)
		t.count += g.count
		g.count = 0
		g.spans = g.spans[:0]
		return
	}
	g.mask = newMask
	g.h = st.ci.maskProg(g.class, newMask)
}

// addPending records one copy (by member position) headed for (class, mask).
// Positions arrive globally ascending during a walk, hence ascending per
// target as well.
func (st *aggState) addPending(class int32, mask uint64, pos int32) {
	for i := range st.pending {
		if st.pending[i].class == class && st.pending[i].mask == mask {
			st.pending[i].positions = append(st.pending[i].positions, pos)
			return
		}
	}
	st.pending = append(st.pending, pendingTarget{class: class, mask: mask, positions: []int32{pos}})
}

// flushPending folds all pending copy moves into their target groups. Must
// run after every walk, before any state is read again.
func (st *aggState) flushPending() {
	for i := range st.pending {
		pt := &st.pending[i]
		if len(pt.positions) == 0 {
			continue
		}
		gid := st.findGroup(pt.class, pt.mask)
		if gid < 0 {
			gid = st.newGroup(pt.class, pt.mask)
		}
		g := &st.groups[gid]
		g.spans = mergeSpans(g.spans, spansFromPositions(pt.positions))
		g.count += int32(len(pt.positions))
		pt.positions = pt.positions[:0]
	}
	st.pending = st.pending[:0]
}

// aggWalker iterates the copies of a set of source groups in ascending global
// flow-ID order (classIndex.members positions translate to flow IDs, and
// member lists are flow-ascending, so a heap over per-group cursors yields
// the exact order the per-flow solvers use). The caller consumes or keeps
// each copy; consumed copies are routed through aggState.pending, kept and
// unvisited copies are written back to their source groups on finish.
type aggWalker struct {
	st   *aggState
	cur  []walkCursor
	kept [][]int32 // per heap-entry-origin source: kept positions, ascending
	gids []int32   // source group IDs, parallel to kept
}

type walkCursor struct {
	src  int32 // index into gids/kept
	span int32
	pos  int32
	flow int32 // heap key: ci.members[pos]
	tag  int32 // caller payload (e.g. template bit)
}

func (w *aggWalker) Len() int           { return len(w.cur) }
func (w *aggWalker) Less(i, j int) bool { return w.cur[i].flow < w.cur[j].flow }
func (w *aggWalker) Swap(i, j int)      { w.cur[i], w.cur[j] = w.cur[j], w.cur[i] }
func (w *aggWalker) Push(x any)         { w.cur = append(w.cur, x.(walkCursor)) }
func (w *aggWalker) Pop() any           { n := len(w.cur) - 1; c := w.cur[n]; w.cur = w.cur[:n]; return c }

func newAggWalker(st *aggState) *aggWalker {
	return &aggWalker{st: st}
}

// addSource enrolls group gid with an opaque tag. The group's spans are taken
// over by the walker until finish().
func (w *aggWalker) addSource(gid int32, tag int32) {
	g := &w.st.groups[gid]
	if g.count == 0 {
		return
	}
	src := int32(len(w.gids))
	w.gids = append(w.gids, gid)
	w.kept = append(w.kept, nil)
	w.cur = append(w.cur, walkCursor{
		src:  src,
		pos:  g.spans[0].lo,
		flow: w.st.ci.members[g.spans[0].lo],
		tag:  tag,
	})
}

// start heapifies after all sources are added.
func (w *aggWalker) start() { heap.Init(w) }

// next returns the smallest-flow pending copy without consuming it, or
// ok=false when the walk is exhausted.
func (w *aggWalker) next() (flow int32, gid int32, tag int32, pos int32, ok bool) {
	if len(w.cur) == 0 {
		return 0, 0, 0, 0, false
	}
	c := &w.cur[0]
	return c.flow, w.gids[c.src], c.tag, c.pos, true
}

// advance moves past the current copy. With consume=true the copy leaves its
// source group (the caller must addPending its destination); otherwise it is
// kept in place.
func (w *aggWalker) advance(consume bool) {
	c := w.cur[0]
	if !consume {
		w.kept[c.src] = append(w.kept[c.src], c.pos)
	}
	g := &w.st.groups[w.gids[c.src]]
	c.pos++
	if c.pos >= g.spans[c.span].hi {
		c.span++
		if int(c.span) >= len(g.spans) {
			heap.Pop(w)
			return
		}
		c.pos = g.spans[c.span].lo
	}
	c.flow = w.st.ci.members[c.pos]
	w.cur[0] = c
	heap.Fix(w, 0)
}

// finish rebuilds every source group from its kept prefix plus the unvisited
// remainder (cursor position onward), updates counts, and flushes pending
// moves. Safe to call with cursors mid-span (early stop).
func (w *aggWalker) finish() {
	// Remainders of still-live cursors.
	rem := make([][]span, len(w.gids))
	for i := range w.cur {
		c := &w.cur[i]
		g := &w.st.groups[w.gids[c.src]]
		tail := g.spans[c.span:]
		r := make([]span, len(tail))
		copy(r, tail)
		r[0].lo = c.pos
		rem[c.src] = r
	}
	for src, gid := range w.gids {
		g := &w.st.groups[gid]
		spans := mergeSpans(spansFromPositions(w.kept[src]), rem[src])
		g.spans = spans
		var n int32
		for _, s := range spans {
			n += s.hi - s.lo
		}
		g.count = n
	}
	w.st.flushPending()
	w.cur, w.kept, w.gids = w.cur[:0], w.kept[:0], w.gids[:0]
}
