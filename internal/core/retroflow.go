package core

import (
	"fmt"
	"time"
)

// RetroFlow re-implements the switch-level baseline of Guo et al.
// (IEEE/ACM IWQoS'19): offline switches either stay in legacy mode or are
// remapped — whole — to an active controller, costing the controller the
// switch's full flow load γ_i. Every flow traversing a remapped switch is
// controlled there, so all eligible pairs at remapped switches become active.
//
// The selection is the greedy the original paper's evaluation behaviour
// implies: a coverage phase picks, by uncovered-flow density (uncovered flows
// per unit of γ), switches that newly recover flows and assigns each to the
// nearest controller that can absorb γ_i; a utilization phase then keeps
// remapping remaining switches by programmability density while any
// controller still fits them. Switches whose γ_i exceeds every controller's
// residual capacity can never be remapped — the coarse granularity that PM's
// per-flow mode selection removes.
//
// Like PM and PG, RetroFlow dispatches to a class-aggregated implementation
// (retroflow_agg.go) on large, compressible instances; the two paths produce
// byte-identical Solutions (TestRetroFlowAggMatchesFlatRandom).
func RetroFlow(p *Problem) (*Solution, error) {
	if !p.finalized() {
		return nil, fmt.Errorf("%w: problem not finalized", ErrInvalidProblem)
	}
	if ci := p.aggClassIndex(); ci != nil {
		return retroFlowAgg(p, ci)
	}
	return retroFlowFlat(p)
}

// retroFlowFlat is the per-flow reference implementation of RetroFlow.
func retroFlowFlat(p *Problem) (*Solution, error) {
	start := time.Now()
	s := NewSolution("RetroFlow", p)
	s.SwitchLevel = true

	rest := make([]int, p.NumControllers)
	copy(rest, p.Rest)
	covered := make([]bool, p.NumFlows)
	mapped := make([]bool, p.NumSwitches)

	// fitController returns the nearest controller that can absorb switch i
	// whole, or -1.
	fitController := func(i int) int {
		for _, j := range p.NearestControllers(i) {
			if rest[j] >= p.Gamma[i] {
				return j
			}
		}
		return -1
	}
	uncoveredGain := func(i int) int {
		gain := 0
		for _, k := range p.PairsAtSwitch(i) {
			if !covered[p.Pairs[k].Flow] {
				gain++
			}
		}
		return gain
	}
	pbarSum := func(i int) int {
		sum := 0
		for _, k := range p.PairsAtSwitch(i) {
			sum += p.Pairs[k].PBar
		}
		return sum
	}
	remap := func(i, j int) {
		mapped[i] = true
		s.SwitchController[i] = j
		rest[j] -= p.Gamma[i]
		for _, k := range p.PairsAtSwitch(i) {
			s.Active[k] = true
			covered[p.Pairs[k].Flow] = true
		}
	}

	// Phase 1: coverage by uncovered-flow density.
	for {
		bestSwitch, bestController := -1, -1
		var bestNum, bestDen int // density bestNum/bestDen compared cross-multiplied
		for i := 0; i < p.NumSwitches; i++ {
			if mapped[i] || p.Gamma[i] == 0 {
				continue
			}
			gain := uncoveredGain(i)
			if gain == 0 {
				continue
			}
			j := fitController(i)
			if j < 0 {
				continue
			}
			if bestSwitch < 0 || gain*bestDen > bestNum*p.Gamma[i] {
				bestSwitch, bestController = i, j
				bestNum, bestDen = gain, p.Gamma[i]
			}
		}
		if bestSwitch < 0 {
			break
		}
		remap(bestSwitch, bestController)
	}

	// Phase 2: utilization by programmability density while anything fits.
	for {
		bestSwitch, bestController := -1, -1
		var bestNum, bestDen int
		for i := 0; i < p.NumSwitches; i++ {
			if mapped[i] || p.Gamma[i] == 0 {
				continue
			}
			sum := pbarSum(i)
			if sum == 0 {
				continue
			}
			j := fitController(i)
			if j < 0 {
				continue
			}
			if bestSwitch < 0 || sum*bestDen > bestNum*p.Gamma[i] {
				bestSwitch, bestController = i, j
				bestNum, bestDen = sum, p.Gamma[i]
			}
		}
		if bestSwitch < 0 {
			break
		}
		remap(bestSwitch, bestController)
	}

	s.Runtime = time.Since(start)
	return s, nil
}
