package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// residualOf mirrors scenario.Instance.Residual on a bare Problem: drop every
// pair at an excluded switch, zero the excluded switches' γ, finalize.
func residualOf(t *testing.T, p *Problem, excluded []bool) *Problem {
	t.Helper()
	r := &Problem{
		NumSwitches:    p.NumSwitches,
		NumControllers: p.NumControllers,
		NumFlows:       p.NumFlows,
		Rest:           append([]int(nil), p.Rest...),
		Gamma:          append([]int(nil), p.Gamma...),
		Delay:          append([][]float64(nil), p.Delay...),
		Lambda:         p.Lambda,
	}
	for i, ex := range excluded {
		if ex {
			r.Gamma[i] = 0
		}
	}
	for _, pr := range p.Pairs {
		if !excluded[pr.Switch] {
			r.Pairs = append(r.Pairs, pr)
		}
	}
	if err := r.Finalize(); err != nil {
		t.Fatalf("residual Finalize: %v", err)
	}
	return r
}

// TestDeriveResidualClasses asserts that the class index derived from the
// parent's (what a residual re-plan reuses) is identical, field for field, to
// the index classIndexOf computes from scratch on the residual problem —
// including group order, member order, and templates.
func TestDeriveResidualClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		p := randomProblem(rng)
		if p.classIndexOf() == nil {
			t.Fatalf("trial %d: parent index unusable", trial)
		}
		excluded := make([]bool, p.NumSwitches)
		for i := range excluded {
			excluded[i] = rng.Intn(3) == 0
		}

		scratch := residualOf(t, p, excluded)
		derived := residualOf(t, p, excluded)
		derived.DeriveResidualClasses(p, excluded)
		if derived.classes == nil {
			t.Fatalf("trial %d: derivation was a no-op with a usable parent index", trial)
		}
		want := scratch.classIndexOf()
		if want == nil {
			t.Fatalf("trial %d: scratch index unusable", trial)
		}
		if !reflect.DeepEqual(normalizeClassIndex(want), normalizeClassIndex(derived.classes)) {
			t.Fatalf("trial %d: derived index differs from scratch:\nscratch: %+v\nderived: %+v",
				trial, want, derived.classes)
		}
	}
}

// normalizeClassIndex maps empty-but-non-nil and nil slices to a comparable
// shape (append on an empty template leaves nil in one path, empty in the
// other).
func normalizeClassIndex(ci *classIndex) *classIndex {
	out := &classIndex{numClasses: ci.numClasses}
	out.classOf = append([]int32{}, ci.classOf...)
	out.members = append([]int32{}, ci.members...)
	out.memberOff = append([]int32{}, ci.memberOff...)
	out.tmplSwitch = append([]int32{}, ci.tmplSwitch...)
	out.tmplPBar = append([]int32{}, ci.tmplPBar...)
	out.tmplOff = append([]int32{}, ci.tmplOff...)
	return out
}

// TestDeriveResidualClassesNoop covers the guard paths: derivation must stay
// inert when the parent has no computed index, and must not overwrite an
// index the residual already has.
func TestDeriveResidualClassesNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomProblem(rng)
	excluded := make([]bool, p.NumSwitches)

	r := residualOf(t, p, excluded)
	r.DeriveResidualClasses(p, excluded) // parent index never computed
	if r.classes != nil {
		t.Fatal("derivation ran without a parent index")
	}

	if p.classIndexOf() == nil {
		t.Fatal("parent index unusable")
	}
	r2 := residualOf(t, p, excluded)
	own := r2.classIndexOf()
	r2.DeriveResidualClasses(p, excluded)
	if r2.classes != own {
		t.Fatal("derivation overwrote an existing index")
	}
}
