// Package core implements the paper's primary contribution: the FMSSM
// (Flow Mode Selection and Switch Mapping) problem model, the PM heuristic
// (Algorithm 1), and the two comparison heuristics RetroFlow (switch-level)
// and PG (flow-level).
//
// The package is deliberately free of topology types: a Problem is a pure
// optimization instance over dense indices. internal/scenario builds
// Problems from a topology deployment, a workload, and a failure case.
package core

import (
	"errors"
	"fmt"
	"math"
)

// Pair is an eligible (switch, flow) decision point: flow Flow traverses
// offline switch Switch with β = 1 (at least two paths to the destination
// remain), so configuring the flow in SDN mode there yields PBar = p̄_i^l
// units of path programmability and consumes one unit of the mapped
// controller's capacity.
type Pair struct {
	Switch int
	Flow   int
	PBar   int
}

// Problem is one FMSSM instance: N offline switches, M active controllers,
// L offline flows, and the eligible (switch, flow) pairs.
type Problem struct {
	// NumSwitches (N), NumControllers (M), and NumFlows (L) size the index
	// spaces of Pairs, Delay, Rest, and Gamma.
	NumSwitches    int
	NumControllers int
	NumFlows       int

	// Rest[j] is A_j^rest: controller j's residual capacity in flows.
	Rest []int
	// Delay[i][j] is D_ij: control propagation delay (ms) from offline
	// switch i to active controller j.
	Delay [][]float64
	// Gamma[i] is γ_i: the number of flows traversing offline switch i. It
	// is the whole-switch control cost used by switch-level recovery and by
	// the capacity pre-check of PM's mapping step.
	Gamma []int
	// Pairs lists every eligible (switch, flow) decision point, sorted by
	// (Switch, Flow).
	Pairs []Pair
	// BudgetMs is G: the total control propagation delay of the ideal
	// recovery (every offline switch mapped to its nearest active
	// controller), Σ_i γ_i · min_j D_ij.
	BudgetMs float64
	// Lambda weighs the total-programmability objective against the min-
	// programmability objective: obj = r + Lambda · Σ_l pro^l.
	Lambda float64
	// TotalIterations bounds PM's balancing loop; the paper sets it to the
	// maximum number of offline switches on any offline flow's path.
	TotalIterations int

	// Pair indexes in CSR form, built by Finalize: switch i's pair indices
	// are swPairs[swPairOff[i]:swPairOff[i+1]], flow l's are
	// flowPairs[flowPairOff[l]:flowPairOff[l+1]]. Two flat arrays replace
	// N+L per-switch/per-flow slices: at 10⁶ flows the per-slice headers and
	// append regrowth were the dominant Finalize cost.
	swPairs     []int
	swPairOff   []int32
	flowPairs   []int
	flowPairOff []int32

	// classes caches the flow equivalence-class index used by the aggregated
	// PM/PG paths; computed lazily by classIndexOf.
	classes *classIndex
}

// DefaultLambda is the weight used when Problem.Lambda is zero. A small
// positive weight keeps the lexicographic intent of the two-stage objective
// (balance first, then total programmability) per the paper's reference [17].
const DefaultLambda = 1e-3

// Validation errors.
var (
	ErrEmptyProblem   = errors.New("core: empty problem")
	ErrInvalidProblem = errors.New("core: invalid problem")
)

// Finalize validates the instance, fills derived fields (pair indexes,
// default lambda, TotalIterations when unset), and must be called before the
// problem is handed to any solver.
func (p *Problem) Finalize() error {
	if p.NumSwitches <= 0 || p.NumControllers <= 0 || p.NumFlows <= 0 {
		return fmt.Errorf("%w: N=%d M=%d L=%d", ErrEmptyProblem, p.NumSwitches, p.NumControllers, p.NumFlows)
	}
	if len(p.Rest) != p.NumControllers {
		return fmt.Errorf("%w: len(Rest)=%d, want %d", ErrInvalidProblem, len(p.Rest), p.NumControllers)
	}
	if len(p.Gamma) != p.NumSwitches {
		return fmt.Errorf("%w: len(Gamma)=%d, want %d", ErrInvalidProblem, len(p.Gamma), p.NumSwitches)
	}
	if len(p.Delay) != p.NumSwitches {
		return fmt.Errorf("%w: len(Delay)=%d, want %d", ErrInvalidProblem, len(p.Delay), p.NumSwitches)
	}
	for i, row := range p.Delay {
		if len(row) != p.NumControllers {
			return fmt.Errorf("%w: len(Delay[%d])=%d, want %d", ErrInvalidProblem, i, len(row), p.NumControllers)
		}
		for j, d := range row {
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return fmt.Errorf("%w: Delay[%d][%d]=%v", ErrInvalidProblem, i, j, d)
			}
		}
	}
	for j, a := range p.Rest {
		if a < 0 {
			return fmt.Errorf("%w: Rest[%d]=%d", ErrInvalidProblem, j, a)
		}
	}
	for k, pr := range p.Pairs {
		if pr.Switch < 0 || pr.Switch >= p.NumSwitches {
			return fmt.Errorf("%w: pair %d switch %d", ErrInvalidProblem, k, pr.Switch)
		}
		if pr.Flow < 0 || pr.Flow >= p.NumFlows {
			return fmt.Errorf("%w: pair %d flow %d", ErrInvalidProblem, k, pr.Flow)
		}
		if pr.PBar < 2 {
			return fmt.Errorf("%w: pair %d p̄=%d (eligible pairs need p̄ >= 2)", ErrInvalidProblem, k, pr.PBar)
		}
	}
	// Build both pair indexes as CSR (counting sort): one counting pass per
	// axis, prefix sums, one fill pass.
	p.swPairOff = make([]int32, p.NumSwitches+1)
	p.flowPairOff = make([]int32, p.NumFlows+1)
	for _, pr := range p.Pairs {
		p.swPairOff[pr.Switch+1]++
		p.flowPairOff[pr.Flow+1]++
	}
	for i := 0; i < p.NumSwitches; i++ {
		p.swPairOff[i+1] += p.swPairOff[i]
	}
	for l := 0; l < p.NumFlows; l++ {
		p.flowPairOff[l+1] += p.flowPairOff[l]
	}
	backing := make([]int, 2*len(p.Pairs))
	p.swPairs, p.flowPairs = backing[:len(p.Pairs):len(p.Pairs)], backing[len(p.Pairs):]
	swCur := make([]int32, p.NumSwitches)
	flowCur := make([]int32, p.NumFlows)
	copy(swCur, p.swPairOff[:p.NumSwitches])
	copy(flowCur, p.flowPairOff[:p.NumFlows])
	for k, pr := range p.Pairs {
		p.swPairs[swCur[pr.Switch]] = k
		swCur[pr.Switch]++
		p.flowPairs[flowCur[pr.Flow]] = k
		flowCur[pr.Flow]++
	}
	p.classes = nil
	if p.Lambda == 0 {
		p.Lambda = DefaultLambda
	}
	if p.Lambda < 0 {
		return fmt.Errorf("%w: Lambda=%v", ErrInvalidProblem, p.Lambda)
	}
	if p.TotalIterations == 0 {
		for l := 0; l < p.NumFlows; l++ {
			if n := int(p.flowPairOff[l+1] - p.flowPairOff[l]); n > p.TotalIterations {
				p.TotalIterations = n
			}
		}
		if p.TotalIterations == 0 {
			p.TotalIterations = 1
		}
	}
	return nil
}

// finalized reports whether Finalize has run.
func (p *Problem) finalized() bool { return p.swPairOff != nil }

// PairsAtSwitch returns the indices into Pairs of switch i's eligible pairs.
// The returned slice is a view into the shared CSR index; callers must not
// mutate it.
func (p *Problem) PairsAtSwitch(i int) []int {
	return p.swPairs[p.swPairOff[i]:p.swPairOff[i+1]]
}

// PairsOfFlow returns the indices into Pairs of flow l's eligible pairs.
// The returned slice is a view into the shared CSR index; callers must not
// mutate it.
func (p *Problem) PairsOfFlow(l int) []int {
	return p.flowPairs[p.flowPairOff[l]:p.flowPairOff[l+1]]
}

// EligiblePairCount returns the number of eligible pairs at switch i (the
// maximum SDN-mode control cost the switch can impose on a controller under
// per-flow mode selection).
func (p *Problem) EligiblePairCount(i int) int {
	return int(p.swPairOff[i+1] - p.swPairOff[i])
}

// NearestControllers returns controller indices sorted by ascending delay
// from switch i (stable tie-break on controller index): the paper's C(i).
func (p *Problem) NearestControllers(i int) []int {
	order := make([]int, p.NumControllers)
	for j := range order {
		order[j] = j
	}
	row := p.Delay[i]
	// Insertion sort: M is small (<= 6 in the evaluation) and this keeps the
	// tie-break explicit.
	for a := 1; a < len(order); a++ {
		for b := a; b > 0; b-- {
			x, y := order[b-1], order[b]
			if row[x] > row[y] || (row[x] == row[y] && x > y) {
				order[b-1], order[b] = y, x
			} else {
				break
			}
		}
	}
	return order
}

// TotalRest returns Σ_j A_j^rest.
func (p *Problem) TotalRest() int {
	var t int
	for _, a := range p.Rest {
		t += a
	}
	return t
}

// MaxPossibleProgrammability returns Σ over all pairs of p̄ — the total
// programmability if every eligible pair could be activated.
func (p *Problem) MaxPossibleProgrammability() int {
	var t int
	for _, pr := range p.Pairs {
		t += pr.PBar
	}
	return t
}

// IdealDelayBudget computes G = Σ_i γ_i · min_j D_ij. Scenario builders use
// it to fill BudgetMs; it is exposed for tests and custom instances.
func (p *Problem) IdealDelayBudget() float64 {
	var g float64
	for i := 0; i < p.NumSwitches; i++ {
		best := math.Inf(1)
		for j := 0; j < p.NumControllers; j++ {
			if p.Delay[i][j] < best {
				best = p.Delay[i][j]
			}
		}
		if !math.IsInf(best, 1) {
			g += float64(p.Gamma[i]) * best
		}
	}
	return g
}
