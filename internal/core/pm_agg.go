package core

import (
	"math/bits"
	"slices"
	"time"
)

// pmAgg is the class-aggregated implementation of PM. It replays Algorithm 1
// exactly as pmFlat does, but its unit of work is a variant group (agg.go) —
// "count copies of this flow signature in this recovery state" — instead of
// a flow. Every decision pmFlat takes per flow is taken here once per group
// when capacity covers the whole group, and per copy in merged flow-ID order
// (the walker) when a capacity limit cuts a group, so the resulting Solution
// is byte-identical to pmFlat's (property-tested in agg_test.go).
func pmAgg(p *Problem, ci *classIndex) (*Solution, error) {
	start := time.Now()
	s := NewSolution("PM", p)
	st := newAggState(p, ci)
	sc := scratchPool.Get().(*solverScratch)
	defer scratchPool.Put(sc)

	rest := grabInts(&sc.rest, p.NumControllers)
	copy(rest, p.Rest)
	grabInts(&sc.nearestBuf, p.NumSwitches*p.NumControllers)
	grabBools(&sc.nearestSet, p.NumSwitches)

	inTestSet := grabBools(&sc.inTestSet, p.NumSwitches)
	resetTestSet := func() {
		for i := range inTestSet {
			inTestSet[i] = true
		}
	}
	resetTestSet()
	remaining := p.NumSwitches
	sigma := 0
	testCount := 0

	minH := func() int {
		m := int(^uint(0) >> 1)
		st.forEachGroup(func(_ int32, g *aggGroup) {
			if int(g.h) < m {
				m = int(g.h)
			}
		})
		return m
	}

	// floorPairs as in pmFlat, maintained per group: a group at the floor
	// contributes count pairs at each of its template switches (active or
	// not, exactly like the flat rebuild over all Pairs).
	floorPairs := grabInts(&sc.floorPairs, p.NumSwitches)
	rebuildFloor := func() {
		for i := range floorPairs {
			floorPairs[i] = 0
		}
		st.forEachGroup(func(_ int32, g *aggGroup) {
			if int(g.h) != sigma {
				return
			}
			sw, _ := ci.template(g.class)
			for _, i := range sw {
				floorPairs[i] += int(g.count)
			}
		})
	}
	rebuildFloor()
	// leaveFloor debits n floor copies of class c from every hosting switch.
	leaveFloor := func(c int32, n int) {
		sw, _ := ci.template(c)
		for _, i := range sw {
			floorPairs[i] -= n
		}
	}
	advanceSweep := func() {
		resetTestSet()
		remaining = p.NumSwitches
		testCount++
		sigma = minH()
		rebuildFloor()
	}

	type cand struct {
		gid int32
		bit int32
		alt int32
	}
	var cands []cand

	for testCount < p.TotalIterations {
		// Switch selection and controller mapping are aggregate state only:
		// identical to pmFlat.
		delta, i0 := 0, -1
		for i := 0; i < p.NumSwitches; i++ {
			if inTestSet[i] && floorPairs[i] > delta {
				delta, i0 = floorPairs[i], i
			}
		}
		if i0 < 0 {
			advanceSweep()
			continue
		}
		j0 := s.SwitchController[i0]
		if j0 < 0 {
			j0 = mapSwitchPM(p, sc, rest, i0)
			s.SwitchController[i0] = j0
		}
		inTestSet[i0] = false
		remaining--

		// Floor activation at i0. pmFlat's scratch list sorted by
		// (alternatives asc, flow asc) becomes: candidate groups bucketed by
		// alternatives level; a level either fits in rest[j0] entirely (group
		// moves, order inside the level unobservable) or is cut (merged
		// flow-ID walk up to the remaining capacity).
		cands = cands[:0]
		for idx := st.swClassOff[i0]; idx < st.swClassOff[i0+1]; idx++ {
			c, bit := st.swClass[idx], st.swBit[idx]
			for gid := st.classHead[c]; gid >= 0; gid = st.groups[gid].next {
				g := &st.groups[gid]
				if g.count == 0 || int(g.h) != sigma || g.mask&(1<<uint(bit)) != 0 {
					continue
				}
				cands = append(cands, cand{gid, bit, int32(ci.numPairs(c) - bits.OnesCount64(g.mask))})
			}
		}
		slices.SortFunc(cands, func(a, b cand) int { return int(a.alt - b.alt) })
		for li := 0; li < len(cands) && rest[j0] > 0; {
			lj := li
			total := 0
			for lj < len(cands) && cands[lj].alt == cands[li].alt {
				total += int(st.groups[cands[lj].gid].count)
				lj++
			}
			if rest[j0] >= total {
				for _, cd := range cands[li:lj] {
					g := &st.groups[cd.gid]
					n := int(g.count)
					rest[j0] -= n
					leaveFloor(g.class, n)
					st.moveWholeGroup(cd.gid, g.mask|1<<uint(cd.bit))
				}
			} else {
				w := newAggWalker(st)
				for _, cd := range cands[li:lj] {
					w.addSource(cd.gid, cd.bit)
				}
				w.start()
				for rest[j0] > 0 {
					_, gid, bit, pos, ok := w.next()
					if !ok {
						break
					}
					g := &st.groups[gid]
					rest[j0]--
					leaveFloor(g.class, 1)
					st.addPending(g.class, g.mask|1<<uint(bit), pos)
					w.advance(true)
				}
				w.finish()
			}
			li = lj
		}

		if remaining == 0 {
			advanceSweep()
		}
	}

	// Final pass, as pmFlat: map leftover switches, then alternate
	// (p̄-descending fill, rebalance, upgrade) until a round changes nothing.
	for i := 0; i < p.NumSwitches; i++ {
		if s.SwitchController[i] >= 0 || p.EligiblePairCount(i) == 0 {
			continue
		}
		s.SwitchController[i] = mapLeftoverSwitch(p, sc, rest, i)
	}

	// pmFlat iterates all pairs (p̄ desc, switch asc, flow asc). Template
	// pairs bucketed by (p̄, switch) reproduce that order: cells descend by
	// p̄ then ascend by switch, and the flows of one cell are walked merged.
	type fillCell struct {
		c, bit, sw, pbar int32
	}
	entries := make([]fillCell, 0, len(ci.tmplSwitch))
	maxPBar := int32(0)
	for i := 0; i < p.NumSwitches; i++ {
		for idx := st.swClassOff[i]; idx < st.swClassOff[i+1]; idx++ {
			c, bit := st.swClass[idx], st.swBit[idx]
			pbar := ci.tmplPBar[ci.tmplOff[c]+bit]
			entries = append(entries, fillCell{c, bit, int32(i), pbar})
			if pbar > maxPBar {
				maxPBar = pbar
			}
		}
	}
	// Stable counting sort p̄-descending (entries arrive switch-ascending).
	bucket := grabInts(&sc.bucket, int(maxPBar)+1)
	for _, e := range entries {
		bucket[e.pbar]++
	}
	for v, acc := int(maxPBar), 0; v >= 0; v-- {
		bucket[v], acc = acc, acc+bucket[v]
	}
	sorted := make([]fillCell, len(entries))
	for _, e := range entries {
		sorted[bucket[e.pbar]] = e
		bucket[e.pbar]++
	}

	var fillGids, fillBits []int32
	fill := func() {
		for ei := 0; ei < len(sorted); {
			ej := ei + 1
			for ej < len(sorted) && sorted[ej].pbar == sorted[ei].pbar && sorted[ej].sw == sorted[ei].sw {
				ej++
			}
			j0 := s.SwitchController[sorted[ei].sw]
			if j0 < 0 || rest[j0] <= 0 {
				ei = ej
				continue
			}
			fillGids, fillBits = fillGids[:0], fillBits[:0]
			total := 0
			for _, e := range sorted[ei:ej] {
				for gid := st.classHead[e.c]; gid >= 0; gid = st.groups[gid].next {
					g := &st.groups[gid]
					if g.count == 0 || g.mask&(1<<uint(e.bit)) != 0 {
						continue
					}
					fillGids = append(fillGids, gid)
					fillBits = append(fillBits, e.bit)
					total += int(g.count)
				}
			}
			if total == 0 {
				ei = ej
				continue
			}
			if rest[j0] >= total {
				for x, gid := range fillGids {
					g := &st.groups[gid]
					rest[j0] -= int(g.count)
					st.moveWholeGroup(gid, g.mask|1<<uint(fillBits[x]))
				}
			} else {
				w := newAggWalker(st)
				for x, gid := range fillGids {
					w.addSource(gid, fillBits[x])
				}
				w.start()
				for rest[j0] > 0 {
					_, gid, bit, pos, ok := w.next()
					if !ok {
						break
					}
					g := &st.groups[gid]
					rest[j0]--
					st.addPending(g.class, g.mask|1<<uint(bit), pos)
					w.advance(true)
				}
				w.finish()
			}
			ei = ej
		}
	}

	rebalanceAgg := func() bool {
		activated := grabInts(&sc.activated, p.NumSwitches)
		inactive := grabInts(&sc.inactiveCnt, p.NumSwitches)
		st.forEachGroup(func(_ int32, g *aggGroup) {
			sw, _ := ci.template(g.class)
			for t, i := range sw {
				if g.mask&(1<<uint(t)) != 0 {
					activated[i] += int(g.count)
				} else {
					inactive[i] += int(g.count)
				}
			}
		})
		return rebalanceCore(p, s, rest, activated, inactive)
	}

	upgradeAgg := func() bool {
		changed := false
		// Classify every group by its swap chain (mask-determined; the rest
		// checks only gate cross-controller steps). Chains that never cross
		// controllers neither read nor net-change rest, so those groups batch
		// in one move; the others are walked per copy in global flow order
		// against live rest — exactly flat upgrade's l = 0..L-1 loop.
		var depGids []int32
		st.forEachGroup(func(gid int32, g *aggGroup) {
			final, steps, cross := st.upgradeChain(g.class, g.mask, s, nil)
			if steps == 0 {
				return
			}
			if cross {
				depGids = append(depGids, gid)
				return
			}
			st.moveWholeGroup(gid, final)
			changed = true
		})
		if len(depGids) > 0 {
			w := newAggWalker(st)
			for _, gid := range depGids {
				w.addSource(gid, 0)
			}
			w.start()
			for {
				_, gid, _, pos, ok := w.next()
				if !ok {
					break
				}
				g := &st.groups[gid]
				final, steps, _ := st.upgradeChain(g.class, g.mask, s, rest)
				if steps > 0 {
					changed = true
					st.addPending(g.class, final, pos)
					w.advance(true)
				} else {
					w.advance(false)
				}
			}
			w.finish()
		}
		return changed
	}

	for round := 0; round < 64; round++ {
		fill()
		moved := rebalanceAgg()
		upgraded := upgradeAgg()
		if !moved && !upgraded {
			break
		}
	}

	// Unmap switches with no active pair, then expand groups to the per-pair
	// Solution encoding.
	activeAt := grabBools(&sc.activeAt, p.NumSwitches)
	st.forEachGroup(func(_ int32, g *aggGroup) {
		if g.mask == 0 {
			return
		}
		sw, _ := ci.template(g.class)
		for m := g.mask; m != 0; m &= m - 1 {
			activeAt[sw[bits.TrailingZeros64(m)]] = true
		}
	})
	for i := range s.SwitchController {
		if !activeAt[i] {
			s.SwitchController[i] = -1
		}
	}
	st.expandActive(s)

	s.Runtime = time.Since(start)
	return s, nil
}

// upgradeChain runs one flow's upgrade swap chain from mask. With rest ==
// nil it simulates the whole chain ignoring capacity and reports whether any
// step moves load across controllers; with live rest it applies the chain as
// flat upgrade would, stopping at the first blocked cross-controller step
// and mutating rest in place.
func (st *aggState) upgradeChain(c int32, mask uint64, s *Solution, rest []int) (final uint64, steps int, cross bool) {
	sw, pbar := st.ci.template(c)
	for {
		worst, best := -1, -1
		for t := range sw {
			if mask&(1<<uint(t)) != 0 {
				if worst < 0 || pbar[t] < pbar[worst] {
					worst = t
				}
				continue
			}
			if s.SwitchController[sw[t]] < 0 {
				continue
			}
			if best < 0 || pbar[t] > pbar[best] {
				best = t
			}
		}
		if worst < 0 || best < 0 || pbar[best] <= pbar[worst] {
			break
		}
		jOld := int(s.SwitchController[sw[worst]])
		jNew := int(s.SwitchController[sw[best]])
		if jNew != jOld {
			cross = true
			if rest != nil {
				if rest[jNew] <= 0 {
					break
				}
				rest[jOld]++
				rest[jNew]--
			}
		}
		mask = mask&^(1<<uint(worst)) | 1<<uint(best)
		steps++
	}
	return mask, steps, cross
}

// expandActive writes every group's mask out to the per-flow Active array:
// member flow l with template bit t set activates pair flowPairs[off(l)+t].
func (st *aggState) expandActive(s *Solution) {
	st.forEachGroup(func(_ int32, g *aggGroup) {
		if g.mask == 0 {
			return
		}
		for _, sp := range g.spans {
			for pos := sp.lo; pos < sp.hi; pos++ {
				l := st.ci.members[pos]
				for m := g.mask; m != 0; m &= m - 1 {
					s.Active[st.p.pairOf(l, int32(bits.TrailingZeros64(m)))] = true
				}
			}
		}
	})
}
