package core

import "sync"

// solverScratch bundles the per-solve working arrays of the flat PM/PG paths.
// One instance is checked out of scratchPool per solve and returned on exit,
// so a steady-state solve allocates nothing beyond its Solution: the parallel
// sweep engine and the daemon's reconcile loop hit these solvers once per
// case, and the per-case make() churn dominated their allocation profiles.
//
// Only internal scratch lives here. Anything a Solution or Report retains
// (Active, SwitchController, PairController, FlowProg, ControllerLoad) is
// still freshly allocated per solve.
type solverScratch struct {
	rest         []int
	h            []int
	alternatives []int
	floorPairs   []int
	pairScratch  []int
	bucket       []int
	order        []int
	activated    []int
	inactiveCnt  []int
	inTestSet    []bool
	activeAt     []bool
	// nearest-controller cache: row i is nearestBuf[i*M:(i+1)*M], valid when
	// nearestSet[i].
	nearestBuf []int
	nearestSet []bool
}

var scratchPool = sync.Pool{New: func() any { return new(solverScratch) }}

// grabInts resizes *buf to n and zeroes it.
func grabInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	s := *buf
	for i := range s {
		s[i] = 0
	}
	return s
}

// grabBools resizes *buf to n and clears it.
func grabBools(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	s := *buf
	for i := range s {
		s[i] = false
	}
	return s
}

// nearestRow returns the delay-ascending controller order for switch i,
// computing it into the pooled cache on first use.
func (sc *solverScratch) nearestRow(p *Problem, i int) []int {
	m := p.NumControllers
	row := sc.nearestBuf[i*m : (i+1)*m]
	if sc.nearestSet[i] {
		return row
	}
	for j := range row {
		row[j] = j
	}
	d := p.Delay[i]
	// Insertion sort with an explicit index tie-break, as NearestControllers.
	for a := 1; a < len(row); a++ {
		for b := a; b > 0; b-- {
			x, y := row[b-1], row[b]
			if d[x] > d[y] || (d[x] == d[y] && x > y) {
				row[b-1], row[b] = y, x
			} else {
				break
			}
		}
	}
	sc.nearestSet[i] = true
	return row
}
