package ospf

import (
	"errors"
	"testing"

	"pmedic/internal/graphalg"
	"pmedic/internal/topo"
)

func unit(a, b topo.NodeID) float64 { return 1 }

func square(t *testing.T) *topo.Graph {
	t.Helper()
	g := &topo.Graph{}
	for i := 0; i < 4; i++ {
		g.AddNode("n", 0, 0)
	}
	for _, e := range [][2]topo.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestInstallFreshness(t *testing.T) {
	db := NewDatabase()
	if !db.Install(LSA{Router: 1, Seq: 2}) {
		t.Fatal("first install must change the database")
	}
	if db.Install(LSA{Router: 1, Seq: 1}) {
		t.Fatal("stale LSA must be ignored")
	}
	if db.Install(LSA{Router: 1, Seq: 2}) {
		t.Fatal("same-seq LSA must be ignored")
	}
	if !db.Install(LSA{Router: 1, Seq: 3}) {
		t.Fatal("fresher LSA must be installed")
	}
	if db.Len() != 1 {
		t.Fatalf("len = %d", db.Len())
	}
}

func TestInstallCopiesLinks(t *testing.T) {
	db := NewDatabase()
	links := []Link{{Neighbor: 2, Cost: 1}}
	db.Install(LSA{Router: 1, Seq: 1, Links: links})
	links[0].Cost = 99
	got, _ := db.Get(1)
	if got.Links[0].Cost != 1 {
		t.Fatal("database shares caller's link slice")
	}
}

func TestOriginate(t *testing.T) {
	g := square(t)
	lsa := Originate(g, 0, 7, unit)
	if lsa.Router != 0 || lsa.Seq != 7 || len(lsa.Links) != 2 {
		t.Fatalf("lsa = %+v", lsa)
	}
}

func TestSPFSquare(t *testing.T) {
	g := square(t)
	tables, err := ComputeTables(g, unit)
	if err != nil {
		t.Fatal(err)
	}
	t0 := tables[0]
	if nh := t0.NextHop(1); nh != 1 {
		t.Fatalf("next hop to 1 = %d", nh)
	}
	if nh := t0.NextHop(3); nh != 3 {
		t.Fatalf("next hop to 3 = %d", nh)
	}
	// Node 2 is equidistant via 1 and 3: deterministic tie-break via 1.
	if nh := t0.NextHop(2); nh != 1 {
		t.Fatalf("next hop to 2 = %d, want 1 (tie-break)", nh)
	}
	if d, ok := t0.DistanceTo(2); !ok || d != 2 {
		t.Fatalf("distance to 2 = %v, %v", d, ok)
	}
	if t0.NextHop(0) != -1 {
		t.Fatal("next hop to self must be -1")
	}
	if t0.NextHop(99) != -1 {
		t.Fatal("unknown destination must be -1")
	}
}

func TestSPFAgreesWithDijkstraOnATT(t *testing.T) {
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	g := dep.Graph
	w, err := g.EdgeDelaysMs()
	if err != nil {
		t.Fatal(err)
	}
	tables, err := ComputeTables(g, w)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < g.NumNodes(); src++ {
		tree, err := graphalg.Dijkstra(g, topo.NodeID(src), w)
		if err != nil {
			t.Fatal(err)
		}
		for dst := 0; dst < g.NumNodes(); dst++ {
			if dst == src {
				continue
			}
			d, ok := tables[src].DistanceTo(topo.NodeID(dst))
			if !ok {
				t.Fatalf("SPF %d->%d unreachable", src, dst)
			}
			if diff := d - tree.Dist[dst]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("SPF dist %d->%d = %v, dijkstra %v", src, dst, d, tree.Dist[dst])
			}
		}
	}
}

func TestSPFIgnoresOneWayLinks(t *testing.T) {
	db := NewDatabase()
	// Router 0 claims a link to 1, but 1 does not reciprocate.
	db.Install(LSA{Router: 0, Seq: 1, Links: []Link{{Neighbor: 1, Cost: 1}}})
	db.Install(LSA{Router: 1, Seq: 1})
	tab, err := db.SPF(0)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NextHop(1) != -1 {
		t.Fatal("one-way link must not be routed over")
	}
}

func TestSPFUnknownRouter(t *testing.T) {
	db := NewDatabase()
	if _, err := db.SPF(5); !errors.Is(err, ErrUnknownRouter) {
		t.Fatalf("error = %v", err)
	}
}

func TestTableDestinations(t *testing.T) {
	g := square(t)
	tables, err := ComputeTables(g, unit)
	if err != nil {
		t.Fatal(err)
	}
	dsts := tables[0].Destinations()
	if len(dsts) != 3 {
		t.Fatalf("destinations = %v", dsts)
	}
	for i := 1; i < len(dsts); i++ {
		if dsts[i] <= dsts[i-1] {
			t.Fatalf("destinations unsorted: %v", dsts)
		}
	}
}

func TestFloodConverges(t *testing.T) {
	g := square(t)
	dbs := make([]*Database, g.NumNodes())
	for i := range dbs {
		dbs[i] = NewDatabase()
	}
	lsa := Originate(g, 0, 1, unit)
	msgs, err := Flood(g, dbs, lsa)
	if err != nil {
		t.Fatal(err)
	}
	if msgs == 0 {
		t.Fatal("flooding sent no messages")
	}
	for i, db := range dbs {
		if got, ok := db.Get(0); !ok || got.Seq != 1 {
			t.Fatalf("node %d missed the LSA", i)
		}
	}
	// Re-flooding the same LSA is cheap: only the origin's neighbors hear
	// it again and drop it.
	again, err := Flood(g, dbs, lsa)
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Fatalf("stale re-flood sent %d messages, want 0", again)
	}
}

func TestFloodBadOrigin(t *testing.T) {
	g := square(t)
	dbs := make([]*Database, g.NumNodes())
	for i := range dbs {
		dbs[i] = NewDatabase()
	}
	if _, err := Flood(g, dbs, LSA{Router: 44}); !errors.Is(err, ErrUnknownRouter) {
		t.Fatalf("error = %v", err)
	}
}

func TestRoutersSorted(t *testing.T) {
	db := NewDatabase()
	for _, r := range []topo.NodeID{5, 1, 3} {
		db.Install(LSA{Router: r, Seq: 1})
	}
	rs := db.Routers()
	if len(rs) != 3 || rs[0] != 1 || rs[1] != 3 || rs[2] != 5 {
		t.Fatalf("routers = %v", rs)
	}
}
