// Package ospf implements the legacy routing plane of the hybrid switches: a
// simplified OSPF — router link-state advertisements, a flooded link-state
// database with sequence-number freshness, the two-way connectivity check,
// and per-router SPF yielding destination-based next-hop tables. These
// tables are what a hybrid switch falls back to when a packet misses its
// OpenFlow table (the paper's Fig. 2(c) pipeline).
package ospf

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"pmedic/internal/topo"
)

// Link is one adjacency advertised by a router.
type Link struct {
	Neighbor topo.NodeID
	Cost     float64
}

// LSA is a router link-state advertisement. Higher Seq supersedes lower.
type LSA struct {
	Router topo.NodeID
	Seq    uint64
	Links  []Link
}

// clone deep-copies the LSA so databases never share link slices.
func (l LSA) clone() LSA {
	links := make([]Link, len(l.Links))
	copy(links, l.Links)
	l.Links = links
	return l
}

// Database is one router's view of the network: the freshest LSA it has
// heard from every router.
type Database struct {
	lsas map[topo.NodeID]LSA
}

// NewDatabase returns an empty link-state database.
func NewDatabase() *Database {
	return &Database{lsas: make(map[topo.NodeID]LSA)}
}

// Install merges an LSA, keeping the freshest per router. It reports whether
// the database changed (the flooding criterion).
func (db *Database) Install(lsa LSA) bool {
	cur, ok := db.lsas[lsa.Router]
	if ok && cur.Seq >= lsa.Seq {
		return false
	}
	db.lsas[lsa.Router] = lsa.clone()
	return true
}

// Get returns the stored LSA for a router.
func (db *Database) Get(router topo.NodeID) (LSA, bool) {
	lsa, ok := db.lsas[router]
	return lsa, ok
}

// Routers returns the routers present in the database, ascending.
func (db *Database) Routers() []topo.NodeID {
	out := make([]topo.NodeID, 0, len(db.lsas))
	for r := range db.lsas {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of stored LSAs.
func (db *Database) Len() int { return len(db.lsas) }

// Originate builds the LSA a router should advertise for its current
// adjacencies in g under weight w.
func Originate(g *topo.Graph, router topo.NodeID, seq uint64, w func(a, b topo.NodeID) float64) LSA {
	lsa := LSA{Router: router, Seq: seq}
	for _, n := range g.Neighbors(router) {
		lsa.Links = append(lsa.Links, Link{Neighbor: n, Cost: w(router, n)})
	}
	return lsa
}

// twoWay reports whether the database confirms the directed link a->b in
// both directions (OSPF only routes over bidirectional adjacencies).
func (db *Database) twoWay(a, b topo.NodeID) (float64, bool) {
	la, ok := db.lsas[a]
	if !ok {
		return 0, false
	}
	var cost float64
	found := false
	for _, l := range la.Links {
		if l.Neighbor == b {
			cost, found = l.Cost, true
			break
		}
	}
	if !found {
		return 0, false
	}
	lb, ok := db.lsas[b]
	if !ok {
		return 0, false
	}
	for _, l := range lb.Links {
		if l.Neighbor == a {
			return cost, true
		}
	}
	return 0, false
}

// Table is a destination-based legacy routing table: the classic result of
// running SPF on the database.
type Table struct {
	Router  topo.NodeID
	nextHop map[topo.NodeID]topo.NodeID
	dist    map[topo.NodeID]float64
}

// NextHop returns the next hop toward dst, or -1 when dst is unreachable
// (or is the router itself).
func (t *Table) NextHop(dst topo.NodeID) topo.NodeID {
	if nh, ok := t.nextHop[dst]; ok {
		return nh
	}
	return -1
}

// DistanceTo returns the SPF cost to dst and whether dst is reachable.
func (t *Table) DistanceTo(dst topo.NodeID) (float64, bool) {
	d, ok := t.dist[dst]
	return d, ok
}

// Destinations returns the reachable destinations, ascending.
func (t *Table) Destinations() []topo.NodeID {
	out := make([]topo.NodeID, 0, len(t.nextHop))
	for d := range t.nextHop {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ErrUnknownRouter reports an SPF request for a router with no LSA.
var ErrUnknownRouter = errors.New("ospf: unknown router")

type spfItem struct {
	node topo.NodeID
	dist float64
	seq  int
}

type spfHeap []spfItem

func (h spfHeap) Len() int { return len(h) }
func (h spfHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].seq < h[j].seq
}
func (h spfHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *spfHeap) Push(x any) {
	it, ok := x.(spfItem)
	if !ok {
		return // unreachable: Push only via heap.Push
	}
	*h = append(*h, it)
}
func (h *spfHeap) Pop() any {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// SPF runs Dijkstra over the two-way-checked database topology and returns
// root's routing table. Equal-cost ties resolve toward the lower-numbered
// upstream node, so tables are deterministic.
func (db *Database) SPF(root topo.NodeID) (*Table, error) {
	if _, ok := db.lsas[root]; !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownRouter, root)
	}
	dist := map[topo.NodeID]float64{root: 0}
	parent := map[topo.NodeID]topo.NodeID{}
	done := map[topo.NodeID]bool{}
	q := &spfHeap{{node: root}}
	seq := 1
	for q.Len() > 0 {
		it, _ := heap.Pop(q).(spfItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		lsa, ok := db.lsas[u]
		if !ok {
			continue
		}
		for _, l := range lsa.Links {
			cost, ok := db.twoWay(u, l.Neighbor)
			if !ok {
				continue
			}
			v := l.Neighbor
			nd := dist[u] + cost
			old, seen := dist[v]
			switch {
			case !seen || nd < old:
				dist[v] = nd
				parent[v] = u
				heap.Push(q, spfItem{node: v, dist: nd, seq: seq})
				seq++
			case nd == old && u < parent[v]:
				parent[v] = u
			}
		}
	}
	t := &Table{Router: root, nextHop: make(map[topo.NodeID]topo.NodeID, len(dist)), dist: dist}
	for dst := range dist {
		if dst == root {
			continue
		}
		// Walk up the SPF tree to the first hop out of root.
		v := dst
		for parent[v] != root {
			v = parent[v]
		}
		t.nextHop[dst] = v
	}
	return t, nil
}

// ComputeTables originates an LSA for every node of g, installs them into a
// single converged database, and returns each node's routing table indexed
// by node ID. This is the steady-state result that flooding converges to.
func ComputeTables(g *topo.Graph, w func(a, b topo.NodeID) float64) ([]*Table, error) {
	db := NewDatabase()
	for v := 0; v < g.NumNodes(); v++ {
		db.Install(Originate(g, topo.NodeID(v), 1, w))
	}
	tables := make([]*Table, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		t, err := db.SPF(topo.NodeID(v))
		if err != nil {
			return nil, err
		}
		tables[v] = t
	}
	return tables, nil
}

// Flood simulates synchronous flooding of an LSA from its originator over
// the graph: each router that learns something new forwards to all
// neighbors in the next round. It updates the per-node databases in place
// and returns the number of LSA messages sent — the convergence cost a
// failover incurs before legacy tables are consistent.
func Flood(g *topo.Graph, dbs []*Database, lsa LSA) (messages int, err error) {
	if int(lsa.Router) >= len(dbs) || lsa.Router < 0 {
		return 0, fmt.Errorf("%w: %d", ErrUnknownRouter, lsa.Router)
	}
	frontier := []topo.NodeID{}
	if dbs[lsa.Router].Install(lsa) {
		frontier = append(frontier, lsa.Router)
	}
	for len(frontier) > 0 {
		var next []topo.NodeID
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				messages++
				if dbs[v].Install(lsa) {
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return messages, nil
}
