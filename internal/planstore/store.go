package planstore

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"os"
	"sync/atomic"
	"time"

	"pmedic/internal/core"
	"pmedic/internal/scenario"
)

// Store is an open plan-store file. The payload region stays memory-mapped
// (falling back to a plain read where mmap is unavailable), so lookups touch
// only the pages holding the hit record. A Store is immutable after Open and
// safe for concurrent use.
type Store struct {
	path   string
	data   []byte
	mapped bool
	hdr    Header

	// keys holds the index keys ascending; entries[i] locates keys[i]'s
	// payload. ok is false for records past a truncated tail.
	keys    []uint64
	entries []entry

	// verified[i] latches after entries[i]'s payload CRC has checked out
	// once: the mapping is immutable and read-only, so re-hashing the same
	// bytes on every decode buys nothing on the failure path.
	verified []atomic.Bool
	// tmpl caches the per-problem decode preamble (see template).
	tmpl atomic.Pointer[template]
}

type entry struct {
	off    uint64
	length uint32
	crc    uint32
	ok     bool
}

// Rec is one indexed plan, located but not yet decoded. The payload is a
// view into the store's mapping; Decode verifies its CRC before first use.
type Rec struct {
	// Key is the failure-set bitmask the plan was compiled for.
	Key     uint64
	payload []byte
	crc     uint32
	idx     int
}

// FailedSet returns the record's failed controller indices, ascending.
func (r Rec) FailedSet() []int { return failedSetOf(r.Key) }

// Open maps the plan-store file and validates its header and index. A file
// whose record region is truncated still opens — the missing records simply
// report absent — but a torn header or index fails with ErrCorrupt: the
// index is the source of truth for every lookup, so it must be intact.
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("planstore: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("planstore: %w", err)
	}
	size := int(fi.Size())

	data, mapped, err := mmapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("planstore: mmap %s: %w", path, err)
	}
	if data == nil {
		if data, err = os.ReadFile(path); err != nil {
			return nil, fmt.Errorf("planstore: %w", err)
		}
	}
	st := &Store{path: path, data: data, mapped: mapped}
	if err := st.parse(); err != nil {
		_ = st.Close()
		return nil, err
	}
	return st, nil
}

func (st *Store) parse() error {
	hdr, err := decodeHeader(st.data)
	if err != nil {
		return err
	}
	st.hdr = hdr
	idxEnd := hdrSize + hdr.NumEntries*entrySize
	if idxEnd+4 > len(st.data) {
		return fmt.Errorf("%w: index for %d entries truncated (%d bytes on disk)", ErrCorrupt, hdr.NumEntries, len(st.data))
	}
	idx := st.data[hdrSize:idxEnd]
	if sum := binary.BigEndian.Uint32(st.data[idxEnd:]); sum != checksum(idx) {
		return fmt.Errorf("%w: index CRC mismatch", ErrCorrupt)
	}
	recStart := uint64(idxEnd + 4)
	st.keys = make([]uint64, hdr.NumEntries)
	st.entries = make([]entry, hdr.NumEntries)
	st.verified = make([]atomic.Bool, hdr.NumEntries)
	for i := range st.entries {
		row := idx[i*entrySize:]
		e := entry{
			off:    binary.BigEndian.Uint64(row[8:]),
			length: binary.BigEndian.Uint32(row[16:]),
			crc:    binary.BigEndian.Uint32(row[20:]),
		}
		st.keys[i] = binary.BigEndian.Uint64(row)
		if i > 0 && st.keys[i] <= st.keys[i-1] {
			return fmt.Errorf("%w: index keys not strictly ascending at entry %d", ErrCorrupt, i)
		}
		// Records past the end of the file are a truncated tail: tolerated,
		// served as absent. An offset inside the header/index can only come
		// from corruption.
		if e.off < recStart {
			return fmt.Errorf("%w: entry %d offset %d inside index", ErrCorrupt, i, e.off)
		}
		e.ok = e.off+uint64(e.length) <= uint64(len(st.data))
		st.entries[i] = e
	}
	return nil
}

// Close releases the mapping. Records obtained from the store must not be
// used after Close.
func (st *Store) Close() error {
	data := st.data
	st.data, st.keys, st.entries = nil, nil, nil
	if st.mapped && data != nil {
		st.mapped = false
		return munmap(data)
	}
	return nil
}

// Path returns the file the store was opened from.
func (st *Store) Path() string { return st.path }

// Header returns the file header.
func (st *Store) Header() Header { return st.hdr }

// Len returns the number of indexed failure sets.
func (st *Store) Len() int { return len(st.keys) }

func (st *Store) rec(i int) Rec {
	e := st.entries[i]
	return Rec{Key: st.keys[i], payload: st.data[e.off : e.off+uint64(e.length)], crc: e.crc, idx: i}
}

// Exact locates the plan compiled for exactly this failure set by binary
// search over the sorted index. ok is false when the set was never compiled
// or its record fell past a truncated tail.
func (st *Store) Exact(failed []int) (Rec, bool) {
	key, ok := KeyOf(failed)
	if !ok {
		return Rec{}, false
	}
	// Hand-rolled binary search: this is the daemon's failure path, and
	// sort.Search's closure call per probe is measurable against a
	// sub-microsecond lookup budget.
	lo, hi := 0, len(st.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if st.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(st.keys) || st.keys[lo] != key || !st.entries[lo].ok {
		return Rec{}, false
	}
	return st.rec(lo), true
}

// Superset locates the nearest compiled plan for a strict superset of the
// failure set: fewest extra failed controllers first, smallest key on ties,
// so the fallback repairs as little as possible. ok is false when no
// compiled set contains this one.
func (st *Store) Superset(failed []int) (Rec, bool) {
	key, ok := KeyOf(failed)
	if !ok {
		return Rec{}, false
	}
	best, bestPop := -1, maxControllers+1
	for i, k := range st.keys {
		if k == key || k&key != key || !st.entries[i].ok {
			continue
		}
		if pop := bits.OnesCount64(k); pop < bestPop {
			best, bestPop = i, pop
		}
	}
	if best < 0 {
		return Rec{}, false
	}
	return st.rec(best), true
}

// Decode materializes a record into a fresh solution for the instance the
// record was compiled for. The record's CRC is verified on first access: a
// bit flip anywhere in the payload fails with ErrCorrupt rather than
// yielding a plausible-but-wrong plan, and a clean verification latches —
// the mapping is immutable, so later decodes skip the hash.
func (st *Store) Decode(r Rec, inst *scenario.Instance) (*core.Solution, error) {
	sol := core.NewSolution(st.hdr.Algorithm, inst.Problem)
	if err := st.DecodeInto(r, inst, sol); err != nil {
		return nil, err
	}
	return sol, nil
}

// DecodeInto is Decode into a caller-provided solution shell sized for the
// instance — the zero-allocation hit path. The shell's Algorithm and family
// flags are overwritten from the store header.
func (st *Store) DecodeInto(r Rec, inst *scenario.Instance, sol *core.Solution) error {
	key, ok := KeyOf(inst.Failed)
	if !ok || key != r.Key {
		return fmt.Errorf("%w: record key %#x, instance failure set %v", ErrMismatch, r.Key, inst.Failed)
	}
	if !st.verified[r.idx].Load() {
		if checksum(r.payload) != r.crc {
			return fmt.Errorf("%w: record %#x payload CRC mismatch", ErrCorrupt, r.Key)
		}
		st.verified[r.idx].Store(true)
	}
	sol.Algorithm = st.hdr.Algorithm
	sol.SwitchLevel = st.hdr.SwitchLevel
	sol.MiddleLayer = st.hdr.MiddleLayer
	return decodePlanInto(st.templateFor(inst.Problem), r.payload, sol)
}

// templateFor returns the cached decode template for p, building and
// publishing a fresh one when the cached slot belongs to another instance.
func (st *Store) templateFor(p *core.Problem) *template {
	if t := st.tmpl.Load(); t != nil && t.p == p {
		return t
	}
	t := newTemplate(p)
	st.tmpl.Store(t)
	return t
}

// Lookup serves the plan compiled for exactly the instance's failure set.
// ok is false when the set was never compiled; the caller then decides
// between Superset fallback and a fresh solve (Consult bundles the policy).
func (st *Store) Lookup(inst *scenario.Instance) (sol *core.Solution, ok bool, err error) {
	start := time.Now()
	rec, ok := st.Exact(inst.Failed)
	if !ok {
		return nil, false, nil
	}
	sol, err = st.Decode(rec, inst)
	if err != nil {
		return nil, false, err
	}
	sol.Runtime = time.Since(start)
	return sol, true, nil
}
