//go:build unix

package planstore

import (
	"os"
	"syscall"
)

// mmapFile maps the file read-only. A nil slice with nil error asks the
// caller to fall back to reading the file into memory (empty file, or a
// filesystem that refuses the mapping).
func mmapFile(f *os.File, size int) (data []byte, mapped bool, err error) {
	if size <= 0 {
		return nil, false, nil
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, nil
	}
	return data, true, nil
}

func munmap(data []byte) error { return syscall.Munmap(data) }
