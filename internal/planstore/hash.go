package planstore

import (
	"hash/crc32"
	"math"

	"pmedic/internal/flow"
	"pmedic/internal/topo"
)

// checksum is the file's frame checksum — CRC32-IEEE, matching the WAL's.
func checksum(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

const (
	fnvOffset = uint64(14695981039346656037)
	fnvPrime  = uint64(1099511628211)
)

// TopoHash fingerprints everything a compiled plan depends on: the graph
// (names and coordinates drive delays), the control plane (sites, domains,
// capacities), and the workload generation options (flows are deterministic
// given graph + options, so hashing the options covers the flows). A daemon
// whose deployment hashes differently from a store's header must not serve
// its plans — switch indices, delays, and capacities would all be stale.
func TopoHash(dep *topo.Deployment, flows *flow.Set) uint64 {
	h := fnvOffset
	mix := func(v uint64) {
		h = (h ^ v) * fnvPrime
	}
	mixStr := func(s string) {
		mix(uint64(len(s)))
		for i := 0; i < len(s); i++ {
			mix(uint64(s[i]))
		}
	}

	g := dep.Graph
	mix(uint64(g.NumNodes()))
	for _, n := range g.Nodes() {
		mixStr(n.Name)
		mix(math.Float64bits(n.Lat))
		mix(math.Float64bits(n.Lon))
	}
	edges := g.Edges()
	mix(uint64(len(edges)))
	for _, e := range edges {
		mix(uint64(e.A))
		mix(uint64(e.B))
	}

	mix(uint64(len(dep.Controllers)))
	for _, c := range dep.Controllers {
		mix(uint64(c.Site))
		mix(uint64(c.Capacity))
		mix(uint64(len(c.Domain)))
		for _, sw := range c.Domain {
			mix(uint64(sw))
		}
	}

	opts := flows.Options()
	if opts.Unordered {
		mix(1)
	} else {
		mix(0)
	}
	mix(uint64(opts.Slack))
	mix(uint64(opts.Limit))
	mix(uint64(flows.Len()))
	return h
}
