package planstore

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"os"
	"path/filepath"
	"sort"
	"time"

	"pmedic/internal/core"
	"pmedic/internal/eval"
	"pmedic/internal/flow"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

// CompileOptions tunes Compile. The zero value sweeps nothing; set Depth or
// Sets.
type CompileOptions struct {
	// Depth sweeps every failure combination of size 1..Depth (capped at
	// M-1). Ignored when Sets is non-nil.
	Depth int
	// Sets, when non-nil, names the exact failure sets to compile instead of
	// a full depth sweep — the sparse-store escape hatch for deployments
	// where only some combinations are credible (or affordable).
	Sets [][]int
	// Workers bounds the compile's solver concurrency; <= 0 selects one per
	// available CPU (eval.ForEachCase semantics).
	Workers int
	// Mode selects the sweep engine's case-compilation strategy: delta
	// (default) patches each case out of a Gray-adjacent neighbor, scratch
	// compiles each independently. The written store is byte-identical
	// either way.
	Mode eval.SweepMode
	// Solve produces the plan for one compiled instance; nil selects
	// core.PM. It must be deterministic and safe for concurrent calls — the
	// store's contract is that a lookup reproduces a fresh solve bit for bit.
	Solve func(*core.Problem) (*core.Solution, error)
	// Algorithm names Solve in the file header (and in every decoded
	// solution); empty defaults to "PM".
	Algorithm string
	// Context, when non-nil, supplies the precomputed scenario state; nil
	// builds one.
	Context *scenario.Context
}

// CompileStats summarizes a finished compile.
type CompileStats struct {
	// Entries is the number of plans written; Depth the largest failure-set
	// size among them.
	Entries int
	Depth   int
	// Bytes is the file size, PayloadBytes the delta-record share of it —
	// the compression the delta encoding achieves is visible as
	// PayloadBytes/Entries against the dense solution size.
	Bytes        int64
	PayloadBytes int64
	// TopoHash is the header's deployment fingerprint.
	TopoHash uint64
	Elapsed  time.Duration
}

// Compile sweeps the requested failure combinations with the parallel sweep
// engine, solves each, and writes the plan store to path — temp file,
// fsync, rename, so a crash never leaves a half-written store behind. The
// sweep is deterministic: same deployment, workload, and options produce an
// identical file.
func Compile(dep *topo.Deployment, flows *flow.Set, path string, opts CompileOptions) (*CompileStats, error) {
	start := time.Now()
	m := len(dep.Controllers)
	if m > maxControllers {
		return nil, fmt.Errorf("planstore: %d controllers exceed the format's %d-controller key", m, maxControllers)
	}
	solve := opts.Solve
	if solve == nil {
		solve = core.PM
	}
	alg := opts.Algorithm
	if alg == "" {
		alg = "PM"
	}
	ctx := opts.Context
	if ctx == nil {
		var err error
		ctx, err = scenario.NewContext(dep, flows)
		if err != nil {
			return nil, fmt.Errorf("planstore: %w", err)
		}
	}

	combos := opts.Sets
	if combos == nil {
		combos = scenario.CombinationsUpTo(m, opts.Depth)
	}
	if len(combos) == 0 {
		return nil, fmt.Errorf("planstore: nothing to compile (depth %d, %d explicit sets)", opts.Depth, len(opts.Sets))
	}
	keys := make([]uint64, len(combos))
	seen := make(map[uint64]int, len(combos))
	for idx, failed := range combos {
		key, ok := KeyOf(failed)
		if !ok {
			return nil, fmt.Errorf("planstore: invalid failure set %v", failed)
		}
		if prev, dup := seen[key]; dup {
			return nil, fmt.Errorf("planstore: failure sets %v and %v collide", combos[prev], failed)
		}
		seen[key] = idx
		keys[idx] = key
	}

	// Solve and delta-encode every case in parallel; slots keep the results
	// in enumeration order so the file is deterministic.
	payloads := make([][]byte, len(combos))
	families := make([][2]bool, len(combos))
	err := eval.ForEachCaseMode(ctx, combos, opts.Workers, opts.Mode, func(idx int, inst *scenario.Instance) error {
		sol, err := solve(inst.Problem)
		if err != nil {
			return fmt.Errorf("planstore: case %v: %w", combos[idx], err)
		}
		payload, err := encodePlan(inst.Problem, sol)
		if err != nil {
			return fmt.Errorf("planstore: case %v: %w", combos[idx], err)
		}
		payloads[idx] = payload
		families[idx] = [2]bool{sol.SwitchLevel, sol.MiddleLayer}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for idx, f := range families {
		if f != families[0] {
			return nil, fmt.Errorf("planstore: case %v: mixed solution families in one store", combos[idx])
		}
	}

	hdr := Header{
		Version:        version,
		TopoHash:       TopoHash(dep, flows),
		NumControllers: m,
		NumEntries:     len(combos),
		Algorithm:      alg,
		SwitchLevel:    families[0][0],
		MiddleLayer:    families[0][1],
	}
	order := make([]int, len(combos))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	var payloadBytes int64
	for idx, key := range keys {
		if d := bits.OnesCount64(key); d > hdr.Depth {
			hdr.Depth = d
		}
		payloadBytes += int64(len(payloads[idx]))
	}

	head, err := encodeHeader(hdr)
	if err != nil {
		return nil, err
	}
	idxEnd := hdrSize + len(combos)*entrySize
	file := make([]byte, 0, idxEnd+4+int(payloadBytes))
	file = append(file, head...)
	off := uint64(idxEnd + 4)
	for _, idx := range order {
		var row [entrySize]byte
		binary.BigEndian.PutUint64(row[0:], keys[idx])
		binary.BigEndian.PutUint64(row[8:], off)
		binary.BigEndian.PutUint32(row[16:], uint32(len(payloads[idx])))
		binary.BigEndian.PutUint32(row[20:], checksum(payloads[idx]))
		file = append(file, row[:]...)
		off += uint64(len(payloads[idx]))
	}
	file = binary.BigEndian.AppendUint32(file, checksum(file[hdrSize:idxEnd]))
	for _, idx := range order {
		file = append(file, payloads[idx]...)
	}

	if err := writeAtomic(path, file); err != nil {
		return nil, err
	}
	return &CompileStats{
		Entries:      len(combos),
		Depth:        hdr.Depth,
		Bytes:        int64(len(file)),
		PayloadBytes: payloadBytes,
		TopoHash:     hdr.TopoHash,
		Elapsed:      time.Since(start),
	}, nil
}

// writeAtomic lands the bytes at path via temp file + fsync + rename: the
// same crash-safety discipline the snapshot store uses.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("planstore: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("planstore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("planstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("planstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("planstore: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
