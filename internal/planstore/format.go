// Package planstore turns failure recovery into an O(1) lookup: an offline
// compiler sweeps every failure combination up to depth k with the parallel
// sweep engine, delta-encodes each solution against the instance's ideal
// (nearest-controller) mapping, and writes one versioned, CRC-framed binary
// file. A reader memory-maps the file and serves plans by binary search over
// the sorted failure-set index plus delta application — no optimization on
// the failure path. Combinations the compiler never saw fall back to the
// nearest precomputed superset plan projected onto the smaller failure plus
// an incremental residual repair (see project.go).
//
// File layout (all integers big-endian, matching internal/store's framing):
//
//	header   56 B   magic, version, flags, M, topology hash, depth,
//	                entry count, algorithm name, CRC32 over the first 52 B
//	index    24 B × numEntries, sorted ascending by key; each entry is
//	                [key u64][offset u64][length u32][payload CRC32 u32]
//	indexCRC  4 B   CRC32 over the raw index block
//	records  ...    varint delta payloads, pointed at by the index
//
// A failure set's key is the bitmask of its failed controllers' deployment
// indices (the format therefore caps deployments at 64 controllers — far
// above the paper's 6). Corruption semantics mirror the WAL's: a truncated
// record tail is tolerated (Open succeeds, lookups of the missing records
// report absent), while a torn header, index, or in-bounds payload whose CRC
// mismatches fails loudly with ErrCorrupt instead of serving a wrong plan.
package planstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"strings"

	"pmedic/internal/core"
)

const (
	// magic spells "PMPS" (ProgrammabilityMedic Plan Store).
	magic   = uint32(0x504D5053)
	version = uint32(1)

	hdrSize   = 56
	entrySize = 24
	// hdrCRCOff is where the header's own CRC lives; it covers [0, hdrCRCOff).
	hdrCRCOff = 52

	// maxAlgLen bounds the NUL-padded algorithm name field.
	maxAlgLen = 16

	// maxControllers is the format's controller-count cap: keys are one
	// 64-bit failure bitmask.
	maxControllers = 64

	// Flag bits record the solution family shared by every plan in the file.
	flagSwitchLevel = uint32(1 << 0)
	flagMiddleLayer = uint32(1 << 1)
)

// ErrCorrupt reports a plan-store file whose bytes fail validation: bad
// magic, torn header or index, or an in-bounds record whose CRC mismatches.
var ErrCorrupt = errors.New("planstore: corrupt plan store")

// ErrMismatch reports a store consulted against a deployment or instance it
// was not compiled for (topology hash or failure-set key disagreement).
var ErrMismatch = errors.New("planstore: store does not match instance")

// Header describes a plan-store file.
type Header struct {
	Version uint32
	// TopoHash fingerprints the deployment and workload the store was
	// compiled against; readers refuse stores whose hash mismatches theirs.
	TopoHash uint64
	// NumControllers is the deployment's controller count M.
	NumControllers int
	// Depth is the largest failure-set size among the compiled entries.
	Depth int
	// NumEntries counts the indexed failure sets.
	NumEntries int
	// Algorithm names the solver that produced every plan, e.g. "PM".
	Algorithm string
	// SwitchLevel and MiddleLayer record the solution family (see
	// core.Solution); PM plans leave both false.
	SwitchLevel bool
	MiddleLayer bool
}

func (h Header) flags() uint32 {
	var f uint32
	if h.SwitchLevel {
		f |= flagSwitchLevel
	}
	if h.MiddleLayer {
		f |= flagMiddleLayer
	}
	return f
}

// encodeHeader lays the header out into a 56-byte block, CRC included.
func encodeHeader(h Header) ([]byte, error) {
	if len(h.Algorithm) > maxAlgLen {
		return nil, fmt.Errorf("planstore: algorithm name %q longer than %d bytes", h.Algorithm, maxAlgLen)
	}
	buf := make([]byte, hdrSize)
	binary.BigEndian.PutUint32(buf[0:], magic)
	binary.BigEndian.PutUint32(buf[4:], version)
	binary.BigEndian.PutUint32(buf[8:], h.flags())
	binary.BigEndian.PutUint32(buf[12:], uint32(h.NumControllers))
	binary.BigEndian.PutUint64(buf[16:], h.TopoHash)
	binary.BigEndian.PutUint32(buf[24:], uint32(h.Depth))
	binary.BigEndian.PutUint32(buf[28:], uint32(h.NumEntries))
	copy(buf[32:32+maxAlgLen], h.Algorithm)
	binary.BigEndian.PutUint32(buf[hdrCRCOff:], checksum(buf[:hdrCRCOff]))
	return buf, nil
}

// decodeHeader validates and parses the 56-byte header block.
func decodeHeader(data []byte) (Header, error) {
	var h Header
	if len(data) < hdrSize {
		return h, fmt.Errorf("%w: %d bytes, header needs %d", ErrCorrupt, len(data), hdrSize)
	}
	if got := binary.BigEndian.Uint32(data[0:]); got != magic {
		return h, fmt.Errorf("%w: bad magic 0x%08X", ErrCorrupt, got)
	}
	if sum := binary.BigEndian.Uint32(data[hdrCRCOff:]); sum != checksum(data[:hdrCRCOff]) {
		return h, fmt.Errorf("%w: header CRC mismatch", ErrCorrupt)
	}
	h.Version = binary.BigEndian.Uint32(data[4:])
	if h.Version != version {
		return h, fmt.Errorf("planstore: unsupported version %d (reader speaks %d)", h.Version, version)
	}
	flags := binary.BigEndian.Uint32(data[8:])
	h.SwitchLevel = flags&flagSwitchLevel != 0
	h.MiddleLayer = flags&flagMiddleLayer != 0
	h.NumControllers = int(binary.BigEndian.Uint32(data[12:]))
	h.TopoHash = binary.BigEndian.Uint64(data[16:])
	h.Depth = int(binary.BigEndian.Uint32(data[24:]))
	h.NumEntries = int(binary.BigEndian.Uint32(data[28:]))
	h.Algorithm = strings.TrimRight(string(data[32:32+maxAlgLen]), "\x00")
	if h.NumControllers <= 0 || h.NumControllers > maxControllers {
		return h, fmt.Errorf("%w: %d controllers (format caps at %d)", ErrCorrupt, h.NumControllers, maxControllers)
	}
	return h, nil
}

// KeyOf encodes a failure set as its index key: the bitmask of the failed
// controllers' deployment indices. ok is false when an index is out of the
// format's range.
func KeyOf(failed []int) (key uint64, ok bool) {
	for _, j := range failed {
		if j < 0 || j >= maxControllers {
			return 0, false
		}
		key |= 1 << uint(j)
	}
	return key, len(failed) > 0
}

// failedSetOf decodes a key back into ascending controller indices.
func failedSetOf(key uint64) []int {
	out := make([]int, 0, bits.OnesCount64(key))
	for k := key; k != 0; k &= k - 1 {
		out = append(out, bits.TrailingZeros64(k))
	}
	return out
}

// baselineController returns the ideal mapping for offline switch i: the
// nearest active controller, lowest index on delay ties — exactly
// Problem.NearestControllers(i)[0], without the sort. Both the encoder and
// the decoder derive the baseline from the instance, so only deviations
// travel in the file.
func baselineController(p *core.Problem, i int) int {
	row := p.Delay[i]
	best := 0
	for j := 1; j < p.NumControllers; j++ {
		if row[j] < row[best] {
			best = j
		}
	}
	return best
}

// template caches the per-problem decode preamble: the baseline mapping and
// the all-true activation fill, both pure functions of the instance. Building
// them per decode is a third of the lookup budget; a store holds one template
// behind an atomic pointer keyed by Problem identity, so repeated decodes
// against the same instance start from two memmoves.
type template struct {
	p        *core.Problem
	baseline []int
	active   []bool
}

func newTemplate(p *core.Problem) *template {
	t := &template{p: p, baseline: make([]int, p.NumSwitches), active: make([]bool, len(p.Pairs))}
	for i := range t.baseline {
		t.baseline[i] = baselineController(p, i)
	}
	for k := range t.active {
		t.active[k] = true
	}
	return t
}

// encodePlan delta-encodes a switch-mapping solution against p's baselines:
//
//	uvarint count, then per switch deviating from the ideal mapping:
//	  uvarint index gap, uvarint controller+1 (0 = unmapped)
//	uvarint run count, then per run of pairs whose Active differs from
//	"switch mapped":
//	  uvarint start gap, uvarint run length − 1
//
// Index gaps are (index − previous − 1) over ascending indices. Most plans
// differ from the ideal mapping on a handful of switches, and activation
// exceptions cluster (a flow's pairs at one switch are contiguous in the
// pair order), so payloads are a few bytes against kilobytes for a dense
// dump — and the failure-path decode walks runs, not individual pairs.
func encodePlan(p *core.Problem, sol *core.Solution) ([]byte, error) {
	if sol.PairController != nil {
		return nil, fmt.Errorf("planstore: flow-mapping solutions (%s) are not representable in format v%d", sol.Algorithm, version)
	}
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}

	nSw := 0
	for i, j := range sol.SwitchController {
		if j != baselineController(p, i) {
			nSw++
		}
	}
	put(uint64(nSw))
	prev := -1
	for i, j := range sol.SwitchController {
		if j == baselineController(p, i) {
			continue
		}
		put(uint64(i - prev - 1))
		put(uint64(j + 1))
		prev = i
	}

	exc := func(k int) bool {
		return sol.Active[k] != (sol.SwitchController[p.Pairs[k].Switch] >= 0)
	}
	nRun := 0
	for k := 0; k < len(sol.Active); k++ {
		if exc(k) {
			nRun++
			for k+1 < len(sol.Active) && exc(k+1) {
				k++
			}
		}
	}
	put(uint64(nRun))
	prev = -1
	for k := 0; k < len(sol.Active); k++ {
		if !exc(k) {
			continue
		}
		end := k + 1
		for end < len(sol.Active) && exc(end) {
			end++
		}
		put(uint64(k - prev - 1))
		put(uint64(end - k - 1))
		prev = end - 1
		k = end - 1
	}
	return buf, nil
}

// decodePlanInto reverses encodePlan into a caller-provided solution shell,
// allocating nothing: baseline mapping, deviations applied, then pair
// activations defaulted to "switch mapped" with the recorded exceptions
// flipped. The shell's slices must already have p's dimensions.
func decodePlanInto(t *template, payload []byte, sol *core.Solution) error {
	p := t.p
	if len(sol.SwitchController) != p.NumSwitches || len(sol.Active) != len(p.Pairs) {
		return fmt.Errorf("planstore: solution shell sized %d/%d, instance needs %d/%d",
			len(sol.SwitchController), len(sol.Active), p.NumSwitches, len(p.Pairs))
	}
	sol.PairController = nil
	// The varint reader is inlined by position rather than closed over a
	// shrinking slice: this loop is the daemon's failure path, and the
	// closure indirection alone costs a measurable share of the decode.
	pos := 0
	errTruncated := func() error { return fmt.Errorf("%w: truncated delta payload", ErrCorrupt) }

	copy(sol.SwitchController, t.baseline)
	nSw, n := binary.Uvarint(payload)
	if n <= 0 {
		return errTruncated()
	}
	pos += n
	prev := -1
	for ; nSw > 0; nSw-- {
		gap, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return errTruncated()
		}
		pos += n
		ctrl, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return errTruncated()
		}
		pos += n
		i := prev + 1 + int(gap)
		if i >= p.NumSwitches || int(ctrl) > p.NumControllers {
			return fmt.Errorf("%w: switch deviation out of range", ErrCorrupt)
		}
		sol.SwitchController[i] = int(ctrl) - 1
		prev = i
	}

	// Default every pair to its switch's mapped state. Mapped switches
	// dominate a plan, so fill Active true in one memmove from the template,
	// then clear the (usually few) unmapped switches' pair runs — Pairs is
	// sorted by (Switch, Flow), so each switch's pairs are one contiguous
	// slice.
	copy(sol.Active, t.active)
	for i, j := range sol.SwitchController {
		if j >= 0 {
			continue
		}
		ks := p.PairsAtSwitch(i)
		if len(ks) == 0 {
			continue
		}
		run := sol.Active[ks[0] : ks[len(ks)-1]+1]
		for k := range run {
			run[k] = false
		}
	}
	nRun, n := binary.Uvarint(payload[pos:])
	if n <= 0 {
		return errTruncated()
	}
	pos += n
	prev = -1
	for ; nRun > 0; nRun-- {
		gap, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return errTruncated()
		}
		pos += n
		length, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return errTruncated()
		}
		pos += n
		k := prev + 1 + int(gap)
		end := k + int(length) + 1
		if k >= len(p.Pairs) || end > len(p.Pairs) || end <= k {
			return fmt.Errorf("%w: pair deviation run out of range", ErrCorrupt)
		}
		for ; k < end; k++ {
			sol.Active[k] = !sol.Active[k]
		}
		prev = end - 1
	}
	if pos != len(payload) {
		return fmt.Errorf("%w: %d trailing bytes after delta payload", ErrCorrupt, len(payload)-pos)
	}
	return nil
}
