//go:build !unix

package planstore

import "os"

// mmapFile always defers to the read-everything fallback off unix.
func mmapFile(f *os.File, size int) (data []byte, mapped bool, err error) {
	return nil, false, nil
}

func munmap(data []byte) error { return nil }
