package planstore

import (
	"fmt"
	"sync"
	"time"

	"pmedic/internal/core"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

// transPool recycles Project's controller-translation scratch. The daemon
// consults the store on every fallback recovery, and the projected mapping
// used to allocate one deployment-sized slice per consult; pooling keeps the
// steady-state fallback path free of that per-call garbage.
var transPool = sync.Pool{New: func() any { return new([]int) }}

// Project translates a plan compiled for a superset failure (sup.Failed ⊇
// inst.Failed) onto the smaller failure's instance. Every structure of inst
// embeds into sup — fewer failed controllers means fewer offline switches
// and flows, and every controller active under sup is active under inst —
// so the translation is three two-pointer merges over the instances'
// ascending index spaces, no search.
//
// The projection is always feasible on inst: residual capacities are
// failure-independent per controller (capacity minus pre-failure domain
// load), and the projected load on each controller is at most what the
// superset plan already charged it. It is merely conservative — it ignores
// the controllers that are actually alive — which is what the residual
// repair step recovers.
func Project(sup *scenario.Instance, supSol *core.Solution, inst *scenario.Instance) (*core.Solution, error) {
	if supSol.PairController != nil {
		return nil, fmt.Errorf("planstore: cannot project flow-mapping solution %q", supSol.Algorithm)
	}
	supKey, ok1 := KeyOf(sup.Failed)
	key, ok2 := KeyOf(inst.Failed)
	if !ok1 || !ok2 || supKey&key != key || supKey == key {
		return nil, fmt.Errorf("%w: %v is not a strict superset of %v", ErrMismatch, sup.Failed, inst.Failed)
	}
	sp, ip := sup.Problem, inst.Problem

	// Deployment controller index → inst problem controller index. The
	// mapping is pure per-call scratch (nothing retained by the returned
	// solution aliases it), so it comes from the pool.
	transBuf := transPool.Get().(*[]int)
	defer transPool.Put(transBuf)
	if cap(*transBuf) < len(inst.Dep.Controllers) {
		*transBuf = make([]int, len(inst.Dep.Controllers))
	}
	trans := (*transBuf)[:len(inst.Dep.Controllers)]
	for j := range trans {
		trans[j] = -1
	}
	for jj, j := range inst.Active {
		trans[j] = jj
	}

	out := core.NewSolution(supSol.Algorithm, ip)
	out.SwitchLevel = supSol.SwitchLevel
	out.MiddleLayer = supSol.MiddleLayer
	si := 0
	for i, sw := range inst.Switches {
		for si < len(sup.Switches) && sup.Switches[si] < sw {
			si++
		}
		if si >= len(sup.Switches) || sup.Switches[si] != sw {
			return nil, fmt.Errorf("%w: switch %d offline under %v but not under %v", ErrMismatch, sw, inst.Failed, sup.Failed)
		}
		if j := supSol.SwitchController[si]; j >= 0 {
			jj := trans[sup.Active[j]]
			if jj < 0 {
				return nil, fmt.Errorf("%w: superset plan maps switch %d to failed controller %d", ErrMismatch, sw, sup.Active[j])
			}
			out.SwitchController[i] = jj
		}
		// Pairs at a switch are ascending in flow index, and flow indices
		// follow ascending flow IDs in both instances: one merge per switch.
		supPairs := sp.PairsAtSwitch(si)
		t := 0
		for _, k := range ip.PairsAtSwitch(i) {
			fid := inst.FlowIDs[ip.Pairs[k].Flow]
			for t < len(supPairs) && sup.FlowIDs[sp.Pairs[supPairs[t]].Flow] < fid {
				t++
			}
			if t >= len(supPairs) || sup.FlowIDs[sp.Pairs[supPairs[t]].Flow] != fid {
				return nil, fmt.Errorf("%w: pair (switch %d, flow %d) missing from superset instance", ErrMismatch, sw, fid)
			}
			out.Active[k] = supSol.Active[supPairs[t]]
		}
	}
	return out, nil
}

// repairProjected improves a projected plan with the capacity it left on the
// table: switches the superset plan never mapped get a residual re-plan
// (the same machinery a recovery push uses after demoting unreachable
// switches) against the residual capacities minus what the projection
// already charged, and the two plans merge disjointly. The merged plan stays
// feasible: projected loads fit within Rest, and the repair solve only
// spends what the reduction left.
func repairProjected(inst *scenario.Instance, proj *core.Solution, solve func(*core.Problem) (*core.Solution, error)) (*core.Solution, error) {
	demoted := make(map[topo.NodeID]bool)
	unmapped := false
	for i, j := range proj.SwitchController {
		if j >= 0 {
			demoted[inst.Switches[i]] = true
		} else {
			unmapped = true
		}
	}
	if !unmapped {
		return proj, nil
	}
	r, pairMap, err := inst.Residual(demoted)
	if err != nil {
		return nil, fmt.Errorf("planstore: fallback repair: %w", err)
	}
	loads, err := proj.ControllerLoads(inst.Problem)
	if err != nil {
		return nil, fmt.Errorf("planstore: fallback repair: %w", err)
	}
	for j, l := range loads {
		r.Rest[j] -= l
	}
	rsol, err := solve(r)
	if err != nil {
		return nil, fmt.Errorf("planstore: fallback repair: %w", err)
	}
	if rsol.PairController != nil {
		return nil, fmt.Errorf("planstore: fallback repair produced flow-mapping solution %q", rsol.Algorithm)
	}
	for i, j := range rsol.SwitchController {
		if j >= 0 && proj.SwitchController[i] < 0 {
			proj.SwitchController[i] = j
		}
	}
	for rk, on := range rsol.Active {
		if on {
			proj.Active[pairMap[rk]] = true
		}
	}
	return proj, nil
}

// Outcome classifies how Consult served (or declined) a plan request.
type Outcome int

const (
	// OutcomeMiss: the store has nothing usable; the caller should solve.
	OutcomeMiss Outcome = iota
	// OutcomeHit: the exact failure set was precompiled.
	OutcomeHit
	// OutcomeFallback: a superset plan was projected and repaired.
	OutcomeFallback
)

// String names the outcome for logs and metrics.
func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeFallback:
		return "fallback"
	default:
		return "miss"
	}
}

// Consult is the store's failure-time policy in one call: serve the exact
// precompiled plan if the failure set was swept, otherwise project the
// nearest superset plan and repair its unmapped switches with solve, and
// report a miss when neither exists. Every error is returned alongside
// OutcomeMiss so callers can degrade to their own solve path and keep the
// daemon recovering.
func (st *Store) Consult(sctx *scenario.Context, inst *scenario.Instance, solve func(*core.Problem) (*core.Solution, error)) (*core.Solution, Outcome, error) {
	start := time.Now()
	if rec, ok := st.Exact(inst.Failed); ok {
		sol, err := st.Decode(rec, inst)
		if err != nil {
			return nil, OutcomeMiss, err
		}
		sol.Runtime = time.Since(start)
		return sol, OutcomeHit, nil
	}
	rec, ok := st.Superset(inst.Failed)
	if !ok {
		return nil, OutcomeMiss, nil
	}
	sup, err := sctx.Build(rec.FailedSet())
	if err != nil {
		return nil, OutcomeMiss, fmt.Errorf("planstore: fallback: %w", err)
	}
	supSol, err := st.Decode(rec, sup)
	if err != nil {
		return nil, OutcomeMiss, err
	}
	proj, err := Project(sup, supSol, inst)
	if err != nil {
		return nil, OutcomeMiss, err
	}
	sol, err := repairProjected(inst, proj, solve)
	if err != nil {
		return nil, OutcomeMiss, err
	}
	sol.Runtime = time.Since(start)
	return sol, OutcomeFallback, nil
}
