package planstore

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

func attFixture(t *testing.T) (*topo.Deployment, *flow.Set, *scenario.Context) {
	t.Helper()
	dep, err := topo.ATT()
	if err != nil {
		t.Fatalf("ATT: %v", err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	ctx, err := scenario.NewContext(dep, flows)
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	return dep, flows, ctx
}

func compileDepth2(t *testing.T) (string, *CompileStats, *scenario.Context) {
	t.Helper()
	dep, flows, ctx := attFixture(t)
	path := filepath.Join(t.TempDir(), "att.pmps")
	stats, err := Compile(dep, flows, path, CompileOptions{Depth: 2, Context: ctx})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return path, stats, ctx
}

// samePlan compares the deterministic fields of two solutions — everything
// but the wall-clock Runtime.
func samePlan(a, b *core.Solution) bool {
	return a.Algorithm == b.Algorithm &&
		a.SwitchLevel == b.SwitchLevel &&
		a.MiddleLayer == b.MiddleLayer &&
		reflect.DeepEqual(a.SwitchController, b.SwitchController) &&
		reflect.DeepEqual(a.Active, b.Active) &&
		reflect.DeepEqual(a.PairController, b.PairController)
}

// TestRoundTrip is the store's core property: for every compiled failure
// set, Lookup reproduces a fresh PM solve bit for bit.
func TestRoundTrip(t *testing.T) {
	path, stats, ctx := compileDepth2(t)
	combos := scenario.CombinationsUpTo(len(ctx.Dep.Controllers), 2)
	if stats.Entries != len(combos) {
		t.Fatalf("compiled %d entries, want %d", stats.Entries, len(combos))
	}
	if stats.Depth != 2 {
		t.Fatalf("header depth %d, want 2", stats.Depth)
	}

	st, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	if st.Header().TopoHash != TopoHash(ctx.Dep, ctx.Flows) {
		t.Fatal("header topology hash does not match the fixture")
	}
	if st.Header().Algorithm != "PM" {
		t.Fatalf("header algorithm %q, want PM", st.Header().Algorithm)
	}

	for _, failed := range combos {
		inst, err := ctx.Build(failed)
		if err != nil {
			t.Fatalf("Build %v: %v", failed, err)
		}
		got, ok, err := st.Lookup(inst)
		if err != nil || !ok {
			t.Fatalf("Lookup %v: ok=%v err=%v", failed, ok, err)
		}
		want, err := core.PM(inst.Problem)
		if err != nil {
			t.Fatalf("PM %v: %v", failed, err)
		}
		if !samePlan(got, want) {
			t.Fatalf("case %v: stored plan differs from fresh PM solve", failed)
		}
		if err := got.Verify(inst.Problem); err != nil {
			t.Fatalf("case %v: decoded plan infeasible: %v", failed, err)
		}
	}
}

// TestLookupMiss covers the two non-hit shapes: a depth-3 set (superset of
// nothing in a depth-2 store) misses Exact but finds no Superset either,
// while a set whose superset was compiled resolves through Superset.
func TestLookupMiss(t *testing.T) {
	path, _, _ := compileDepth2(t)
	st, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()

	if _, ok := st.Exact([]int{0, 1, 2}); ok {
		t.Fatal("depth-3 set served from a depth-2 store")
	}
	if _, ok := st.Superset([]int{0, 1, 2}); ok {
		t.Fatal("depth-2 store claims a superset of a depth-3 set")
	}
	rec, ok := st.Superset([]int{3})
	if !ok {
		t.Fatal("no superset found for {3} in a depth-2 store")
	}
	set := rec.FailedSet()
	if len(set) != 2 || (set[0] != 3 && set[1] != 3) {
		t.Fatalf("superset of {3} is %v, want a pair containing 3", set)
	}
	// Smallest key wins ties at equal depth: {0,3} has key 0b1001.
	if set[0] != 0 || set[1] != 3 {
		t.Fatalf("superset of {3} is %v, want [0 3] (smallest key)", set)
	}
}

// TestSparseStoreConsult compiles only {3,4} and drives Consult through all
// three outcomes: exact hit on {3,4}, superset fallback on {3}, and miss on
// {0} — with the fallback plan feasible on its instance.
func TestSparseStoreConsult(t *testing.T) {
	dep, flows, ctx := attFixture(t)
	path := filepath.Join(t.TempDir(), "sparse.pmps")
	if _, err := Compile(dep, flows, path, CompileOptions{Sets: [][]int{{3, 4}}, Context: ctx}); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()

	check := func(failed []int, want Outcome) *core.Solution {
		t.Helper()
		inst, err := ctx.Build(failed)
		if err != nil {
			t.Fatalf("Build %v: %v", failed, err)
		}
		sol, outcome, err := st.Consult(ctx, inst, core.PM)
		if err != nil {
			t.Fatalf("Consult %v: %v", failed, err)
		}
		if outcome != want {
			t.Fatalf("Consult %v: outcome %v, want %v", failed, outcome, want)
		}
		if sol != nil {
			if err := sol.Verify(inst.Problem); err != nil {
				t.Fatalf("Consult %v: infeasible plan: %v", failed, err)
			}
		}
		return sol
	}

	hit := check([]int{3, 4}, OutcomeHit)
	inst34, _ := ctx.Build([]int{3, 4})
	want, err := core.PM(inst34.Problem)
	if err != nil {
		t.Fatalf("PM: %v", err)
	}
	if !samePlan(hit, want) {
		t.Fatal("exact hit differs from fresh PM solve")
	}

	fb := check([]int{3}, OutcomeFallback)
	// The repaired fallback must recover at least as much as the raw
	// projection: every switch the superset plan mapped stays mapped.
	inst3, _ := ctx.Build([]int{3})
	sup, _ := ctx.Build([]int{3, 4})
	proj, err := Project(sup, want, inst3)
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	for i, j := range proj.SwitchController {
		if j >= 0 && fb.SwitchController[i] != j {
			t.Fatalf("fallback dropped projected mapping of switch %d", i)
		}
	}

	if sol := check([]int{0}, OutcomeMiss); sol != nil {
		t.Fatal("miss returned a plan")
	}
}

// TestDecodeZeroAlloc pins the hit path's allocation contract: DecodeInto
// into a reused shell allocates nothing.
func TestDecodeZeroAlloc(t *testing.T) {
	path, _, ctx := compileDepth2(t)
	st, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	inst, err := ctx.Build([]int{1, 4})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rec, ok := st.Exact(inst.Failed)
	if !ok {
		t.Fatal("no exact record for {1,4}")
	}
	shell := core.NewSolution("", inst.Problem)
	allocs := testing.AllocsPerRun(100, func() {
		if err := st.DecodeInto(rec, inst, shell); err != nil {
			t.Fatalf("DecodeInto: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeInto allocates %.1f objects per run, want 0", allocs)
	}
}

// TestCorruption mirrors the WAL's corruption-suite semantics on the plan
// store: a truncated record tail is tolerated (Open succeeds, the clipped
// records report absent, intact ones still serve), while bit flips in the
// header, index, or an in-bounds record fail loudly.
func TestCorruption(t *testing.T) {
	path, _, ctx := compileDepth2(t)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	write := func(t *testing.T, b []byte) string {
		t.Helper()
		p := filepath.Join(t.TempDir(), "mutated.pmps")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
		return p
	}

	t.Run("TruncatedTail", func(t *testing.T) {
		st, err := Open(write(t, pristine[:len(pristine)-3]))
		if err != nil {
			t.Fatalf("Open after tail truncation: %v", err)
		}
		defer st.Close()
		absent, served := 0, 0
		for i := 0; i < st.Len(); i++ {
			failed := failedSetOf(st.keys[i])
			if _, ok := st.Exact(failed); !ok {
				absent++
				continue
			}
			served++
			inst, err := ctx.Build(failed)
			if err != nil {
				t.Fatalf("Build %v: %v", failed, err)
			}
			if _, ok, err := st.Lookup(inst); !ok || err != nil {
				t.Fatalf("intact record %v: ok=%v err=%v", failed, ok, err)
			}
		}
		if absent == 0 {
			t.Fatal("truncation clipped no record")
		}
		if served == 0 {
			t.Fatal("truncation should leave earlier records intact")
		}
	})

	t.Run("RecordBitFlip", func(t *testing.T) {
		b := append([]byte(nil), pristine...)
		b[len(b)-10] ^= 0x40 // inside the last record's payload
		st, err := Open(write(t, b))
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer st.Close()
		last := failedSetOf(st.keys[st.Len()-1])
		inst, err := ctx.Build(last)
		if err != nil {
			t.Fatalf("Build %v: %v", last, err)
		}
		if _, _, err := st.Lookup(inst); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit-flipped record served: err=%v, want ErrCorrupt", err)
		}
	})

	t.Run("HeaderBitFlip", func(t *testing.T) {
		b := append([]byte(nil), pristine...)
		b[17] ^= 0x01 // inside the topology hash
		if _, err := Open(write(t, b)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open with torn header: err=%v, want ErrCorrupt", err)
		}
	})

	t.Run("IndexBitFlip", func(t *testing.T) {
		b := append([]byte(nil), pristine...)
		b[hdrSize+entrySize+3] ^= 0x80 // second entry's key
		if _, err := Open(write(t, b)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open with torn index: err=%v, want ErrCorrupt", err)
		}
	})

	t.Run("TruncatedIndex", func(t *testing.T) {
		if _, err := Open(write(t, pristine[:hdrSize+entrySize/2])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open with truncated index: err=%v, want ErrCorrupt", err)
		}
	})

	t.Run("BadMagic", func(t *testing.T) {
		b := append([]byte(nil), pristine...)
		b[0] ^= 0xFF
		if _, err := Open(write(t, b)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open with bad magic: err=%v, want ErrCorrupt", err)
		}
	})
}

// TestCompileDeterministic: two compiles of the same sweep produce identical
// bytes — the property that makes stores diffable and cacheable.
func TestCompileDeterministic(t *testing.T) {
	dep, flows, ctx := attFixture(t)
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.pmps"), filepath.Join(dir, "b.pmps")
	if _, err := Compile(dep, flows, a, CompileOptions{Depth: 2, Context: ctx, Workers: 4}); err != nil {
		t.Fatalf("Compile a: %v", err)
	}
	if _, err := Compile(dep, flows, b, CompileOptions{Depth: 2, Context: ctx, Workers: 1}); err != nil {
		t.Fatalf("Compile b: %v", err)
	}
	ba, _ := os.ReadFile(a)
	bb, _ := os.ReadFile(b)
	if !reflect.DeepEqual(ba, bb) {
		t.Fatal("parallel and sequential compiles produced different files")
	}
}
