package scenario

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestBuildDeltaMatchesBuild is the delta compiler's acceptance gate: over a
// long randomized chain of failure-set mutations — single swaps, grows,
// shrinks, and arbitrary jumps — every BuildDeltaCase/BuildDelta result must
// be DeepEqual to a scratch Context.Build of the same set, field for field,
// down to the Problem's finalized CSR indexes.
func TestBuildDeltaMatchesBuild(t *testing.T) {
	dep, flows := contextFixtures(t)
	ctx, err := NewContext(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	m := len(dep.Controllers)
	rng := rand.New(rand.NewSource(7))
	st := &DeltaState{}

	randomSet := func(k int) []int {
		perm := rng.Perm(m)
		set := append([]int(nil), perm[:k]...)
		return set
	}

	check := func(step int, got *Instance, gotErr error, failed []int) *Instance {
		t.Helper()
		want, wantErr := ctx.Build(failed)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("step %d %v: delta err = %v, scratch err = %v", step, failed, gotErr, wantErr)
		}
		if gotErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("step %d %v: delta err %q, scratch err %q", step, failed, gotErr, wantErr)
			}
			return nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: BuildDeltaCase(%v) differs from Build", step, failed)
		}
		return got
	}

	cur := randomSet(1 + rng.Intn(3))
	inst, err := ctx.BuildDeltaCase(cur, st)
	prev := check(0, inst, err, cur)

	for step := 1; step <= 250; step++ {
		switch op := rng.Intn(10); {
		case op < 5 && prev != nil && len(cur) < m-1:
			// Single swap via the BuildDelta wrapper.
			removed := cur[rng.Intn(len(cur))]
			added := -1
			for _, j := range rng.Perm(m) {
				if !contains(cur, j) {
					added = j
					break
				}
			}
			next := replaceOne(cur, removed, added)
			inst, err := ctx.BuildDelta(prev, removed, added, st)
			if got := check(step, inst, err, next); got != nil {
				prev, cur = got, next
			}
		case op < 6 && prev != nil && len(cur) < m-2:
			// Grow (cascade-style): removed == -1.
			added := -1
			for _, j := range rng.Perm(m) {
				if !contains(cur, j) {
					added = j
					break
				}
			}
			next := append(append([]int(nil), cur...), added)
			inst, err := ctx.BuildDelta(prev, -1, added, st)
			if got := check(step, inst, err, next); got != nil {
				prev, cur = got, next
			}
		case op < 7 && prev != nil && len(cur) > 1:
			// Shrink (fail-back): added == -1.
			removed := cur[rng.Intn(len(cur))]
			next := replaceOne(cur, removed, -1)
			inst, err := ctx.BuildDelta(prev, removed, -1, st)
			if got := check(step, inst, err, next); got != nil {
				prev, cur = got, next
			}
		default:
			// Arbitrary jump: BuildDeltaCase diffs from whatever st holds.
			next := randomSet(1 + rng.Intn(m-1))
			inst, err := ctx.BuildDeltaCase(next, st)
			if got := check(step, inst, err, next); got != nil {
				prev, cur = got, next
			}
		}
	}
}

func contains(set []int, v int) bool {
	for _, x := range set {
		if x == v {
			return true
		}
	}
	return false
}

// replaceOne returns set with removed taken out and added (if >= 0) appended.
func replaceOne(set []int, removed, added int) []int {
	out := make([]int, 0, len(set)+1)
	for _, j := range set {
		if j != removed {
			out = append(out, j)
		}
	}
	if added >= 0 {
		out = append(out, added)
	}
	return out
}

// TestBuildDeltaValidation checks that invalid failure specs surface Build's
// exact errors without corrupting the chain state: after each rejected case
// the chain still compiles the next valid case correctly.
func TestBuildDeltaValidation(t *testing.T) {
	dep, flows := contextFixtures(t)
	ctx, err := NewContext(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	m := len(dep.Controllers)
	st := &DeltaState{}
	valid := []int{0, 2}
	if _, err := ctx.BuildDeltaCase(valid, st); err != nil {
		t.Fatal(err)
	}
	all := make([]int, m)
	for i := range all {
		all[i] = i
	}
	invalid := [][]int{nil, {}, {-1}, {m}, {0, 0}, all}
	for _, failed := range invalid {
		_, deltaErr := ctx.BuildDeltaCase(failed, st)
		_, buildErr := ctx.Build(failed)
		if deltaErr == nil || buildErr == nil {
			t.Fatalf("BuildDeltaCase(%v): err = %v, Build err = %v; want both non-nil", failed, deltaErr, buildErr)
		}
		if deltaErr.Error() != buildErr.Error() {
			t.Errorf("BuildDeltaCase(%v) err %q, Build err %q", failed, deltaErr, buildErr)
		}
		// The chain survives the rejected case.
		got, err := ctx.BuildDeltaCase([]int{1, 3}, st)
		if err != nil {
			t.Fatalf("after invalid %v: %v", failed, err)
		}
		want, err := ctx.Build([]int{1, 3})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("after invalid %v: chain state corrupted", failed)
		}
	}
}

// TestBuildDeltaContextSwitch reuses one DeltaState across two Contexts (the
// pooled-scratch pattern of the sweep engine) and checks the state resets.
func TestBuildDeltaContextSwitch(t *testing.T) {
	dep, flows := contextFixtures(t)
	ctxA, err := NewContext(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	ctxB, err := NewContext(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	st := &DeltaState{}
	if _, err := ctxA.BuildDeltaCase([]int{0, 1}, st); err != nil {
		t.Fatal(err)
	}
	got, err := ctxB.BuildDeltaCase([]int{2, 4}, st)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ctxB.Build([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("DeltaState reused across Contexts produced a different instance")
	}
}
