package scenario

import (
	"fmt"

	"pmedic/internal/core"
	"pmedic/internal/topo"
)

// Residual compiles the instance that remains after demoting the given
// offline switches to legacy mode for good — the re-planning step of a
// recovery push that found some switches unreachable over the control
// channel. The returned problem keeps the original switch, controller, and
// flow index spaces (so solutions translate positionally), but:
//
//   - every eligible pair at a demoted switch is removed, making the switch
//     worthless to map (solvers leave it unmapped and its flows fall back to
//     whatever programmability their other pairs can fund);
//   - the demoted switches' γ is zeroed, so whole-switch capacity prechecks
//     and the ideal delay budget no longer account flows that cannot be
//     re-homed there.
//
// pairMap translates pair indices: pairMap[k] is the index in the original
// problem's Pairs of the residual problem's Pairs[k].
func (inst *Instance) Residual(demoted map[topo.NodeID]bool) (*core.Problem, []int, error) {
	p := inst.Problem
	r := &core.Problem{
		NumSwitches:    p.NumSwitches,
		NumControllers: p.NumControllers,
		NumFlows:       p.NumFlows,
		Rest:           append([]int(nil), p.Rest...),
		Gamma:          append([]int(nil), p.Gamma...),
		Delay:          append([][]float64(nil), p.Delay...), // rows shared, read-only
		Lambda:         p.Lambda,
	}
	excluded := make([]bool, p.NumSwitches)
	for i, sw := range inst.Switches {
		if demoted[sw] {
			excluded[i] = true
			r.Gamma[i] = 0
		}
	}
	// One counting pass sizes both retained slices exactly — a demotion
	// re-plan runs on the recovery push's critical path, so the append-grow
	// churn of the naive loop is worth avoiding.
	kept := 0
	for _, pr := range p.Pairs {
		if !excluded[pr.Switch] {
			kept++
		}
	}
	r.Pairs = make([]core.Pair, 0, kept)
	pairMap := make([]int, 0, kept)
	for k, pr := range p.Pairs {
		if excluded[pr.Switch] {
			continue
		}
		r.Pairs = append(r.Pairs, pr)
		pairMap = append(pairMap, k)
	}
	if err := r.Finalize(); err != nil {
		return nil, nil, fmt.Errorf("scenario: residual instance: %w", err)
	}
	// A residual re-plan usually follows a solve of the parent problem (a
	// push that demoted switches mid-recovery): reuse the parent's flow
	// class index instead of regrouping millions of flows from scratch.
	r.DeriveResidualClasses(p, excluded)
	r.BudgetMs = r.IdealDelayBudget()
	return r, pairMap, nil
}
