// Package scenario turns a topology deployment, a workload, and a set of
// failed controllers into an FMSSM optimization instance (core.Problem),
// keeping the bookkeeping needed to map solver indices back to switches,
// flows, and controllers. It also models the middle-layer control path used
// to account ProgrammabilityGuardian's communication overhead.
package scenario

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/graphalg"
	"pmedic/internal/topo"
)

// FlowVisorProcessingMs is the middle layer's per-request processing delay.
// The paper cites the FlowVisor measurement of 0.48 ms on average to pull
// port status and charges it to PG's control path.
const FlowVisorProcessingMs = 0.48

// Instance is one failure case compiled to an optimization problem, together
// with the index mappings back to the deployment.
type Instance struct {
	Problem *core.Problem
	Dep     *topo.Deployment
	Flows   *flow.Set

	// Failed and Active are controller indices into Dep.Controllers; Active
	// order defines the Problem's controller indexing.
	Failed []int
	Active []int
	// Switches lists the offline switches; its order defines the Problem's
	// switch indexing.
	Switches []topo.NodeID
	// FlowIDs lists the recoverable offline flows; its order defines the
	// Problem's flow indexing.
	FlowIDs []flow.ID
	// Unrecoverable lists offline flows with no eligible (β=1) pair at any
	// offline switch: no algorithm can restore their programmability, so
	// they are excluded from the optimization (see DESIGN.md §7).
	Unrecoverable []flow.ID

	// MiddleSite is the node hosting the FlowVisor-style middle layer and
	// MiddleDelay[i][j] the control delay from offline switch i to active
	// controller j through it (propagation via the layer + processing).
	MiddleSite  topo.NodeID
	MiddleDelay [][]float64
}

// ErrBadCase reports an invalid failure specification.
var ErrBadCase = errors.New("scenario: invalid failure case")

// Build compiles the failure of the given controllers (indices into
// dep.Controllers) into an Instance. At least one controller must fail and
// at least one must survive.
func Build(dep *topo.Deployment, flows *flow.Set, failed []int) (*Instance, error) {
	m := len(dep.Controllers)
	if len(failed) == 0 {
		return nil, fmt.Errorf("%w: no failed controllers", ErrBadCase)
	}
	if len(failed) >= m {
		return nil, fmt.Errorf("%w: all %d controllers failed", ErrBadCase, m)
	}
	isFailed := make([]bool, m)
	for _, j := range failed {
		if j < 0 || j >= m {
			return nil, fmt.Errorf("%w: controller index %d out of range [0,%d)", ErrBadCase, j, m)
		}
		if isFailed[j] {
			return nil, fmt.Errorf("%w: controller %d listed twice", ErrBadCase, j)
		}
		isFailed[j] = true
	}

	inst := &Instance{Dep: dep, Flows: flows}
	inst.Failed = append([]int(nil), failed...)
	sort.Ints(inst.Failed)
	for j := 0; j < m; j++ {
		if !isFailed[j] {
			inst.Active = append(inst.Active, j)
		}
	}

	// Offline switches: the failed controllers' domains, ascending.
	for _, j := range inst.Failed {
		inst.Switches = append(inst.Switches, dep.Controllers[j].Domain...)
	}
	sort.Slice(inst.Switches, func(a, b int) bool { return inst.Switches[a] < inst.Switches[b] })
	switchIndex := make(map[topo.NodeID]int, len(inst.Switches))
	for i, sw := range inst.Switches {
		switchIndex[sw] = i
	}

	g := dep.Graph
	delayW, err := g.EdgeDelaysMs()
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	// Shortest-path control delays from every active controller site.
	ctrlDist := make([][]float64, len(inst.Active))
	for jj, j := range inst.Active {
		tree, err := graphalg.Dijkstra(g, dep.Controllers[j].Site, delayW)
		if err != nil {
			return nil, fmt.Errorf("scenario: controller %d delays: %w", j, err)
		}
		ctrlDist[jj] = tree.Dist
	}

	p := &core.Problem{
		NumSwitches:    len(inst.Switches),
		NumControllers: len(inst.Active),
	}
	p.Delay = make([][]float64, p.NumSwitches)
	p.Gamma = make([]int, p.NumSwitches)
	for i, sw := range inst.Switches {
		row := make([]float64, p.NumControllers)
		for jj := range inst.Active {
			row[jj] = ctrlDist[jj][sw]
		}
		p.Delay[i] = row
		p.Gamma[i] = flows.SwitchFlowCount(sw)
	}

	// Residual capacities of the active controllers.
	p.Rest = make([]int, p.NumControllers)
	for jj, j := range inst.Active {
		c := dep.Controllers[j]
		load := 0
		for _, sw := range c.Domain {
			load += flows.SwitchFlowCount(sw)
		}
		rest := c.Capacity - load
		if rest < 0 {
			return nil, fmt.Errorf("scenario: controller %d overloaded before failure: load %d > capacity %d",
				j, load, c.Capacity)
		}
		p.Rest[jj] = rest
	}

	// Offline flows and eligible pairs.
	for l := range flows.Flows {
		f := &flows.Flows[l]
		offline := false
		var pairs []core.Pair
		for _, stop := range f.Stops {
			i, ok := switchIndex[stop.Node]
			if !ok {
				continue
			}
			offline = true
			if stop.Programmable() {
				pairs = append(pairs, core.Pair{Switch: i, PBar: stop.PBar()})
			}
		}
		if !offline {
			// The destination may still be offline even if no stop is.
			if _, ok := switchIndex[f.Dst]; ok {
				offline = true
			}
		}
		if !offline {
			continue
		}
		if len(pairs) == 0 {
			inst.Unrecoverable = append(inst.Unrecoverable, f.ID)
			continue
		}
		flowIdx := len(inst.FlowIDs)
		inst.FlowIDs = append(inst.FlowIDs, f.ID)
		for _, pr := range pairs {
			pr.Flow = flowIdx
			p.Pairs = append(p.Pairs, pr)
		}
	}
	sort.Slice(p.Pairs, func(a, b int) bool {
		if p.Pairs[a].Switch != p.Pairs[b].Switch {
			return p.Pairs[a].Switch < p.Pairs[b].Switch
		}
		return p.Pairs[a].Flow < p.Pairs[b].Flow
	})
	p.NumFlows = len(inst.FlowIDs)
	if p.NumFlows == 0 {
		return nil, fmt.Errorf("%w: failure case has no recoverable offline flows", ErrBadCase)
	}
	if err := p.Finalize(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	p.BudgetMs = p.IdealDelayBudget()
	inst.Problem = p

	if err := inst.buildMiddleLayer(delayW, ctrlDist); err != nil {
		return nil, err
	}
	return inst, nil
}

// buildMiddleLayer places the FlowVisor-style layer at the delay-centroid
// node (minimum summed shortest-path delay to all nodes) and precomputes the
// switch→layer→controller delay matrix.
func (inst *Instance) buildMiddleLayer(delayW graphalg.Weight, ctrlDist [][]float64) error {
	g := inst.Dep.Graph
	n := g.NumNodes()
	best, bestSum := topo.NodeID(-1), math.Inf(1)
	var midDist []float64
	for v := 0; v < n; v++ {
		tree, err := graphalg.Dijkstra(g, topo.NodeID(v), delayW)
		if err != nil {
			return fmt.Errorf("scenario: middle layer placement: %w", err)
		}
		sum := 0.0
		for _, d := range tree.Dist {
			sum += d
		}
		if sum < bestSum {
			best, bestSum = topo.NodeID(v), sum
			midDist = tree.Dist
		}
	}
	inst.MiddleSite = best
	inst.MiddleDelay = make([][]float64, len(inst.Switches))
	for i, sw := range inst.Switches {
		row := make([]float64, len(inst.Active))
		for jj := range inst.Active {
			site := inst.Dep.Controllers[inst.Active[jj]].Site
			row[jj] = midDist[sw] + midDist[site] + FlowVisorProcessingMs
		}
		inst.MiddleDelay[i] = row
		_ = ctrlDist
	}
	return nil
}

// Evaluate runs core.Evaluate with this instance's middle-layer delay model.
func (inst *Instance) Evaluate(s *core.Solution) (*core.Report, error) {
	return core.Evaluate(inst.Problem, s, core.EvaluateOptions{MiddleDelay: inst.MiddleDelay})
}

// OfflineFlowCount returns the number of offline flows including the
// unrecoverable ones (the denominator of recovery percentages that want to
// account for them).
func (inst *Instance) OfflineFlowCount() int {
	return len(inst.FlowIDs) + len(inst.Unrecoverable)
}

// Label renders the failure case the way the paper does, as the failed
// controllers' site IDs: "(13, 20)".
func (inst *Instance) Label() string {
	parts := make([]string, len(inst.Failed))
	for i, j := range inst.Failed {
		parts[i] = strconv.Itoa(int(inst.Dep.Controllers[j].Site))
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Combinations returns all k-subsets of {0..m-1} in lexicographic order;
// used to enumerate the paper's 6 single-, 15 double-, and 20 triple-failure
// cases.
func Combinations(m, k int) [][]int {
	if k < 0 || k > m {
		return nil
	}
	var out [][]int
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		out = append(out, append([]int(nil), idx...))
		i := k - 1
		for i >= 0 && idx[i] == m-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return out
}
