// Package scenario turns a topology deployment, a workload, and a set of
// failed controllers into an FMSSM optimization instance (core.Problem),
// keeping the bookkeeping needed to map solver indices back to switches,
// flows, and controllers. It also models the middle-layer control path used
// to account ProgrammabilityGuardian's communication overhead.
package scenario

import (
	"errors"
	"strconv"
	"strings"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/topo"
)

// FlowVisorProcessingMs is the middle layer's per-request processing delay.
// The paper cites the FlowVisor measurement of 0.48 ms on average to pull
// port status and charges it to PG's control path.
const FlowVisorProcessingMs = 0.48

// Instance is one failure case compiled to an optimization problem, together
// with the index mappings back to the deployment.
type Instance struct {
	Problem *core.Problem
	Dep     *topo.Deployment
	Flows   *flow.Set

	// Failed and Active are controller indices into Dep.Controllers; Active
	// order defines the Problem's controller indexing.
	Failed []int
	Active []int
	// Switches lists the offline switches; its order defines the Problem's
	// switch indexing.
	Switches []topo.NodeID
	// FlowIDs lists the recoverable offline flows; its order defines the
	// Problem's flow indexing.
	FlowIDs []flow.ID
	// Unrecoverable lists offline flows with no eligible (β=1) pair at any
	// offline switch: no algorithm can restore their programmability, so
	// they are excluded from the optimization (see DESIGN.md §7).
	Unrecoverable []flow.ID

	// MiddleSite is the node hosting the FlowVisor-style middle layer and
	// MiddleDelay[i][j] the control delay from offline switch i to active
	// controller j through it (propagation via the layer + processing).
	MiddleSite  topo.NodeID
	MiddleDelay [][]float64
}

// ErrBadCase reports an invalid failure specification.
var ErrBadCase = errors.New("scenario: invalid failure case")

// Build compiles the failure of the given controllers (indices into
// dep.Controllers) into an Instance. At least one controller must fail and
// at least one must survive.
//
// Build constructs a throwaway Context per call; callers compiling more than
// one failure case over the same deployment and workload (sweeps, the online
// daemon) should build one Context with NewContext and use Context.Build,
// which skips the shared precomputation.
func Build(dep *topo.Deployment, flows *flow.Set, failed []int) (*Instance, error) {
	ctx, err := NewContext(dep, flows)
	if err != nil {
		return nil, err
	}
	return ctx.Build(failed)
}

// Evaluate runs core.Evaluate with this instance's middle-layer delay model.
func (inst *Instance) Evaluate(s *core.Solution) (*core.Report, error) {
	return core.Evaluate(inst.Problem, s, core.EvaluateOptions{MiddleDelay: inst.MiddleDelay})
}

// OfflineFlowCount returns the number of offline flows including the
// unrecoverable ones (the denominator of recovery percentages that want to
// account for them).
func (inst *Instance) OfflineFlowCount() int {
	return len(inst.FlowIDs) + len(inst.Unrecoverable)
}

// Label renders the failure case the way the paper does, as the failed
// controllers' site IDs: "(13, 20)".
func (inst *Instance) Label() string {
	parts := make([]string, len(inst.Failed))
	for i, j := range inst.Failed {
		parts[i] = strconv.Itoa(int(inst.Dep.Controllers[j].Site))
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Combinations returns all k-subsets of {0..m-1} in lexicographic order;
// used to enumerate the paper's 6 single-, 15 double-, and 20 triple-failure
// cases.
func Combinations(m, k int) [][]int {
	if k < 0 || k > m {
		return nil
	}
	var out [][]int
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		out = append(out, append([]int(nil), idx...))
		i := k - 1
		for i >= 0 && idx[i] == m-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return out
}

// CombinationsUpTo returns every failure combination of size 1..k over m
// controllers, smaller sizes first and lexicographic within a size — the
// enumeration order the plan-store compiler sweeps and indexes. k is capped
// at m-1: a case needs at least one surviving controller.
func CombinationsUpTo(m, k int) [][]int {
	if k > m-1 {
		k = m - 1
	}
	var out [][]int
	for s := 1; s <= k; s++ {
		out = append(out, Combinations(m, s)...)
	}
	return out
}
