package scenario

import (
	"fmt"

	"pmedic/internal/flow"
	"pmedic/internal/topo"
)

// Step is one stage of a successive-failure episode: the controller that
// failed at this step and the instance compiled for the cumulative set.
type Step struct {
	// NewlyFailed is the controller index that failed at this step.
	NewlyFailed int
	// Failed is the cumulative failed set, ascending.
	Failed []int
	// Instance is the FMSSM case for the cumulative set.
	Instance *Instance
}

// BuildSuccessive compiles the episode in which the given controllers fail
// one after another (the paper's "fail successively" setting): step t's
// instance covers the first t+1 failures. At least one controller must
// survive the whole episode.
func BuildSuccessive(dep *topo.Deployment, flows *flow.Set, order []int) ([]*Step, error) {
	if len(order) == 0 {
		return nil, fmt.Errorf("%w: empty failure order", ErrBadCase)
	}
	if len(order) >= len(dep.Controllers) {
		return nil, fmt.Errorf("%w: %d successive failures would kill all %d controllers",
			ErrBadCase, len(order), len(dep.Controllers))
	}
	steps := make([]*Step, 0, len(order))
	var cumulative []int
	for _, j := range order {
		cumulative = append(cumulative, j)
		inst, err := Build(dep, flows, cumulative)
		if err != nil {
			return nil, fmt.Errorf("scenario: successive step %d: %w", len(cumulative), err)
		}
		st := &Step{
			NewlyFailed: j,
			Failed:      append([]int(nil), inst.Failed...),
			Instance:    inst,
		}
		steps = append(steps, st)
	}
	return steps, nil
}
