package scenario

import (
	"fmt"
	"math"
	"sort"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/graphalg"
	"pmedic/internal/topo"
)

// Context is everything about a (Deployment, Set) pair that does not depend
// on which controllers failed: shortest-path delay vectors from every node,
// the FlowVisor-style middle-layer placement, and the pre-failure load of
// every controller domain. Building a Context costs one Dijkstra per node;
// compiling a failure case against it (Context.Build) is then pure slicing
// and indexing over the cached state, which is what makes sweeps over all
// C(m, k) cases and the daemon's per-event re-planning cheap.
//
// A Context is immutable after NewContext and safe for concurrent use by any
// number of goroutines; the parallel sweep engine (internal/eval) shares one
// Context across all of its workers.
type Context struct {
	Dep   *topo.Deployment
	Flows *flow.Set

	// dist[v] is the shortest-path control delay (ms) from node v to every
	// node, under the deployment's great-circle edge delays.
	dist [][]float64
	// middleSite is the delay-centroid node hosting the middle layer.
	middleSite topo.NodeID
	// domainLoad[j] is controller j's pre-failure load: Σ γ over its domain.
	domainLoad []int
}

// NewContext precomputes the failure-independent state for the deployment
// and workload. The result is immutable and concurrency-safe.
func NewContext(dep *topo.Deployment, flows *flow.Set) (*Context, error) {
	g := dep.Graph
	delayW, err := g.EdgeDelaysMs()
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	n := g.NumNodes()
	ctx := &Context{Dep: dep, Flows: flows}

	ctx.dist = make([][]float64, n)
	for v := 0; v < n; v++ {
		tree, err := graphalg.Dijkstra(g, topo.NodeID(v), delayW)
		if err != nil {
			return nil, fmt.Errorf("scenario: delays from %d: %w", v, err)
		}
		ctx.dist[v] = tree.Dist
	}

	// Middle layer: the delay-centroid node (minimum summed shortest-path
	// delay to all nodes, lowest ID on ties).
	best, bestSum := topo.NodeID(-1), math.Inf(1)
	for v := 0; v < n; v++ {
		sum := 0.0
		for _, d := range ctx.dist[v] {
			sum += d
		}
		if sum < bestSum {
			best, bestSum = topo.NodeID(v), sum
		}
	}
	ctx.middleSite = best

	ctx.domainLoad = make([]int, len(dep.Controllers))
	for j, c := range dep.Controllers {
		load := 0
		for _, sw := range c.Domain {
			load += flows.SwitchFlowCount(sw)
		}
		ctx.domainLoad[j] = load
	}
	return ctx, nil
}

// MiddleSite returns the node hosting the FlowVisor-style middle layer; the
// placement depends only on the topology, not on the failure case.
func (ctx *Context) MiddleSite() topo.NodeID { return ctx.middleSite }

// DelayMs returns the shortest-path control delay from a to b in ms.
func (ctx *Context) DelayMs(a, b topo.NodeID) float64 { return ctx.dist[a][b] }

// Build compiles the failure of the given controllers (indices into
// Dep.Controllers) into an Instance, reusing the Context's cached state. It
// produces exactly the Instance that scenario.Build would, case for case and
// byte for byte; only the shared precomputation is skipped.
func (ctx *Context) Build(failed []int) (*Instance, error) {
	dep, flows := ctx.Dep, ctx.Flows
	m := len(dep.Controllers)
	if len(failed) == 0 {
		return nil, fmt.Errorf("%w: no failed controllers", ErrBadCase)
	}
	if len(failed) >= m {
		return nil, fmt.Errorf("%w: all %d controllers failed", ErrBadCase, m)
	}
	isFailed := make([]bool, m)
	for _, j := range failed {
		if j < 0 || j >= m {
			return nil, fmt.Errorf("%w: controller index %d out of range [0,%d)", ErrBadCase, j, m)
		}
		if isFailed[j] {
			return nil, fmt.Errorf("%w: controller %d listed twice", ErrBadCase, j)
		}
		isFailed[j] = true
	}

	inst := &Instance{Dep: dep, Flows: flows}
	inst.Failed = append([]int(nil), failed...)
	sort.Ints(inst.Failed)
	for j := 0; j < m; j++ {
		if !isFailed[j] {
			inst.Active = append(inst.Active, j)
		}
	}

	// Offline switches: the failed controllers' domains, ascending.
	for _, j := range inst.Failed {
		inst.Switches = append(inst.Switches, dep.Controllers[j].Domain...)
	}
	sort.Slice(inst.Switches, func(a, b int) bool { return inst.Switches[a] < inst.Switches[b] })
	// switchIndex[sw] is the problem index of offline switch sw, or -1.
	switchIndex := make([]int, dep.Graph.NumNodes())
	for i := range switchIndex {
		switchIndex[i] = -1
	}
	for i, sw := range inst.Switches {
		switchIndex[sw] = i
	}

	p := &core.Problem{
		NumSwitches:    len(inst.Switches),
		NumControllers: len(inst.Active),
	}
	p.Delay = make([][]float64, p.NumSwitches)
	p.Gamma = make([]int, p.NumSwitches)
	for i, sw := range inst.Switches {
		row := make([]float64, p.NumControllers)
		for jj, j := range inst.Active {
			row[jj] = ctx.dist[dep.Controllers[j].Site][sw]
		}
		p.Delay[i] = row
		p.Gamma[i] = flows.SwitchFlowCount(sw)
	}

	// Residual capacities of the active controllers.
	p.Rest = make([]int, p.NumControllers)
	for jj, j := range inst.Active {
		c := dep.Controllers[j]
		rest := c.Capacity - ctx.domainLoad[j]
		if rest < 0 {
			return nil, fmt.Errorf("scenario: controller %d overloaded before failure: load %d > capacity %d",
				j, ctx.domainLoad[j], c.Capacity)
		}
		p.Rest[jj] = rest
	}

	// Offline flows and eligible pairs. Pairs are gathered flow-major (flows
	// ascending, and within a flow in path order) and then bucketed by switch
	// below, which yields the (Switch, Flow)-sorted order Finalize expects
	// without a comparison sort.
	var pairs []core.Pair
	for l := range flows.Flows {
		f := &flows.Flows[l]
		offline := false
		pairStart := len(pairs)
		for _, stop := range f.Stops {
			i := switchIndex[stop.Node]
			if i < 0 {
				continue
			}
			offline = true
			if stop.Programmable() {
				pairs = append(pairs, core.Pair{Switch: i, PBar: stop.PBar()})
			}
		}
		if !offline {
			// The destination may still be offline even if no stop is.
			if switchIndex[f.Dst] >= 0 {
				offline = true
			}
		}
		if !offline {
			continue
		}
		if len(pairs) == pairStart {
			inst.Unrecoverable = append(inst.Unrecoverable, f.ID)
			continue
		}
		flowIdx := len(inst.FlowIDs)
		inst.FlowIDs = append(inst.FlowIDs, f.ID)
		for k := pairStart; k < len(pairs); k++ {
			pairs[k].Flow = flowIdx
		}
	}
	p.Pairs = sortPairsBySwitch(pairs, p.NumSwitches)
	p.NumFlows = len(inst.FlowIDs)
	if p.NumFlows == 0 {
		return nil, fmt.Errorf("%w: failure case has no recoverable offline flows", ErrBadCase)
	}
	if err := p.Finalize(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	p.BudgetMs = p.IdealDelayBudget()
	inst.Problem = p

	// Middle-layer delay matrix: switch → layer → controller, all from the
	// cached distance vectors of the precomputed centroid site.
	midDist := ctx.dist[ctx.middleSite]
	inst.MiddleSite = ctx.middleSite
	inst.MiddleDelay = make([][]float64, len(inst.Switches))
	for i, sw := range inst.Switches {
		row := make([]float64, len(inst.Active))
		for jj, j := range inst.Active {
			row[jj] = midDist[sw] + midDist[dep.Controllers[j].Site] + FlowVisorProcessingMs
		}
		inst.MiddleDelay[i] = row
	}
	return inst, nil
}

// sortPairsBySwitch reorders flow-major pairs into (Switch, Flow) ascending
// order with a counting sort: pairs arrive with flows ascending, and a simple
// path visits a switch at most once, so stable per-switch bucketing preserves
// ascending flow order within each switch.
func sortPairsBySwitch(pairs []core.Pair, numSwitches int) []core.Pair {
	if len(pairs) == 0 {
		return pairs
	}
	start := make([]int, numSwitches+1)
	for _, pr := range pairs {
		start[pr.Switch+1]++
	}
	for i := 1; i <= numSwitches; i++ {
		start[i] += start[i-1]
	}
	out := make([]core.Pair, len(pairs))
	for _, pr := range pairs {
		out[start[pr.Switch]] = pr
		start[pr.Switch]++
	}
	return out
}
