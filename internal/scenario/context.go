package scenario

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/graphalg"
	"pmedic/internal/topo"
)

// Context is everything about a (Deployment, Set) pair that does not depend
// on which controllers failed: shortest-path delay vectors from every node,
// the FlowVisor-style middle-layer placement, and the pre-failure load of
// every controller domain. Building a Context costs one Dijkstra per node;
// compiling a failure case against it (Context.Build) is then pure slicing
// and indexing over the cached state, which is what makes sweeps over all
// C(m, k) cases and the daemon's per-event re-planning cheap.
//
// A Context is immutable after NewContext and safe for concurrent use by any
// number of goroutines; the parallel sweep engine (internal/eval) shares one
// Context across all of its workers.
type Context struct {
	Dep   *topo.Deployment
	Flows *flow.Set

	// dist[v] is the shortest-path control delay (ms) from node v to every
	// node, under the deployment's great-circle edge delays.
	dist [][]float64
	// middleSite is the delay-centroid node hosting the middle layer.
	middleSite topo.NodeID
	// domainLoad[j] is controller j's pre-failure load: Σ γ over its domain.
	domainLoad []int
}

// NewContext precomputes the failure-independent state for the deployment
// and workload. The result is immutable and concurrency-safe.
func NewContext(dep *topo.Deployment, flows *flow.Set) (*Context, error) {
	g := dep.Graph
	delayW, err := g.EdgeDelaysMs()
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	n := g.NumNodes()
	ctx := &Context{Dep: dep, Flows: flows}

	ctx.dist = make([][]float64, n)
	for v := 0; v < n; v++ {
		tree, err := graphalg.Dijkstra(g, topo.NodeID(v), delayW)
		if err != nil {
			return nil, fmt.Errorf("scenario: delays from %d: %w", v, err)
		}
		ctx.dist[v] = tree.Dist
	}

	// Middle layer: the delay-centroid node (minimum summed shortest-path
	// delay to all nodes, lowest ID on ties).
	best, bestSum := topo.NodeID(-1), math.Inf(1)
	for v := 0; v < n; v++ {
		sum := 0.0
		for _, d := range ctx.dist[v] {
			sum += d
		}
		if sum < bestSum {
			best, bestSum = topo.NodeID(v), sum
		}
	}
	ctx.middleSite = best

	ctx.domainLoad = make([]int, len(dep.Controllers))
	for j, c := range dep.Controllers {
		load := 0
		for _, sw := range c.Domain {
			load += flows.SwitchFlowCount(sw)
		}
		ctx.domainLoad[j] = load
	}
	return ctx, nil
}

// MiddleSite returns the node hosting the FlowVisor-style middle layer; the
// placement depends only on the topology, not on the failure case.
func (ctx *Context) MiddleSite() topo.NodeID { return ctx.middleSite }

// DelayMs returns the shortest-path control delay from a to b in ms.
func (ctx *Context) DelayMs(a, b topo.NodeID) float64 { return ctx.dist[a][b] }

// buildScratch holds Context.Build's per-case working memory. Instances are
// recycled through buildPool: the Context is shared by concurrent sweep
// workers, so the scratch cannot live on the Context itself, and the pool
// keeps each worker's steady-state case compilation free of the per-case
// slice/map churn that used to dominate sweep allocation profiles.
type buildScratch struct {
	isFailed    []bool
	switchIndex []int
	rawFlows    []int32
	pairs       []core.Pair
	start       []int
}

var buildPool = sync.Pool{New: func() any { return new(buildScratch) }}

// Build compiles the failure of the given controllers (indices into
// Dep.Controllers) into an Instance, reusing the Context's cached state. It
// produces exactly the Instance that scenario.Build would, case for case and
// byte for byte; only the shared precomputation is skipped.
//
// Candidate flows are enumerated through the workload's switch→flows CSR
// index — cost proportional to the traffic actually crossing the failed
// domains — instead of scanning all L flows per case, which is what makes a
// sweep case at 10⁶ all-pairs flows affordable.
func (ctx *Context) Build(failed []int) (*Instance, error) {
	dep, flows := ctx.Dep, ctx.Flows
	m := len(dep.Controllers)
	if len(failed) == 0 {
		return nil, fmt.Errorf("%w: no failed controllers", ErrBadCase)
	}
	if len(failed) >= m {
		return nil, fmt.Errorf("%w: all %d controllers failed", ErrBadCase, m)
	}
	sc := buildPool.Get().(*buildScratch)
	defer buildPool.Put(sc)
	isFailed := growBools(&sc.isFailed, m)
	for _, j := range failed {
		if j < 0 || j >= m {
			return nil, fmt.Errorf("%w: controller index %d out of range [0,%d)", ErrBadCase, j, m)
		}
		if isFailed[j] {
			return nil, fmt.Errorf("%w: controller %d listed twice", ErrBadCase, j)
		}
		isFailed[j] = true
	}

	inst := &Instance{Dep: dep, Flows: flows}
	inst.Failed = make([]int, 0, len(failed))
	inst.Failed = append(inst.Failed, failed...)
	sort.Ints(inst.Failed)
	inst.Active = make([]int, 0, m-len(failed))
	for j := 0; j < m; j++ {
		if !isFailed[j] {
			inst.Active = append(inst.Active, j)
		}
	}

	// Offline switches: the failed controllers' domains, ascending.
	numOffline := 0
	for _, j := range inst.Failed {
		numOffline += len(dep.Controllers[j].Domain)
	}
	inst.Switches = make([]topo.NodeID, 0, numOffline)
	for _, j := range inst.Failed {
		inst.Switches = append(inst.Switches, dep.Controllers[j].Domain...)
	}
	sort.Slice(inst.Switches, func(a, b int) bool { return inst.Switches[a] < inst.Switches[b] })
	// switchIndex[sw] is the problem index of offline switch sw, or -1.
	switchIndex := growInts(&sc.switchIndex, dep.Graph.NumNodes())
	for i := range switchIndex {
		switchIndex[i] = -1
	}
	for i, sw := range inst.Switches {
		switchIndex[sw] = i
	}

	p := &core.Problem{
		NumSwitches:    len(inst.Switches),
		NumControllers: len(inst.Active),
	}
	if err := ctx.fillProblemMatrices(inst, p); err != nil {
		return nil, err
	}

	// Candidate offline flows: exactly the flows whose path crosses an
	// offline switch (a flow is offline iff some stop — src included — or
	// its destination is offline, and all of those are path nodes). The CSR
	// gather returns them with duplicates; one sort+dedupe restores the
	// ascending flow order the all-flows scan used to iterate in.
	raw := flows.AppendFlowsThrough(sc.rawFlows[:0], inst.Switches)
	sc.rawFlows = raw
	slices.Sort(raw)

	// Eligible pairs. Pairs are gathered flow-major (flows ascending, and
	// within a flow in path order) and then bucketed by switch below, which
	// yields the (Switch, Flow)-sorted order Finalize expects without a
	// comparison sort.
	pairs := sc.pairs[:0]
	inst.FlowIDs = make([]flow.ID, 0, len(raw))
	for x, lf := range raw {
		if x > 0 && lf == raw[x-1] {
			continue
		}
		f := &flows.Flows[lf]
		pairStart := len(pairs)
		for _, stop := range f.Stops {
			i := switchIndex[stop.Node]
			if i < 0 {
				continue
			}
			if stop.Programmable() {
				pairs = append(pairs, core.Pair{Switch: i, PBar: stop.PBar()})
			}
		}
		if len(pairs) == pairStart {
			inst.Unrecoverable = append(inst.Unrecoverable, f.ID)
			continue
		}
		flowIdx := len(inst.FlowIDs)
		inst.FlowIDs = append(inst.FlowIDs, f.ID)
		for k := pairStart; k < len(pairs); k++ {
			pairs[k].Flow = flowIdx
		}
	}
	sc.pairs = pairs
	p.Pairs = sortPairsBySwitch(pairs, p.NumSwitches, &sc.start)
	p.NumFlows = len(inst.FlowIDs)
	if p.NumFlows == 0 {
		return nil, fmt.Errorf("%w: failure case has no recoverable offline flows", ErrBadCase)
	}
	if err := p.Finalize(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	p.BudgetMs = p.IdealDelayBudget()
	inst.Problem = p

	ctx.fillMiddleDelay(inst)
	return inst, nil
}

// fillProblemMatrices populates the Problem's Delay, Gamma, and Rest off the
// Context's cached vectors for the instance's offline switches and active
// controllers; it errors when an active controller was already overloaded
// before the failure. Shared by the scratch (Build) and delta
// (BuildDeltaCase) compilation paths.
func (ctx *Context) fillProblemMatrices(inst *Instance, p *core.Problem) error {
	dep, flows := ctx.Dep, ctx.Flows
	// Delay rows are views into one flat backing array — the Problem keeps
	// the [][]float64 shape its consumers index, for two allocations total.
	p.Delay = flatMatrix(p.NumSwitches, p.NumControllers)
	p.Gamma = make([]int, p.NumSwitches)
	for i, sw := range inst.Switches {
		row := p.Delay[i]
		for jj, j := range inst.Active {
			row[jj] = ctx.dist[dep.Controllers[j].Site][sw]
		}
		p.Gamma[i] = flows.SwitchFlowCount(sw)
	}

	// Residual capacities of the active controllers.
	p.Rest = make([]int, p.NumControllers)
	for jj, j := range inst.Active {
		c := dep.Controllers[j]
		rest := c.Capacity - ctx.domainLoad[j]
		if rest < 0 {
			return fmt.Errorf("scenario: controller %d overloaded before failure: load %d > capacity %d",
				j, ctx.domainLoad[j], c.Capacity)
		}
		p.Rest[jj] = rest
	}
	return nil
}

// fillMiddleDelay populates the instance's middle-layer delay matrix:
// switch → layer → controller, all from the cached distance vectors of the
// precomputed centroid site.
func (ctx *Context) fillMiddleDelay(inst *Instance) {
	dep := ctx.Dep
	midDist := ctx.dist[ctx.middleSite]
	inst.MiddleSite = ctx.middleSite
	inst.MiddleDelay = flatMatrix(len(inst.Switches), len(inst.Active))
	for i, sw := range inst.Switches {
		row := inst.MiddleDelay[i]
		for jj, j := range inst.Active {
			row[jj] = midDist[sw] + midDist[dep.Controllers[j].Site] + FlowVisorProcessingMs
		}
	}
}

// flatMatrix builds an n×m [][]float64 whose rows are views into one flat
// backing array: two allocations regardless of n.
func flatMatrix(n, m int) [][]float64 {
	backing := make([]float64, n*m)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = backing[i*m : (i+1)*m : (i+1)*m]
	}
	return rows
}

// growInts resizes *buf to n without zeroing (callers initialize).
func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growBools resizes *buf to n and clears it.
func growBools(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	s := *buf
	for i := range s {
		s[i] = false
	}
	return s
}

// sortPairsBySwitch reorders flow-major pairs into (Switch, Flow) ascending
// order with a counting sort: pairs arrive with flows ascending, and a simple
// path visits a switch at most once, so stable per-switch bucketing preserves
// ascending flow order within each switch. The returned slice is freshly
// allocated (it is retained by the Problem); the counting table lives in the
// caller's scratch (buildScratch or DeltaState).
func sortPairsBySwitch(pairs []core.Pair, numSwitches int, startBuf *[]int) []core.Pair {
	if len(pairs) == 0 {
		return nil
	}
	start := growInts(startBuf, numSwitches+1)
	for i := range start {
		start[i] = 0
	}
	for _, pr := range pairs {
		start[pr.Switch+1]++
	}
	for i := 1; i <= numSwitches; i++ {
		start[i] += start[i-1]
	}
	out := make([]core.Pair, len(pairs))
	for _, pr := range pairs {
		out[start[pr.Switch]] = pr
		start[pr.Switch]++
	}
	return out
}
