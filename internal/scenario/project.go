package scenario

import "fmt"

// Projection maps one compiled Instance onto an externally supplied grouping
// of the deployment — in practice the region partition of the hierarchical
// planner (internal/region), which scenario must not import. The grouping is
// given in deployment coordinates (per WAN node, per deployment controller);
// the projection translates it into the instance's dense problem indexing and
// records which groups the failure actually touches, so a k-controller
// failure only re-solves the regions holding offline switches.
type Projection struct {
	// Groups is the number of groups the deployment was partitioned into.
	Groups int
	// SwitchGroup[i] is the group of the instance's offline switch i
	// (problem switch indexing).
	SwitchGroup []int
	// ControllerGroup[jj] is the group of the instance's active controller jj
	// (problem controller indexing).
	ControllerGroup []int
	// Touched lists the groups holding at least one offline switch,
	// ascending. Groups outside Touched need no re-solve: none of their
	// switches lost control.
	Touched []int
}

// Project translates a deployment-level grouping into this instance's problem
// indexing. nodeGroup is indexed by topo.NodeID over all WAN nodes, ctrlGroup
// by deployment controller index; both must assign every index a group in
// [0, groups).
func (inst *Instance) Project(nodeGroup, ctrlGroup []int, groups int) (*Projection, error) {
	if groups <= 0 {
		return nil, fmt.Errorf("%w: %d groups", ErrBadCase, groups)
	}
	if n := inst.Dep.Graph.NumNodes(); len(nodeGroup) != n {
		return nil, fmt.Errorf("%w: nodeGroup covers %d of %d nodes", ErrBadCase, len(nodeGroup), n)
	}
	if m := len(inst.Dep.Controllers); len(ctrlGroup) != m {
		return nil, fmt.Errorf("%w: ctrlGroup covers %d of %d controllers", ErrBadCase, len(ctrlGroup), m)
	}
	proj := &Projection{
		Groups:          groups,
		SwitchGroup:     make([]int, len(inst.Switches)),
		ControllerGroup: make([]int, len(inst.Active)),
	}
	touched := make([]bool, groups)
	for i, sw := range inst.Switches {
		r := nodeGroup[sw]
		if r < 0 || r >= groups {
			return nil, fmt.Errorf("%w: node %d in group %d of %d", ErrBadCase, sw, r, groups)
		}
		proj.SwitchGroup[i] = r
		touched[r] = true
	}
	for jj, j := range inst.Active {
		r := ctrlGroup[j]
		if r < 0 || r >= groups {
			return nil, fmt.Errorf("%w: controller %d in group %d of %d", ErrBadCase, j, r, groups)
		}
		proj.ControllerGroup[jj] = r
	}
	for r, t := range touched {
		if t {
			proj.Touched = append(proj.Touched, r)
		}
	}
	return proj, nil
}
