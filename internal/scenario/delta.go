package scenario

import (
	"fmt"
	"slices"
	"sort"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/topo"
)

// Delta case compilation: Context.Build recomputes every failure case from
// the switch→flows CSR index — gather, sort, dedupe, rescan every candidate
// flow's stops. Consecutive cases in a sweep, however, share almost their
// whole failure set: in revolving-door order (internal/eval's delta engine)
// adjacent cases differ by one swapped controller, and a cascade only ever
// grows its set. BuildDeltaCase exploits that by keeping, per compilation
// chain, a DeltaState with the current case's candidate flows and their
// offline programmable stops ("spans"), maintained under controller
// add/remove diffs:
//
//   - count[f] is the number of offline switches on flow f's path. Domains
//     are disjoint, so failing/restoring a controller adds/subtracts its
//     domain's incidences exactly once and candidacy is simply count[f] > 0.
//   - Flows incident on a changed domain ("touched", detected with an
//     epoch-stamp array — the incidence gathers are never sorted) rescan
//     their stops; every other candidate's span is copied verbatim — spans
//     store switch IDs, not problem indices, precisely because the
//     offline-switch numbering changes every case. The only sort in a delta
//     step is over the flows *entering* candidacy, a small subset of the
//     diff.
//
// The assembled Instance is byte-identical to Context.Build's (the property
// test in delta_test.go holds DeepEqual over randomized swap chains); only
// the work to get there shrinks from O(case) to O(diff) + O(assembly).

// DeltaState carries the incremental bookkeeping of one chain of
// delta-compiled failure cases. The zero value is ready to use; the first
// BuildDeltaCase call seeds it with a full gather. A DeltaState is owned by
// one goroutine at a time — it is scratch, not shared state — and it may be
// reused across Contexts (the state resets itself when the Context changes).
type DeltaState struct {
	ctx *Context

	// Current failure set, ascending, plus its membership marks.
	failed   []int
	isFailed []bool
	nextMark []bool

	// count[f] = offline switches on flow f's path; nonzero exactly at cand.
	count []int32
	// mark[f] == epoch iff flow f is incident on a domain changed by the
	// current diff and must rescan its stops. epoch only ever grows, so
	// stale stamps from earlier cases (or earlier Contexts) never collide.
	mark  []uint64
	epoch uint64
	// cand lists candidate flows ascending; spanOff/spanNode/spanPBar is the
	// CSR of their offline programmable stops in path order (len(spanOff) ==
	// len(cand)+1). An empty span marks an unrecoverable offline flow.
	cand     []int32
	spanOff  []int32
	spanNode []int32
	spanPBar []int32

	// Double buffers and per-call scratch.
	cand2, spanOff2, spanNode2, spanPBar2 []int32
	remIdx, addIdx                        []int
	inc                                   []int32
	entrants                              []int32
	switchIndex                           []int
	pairs                                 []core.Pair
	start                                 []int
}

// clearCase drops the current case's bookkeeping (zeroing count only where it
// is nonzero) while keeping the allocated arenas.
func (st *DeltaState) clearCase() {
	for _, f := range st.cand {
		st.count[f] = 0
	}
	st.cand = st.cand[:0]
	st.spanOff = st.spanOff[:0]
	st.spanNode = st.spanNode[:0]
	st.spanPBar = st.spanPBar[:0]
	for _, j := range st.failed {
		st.isFailed[j] = false
	}
	st.failed = st.failed[:0]
}

// BuildDelta compiles the failure case obtained from prev's failure set by
// restoring controller `removed` and failing controller `added`, reusing the
// chain state in st. Either side may be -1: removed == -1 grows the set
// (cascades), added == -1 shrinks it (fail-backs). prev only defines the
// target set — st need not currently hold prev's case; BuildDeltaCase diffs
// from whatever st holds. The result is byte-identical to
// Context.Build(prev.Failed − removed + added).
func (ctx *Context) BuildDelta(prev *Instance, removed, added int, st *DeltaState) (*Instance, error) {
	if prev == nil {
		return nil, fmt.Errorf("%w: delta from nil instance", ErrBadCase)
	}
	next := make([]int, 0, len(prev.Failed)+1)
	found := removed == -1
	for _, j := range prev.Failed {
		if j == removed {
			found = true
			continue
		}
		next = append(next, j)
	}
	if !found {
		return nil, fmt.Errorf("%w: controller %d not failed in previous case", ErrBadCase, removed)
	}
	if added >= 0 {
		next = append(next, added)
	}
	return ctx.BuildDeltaCase(next, st)
}

// BuildDeltaCase compiles the failure of the given controllers exactly like
// Context.Build — same Instance, same errors — but incrementally against the
// chain state in st: only the difference between st's current failure set and
// this one is re-gathered and re-scanned. An unseeded (or Context-switched)
// st degenerates to a full gather, and a diff that would touch at least as
// many domains as a scratch compile resets the state first, so a delta chain
// is never slower than repeated Build calls by more than the assembly floor.
func (ctx *Context) BuildDeltaCase(failed []int, st *DeltaState) (*Instance, error) {
	dep, flows := ctx.Dep, ctx.Flows
	m := len(dep.Controllers)
	if len(failed) == 0 {
		return nil, fmt.Errorf("%w: no failed controllers", ErrBadCase)
	}
	if len(failed) >= m {
		return nil, fmt.Errorf("%w: all %d controllers failed", ErrBadCase, m)
	}
	if st.ctx != ctx {
		if st.ctx != nil {
			st.clearCase()
		}
		st.ctx = ctx
		growBools(&st.isFailed, m)
		if cap(st.count) < flows.Len() {
			st.count = make([]int32, flows.Len())
			st.mark = make([]uint64, flows.Len())
		}
		st.count = st.count[:flows.Len()]
		st.mark = st.mark[:flows.Len()]
	}
	// Validate the raw list with Build's exact checks (and error order).
	nextMark := growBools(&st.nextMark, m)
	for _, j := range failed {
		if j < 0 || j >= m {
			return nil, fmt.Errorf("%w: controller index %d out of range [0,%d)", ErrBadCase, j, m)
		}
		if nextMark[j] {
			return nil, fmt.Errorf("%w: controller %d listed twice", ErrBadCase, j)
		}
		nextMark[j] = true
	}

	// Diff against the chain's current set.
	removed := st.remIdx[:0]
	for _, j := range st.failed {
		if !nextMark[j] {
			removed = append(removed, j)
		}
	}
	added := st.addIdx[:0]
	for _, j := range failed {
		if !st.isFailed[j] {
			added = append(added, j)
		}
	}
	if len(removed)+len(added) > len(failed) && len(st.failed) > 0 {
		// The diff spans more domains than the case itself — scratch-gather
		// instead (e.g. depth-1 chains, where consecutive cases share
		// nothing and delta bookkeeping would only add work).
		st.clearCase()
		removed = removed[:0]
		added = append(added[:0], failed...)
	}
	st.remIdx, st.addIdx = removed, added

	// Update per-flow incidence counts straight off the unsorted CSR
	// gathers (duplicates are wanted: counts are per-incidence), stamping
	// every touched flow with this diff's epoch. Nothing here is sorted —
	// only the flows *entering* candidacy need ordering, and they are a
	// small subset of the diff.
	st.epoch++
	epoch := st.epoch
	count, mark := st.count, st.mark
	inc := st.inc[:0]
	for _, j := range removed {
		inc = flows.AppendFlowsThrough(inc, dep.Controllers[j].Domain)
	}
	for _, f := range inc {
		count[f]--
		mark[f] = epoch
	}
	entrants := st.entrants[:0]
	inc = inc[:0]
	for _, j := range added {
		inc = flows.AppendFlowsThrough(inc, dep.Controllers[j].Domain)
	}
	for _, f := range inc {
		if count[f] == 0 && mark[f] != epoch {
			entrants = append(entrants, f)
		}
		count[f]++
		mark[f] = epoch
	}
	st.inc = inc
	slices.Sort(entrants)
	st.entrants = entrants

	// Commit the new failure set.
	for _, j := range removed {
		st.isFailed[j] = false
	}
	for _, j := range added {
		st.isFailed[j] = true
	}
	st.failed = st.failed[:0]
	for j := 0; j < m; j++ {
		if st.isFailed[j] {
			st.failed = append(st.failed, j)
		}
	}

	// Offline switches and their problem indexing, as in Build.
	numOffline := 0
	for _, j := range st.failed {
		numOffline += len(dep.Controllers[j].Domain)
	}
	switches := make([]topo.NodeID, 0, numOffline)
	for _, j := range st.failed {
		switches = append(switches, dep.Controllers[j].Domain...)
	}
	sort.Slice(switches, func(a, b int) bool { return switches[a] < switches[b] })
	switchIndex := growInts(&st.switchIndex, dep.Graph.NumNodes())
	for i := range switchIndex {
		switchIndex[i] = -1
	}
	for i, sw := range switches {
		switchIndex[sw] = i
	}

	// Rebuild the candidate CSR: merge the previous candidates with the
	// sorted entrants. Stamped candidates rescan their stops against the
	// new offline set (dropping out if their count hit zero), unstamped
	// candidates copy their spans verbatim, entrants rescan. Entrants are
	// never already candidates (their count was zero), so the merge output
	// stays ascending and duplicate-free.
	newCand := st.cand2[:0]
	newOff := append(st.spanOff2[:0], 0)
	newNode := st.spanNode2[:0]
	newPBar := st.spanPBar2[:0]
	emit := func(f int32) {
		if count[f] <= 0 {
			return
		}
		for _, stop := range flows.Flows[f].Stops {
			if switchIndex[stop.Node] < 0 {
				continue
			}
			if stop.Programmable() {
				newNode = append(newNode, int32(stop.Node))
				newPBar = append(newPBar, int32(stop.PathCount))
			}
		}
		newCand = append(newCand, f)
		newOff = append(newOff, int32(len(newNode)))
	}
	ei := 0
	if len(st.spanOff) == 0 {
		st.spanOff = append(st.spanOff, 0)
	}
	for ci, f := range st.cand {
		for ei < len(entrants) && entrants[ei] < f {
			emit(entrants[ei])
			ei++
		}
		if mark[f] == epoch {
			emit(f)
			continue
		}
		lo, hi := st.spanOff[ci], st.spanOff[ci+1]
		newCand = append(newCand, f)
		newNode = append(newNode, st.spanNode[lo:hi]...)
		newPBar = append(newPBar, st.spanPBar[lo:hi]...)
		newOff = append(newOff, int32(len(newNode)))
	}
	for ; ei < len(entrants); ei++ {
		emit(entrants[ei])
	}
	st.cand, st.cand2 = newCand, st.cand[:0]
	st.spanOff, st.spanOff2 = newOff, st.spanOff[:0]
	st.spanNode, st.spanNode2 = newNode, st.spanNode[:0]
	st.spanPBar, st.spanPBar2 = newPBar, st.spanPBar[:0]

	return ctx.assemble(st, switches, switchIndex)
}

// assemble materializes the Instance for st's current case from the
// candidate CSR — the output half of Build, shared between the scratch and
// delta paths via the Context helpers. Everything the Instance retains is
// freshly allocated; st only contributes reusable scratch.
func (ctx *Context) assemble(st *DeltaState, switches []topo.NodeID, switchIndex []int) (*Instance, error) {
	dep, flows := ctx.Dep, ctx.Flows
	m := len(dep.Controllers)

	inst := &Instance{Dep: dep, Flows: flows}
	inst.Failed = append(make([]int, 0, len(st.failed)), st.failed...)
	inst.Active = make([]int, 0, m-len(st.failed))
	for j := 0; j < m; j++ {
		if !st.isFailed[j] {
			inst.Active = append(inst.Active, j)
		}
	}
	inst.Switches = switches

	p := &core.Problem{
		NumSwitches:    len(switches),
		NumControllers: len(inst.Active),
	}
	if err := ctx.fillProblemMatrices(inst, p); err != nil {
		return nil, err
	}

	pairs := st.pairs[:0]
	inst.FlowIDs = make([]flow.ID, 0, len(st.cand))
	for ci, f := range st.cand {
		lo, hi := st.spanOff[ci], st.spanOff[ci+1]
		if lo == hi {
			inst.Unrecoverable = append(inst.Unrecoverable, flows.Flows[f].ID)
			continue
		}
		flowIdx := len(inst.FlowIDs)
		inst.FlowIDs = append(inst.FlowIDs, flows.Flows[f].ID)
		for x := lo; x < hi; x++ {
			pairs = append(pairs, core.Pair{
				Switch: switchIndex[st.spanNode[x]],
				Flow:   flowIdx,
				PBar:   int(st.spanPBar[x]),
			})
		}
	}
	st.pairs = pairs
	p.Pairs = sortPairsBySwitch(pairs, p.NumSwitches, &st.start)
	p.NumFlows = len(inst.FlowIDs)
	if p.NumFlows == 0 {
		return nil, fmt.Errorf("%w: failure case has no recoverable offline flows", ErrBadCase)
	}
	if err := p.Finalize(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	p.BudgetMs = p.IdealDelayBudget()
	inst.Problem = p

	ctx.fillMiddleDelay(inst)
	return inst, nil
}
