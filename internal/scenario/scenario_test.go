package scenario

import (
	"errors"
	"math"
	"testing"

	"pmedic/internal/flow"
	"pmedic/internal/topo"
)

func fixtures(t *testing.T) (*topo.Deployment, *flow.Set) {
	t.Helper()
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dep, flows
}

func TestBuildValidation(t *testing.T) {
	dep, flows := fixtures(t)
	cases := [][]int{
		nil,
		{},
		{0, 1, 2, 3, 4, 5},
		{-1},
		{9},
		{0, 0},
	}
	for _, failed := range cases {
		if _, err := Build(dep, flows, failed); !errors.Is(err, ErrBadCase) {
			t.Fatalf("failed=%v: error = %v, want ErrBadCase", failed, err)
		}
	}
}

func TestBuildSingleFailure(t *testing.T) {
	dep, flows := fixtures(t)
	inst, err := Build(dep, flows, []int{3}) // C4, the hub domain
	if err != nil {
		t.Fatal(err)
	}
	p := inst.Problem
	if p.NumSwitches != len(dep.Controllers[3].Domain) {
		t.Fatalf("offline switches = %d, want %d", p.NumSwitches, len(dep.Controllers[3].Domain))
	}
	if p.NumControllers != 5 || len(inst.Active) != 5 {
		t.Fatalf("active controllers = %d, want 5", p.NumControllers)
	}
	// Residuals must match capacity minus own-domain load.
	for jj, j := range inst.Active {
		load := 0
		for _, sw := range dep.Controllers[j].Domain {
			load += flows.SwitchFlowCount(sw)
		}
		if want := dep.Controllers[j].Capacity - load; p.Rest[jj] != want {
			t.Fatalf("Rest[%d] = %d, want %d", jj, p.Rest[jj], want)
		}
	}
	// Gammas must match the workload counts.
	for i, sw := range inst.Switches {
		if p.Gamma[i] != flows.SwitchFlowCount(sw) {
			t.Fatalf("Gamma[%d] = %d, want %d", i, p.Gamma[i], flows.SwitchFlowCount(sw))
		}
	}
	if p.BudgetMs <= 0 || math.Abs(p.BudgetMs-p.IdealDelayBudget()) > 1e-9 {
		t.Fatalf("BudgetMs = %v", p.BudgetMs)
	}
}

func TestBuildOfflineFlowsExactlyThoseTraversingOfflineSwitches(t *testing.T) {
	dep, flows := fixtures(t)
	inst, err := Build(dep, flows, []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	offline := map[topo.NodeID]bool{}
	for _, sw := range inst.Switches {
		offline[sw] = true
	}
	want := 0
	for _, f := range flows.Flows {
		for _, v := range f.Path {
			if offline[v] {
				want++
				break
			}
		}
	}
	if got := inst.OfflineFlowCount(); got != want {
		t.Fatalf("offline flows = %d, want %d", got, want)
	}
	// Every problem flow must have at least one eligible pair.
	for l := 0; l < inst.Problem.NumFlows; l++ {
		if len(inst.Problem.PairsOfFlow(l)) == 0 {
			t.Fatalf("flow index %d has no pairs", l)
		}
	}
}

func TestBuildUnrecoverableFlows(t *testing.T) {
	dep, flows := fixtures(t)
	inst, err := Build(dep, flows, []int{4}) // Florida domain {9, 16}
	if err != nil {
		t.Fatal(err)
	}
	offline := map[topo.NodeID]bool{}
	for _, sw := range inst.Switches {
		offline[sw] = true
	}
	for _, id := range inst.Unrecoverable {
		f := &flows.Flows[id]
		for _, st := range f.Stops {
			if offline[st.Node] && st.Programmable() {
				t.Fatalf("flow %d marked unrecoverable but has an eligible pair at %d", id, st.Node)
			}
		}
	}
}

func TestBuildDelayMatrixIsShortestPathDelay(t *testing.T) {
	dep, flows := fixtures(t)
	inst, err := Build(dep, flows, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	p := inst.Problem
	for i := range inst.Switches {
		for jj := range inst.Active {
			if p.Delay[i][jj] < 0 {
				t.Fatalf("negative delay at [%d][%d]", i, jj)
			}
		}
	}
	// A switch co-located with an active controller would have delay 0; the
	// hub domain's switches are not, so all delays are positive.
	for i := range inst.Switches {
		for jj := range inst.Active {
			if p.Delay[i][jj] == 0 {
				t.Fatalf("unexpected zero delay: switch %d controller %d", i, jj)
			}
		}
	}
}

func TestMiddleLayerDelays(t *testing.T) {
	dep, flows := fixtures(t)
	inst, err := Build(dep, flows, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if inst.MiddleSite < 0 || int(inst.MiddleSite) >= dep.Graph.NumNodes() {
		t.Fatalf("middle site %d out of range", inst.MiddleSite)
	}
	for i := range inst.Switches {
		for jj := range inst.Active {
			md := inst.MiddleDelay[i][jj]
			if md < FlowVisorProcessingMs {
				t.Fatalf("middle delay %v below processing floor", md)
			}
			// The detour through the layer can never beat the direct
			// shortest path.
			if md+1e-9 < inst.Problem.Delay[i][jj] {
				t.Fatalf("middle-layer delay %v beats direct %v", md, inst.Problem.Delay[i][jj])
			}
		}
	}
}

func TestLabel(t *testing.T) {
	dep, flows := fixtures(t)
	inst, err := Build(dep, flows, []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Label() != "(13, 16)" {
		t.Fatalf("label = %q, want (13, 16)", inst.Label())
	}
}

func TestCombinations(t *testing.T) {
	if got := len(Combinations(6, 1)); got != 6 {
		t.Fatalf("C(6,1) = %d", got)
	}
	if got := len(Combinations(6, 2)); got != 15 {
		t.Fatalf("C(6,2) = %d", got)
	}
	if got := len(Combinations(6, 3)); got != 20 {
		t.Fatalf("C(6,3) = %d", got)
	}
	if Combinations(3, 0) == nil || len(Combinations(3, 0)) != 1 {
		t.Fatal("C(3,0) should be the single empty set")
	}
	if Combinations(2, 3) != nil {
		t.Fatal("C(2,3) should be nil")
	}
	// Lexicographic order and validity.
	combos := Combinations(5, 3)
	for i, c := range combos {
		for k := 1; k < len(c); k++ {
			if c[k] <= c[k-1] {
				t.Fatalf("combo %v not strictly increasing", c)
			}
		}
		if i > 0 && !lexLess(combos[i-1], c) {
			t.Fatalf("combos out of order: %v then %v", combos[i-1], c)
		}
	}
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestEvaluateIntegration(t *testing.T) {
	dep, flows := fixtures(t)
	inst, err := Build(dep, flows, []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	// The headline mechanism: the hub switch's γ exceeds every active
	// controller's residual capacity.
	hubIdx := -1
	for i, sw := range inst.Switches {
		if sw == 13 {
			hubIdx = i
		}
	}
	if hubIdx < 0 {
		t.Fatal("hub switch 13 not offline in case (13, 16)")
	}
	for jj, rest := range inst.Problem.Rest {
		if rest >= inst.Problem.Gamma[hubIdx] {
			t.Fatalf("controller %d residual %d can absorb the hub (γ=%d); headline case broken",
				jj, rest, inst.Problem.Gamma[hubIdx])
		}
	}
}
