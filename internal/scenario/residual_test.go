package scenario

import (
	"math/rand"
	"testing"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/topo"
)

// translate lifts a residual-problem solution back into the original
// problem's pair index space — the same positional translation the push
// driver and the recovery daemon perform.
func translate(inst *Instance, rsol *core.Solution, pairMap []int) *core.Solution {
	sol := core.NewSolution(rsol.Algorithm, inst.Problem)
	copy(sol.SwitchController, rsol.SwitchController)
	for k, on := range rsol.Active {
		if on {
			sol.Active[pairMap[k]] = true
		}
	}
	return sol
}

// TestResidualRoundTripProperty checks, over seeded random demoted subsets
// of several failure cases, that Residual preserves everything it promises:
// the index spaces survive the round trip, exactly the demoted switches'
// pairs are dropped, and a solution of the residual problem translates back
// into a feasible solution of the original problem with identical
// programmability metrics.
func TestResidualRoundTripProperty(t *testing.T) {
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1234))

	for _, failed := range [][]int{{3}, {3, 4}, {1, 4}, {0, 5}} {
		inst, err := Build(dep, flows, failed)
		if err != nil {
			t.Fatal(err)
		}
		p := inst.Problem
		for trial := 0; trial < 8; trial++ {
			// A random demoted subset; trial 0 is the empty set (identity).
			demoted := make(map[topo.NodeID]bool)
			if trial > 0 {
				want := rng.Intn(len(inst.Switches)) + 1
				for _, i := range rng.Perm(len(inst.Switches))[:want] {
					demoted[inst.Switches[i]] = true
				}
			}

			rp, pairMap, err := inst.Residual(demoted)
			if err != nil {
				t.Fatalf("%v demoted=%v: %v", failed, demoted, err)
			}

			// Index spaces are preserved.
			if rp.NumSwitches != p.NumSwitches || rp.NumControllers != p.NumControllers || rp.NumFlows != p.NumFlows {
				t.Fatalf("%v demoted=%v: residual reshaped the index spaces", failed, demoted)
			}
			if len(pairMap) != len(rp.Pairs) {
				t.Fatalf("%v demoted=%v: pairMap len %d != %d pairs", failed, demoted, len(pairMap), len(rp.Pairs))
			}

			// pairMap is strictly increasing and maps pairs verbatim; the
			// kept set is exactly the pairs away from demoted switches.
			kept := make(map[int]bool, len(pairMap))
			for k, orig := range pairMap {
				if k > 0 && pairMap[k-1] >= orig {
					t.Fatalf("%v demoted=%v: pairMap not strictly increasing at %d", failed, demoted, k)
				}
				if rp.Pairs[k] != p.Pairs[orig] {
					t.Fatalf("%v demoted=%v: pair %d not mapped verbatim", failed, demoted, k)
				}
				kept[orig] = true
			}
			for k, pr := range p.Pairs {
				isDemoted := demoted[inst.Switches[pr.Switch]]
				if kept[k] == isDemoted {
					t.Fatalf("%v demoted=%v: pair %d at switch %d kept=%v, demoted switch=%v",
						failed, demoted, k, inst.Switches[pr.Switch], kept[k], isDemoted)
				}
			}
			for i, sw := range inst.Switches {
				wantGamma := p.Gamma[i]
				if demoted[sw] {
					wantGamma = 0
				}
				if rp.Gamma[i] != wantGamma {
					t.Fatalf("%v demoted=%v: switch %d gamma %d, want %d", failed, demoted, sw, rp.Gamma[i], wantGamma)
				}
			}
			if trial == 0 && len(rp.Pairs) != len(p.Pairs) {
				t.Fatalf("%v: empty demotion dropped pairs", failed)
			}

			// Round trip: solve the residual, translate back, and the
			// original problem must accept the solution with the exact same
			// programmability.
			rsol, err := core.PM(rp)
			if err != nil {
				t.Fatalf("%v demoted=%v: solve residual: %v", failed, demoted, err)
			}
			sol := translate(inst, rsol, pairMap)
			if err := sol.Verify(p); err != nil {
				t.Fatalf("%v demoted=%v: translated solution infeasible: %v", failed, demoted, err)
			}
			rrep, err := core.Evaluate(rp, rsol, core.EvaluateOptions{})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := core.Evaluate(p, sol, core.EvaluateOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.MinProg != rrep.MinProg || rep.TotalProg != rrep.TotalProg || rep.RecoveredFlows != rrep.RecoveredFlows {
				t.Fatalf("%v demoted=%v: metrics drifted in translation: residual (r=%d total=%d rec=%d), original (r=%d total=%d rec=%d)",
					failed, demoted, rrep.MinProg, rrep.TotalProg, rrep.RecoveredFlows,
					rep.MinProg, rep.TotalProg, rep.RecoveredFlows)
			}
			for l := range rep.FlowProg {
				if rep.FlowProg[l] != rrep.FlowProg[l] {
					t.Fatalf("%v demoted=%v: flow %d programmability drifted: %d != %d",
						failed, demoted, l, rep.FlowProg[l], rrep.FlowProg[l])
				}
			}
			// Nothing may be recovered at a demoted switch.
			for k, on := range sol.Active {
				if on && demoted[inst.Switches[p.Pairs[k].Switch]] {
					t.Fatalf("%v demoted=%v: active pair %d at a demoted switch", failed, demoted, k)
				}
			}
		}
	}
}
