package scenario

import (
	"reflect"
	"testing"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/topo"
)

func contextFixtures(t *testing.T) (*topo.Deployment, *flow.Set) {
	t.Helper()
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dep, flows
}

// TestContextBuildMatchesBuild drives every 2-failure case through one shared
// Context and through the one-shot Build and requires identical instances:
// the cached precomputation must not change a single field of the compiled
// problem.
func TestContextBuildMatchesBuild(t *testing.T) {
	dep, flows := contextFixtures(t)
	ctx, err := NewContext(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	for _, failed := range Combinations(len(dep.Controllers), 2) {
		fresh, err := Build(dep, flows, failed)
		if err != nil {
			t.Fatalf("Build(%v): %v", failed, err)
		}
		cached, err := ctx.Build(failed)
		if err != nil {
			t.Fatalf("Context.Build(%v): %v", failed, err)
		}
		if !reflect.DeepEqual(fresh, cached) {
			t.Fatalf("case %v: shared-context instance differs from one-shot Build", failed)
		}
	}
}

// TestContextBuildRepeatable requires that compiling the same case twice off
// one Context yields deep-equal instances — the determinism the parallel
// sweep engine relies on.
func TestContextBuildRepeatable(t *testing.T) {
	dep, flows := contextFixtures(t)
	ctx, err := NewContext(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctx.Build([]int{1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.Build([]int{1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repeated Context.Build of the same case diverged")
	}
}

// TestContextBuildValidation checks that the cached path rejects the same
// degenerate failure sets the one-shot path does.
func TestContextBuildValidation(t *testing.T) {
	dep, flows := contextFixtures(t)
	ctx, err := NewContext(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	m := len(dep.Controllers)
	all := make([]int, m)
	for j := range all {
		all[j] = j
	}
	for _, failed := range [][]int{nil, {}, {-1}, {m}, {0, 0}, all} {
		if _, err := ctx.Build(failed); err == nil {
			t.Fatalf("Context.Build(%v) accepted an invalid case", failed)
		}
	}
}

// TestSortPairsBySwitch checks the counting sort against the comparison sort
// it replaces on a synthetic flow-major pair list.
func TestSortPairsBySwitch(t *testing.T) {
	pairs := []core.Pair{
		{Switch: 2, Flow: 0, PBar: 2},
		{Switch: 0, Flow: 0, PBar: 3},
		{Switch: 1, Flow: 1, PBar: 2},
		{Switch: 0, Flow: 2, PBar: 4},
		{Switch: 2, Flow: 2, PBar: 2},
		{Switch: 1, Flow: 3, PBar: 5},
	}
	got := sortPairsBySwitch(pairs, 3, new([]int))
	want := []core.Pair{
		{Switch: 0, Flow: 0, PBar: 3},
		{Switch: 0, Flow: 2, PBar: 4},
		{Switch: 1, Flow: 1, PBar: 2},
		{Switch: 1, Flow: 3, PBar: 5},
		{Switch: 2, Flow: 0, PBar: 2},
		{Switch: 2, Flow: 2, PBar: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sortPairsBySwitch = %v, want %v", got, want)
	}
}
