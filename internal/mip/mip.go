// Package mip solves mixed-integer linear programs by LP-based branch &
// bound: best-first bulk-synchronous search with most-fractional branching,
// LP bound pruning, a root rounding heuristic, warm-started node
// relaxations, and wall-clock/node budgets. Each round expands the K best
// open nodes — in parallel across Options.Workers goroutines — and merges
// the results in a fixed order, so the outcome is identical for any worker
// count given the same node budget. Together with package lp it forms the
// reproduction's stand-in for the GUROBI solver the paper uses for the
// Optimal comparator.
package mip

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pmedic/internal/lp"
)

// Model is a MIP under construction: a linear model plus integrality marks.
type Model struct {
	lpm     *lp.Model
	sense   lp.Sense
	integer []bool
	objs    []float64
	rows    []savedRow
}

type savedRow struct {
	op    lp.Op
	rhs   float64
	terms []lp.Term
}

// NewModel returns an empty model with the given sense.
func NewModel(sense lp.Sense) *Model {
	return &Model{lpm: lp.NewModel(sense), sense: sense}
}

// AddVar appends a variable; integer marks it integral.
func (m *Model) AddVar(lower, upper, obj float64, name string, integer bool) int {
	v := m.lpm.AddVar(lower, upper, obj, name)
	m.integer = append(m.integer, integer)
	m.objs = append(m.objs, obj)
	return v
}

// AddBinary appends a {0,1} variable.
func (m *Model) AddBinary(obj float64, name string) int {
	return m.AddVar(0, 1, obj, name, true)
}

// AddRow appends a linear constraint.
func (m *Model) AddRow(op lp.Op, rhs float64, terms ...lp.Term) error {
	if err := m.lpm.AddRow(op, rhs, terms...); err != nil {
		return err
	}
	cp := make([]lp.Term, len(terms))
	copy(cp, terms)
	m.rows = append(m.rows, savedRow{op: op, rhs: rhs, terms: cp})
	return nil
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return m.lpm.NumVars() }

// SolveRelaxation solves the model's LP relaxation (integrality dropped)
// with the current bounds, exposing the relaxation's solution and duals.
func (m *Model) SolveRelaxation(opts lp.Options) (*lp.Solution, error) {
	return m.lpm.SolveWith(opts)
}

// Status is a solve outcome.
type Status int

// Solve outcomes.
const (
	// StatusOptimal: the tree was exhausted; the incumbent is optimal.
	StatusOptimal Status = iota + 1
	// StatusFeasible: a budget ran out; the incumbent is feasible but not
	// proved optimal.
	StatusFeasible
	// StatusInfeasible: the tree was exhausted without any integer-feasible
	// solution.
	StatusInfeasible
	// StatusUnknown: a budget ran out before any integer-feasible solution
	// was found.
	StatusUnknown
	// StatusUnbounded: the LP relaxation is unbounded.
	StatusUnbounded
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnknown:
		return "unknown"
	case StatusUnbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("mip.Status(%d)", int(s))
	}
}

// Result is the outcome of a Solve.
type Result struct {
	Status    Status
	Objective float64
	X         []float64
	// Bound is the best proven bound on the optimum (an upper bound when
	// maximizing); Gap is |Objective−Bound| relative to |Objective| when an
	// incumbent exists.
	Bound float64
	Gap   float64
	Nodes int
	// Runtime is the wall-clock solve time.
	Runtime time.Duration
}

// Options tunes the search; the zero value selects defaults.
type Options struct {
	// TimeLimit bounds wall-clock time, checked between frontier rounds
	// (default: none). It is the one nondeterministic stop: under a pure
	// node budget the search result is independent of wall-clock speed.
	TimeLimit time.Duration
	// MaxNodes bounds explored nodes (default 1 000 000).
	MaxNodes int
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// Workers sets how many goroutines expand frontier nodes concurrently
	// (default 1). The frontier width and all selection/merge decisions are
	// independent of Workers, so the result — incumbent, objective, bound,
	// node count, status — is identical for any worker count given the same
	// node budget.
	Workers int
	// Incumbent optionally warm-starts the search with a known point. It is
	// validated against bounds, integrality, and rows; an infeasible warm
	// start is silently ignored.
	Incumbent []float64
	// Heuristic, when set, is called on relaxation points (at the root and
	// periodically during the search) to propose integer-feasible candidates.
	// A nil return means no proposal; proposals are validated like Incumbent.
	// It is always invoked from the merging goroutine, never concurrently.
	Heuristic func(relaxation []float64) []float64
	// LP tunes the relaxation solver.
	LP lp.Options
}

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 1_000_000
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	return o
}

// ErrModel reports a malformed model.
var ErrModel = errors.New("mip: invalid model")

// frontierWidth is how many open nodes each bulk-synchronous round expands.
// It is a constant — deliberately not tied to Options.Workers — so that the
// search trajectory is the same no matter how many workers expand it.
const frontierWidth = 8

type node struct {
	// fixes are (variable, lower, upper) bound overrides accumulated along
	// the branch.
	fixes []fix
	bound float64 // parent LP bound (optimistic for this node)
	depth int
	seq   int64     // creation order; deterministic tie-break
	warm  *lp.Basis // parent's final basis, warm-starts this node's LP
}

type fix struct {
	v      int
	lo, hi float64
}

// expansion is the outcome of solving one frontier node's relaxation on a
// worker. Merging back into the search state happens sequentially.
type expansion struct {
	err       error
	status    lp.Status
	obj       float64
	x         []float64
	basis     *lp.Basis
	branchVar int // -1 when the relaxation point is integer feasible
}

// Solve runs branch & bound.
func (m *Model) Solve(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	start := time.Now()
	nv := m.lpm.NumVars()
	if nv == 0 {
		return nil, fmt.Errorf("%w: no variables", ErrModel)
	}
	origLo := make([]float64, nv)
	origHi := make([]float64, nv)
	for v := 0; v < nv; v++ {
		lo, hi, err := m.lpm.Bounds(v)
		if err != nil {
			return nil, err
		}
		origLo[v], origHi[v] = lo, hi
	}

	res := &Result{Status: StatusUnknown}
	better := func(a, b float64) bool { // is a better than b in model sense
		if m.sense == lp.Maximize {
			return a > b
		}
		return a < b
	}
	var incumbent []float64
	incumbentObj := math.Inf(-1)
	if m.sense == lp.Minimize {
		incumbentObj = math.Inf(1)
	}
	accept := func(x []float64, obj float64) {
		if incumbent == nil || better(obj, incumbentObj) {
			incumbent = append([]float64(nil), x...)
			incumbentObj = obj
		}
	}

	if len(opts.Incumbent) == nv {
		if obj, ok := m.checkPoint(opts.Incumbent, origLo, origHi, opts.IntTol); ok {
			accept(opts.Incumbent, obj)
		}
	}

	// Worker-local model clones: bounds are per-clone, structure is shared.
	clones := make([]*lp.Model, opts.Workers)
	for w := range clones {
		clones[w] = m.lpm.Clone()
	}

	open := []*node{{bound: infFor(m.sense)}}
	var nextSeq int64 = 1
	var rootBound float64
	rootBoundSet := false
	limitHit := false

	for len(open) > 0 {
		if opts.TimeLimit > 0 && time.Since(start) > opts.TimeLimit {
			limitHit = true
			break
		}
		// Drop nodes the incumbent already dominates (not counted, same as a
		// pop-and-prune in a serial search).
		if incumbent != nil {
			kept := open[:0]
			for _, nd := range open {
				if better(nd.bound, incumbentObj) {
					kept = append(kept, nd)
				}
			}
			open = kept
			if len(open) == 0 {
				break
			}
		}
		width := frontierWidth
		if rem := opts.MaxNodes - res.Nodes; width > rem {
			width = rem
		}
		if width <= 0 {
			limitHit = true
			break
		}
		if width > len(open) {
			width = len(open)
		}
		// Best-first selection: strongest bound first, creation order on ties.
		sort.Slice(open, func(a, b int) bool {
			if open[a].bound != open[b].bound {
				return better(open[a].bound, open[b].bound)
			}
			return open[a].seq < open[b].seq
		})
		selected := open[:width]
		open = append([]*node(nil), open[width:]...)

		// Expand the selected nodes in parallel; results land in a slice
		// indexed by selection order, so scheduling cannot reorder them.
		results := make([]expansion, len(selected))
		var wg sync.WaitGroup
		var next atomic.Int64
		for w := 0; w < opts.Workers && w < len(selected); w++ {
			wg.Add(1)
			go func(clone *lp.Model) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(selected) {
						return
					}
					results[i] = m.expandNode(clone, selected[i], origLo, origHi, opts)
				}
			}(clones[w])
		}
		wg.Wait()

		// Merge sequentially in selection order: counting, incumbent updates,
		// heuristics, and child creation are all deterministic.
		for i, nd := range selected {
			ex := results[i]
			if ex.err != nil {
				return nil, fmt.Errorf("mip: node %d relaxation: %w", res.Nodes+1, ex.err)
			}
			// Re-check the bound: an earlier merge this round may have raised
			// the incumbent past this node.
			if incumbent != nil && !better(nd.bound, incumbentObj) {
				continue
			}
			res.Nodes++
			switch ex.status {
			case lp.StatusInfeasible:
				continue
			case lp.StatusUnbounded:
				if nd.depth == 0 {
					res.Status = StatusUnbounded
					res.Runtime = time.Since(start)
					return res, nil
				}
				continue
			case lp.StatusIterLimit:
				// Treat as unexplorable; keep going without its bound.
				continue
			}
			if !rootBoundSet {
				rootBound, rootBoundSet = ex.obj, true
			}
			if incumbent != nil && !better(ex.obj, incumbentObj) {
				continue
			}
			if ex.branchVar < 0 {
				// Integer feasible.
				accept(ex.x, ex.obj)
				continue
			}
			if nd.depth == 0 || res.Nodes%64 == 0 {
				// Rounding + caller-supplied repair heuristics: cheap incumbents
				// to enable pruning.
				if x, obj, ok := m.roundHeuristic(ex.x, origLo, origHi, opts.IntTol); ok {
					accept(x, obj)
				}
				if opts.Heuristic != nil {
					if cand := opts.Heuristic(ex.x); len(cand) == nv {
						if obj, ok := m.checkPoint(cand, origLo, origHi, opts.IntTol); ok {
							accept(cand, obj)
						}
					}
				}
			}

			bv := ex.branchVar
			floorV := math.Floor(ex.x[bv])
			down := &node{
				fixes: appendFix(nd.fixes, fix{bv, origLo[bv], floorV}),
				bound: ex.obj,
				depth: nd.depth + 1,
				warm:  ex.basis,
			}
			up := &node{
				fixes: appendFix(nd.fixes, fix{bv, floorV + 1, origHi[bv]}),
				bound: ex.obj,
				depth: nd.depth + 1,
				warm:  ex.basis,
			}
			// Sequence the nearer-integer child first so bound ties resolve
			// toward the dive the serial search would have taken.
			if ex.x[bv]-floorV < 0.5 {
				down.seq, up.seq = nextSeq, nextSeq+1
			} else {
				up.seq, down.seq = nextSeq, nextSeq+1
			}
			nextSeq += 2
			open = append(open, down, up)
		}
	}

	res.Runtime = time.Since(start)
	if incumbent != nil {
		res.Objective = incumbentObj
		res.X = incumbent
		if limitHit {
			res.Status = StatusFeasible
			// The open-node bound: the best bound among unexplored nodes and
			// the incumbent.
			res.Bound = bestOpenBound(open, incumbentObj, m.sense)
			if rootBoundSet && better(res.Bound, rootBound) {
				res.Bound = rootBound
			}
		} else {
			res.Status = StatusOptimal
			res.Bound = incumbentObj
		}
		if res.Objective != 0 {
			res.Gap = math.Abs(res.Objective-res.Bound) / math.Abs(res.Objective)
		}
		return res, nil
	}
	if limitHit {
		res.Status = StatusUnknown
	} else {
		res.Status = StatusInfeasible
	}
	if rootBoundSet {
		res.Bound = rootBound
	}
	return res, nil
}

// expandNode solves one node's relaxation on a worker-local clone: reset
// bounds, apply the node's fixes, warm-start from the parent basis, and
// locate the most fractional integer variable.
func (m *Model) expandNode(clone *lp.Model, nd *node, origLo, origHi []float64, opts Options) expansion {
	nv := len(origLo)
	for v := 0; v < nv; v++ {
		// Original bounds are valid by construction.
		_ = clone.SetBounds(v, origLo[v], origHi[v])
	}
	for _, f := range nd.fixes {
		if f.lo > f.hi || clone.SetBounds(f.v, f.lo, f.hi) != nil {
			return expansion{status: lp.StatusInfeasible}
		}
	}
	lpOpts := opts.LP
	lpOpts.Warm = nd.warm
	sol, err := clone.SolveWith(lpOpts)
	if err != nil {
		return expansion{err: err}
	}
	ex := expansion{status: sol.Status, branchVar: -1}
	if sol.Status != lp.StatusOptimal {
		return ex
	}
	ex.obj = sol.Objective
	ex.x = sol.X
	ex.basis = sol.Basis
	worst := opts.IntTol
	for v := 0; v < nv; v++ {
		if !m.integer[v] {
			continue
		}
		frac := math.Abs(sol.X[v] - math.Round(sol.X[v]))
		if frac > worst {
			worst = frac
			ex.branchVar = v
		}
	}
	return ex
}

func infFor(s lp.Sense) float64 {
	if s == lp.Maximize {
		return math.Inf(1)
	}
	return math.Inf(-1)
}

func bestOpenBound(open []*node, incumbent float64, s lp.Sense) float64 {
	best := incumbent
	for _, nd := range open {
		if s == lp.Maximize && nd.bound > best {
			best = nd.bound
		}
		if s == lp.Minimize && nd.bound < best {
			best = nd.bound
		}
	}
	return best
}

func appendFix(fs []fix, f fix) []fix {
	out := make([]fix, len(fs), len(fs)+1)
	copy(out, fs)
	// Merge with an existing fix of the same variable (tighten).
	for i := range out {
		if out[i].v == f.v {
			out[i].lo = math.Max(out[i].lo, f.lo)
			out[i].hi = math.Min(out[i].hi, f.hi)
			return out
		}
	}
	return append(out, f)
}

// roundHeuristic rounds the relaxation point to the nearest integers,
// clamps to bounds, and accepts it if all rows hold. It returns the point
// and its objective value.
func (m *Model) roundHeuristic(x []float64, lo, hi []float64, tol float64) ([]float64, float64, bool) {
	nv := len(x)
	cand := make([]float64, nv)
	for v := 0; v < nv; v++ {
		cand[v] = x[v]
		if m.integer[v] {
			cand[v] = math.Round(x[v])
		}
		cand[v] = math.Max(lo[v], math.Min(hi[v], cand[v]))
	}
	obj, ok := m.checkPoint(cand, lo, hi, tol)
	if !ok {
		return nil, 0, false
	}
	return cand, obj, true
}

// checkPoint verifies a point against bounds, integrality, and all rows, and
// returns its objective value.
func (m *Model) checkPoint(x []float64, lo, hi []float64, tol float64) (float64, bool) {
	for v := range x {
		if x[v] < lo[v]-1e-7 || x[v] > hi[v]+1e-7 {
			return 0, false
		}
		if m.integer[v] && math.Abs(x[v]-math.Round(x[v])) > tol {
			return 0, false
		}
	}
	for _, r := range m.rows {
		val := 0.0
		for _, t := range r.terms {
			val += t.Coeff * x[t.Var]
		}
		switch r.op {
		case lp.LE:
			if val > r.rhs+1e-7 {
				return 0, false
			}
		case lp.GE:
			if val < r.rhs-1e-7 {
				return 0, false
			}
		case lp.EQ:
			if math.Abs(val-r.rhs) > 1e-7 {
				return 0, false
			}
		}
	}
	obj := 0.0
	for v := range x {
		obj += m.objs[v] * x[v]
	}
	return obj, true
}
