package mip

import (
	"math"
	"math/rand"
	"testing"

	"pmedic/internal/lp"
)

// buildRandomBinary constructs a random binary program with nv variables and
// a handful of knapsack-style rows.
func buildRandomBinary(rng *rand.Rand, nv int) *Model {
	m := NewModel(lp.Maximize)
	for v := 0; v < nv; v++ {
		m.AddBinary(float64(rng.Intn(31)-10), "")
	}
	nr := 2 + rng.Intn(5)
	for r := 0; r < nr; r++ {
		terms := make([]lp.Term, 0, nv)
		for v := 0; v < nv; v++ {
			c := float64(rng.Intn(9) - 3)
			if c != 0 {
				terms = append(terms, lp.Term{Var: v, Coeff: c})
			}
		}
		op := lp.LE
		if rng.Intn(3) == 0 {
			op = lp.GE
		}
		rhs := float64(rng.Intn(int(2+math.Sqrt(float64(nv)))*4) - 2)
		if err := m.AddRow(op, rhs, terms...); err != nil {
			panic(err)
		}
	}
	return m
}

// TestWorkersDeterminism pins the bulk-synchronous search: for the same
// model and node budget, Workers=1 and Workers=8 must produce the same
// status, objective, incumbent, node count, and bound. TimeLimit is zero so
// the node budget is the only stop. Run in CI under -race.
func TestWorkersDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		nv := 6 + rng.Intn(14)
		m := buildRandomBinary(rng, nv)
		// Alternate between exhaustive runs and tight budgets so both the
		// Optimal and Feasible/Unknown paths are compared.
		maxNodes := 0
		if trial%2 == 1 {
			maxNodes = 1 + rng.Intn(20)
		}
		var results [2]*Result
		for i, workers := range []int{1, 8} {
			res, err := m.Solve(Options{Workers: workers, MaxNodes: maxNodes})
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			results[i] = res
		}
		a, b := results[0], results[1]
		if a.Status != b.Status {
			t.Fatalf("trial %d: status %v (1 worker) vs %v (8 workers)", trial, a.Status, b.Status)
		}
		if a.Nodes != b.Nodes {
			t.Fatalf("trial %d: nodes %d vs %d", trial, a.Nodes, b.Nodes)
		}
		if a.Objective != b.Objective {
			t.Fatalf("trial %d: objective %v vs %v", trial, a.Objective, b.Objective)
		}
		if a.Bound != b.Bound {
			t.Fatalf("trial %d: bound %v vs %v", trial, a.Bound, b.Bound)
		}
		if len(a.X) != len(b.X) {
			t.Fatalf("trial %d: incumbent lengths %d vs %d", trial, len(a.X), len(b.X))
		}
		for v := range a.X {
			if a.X[v] != b.X[v] {
				t.Fatalf("trial %d: incumbent differs at var %d: %v vs %v", trial, v, a.X[v], b.X[v])
			}
		}
	}
}

// TestWorkersMatchExhaustive checks the parallel search still proves optima:
// Workers=8 against brute-force enumeration on small binaries.
func TestWorkersMatchExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		nv := 3 + rng.Intn(8)
		m := buildRandomBinary(rng, nv)
		res, err := m.Solve(Options{Workers: 8})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		best := math.Inf(-1)
		for mask := 0; mask < 1<<nv; mask++ {
			x := make([]float64, nv)
			for v := 0; v < nv; v++ {
				if mask&(1<<v) != 0 {
					x[v] = 1
				}
			}
			if obj, ok := m.checkPoint(x, zeros(nv), ones(nv), 1e-6); ok && obj > best {
				best = obj
			}
		}
		if math.IsInf(best, -1) {
			if res.Status != StatusInfeasible {
				t.Fatalf("trial %d: got %v, want infeasible", trial, res.Status)
			}
			continue
		}
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: got %v, want optimal", trial, res.Status)
		}
		if math.Abs(res.Objective-best) > 1e-6 {
			t.Fatalf("trial %d: objective %v, brute force %v", trial, res.Objective, best)
		}
	}
}

func zeros(n int) []float64 { return make([]float64, n) }

func ones(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	return x
}
