package mip

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"pmedic/internal/lp"
)

func TestSolveKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary -> a=1,c=1 (17)
	// vs b=1,c=1 (20, weight 6 OK) -> optimal 20.
	m := NewModel(lp.Maximize)
	a := m.AddBinary(10, "a")
	b := m.AddBinary(13, "b")
	c := m.AddBinary(7, "c")
	if err := m.AddRow(lp.LE, 6, lp.Term{Var: a, Coeff: 3}, lp.Term{Var: b, Coeff: 4}, lp.Term{Var: c, Coeff: 2}); err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status %v, want optimal", res.Status)
	}
	if math.Abs(res.Objective-20) > 1e-6 {
		t.Fatalf("objective %v, want 20", res.Objective)
	}
}

func TestSolveIntegerRounding(t *testing.T) {
	// max x s.t. 2x <= 5, x integer -> 2 (LP gives 2.5).
	m := NewModel(lp.Maximize)
	x := m.AddVar(0, 10, 1, "x", true)
	if err := m.AddRow(lp.LE, 5, lp.Term{Var: x, Coeff: 2}); err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal || math.Abs(res.Objective-2) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 2", res.Status, res.Objective)
	}
}

func TestSolveMixedIntegerContinuous(t *testing.T) {
	// max 2x + y, x integer, y continuous; x + y <= 3.5, x <= 2.2.
	// x=2, y=1.5 -> 5.5.
	m := NewModel(lp.Maximize)
	x := m.AddVar(0, 2.2, 2, "x", true)
	y := m.AddVar(0, math.Inf(1), 1, "y", false)
	if err := m.AddRow(lp.LE, 3.5, lp.Term{Var: x, Coeff: 1}, lp.Term{Var: y, Coeff: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal || math.Abs(res.Objective-5.5) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 5.5", res.Status, res.Objective)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// Binary x + y = 1.5 has no integer solution but an LP one; B&B must
	// prove infeasibility.
	m := NewModel(lp.Maximize)
	x := m.AddBinary(1, "x")
	y := m.AddBinary(1, "y")
	if err := m.AddRow(lp.EQ, 1.5, lp.Term{Var: x, Coeff: 1}, lp.Term{Var: y, Coeff: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", res.Status)
	}
}

func TestSolveMinimize(t *testing.T) {
	// min 3x + 2y s.t. x + y >= 3, binary×{0..4}: x binary, y integer 0..4.
	// Cheapest: y=3 (6) vs x=1,y=2 (7) -> 6.
	m := NewModel(lp.Minimize)
	x := m.AddBinary(3, "x")
	y := m.AddVar(0, 4, 2, "y", true)
	if err := m.AddRow(lp.GE, 3, lp.Term{Var: x, Coeff: 1}, lp.Term{Var: y, Coeff: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal || math.Abs(res.Objective-6) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 6", res.Status, res.Objective)
	}
}

func TestSolveTimeLimitReturnsIncumbentOrUnknown(t *testing.T) {
	m := NewModel(lp.Maximize)
	rng := rand.New(rand.NewSource(3))
	n := 24
	vars := make([]int, n)
	terms := make([]lp.Term, n)
	for i := 0; i < n; i++ {
		vars[i] = m.AddBinary(float64(1+rng.Intn(40)), "")
		terms[i] = lp.Term{Var: vars[i], Coeff: float64(1 + rng.Intn(20))}
	}
	if err := m.AddRow(lp.LE, 50, terms...); err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(Options{TimeLimit: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	switch res.Status {
	case StatusOptimal, StatusFeasible, StatusUnknown:
		// All legitimate under a 1 ms budget.
	default:
		t.Fatalf("unexpected status %v", res.Status)
	}
	if res.Status == StatusFeasible && res.X == nil {
		t.Fatal("feasible status without incumbent")
	}
}

// TestRandomBinaryExact cross-checks small random binary programs against
// exhaustive enumeration.
func TestRandomBinaryExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(8) // up to 10 binaries -> 1024 points
		m := NewModel(lp.Maximize)
		obj := make([]float64, n)
		for v := 0; v < n; v++ {
			obj[v] = float64(rng.Intn(21) - 10)
			m.AddBinary(obj[v], "")
		}
		type rrow struct {
			coeffs []float64
			op     lp.Op
			rhs    float64
		}
		var rows []rrow
		nr := 1 + rng.Intn(4)
		for r := 0; r < nr; r++ {
			coeffs := make([]float64, n)
			terms := make([]lp.Term, 0, n)
			for v := 0; v < n; v++ {
				c := float64(rng.Intn(9) - 4)
				coeffs[v] = c
				if c != 0 {
					terms = append(terms, lp.Term{Var: v, Coeff: c})
				}
			}
			var op lp.Op
			rhs := float64(rng.Intn(11) - 3)
			if rng.Intn(2) == 0 {
				op = lp.LE
			} else {
				op = lp.GE
			}
			if err := m.AddRow(op, rhs, terms...); err != nil {
				t.Fatal(err)
			}
			rows = append(rows, rrow{coeffs, op, rhs})
		}
		// Brute force.
		best := math.Inf(-1)
		for mask := 0; mask < 1<<n; mask++ {
			ok := true
			for _, r := range rows {
				val := 0.0
				for v := 0; v < n; v++ {
					if mask&(1<<v) != 0 {
						val += r.coeffs[v]
					}
				}
				if (r.op == lp.LE && val > r.rhs) || (r.op == lp.GE && val < r.rhs) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			val := 0.0
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					val += obj[v]
				}
			}
			if val > best {
				best = val
			}
		}
		res, err := m.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.IsInf(best, -1) {
			if res.Status != StatusInfeasible {
				t.Fatalf("trial %d: status %v, brute force says infeasible", trial, res.Status)
			}
			continue
		}
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v, want optimal", trial, res.Status)
		}
		if math.Abs(res.Objective-best) > 1e-6 {
			t.Fatalf("trial %d: objective %v, brute force %v", trial, res.Objective, best)
		}
		// Returned point must be binary and feasible.
		for v := 0; v < n; v++ {
			if math.Abs(res.X[v]-math.Round(res.X[v])) > 1e-6 {
				t.Fatalf("trial %d: x[%d]=%v not integral", trial, v, res.X[v])
			}
		}
	}
}
