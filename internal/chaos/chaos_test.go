package chaos

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// frame builds one openflow-framed message of total length 8+len(body).
func frame(xid uint32, body []byte) []byte {
	b := make([]byte, 8+len(body))
	b[0] = 0x04
	b[1] = 0x01
	binary.BigEndian.PutUint16(b[2:4], uint16(len(b)))
	binary.BigEndian.PutUint32(b[4:8], xid)
	copy(b[8:], body)
	return b
}

// recorder is an in-memory ReadWriteCloser capturing writes.
type recorder struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (r *recorder) Read(p []byte) (int, error) { return 0, io.EOF }
func (r *recorder) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.buf.Write(p)
}
func (r *recorder) Close() error { return nil }
func (r *recorder) bytes() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]byte(nil), r.buf.Bytes()...)
}

func TestDeterministicSchedule(t *testing.T) {
	// The same seed and write sequence must produce the same surviving byte
	// stream, twice in a row.
	run := func() []byte {
		rec := &recorder{}
		tr := NewTransport(rec, Config{Seed: 42, DropProb: 0.3, DupProb: 0.3})
		for i := 0; i < 50; i++ {
			if _, err := tr.Write(frame(uint32(i), []byte{byte(i)})); err != nil {
				t.Fatal(err)
			}
		}
		return rec.bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different schedules: %d vs %d bytes", len(a), len(b))
	}
	// And a different seed should (for this configuration) differ.
	rec := &recorder{}
	tr := NewTransport(rec, Config{Seed: 43, DropProb: 0.3, DupProb: 0.3})
	for i := 0; i < 50; i++ {
		if _, err := tr.Write(frame(uint32(i), []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	if bytes.Equal(a, rec.bytes()) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestFrameDropAndDup(t *testing.T) {
	rec := &recorder{}
	tr := NewTransport(rec, Config{DropProb: 1})
	msg := frame(7, []byte("x"))
	if _, err := tr.Write(msg); err != nil {
		t.Fatal(err)
	}
	if got := rec.bytes(); len(got) != 0 {
		t.Fatalf("DropProb=1 leaked %d bytes", len(got))
	}

	rec = &recorder{}
	tr = NewTransport(rec, Config{DupProb: 1})
	if _, err := tr.Write(msg); err != nil {
		t.Fatal(err)
	}
	if got := rec.bytes(); !bytes.Equal(got, append(append([]byte(nil), msg...), msg...)) {
		t.Fatalf("DupProb=1 wrote %d bytes, want doubled frame (%d)", len(got), 2*len(msg))
	}
}

func TestFrameFaultsRespectBudgetsAndPartialWrites(t *testing.T) {
	rec := &recorder{}
	tr := NewTransport(rec, Config{DropProb: 1, MaxDrops: 1})
	msg := frame(1, []byte("abc"))
	// Feed the first frame in two partial writes: nothing may escape until
	// the frame completes, and the first complete frame is dropped.
	if _, err := tr.Write(msg[:5]); err != nil {
		t.Fatal(err)
	}
	if len(rec.bytes()) != 0 {
		t.Fatal("partial frame escaped the buffer")
	}
	if _, err := tr.Write(msg[5:]); err != nil {
		t.Fatal(err)
	}
	if len(rec.bytes()) != 0 {
		t.Fatal("first frame should have been dropped")
	}
	// Budget exhausted: the second frame passes.
	if _, err := tr.Write(msg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.bytes(), msg) {
		t.Fatalf("second frame mangled: %x", rec.bytes())
	}
}

func TestInjectedReset(t *testing.T) {
	a, b := net.Pipe()
	defer func() { _ = b.Close() }()
	tr := NewTransport(a, Config{ResetProb: 1})

	// Drain the peer so a partial prefix write cannot block.
	go func() { _, _ = io.Copy(io.Discard, b) }()

	if _, err := tr.Write(frame(1, []byte("doomed"))); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write error = %v, want ErrInjectedReset", err)
	}
	// The transport is dead: reads and writes fail fast.
	if _, err := tr.Write([]byte("more")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("second write error = %v", err)
	}
	if _, err := tr.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("read error = %v", err)
	}
}

func TestLatencyInjection(t *testing.T) {
	a, b := net.Pipe()
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()
	tr := NewTransport(a, Config{Latency: 30 * time.Millisecond})
	go func() { _, _ = b.Write([]byte("x")) }()
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := tr.Read(buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("read returned after %v, want >= 30ms", elapsed)
	}
}

func TestDeadlinesForwarded(t *testing.T) {
	a, b := net.Pipe()
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()
	tr := NewTransport(a, Config{})
	if err := tr.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, err := tr.Read(make([]byte, 1))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read error = %v, want timeout", err)
	}
}

func TestDialerFailuresAndBudget(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			_ = c.Close()
		}
	}()

	d := NewDialer(Config{Seed: 1, DialFailProb: 1, MaxDialFails: 2})
	for i := 0; i < 2; i++ {
		if _, err := d.Dial(l.Addr().String(), time.Second); !errors.Is(err, ErrInjectedDialFailure) {
			t.Fatalf("dial %d error = %v, want injected failure", i, err)
		}
	}
	// Budget spent: the third dial succeeds.
	tr, err := d.Dial(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("dial after budget: %v", err)
	}
	_ = tr.Close()
}
