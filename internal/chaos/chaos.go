// Package chaos is a deterministic fault-injection layer for byte-stream
// transports. A Transport wraps any io.ReadWriteCloser — typically the
// net.Conn under an openflow.Conn — and injects, from a seeded PRNG:
//
//   - latency on every read and write,
//   - connection resets with a partial (truncated) final write,
//   - dropped and duplicated whole frames on the write path,
//
// while a Dialer additionally injects dial failures. All decisions come from
// the seed, so a failing schedule replays exactly; shared fault budgets
// (MaxResets, MaxDialFails, ...) bound the chaos so that retry loops under
// test are guaranteed to converge eventually.
//
// The package knows nothing about the protocol above it except, for
// frame-level faults, how to delimit frames: the default framer understands
// the 8-byte header used by internal/openflow (total length, big-endian, at
// bytes 2..3), and Config.FrameLen can replace it.
package chaos

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset marks an operation killed by an injected connection
// reset. The transport is dead afterwards: every later read or write fails.
var ErrInjectedReset = errors.New("chaos: injected connection reset")

// ErrInjectedDialFailure marks a dial attempt refused by fault injection.
var ErrInjectedDialFailure = errors.New("chaos: injected dial failure")

// Config tunes a Transport (and, via Dialer, every transport it creates).
// The zero value injects nothing.
type Config struct {
	// Seed drives every probabilistic decision. Two transports with the same
	// seed and the same operation sequence make the same decisions.
	Seed int64

	// Latency is slept before every Read and every Write; Jitter adds a
	// uniform [0, Jitter) amount on top, drawn from the seeded PRNG.
	Latency time.Duration
	Jitter  time.Duration

	// ResetProb is the per-Write probability of an injected connection
	// reset: a random strict prefix of the data reaches the peer, the
	// underlying transport is closed (unblocking any reader), and the write
	// — plus every later operation — fails with ErrInjectedReset.
	ResetProb float64
	// MaxResets bounds the number of injected resets (0 = unlimited). A
	// Dialer shares one budget across all transports it creates, so a retry
	// loop eventually gets a clean connection.
	MaxResets int

	// DropProb and DupProb are per-frame probabilities on the write path:
	// a dropped frame never reaches the peer; a duplicated one arrives
	// twice. Frame faults require buffering writes until whole frames
	// delimit, so they only engage when at least one probability is nonzero.
	DropProb float64
	DupProb  float64
	// MaxDrops / MaxDups bound the respective injections (0 = unlimited),
	// shared across a Dialer's transports like MaxResets.
	MaxDrops int
	MaxDups  int

	// DialFailProb is the per-Dial probability of ErrInjectedDialFailure;
	// MaxDialFails bounds the total injected failures (0 = unlimited).
	DialFailProb float64
	MaxDialFails int

	// FrameLen returns the length in bytes of the first complete frame in
	// buf, or 0 if buf holds no complete frame yet. Nil selects the
	// openflow-style framer: an 8-byte header whose bytes 2..3 carry the
	// big-endian total message length.
	FrameLen func(buf []byte) int
}

// openflowFrameLen delimits frames by the openflow wire header without
// importing the package: total length lives at bytes 2..3, big-endian.
func openflowFrameLen(buf []byte) int {
	const headerLen = 8
	if len(buf) < headerLen {
		return 0
	}
	n := int(binary.BigEndian.Uint16(buf[2:4]))
	if n < headerLen {
		// Malformed length: pass the bytes through untouched rather than
		// buffering forever.
		return len(buf)
	}
	if len(buf) < n {
		return 0
	}
	return n
}

// budget is a shared countdown for one fault class; nil means unlimited.
type budget struct {
	mu   sync.Mutex
	left int
	cap  bool
}

func newBudget(max int) *budget {
	if max <= 0 {
		return nil
	}
	return &budget{left: max, cap: true}
}

// take consumes one unit; it reports whether the fault may be injected.
func (b *budget) take() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cap && b.left <= 0 {
		return false
	}
	b.left--
	return true
}

// Transport is a fault-injecting io.ReadWriteCloser. It forwards the
// deadline setters of the wrapped transport when present, so connection
// deadlines keep working through the chaos layer.
type Transport struct {
	cfg   Config
	frame func([]byte) int

	resets, drops, dups *budget

	mu     sync.Mutex // guards rng, wbuf, broken
	rng    *rand.Rand
	wbuf   []byte
	broken bool

	rwc io.ReadWriteCloser
}

// NewTransport wraps rwc with the configured fault plan.
func NewTransport(rwc io.ReadWriteCloser, cfg Config) *Transport {
	t := &Transport{
		cfg:    cfg,
		frame:  cfg.FrameLen,
		rwc:    rwc,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		resets: newBudget(cfg.MaxResets),
		drops:  newBudget(cfg.MaxDrops),
		dups:   newBudget(cfg.MaxDups),
	}
	if t.frame == nil {
		t.frame = openflowFrameLen
	}
	return t
}

// delay sleeps the configured latency plus seeded jitter.
func (t *Transport) delay() {
	d := t.cfg.Latency
	if t.cfg.Jitter > 0 {
		t.mu.Lock()
		d += time.Duration(t.rng.Int63n(int64(t.cfg.Jitter)))
		t.mu.Unlock()
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// Read injects latency, then reads from the wrapped transport. After an
// injected reset it fails immediately.
func (t *Transport) Read(p []byte) (int, error) {
	t.delay()
	t.mu.Lock()
	dead := t.broken
	t.mu.Unlock()
	if dead {
		return 0, ErrInjectedReset
	}
	return t.rwc.Read(p)
}

// Write injects latency and the configured write-path faults. It reports
// len(p) bytes consumed on success even when frames were dropped: from the
// caller's perspective the bytes entered the network and vanished there.
func (t *Transport) Write(p []byte) (int, error) {
	t.delay()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.broken {
		return 0, ErrInjectedReset
	}
	if t.cfg.ResetProb > 0 && t.rng.Float64() < t.cfg.ResetProb && t.resets.take() {
		// Partial write: a strict prefix escapes, then the transport dies.
		if n := t.rng.Intn(len(p) + 1); n > 0 && n < len(p) {
			_, _ = t.rwc.Write(p[:n])
		}
		t.broken = true
		_ = t.rwc.Close() // unblock the peer and any concurrent reader
		return 0, ErrInjectedReset
	}
	if t.cfg.DropProb <= 0 && t.cfg.DupProb <= 0 {
		return t.rwc.Write(p)
	}
	// Frame-level faults: buffer until whole frames delimit, then decide
	// per frame.
	t.wbuf = append(t.wbuf, p...)
	for {
		n := t.frame(t.wbuf)
		if n <= 0 || n > len(t.wbuf) {
			break
		}
		frame := t.wbuf[:n]
		switch {
		case t.cfg.DropProb > 0 && t.rng.Float64() < t.cfg.DropProb && t.drops.take():
			// dropped: never reaches the wire
		case t.cfg.DupProb > 0 && t.rng.Float64() < t.cfg.DupProb && t.dups.take():
			if _, err := t.rwc.Write(frame); err != nil {
				return 0, err
			}
			if _, err := t.rwc.Write(frame); err != nil {
				return 0, err
			}
		default:
			if _, err := t.rwc.Write(frame); err != nil {
				return 0, err
			}
		}
		t.wbuf = t.wbuf[:copy(t.wbuf, t.wbuf[n:])]
	}
	return len(p), nil
}

// Close closes the wrapped transport.
func (t *Transport) Close() error { return t.rwc.Close() }

// SetReadDeadline forwards to the wrapped transport when it supports
// deadlines and is a no-op otherwise.
func (t *Transport) SetReadDeadline(dl time.Time) error {
	if d, ok := t.rwc.(interface{ SetReadDeadline(time.Time) error }); ok {
		return d.SetReadDeadline(dl)
	}
	return nil
}

// SetWriteDeadline forwards to the wrapped transport when it supports
// deadlines and is a no-op otherwise.
func (t *Transport) SetWriteDeadline(dl time.Time) error {
	if d, ok := t.rwc.(interface{ SetWriteDeadline(time.Time) error }); ok {
		return d.SetWriteDeadline(dl)
	}
	return nil
}

// Dialer opens TCP connections wrapped in fault-injecting transports. Fault
// budgets (MaxResets, MaxDrops, MaxDups, MaxDialFails) are shared across
// every connection the dialer creates, and each connection derives its own
// PRNG stream from the dialer's seed and a dial sequence number, so a fixed
// seed replays the same schedule for the same dial order.
type Dialer struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand
	seq int64

	dialFails           *budget
	resets, drops, dups *budget
}

// NewDialer builds a dialer with the given fault plan.
func NewDialer(cfg Config) *Dialer {
	return &Dialer{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		dialFails: newBudget(cfg.MaxDialFails),
		resets:    newBudget(cfg.MaxResets),
		drops:     newBudget(cfg.MaxDrops),
		dups:      newBudget(cfg.MaxDups),
	}
}

// Dial opens a TCP connection to addr within timeout (0 = no timeout) and
// wraps it. Injected failures return ErrInjectedDialFailure.
func (d *Dialer) Dial(addr string, timeout time.Duration) (*Transport, error) {
	d.mu.Lock()
	d.seq++
	seed := d.cfg.Seed + 0x9e3779b9*d.seq
	fail := d.cfg.DialFailProb > 0 && d.rng.Float64() < d.cfg.DialFailProb
	d.mu.Unlock()
	if fail && d.dialFails.take() {
		return nil, fmt.Errorf("%w: %s", ErrInjectedDialFailure, addr)
	}
	var (
		nc  net.Conn
		err error
	)
	if timeout > 0 {
		nc, err = net.DialTimeout("tcp", addr, timeout)
	} else {
		nc, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, err
	}
	cfg := d.cfg
	cfg.Seed = seed
	t := NewTransport(nc, cfg)
	// Share the dialer-wide budgets so chaos is bounded globally, not per
	// connection.
	t.resets, t.drops, t.dups = d.resets, d.drops, d.dups
	return t, nil
}
