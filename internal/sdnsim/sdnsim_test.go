package sdnsim

import (
	"errors"
	"testing"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

func network(t *testing.T) *Network {
	t.Helper()
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSteadyStateFollowsFlowTables(t *testing.T) {
	n := network(t)
	for l := 0; l < n.Flows.Len(); l += 37 { // sample across the workload
		id := flow.ID(l)
		tr, err := n.Inject(id)
		if err != nil {
			t.Fatalf("flow %d: %v", id, err)
		}
		if !tr.Delivered {
			t.Fatalf("flow %d not delivered: %+v", id, tr)
		}
		f := &n.Flows.Flows[id]
		if len(tr.Path) != len(f.Path) {
			t.Fatalf("flow %d path %v, want %v", id, tr.Path, f.Path)
		}
		for i := range tr.Path {
			if tr.Path[i] != f.Path[i] {
				t.Fatalf("flow %d diverged at hop %d: %v vs %v", id, i, tr.Path, f.Path)
			}
		}
		for i, v := range tr.Verdicts[:len(tr.Verdicts)-1] {
			if v != VerdictFlowTable {
				t.Fatalf("flow %d hop %d verdict %v, want flow-table", id, i, v)
			}
		}
	}
}

func TestLegacyFallthroughAfterEntryRemoval(t *testing.T) {
	n := network(t)
	id := flow.ID(0)
	f := &n.Flows.Flows[id]
	// Remove the entry at the source: the hybrid pipeline must fall through
	// to OSPF and still deliver.
	n.Switches[f.Src].RemoveEntry(id)
	tr, err := n.Inject(id)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Delivered {
		t.Fatalf("hybrid fallthrough failed: %+v", tr)
	}
	if tr.Verdicts[0] != VerdictLegacy {
		t.Fatalf("first hop verdict %v, want legacy", tr.Verdicts[0])
	}
	if n.Stats.LegacyFallbacks == 0 {
		t.Fatal("legacy fallback not counted")
	}
}

func TestSDNPipelinePuntsOnMiss(t *testing.T) {
	n := network(t)
	id := flow.ID(0)
	f := &n.Flows.Flows[id]
	n.Switches[f.Src].Pipeline = PipelineSDN
	n.Switches[f.Src].RemoveEntry(id)
	tr, err := n.Inject(id)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Delivered || tr.Verdicts[0] != VerdictPuntNoMatch {
		t.Fatalf("SDN-only miss: %+v", tr)
	}
}

func TestLegacyPipelineIgnoresFlowTable(t *testing.T) {
	n := network(t)
	id := flow.ID(0)
	f := &n.Flows.Flows[id]
	src := n.Switches[f.Src]
	src.Pipeline = PipelineLegacy
	// Poison the flow table with a bogus next hop; legacy mode must ignore it.
	src.InstallEntry(FlowEntry{FlowID: id, Priority: 999, NextHop: f.Src})
	tr, err := n.Inject(id)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Delivered {
		t.Fatalf("legacy pipeline failed: %+v", tr)
	}
	if tr.Verdicts[0] != VerdictLegacy {
		t.Fatalf("verdict %v, want legacy", tr.Verdicts[0])
	}
}

func TestPriorityOrdering(t *testing.T) {
	n := network(t)
	id := flow.ID(0)
	f := &n.Flows.Flows[id]
	sw := n.Switches[f.Src]
	orig, _ := sw.Entry(id)
	other := topo.NodeID(-1)
	n.Dep.Graph.ForEachNeighbor(f.Src, func(v topo.NodeID) {
		if v != orig.NextHop {
			other = v
		}
	})
	if other < 0 {
		t.Skip("source has a single neighbor")
	}
	sw.InstallEntry(FlowEntry{FlowID: id, Priority: 200, NextHop: other})
	e, ok := sw.Entry(id)
	if !ok || e.Priority != 200 || e.NextHop != other {
		t.Fatalf("highest-priority entry = %+v", e)
	}
}

func TestFailureFreezesProgrammabilityButNotForwarding(t *testing.T) {
	n := network(t)
	// Fail the hub domain controller (C4, index 3).
	if err := n.FailControllers(3); err != nil {
		t.Fatal(err)
	}
	offline := n.OfflineSwitches()
	if len(offline) != len(n.Dep.Controllers[3].Domain) {
		t.Fatalf("offline = %v", offline)
	}
	// A flow crossing the hub still forwards (data plane survives) ...
	var crossing flow.ID = -1
	for l := range n.Flows.Flows {
		f := &n.Flows.Flows[l]
		if f.Src != 13 && f.Dst != 13 && f.Traverses(13) {
			crossing = f.ID
			break
		}
	}
	if crossing < 0 {
		t.Fatal("no flow crosses the hub")
	}
	tr, err := n.Inject(crossing)
	if err != nil || !tr.Delivered {
		t.Fatalf("crossing flow not delivered after failure: %v %+v", err, tr)
	}
	// ... but cannot be rerouted at the offline hub.
	if n.ProgrammableAt(crossing, 13) {
		t.Fatal("offline switch reported programmable")
	}
	err = n.Reroute(crossing, 13, n.Dep.Graph.Neighbors(13)[0])
	if !errors.Is(err, ErrUnmanaged) {
		t.Fatalf("reroute error = %v, want ErrUnmanaged", err)
	}
}

func TestRerouteChangesForwarding(t *testing.T) {
	n := network(t)
	// Find a flow and an on-path switch with an alternative next hop.
	for l := range n.Flows.Flows {
		f := &n.Flows.Flows[l]
		for _, at := range f.Path[:len(f.Path)-1] {
			if !n.ProgrammableAt(f.ID, at) {
				continue
			}
			entry, _ := n.Switches[at].Entry(f.ID)
			var alt topo.NodeID = -1
			for _, v := range n.Dep.Graph.Neighbors(at) {
				if v != entry.NextHop && n.reaches(v, f.Dst, at) {
					alt = v
					break
				}
			}
			if alt < 0 {
				continue
			}
			if err := n.Reroute(f.ID, at, alt); err != nil {
				t.Fatalf("Reroute: %v", err)
			}
			e, _ := n.Switches[at].Entry(f.ID)
			if e.NextHop != alt {
				t.Fatalf("entry after reroute = %+v, want next hop %d", e, alt)
			}
			if n.Stats.FlowModsSent == 0 {
				t.Fatal("flow-mod not counted")
			}
			return
		}
	}
	t.Fatal("no programmable (flow, switch) found in steady state")
}

func TestRerouteRejectsLoop(t *testing.T) {
	n := network(t)
	// Rerouting toward a neighbor that can only reach dst back through the
	// same switch must be refused. Find such a case: a degree-1 neighbor.
	for l := range n.Flows.Flows {
		f := &n.Flows.Flows[l]
		for _, at := range f.Path[:len(f.Path)-1] {
			for _, v := range n.Dep.Graph.Neighbors(at) {
				if v == f.Dst {
					continue
				}
				if n.Dep.Graph.Degree(v) == 1 {
					err := n.Reroute(f.ID, at, v)
					if err == nil {
						t.Fatalf("reroute into dead-end %d accepted", v)
					}
					return
				}
			}
		}
	}
	t.Skip("topology has no degree-1 node adjacent to a flow path")
}

func TestApplyRecoveryRestoresProgrammability(t *testing.T) {
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	// Fail C4 and C5 — the headline case (13, 16).
	if err := n.FailControllers(3, 4); err != nil {
		t.Fatal(err)
	}
	inst, err := scenario.Build(dep, flows, []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.PM(inst.Problem)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := inst.Evaluate(sol)
	if err != nil {
		t.Fatal(err)
	}

	// Before recovery: every offline flow with pairs only at offline
	// switches is unprogrammable.
	messages, err := n.ApplyRecovery(inst, sol)
	if err != nil {
		t.Fatal(err)
	}
	if messages == 0 {
		t.Fatal("recovery sent no control messages")
	}

	// The analytic report and the behavioural network must agree: flows the
	// solution recovered are reroutable at some offline switch OR at an
	// online switch on their path; flows with pro=0 must not be reroutable
	// at any offline switch.
	pro := sol.FlowProgrammability(inst.Problem)
	offline := map[topo.NodeID]bool{}
	for _, sw := range inst.Switches {
		offline[sw] = true
	}
	checked := 0
	for li, lid := range inst.FlowIDs {
		if pro[li] == 0 {
			continue
		}
		// Recovered flows must be programmable somewhere on their path.
		if !n.Programmable(lid) {
			t.Fatalf("flow %d recovered analytically (pro=%d) but not reroutable in the network",
				lid, pro[li])
		}
		checked++
		if checked >= 50 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
	if rep.RecoveredFlows == 0 {
		t.Fatal("PM recovered nothing in the headline case")
	}

	// Packets still flow after reconfiguration.
	tr, err := n.Inject(inst.FlowIDs[0])
	if err != nil || !tr.Delivered {
		t.Fatalf("post-recovery delivery failed: %v %+v", err, tr)
	}
}

func TestApplyRecoveryRespectsCapacity(t *testing.T) {
	n := network(t)
	if err := n.FailControllers(3); err != nil {
		t.Fatal(err)
	}
	inst, err := scenario.Build(n.Dep, n.Flows, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.PM(inst.Problem)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.ApplyRecovery(inst, sol); err != nil {
		t.Fatal(err)
	}
	for _, c := range n.Controllers {
		if c.Load > c.Capacity {
			t.Fatalf("controller %d over capacity: %d > %d", c.Index, c.Load, c.Capacity)
		}
	}
}

func TestInjectUnknownFlow(t *testing.T) {
	n := network(t)
	if _, err := n.Inject(flow.ID(99999)); !errors.Is(err, ErrBadFlow) {
		t.Fatalf("error = %v", err)
	}
}

func TestFailControllersValidation(t *testing.T) {
	n := network(t)
	if err := n.FailControllers(42); !errors.Is(err, ErrBadController) {
		t.Fatalf("error = %v", err)
	}
}

func TestControlDelay(t *testing.T) {
	n := network(t)
	d, err := n.ControlDelayMs(0, n.Dep.Controllers[0].Site)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("co-located delay = %v, want 0", d)
	}
	if _, err := n.ControlDelayMs(9, 0); !errors.Is(err, ErrBadController) {
		t.Fatalf("error = %v", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	n := network(t)
	for i := 0; i < 5; i++ {
		if _, err := n.Inject(flow.ID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n.Stats.PacketsInjected != 5 || n.Stats.PacketsDelivered != 5 {
		t.Fatalf("stats = %+v", n.Stats)
	}
}

func TestApplyFlowLevelRecoveryPG(t *testing.T) {
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.FailControllers(3, 4); err != nil {
		t.Fatal(err)
	}
	inst, err := scenario.Build(dep, flows, []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.PG(inst.Problem)
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := n.ApplyFlowLevelRecovery(inst, sol)
	if err != nil {
		t.Fatal(err)
	}
	if msgs == 0 {
		t.Fatal("no middle-layer messages")
	}
	// Capacity respected.
	for _, c := range n.Controllers {
		if c.Load > c.Capacity {
			t.Fatalf("controller %d over capacity", c.Index)
		}
	}
	// Behavioural parity: recovered flows are reroutable somewhere.
	pro := sol.FlowProgrammability(inst.Problem)
	checked := 0
	for li, lid := range inst.FlowIDs {
		if pro[li] == 0 {
			continue
		}
		if !n.Programmable(lid) {
			t.Fatalf("flow %d recovered by PG (pro=%d) but not reroutable", lid, pro[li])
		}
		checked++
		if checked >= 40 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
	// A switch-level pass must still reject flow-level solutions and vice versa.
	if _, err := n.ApplyRecovery(inst, sol); err == nil {
		t.Fatal("ApplyRecovery accepted a flow-level solution")
	}
	pmSol, err := core.PM(inst.Problem)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.ApplyFlowLevelRecovery(inst, pmSol); !errors.Is(err, ErrNotFlowLevel) {
		t.Fatalf("error = %v, want ErrNotFlowLevel", err)
	}
}

func TestMiddleLayerRerouteWorks(t *testing.T) {
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.FailControllers(3); err != nil {
		t.Fatal(err)
	}
	inst, err := scenario.Build(dep, flows, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.PG(inst.Problem)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.ApplyFlowLevelRecovery(inst, sol); err != nil {
		t.Fatal(err)
	}
	// Find a middle-managed (flow, switch) with an alternative and reroute.
	for k, on := range sol.Active {
		if !on {
			continue
		}
		pr := inst.Problem.Pairs[k]
		swID := inst.Switches[pr.Switch]
		lid := inst.FlowIDs[pr.Flow]
		if !n.ProgrammableAt(lid, swID) {
			continue
		}
		entry, _ := n.Switches[swID].Entry(lid)
		f := &flows.Flows[lid]
		for _, v := range dep.Graph.Neighbors(swID) {
			if v == entry.NextHop || !n.reaches(v, f.Dst, swID) {
				continue
			}
			if err := n.Reroute(lid, swID, v); err != nil {
				t.Fatalf("middle-layer reroute: %v", err)
			}
			e, _ := n.Switches[swID].Entry(lid)
			if e.NextHop != v {
				t.Fatalf("entry = %+v, want next hop %d", e, v)
			}
			return
		}
	}
	t.Fatal("no middle-managed reroutable pair found")
}
