package sdnsim

import (
	"sync"
	"testing"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

func lifecycleFixture(t *testing.T) (*topo.Deployment, *flow.Set, *Network) {
	t.Helper()
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	return dep, flows, n
}

func TestStopStartControllerRoundTrip(t *testing.T) {
	dep, _, n := lifecycleFixture(t)
	var events []int
	n.OnControllerChange = func(j int, alive bool) {
		if alive {
			events = append(events, j)
		} else {
			events = append(events, -j-1)
		}
	}

	if err := n.StopController(3); err != nil {
		t.Fatal(err)
	}
	if n.ControllerAlive(3) {
		t.Fatal("controller 3 alive after StopController")
	}
	for _, sw := range dep.Controllers[3].Domain {
		if n.Switches[sw].Managed() {
			t.Fatalf("switch %d still managed after its controller stopped", sw)
		}
	}
	// Idempotent: a second stop is a no-op and fires no hook.
	if err := n.StopController(3); err != nil {
		t.Fatal(err)
	}

	if err := n.StartController(3); err != nil {
		t.Fatal(err)
	}
	if !n.ControllerAlive(3) {
		t.Fatal("controller 3 dead after StartController")
	}
	for _, sw := range dep.Controllers[3].Domain {
		if n.Switches[sw].Controller != 3 {
			t.Fatalf("switch %d not re-homed to controller 3", sw)
		}
	}
	// Starting an alive controller is an error.
	if err := n.StartController(3); err == nil {
		t.Fatal("StartController on an alive controller succeeded")
	}

	want := []int{-4, 3}
	if len(events) != len(want) {
		t.Fatalf("hook fired %d times, want %d (%v)", len(events), len(want), events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("hook events = %v, want %v", events, want)
		}
	}
}

func TestStopControllerUnmanagesRemappedSwitches(t *testing.T) {
	dep, flows, n := lifecycleFixture(t)
	if err := n.StopController(3); err != nil {
		t.Fatal(err)
	}
	inst, err := scenario.Build(dep, flows, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.PM(inst.Problem)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AdoptMapping(inst, sol); err != nil {
		t.Fatal(err)
	}
	// Find a backup controller that adopted some of controller 3's switches,
	// stop it, and check those switches become unmanaged again.
	backup := -1
	for i, jj := range sol.SwitchController {
		if jj >= 0 {
			backup = inst.Active[jj]
			if n.Switches[inst.Switches[i]].Controller != backup {
				t.Fatalf("switch %d not adopted by controller %d", inst.Switches[i], backup)
			}
			break
		}
	}
	if backup < 0 {
		t.Fatal("PM mapped no switches")
	}
	if err := n.StopController(backup); err != nil {
		t.Fatal(err)
	}
	for i, jj := range sol.SwitchController {
		if jj >= 0 && inst.Active[jj] == backup {
			if n.Switches[inst.Switches[i]].Managed() {
				t.Fatalf("remapped switch %d still managed after backup %d died", inst.Switches[i], backup)
			}
		}
	}
}

func TestAdoptMappingRejectsDeadController(t *testing.T) {
	dep, flows, n := lifecycleFixture(t)
	if err := n.StopController(3); err != nil {
		t.Fatal(err)
	}
	inst, err := scenario.Build(dep, flows, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.PM(inst.Problem)
	if err != nil {
		t.Fatal(err)
	}
	// Kill an active controller the solution relies on.
	victim := -1
	for _, jj := range sol.SwitchController {
		if jj >= 0 {
			victim = inst.Active[jj]
			break
		}
	}
	if err := n.StopController(victim); err != nil {
		t.Fatal(err)
	}
	if err := n.AdoptMapping(inst, sol); err == nil {
		t.Fatal("AdoptMapping accepted a mapping onto a dead controller")
	}
}

func TestLifecycleSurfaceIsRaceFree(t *testing.T) {
	dep, flows, n := lifecycleFixture(t)
	inst, err := scenario.Build(dep, flows, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.PM(inst.Problem)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = n.StopController(3)
			_ = n.StartController(3)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = n.AdoptMapping(inst, sol) // may fail while 3 flaps; must not race
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = n.MappingSnapshot()
			_ = n.ControllerAlive(3)
		}
	}()
	wg.Wait()
	// Settle deterministically: an AdoptMapping may have landed after the
	// last revival and remapped domain switches to backups, so flap the
	// controller once more — StartController must re-home its domain.
	if err := n.StopController(3); err != nil {
		t.Fatal(err)
	}
	if err := n.StartController(3); err != nil {
		t.Fatal(err)
	}
	for _, sw := range dep.Controllers[3].Domain {
		if n.Switches[sw].Controller != 3 {
			t.Fatalf("switch %d not re-homed after the dust settled", sw)
		}
	}
}

func TestRestoreIdealReinstallsDemotedEntries(t *testing.T) {
	dep, flows, n := lifecycleFixture(t)
	// Pick a switch, serve its agent, and remove a couple of its entries to
	// simulate a recovery that demoted flows to legacy mode there.
	swID := dep.Controllers[3].Domain[0]
	sw := n.Switches[swID]
	agent, err := ServeSwitch(sw, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()

	var onPath []flow.ID
	for l := range flows.Flows {
		f := &flows.Flows[l]
		for h := 0; h+1 < len(f.Path); h++ {
			if f.Path[h] == swID {
				onPath = append(onPath, f.ID)
				break
			}
		}
	}
	if len(onPath) < 2 {
		t.Fatalf("switch %d has only %d on-path flows", swID, len(onPath))
	}
	before := sw.NumEntries()
	sw.RemoveEntry(onPath[0])
	sw.RemoveEntry(onPath[1])
	if sw.NumEntries() != before-2 {
		t.Fatal("demotion setup failed")
	}

	addrs := map[topo.NodeID]string{swID: agent.Addr()}
	rep, err := RestoreIdeal(addrs, flows, []topo.NodeID{swID}, PushOptions{Seed: 1, GenerationID: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed) != 0 {
		t.Fatalf("restore failed on %v", rep.Failed)
	}
	if rep.FlowModsAcked != len(onPath) {
		t.Fatalf("acked %d flow-mods, want %d", rep.FlowModsAcked, len(onPath))
	}
	if got := agent.FlowModsApplied(); got != len(onPath) {
		t.Fatalf("agent applied %d mods, want %d", got, len(onPath))
	}
	for _, lid := range onPath {
		if _, ok := agent.Entry(lid); !ok {
			t.Fatalf("flow %d entry missing after restore", lid)
		}
	}
}

func TestRestoreIdealReportsUnreachableSwitch(t *testing.T) {
	dep, flows, _ := lifecycleFixture(t)
	swID := dep.Controllers[3].Domain[0]
	// No agent registered: the switch is permanently unreachable.
	rep, err := RestoreIdeal(map[topo.NodeID]string{}, flows, []topo.NodeID{swID}, PushOptions{
		Seed: 1, MaxAttempts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed) != 1 || rep.Failed[0] != swID {
		t.Fatalf("Failed = %v, want [%d]", rep.Failed, swID)
	}
}
