package sdnsim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/openflow"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

// Agent exposes one simulated switch as a network service speaking the
// openflow wire protocol: a recovery controller can dial it, take the
// master role, and install or remove flow entries over real TCP. It is the
// networked counterpart of Network.ApplyRecovery, used to exercise the full
// control channel end to end.
type Agent struct {
	listener *openflow.Listener

	mu       sync.Mutex
	sw       *Switch
	role     openflow.ControllerRole
	gen      uint64
	genSet   bool
	flowMods int

	wg   sync.WaitGroup
	done chan struct{}
}

// ServeSwitch starts an agent for sw on addr (e.g. "127.0.0.1:0"). The
// agent serves controller channels until Close.
func ServeSwitch(sw *Switch, addr string) (*Agent, error) {
	l, err := openflow.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("sdnsim: agent for switch %d: %w", sw.ID, err)
	}
	a := &Agent{
		listener: l,
		sw:       sw,
		role:     openflow.RoleEqual,
		done:     make(chan struct{}),
	}
	a.wg.Add(1)
	go a.acceptLoop()
	return a, nil
}

// Addr returns the agent's listen address.
func (a *Agent) Addr() string { return a.listener.Addr() }

// Role returns the currently negotiated controller role.
func (a *Agent) Role() openflow.ControllerRole {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.role
}

// GenerationID returns the highest Master/Slave generation ID accepted so
// far; ok is false while no such role request has been accepted.
func (a *Agent) GenerationID() (gen uint64, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gen, a.genSet
}

// FlowModsApplied returns the number of flow-mods the agent has applied.
func (a *Agent) FlowModsApplied() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.flowMods
}

// Entry returns the switch's highest-priority entry for a flow, safely.
func (a *Agent) Entry(id flow.ID) (FlowEntry, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sw.Entry(id)
}

// Close stops the agent and waits for its connections to drain.
func (a *Agent) Close() error {
	close(a.done)
	err := a.listener.Close()
	a.wg.Wait()
	return err
}

func (a *Agent) acceptLoop() {
	defer a.wg.Done()
	for {
		conn, err := a.listener.Accept()
		if err != nil {
			select {
			case <-a.done:
				return
			default:
				// Transient accept/handshake failure; keep serving.
				continue
			}
		}
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.serve(conn)
		}()
	}
}

// serve handles one controller channel until it closes.
func (a *Agent) serve(conn *openflow.Conn) {
	defer func() { _ = conn.Close() }()
	for {
		msg, h, err := conn.Recv()
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case openflow.FeaturesRequest:
			err = conn.SendXID(openflow.FeaturesReply{
				DatapathID: uint64(a.sw.ID),
				NumTables:  2,
				Hybrid:     a.sw.Pipeline == PipelineHybrid,
			}, h.XID)
		case openflow.RoleRequest:
			err = a.handleRole(conn, m, h)
		case openflow.FlowMod:
			a.mu.Lock()
			switch m.Command {
			case openflow.FlowAdd:
				a.sw.InstallEntry(FlowEntry{
					FlowID:   flow.ID(m.Match.FlowID),
					Priority: int(m.Priority),
					NextHop:  topo.NodeID(m.NextHop),
				})
			case openflow.FlowDelete:
				a.sw.RemoveEntry(flow.ID(m.Match.FlowID))
			case openflow.FlowDeleteAll:
				a.sw.FlushEntries()
			}
			a.flowMods++
			a.mu.Unlock()
		case openflow.BarrierRequest:
			err = conn.SendXID(openflow.BarrierReply{}, h.XID)
		case openflow.Echo:
			if !m.Reply {
				err = conn.SendXID(openflow.Echo{Reply: true, Data: m.Data}, h.XID)
			}
		}
		if err != nil {
			return
		}
	}
}

// handleRole enforces the OpenFlow 1.3 generation-ID semantics: Master and
// Slave requests carry a monotonically increasing (circularly compared)
// generation ID, and a request older than the highest one seen is refused
// with a role-stale error carrying the current generation — the defense
// against a delayed mastership claim from a stale controller re-taking a
// switch after a newer recovery already claimed it.
func (a *Agent) handleRole(conn *openflow.Conn, m openflow.RoleRequest, h openflow.Header) error {
	a.mu.Lock()
	stale := false
	if m.Role == openflow.RoleMaster || m.Role == openflow.RoleSlave {
		if a.genSet && int64(m.GenerationID-a.gen) < 0 {
			stale = true
		} else {
			a.gen, a.genSet = m.GenerationID, true
		}
	}
	cur := a.gen
	if !stale {
		a.role = m.Role
	}
	a.mu.Unlock()
	if stale {
		var data [8]byte
		binary.BigEndian.PutUint64(data[:], cur)
		return conn.SendXID(openflow.ErrorMsg{Code: openflow.ErrCodeRoleStale, Data: data[:]}, h.XID)
	}
	return conn.SendXID(openflow.RoleReply{Role: m.Role, GenerationID: m.GenerationID}, h.XID)
}

// ErrAgentMissing reports a recovery push that has no agent for a switch it
// must reconfigure.
var ErrAgentMissing = errors.New("sdnsim: no agent for switch")

// AgentAddrs extracts the dialable address registry of an agent set, the
// form the resilient push driver consumes.
func AgentAddrs(agents map[topo.NodeID]*Agent) map[topo.NodeID]string {
	addrs := make(map[topo.NodeID]string, len(agents))
	for id, a := range agents {
		addrs[id] = a.Addr()
	}
	return addrs
}

// PushRecovery delivers a switch-mapping recovery over the wire: for every
// offline switch with an agent, it dials the agent, claims mastership, sends
// FlowDelete for pairs left in legacy mode and FlowAdd for SDN-mode pairs
// (re-asserting the flow's current next hop), and synchronizes with a
// barrier. Replies are matched by XID, so interleaved Echo traffic is
// tolerated, and every dial and I/O operation is bounded by the default
// timeouts. It returns the number of flow-mods acknowledged.
//
// PushRecovery is the strict, fail-fast driver: the first switch that cannot
// be reconfigured aborts the push. PushRecoveryResilient is the
// partial-failure-tolerant driver.
func PushRecovery(
	agents map[topo.NodeID]*Agent,
	flows *flow.Set,
	inst *scenario.Instance,
	sol *core.Solution,
) (int, error) {
	plan, err := buildPushPlan(flows, inst, sol)
	if err != nil {
		return 0, err
	}
	sent := 0
	for _, sp := range plan {
		agent, ok := agents[sp.sw]
		if !ok {
			return sent, fmt.Errorf("%w: %d", ErrAgentMissing, sp.sw)
		}
		acked, _, err := pushOnce(defaultDial, agent.Addr(), 1, sp.mods,
			openflow.DefaultDialTimeout, openflow.DefaultDialTimeout)
		sent += acked
		if err != nil {
			return sent, err
		}
	}
	return sent, nil
}
