package sdnsim

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/openflow"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

// Agent exposes one simulated switch as a network service speaking the
// openflow wire protocol: a recovery controller can dial it, take the
// master role, and install or remove flow entries over real TCP. It is the
// networked counterpart of Network.ApplyRecovery, used to exercise the full
// control channel end to end.
type Agent struct {
	listener *openflow.Listener

	mu       sync.Mutex
	sw       *Switch
	role     openflow.ControllerRole
	flowMods int

	wg   sync.WaitGroup
	done chan struct{}
}

// ServeSwitch starts an agent for sw on addr (e.g. "127.0.0.1:0"). The
// agent serves controller channels until Close.
func ServeSwitch(sw *Switch, addr string) (*Agent, error) {
	l, err := openflow.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("sdnsim: agent for switch %d: %w", sw.ID, err)
	}
	a := &Agent{
		listener: l,
		sw:       sw,
		role:     openflow.RoleEqual,
		done:     make(chan struct{}),
	}
	a.wg.Add(1)
	go a.acceptLoop()
	return a, nil
}

// Addr returns the agent's listen address.
func (a *Agent) Addr() string { return a.listener.Addr() }

// Role returns the currently negotiated controller role.
func (a *Agent) Role() openflow.ControllerRole {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.role
}

// FlowModsApplied returns the number of flow-mods the agent has applied.
func (a *Agent) FlowModsApplied() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.flowMods
}

// Entry returns the switch's highest-priority entry for a flow, safely.
func (a *Agent) Entry(id flow.ID) (FlowEntry, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sw.Entry(id)
}

// Close stops the agent and waits for its connections to drain.
func (a *Agent) Close() error {
	close(a.done)
	err := a.listener.Close()
	a.wg.Wait()
	return err
}

func (a *Agent) acceptLoop() {
	defer a.wg.Done()
	for {
		conn, err := a.listener.Accept()
		if err != nil {
			select {
			case <-a.done:
				return
			default:
				// Transient accept/handshake failure; keep serving.
				continue
			}
		}
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.serve(conn)
		}()
	}
}

// serve handles one controller channel until it closes.
func (a *Agent) serve(conn *openflow.Conn) {
	defer func() { _ = conn.Close() }()
	for {
		msg, h, err := conn.Recv()
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case openflow.FeaturesRequest:
			err = conn.SendXID(openflow.FeaturesReply{
				DatapathID: uint64(a.sw.ID),
				NumTables:  2,
				Hybrid:     a.sw.Pipeline == PipelineHybrid,
			}, h.XID)
		case openflow.RoleRequest:
			a.mu.Lock()
			a.role = m.Role
			a.mu.Unlock()
			err = conn.SendXID(openflow.RoleReply{Role: m.Role, GenerationID: m.GenerationID}, h.XID)
		case openflow.FlowMod:
			a.mu.Lock()
			switch m.Command {
			case openflow.FlowAdd:
				a.sw.InstallEntry(FlowEntry{
					FlowID:   flow.ID(m.Match.FlowID),
					Priority: int(m.Priority),
					NextHop:  topo.NodeID(m.NextHop),
				})
			case openflow.FlowDelete:
				a.sw.RemoveEntry(flow.ID(m.Match.FlowID))
			case openflow.FlowDeleteAll:
				a.sw.FlushEntries()
			}
			a.flowMods++
			a.mu.Unlock()
		case openflow.BarrierRequest:
			err = conn.SendXID(openflow.BarrierReply{}, h.XID)
		case openflow.Echo:
			if !m.Reply {
				err = conn.SendXID(openflow.Echo{Reply: true, Data: m.Data}, h.XID)
			}
		}
		if err != nil {
			return
		}
	}
}

// ErrAgentMissing reports a recovery push that has no agent for a switch it
// must reconfigure.
var ErrAgentMissing = errors.New("sdnsim: no agent for switch")

// PushRecovery delivers a switch-mapping recovery over the wire: for every
// offline switch with an agent, it dials the agent, claims mastership, sends
// FlowDelete for pairs left in legacy mode and FlowAdd for SDN-mode pairs
// (re-asserting the flow's current next hop), and synchronizes with a
// barrier. It returns the number of flow-mods sent.
func PushRecovery(
	agents map[topo.NodeID]*Agent,
	flows *flow.Set,
	inst *scenario.Instance,
	sol *core.Solution,
) (int, error) {
	if sol.PairController != nil {
		return 0, errors.New("sdnsim: flow-level solutions need a middle layer, not a switch mapping")
	}
	p := inst.Problem
	// Mode per (switch, flow).
	type key struct {
		sw topo.NodeID
		fl flow.ID
	}
	sdn := make(map[key]bool, len(p.Pairs))
	for k, pr := range p.Pairs {
		sdn[key{inst.Switches[pr.Switch], inst.FlowIDs[pr.Flow]}] = sol.Active[k]
	}
	sent := 0
	for i, swID := range inst.Switches {
		if sol.SwitchController[i] < 0 {
			continue // whole switch stays legacy; nobody can talk to it
		}
		agent, ok := agents[swID]
		if !ok {
			return sent, fmt.Errorf("%w: %d", ErrAgentMissing, swID)
		}
		conn, err := openflow.Dial(agent.Addr())
		if err != nil {
			return sent, err
		}
		if _, err := conn.Send(openflow.RoleRequest{Role: openflow.RoleMaster, GenerationID: 1}); err != nil {
			_ = conn.Close()
			return sent, err
		}
		if _, _, err := conn.Recv(); err != nil { // role reply
			_ = conn.Close()
			return sent, err
		}
		for _, k := range p.PairsAtSwitch(i) {
			pr := p.Pairs[k]
			lid := inst.FlowIDs[pr.Flow]
			f := &flows.Flows[lid]
			var msg openflow.Message
			if sdn[key{swID, lid}] {
				next := f.Dst
				for h := 0; h+1 < len(f.Path); h++ {
					if f.Path[h] == swID {
						next = f.Path[h+1]
						break
					}
				}
				msg = openflow.FlowMod{
					Command:  openflow.FlowAdd,
					Priority: 100,
					Match:    openflow.Match{FlowID: uint32(lid), Src: uint32(f.Src), Dst: uint32(f.Dst)},
					NextHop:  uint32(next),
				}
			} else {
				msg = openflow.FlowMod{
					Command: openflow.FlowDelete,
					Match:   openflow.Match{FlowID: uint32(lid), Src: uint32(f.Src), Dst: uint32(f.Dst)},
				}
			}
			if _, err := conn.Send(msg); err != nil {
				_ = conn.Close()
				return sent, err
			}
			sent++
		}
		if _, err := conn.Send(openflow.BarrierRequest{}); err != nil {
			_ = conn.Close()
			return sent, err
		}
		if _, _, err := conn.Recv(); err != nil { // barrier reply
			_ = conn.Close()
			return sent, err
		}
		if err := conn.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			return sent, err
		}
	}
	return sent, nil
}
