package sdnsim

import (
	"errors"
	"fmt"

	"pmedic/internal/flow"
	"pmedic/internal/ospf"
	"pmedic/internal/topo"
)

// Data-plane link failures. The two halves of the hybrid pipeline react
// differently: the legacy (OSPF) tables reconverge by themselves — routers
// originate fresh LSAs, flooding spreads them, SPF recomputes — while
// OpenFlow entries are static state that keeps pointing at the dead link
// until a controller reroutes the flow. This asymmetry is the resilience
// argument for the hybrid mode: legacy-routed flows self-heal, SDN-routed
// flows need their (live) controller.

// ErrNoSuchLink reports a failure request for a link not in the topology.
var ErrNoSuchLink = errors.New("sdnsim: no such link")

// failedLink canonicalizes an undirected link.
type failedLink struct{ a, b topo.NodeID }

func linkKey(a, b topo.NodeID) failedLink {
	if a > b {
		a, b = b, a
	}
	return failedLink{a, b}
}

// FailLink takes the undirected link (a, b) out of service: packets can no
// longer cross it, and the legacy plane reconverges — every router
// re-originates its LSA without the link and the updated tables are
// installed. It returns the number of LSA messages flooding consumed.
func (n *Network) FailLink(a, b topo.NodeID) (int, error) {
	if !n.Dep.Graph.HasEdge(a, b) {
		return 0, fmt.Errorf("%w: %d-%d", ErrNoSuchLink, a, b)
	}
	if n.failedLinks == nil {
		n.failedLinks = make(map[failedLink]bool)
	}
	key := linkKey(a, b)
	if n.failedLinks[key] {
		return 0, nil // already down
	}
	n.failedLinks[key] = true
	return n.reconvergeLegacy(a, b)
}

// LinkUp reports whether the undirected link (a, b) is in service.
func (n *Network) LinkUp(a, b topo.NodeID) bool {
	return n.Dep.Graph.HasEdge(a, b) && !n.failedLinks[linkKey(a, b)]
}

// reconvergeLegacy floods fresh LSAs from the failed link's endpoints over
// the surviving topology and recomputes every switch's legacy table from the
// converged database, mirroring OSPF's reaction to a link-down event.
func (n *Network) reconvergeLegacy(a, b topo.NodeID) (int, error) {
	g := n.Dep.Graph
	n.lsaSeq++
	seq := n.lsaSeq
	// Per-node databases seeded with the current converged view.
	db := ospf.NewDatabase()
	for v := 0; v < g.NumNodes(); v++ {
		db.Install(n.originateWithoutFailedLinks(topo.NodeID(v), seq))
	}
	// Flooding cost: the two endpoints advertise; count messages over the
	// surviving adjacencies. (The steady-state database above is what the
	// flooding converges to; Flood quantifies the message cost.)
	dbs := make([]*ospf.Database, g.NumNodes())
	for v := range dbs {
		dbs[v] = ospf.NewDatabase()
	}
	messages := 0
	for _, origin := range []topo.NodeID{a, b} {
		msgs, err := ospf.Flood(g, dbs, n.originateWithoutFailedLinks(origin, seq))
		if err != nil {
			return messages, fmt.Errorf("sdnsim: reconverge: %w", err)
		}
		messages += msgs
	}
	// Install the recomputed tables.
	for v := 0; v < g.NumNodes(); v++ {
		table, err := db.SPF(topo.NodeID(v))
		if err != nil {
			return messages, fmt.Errorf("sdnsim: reconverge SPF at %d: %w", v, err)
		}
		n.Switches[v].legacy = table
	}
	return messages, nil
}

// originateWithoutFailedLinks builds v's LSA over the surviving adjacencies.
func (n *Network) originateWithoutFailedLinks(v topo.NodeID, seq uint64) ospf.LSA {
	lsa := ospf.LSA{Router: v, Seq: seq}
	n.Dep.Graph.ForEachNeighbor(v, func(w topo.NodeID) {
		if n.failedLinks[linkKey(v, w)] {
			return
		}
		lsa.Links = append(lsa.Links, ospf.Link{Neighbor: w, Cost: n.delay(v, w)})
	})
	return lsa
}

// StrandedFlows returns the flows whose current forwarding gets stuck at a
// dead link: at some switch the pipeline's chosen next hop crosses a failed
// link. Legacy-routed flows never appear here after reconvergence (their
// tables healed); SDN-routed flows appear until a controller reroutes them.
func (n *Network) StrandedFlows() []flow.ID {
	var out []flow.ID
	for l := range n.Flows.Flows {
		f := &n.Flows.Flows[l]
		if n.strandedAtSomeHop(f) {
			out = append(out, f.ID)
		}
	}
	return out
}

// strandedAtSomeHop walks the flow's pipeline like Inject (without the
// event-driven clock) and reports whether it hits a failed link or a drop.
func (n *Network) strandedAtSomeHop(f *flow.Flow) bool {
	at := f.Src
	for hops := 0; hops <= maxHops; hops++ {
		nh, verdict := n.Switches[at].Forward(f.ID, f.Dst)
		switch verdict {
		case VerdictDelivered:
			return false
		case VerdictFlowTable, VerdictLegacy:
			if !n.LinkUp(at, nh) {
				return true
			}
			at = nh
		default:
			return true
		}
	}
	return true
}

// HealStranded reroutes every stranded flow whose stuck switch is managed by
// a live controller (directly or via the middle layer): the stale OpenFlow
// entry is replaced with the healed legacy next hop, modelling the
// controller reacting to a port-down notification. It returns how many flows
// were healed and how many remain stranded — the latter are exactly the
// flows stuck at offline (unmanaged) switches, which is what
// programmability recovery exists to prevent.
func (n *Network) HealStranded() (healed, stillStranded int) {
	before := n.StrandedFlows()
	for _, id := range before {
		f := &n.Flows.Flows[id]
		at := f.Src
		for hops := 0; hops <= maxHops; hops++ {
			nh, verdict := n.Switches[at].Forward(f.ID, f.Dst)
			if verdict == VerdictDelivered {
				break
			}
			if verdict != VerdictFlowTable && verdict != VerdictLegacy {
				break
			}
			if n.LinkUp(at, nh) {
				at = nh
				continue
			}
			// Stuck here. Only an OpenFlow entry can be stale (legacy
			// tables reconverged); replace it if the flow is controllable.
			sw := n.Switches[at]
			controllable := (sw.Managed() && n.Controllers[sw.Controller].Alive) ||
				n.middleManaged(f.ID, at)
			legacyNH := topo.NodeID(-1)
			if sw.legacy != nil {
				legacyNH = sw.legacy.NextHop(f.Dst)
			}
			if verdict != VerdictFlowTable || !controllable || legacyNH < 0 || !n.LinkUp(at, legacyNH) {
				break
			}
			sw.InstallEntry(FlowEntry{FlowID: f.ID, Priority: 100, NextHop: legacyNH})
			n.Stats.FlowModsSent++
			at = legacyNH
		}
	}
	after := n.StrandedFlows()
	return len(before) - len(after), len(after)
}
