package sdnsim

import (
	"errors"
	"fmt"

	"pmedic/internal/core"
	"pmedic/internal/des"
	"pmedic/internal/flow"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

// Middle-layer (FlowVisor-style) control path: a proxy slices an offline
// switch's control so each flow can be owned by a different controller —
// the mechanism behind the ProgrammabilityGuardian baseline. The network
// models it as per-(switch, flow) ownership that bypasses the switch's
// single-master mapping, at the price of the middle layer's extra delay.

// ErrNotFlowLevel reports a solution without per-pair controller choices.
var ErrNotFlowLevel = errors.New("sdnsim: solution is not flow-level")

// middleOwner records flow-level control ownership installed through the
// middle layer.
type middleOwner struct {
	controller int // global controller index
}

// ApplyFlowLevelRecovery applies a flow-level (PairController) recovery
// through the middle layer: every active pair's flow stays SDN-routed at its
// switch and becomes reroutable there via the pair's controller; inactive
// pairs at offline switches fall to legacy. Control messages are delayed by
// the middle-layer path (switch -> layer -> controller). It returns the
// number of messages sent.
func (n *Network) ApplyFlowLevelRecovery(inst *scenario.Instance, sol *core.Solution) (int, error) {
	if sol.PairController == nil {
		return 0, ErrNotFlowLevel
	}
	p := inst.Problem
	if n.middle == nil {
		n.middle = make(map[topo.NodeID]map[flow.ID]middleOwner)
	}
	messages := 0
	// Active pairs: install ownership.
	for k, on := range sol.Active {
		pr := p.Pairs[k]
		swID := inst.Switches[pr.Switch]
		lid := inst.FlowIDs[pr.Flow]
		if !on {
			// Legacy mode for this flow at this switch.
			n.Switches[swID].RemoveEntry(lid)
			continue
		}
		jj := sol.PairController[k]
		if jj < 0 || jj >= len(inst.Active) {
			return messages, fmt.Errorf("%w: pair %d controller %d", core.ErrInfeasible, k, jj)
		}
		ctrl := n.Controllers[inst.Active[jj]]
		if !ctrl.Alive {
			return messages, fmt.Errorf("%w: controller %d", ErrControllerDown, ctrl.Index)
		}
		if ctrl.Load >= ctrl.Capacity {
			return messages, fmt.Errorf("%w: controller %d", ErrCapacity, ctrl.Index)
		}
		ctrl.Load++
		if n.middle[swID] == nil {
			n.middle[swID] = make(map[flow.ID]middleOwner)
		}
		n.middle[swID][lid] = middleOwner{controller: ctrl.Index}
		messages++
		n.Stats.FlowModsSent++
		d := inst.MiddleDelay[pr.Switch][jj]
		sw := n.Switches[swID]
		if err := n.Sim.Schedule(des.Time(d), func() {
			if e, ok := sw.Entry(lid); ok {
				sw.InstallEntry(e) // takeover flow-mod via the layer
			}
		}); err != nil {
			return messages, err
		}
	}
	// Unrecoverable flows at offline switches fall to legacy everywhere.
	offline := make(map[topo.NodeID]bool, len(inst.Switches))
	for _, sw := range inst.Switches {
		offline[sw] = true
	}
	for _, lid := range inst.Unrecoverable {
		f := &n.Flows.Flows[lid]
		for _, v := range f.Path[:len(f.Path)-1] {
			if offline[v] {
				n.Switches[v].RemoveEntry(lid)
			}
		}
	}
	n.Sim.Run(0)
	return messages, nil
}

// middleManaged reports whether (flow, switch) is controlled through the
// middle layer by a live controller.
func (n *Network) middleManaged(id flow.ID, at topo.NodeID) bool {
	owner, ok := n.middle[at][id]
	if !ok {
		return false
	}
	return n.Controllers[owner.controller].Alive
}
