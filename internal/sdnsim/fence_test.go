package sdnsim

import (
	"errors"
	"sync/atomic"
	"testing"

	"pmedic/internal/flow"
	"pmedic/internal/topo"
)

func newGen(v uint64) *atomic.Uint64 {
	g := &atomic.Uint64{}
	g.Store(v)
	return g
}

// fenceFixture serves agents for the first n switches of the ATT network.
func fenceFixture(t *testing.T, n int) (map[topo.NodeID]string, []*Agent) {
	t.Helper()
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	net, err := New(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make(map[topo.NodeID]string, n)
	agents := make([]*Agent, 0, n)
	for _, sw := range net.Switches[:n] {
		a, err := ServeSwitch(sw, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = a.Close() })
		addrs[sw.ID] = a.Addr()
		agents = append(agents, a)
	}
	return addrs, agents
}

func TestFenceAgentsStampsGeneration(t *testing.T) {
	addrs, agents := fenceFixture(t, 4)
	fenced, results, err := FenceAgents(addrs, 500, PushOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fenced != len(addrs) {
		t.Fatalf("fenced %d of %d agents", fenced, len(addrs))
	}
	for _, r := range results {
		if !r.Fenced || r.Err != nil {
			t.Fatalf("result %+v", r)
		}
	}
	for _, a := range agents {
		gen, ok := a.GenerationID()
		if !ok || gen != 500 {
			t.Fatalf("agent %d at generation %d (set=%v), want 500", a.sw.ID, gen, ok)
		}
	}
}

// TestFenceAgentsRefusesStaleAssertion: a sweep at a generation below what
// the agents already hold is the deposed leader's view — it must surface
// ErrFenced, not silently lower anything.
func TestFenceAgentsRefusesStaleAssertion(t *testing.T) {
	addrs, agents := fenceFixture(t, 3)
	if _, _, err := FenceAgents(addrs, 1000, PushOptions{}); err != nil {
		t.Fatal(err)
	}
	fenced, results, err := FenceAgents(addrs, 999, PushOptions{})
	if fenced != 0 {
		t.Fatalf("stale sweep fenced %d agents", fenced)
	}
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("err = %v, want ErrFenced", err)
	}
	for _, r := range results {
		if !errors.Is(r.Err, ErrFenced) {
			t.Fatalf("result %+v, want ErrFenced", r)
		}
	}
	for _, a := range agents {
		if gen, _ := a.GenerationID(); gen != 1000 {
			t.Fatalf("agent generation lowered to %d", gen)
		}
	}
}

// TestGenerationLimitFencesResync: a push whose stale-claim resync would
// cross its GenerationLimit must fail with ErrFenced instead of stealing
// the switch back from the newer claimant.
func TestGenerationLimitFencesResync(t *testing.T) {
	addrs, agents := fenceFixture(t, 1)
	var sw topo.NodeID
	for id := range addrs {
		sw = id
	}
	// A newer epoch owns the switch at generation 2000.
	if _, _, err := FenceAgents(addrs, 2000, PushOptions{}); err != nil {
		t.Fatal(err)
	}

	// The deposed leader pushes at gen 100 with its epoch's limit 1999:
	// resync would need gen 2001 > limit, so the attempt is fenced.
	opts := PushOptions{GenerationID: 100, GenerationLimit: 1999}.withDefaults()
	sp := switchPush{sw: sw}
	gen := newGen(opts.GenerationID)
	_, _, err := pushSwitch(addrs, sp, gen, opts)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale push err = %v, want ErrFenced", err)
	}
	if g, _ := agents[0].GenerationID(); g != 2000 {
		t.Fatalf("agent generation moved to %d, want 2000 untouched", g)
	}

	// The same push without a limit resyncs and succeeds — the pre-HA
	// within-epoch behavior is unchanged.
	opts.GenerationLimit = 0
	if _, _, err := pushSwitch(addrs, sp, newGen(100), opts); err != nil {
		t.Fatalf("unlimited push failed: %v", err)
	}
	if g, _ := agents[0].GenerationID(); g != 2001 {
		t.Fatalf("agent generation = %d after resync, want 2001", g)
	}
}
