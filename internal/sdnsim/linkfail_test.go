package sdnsim

import (
	"errors"
	"testing"

	"pmedic/internal/flow"
	"pmedic/internal/topo"
)

// pickTransitLink returns a link used mid-path by some flow, plus that flow.
func pickTransitLink(t *testing.T, n *Network) (topo.NodeID, topo.NodeID, flow.ID) {
	t.Helper()
	for l := range n.Flows.Flows {
		f := &n.Flows.Flows[l]
		if len(f.Path) >= 3 {
			return f.Path[1], f.Path[2], f.ID
		}
	}
	t.Fatal("no multi-hop flow")
	return -1, -1, -1
}

func TestFailLinkValidation(t *testing.T) {
	n := network(t)
	if _, err := n.FailLink(0, 24); !errors.Is(err, ErrNoSuchLink) {
		t.Fatalf("error = %v, want ErrNoSuchLink", err)
	}
	if !n.LinkUp(0, 1) {
		t.Fatal("healthy link reported down")
	}
}

func TestFailLinkLegacySelfHeals(t *testing.T) {
	n := network(t)
	a, b, id := pickTransitLink(t, n)
	f := &n.Flows.Flows[id]
	// Put the flow fully on legacy at every hop: remove its entries.
	for _, v := range f.Path[:len(f.Path)-1] {
		n.Switches[v].RemoveEntry(id)
	}
	msgs, err := n.FailLink(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if msgs == 0 {
		t.Fatal("reconvergence flooded no LSAs")
	}
	tr, err := n.Inject(id)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Delivered {
		t.Fatalf("legacy-routed flow did not self-heal around the dead link: %+v", tr)
	}
	for i := 1; i < len(tr.Path); i++ {
		if !n.LinkUp(tr.Path[i-1], tr.Path[i]) {
			t.Fatalf("healed path %v crosses the dead link", tr.Path)
		}
	}
}

func TestFailLinkStrandsSDNEntries(t *testing.T) {
	n := network(t)
	a, b, id := pickTransitLink(t, n)
	if _, err := n.FailLink(a, b); err != nil {
		t.Fatal(err)
	}
	stranded := n.StrandedFlows()
	if len(stranded) == 0 {
		t.Fatal("no SDN-routed flow stranded by the link failure")
	}
	found := false
	for _, sid := range stranded {
		if sid == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("flow %d uses link %d-%d but is not stranded", id, a, b)
	}
	tr, err := n.Inject(id)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Delivered {
		t.Fatal("packet crossed a dead link")
	}
}

func TestHealStrandedWithLiveControllers(t *testing.T) {
	n := network(t)
	a, b, _ := pickTransitLink(t, n)
	if _, err := n.FailLink(a, b); err != nil {
		t.Fatal(err)
	}
	before := len(n.StrandedFlows())
	healed, still := n.HealStranded()
	if healed == 0 {
		t.Fatal("nothing healed despite all controllers alive")
	}
	if still != 0 {
		t.Fatalf("%d flows still stranded with every controller alive", still)
	}
	if healed != before {
		t.Fatalf("healed %d of %d", healed, before)
	}
	// Everything forwards again.
	for _, l := range []flow.ID{0, 7, 42} {
		tr, err := n.Inject(l)
		if err != nil || !tr.Delivered {
			t.Fatalf("flow %d after heal: %v %+v", l, err, tr)
		}
	}
}

func TestHealStrandedBlockedByOfflineSwitches(t *testing.T) {
	n := network(t)
	// Fail the hub's controller first, then a link on a hub-adjacent path
	// whose stale entry sits at the (now unmanaged) hub.
	if err := n.FailControllers(3); err != nil {
		t.Fatal(err)
	}
	var link [2]topo.NodeID
	found := false
	for l := range n.Flows.Flows {
		f := &n.Flows.Flows[l]
		for h := 0; h+1 < len(f.Path); h++ {
			if f.Path[h] == 13 {
				link = [2]topo.NodeID{f.Path[h], f.Path[h+1]}
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no flow transits the hub")
	}
	if _, err := n.FailLink(link[0], link[1]); err != nil {
		t.Fatal(err)
	}
	_, still := n.HealStranded()
	if still == 0 {
		t.Fatal("expected flows stranded at the offline hub switch")
	}
}

func TestFailLinkIdempotent(t *testing.T) {
	n := network(t)
	a, b, _ := pickTransitLink(t, n)
	if _, err := n.FailLink(a, b); err != nil {
		t.Fatal(err)
	}
	msgs, err := n.FailLink(a, b)
	if err != nil || msgs != 0 {
		t.Fatalf("repeat failure: msgs=%d err=%v", msgs, err)
	}
}
