package sdnsim

import (
	"errors"
	"testing"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/openflow"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

func TestAgentHandlesBasicProtocol(t *testing.T) {
	n := network(t)
	sw := n.Switches[13]
	agent, err := ServeSwitch(sw, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()

	conn, err := openflow.Dial(agent.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()

	// Features.
	if _, err := conn.Send(openflow.FeaturesRequest{}); err != nil {
		t.Fatal(err)
	}
	msg, _, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	feat, ok := msg.(openflow.FeaturesReply)
	if !ok || feat.DatapathID != 13 || !feat.Hybrid {
		t.Fatalf("features = %#v", msg)
	}

	// Role.
	if _, err := conn.Send(openflow.RoleRequest{Role: openflow.RoleMaster, GenerationID: 9}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := conn.Recv(); err != nil {
		t.Fatal(err)
	}
	if agent.Role() != openflow.RoleMaster {
		t.Fatalf("role = %v", agent.Role())
	}

	// Echo.
	if _, err := conn.Send(openflow.Echo{Data: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	msg, _, err = conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := msg.(openflow.Echo); !ok || !e.Reply || string(e.Data) != "hi" {
		t.Fatalf("echo = %#v", msg)
	}

	// FlowMod add + barrier.
	id := flow.ID(7)
	neighbor := n.Dep.Graph.Neighbors(13)[0]
	if _, err := conn.Send(openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Priority: 200,
		Match:    openflow.Match{FlowID: uint32(id)},
		NextHop:  uint32(neighbor),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Send(openflow.BarrierRequest{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := conn.Recv(); err != nil { // barrier reply orders the flowmod
		t.Fatal(err)
	}
	e, ok := agent.Entry(id)
	if !ok || e.Priority != 200 || e.NextHop != neighbor {
		t.Fatalf("entry after wire flow-mod = %+v, %v", e, ok)
	}
	if agent.FlowModsApplied() != 1 {
		t.Fatalf("flow mods = %d", agent.FlowModsApplied())
	}
}

func TestAgentFlowDeleteAndFlush(t *testing.T) {
	n := network(t)
	sw := n.Switches[5]
	before := sw.NumEntries()
	if before == 0 {
		t.Fatal("switch 5 has no steady-state entries")
	}
	agent, err := ServeSwitch(sw, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()
	conn, err := openflow.Dial(agent.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()

	// Delete one specific flow.
	var victim flow.ID = -1
	for l := range n.Flows.Flows {
		if _, ok := sw.Entry(flow.ID(l)); ok {
			victim = flow.ID(l)
			break
		}
	}
	if _, err := conn.Send(openflow.FlowMod{Command: openflow.FlowDelete, Match: openflow.Match{FlowID: uint32(victim)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Send(openflow.BarrierRequest{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := conn.Recv(); err != nil {
		t.Fatal(err)
	}
	if _, ok := agent.Entry(victim); ok {
		t.Fatal("entry survived FlowDelete")
	}

	// Flush everything.
	if _, err := conn.Send(openflow.FlowMod{Command: openflow.FlowDeleteAll}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Send(openflow.BarrierRequest{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := conn.Recv(); err != nil {
		t.Fatal(err)
	}
	agent.mu.Lock()
	left := sw.NumEntries()
	agent.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d entries survived FlowDeleteAll", left)
	}
}

func TestPushRecoveryOverTheWire(t *testing.T) {
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.FailControllers(3); err != nil {
		t.Fatal(err)
	}
	inst, err := scenario.Build(dep, flows, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.PM(inst.Problem)
	if err != nil {
		t.Fatal(err)
	}

	agents := make(map[topo.NodeID]*Agent, len(inst.Switches))
	for _, swID := range inst.Switches {
		a, err := ServeSwitch(n.Switches[swID], "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		agents[swID] = a
	}
	defer func() {
		for _, a := range agents {
			_ = a.Close()
		}
	}()

	sent, err := PushRecovery(agents, flows, inst, sol)
	if err != nil {
		t.Fatal(err)
	}
	if sent == 0 {
		t.Fatal("nothing sent")
	}
	// Wire effect must match the analytic solution: SDN pairs have entries,
	// legacy pairs do not.
	for k, pr := range inst.Problem.Pairs {
		swID := inst.Switches[pr.Switch]
		if sol.SwitchController[pr.Switch] < 0 {
			continue
		}
		lid := inst.FlowIDs[pr.Flow]
		_, has := agents[swID].Entry(lid)
		if has != sol.Active[k] {
			t.Fatalf("switch %d flow %d: entry=%v, want %v", swID, lid, has, sol.Active[k])
		}
	}
	// All touched agents negotiated mastership.
	for i, swID := range inst.Switches {
		if sol.SwitchController[i] < 0 {
			continue
		}
		if agents[swID].Role() != openflow.RoleMaster {
			t.Fatalf("agent %d role = %v", swID, agents[swID].Role())
		}
	}
}

func TestPushRecoveryMissingAgent(t *testing.T) {
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := scenario.Build(dep, flows, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.PM(inst.Problem)
	if err != nil {
		t.Fatal(err)
	}
	_, err = PushRecovery(map[topo.NodeID]*Agent{}, flows, inst, sol)
	if !errors.Is(err, ErrAgentMissing) {
		t.Fatalf("error = %v, want ErrAgentMissing", err)
	}
}
