package sdnsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/openflow"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

// DialFunc opens a control channel to a switch agent. The default dials
// plain TCP; tests substitute a chaos-wrapped dialer to inject control-plane
// faults under the driver.
type DialFunc func(addr string, timeout time.Duration) (*openflow.Conn, error)

func defaultDial(addr string, timeout time.Duration) (*openflow.Conn, error) {
	return openflow.DialTimeout(addr, timeout)
}

// PushOptions tunes the resilient recovery driver. The zero value selects
// the defaults noted per field.
type PushOptions struct {
	// MaxAttempts bounds the pushes tried per switch per round (default 4).
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the capped exponential backoff
	// between attempts (defaults 25ms and 400ms); a seeded jitter of up to
	// one BaseBackoff is added so concurrent retries decorrelate.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// DialTimeout bounds connect + handshake per attempt (default 2s);
	// IOTimeout bounds every read and write on an open channel (default 2s).
	DialTimeout time.Duration
	IOTimeout   time.Duration
	// Concurrency caps the switches pushed in parallel (default 8).
	Concurrency int
	// Seed drives the retry jitter deterministically (per-switch streams are
	// derived from it).
	Seed int64
	// GenerationID is the first Master generation claimed (default 1). The
	// driver raises it automatically when an agent reports a stale claim.
	GenerationID uint64
	// GenerationLimit, when nonzero, caps that stale-claim
	// resynchronization: a resync that would have to claim past the limit
	// fails with ErrFenced instead of retrying. The medic sets it to the
	// top of the epoch's generation stride, so a push signed by epoch E can
	// never steal a switch back from a claim made by epoch E+1 — the
	// fencing that makes leader failover safe.
	GenerationLimit uint64
	// Dial replaces the transport (default: plain TCP via openflow).
	Dial DialFunc
	// DisableReplan skips re-planning through core.PM after demotions; the
	// demoted switches' pairs are simply deactivated instead.
	DisableReplan bool
}

func (o PushOptions) withDefaults() PushOptions {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 25 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 400 * time.Millisecond
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = 2 * time.Second
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.GenerationID == 0 {
		o.GenerationID = 1
	}
	if o.Dial == nil {
		o.Dial = defaultDial
	}
	return o
}

// PushStatus classifies a switch's outcome in a resilient push.
type PushStatus int

// Push outcomes.
const (
	// PushLegacyPlanned: the plan left the whole switch in legacy mode;
	// nothing was pushed.
	PushLegacyPlanned PushStatus = iota + 1
	// PushApplied: the switch acknowledged its full configuration.
	PushApplied
	// PushDemoted: the switch stayed unreachable through every retry and was
	// demoted to legacy mode; its pairs were re-planned away.
	PushDemoted
)

// String renders the status.
func (s PushStatus) String() string {
	switch s {
	case PushLegacyPlanned:
		return "legacy-planned"
	case PushApplied:
		return "applied"
	case PushDemoted:
		return "demoted"
	default:
		return fmt.Sprintf("sdnsim.PushStatus(%d)", int(s))
	}
}

// SwitchOutcome reports how one offline switch fared under the resilient
// push.
type SwitchOutcome struct {
	// Switch is the switch's node ID; Index its position in the instance's
	// switch order.
	Switch topo.NodeID
	Index  int
	Status PushStatus
	// Attempts counts connection attempts across all rounds.
	Attempts int
	// FlowModsAcked counts flow-mods confirmed behind a barrier.
	FlowModsAcked int
	// Dirty marks a demoted switch that may hold partial state: some
	// flow-mods were sent on a connection that died before its barrier
	// confirmed them.
	Dirty bool
	// Err is the last error of a demoted switch.
	Err error
}

// RecoveryReport is the structured result of a resilient push: what was
// planned, what the network actually accepted, and how hard it was to get
// there.
type RecoveryReport struct {
	// Outcomes has one entry per offline switch, in instance switch order.
	Outcomes []SwitchOutcome
	// FlowModsAcked totals the acknowledged flow-mods.
	FlowModsAcked int
	// Demoted lists the switches demoted to legacy, ascending.
	Demoted []topo.NodeID
	// Replanned reports whether a residual re-plan (through core.PM) ran.
	Replanned bool
	// Rounds counts push rounds (1 = no demotions, each re-plan adds one).
	Rounds int
	// Planned evaluates the input solution; Achieved evaluates Final, the
	// solution actually in force after demotions and re-planning. Comparing
	// the two quantifies the degradation the control-plane faults cost.
	Planned  *core.Report
	Achieved *core.Report
	Final    *core.Solution
}

// switchPush is one switch's desired configuration compiled to wire
// messages: cfg records, per offline flow at the switch, whether a flow
// entry must exist (SDN mode) or not (legacy mode), and mods realizes cfg.
type switchPush struct {
	index int
	sw    topo.NodeID
	cfg   map[flow.ID]bool
	mods  []openflow.FlowMod
}

// buildPushPlan compiles a switch-mapping solution into per-switch pushes,
// in instance switch order. Unmapped switches are absent: nobody manages
// them, so nothing is pushed.
func buildPushPlan(flows *flow.Set, inst *scenario.Instance, sol *core.Solution) ([]switchPush, error) {
	if sol.PairController != nil {
		return nil, errors.New("sdnsim: flow-level solutions need a middle layer, not a switch mapping")
	}
	p := inst.Problem
	var plan []switchPush
	for i, swID := range inst.Switches {
		if sol.SwitchController[i] < 0 {
			continue
		}
		sp := switchPush{index: i, sw: swID, cfg: make(map[flow.ID]bool)}
		for _, k := range p.PairsAtSwitch(i) {
			pr := p.Pairs[k]
			lid := inst.FlowIDs[pr.Flow]
			f := &flows.Flows[lid]
			if sol.Active[k] {
				sp.cfg[lid] = true
				sp.mods = append(sp.mods, addMod(f, swID))
			} else {
				sp.cfg[lid] = false
				sp.mods = append(sp.mods, deleteMod(f))
			}
		}
		plan = append(plan, sp)
	}
	return plan, nil
}

// addMod asserts a flow's SDN entry at sw: forward to the flow's current
// next hop after sw (the destination when sw is last before it).
func addMod(f *flow.Flow, sw topo.NodeID) openflow.FlowMod {
	next := f.Dst
	for h := 0; h+1 < len(f.Path); h++ {
		if f.Path[h] == sw {
			next = f.Path[h+1]
			break
		}
	}
	return openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Priority: 100,
		Match:    openflow.Match{FlowID: uint32(f.ID), Src: uint32(f.Src), Dst: uint32(f.Dst)},
		NextHop:  uint32(next),
	}
}

// deleteMod removes a flow's entry at a switch left in legacy mode for it.
func deleteMod(f *flow.Flow) openflow.FlowMod {
	return openflow.FlowMod{
		Command: openflow.FlowDelete,
		Match:   openflow.Match{FlowID: uint32(f.ID), Src: uint32(f.Src), Dst: uint32(f.Dst)},
	}
}

// pushOnce performs one complete push attempt against addr: dial, liveness
// probe, mastership under gen, all mods, then a barrier. acked is len(mods)
// on full success; sentAny reports whether any flow-mod left on a connection
// whose barrier never confirmed it (the partial-state marker).
func pushOnce(dial DialFunc, addr string, gen uint64, mods []openflow.FlowMod, dialTO, ioTO time.Duration) (acked int, sentAny bool, err error) {
	conn, err := dial(addr, dialTO)
	if err != nil {
		return 0, false, err
	}
	defer func() { _ = conn.Close() }()
	conn.SetIOTimeout(ioTO)
	if err := conn.Ping([]byte("pmedic")); err != nil {
		return 0, false, err
	}
	msg, _, err := conn.Request(openflow.RoleRequest{Role: openflow.RoleMaster, GenerationID: gen})
	if err != nil {
		return 0, false, err
	}
	if _, ok := msg.(openflow.RoleReply); !ok {
		return 0, false, fmt.Errorf("sdnsim: push %s: unexpected %v to role request", addr, msg.MsgType())
	}
	for _, m := range mods {
		if _, err := conn.Send(m); err != nil {
			return 0, true, err
		}
		sentAny = true
	}
	msg, _, err = conn.Request(openflow.BarrierRequest{})
	if err != nil {
		return 0, sentAny, err
	}
	if _, ok := msg.(openflow.BarrierReply); !ok {
		return 0, sentAny, fmt.Errorf("sdnsim: push %s: unexpected %v to barrier", addr, msg.MsgType())
	}
	return len(mods), false, nil
}

// cfgEqual compares two desired configurations, treating only identical
// key sets with identical modes as equal.
func cfgEqual(a, b map[flow.ID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || v != w {
			return false
		}
	}
	return true
}

// cloneSolution deep-copies the fields the driver mutates.
func cloneSolution(s *core.Solution) *core.Solution {
	c := *s
	c.SwitchController = append([]int(nil), s.SwitchController...)
	c.Active = append([]bool(nil), s.Active...)
	if s.PairController != nil {
		c.PairController = append([]int(nil), s.PairController...)
	}
	return &c
}

// PushRecoveryResilient delivers a switch-mapping recovery over a faulty
// control channel, degrading gracefully instead of failing atomically:
//
//   - every mapped switch is pushed concurrently (role, flow-mods, barrier,
//     all XID-matched), with transient faults retried under capped
//     exponential backoff plus seeded jitter;
//   - a switch that stays unreachable through every retry is demoted to
//     legacy mode, and the residual instance — the original minus the
//     demoted switches' pairs — is re-planned through core.PM so the freed
//     controller capacity can fund programmability elsewhere;
//   - re-planned deltas are pushed in further rounds (switches whose
//     acknowledged configuration already matches are skipped; switches a
//     re-plan unmapped after they were configured get their entries cleaned
//     up) until the plan and the network agree or everything reachable has
//     been tried.
//
// addrs maps each offline switch to its agent's address (see AgentAddrs); a
// mapped switch without an address is treated as permanently unreachable.
// The returned report carries per-switch outcomes and the planned vs.
// achieved evaluation; err is reserved for structural failures (a
// flow-level solution, an unevaluable instance), never for control-channel
// faults.
func PushRecoveryResilient(
	addrs map[topo.NodeID]string,
	flows *flow.Set,
	inst *scenario.Instance,
	sol *core.Solution,
	opts PushOptions,
) (*RecoveryReport, error) {
	opts = opts.withDefaults()
	if sol.PairController != nil {
		return nil, errors.New("sdnsim: flow-level solutions need a middle layer, not a switch mapping")
	}
	planned, err := inst.Evaluate(sol)
	if err != nil {
		return nil, fmt.Errorf("sdnsim: push: planned solution does not evaluate: %w", err)
	}

	rep := &RecoveryReport{Planned: planned}
	rep.Outcomes = make([]SwitchOutcome, len(inst.Switches))
	for i, swID := range inst.Switches {
		rep.Outcomes[i] = SwitchOutcome{Switch: swID, Index: i, Status: PushLegacyPlanned}
	}

	cur := cloneSolution(sol)
	gen := atomic.Uint64{}
	gen.Store(opts.GenerationID)
	demoted := make(map[topo.NodeID]bool)
	// installed[sw] is the last configuration the switch acknowledged behind
	// a barrier; nil means the switch was never successfully pushed.
	installed := make(map[topo.NodeID]map[flow.ID]bool)

	maxRounds := len(inst.Switches) + 1
	for round := 0; round < maxRounds; round++ {
		plan, err := buildPushPlan(flows, inst, cur)
		if err != nil {
			return nil, err
		}
		work := planDelta(plan, inst, demoted, installed)
		if len(work) == 0 {
			break
		}
		rep.Rounds++

		var (
			wg      sync.WaitGroup
			mu      sync.Mutex
			failed  []topo.NodeID
			slots   = make(chan struct{}, opts.Concurrency)
			updated = make(map[topo.NodeID]map[flow.ID]bool)
		)
		for _, sp := range work {
			wg.Add(1)
			slots <- struct{}{}
			go func(sp switchPush) {
				defer func() {
					<-slots
					wg.Done()
				}()
				out := &rep.Outcomes[sp.index]
				acked, dirty, err := pushSwitch(addrs, sp, &gen, opts)
				mu.Lock()
				defer mu.Unlock()
				out.Attempts += acked.attempts
				if err == nil {
					out.Status = PushApplied
					out.FlowModsAcked += acked.mods
					out.Dirty = false
					out.Err = nil
					updated[sp.sw] = sp.cfg
					return
				}
				out.Status = PushDemoted
				out.Err = err
				if dirty {
					out.Dirty = true
				}
				failed = append(failed, sp.sw)
			}(sp)
		}
		wg.Wait()
		for sw, cfg := range updated {
			installed[sw] = cfg
		}
		if len(failed) == 0 {
			break
		}
		for _, sw := range failed {
			demoted[sw] = true
		}
		cur = replan(inst, sol, cur, demoted, &rep.Replanned, opts.DisableReplan)
	}

	// Demoted switches are legacy in the achieved solution regardless of
	// what the re-plan said.
	final := cloneSolution(cur)
	for i, swID := range inst.Switches {
		if demoted[swID] {
			final.SwitchController[i] = -1
			for _, k := range inst.Problem.PairsAtSwitch(i) {
				final.Active[k] = false
			}
			rep.Demoted = append(rep.Demoted, swID)
		}
	}
	sort.Slice(rep.Demoted, func(a, b int) bool { return rep.Demoted[a] < rep.Demoted[b] })
	for i := range rep.Outcomes {
		rep.FlowModsAcked += rep.Outcomes[i].FlowModsAcked
	}
	achieved, err := inst.Evaluate(final)
	if err != nil {
		return nil, fmt.Errorf("sdnsim: push: achieved solution does not evaluate: %w", err)
	}
	rep.Final = final
	rep.Achieved = achieved
	return rep, nil
}

// planDelta selects the pushes still needed: mapped switches whose
// acknowledged configuration differs from the plan, plus cleanups for
// switches a re-plan unmapped after they were already configured. Demoted
// switches are excluded.
func planDelta(plan []switchPush, inst *scenario.Instance, demoted map[topo.NodeID]bool, installed map[topo.NodeID]map[flow.ID]bool) []switchPush {
	inPlan := make(map[topo.NodeID]bool, len(plan))
	var work []switchPush
	for _, sp := range plan {
		inPlan[sp.sw] = true
		if demoted[sp.sw] {
			continue
		}
		if have, ok := installed[sp.sw]; ok && cfgEqual(have, sp.cfg) {
			continue
		}
		work = append(work, sp)
	}
	// Cleanups: previously configured switches no longer in the plan must
	// drop the entries we installed, or stale SDN state would shadow the
	// legacy pipeline.
	for i, swID := range inst.Switches {
		if inPlan[swID] || demoted[swID] {
			continue
		}
		have := installed[swID]
		sp := switchPush{index: i, sw: swID, cfg: make(map[flow.ID]bool)}
		for lid, present := range have {
			sp.cfg[lid] = false
			if present {
				f := &inst.Flows.Flows[lid]
				sp.mods = append(sp.mods, deleteMod(f))
			}
		}
		if len(sp.mods) > 0 && !cfgEqual(have, sp.cfg) {
			work = append(work, sp)
		}
	}
	sort.Slice(work, func(a, b int) bool { return work[a].index < work[b].index })
	return work
}

// attemptResult carries a worker's bookkeeping out of the retry loop.
type attemptResult struct {
	attempts int
	mods     int
}

// pushSwitch drives one switch's retry loop: bounded attempts, capped
// exponential backoff with seeded jitter, and generation resynchronization
// on stale-role errors. dirty reports whether any attempt left flow-mods
// unconfirmed.
func pushSwitch(addrs map[topo.NodeID]string, sp switchPush, gen *atomic.Uint64, opts PushOptions) (attemptResult, bool, error) {
	res := attemptResult{}
	addr, ok := addrs[sp.sw]
	if !ok {
		return res, false, fmt.Errorf("%w: %d", ErrAgentMissing, sp.sw)
	}
	rng := rand.New(rand.NewSource(opts.Seed ^ (0x5DEECE66D * int64(sp.sw+1))))
	dirty := false
	var lastErr error
	for attempt := 1; attempt <= opts.MaxAttempts; attempt++ {
		res.attempts++
		acked, sentAny, err := pushOnce(opts.Dial, addr, gen.Load(), sp.mods, opts.DialTimeout, opts.IOTimeout)
		if sentAny {
			dirty = true
		}
		if err == nil {
			res.mods = acked
			return res, false, nil
		}
		lastErr = err
		var re *openflow.RemoteError
		if errors.As(err, &re) {
			if g, ok := re.StaleGeneration(); ok {
				// Resyncing past the limit would claim into a newer epoch's
				// generation range: this push has been fenced by a newer
				// leader (or a newer epoch of our own daemon) and must not
				// steal the switch back.
				if opts.GenerationLimit != 0 && int64(g+1-opts.GenerationLimit) > 0 {
					return res, dirty, fmt.Errorf("%w: switch %d holds generation %d, epoch limit %d",
						ErrFenced, sp.sw, g, opts.GenerationLimit)
				}
				// Lift the driver's generation past the switch's and retry
				// immediately: the claim itself was fine, only its epoch was
				// behind.
				for {
					curGen := gen.Load()
					if int64(g-curGen) < 0 || gen.CompareAndSwap(curGen, g+1) {
						break
					}
				}
				continue
			}
		}
		if attempt < opts.MaxAttempts {
			time.Sleep(backoff(opts, rng, attempt))
		}
	}
	return res, dirty, lastErr
}

// backoff returns the sleep before retry #attempt: BaseBackoff doubled per
// attempt, capped at MaxBackoff, plus up to one BaseBackoff of jitter.
func backoff(opts PushOptions, rng *rand.Rand, attempt int) time.Duration {
	d := opts.BaseBackoff << (attempt - 1)
	if d > opts.MaxBackoff || d <= 0 {
		d = opts.MaxBackoff
	}
	return d + time.Duration(rng.Int63n(int64(opts.BaseBackoff)))
}

// replan recomputes the recovery after demotions. With re-planning enabled
// it solves the residual instance through core.PM and translates the result
// back into the original problem's pair indexing; otherwise (or when the
// residual cannot be built) it strips the demoted switches from the current
// solution.
func replan(inst *scenario.Instance, orig, cur *core.Solution, demoted map[topo.NodeID]bool, replanned *bool, disabled bool) *core.Solution {
	if !disabled {
		if rp, pairMap, err := inst.Residual(demoted); err == nil {
			if rsol, err := core.PM(rp); err == nil {
				next := core.NewSolution(orig.Algorithm+"+replan", inst.Problem)
				copy(next.SwitchController, rsol.SwitchController)
				for k, on := range rsol.Active {
					if on {
						next.Active[pairMap[k]] = true
					}
				}
				*replanned = true
				return next
			}
		}
	}
	next := cloneSolution(cur)
	for i, swID := range inst.Switches {
		if demoted[swID] {
			next.SwitchController[i] = -1
			for _, k := range inst.Problem.PairsAtSwitch(i) {
				next.Active[k] = false
			}
		}
	}
	return next
}
