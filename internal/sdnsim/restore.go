package sdnsim

import (
	"sort"
	"sync"
	"sync/atomic"

	"pmedic/internal/flow"
	"pmedic/internal/topo"
)

// RestoreOutcome reports how one switch fared under a fail-back push.
type RestoreOutcome struct {
	Switch        topo.NodeID
	Status        PushStatus
	Attempts      int
	FlowModsAcked int
	Err           error
}

// RestoreReport is the structured result of a fail-back push.
type RestoreReport struct {
	// Outcomes has one entry per requested switch, in input order.
	Outcomes []RestoreOutcome
	// FlowModsAcked totals the acknowledged flow-mods.
	FlowModsAcked int
	// Failed lists switches that stayed unreachable through every retry,
	// ascending. Their tables may be missing entries a recovery removed.
	Failed []topo.NodeID
}

// RestoreIdeal pushes the steady-state (ideal) configuration back to the
// given switches: for every flow traversing a switch, a FlowAdd re-asserting
// the flow's original next hop there. It is the fail-back counterpart of
// PushRecoveryResilient — after a failed controller returns and re-takes its
// domain, the entries that recovery demoted to legacy mode must be
// reinstalled before the flows are SDN-routed (and programmable) again.
//
// Delivery reuses the resilient driver's machinery: concurrent pushes, role
// claim under opts.GenerationID, capped backoff with seeded jitter, and a
// barrier per switch. Pass a GenerationID above the one the recovery pushes
// used (the medic derives both from its epoch counter) so the fail-back
// claim supersedes, not collides with, the recovery's mastership; the driver
// still resynchronizes automatically if an agent reports a stale claim.
// Unreachable switches are reported in Failed, never as an error.
func RestoreIdeal(
	addrs map[topo.NodeID]string,
	flows *flow.Set,
	switches []topo.NodeID,
	opts PushOptions,
) (*RestoreReport, error) {
	opts = opts.withDefaults()
	rep := &RestoreReport{Outcomes: make([]RestoreOutcome, len(switches))}

	var work []switchPush
	for i, swID := range switches {
		rep.Outcomes[i] = RestoreOutcome{Switch: swID, Status: PushLegacyPlanned}
		sp := switchPush{index: i, sw: swID}
		for l := range flows.Flows {
			f := &flows.Flows[l]
			for h := 0; h+1 < len(f.Path); h++ {
				if f.Path[h] == swID {
					sp.mods = append(sp.mods, addMod(f, swID))
					break
				}
			}
		}
		if len(sp.mods) > 0 {
			work = append(work, sp)
		}
	}

	gen := atomic.Uint64{}
	gen.Store(opts.GenerationID)
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		slots = make(chan struct{}, opts.Concurrency)
	)
	for _, sp := range work {
		wg.Add(1)
		slots <- struct{}{}
		go func(sp switchPush) {
			defer func() {
				<-slots
				wg.Done()
			}()
			acked, _, err := pushSwitch(addrs, sp, &gen, opts)
			mu.Lock()
			defer mu.Unlock()
			out := &rep.Outcomes[sp.index]
			out.Attempts = acked.attempts
			if err != nil {
				out.Status = PushDemoted
				out.Err = err
				rep.Failed = append(rep.Failed, sp.sw)
				return
			}
			out.Status = PushApplied
			out.FlowModsAcked = acked.mods
		}(sp)
	}
	wg.Wait()
	sort.Slice(rep.Failed, func(a, b int) bool { return rep.Failed[a] < rep.Failed[b] })
	for i := range rep.Outcomes {
		rep.FlowModsAcked += rep.Outcomes[i].FlowModsAcked
	}
	return rep, nil
}
