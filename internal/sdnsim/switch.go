// Package sdnsim is the behavioural substrate of the reproduction: an
// event-driven SD-WAN data/control-plane simulator. Switches implement the
// three routing pipelines of the paper's Fig. 2 — pure OpenFlow, pure legacy
// (OSPF), and the hybrid high-priority-flow-table/legacy-fallthrough mode of
// high-end commercial switches — and controllers own switch domains, fail,
// and re-map. Recovery solutions computed by internal/core (or internal/opt)
// are applied to the simulated network and their effect on real packet
// forwarding and reroutability is observable.
package sdnsim

import (
	"errors"
	"fmt"
	"sort"

	"pmedic/internal/flow"
	"pmedic/internal/ospf"
	"pmedic/internal/topo"
)

// PipelineMode is a switch's packet-processing pipeline (paper Fig. 2).
type PipelineMode int

// Pipeline modes.
const (
	// PipelineSDN: flow-table only; a miss punts the packet (packet-in).
	PipelineSDN PipelineMode = iota + 1
	// PipelineLegacy: destination-based legacy (OSPF) table only.
	PipelineLegacy
	// PipelineHybrid: flow table first, miss falls through to legacy — the
	// OpenFlow/OSPF mode of Brocade MLX-8-class switches.
	PipelineHybrid
)

// String renders the mode.
func (m PipelineMode) String() string {
	switch m {
	case PipelineSDN:
		return "sdn"
	case PipelineLegacy:
		return "legacy"
	case PipelineHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("sdnsim.PipelineMode(%d)", int(m))
	}
}

// Verdict describes how a switch decided a packet's next hop.
type Verdict int

// Verdicts.
const (
	// VerdictFlowTable: matched a flow entry (the flow is SDN-routed here).
	VerdictFlowTable Verdict = iota + 1
	// VerdictLegacy: fell through to the legacy table.
	VerdictLegacy
	// VerdictDelivered: the packet reached its destination at this switch.
	VerdictDelivered
	// VerdictPuntNoMatch: SDN-only pipeline missed; packet punted.
	VerdictPuntNoMatch
	// VerdictDrop: nothing could route the packet.
	VerdictDrop
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictFlowTable:
		return "flow-table"
	case VerdictLegacy:
		return "legacy"
	case VerdictDelivered:
		return "delivered"
	case VerdictPuntNoMatch:
		return "punt-no-match"
	case VerdictDrop:
		return "drop"
	default:
		return fmt.Sprintf("sdnsim.Verdict(%d)", int(v))
	}
}

// FlowEntry is one flow-table row: exact match on flow ID, forward to
// NextHop. Higher Priority wins.
type FlowEntry struct {
	FlowID   flow.ID
	Priority int
	NextHop  topo.NodeID
}

// Switch is one forwarding element.
type Switch struct {
	ID       topo.NodeID
	Pipeline PipelineMode

	// Controller is the index of the managing controller, -1 when offline
	// (unmanaged). An offline switch keeps forwarding with its installed
	// state; it just cannot be reprogrammed.
	Controller int

	entries []FlowEntry // kept sorted by (Priority desc, FlowID asc)
	legacy  *ospf.Table
}

// Switch errors.
var (
	ErrNoEntry   = errors.New("sdnsim: no matching flow entry")
	ErrUnmanaged = errors.New("sdnsim: switch is unmanaged")
)

// NewSwitch builds a hybrid-pipeline switch with the given legacy table.
func NewSwitch(id topo.NodeID, legacy *ospf.Table) *Switch {
	return &Switch{ID: id, Pipeline: PipelineHybrid, Controller: -1, legacy: legacy}
}

// InstallEntry adds or replaces the entry for a flow at a priority.
func (s *Switch) InstallEntry(e FlowEntry) {
	for i := range s.entries {
		if s.entries[i].FlowID == e.FlowID && s.entries[i].Priority == e.Priority {
			s.entries[i] = e
			return
		}
	}
	s.entries = append(s.entries, e)
	sort.SliceStable(s.entries, func(a, b int) bool {
		if s.entries[a].Priority != s.entries[b].Priority {
			return s.entries[a].Priority > s.entries[b].Priority
		}
		return s.entries[a].FlowID < s.entries[b].FlowID
	})
}

// RemoveEntry deletes all entries for a flow; it reports whether any existed.
func (s *Switch) RemoveEntry(id flow.ID) bool {
	kept := s.entries[:0]
	removed := false
	for _, e := range s.entries {
		if e.FlowID == id {
			removed = true
			continue
		}
		kept = append(kept, e)
	}
	s.entries = kept
	return removed
}

// FlushEntries removes every flow entry.
func (s *Switch) FlushEntries() { s.entries = nil }

// Entry returns the highest-priority entry for a flow.
func (s *Switch) Entry(id flow.ID) (FlowEntry, bool) {
	for _, e := range s.entries {
		if e.FlowID == id {
			return e, true
		}
	}
	return FlowEntry{}, false
}

// NumEntries returns the flow-table size.
func (s *Switch) NumEntries() int { return len(s.entries) }

// Forward runs the pipeline of Fig. 2 for a packet of the given flow headed
// to dst, returning the chosen next hop and the verdict.
func (s *Switch) Forward(id flow.ID, dst topo.NodeID) (topo.NodeID, Verdict) {
	if s.ID == dst {
		return -1, VerdictDelivered
	}
	lookupFlow := func() (topo.NodeID, bool) {
		e, ok := s.Entry(id)
		if !ok {
			return -1, false
		}
		return e.NextHop, true
	}
	lookupLegacy := func() (topo.NodeID, bool) {
		if s.legacy == nil {
			return -1, false
		}
		nh := s.legacy.NextHop(dst)
		return nh, nh >= 0
	}
	switch s.Pipeline {
	case PipelineSDN:
		if nh, ok := lookupFlow(); ok {
			return nh, VerdictFlowTable
		}
		return -1, VerdictPuntNoMatch
	case PipelineLegacy:
		if nh, ok := lookupLegacy(); ok {
			return nh, VerdictLegacy
		}
		return -1, VerdictDrop
	case PipelineHybrid:
		if nh, ok := lookupFlow(); ok {
			return nh, VerdictFlowTable
		}
		if nh, ok := lookupLegacy(); ok {
			return nh, VerdictLegacy
		}
		return -1, VerdictDrop
	default:
		return -1, VerdictDrop
	}
}

// Managed reports whether the switch currently has a managing controller.
func (s *Switch) Managed() bool { return s.Controller >= 0 }
