package sdnsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"pmedic/internal/openflow"
	"pmedic/internal/topo"
)

// ErrFenced reports a wire operation refused by OpenFlow generation-ID
// fencing: the switch has already accepted a claim from a newer epoch (a
// newer leader), and honoring this one would hand the switch back to a
// deposed controller.
var ErrFenced = errors.New("sdnsim: fenced by a newer generation")

// FenceResult reports one agent's response to a fencing sweep.
type FenceResult struct {
	Switch topo.NodeID
	// Fenced is true when the agent accepted the claim (its generation is
	// now at least the asserted one).
	Fenced bool
	Err    error
}

// FenceAgents stamps gen onto every agent as a Master claim, in switch
// order with opts.Concurrency workers. A freshly elected leader calls it
// with the bottom of its first epoch's generation range before reconciling:
// once the sweep returns, any in-flight push signed by a lower generation —
// the deposed leader's — is refused by the agents (ErrCodeRoleStale on the
// wire, ErrFenced in the driver).
//
// fenced counts the agents that accepted. An agent that reports the claim
// itself as stale (its generation is already higher) yields ErrFenced for
// that switch — the caller has itself been superseded. Unreachable agents
// yield their dial errors; the sweep continues past them, since fencing an
// agent nobody can reach is moot.
func FenceAgents(addrs map[topo.NodeID]string, gen uint64, opts PushOptions) (fenced int, results []FenceResult, err error) {
	opts = opts.withDefaults()
	switches := make([]topo.NodeID, 0, len(addrs))
	for sw := range addrs {
		switches = append(switches, sw)
	}
	sort.Slice(switches, func(a, b int) bool { return switches[a] < switches[b] })

	results = make([]FenceResult, len(switches))
	var wg sync.WaitGroup
	slots := make(chan struct{}, opts.Concurrency)
	for i, sw := range switches {
		wg.Add(1)
		slots <- struct{}{}
		go func(i int, sw topo.NodeID) {
			defer func() {
				<-slots
				wg.Done()
			}()
			results[i] = fenceOne(opts, addrs[sw], sw, gen)
		}(i, sw)
	}
	wg.Wait()

	var firstErr error
	for _, r := range results {
		if r.Fenced {
			fenced++
		} else if firstErr == nil {
			firstErr = fmt.Errorf("switch %d: %w", r.Switch, r.Err)
		}
	}
	return fenced, results, firstErr
}

// fenceOne claims mastership at gen on one agent.
func fenceOne(opts PushOptions, addr string, sw topo.NodeID, gen uint64) FenceResult {
	res := FenceResult{Switch: sw}
	conn, err := opts.Dial(addr, opts.DialTimeout)
	if err != nil {
		res.Err = err
		return res
	}
	defer func() { _ = conn.Close() }()
	conn.SetIOTimeout(opts.IOTimeout)
	msg, _, err := conn.Request(openflow.RoleRequest{Role: openflow.RoleMaster, GenerationID: gen})
	if err != nil {
		var re *openflow.RemoteError
		if errors.As(err, &re) {
			if g, ok := re.StaleGeneration(); ok {
				res.Err = fmt.Errorf("%w: switch %d holds generation %d, asserted %d", ErrFenced, sw, g, gen)
				return res
			}
		}
		res.Err = err
		return res
	}
	if _, ok := msg.(openflow.RoleReply); !ok {
		res.Err = fmt.Errorf("sdnsim: fence %d: unexpected %v to role request", sw, msg.MsgType())
		return res
	}
	res.Fenced = true
	return res
}
