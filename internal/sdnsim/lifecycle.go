package sdnsim

import (
	"errors"
	"fmt"

	"pmedic/internal/core"
	"pmedic/internal/scenario"
)

// This file is the runtime controller-lifecycle surface of Network: killing
// and reviving controllers while the network keeps running, and adopting a
// recovery mapping computed outside the simulator. Unlike the batch entry
// points (FailControllers, ApplyRecovery), everything here is safe to call
// concurrently — the online recovery daemon (internal/medic) adopts mappings
// from its reconcile loop while tests and chaos scripts kill and revive
// controllers from other goroutines.

// ErrControllerAlive reports a StartController on a controller that never
// stopped.
var ErrControllerAlive = errors.New("sdnsim: controller already alive")

// StopController kills one controller at runtime: every switch it currently
// masters — home-domain switches and any switch a recovery remapped to it —
// becomes unmanaged, exactly as when the controller process crashes. Installed
// data-plane state survives. The OnControllerChange hook, when set, fires
// after the state change so an attached probe endpoint can go dark.
//
// Unlike FailControllers it is idempotent (stopping a dead controller is a
// no-op) and safe under concurrency with the rest of the lifecycle surface.
func (n *Network) StopController(j int) error {
	if j < 0 || j >= len(n.Controllers) {
		return fmt.Errorf("%w: %d", ErrBadController, j)
	}
	n.ctrlMu.Lock()
	if !n.Controllers[j].Alive {
		n.ctrlMu.Unlock()
		return nil
	}
	n.Controllers[j].Alive = false
	for _, sw := range n.Switches {
		if sw.Controller == j {
			sw.Controller = -1
		}
	}
	hook := n.OnControllerChange
	n.ctrlMu.Unlock()
	if hook != nil {
		hook(j, false)
	}
	return nil
}

// StartController revives a stopped controller and re-homes its domain: the
// switches of its deployment domain return to its mastership (the ideal
// mapping), whatever interim controller a recovery had assigned them to. The
// data-plane entries are not touched — restoring entries that a recovery
// demoted to legacy mode is the fail-back push's job (RestoreIdeal).
func (n *Network) StartController(j int) error {
	if j < 0 || j >= len(n.Controllers) {
		return fmt.Errorf("%w: %d", ErrBadController, j)
	}
	n.ctrlMu.Lock()
	if n.Controllers[j].Alive {
		n.ctrlMu.Unlock()
		return fmt.Errorf("%w: %d", ErrControllerAlive, j)
	}
	n.Controllers[j].Alive = true
	for _, sw := range n.Dep.Controllers[j].Domain {
		n.Switches[sw].Controller = j
	}
	hook := n.OnControllerChange
	n.ctrlMu.Unlock()
	if hook != nil {
		hook(j, true)
	}
	return nil
}

// ControllerAlive reports a controller's current liveness.
func (n *Network) ControllerAlive(j int) bool {
	if j < 0 || j >= len(n.Controllers) {
		return false
	}
	n.ctrlMu.Lock()
	defer n.ctrlMu.Unlock()
	return n.Controllers[j].Alive
}

// MappingSnapshot returns the current switch→controller ownership, -1 for
// unmanaged switches.
func (n *Network) MappingSnapshot() []int {
	n.ctrlMu.Lock()
	defer n.ctrlMu.Unlock()
	out := make([]int, len(n.Switches))
	for i, sw := range n.Switches {
		out[i] = sw.Controller
	}
	return out
}

// AdoptMapping records a pushed switch-mapping recovery in the network's
// ownership bookkeeping: instance switches mapped by the solution move under
// their assigned (deployment-indexed) controller, unmapped ones become
// unmanaged. It is the ownership-only counterpart of ApplyRecovery — the
// daemon calls it after PushRecoveryResilient has already installed the
// data-plane state over the wire, so no flow-mods are replayed here.
func (n *Network) AdoptMapping(inst *scenario.Instance, sol *core.Solution) error {
	if sol.PairController != nil {
		return errors.New("sdnsim: flow-level solutions need a middle layer, not a switch mapping")
	}
	if len(sol.SwitchController) != len(inst.Switches) {
		return fmt.Errorf("sdnsim: adopt: solution maps %d switches, instance has %d",
			len(sol.SwitchController), len(inst.Switches))
	}
	n.ctrlMu.Lock()
	defer n.ctrlMu.Unlock()
	for i, jj := range sol.SwitchController {
		sw := n.Switches[inst.Switches[i]]
		if jj < 0 {
			sw.Controller = -1
			continue
		}
		ctrl := inst.Active[jj]
		if ctrl < 0 || ctrl >= len(n.Controllers) {
			return fmt.Errorf("%w: %d", ErrBadController, ctrl)
		}
		if !n.Controllers[ctrl].Alive {
			return fmt.Errorf("%w: controller %d", ErrControllerDown, ctrl)
		}
		if sw.Controller != ctrl {
			n.Stats.Remappings++
		}
		sw.Controller = ctrl
	}
	return nil
}
