package sdnsim

import (
	"errors"
	"testing"
	"time"

	"pmedic/internal/chaos"
	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/openflow"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

// pushFixture compiles one ATT failure case with live agents for every
// offline switch and returns everything a push test needs.
type pushFixture struct {
	n      *Network
	inst   *scenario.Instance
	sol    *core.Solution
	agents map[topo.NodeID]*Agent
}

func newPushFixture(t *testing.T, failed []int) *pushFixture {
	t.Helper()
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.FailControllers(failed...); err != nil {
		t.Fatal(err)
	}
	inst, err := scenario.Build(dep, flows, failed)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.PM(inst.Problem)
	if err != nil {
		t.Fatal(err)
	}
	fx := &pushFixture{n: n, inst: inst, sol: sol, agents: make(map[topo.NodeID]*Agent)}
	for _, swID := range inst.Switches {
		a, err := ServeSwitch(n.Switches[swID], "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		fx.agents[swID] = a
	}
	t.Cleanup(func() {
		for _, a := range fx.agents {
			_ = a.Close()
		}
	})
	return fx
}

// checkTablesMatch asserts that, for every switch the final solution maps,
// the agent's flow table holds exactly the entries the solution activates.
func checkTablesMatch(t *testing.T, fx *pushFixture, final *core.Solution) {
	t.Helper()
	for k, pr := range fx.inst.Problem.Pairs {
		if final.SwitchController[pr.Switch] < 0 {
			continue // legacy/demoted switch: table frozen, not programmable
		}
		swID := fx.inst.Switches[pr.Switch]
		agent, ok := fx.agents[swID]
		if !ok {
			t.Fatalf("mapped switch %d has no agent", swID)
		}
		lid := fx.inst.FlowIDs[pr.Flow]
		_, has := agent.Entry(lid)
		if has != final.Active[k] {
			t.Fatalf("switch %d flow %d: entry=%v, want %v", swID, lid, has, final.Active[k])
		}
	}
}

func TestResilientPushHealthyNetwork(t *testing.T) {
	fx := newPushFixture(t, []int{3})
	rep, err := PushRecoveryResilient(AgentAddrs(fx.agents), fx.inst.Flows, fx.inst, fx.sol, PushOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Demoted) != 0 || rep.Replanned || rep.Rounds != 1 {
		t.Fatalf("healthy push: demoted=%v replanned=%v rounds=%d", rep.Demoted, rep.Replanned, rep.Rounds)
	}
	if rep.FlowModsAcked == 0 {
		t.Fatal("nothing acked")
	}
	if rep.Achieved.MinProg != rep.Planned.MinProg || rep.Achieved.TotalProg != rep.Planned.TotalProg {
		t.Fatalf("achieved (r=%d, total=%d) != planned (r=%d, total=%d)",
			rep.Achieved.MinProg, rep.Achieved.TotalProg, rep.Planned.MinProg, rep.Planned.TotalProg)
	}
	for _, out := range rep.Outcomes {
		if fx.sol.SwitchController[out.Index] < 0 {
			if out.Status != PushLegacyPlanned {
				t.Fatalf("switch %d: status %v, want legacy-planned", out.Switch, out.Status)
			}
			continue
		}
		if out.Status != PushApplied || out.Attempts != 1 || out.Dirty {
			t.Fatalf("switch %d: %+v", out.Switch, out)
		}
	}
	checkTablesMatch(t, fx, rep.Final)
	// Mastership was negotiated on every pushed switch.
	for i, swID := range fx.inst.Switches {
		if fx.sol.SwitchController[i] < 0 {
			continue
		}
		if fx.agents[swID].Role() != openflow.RoleMaster {
			t.Fatalf("agent %d role = %v", swID, fx.agents[swID].Role())
		}
	}
}

func TestResilientPushMissingAgentDemotesAndReplans(t *testing.T) {
	fx := newPushFixture(t, []int{3})
	// Strip the agent of the first mapped switch: permanently unreachable.
	var victim topo.NodeID = -1
	for i, swID := range fx.inst.Switches {
		if fx.sol.SwitchController[i] >= 0 {
			victim = swID
			break
		}
	}
	if victim < 0 {
		t.Fatal("no mapped switch in fixture")
	}
	addrs := AgentAddrs(fx.agents)
	delete(addrs, victim)

	rep, err := PushRecoveryResilient(addrs, fx.inst.Flows, fx.inst, fx.sol, PushOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Demoted) != 1 || rep.Demoted[0] != victim {
		t.Fatalf("demoted = %v, want [%d]", rep.Demoted, victim)
	}
	if !rep.Replanned {
		t.Fatal("missing agent did not trigger a re-plan")
	}
	out := rep.Outcomes[indexOf(t, fx, victim)]
	if out.Status != PushDemoted || !errors.Is(out.Err, ErrAgentMissing) || out.Dirty {
		t.Fatalf("victim outcome = %+v", out)
	}
	// The victim is legacy in the final solution, and nothing is active there.
	vi := indexOf(t, fx, victim)
	if rep.Final.SwitchController[vi] != -1 {
		t.Fatalf("victim still mapped to %d", rep.Final.SwitchController[vi])
	}
	for _, k := range fx.inst.Problem.PairsAtSwitch(vi) {
		if rep.Final.Active[k] {
			t.Fatalf("pair %d active at demoted switch", k)
		}
	}
	// Achieved can only degrade relative to planned, and must evaluate.
	if rep.Achieved.TotalProg > rep.Planned.TotalProg {
		t.Fatalf("achieved total %d exceeds planned %d", rep.Achieved.TotalProg, rep.Planned.TotalProg)
	}
	checkTablesMatch(t, fx, rep.Final)
}

func indexOf(t *testing.T, fx *pushFixture, swID topo.NodeID) int {
	t.Helper()
	for i, id := range fx.inst.Switches {
		if id == swID {
			return i
		}
	}
	t.Fatalf("switch %d not in instance", swID)
	return -1
}

func TestResilientPushSurvivesChaos(t *testing.T) {
	// Injected resets, dial failures, and latency on every control channel:
	// bounded fault budgets guarantee the retry loops eventually win, and the
	// end state must still match the plan exactly.
	fx := newPushFixture(t, []int{3, 4})
	dialer := chaos.NewDialer(chaos.Config{
		Seed:         7,
		Latency:      time.Millisecond,
		Jitter:       2 * time.Millisecond,
		ResetProb:    0.15,
		MaxResets:    6,
		DialFailProb: 0.2,
		MaxDialFails: 4,
	})
	dial := func(addr string, timeout time.Duration) (*openflow.Conn, error) {
		tr, err := dialer.Dial(addr, timeout)
		if err != nil {
			return nil, err
		}
		c := openflow.NewConn(tr)
		c.SetIOTimeout(timeout)
		if err := c.Handshake(); err != nil {
			_ = tr.Close()
			return nil, err
		}
		c.SetIOTimeout(0)
		return c, nil
	}
	rep, err := PushRecoveryResilient(AgentAddrs(fx.agents), fx.inst.Flows, fx.inst, fx.sol, PushOptions{
		Seed:        7,
		Dial:        dial,
		MaxAttempts: 20,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		DialTimeout: 2 * time.Second,
		IOTimeout:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Demoted) != 0 {
		t.Fatalf("bounded chaos demoted %v", rep.Demoted)
	}
	if rep.Achieved.MinProg != rep.Planned.MinProg || rep.Achieved.TotalProg != rep.Planned.TotalProg {
		t.Fatalf("achieved (r=%d, total=%d) != planned (r=%d, total=%d)",
			rep.Achieved.MinProg, rep.Achieved.TotalProg, rep.Planned.MinProg, rep.Planned.TotalProg)
	}
	retried := false
	for _, out := range rep.Outcomes {
		if out.Attempts > 1 {
			retried = true
		}
	}
	if !retried {
		t.Fatal("chaos injected no retries; faults not exercised")
	}
	checkTablesMatch(t, fx, rep.Final)
}

// muteBarrierAgent accepts control channels and answers everything except
// BarrierRequest, which it swallows — the slow/hung-peer case where flow-mods
// land but their confirmation never comes.
func muteBarrierAgent(t *testing.T) string {
	t.Helper()
	l, err := openflow.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn *openflow.Conn) {
				defer func() { _ = conn.Close() }()
				for {
					msg, h, err := conn.Recv()
					if err != nil {
						return
					}
					switch m := msg.(type) {
					case openflow.Echo:
						if !m.Reply {
							err = conn.SendXID(openflow.Echo{Reply: true, Data: m.Data}, h.XID)
						}
					case openflow.RoleRequest:
						err = conn.SendXID(openflow.RoleReply{Role: m.Role, GenerationID: m.GenerationID}, h.XID)
					case openflow.BarrierRequest:
						// swallowed: the controller's barrier times out
					}
					if err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return l.Addr()
}

func TestResilientPushBarrierTimeoutDemotesDirty(t *testing.T) {
	fx := newPushFixture(t, []int{3})
	var victim topo.NodeID = -1
	for i, swID := range fx.inst.Switches {
		if fx.sol.SwitchController[i] >= 0 && len(fx.inst.Problem.PairsAtSwitch(i)) > 0 {
			victim = swID
			break
		}
	}
	if victim < 0 {
		t.Fatal("no mapped switch with pairs")
	}
	addrs := AgentAddrs(fx.agents)
	addrs[victim] = muteBarrierAgent(t)

	rep, err := PushRecoveryResilient(addrs, fx.inst.Flows, fx.inst, fx.sol, PushOptions{
		Seed:        3,
		MaxAttempts: 2,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		IOTimeout:   150 * time.Millisecond,
		DialTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Demoted) != 1 || rep.Demoted[0] != victim {
		t.Fatalf("demoted = %v, want [%d]", rep.Demoted, victim)
	}
	out := rep.Outcomes[indexOf(t, fx, victim)]
	if out.Status != PushDemoted || out.Attempts != 2 {
		t.Fatalf("victim outcome = %+v", out)
	}
	if !out.Dirty {
		t.Fatal("flow-mods were sent without confirmation; outcome must be dirty")
	}
	checkTablesMatch(t, fx, rep.Final)
}

func TestResilientPushStaleGenerationResync(t *testing.T) {
	fx := newPushFixture(t, []int{3})
	// A previous epoch claimed every agent with a high generation; the
	// driver starts below it, gets refused, resynchronizes, and succeeds.
	for _, a := range fx.agents {
		conn, err := openflow.Dial(a.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := conn.Request(openflow.RoleRequest{Role: openflow.RoleMaster, GenerationID: 50}); err != nil {
			t.Fatal(err)
		}
		_ = conn.Close()
	}
	rep, err := PushRecoveryResilient(AgentAddrs(fx.agents), fx.inst.Flows, fx.inst, fx.sol, PushOptions{
		Seed:         5,
		GenerationID: 2, // stale relative to 50
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Demoted) != 0 {
		t.Fatalf("stale generation demoted %v", rep.Demoted)
	}
	for _, out := range rep.Outcomes {
		if out.Status == PushApplied && out.Attempts > 2 {
			t.Fatalf("switch %d needed %d attempts for a stale-gen resync", out.Switch, out.Attempts)
		}
	}
	checkTablesMatch(t, fx, rep.Final)
}

func TestAgentRejectsStaleGeneration(t *testing.T) {
	n := network(t)
	agent, err := ServeSwitch(n.Switches[13], "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()
	conn, err := openflow.Dial(agent.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()

	// Claim with generation 5: accepted.
	if _, _, err := conn.Request(openflow.RoleRequest{Role: openflow.RoleMaster, GenerationID: 5}); err != nil {
		t.Fatal(err)
	}
	if gen, ok := agent.GenerationID(); !ok || gen != 5 {
		t.Fatalf("generation = %d, %v", gen, ok)
	}

	// A stale claim (gen 3) is refused with the current generation, and the
	// role survives.
	_, _, err = conn.Request(openflow.RoleRequest{Role: openflow.RoleSlave, GenerationID: 3})
	var re *openflow.RemoteError
	if !errors.As(err, &re) || re.Code != openflow.ErrCodeRoleStale {
		t.Fatalf("stale claim error = %v", err)
	}
	if g, ok := re.StaleGeneration(); !ok || g != 5 {
		t.Fatalf("stale error generation = %d, %v", g, ok)
	}
	if agent.Role() != openflow.RoleMaster {
		t.Fatalf("role after stale claim = %v", agent.Role())
	}

	// Equal generation is not stale; a newer one advances the record.
	if _, _, err := conn.Request(openflow.RoleRequest{Role: openflow.RoleMaster, GenerationID: 5}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := conn.Request(openflow.RoleRequest{Role: openflow.RoleSlave, GenerationID: 6}); err != nil {
		t.Fatal(err)
	}
	if agent.Role() != openflow.RoleSlave {
		t.Fatalf("role = %v, want slave", agent.Role())
	}
	// Equal-role requests carry no generation semantics.
	if _, _, err := conn.Request(openflow.RoleRequest{Role: openflow.RoleEqual, GenerationID: 1}); err != nil {
		t.Fatal(err)
	}
	if gen, _ := agent.GenerationID(); gen != 6 {
		t.Fatalf("generation after equal-role request = %d", gen)
	}
}

func TestResidualReplanFreesCapacity(t *testing.T) {
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := scenario.Build(dep, flows, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	demoted := map[topo.NodeID]bool{inst.Switches[0]: true}
	rp, pairMap, err := inst.Residual(demoted)
	if err != nil {
		t.Fatal(err)
	}
	if len(rp.Pairs) >= len(inst.Problem.Pairs) {
		t.Fatalf("residual kept %d of %d pairs", len(rp.Pairs), len(inst.Problem.Pairs))
	}
	for k, orig := range pairMap {
		if rp.Pairs[k] != inst.Problem.Pairs[orig] {
			t.Fatalf("pairMap[%d]=%d mismatches", k, orig)
		}
		if inst.Switches[rp.Pairs[k].Switch] == inst.Switches[0] {
			t.Fatalf("residual pair %d still at the demoted switch", k)
		}
	}
	rsol, err := core.PM(rp)
	if err != nil {
		t.Fatal(err)
	}
	if rsol.SwitchController[0] != -1 {
		t.Fatalf("PM mapped the demoted switch to %d", rsol.SwitchController[0])
	}
	// The translated solution must evaluate against the original problem.
	next := core.NewSolution("PM+replan", inst.Problem)
	copy(next.SwitchController, rsol.SwitchController)
	for k, on := range rsol.Active {
		if on {
			next.Active[pairMap[k]] = true
		}
	}
	if _, err := inst.Evaluate(next); err != nil {
		t.Fatal(err)
	}
}
