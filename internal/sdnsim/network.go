package sdnsim

import (
	"errors"
	"fmt"
	"sync"

	"pmedic/internal/core"
	"pmedic/internal/des"
	"pmedic/internal/flow"
	"pmedic/internal/graphalg"
	"pmedic/internal/ospf"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

// Controller is one control-plane instance.
type Controller struct {
	Index    int
	Site     topo.NodeID
	Capacity int
	Alive    bool
	// Load is the number of flow@switch sessions currently charged to it.
	Load int
}

// Stats counts simulator activity.
type Stats struct {
	PacketsInjected  int
	PacketsDelivered int
	PacketsDropped   int
	FlowModsSent     int
	Remappings       int
	LegacyFallbacks  int
}

// Network is a running SD-WAN: a topology deployment with live switches,
// controllers, and a virtual clock.
type Network struct {
	Dep   *topo.Deployment
	Flows *flow.Set
	Sim   *des.Simulator

	Switches    []*Switch
	Controllers []*Controller
	Stats       Stats

	// OnControllerChange, when set, is invoked (outside the lifecycle lock)
	// after StopController or StartController flips a controller's liveness.
	// The daemon wires it to the controller's probe endpoint so the failure
	// detector observes the change. See lifecycle.go.
	OnControllerChange func(index int, alive bool)

	// ctrlMu serializes the runtime lifecycle surface (StopController,
	// StartController, AdoptMapping, MappingSnapshot, ControllerAlive). The
	// rest of Network predates concurrent use and is not safe to call
	// concurrently with anything.
	ctrlMu sync.Mutex

	delay func(a, b topo.NodeID) float64
	// ctrlDist[j][v] is the control-channel delay from controller j's site
	// to node v along shortest paths.
	ctrlDist [][]float64
	// middle holds flow-level control ownership installed through a
	// FlowVisor-style middle layer (see middlelayer.go).
	middle map[topo.NodeID]map[flow.ID]middleOwner
	// failedLinks marks out-of-service data-plane links (see linkfail.go)
	// and lsaSeq sequences the LSAs re-originated on link failures.
	failedLinks map[failedLink]bool
	lsaSeq      uint64
}

// Network errors.
var (
	ErrControllerDown  = errors.New("sdnsim: controller is down")
	ErrBadController   = errors.New("sdnsim: controller index out of range")
	ErrBadFlow         = errors.New("sdnsim: unknown flow")
	ErrNotOnPath       = errors.New("sdnsim: switch not on the flow's path")
	ErrCapacity        = errors.New("sdnsim: controller capacity exhausted")
	ErrPacketLoop      = errors.New("sdnsim: packet exceeded the hop budget")
	ErrInvalidNextHop  = errors.New("sdnsim: next hop is not adjacent")
	ErrNoAlternatePath = errors.New("sdnsim: next hop cannot reach the destination")
)

// New builds the steady-state network: every switch runs the hybrid
// pipeline with converged legacy (OSPF) tables, every flow has SDN entries
// along its path, and every controller manages its domain with the session
// load those entries imply.
func New(dep *topo.Deployment, flows *flow.Set) (*Network, error) {
	g := dep.Graph
	delayW, err := g.EdgeDelaysMs()
	if err != nil {
		return nil, fmt.Errorf("sdnsim: %w", err)
	}
	tables, err := ospf.ComputeTables(g, delayW)
	if err != nil {
		return nil, fmt.Errorf("sdnsim: legacy tables: %w", err)
	}
	n := &Network{
		Dep:   dep,
		Flows: flows,
		Sim:   &des.Simulator{},
		delay: delayW,
	}
	n.Switches = make([]*Switch, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		n.Switches[v] = NewSwitch(topo.NodeID(v), tables[v])
	}
	n.Controllers = make([]*Controller, len(dep.Controllers))
	n.ctrlDist = make([][]float64, len(dep.Controllers))
	for j, c := range dep.Controllers {
		n.Controllers[j] = &Controller{Index: j, Site: c.Site, Capacity: c.Capacity, Alive: true}
		tree, err := graphalg.Dijkstra(g, c.Site, delayW)
		if err != nil {
			return nil, fmt.Errorf("sdnsim: controller %d distances: %w", j, err)
		}
		n.ctrlDist[j] = tree.Dist
		for _, sw := range c.Domain {
			n.Switches[sw].Controller = j
		}
	}
	// Install the initial SDN state: one entry per flow per on-path switch
	// (except the destination), charged to the switch's domain controller.
	for l := range flows.Flows {
		f := &flows.Flows[l]
		for i := 0; i+1 < len(f.Path); i++ {
			sw := n.Switches[f.Path[i]]
			sw.InstallEntry(FlowEntry{FlowID: f.ID, Priority: 100, NextHop: f.Path[i+1]})
			n.Controllers[sw.Controller].Load++
		}
	}
	return n, nil
}

// ControlDelayMs returns the control-channel propagation delay between a
// controller and a switch.
func (n *Network) ControlDelayMs(controller int, sw topo.NodeID) (float64, error) {
	if controller < 0 || controller >= len(n.Controllers) {
		return 0, fmt.Errorf("%w: %d", ErrBadController, controller)
	}
	if sw < 0 || int(sw) >= len(n.Switches) {
		return 0, fmt.Errorf("sdnsim: switch %d out of range", sw)
	}
	return n.ctrlDist[controller][sw], nil
}

// Trace is the outcome of one injected packet.
type Trace struct {
	Flow      flow.ID
	Path      []topo.NodeID
	Verdicts  []Verdict
	Delivered bool
	LatencyMs float64
}

// maxHops bounds a packet walk; any real path is far shorter.
const maxHops = 64

// Inject sends one packet of the flow from its source and walks it through
// switch pipelines until delivery or drop, advancing the virtual clock by
// each link's propagation delay.
func (n *Network) Inject(id flow.ID) (*Trace, error) {
	if id < 0 || int(id) >= len(n.Flows.Flows) {
		return nil, fmt.Errorf("%w: %d", ErrBadFlow, id)
	}
	f := &n.Flows.Flows[id]
	n.Stats.PacketsInjected++
	tr := &Trace{Flow: id}
	at := f.Src
	start := n.Sim.Now()
	for hops := 0; hops <= maxHops; hops++ {
		tr.Path = append(tr.Path, at)
		nh, verdict := n.Switches[at].Forward(id, f.Dst)
		tr.Verdicts = append(tr.Verdicts, verdict)
		switch verdict {
		case VerdictDelivered:
			tr.Delivered = true
			tr.LatencyMs = float64(n.Sim.Now() - start)
			n.Stats.PacketsDelivered++
			return tr, nil
		case VerdictFlowTable, VerdictLegacy:
			if verdict == VerdictLegacy {
				n.Stats.LegacyFallbacks++
			}
			if !n.Dep.Graph.HasEdge(at, nh) {
				n.Stats.PacketsDropped++
				return tr, fmt.Errorf("%w: %d -> %d", ErrInvalidNextHop, at, nh)
			}
			if !n.LinkUp(at, nh) {
				// The chosen next hop crosses a dead link: the packet is lost.
				n.Stats.PacketsDropped++
				tr.LatencyMs = float64(n.Sim.Now() - start)
				return tr, nil
			}
			hop := nh
			if err := n.Sim.Schedule(des.Time(n.delay(at, hop)), func() {}); err != nil {
				return tr, err
			}
			n.Sim.Run(1)
			at = hop
		default:
			n.Stats.PacketsDropped++
			tr.LatencyMs = float64(n.Sim.Now() - start)
			return tr, nil
		}
	}
	n.Stats.PacketsDropped++
	return tr, fmt.Errorf("%w: flow %d", ErrPacketLoop, id)
}

// FailControllers kills the given controllers: their switches become
// unmanaged (offline). Data-plane state survives — the installed entries
// keep forwarding — but the switches cannot be reprogrammed until remapped.
func (n *Network) FailControllers(indices ...int) error {
	for _, j := range indices {
		if j < 0 || j >= len(n.Controllers) {
			return fmt.Errorf("%w: %d", ErrBadController, j)
		}
	}
	for _, j := range indices {
		n.Controllers[j].Alive = false
		for _, sw := range n.Dep.Controllers[j].Domain {
			n.Switches[sw].Controller = -1
		}
	}
	return nil
}

// OfflineSwitches returns the currently unmanaged switches, ascending.
func (n *Network) OfflineSwitches() []topo.NodeID {
	var out []topo.NodeID
	for _, s := range n.Switches {
		if !s.Managed() {
			out = append(out, s.ID)
		}
	}
	return out
}

// Reroute changes a flow's next hop at a switch — the operational meaning of
// path programmability. It fails when the switch is unmanaged, its
// controller is dead, the flow is not SDN-routed there, or the new next hop
// cannot reach the destination without coming back through the switch.
func (n *Network) Reroute(id flow.ID, at topo.NodeID, newNextHop topo.NodeID) error {
	if id < 0 || int(id) >= len(n.Flows.Flows) {
		return fmt.Errorf("%w: %d", ErrBadFlow, id)
	}
	sw := n.Switches[at]
	var ctrl *Controller
	switch {
	case sw.Managed() && n.Controllers[sw.Controller].Alive:
		ctrl = n.Controllers[sw.Controller]
	case n.middleManaged(id, at):
		ctrl = n.Controllers[n.middle[at][id].controller]
	case sw.Managed():
		return fmt.Errorf("%w: controller %d", ErrControllerDown, sw.Controller)
	default:
		return fmt.Errorf("%w: switch %d", ErrUnmanaged, at)
	}
	if _, ok := sw.Entry(id); !ok {
		return fmt.Errorf("%w: flow %d at switch %d", ErrNoEntry, id, at)
	}
	if !n.Dep.Graph.HasEdge(at, newNextHop) {
		return fmt.Errorf("%w: %d -> %d", ErrInvalidNextHop, at, newNextHop)
	}
	f := &n.Flows.Flows[id]
	if !n.reaches(newNextHop, f.Dst, at) {
		return fmt.Errorf("%w: %d via %d", ErrNoAlternatePath, f.Dst, newNextHop)
	}
	// The flow-mod travels controller -> switch before taking effect.
	delayMs := n.ctrlDist[ctrl.Index][at]
	n.Stats.FlowModsSent++
	err := n.Sim.Schedule(des.Time(delayMs), func() {
		sw.InstallEntry(FlowEntry{FlowID: id, Priority: 100, NextHop: newNextHop})
	})
	if err != nil {
		return err
	}
	n.Sim.Run(1)
	return nil
}

// reaches reports whether dst is reachable from start without traversing
// banned (a loop-freedom check for reroutes).
func (n *Network) reaches(start, dst, banned topo.NodeID) bool {
	if start == dst {
		return true
	}
	g := n.Dep.Graph
	seen := make([]bool, g.NumNodes())
	seen[banned] = true
	stack := []topo.NodeID{start}
	seen[start] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u == dst {
			return true
		}
		for _, v := range g.Neighbors(u) {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}

// ApplyRecovery applies a switch-mapping recovery solution to the network:
// offline switches are remapped per the solution, SDN-mode pairs keep (or
// get) flow entries charged to the new controller, and entries for pairs
// left in legacy mode are removed so those flows fall through to OSPF at
// that switch. Flow-mods arrive after their control-channel delay; the
// virtual clock advances until all have been applied. It returns the number
// of reconfiguration messages sent.
func (n *Network) ApplyRecovery(inst *scenario.Instance, sol *core.Solution) (int, error) {
	if sol.PairController != nil {
		return 0, errors.New("sdnsim: flow-level solutions need a middle layer, not a switch mapping")
	}
	p := inst.Problem
	messages := 0
	// Remap switches.
	for i, jj := range sol.SwitchController {
		swID := inst.Switches[i]
		sw := n.Switches[swID]
		if jj < 0 {
			// Whole switch stays legacy: every offline flow entry there is
			// stale state that can no longer be managed; leave the entries
			// (the data plane keeps them) but count nothing.
			continue
		}
		ctrl := n.Controllers[inst.Active[jj]]
		if !ctrl.Alive {
			return messages, fmt.Errorf("%w: controller %d", ErrControllerDown, ctrl.Index)
		}
		sw.Controller = ctrl.Index
		n.Stats.Remappings++
		messages++ // role-request claiming mastership
	}
	// Reconcile flow entries at offline switches.
	activeAt := make(map[topo.NodeID]map[flow.ID]bool, len(inst.Switches))
	for k, on := range sol.Active {
		if !on {
			continue
		}
		pr := p.Pairs[k]
		swID := inst.Switches[pr.Switch]
		if activeAt[swID] == nil {
			activeAt[swID] = make(map[flow.ID]bool)
		}
		activeAt[swID][inst.FlowIDs[pr.Flow]] = true
	}
	for i := range inst.Switches {
		swID := inst.Switches[i]
		sw := n.Switches[swID]
		jj := sol.SwitchController[i]
		var ctrl *Controller
		if jj >= 0 {
			ctrl = n.Controllers[inst.Active[jj]]
		}
		// Offline flows traversing this switch either stay SDN (entry kept,
		// session charged) or drop to legacy (entry removed).
		for _, lid := range append(append([]flow.ID(nil), inst.FlowIDs...), inst.Unrecoverable...) {
			f := &n.Flows.Flows[lid]
			onPath := false
			for _, v := range f.Path[:len(f.Path)-1] {
				if v == swID {
					onPath = true
					break
				}
			}
			if !onPath {
				continue
			}
			if ctrl != nil && activeAt[swID][lid] {
				if ctrl.Load >= ctrl.Capacity {
					return messages, fmt.Errorf("%w: controller %d", ErrCapacity, ctrl.Index)
				}
				ctrl.Load++
				messages++
				n.Stats.FlowModsSent++
				d := n.ctrlDist[ctrl.Index][swID]
				if err := n.Sim.Schedule(des.Time(d), func() {
					// Entry already present from steady state; re-install to
					// model the takeover flow-mod.
					if e, ok := sw.Entry(lid); ok {
						sw.InstallEntry(e)
					}
				}); err != nil {
					return messages, err
				}
			} else {
				// Legacy mode for this flow here.
				sw.RemoveEntry(lid)
			}
		}
	}
	n.Sim.Run(0)
	return messages, nil
}

// ProgrammableAt reports whether the flow can actually be rerouted at the
// switch right now: SDN entry present, the flow controllable there — via
// the switch's live master or via middle-layer ownership — and at least one
// alternative next hop reaching the destination.
func (n *Network) ProgrammableAt(id flow.ID, at topo.NodeID) bool {
	sw := n.Switches[at]
	masterOK := sw.Managed() && n.Controllers[sw.Controller].Alive
	if !masterOK && !n.middleManaged(id, at) {
		return false
	}
	entry, ok := sw.Entry(id)
	if !ok {
		return false
	}
	f := &n.Flows.Flows[id]
	if at == f.Dst {
		return false
	}
	count := 0
	for _, v := range n.Dep.Graph.Neighbors(at) {
		if v != entry.NextHop && n.reaches(v, f.Dst, at) {
			count++
		}
	}
	return count >= 1
}

// Programmable reports whether the flow can be rerouted at any switch on its
// path — the operational definition of a recovered (programmable) flow.
func (n *Network) Programmable(id flow.ID) bool {
	if id < 0 || int(id) >= len(n.Flows.Flows) {
		return false
	}
	f := &n.Flows.Flows[id]
	for _, v := range f.Path[:len(f.Path)-1] {
		if n.ProgrammableAt(id, v) {
			return true
		}
	}
	return false
}
