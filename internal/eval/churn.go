package eval

import (
	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

// ChurnReport quantifies how much reconfiguration a new recovery forces on
// top of a previous one during successive failures: a stable algorithm
// touches few switches and flows that were already recovered.
type ChurnReport struct {
	// CommonSwitches counts offline switches present in both steps.
	CommonSwitches int
	// RemappedSwitches counts common switches whose controller changed
	// (including mapped <-> legacy transitions).
	RemappedSwitches int
	// CommonPairs counts (switch, flow) decision points present in both.
	CommonPairs int
	// ToggledPairs counts common pairs whose SDN/legacy mode flipped.
	ToggledPairs int
}

// pairKey identifies a decision point independently of instance indexing.
type pairKey struct {
	sw topo.NodeID
	fl flow.ID
}

// controllerBySwitch maps each offline switch to the global controller index
// it is mapped to (-1 = legacy).
func controllerBySwitch(inst *scenario.Instance, sol *core.Solution) map[topo.NodeID]int {
	out := make(map[topo.NodeID]int, len(inst.Switches))
	for i, sw := range inst.Switches {
		jj := sol.SwitchController[i]
		if jj < 0 {
			out[sw] = -1
			continue
		}
		out[sw] = inst.Active[jj]
	}
	return out
}

// activePairs maps each decision point to its mode.
func activePairs(inst *scenario.Instance, sol *core.Solution) map[pairKey]bool {
	out := make(map[pairKey]bool, len(inst.Problem.Pairs))
	for k, pr := range inst.Problem.Pairs {
		key := pairKey{sw: inst.Switches[pr.Switch], fl: inst.FlowIDs[pr.Flow]}
		out[key] = sol.Active[k]
	}
	return out
}

// Churn compares two consecutive recoveries of a successive-failure episode.
func Churn(prevInst *scenario.Instance, prev *core.Solution, nextInst *scenario.Instance, next *core.Solution) ChurnReport {
	var r ChurnReport
	prevCtrl := controllerBySwitch(prevInst, prev)
	nextCtrl := controllerBySwitch(nextInst, next)
	for sw, pj := range prevCtrl {
		nj, ok := nextCtrl[sw]
		if !ok {
			continue
		}
		r.CommonSwitches++
		if pj != nj {
			r.RemappedSwitches++
		}
	}
	prevPairs := activePairs(prevInst, prev)
	nextPairs := activePairs(nextInst, next)
	for key, pOn := range prevPairs {
		nOn, ok := nextPairs[key]
		if !ok {
			continue
		}
		r.CommonPairs++
		if pOn != nOn {
			r.ToggledPairs++
		}
	}
	return r
}
