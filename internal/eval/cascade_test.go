package eval

import (
	"errors"
	"testing"

	"pmedic/internal/core"
	"pmedic/internal/scenario"
)

func TestBuildSuccessiveSteps(t *testing.T) {
	dep, flows := fixtures(t)
	steps, err := scenario.BuildSuccessive(dep, flows, []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 {
		t.Fatalf("steps = %d", len(steps))
	}
	if steps[0].NewlyFailed != 3 || len(steps[0].Failed) != 1 {
		t.Fatalf("step 0 = %+v", steps[0])
	}
	if len(steps[1].Failed) != 2 {
		t.Fatalf("step 1 cumulative = %v", steps[1].Failed)
	}
	if len(steps[1].Instance.Switches) <= len(steps[0].Instance.Switches) {
		t.Fatal("offline set must grow across steps")
	}
}

func TestBuildSuccessiveValidation(t *testing.T) {
	dep, flows := fixtures(t)
	if _, err := scenario.BuildSuccessive(dep, flows, nil); err == nil {
		t.Fatal("empty order must fail")
	}
	if _, err := scenario.BuildSuccessive(dep, flows, []int{0, 1, 2, 3, 4, 5}); err == nil {
		t.Fatal("killing every controller must fail")
	}
}

func TestChurnAcrossSuccessiveFailures(t *testing.T) {
	dep, flows := fixtures(t)
	steps, err := scenario.BuildSuccessive(dep, flows, []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	prev, err := core.PM(steps[0].Instance.Problem)
	if err != nil {
		t.Fatal(err)
	}
	next, err := core.PM(steps[1].Instance.Problem)
	if err != nil {
		t.Fatal(err)
	}
	churn := Churn(steps[0].Instance, prev, steps[1].Instance, next)
	if churn.CommonSwitches != len(steps[0].Instance.Switches) {
		t.Fatalf("common switches = %d, want all %d of step 0",
			churn.CommonSwitches, len(steps[0].Instance.Switches))
	}
	if churn.CommonPairs == 0 {
		t.Fatal("no common pairs")
	}
	if churn.RemappedSwitches > churn.CommonSwitches || churn.ToggledPairs > churn.CommonPairs {
		t.Fatalf("inconsistent churn: %+v", churn)
	}
}

func TestChurnIdentical(t *testing.T) {
	dep, flows := fixtures(t)
	inst, err := scenario.Build(dep, flows, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.PM(inst.Problem)
	if err != nil {
		t.Fatal(err)
	}
	churn := Churn(inst, sol, inst, sol)
	if churn.RemappedSwitches != 0 || churn.ToggledPairs != 0 {
		t.Fatalf("self-churn must be zero: %+v", churn)
	}
}

func TestCascadeStableAtFullTrigger(t *testing.T) {
	dep, flows := fixtures(t)
	pm := heuristics()[0]
	// trigger = 1.0: a controller fails only above its full capacity, which
	// feasible recoveries never cause — one stable round.
	res, err := Cascade(dep, flows, []int{3}, pm, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 1 || res.Collapsed {
		t.Fatalf("rounds = %d, collapsed = %v", len(res.Rounds), res.Collapsed)
	}
	if res.FinalReport() == nil {
		t.Fatal("missing final report")
	}
}

func TestCascadeTriggersOnTightLoads(t *testing.T) {
	dep, flows := fixtures(t)
	pm := heuristics()[0]
	// A low trigger makes heavily loaded survivors fail: the episode must
	// progress beyond one round and terminate (stable or collapsed).
	res, err := Cascade(dep, flows, []int{3}, pm, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) < 2 && !res.Collapsed {
		// With trigger 0.9 the hub-domain failure pushes some survivor past
		// 90% on this topology; if not, the model still must terminate.
		t.Logf("cascade stayed stable: %+v", res.Rounds[0])
	}
	if res.SurvivedRounds() == 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestCascadeValidation(t *testing.T) {
	dep, flows := fixtures(t)
	pm := heuristics()[0]
	if _, err := Cascade(dep, flows, []int{3}, pm, 0); !errors.Is(err, ErrBadTrigger) {
		t.Fatalf("error = %v", err)
	}
	if _, err := Cascade(dep, flows, []int{3}, pm, 1.5); !errors.Is(err, ErrBadTrigger) {
		t.Fatalf("error = %v", err)
	}
}

func TestCascadeComparesAlgorithms(t *testing.T) {
	dep, flows := fixtures(t)
	algs := heuristics()
	// PM spreads per-flow sessions; RetroFlow concentrates whole-γ loads.
	// Under the same trigger, RetroFlow must never survive with *more*
	// recovered programmability than PM's final state.
	pmRes, err := Cascade(dep, flows, []int{3, 4}, algs[0], 0.95)
	if err != nil {
		t.Fatal(err)
	}
	rfRes, err := Cascade(dep, flows, []int{3, 4}, algs[1], 0.95)
	if err != nil {
		t.Fatal(err)
	}
	pmFinal, rfFinal := pmRes.FinalReport(), rfRes.FinalReport()
	if pmFinal != nil && rfFinal != nil && rfFinal.TotalProg > pmFinal.TotalProg {
		t.Fatalf("RetroFlow ended with more programmability (%d) than PM (%d) under cascades",
			rfFinal.TotalProg, pmFinal.TotalProg)
	}
}
