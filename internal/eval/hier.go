package eval

import (
	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/region"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

// HierPM wraps the hierarchical region-sharded PM as a sweep Algorithm named
// "PM-H", so the existing harness, metrics, and figure renderers apply to it
// unchanged.
func HierPM(part *region.Partition, opts region.SolveOptions) Algorithm {
	return Algorithm{
		Name: "PM-H",
		Run: func(inst *scenario.Instance) (*core.Solution, error) {
			return region.SolvePM(inst, part, opts)
		},
	}
}

// SweepHier partitions the deployment into k regions (seeded) and runs a
// hierarchical sweep at the given failure depth: the convenience entry point
// behind `pmsim -regions`. Extra algorithms (e.g. flat PM for a quality
// comparison) ride along in the same sweep.
func SweepHier(dep *topo.Deployment, flows *flow.Set, depth, regions int, seed uint64, sopts region.SolveOptions, opts Options, extra ...Algorithm) ([]*CaseResult, *region.Partition, error) {
	part, err := region.New(dep, regions, seed)
	if err != nil {
		return nil, nil, err
	}
	algs := append([]Algorithm{HierPM(part, sopts)}, extra...)
	cases, err := SweepOpts(dep, flows, depth, algs, opts)
	if err != nil {
		return nil, nil, err
	}
	return cases, part, nil
}
