package eval

import (
	"reflect"
	"testing"

	"pmedic/internal/scenario"
)

// TestSweepDeterminism is the sweep engine's acceptance gate: a sweep must
// produce the same CaseResult slice — same case order, same instances, same
// reports, same cached statistics — no matter how many workers run it and no
// matter whether cases compile from scratch or incrementally along Gray
// chains (delta ≡ scratch at every worker count), and repeated parallel runs
// must agree with each other. Only the wall-clock Runtime fields are exempt,
// and they are zeroed before comparing.
func TestSweepDeterminism(t *testing.T) {
	dep, flows := fixtures(t)
	run := func(workers int, mode SweepMode) []*CaseResult {
		t.Helper()
		cases, err := SweepOpts(dep, flows, 2, heuristics(), Options{Workers: workers, Mode: mode})
		if err != nil {
			t.Fatalf("Workers=%d Mode=%d: %v", workers, mode, err)
		}
		for _, c := range cases {
			for _, rep := range c.Reports {
				rep.Runtime = 0
			}
		}
		return cases
	}

	reference := run(1, SweepScratch)
	if len(reference) != 15 {
		t.Fatalf("2-failure sweep produced %d cases, want 15", len(reference))
	}
	for _, mode := range []SweepMode{SweepScratch, SweepDelta} {
		for _, workers := range []int{1, 3, 8} {
			got := run(workers, mode)
			for i := range reference {
				if !reflect.DeepEqual(reference[i], got[i]) {
					t.Errorf("case %d (%s): Workers=%d Mode=%d differs from sequential scratch",
						i, reference[i].Label, workers, mode)
				}
			}
		}
	}
	again := run(8, SweepDelta)
	delta := run(8, SweepDelta)
	for i := range delta {
		if !reflect.DeepEqual(delta[i], again[i]) {
			t.Errorf("case %d (%s): two Workers=8 delta runs differ", i, delta[i].Label)
		}
	}
}

// TestForEachCaseModeEquivalence compares the instances themselves (not just
// the evaluated reports) between the delta and scratch engines, over the
// mixed-size case enumeration the plan-store compiler uses, at several
// worker counts. This is the delta ≡ scratch equivalence gate CI runs under
// -race before the bench gate.
func TestForEachCaseModeEquivalence(t *testing.T) {
	dep, flows := fixtures(t)
	ctx, err := scenario.NewContext(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	combos := scenario.CombinationsUpTo(len(dep.Controllers), 3)
	collect := func(workers int, mode SweepMode) []*scenario.Instance {
		t.Helper()
		out := make([]*scenario.Instance, len(combos))
		err := ForEachCaseMode(ctx, combos, workers, mode, func(idx int, inst *scenario.Instance) error {
			out[idx] = inst
			return nil
		})
		if err != nil {
			t.Fatalf("Workers=%d Mode=%d: %v", workers, mode, err)
		}
		return out
	}
	want := collect(1, SweepScratch)
	for _, workers := range []int{1, 2, 8} {
		got := collect(workers, SweepDelta)
		for i := range want {
			if !reflect.DeepEqual(want[i], got[i]) {
				t.Errorf("case %v: delta instance (Workers=%d) differs from scratch", combos[i], workers)
			}
		}
	}
}

// TestSweepOptsSharedContext reuses one context across sweeps of different k
// and checks the engine against the context-free path.
func TestSweepOptsSharedContext(t *testing.T) {
	dep, flows := fixtures(t)
	ctx, err := scenario.NewContext(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 2; k++ {
		plain, err := Sweep(dep, flows, k, heuristics())
		if err != nil {
			t.Fatal(err)
		}
		shared, err := SweepOpts(dep, flows, k, heuristics(), Options{Context: ctx, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(plain) != len(shared) {
			t.Fatalf("k=%d: %d vs %d cases", k, len(plain), len(shared))
		}
		for i := range plain {
			for _, cases := range [][]*CaseResult{plain, shared} {
				for _, rep := range cases[i].Reports {
					rep.Runtime = 0
				}
			}
			if !reflect.DeepEqual(plain[i], shared[i]) {
				t.Errorf("k=%d case %d (%s): shared-context result differs", k, i, plain[i].Label)
			}
		}
	}
}
