package eval

import (
	"reflect"
	"testing"

	"pmedic/internal/scenario"
)

// TestSweepDeterminism is the parallel engine's acceptance gate: a sweep must
// produce the same CaseResult slice — same case order, same instances, same
// reports, same cached statistics — no matter how many workers run it, and
// repeated parallel runs must agree with each other. Only the wall-clock
// Runtime fields are exempt, and they are zeroed before comparing.
func TestSweepDeterminism(t *testing.T) {
	dep, flows := fixtures(t)
	run := func(workers int) []*CaseResult {
		t.Helper()
		cases, err := SweepOpts(dep, flows, 2, heuristics(), Options{Workers: workers})
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		for _, c := range cases {
			for _, rep := range c.Reports {
				rep.Runtime = 0
			}
		}
		return cases
	}

	sequential := run(1)
	parallel := run(8)
	parallelAgain := run(8)

	if len(sequential) != 15 {
		t.Fatalf("2-failure sweep produced %d cases, want 15", len(sequential))
	}
	for i := range sequential {
		if !reflect.DeepEqual(sequential[i], parallel[i]) {
			t.Errorf("case %d (%s): Workers=1 and Workers=8 results differ", i, sequential[i].Label)
		}
		if !reflect.DeepEqual(parallel[i], parallelAgain[i]) {
			t.Errorf("case %d (%s): two Workers=8 runs differ", i, parallel[i].Label)
		}
	}
}

// TestSweepOptsSharedContext reuses one context across sweeps of different k
// and checks the engine against the context-free path.
func TestSweepOptsSharedContext(t *testing.T) {
	dep, flows := fixtures(t)
	ctx, err := scenario.NewContext(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 2; k++ {
		plain, err := Sweep(dep, flows, k, heuristics())
		if err != nil {
			t.Fatal(err)
		}
		shared, err := SweepOpts(dep, flows, k, heuristics(), Options{Context: ctx, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(plain) != len(shared) {
			t.Fatalf("k=%d: %d vs %d cases", k, len(plain), len(shared))
		}
		for i := range plain {
			for _, cases := range [][]*CaseResult{plain, shared} {
				for _, rep := range cases[i].Reports {
					rep.Runtime = 0
				}
			}
			if !reflect.DeepEqual(plain[i], shared[i]) {
				t.Errorf("k=%d case %d (%s): shared-context result differs", k, i, plain[i].Label)
			}
		}
	}
}
