package eval

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

func fixtures(t *testing.T) (*topo.Deployment, *flow.Set) {
	t.Helper()
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dep, flows
}

func heuristics() []Algorithm {
	return []Algorithm{
		{Name: "PM", Run: func(inst *scenario.Instance) (*core.Solution, error) {
			return core.PM(inst.Problem)
		}},
		{Name: "RetroFlow", Run: func(inst *scenario.Instance) (*core.Solution, error) {
			return core.RetroFlow(inst.Problem)
		}},
		{Name: "PG", Run: func(inst *scenario.Instance) (*core.Solution, error) {
			return core.PG(inst.Problem)
		}},
	}
}

func TestQuartiles(t *testing.T) {
	box := Quartiles([]int{1, 2, 3, 4, 5})
	if box.Min != 1 || box.Max != 5 || box.Median != 3 || box.Q1 != 2 || box.Q3 != 4 {
		t.Fatalf("box = %+v", box)
	}
	if box.N != 5 {
		t.Fatalf("N = %d", box.N)
	}
}

func TestQuartilesInterpolation(t *testing.T) {
	box := Quartiles([]int{0, 10})
	if box.Median != 5 || box.Q1 != 2.5 || box.Q3 != 7.5 {
		t.Fatalf("box = %+v", box)
	}
}

func TestQuartilesDegenerate(t *testing.T) {
	if box := Quartiles(nil); box.N != 0 || box.Max != 0 {
		t.Fatalf("empty box = %+v", box)
	}
	box := Quartiles([]int{7})
	if box.Min != 7 || box.Median != 7 || box.Max != 7 {
		t.Fatalf("singleton box = %+v", box)
	}
}

func TestRunCaseProducesAllReports(t *testing.T) {
	dep, flows := fixtures(t)
	cr, err := RunCase(dep, flows, []int{3}, heuristics())
	if err != nil {
		t.Fatal(err)
	}
	if cr.Label != "(13)" {
		t.Fatalf("label = %q", cr.Label)
	}
	for _, name := range []string{"PM", "RetroFlow", "PG"} {
		if cr.Report(name) == nil {
			t.Fatalf("missing report for %s", name)
		}
	}
	if cr.Report("Nope") != nil {
		t.Fatal("unknown algorithm should have no report")
	}
}

func TestRunCaseNoResultTolerated(t *testing.T) {
	dep, flows := fixtures(t)
	algs := append(heuristics(), Algorithm{
		Name: "Flaky",
		Run: func(*scenario.Instance) (*core.Solution, error) {
			return nil, ErrNoResult
		},
	})
	cr, err := RunCase(dep, flows, []int{0}, algs)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Report("Flaky") != nil {
		t.Fatal("no-result algorithm must be absent from reports")
	}
}

func TestRunCasePropagatesHardErrors(t *testing.T) {
	dep, flows := fixtures(t)
	boom := errors.New("boom")
	algs := []Algorithm{{
		Name: "Broken",
		Run: func(*scenario.Instance) (*core.Solution, error) {
			return nil, boom
		},
	}}
	if _, err := RunCase(dep, flows, []int{0}, algs); !errors.Is(err, boom) {
		t.Fatalf("error = %v, want boom", err)
	}
}

func TestSweepCounts(t *testing.T) {
	dep, flows := fixtures(t)
	for k, want := range map[int]int{1: 6, 2: 15} {
		cases, err := Sweep(dep, flows, k, heuristics()[:1])
		if err != nil {
			t.Fatal(err)
		}
		if len(cases) != want {
			t.Fatalf("k=%d: %d cases, want %d", k, len(cases), want)
		}
	}
}

func TestMetricAccessors(t *testing.T) {
	dep, flows := fixtures(t)
	cr, err := RunCase(dep, flows, []int{3, 4}, heuristics())
	if err != nil {
		t.Fatal(err)
	}
	box, ok := cr.ProgBox("PM")
	if !ok || box.N == 0 {
		t.Fatal("ProgBox(PM) missing")
	}
	if _, ok := cr.ProgBox("Nope"); ok {
		t.Fatal("ProgBox for unknown algorithm should fail")
	}
	pct, ok := cr.TotalProgPctOf("RetroFlow", "RetroFlow")
	if !ok || math.Abs(pct-100) > 1e-9 {
		t.Fatalf("self-normalized pct = %v", pct)
	}
	pmPct, ok := cr.TotalProgPctOf("PM", "RetroFlow")
	if !ok || pmPct < 100 {
		t.Fatalf("PM pct of RetroFlow = %v, want > 100 in the headline case", pmPct)
	}
	fp, ok := cr.RecoveredFlowPct("PM")
	if !ok || fp <= 0 || fp > 100 {
		t.Fatalf("recovered flow pct = %v", fp)
	}
	sp, ok := cr.RecoveredSwitchPct("PM")
	if !ok || sp <= 0 || sp > 100 {
		t.Fatalf("recovered switch pct = %v", sp)
	}
	loads, ok := cr.ControllerLoadPct("PM")
	if !ok || len(loads) != cr.Instance.Problem.NumControllers {
		t.Fatalf("loads = %v", loads)
	}
	for _, pct := range loads {
		if pct < 0 || pct > 100+1e-9 {
			t.Fatalf("load pct %v out of range", pct)
		}
	}
	ov, ok := cr.PerFlowOverheadMs("PG")
	if !ok || ov <= 0 {
		t.Fatalf("PG overhead = %v", ov)
	}
	// PG's overhead must exceed PM's: middle-layer detour plus processing.
	pmOv, _ := cr.PerFlowOverheadMs("PM")
	if ov <= pmOv {
		t.Fatalf("PG per-flow overhead %v should exceed PM's %v", ov, pmOv)
	}
}

func TestRuntimeHelpers(t *testing.T) {
	dep, flows := fixtures(t)
	cases, err := Sweep(dep, flows, 1, heuristics())
	if err != nil {
		t.Fatal(err)
	}
	mean, n := MeanRuntime(cases, "PM")
	if n != len(cases) || mean <= 0 {
		t.Fatalf("MeanRuntime = %v over %d", mean, n)
	}
	if _, n := MeanRuntime(cases, "Nope"); n != 0 {
		t.Fatal("unknown algorithm should average over 0 cases")
	}
	pct, ok := cases[0].RuntimePct("PM", "PG")
	if !ok || pct <= 0 {
		t.Fatalf("RuntimePct = %v", pct)
	}
}

// TestQuartilesProperties checks ordering and bounding invariants on
// arbitrary integer samples.
func TestQuartilesProperties(t *testing.T) {
	prop := func(raw []int16) bool {
		values := make([]int, len(raw))
		lo, hi := math.MaxInt, math.MinInt
		for i, v := range raw {
			values[i] = int(v)
			if values[i] < lo {
				lo = values[i]
			}
			if values[i] > hi {
				hi = values[i]
			}
		}
		box := Quartiles(values)
		if len(values) == 0 {
			return box.N == 0
		}
		ordered := box.Min <= box.Q1 && box.Q1 <= box.Median &&
			box.Median <= box.Q3 && box.Q3 <= box.Max
		bounded := box.Min == float64(lo) && box.Max == float64(hi)
		return ordered && bounded && box.N == len(values)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
