package eval

// Revolving-door combination enumeration for the delta-sweep engine.
//
// scenario.Combinations emits the C(m, k) failure cases in lexicographic
// order — the order every result slice, plan-store index, and figure row is
// defined in. That order is hostile to incremental compilation: consecutive
// lexicographic combinations can differ in every position. The revolving-door
// Gray code (Nijenhuis & Wilf's algorithm, here in its recursive form) visits
// the same C(m, k) subsets in an order where adjacent subsets differ by
// exactly one element swapped — remove one controller, add another — which is
// the precondition for scenario.Context's delta-compile path to share almost
// all of its candidate-flow and pair bookkeeping between neighbors.
//
// The engine never reorders *results*: it compiles cases in revolving-door
// order but hands each instance to the caller under the case's original
// index, and LexRank is the deterministic bijection tying the two orders
// together. Ordering is therefore purely a performance hint; output stays
// byte-identical to a lexicographic scratch sweep.

// GrayCombinations returns all k-subsets of {0..m-1} (each sorted ascending)
// in revolving-door Gray order: the first subset is {0..k-1}, and every
// adjacent pair of subsets differs by exactly one swapped element
// (|symmetric difference| = 2). It enumerates exactly the subsets
// scenario.Combinations does, just in a different order; LexRank maps each
// one back to its lexicographic position.
func GrayCombinations(m, k int) [][]int {
	if k < 0 || k > m || m < 0 {
		return nil
	}
	return grayGen(m, k)
}

// grayGen is the recursive revolving-door construction:
//
//	R(n, k) = R(n-1, k) ++ reverse(R(n-1, k-1)) each ∪ {n-1}
//
// with R(n, 0) = [{}] and R(n, n) = [{0..n-1}]. The seam is a single swap:
// R(n-1, k) ends at {0..k-2, n-2} and reverse(R(n-1, k-1)) starts at
// {0..k-2}, so the first appended subset is {0..k-2, n-1}.
func grayGen(n, k int) [][]int {
	if k == 0 {
		return [][]int{{}}
	}
	if k == n {
		c := make([]int, n)
		for i := range c {
			c[i] = i
		}
		return [][]int{c}
	}
	out := grayGen(n-1, k)
	tail := grayGen(n-1, k-1)
	for i := len(tail) - 1; i >= 0; i-- {
		c := make([]int, 0, k)
		c = append(c, tail[i]...)
		c = append(c, n-1)
		out = append(out, c)
	}
	return out
}

// LexRank returns the position of the sorted combination c (a subset of
// {0..m-1}) in the lexicographic enumeration order of scenario.Combinations:
// the combinadic rank Σ over positions of the subsets skipped by choosing
// c[i] instead of each smaller still-available value.
func LexRank(m int, c []int) int {
	k := len(c)
	rank := 0
	prev := -1
	for i, ci := range c {
		for v := prev + 1; v < ci; v++ {
			rank += binomial(m-1-v, k-1-i)
		}
		prev = ci
	}
	return rank
}

// binomial returns C(n, k) without overflow checks; callers bound n and k
// (the engine guards group sizes through binomialAtMost first).
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1
	for i := 1; i <= k; i++ {
		r = r * (n - k + i) / i
	}
	return r
}

// binomialAtMost returns C(n, k) if it is <= limit, and limit+1 otherwise,
// bailing out before the product can overflow. The engine uses it to test
// "is this size group a complete enumeration?" without materializing huge
// binomials for partial case lists.
func binomialAtMost(n, k, limit int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1
	for i := 1; i <= k; i++ {
		r = r * (n - k + i) / i
		if r > limit {
			return limit + 1
		}
	}
	return r
}

// bitKey packs a combination over {0..63} into a set bitmask. ok is false
// when an element is out of range or repeated (such combos fail validation
// later anyway; the planner just leaves them where they are).
func bitKey(c []int) (uint64, bool) {
	var key uint64
	for _, v := range c {
		if v < 0 || v >= 64 {
			return 0, false
		}
		b := uint64(1) << uint(v)
		if key&b != 0 {
			return 0, false
		}
		key |= b
	}
	return key, true
}

// compileOrder plans the order in which the delta engine compiles combos: a
// permutation of indices grouped by failure-set size (groups keep their order
// of first appearance, so CombinationsUpTo's size-ascending layout is
// preserved), with every complete C(m, s) size group re-sequenced into
// revolving-door order. Adjacent compiled cases then differ by one swapped
// controller almost everywhere — the only multi-swap steps are the seams
// between size groups and between workers' chain boundaries. Results are
// unaffected: the engine still reports each case under its original index,
// so the order only decides how much work each delta step can share.
func compileOrder(m int, combos [][]int) []int {
	bySize := make(map[int][]int)
	var sizes []int
	for idx, c := range combos {
		s := len(c)
		if _, ok := bySize[s]; !ok {
			sizes = append(sizes, s)
		}
		bySize[s] = append(bySize[s], idx)
	}
	order := make([]int, 0, len(combos))
	for _, s := range sizes {
		order = append(order, grayReorder(m, s, bySize[s], combos)...)
	}
	return order
}

// grayReorder re-sequences one size group into revolving-door order when the
// group is a complete enumeration of C(m, s) distinct valid combinations;
// anything else (partial case lists, out-of-range or duplicate entries,
// m beyond bitmask range) keeps its given order — delta compilation is still
// correct there, it just shares less between neighbors.
func grayReorder(m, s int, group []int, combos [][]int) []int {
	if s <= 0 || s >= m || m > 64 {
		return group
	}
	if binomialAtMost(m, s, len(group)) != len(group) {
		return group
	}
	pos := make(map[uint64]int, len(group))
	for gi, idx := range group {
		key, ok := bitKey(combos[idx])
		if !ok {
			return group
		}
		if _, dup := pos[key]; dup {
			return group
		}
		pos[key] = gi
	}
	out := make([]int, 0, len(group))
	for _, c := range GrayCombinations(m, s) {
		key, _ := bitKey(c)
		if gi, ok := pos[key]; ok {
			out = append(out, group[gi])
		}
	}
	if len(out) != len(group) {
		// Distinct valid combos of size s but not the full enumeration —
		// unreachable given the count check above, kept as a safety net.
		return group
	}
	return out
}
