package eval

import (
	"errors"
	"fmt"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

// Cascading-failure model (the risk the paper cites from Yao et al.,
// ICNP'13): after a recovery, an active controller whose total control load
// — its own domain plus the recovery sessions charged to it — exceeds a
// trigger fraction of its capacity fails in the next round, the recovery is
// recomputed for the enlarged failure set, and so on until the system is
// stable or nothing survives. Switch-level recovery concentrates whole-γ
// loads and is correspondingly more cascade-prone than per-flow recovery.

// CascadeRound is one iteration of the cascade.
type CascadeRound struct {
	// Failed is the cumulative failed controller set entering the round.
	Failed []int
	// Report is the recovery outcome for that set (nil if the algorithm
	// returned ErrNoResult).
	Report *core.Report
	// Overloaded lists active controllers pushed past the trigger by this
	// round's recovery; they fail before the next round.
	Overloaded []int
}

// CascadeResult is a full episode.
type CascadeResult struct {
	Rounds []CascadeRound
	// Collapsed reports that the cascade consumed all controllers.
	Collapsed bool
}

// ErrBadTrigger reports an out-of-range cascade trigger.
var ErrBadTrigger = errors.New("eval: cascade trigger must be in (0, 1]")

// Cascade simulates a cascading-failure episode starting from the initial
// failed set, recomputing the recovery with alg each round. trigger is the
// load fraction (of total capacity) beyond which an active controller fails.
func Cascade(
	dep *topo.Deployment,
	flows *flow.Set,
	initial []int,
	alg Algorithm,
	trigger float64,
) (*CascadeResult, error) {
	if trigger <= 0 || trigger > 1 {
		return nil, fmt.Errorf("%w: %v", ErrBadTrigger, trigger)
	}
	// One context serves every round, and one delta chain compiles them:
	// the failed set only ever grows, so each round patches the previous
	// round's candidate bookkeeping instead of re-gathering it
	// (scenario.Context.BuildDeltaCase with a grow-only diff).
	ctx, err := scenario.NewContext(dep, flows)
	if err != nil {
		return nil, fmt.Errorf("eval: cascade: %w", err)
	}
	st := &scenario.DeltaState{}
	res := &CascadeResult{}
	failed := append([]int(nil), initial...)
	for {
		if len(failed) >= len(dep.Controllers) {
			res.Collapsed = true
			return res, nil
		}
		inst, err := ctx.BuildDeltaCase(failed, st)
		if err != nil {
			return nil, fmt.Errorf("eval: cascade round %d: %w", len(res.Rounds), err)
		}
		round := CascadeRound{Failed: append([]int(nil), inst.Failed...)}
		sol, err := alg.Run(inst)
		if err != nil && !errors.Is(err, ErrNoResult) {
			return nil, fmt.Errorf("eval: cascade round %d: %s: %w", len(res.Rounds), alg.Name, err)
		}
		if err == nil {
			rep, err := inst.Evaluate(sol)
			if err != nil {
				return nil, fmt.Errorf("eval: cascade round %d: %w", len(res.Rounds), err)
			}
			round.Report = rep
			// Total load per active controller: own domain + recovery.
			for jj, j := range inst.Active {
				own := dep.Controllers[j].Capacity - inst.Problem.Rest[jj]
				total := own + rep.ControllerLoad[jj]
				if float64(total) > trigger*float64(dep.Controllers[j].Capacity) {
					round.Overloaded = append(round.Overloaded, j)
				}
			}
		}
		res.Rounds = append(res.Rounds, round)
		if len(round.Overloaded) == 0 {
			return res, nil
		}
		failed = append(failed, round.Overloaded...)
	}
}

// SurvivedRounds returns the number of rounds before the cascade stopped
// (equal to len(Rounds) when the system stabilized).
func (r *CascadeResult) SurvivedRounds() int { return len(r.Rounds) }

// FinalReport returns the last round's recovery report (nil if none).
func (r *CascadeResult) FinalReport() *core.Report {
	if len(r.Rounds) == 0 {
		return nil
	}
	return r.Rounds[len(r.Rounds)-1].Report
}
