// Package eval is the experiment harness: it runs recovery algorithms over
// failure cases, aggregates the paper's metrics (programmability box
// statistics, totals normalized to RetroFlow, recovery percentages,
// controller loads, per-flow communication overhead, computation time), and
// renders them as the rows/series of the paper's figures.
package eval

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

// Algorithm is a named recovery algorithm. Run may return ErrNoResult to
// indicate that no solution was found within its constraints/budget (the
// paper's "Optimal cannot always have results" cases).
type Algorithm struct {
	Name string
	Run  func(inst *scenario.Instance) (*core.Solution, error)
	// RunSeeded, when non-nil, replaces Run for cases evaluated by the
	// harness: it additionally receives the solutions of the algorithms that
	// ran earlier in the same case, keyed by name (absent when they reported
	// ErrNoResult). The Optimal comparator uses it to warm-start branch &
	// bound from the PM solution already computed for the case.
	RunSeeded func(inst *scenario.Instance, prior map[string]*core.Solution) (*core.Solution, error)
}

// run dispatches to RunSeeded when available, else Run.
func (a Algorithm) run(inst *scenario.Instance, prior map[string]*core.Solution) (*core.Solution, error) {
	if a.RunSeeded != nil {
		return a.RunSeeded(inst, prior)
	}
	return a.Run(inst)
}

// ErrNoResult marks an algorithm that produced no solution for a case;
// the harness records the absence instead of failing the whole sweep.
var ErrNoResult = errors.New("eval: no result")

// CaseResult holds every algorithm's report for one failure case.
type CaseResult struct {
	Label    string
	Failed   []int
	Instance *scenario.Instance
	// Reports maps algorithm name to its report; algorithms that returned
	// ErrNoResult are absent.
	Reports map[string]*core.Report
	// progBox caches per-algorithm box statistics, computed once when the
	// case is evaluated so the figure-rendering metric calls never re-sort
	// the per-flow programmability vector.
	progBox map[string]BoxStat
}

// Report returns the named algorithm's report, or nil when it has none.
func (c *CaseResult) Report(name string) *core.Report {
	return c.Reports[name]
}

// SweepMode selects the sweep engine's case-compilation strategy.
type SweepMode int

const (
	// SweepDelta — the default — compiles cases incrementally: the engine
	// re-sequences each complete C(m, k) block into revolving-door Gray
	// order (combos.go), partitions it into per-worker chains, and patches
	// each case out of its chain predecessor via
	// scenario.Context.BuildDeltaCase while the previous case is still
	// being solved (the compile and solve stages of a chain are pipelined).
	// Output is byte-identical to SweepScratch at any worker count.
	SweepDelta SweepMode = iota
	// SweepScratch compiles every case independently with
	// scenario.Context.Build over a plain worker pool — the pre-delta
	// reference engine, kept as the escape hatch (`pmsim -sweep-mode
	// scratch`) and as the baseline the delta≡scratch equivalence tests
	// and BenchmarkSweepDelta compare against.
	SweepScratch
)

// String names the mode the way the -sweep-mode flags spell it.
func (m SweepMode) String() string {
	if m == SweepScratch {
		return "scratch"
	}
	return "delta"
}

// ParseSweepMode parses a -sweep-mode flag value ("delta" or "scratch").
func ParseSweepMode(s string) (SweepMode, error) {
	switch s {
	case "delta":
		return SweepDelta, nil
	case "scratch":
		return SweepScratch, nil
	default:
		return SweepDelta, fmt.Errorf("eval: unknown sweep mode %q (want delta or scratch)", s)
	}
}

// Options tunes Sweep's evaluation engine. The zero value selects the
// defaults: one worker per available CPU, delta-mode case compilation, and a
// fresh scenario context.
type Options struct {
	// Workers bounds the number of failure cases evaluated concurrently.
	// 0 selects runtime.GOMAXPROCS(0); 1 forces a single chain, on which
	// cases solve strictly in compile order (in delta mode the next case's
	// compilation still overlaps the current solve). Whatever the worker
	// count, the returned slice is in exact lexicographic case order and
	// its contents are identical (up to wall-clock Runtime fields) to a
	// sequential run.
	Workers int
	// Mode selects delta (default) or scratch case compilation; results
	// are byte-identical either way.
	Mode SweepMode
	// Context, when non-nil, supplies the precomputed failure-independent
	// scenario state; nil builds one for the sweep. Share one Context across
	// repeated sweeps over the same deployment and workload.
	Context *scenario.Context
}

// Sweep runs every algorithm over every failure combination of size k and
// returns one CaseResult per case, in lexicographic case order, with the
// default Options.
func Sweep(dep *topo.Deployment, flows *flow.Set, k int, algs []Algorithm) ([]*CaseResult, error) {
	return SweepOpts(dep, flows, k, algs, Options{})
}

// SweepOpts is Sweep with explicit engine options: the cases fan out over a
// bounded worker pool sharing one immutable scenario.Context, and the results
// land in lexicographic case order regardless of completion order.
func SweepOpts(dep *topo.Deployment, flows *flow.Set, k int, algs []Algorithm, opts Options) ([]*CaseResult, error) {
	ctx := opts.Context
	if ctx == nil {
		var err error
		ctx, err = scenario.NewContext(dep, flows)
		if err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
	}
	combos := scenario.Combinations(len(dep.Controllers), k)
	results := make([]*CaseResult, len(combos))
	err := ForEachCaseMode(ctx, combos, opts.Workers, opts.Mode, func(idx int, inst *scenario.Instance) error {
		cr, err := evalCase(inst, combos[idx], algs)
		if err != nil {
			return err
		}
		results[idx] = cr
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// ForEachCase compiles every failure combination off the shared context and
// calls fn with the compiled instance, using the default delta engine
// (ForEachCaseMode with SweepDelta). fn runs concurrently for distinct
// indices and must only touch state it owns (writing to its own slot of a
// results slice is the intended pattern). Errors are deterministic
// regardless of scheduling: the failing case with the lowest index wins.
// workers <= 0 selects one worker per available CPU. The plan-store
// compiler and the sweep harness share this engine.
func ForEachCase(ctx *scenario.Context, combos [][]int, workers int, fn func(idx int, inst *scenario.Instance) error) error {
	return ForEachCaseMode(ctx, combos, workers, SweepDelta, fn)
}

// ForEachCaseMode is ForEachCase with an explicit compilation mode. Both
// modes call fn with instances that are byte-identical to
// scenario.Context.Build's, under the case's original index, so results are
// independent of mode and worker count.
func ForEachCaseMode(ctx *scenario.Context, combos [][]int, workers int, mode SweepMode, fn func(idx int, inst *scenario.Instance) error) error {
	if len(combos) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(combos) {
		workers = len(combos)
	}
	if mode == SweepScratch {
		return forEachCaseScratch(ctx, combos, workers, fn)
	}
	return forEachCaseDelta(ctx, combos, workers, fn)
}

// caseErrTracker implements the engine's deterministic error contract: among
// every case that errored, the lowest original index wins, regardless of
// scheduling; once any error lands, the remaining queue drains without work.
type caseErrTracker struct {
	mu       sync.Mutex
	firstErr error
	errIdx   int
	failed   atomic.Bool
}

func (tr *caseErrTracker) record(idx int, err error) {
	tr.mu.Lock()
	if tr.firstErr == nil || idx < tr.errIdx {
		tr.firstErr, tr.errIdx = err, idx
	}
	tr.mu.Unlock()
	tr.failed.Store(true)
}

// forEachCaseScratch is the pre-delta reference engine: a plain worker pool
// where each worker compiles its case from scratch and solves it.
func forEachCaseScratch(ctx *scenario.Context, combos [][]int, workers int, fn func(idx int, inst *scenario.Instance) error) error {
	run := func(idx int) error {
		inst, err := ctx.Build(combos[idx])
		if err != nil {
			return fmt.Errorf("eval: case %v: %w", combos[idx], err)
		}
		return fn(idx, inst)
	}
	if workers <= 1 {
		for idx := range combos {
			if err := run(idx); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		wg sync.WaitGroup
		tr caseErrTracker
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if tr.failed.Load() {
					continue
				}
				if err := run(idx); err != nil {
					tr.record(idx, err)
				}
			}
		}()
	}
	for idx := range combos {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	return tr.firstErr
}

// deltaStatePool recycles chain compilation state across sweeps; repeated
// sweeps over the same context reuse the arenas (and even warm-start their
// first diff from wherever the previous chain left off).
var deltaStatePool = sync.Pool{New: func() any { return new(scenario.DeltaState) }}

// compiledCase is one unit flowing through a chain's compile→solve pipe.
type compiledCase struct {
	idx  int
	inst *scenario.Instance
}

// forEachCaseDelta is the pipelined two-stage delta engine. The case list is
// re-sequenced into revolving-door compile order (compileOrder), statically
// partitioned into `workers` contiguous chains — a deterministic split, so
// which cases share a delta chain never depends on scheduling — and each
// chain runs two goroutines: a compiler that patches case i+1 out of case i
// via scenario.Context.BuildDeltaCase, and a solver draining a buffered
// channel, so compilation of the next case overlaps the solve of the
// current one. fn still receives each case's original index; the Gray
// ordering is invisible in the results.
func forEachCaseDelta(ctx *scenario.Context, combos [][]int, workers int, fn func(idx int, inst *scenario.Instance) error) error {
	order := compileOrder(len(ctx.Dep.Controllers), combos)

	var (
		wg sync.WaitGroup
		tr caseErrTracker
	)
	n := len(order)
	for c := 0; c < workers; c++ {
		lo, hi := c*n/workers, (c+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(chain []int) {
			defer wg.Done()
			pipe := make(chan compiledCase, 1)
			var compiler sync.WaitGroup
			compiler.Add(1)
			go func() {
				defer compiler.Done()
				defer close(pipe)
				st := deltaStatePool.Get().(*scenario.DeltaState)
				defer deltaStatePool.Put(st)
				for _, idx := range chain {
					if tr.failed.Load() {
						return
					}
					inst, err := ctx.BuildDeltaCase(combos[idx], st)
					if err != nil {
						tr.record(idx, fmt.Errorf("eval: case %v: %w", combos[idx], err))
						return
					}
					pipe <- compiledCase{idx, inst}
				}
			}()
			for cc := range pipe {
				if tr.failed.Load() {
					continue
				}
				if err := fn(cc.idx, cc.inst); err != nil {
					tr.record(cc.idx, err)
				}
			}
			compiler.Wait()
		}(order[lo:hi])
	}
	wg.Wait()
	return tr.firstErr
}

// RunCase builds the instance for one failure combination and runs every
// algorithm on it.
func RunCase(dep *topo.Deployment, flows *flow.Set, failed []int, algs []Algorithm) (*CaseResult, error) {
	ctx, err := scenario.NewContext(dep, flows)
	if err != nil {
		return nil, fmt.Errorf("eval: case %v: %w", failed, err)
	}
	return runCase(ctx, failed, algs)
}

// runCase compiles one failure case off the shared context and evaluates
// every algorithm on it. It touches only the immutable context plus state it
// allocates itself, so any number of runCase calls may run concurrently.
func runCase(ctx *scenario.Context, failed []int, algs []Algorithm) (*CaseResult, error) {
	inst, err := ctx.Build(failed)
	if err != nil {
		return nil, fmt.Errorf("eval: case %v: %w", failed, err)
	}
	return evalCase(inst, failed, algs)
}

// evalCase evaluates every algorithm on one compiled instance.
func evalCase(inst *scenario.Instance, failed []int, algs []Algorithm) (*CaseResult, error) {
	cr := &CaseResult{
		Label:    inst.Label(),
		Failed:   append([]int(nil), failed...),
		Instance: inst,
		Reports:  make(map[string]*core.Report, len(algs)),
		progBox:  make(map[string]BoxStat, len(algs)),
	}
	prior := make(map[string]*core.Solution, len(algs))
	for _, alg := range algs {
		sol, err := alg.run(inst, prior)
		if errors.Is(err, ErrNoResult) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("eval: case %v: %s: %w", failed, alg.Name, err)
		}
		prior[alg.Name] = sol
		rep, err := inst.Evaluate(sol)
		if err != nil {
			return nil, fmt.Errorf("eval: case %v: %s: %w", failed, alg.Name, err)
		}
		cr.Reports[alg.Name] = rep
		cr.progBox[alg.Name] = Quartiles(rep.FlowProg)
	}
	return cr, nil
}

// BoxStat summarizes a distribution the way the paper's box plots do.
type BoxStat struct {
	Min, Q1, Median, Q3, Max float64
	N                        int
}

// Quartiles computes box statistics with linear interpolation between order
// statistics (the convention of matplotlib's boxplot, which the paper uses).
func Quartiles(values []int) BoxStat {
	if len(values) == 0 {
		return BoxStat{}
	}
	xs := make([]float64, len(values))
	for i, v := range values {
		xs[i] = float64(v)
	}
	sort.Float64s(xs)
	quantile := func(q float64) float64 {
		pos := q * float64(len(xs)-1)
		lo := int(pos)
		if lo >= len(xs)-1 {
			return xs[len(xs)-1]
		}
		frac := pos - float64(lo)
		return xs[lo]*(1-frac) + xs[lo+1]*frac
	}
	return BoxStat{
		Min:    xs[0],
		Q1:     quantile(0.25),
		Median: quantile(0.5),
		Q3:     quantile(0.75),
		Max:    xs[len(xs)-1],
		N:      len(xs),
	}
}

// ProgBox returns the box statistics of per-flow programmability for one
// algorithm in one case (Figs. 4(a), 5(a), 6(a)). Unrecovered flows
// contribute zeros, as in the paper's RetroFlow whiskers. Cases produced by
// Sweep serve the precomputed statistics; hand-built CaseResults fall back
// to computing them on the spot.
func (c *CaseResult) ProgBox(name string) (BoxStat, bool) {
	if box, ok := c.progBox[name]; ok {
		return box, true
	}
	rep := c.Reports[name]
	if rep == nil {
		return BoxStat{}, false
	}
	return Quartiles(rep.FlowProg), true
}

// TotalProgPctOf returns an algorithm's total programmability normalized to
// a baseline algorithm's, in percent (Figs. 4(b), 5(b), 6(b)). ok is false
// when either report is missing or the baseline total is zero.
func (c *CaseResult) TotalProgPctOf(name, baseline string) (float64, bool) {
	a, b := c.Reports[name], c.Reports[baseline]
	if a == nil || b == nil || b.TotalProg == 0 {
		return 0, false
	}
	return 100 * float64(a.TotalProg) / float64(b.TotalProg), true
}

// RecoveredFlowPct returns the percentage of offline flows an algorithm
// recovered (Figs. 4(c), 5(c), 6(c)). The denominator is the recoverable
// offline flow count of the instance.
func (c *CaseResult) RecoveredFlowPct(name string) (float64, bool) {
	rep := c.Reports[name]
	if rep == nil {
		return 0, false
	}
	total := c.Instance.Problem.NumFlows
	if total == 0 {
		return 0, false
	}
	return 100 * float64(rep.RecoveredFlows) / float64(total), true
}

// RecoveredSwitchPct returns the percentage of offline switches recovered
// (Figs. 5(d), 6(d)).
func (c *CaseResult) RecoveredSwitchPct(name string) (float64, bool) {
	rep := c.Reports[name]
	if rep == nil {
		return 0, false
	}
	total := len(c.Instance.Switches)
	if total == 0 {
		return 0, false
	}
	return 100 * float64(rep.RecoveredSwitches) / float64(total), true
}

// ControllerLoadPct returns per-active-controller capacity utilization in
// percent of the residual capacity (Figs. 5(e), 6(e)), ordered like
// Instance.Active.
func (c *CaseResult) ControllerLoadPct(name string) ([]float64, bool) {
	rep := c.Reports[name]
	if rep == nil {
		return nil, false
	}
	p := c.Instance.Problem
	out := make([]float64, len(rep.ControllerLoad))
	for j, load := range rep.ControllerLoad {
		if p.Rest[j] > 0 {
			out[j] = 100 * float64(load) / float64(p.Rest[j])
		}
	}
	return out, true
}

// PerFlowOverheadMs returns the per-flow communication overhead metric
// (Figs. 4(d), 5(f), 6(f)).
func (c *CaseResult) PerFlowOverheadMs(name string) (float64, bool) {
	rep := c.Reports[name]
	if rep == nil {
		return 0, false
	}
	return rep.PerFlowOverheadMs, true
}

// RuntimePct returns an algorithm's computation time as a percentage of the
// baseline's (Fig. 7).
func (c *CaseResult) RuntimePct(name, baseline string) (float64, bool) {
	a, b := c.Reports[name], c.Reports[baseline]
	if a == nil || b == nil || b.Runtime <= 0 {
		return 0, false
	}
	return 100 * float64(a.Runtime) / float64(b.Runtime), true
}

// MeanRuntime averages an algorithm's runtime over the cases where it has a
// result.
func MeanRuntime(cases []*CaseResult, name string) (time.Duration, int) {
	var sum time.Duration
	n := 0
	for _, c := range cases {
		if rep := c.Reports[name]; rep != nil {
			sum += rep.Runtime
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / time.Duration(n), n
}
