package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Metric renders one algorithm's cell for one case; ok=false produces an
// empty cell (the algorithm had no result for the case).
type Metric func(c *CaseResult, algorithm string) (string, bool)

// WriteCSV emits one row per case and one column per algorithm under a
// header, using metric for the cells — the machine-readable form of a
// figure panel, ready for plotting.
func WriteCSV(w io.Writer, cases []*CaseResult, algorithms []string, metric Metric) error {
	cw := csv.NewWriter(w)
	header := append([]string{"case"}, algorithms...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("eval: write csv header: %w", err)
	}
	for _, c := range cases {
		row := make([]string, 0, len(algorithms)+1)
		row = append(row, c.Label)
		for _, alg := range algorithms {
			cell, ok := metric(c, alg)
			if !ok {
				cell = ""
			}
			row = append(row, cell)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("eval: write csv row %s: %w", c.Label, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// MetricProgBox renders min/q1/median/q3/max (semicolon-separated) — the
// box-plot panels (a).
func MetricProgBox() Metric {
	return func(c *CaseResult, alg string) (string, bool) {
		box, ok := c.ProgBox(alg)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("%g;%g;%g;%g;%g", box.Min, box.Q1, box.Median, box.Q3, box.Max), true
	}
}

// MetricTotalProgPct renders total programmability as a percentage of the
// baseline algorithm — the (b) panels.
func MetricTotalProgPct(baseline string) Metric {
	return func(c *CaseResult, alg string) (string, bool) {
		pct, ok := c.TotalProgPctOf(alg, baseline)
		if !ok {
			return "", false
		}
		return formatFloat(pct), true
	}
}

// MetricRecoveredFlowPct renders the (c) panels.
func MetricRecoveredFlowPct() Metric {
	return func(c *CaseResult, alg string) (string, bool) {
		pct, ok := c.RecoveredFlowPct(alg)
		if !ok {
			return "", false
		}
		return formatFloat(pct), true
	}
}

// MetricRecoveredSwitchPct renders the (d) panels.
func MetricRecoveredSwitchPct() Metric {
	return func(c *CaseResult, alg string) (string, bool) {
		pct, ok := c.RecoveredSwitchPct(alg)
		if !ok {
			return "", false
		}
		return formatFloat(pct), true
	}
}

// MetricControllerLoad renders per-controller used/residual pairs
// (semicolon-separated) — the (e) panels.
func MetricControllerLoad() Metric {
	return func(c *CaseResult, alg string) (string, bool) {
		rep := c.Report(alg)
		if rep == nil {
			return "", false
		}
		out := ""
		for jj, load := range rep.ControllerLoad {
			if jj > 0 {
				out += ";"
			}
			out += fmt.Sprintf("%d/%d", load, c.Instance.Problem.Rest[jj])
		}
		return out, true
	}
}

// MetricPerFlowOverhead renders the (d)/(f) overhead panels in ms.
func MetricPerFlowOverhead() Metric {
	return func(c *CaseResult, alg string) (string, bool) {
		ms, ok := c.PerFlowOverheadMs(alg)
		if !ok {
			return "", false
		}
		return formatFloat(ms), true
	}
}

// MetricRuntimeMicros renders computation time in microseconds (Fig. 7's
// ingredient).
func MetricRuntimeMicros() Metric {
	return func(c *CaseResult, alg string) (string, bool) {
		rep := c.Report(alg)
		if rep == nil {
			return "", false
		}
		return strconv.FormatInt(rep.Runtime.Microseconds(), 10), true
	}
}
