package eval

import (
	"fmt"
	"slices"
	"testing"

	"pmedic/internal/scenario"
)

// TestGrayCombinations property-tests the revolving-door enumerator over a
// grid of (m, k): every C(m, k) subset appears exactly once, every adjacent
// pair differs by exactly one swapped element, and LexRank is a bijection
// onto scenario.Combinations' lexicographic order.
func TestGrayCombinations(t *testing.T) {
	for m := 0; m <= 10; m++ {
		for k := 0; k <= m; k++ {
			gray := GrayCombinations(m, k)
			lex := scenario.Combinations(m, k)
			if len(gray) != len(lex) {
				t.Fatalf("m=%d k=%d: %d gray combos, want %d", m, k, len(gray), len(lex))
			}
			seen := make(map[string]bool, len(gray))
			rankSeen := make([]bool, len(lex))
			for i, c := range gray {
				if len(c) != k || !sortedDistinctInRange(c, m) {
					t.Fatalf("m=%d k=%d: combo %v is not a sorted k-subset of [0,%d)", m, k, c, m)
				}
				key := fmt.Sprint(c)
				if seen[key] {
					t.Fatalf("m=%d k=%d: combo %v emitted twice", m, k, c)
				}
				seen[key] = true
				// Adjacency: one element out, one in.
				if i > 0 && symDiff(gray[i-1], c) != 2 {
					t.Fatalf("m=%d k=%d: combos %v -> %v differ by %d elements, want one swap",
						m, k, gray[i-1], c, symDiff(gray[i-1], c)/2)
				}
				// LexRank is a bijection onto the lexicographic enumeration.
				r := LexRank(m, c)
				if r < 0 || r >= len(lex) || rankSeen[r] {
					t.Fatalf("m=%d k=%d: LexRank(%v) = %d invalid or repeated", m, k, c, r)
				}
				rankSeen[r] = true
				if !slices.Equal(lex[r], c) {
					t.Fatalf("m=%d k=%d: LexRank(%v) = %d but Combinations[%d] = %v", m, k, c, r, r, lex[r])
				}
			}
			// Canonical endpoints of the revolving-door order.
			if k >= 1 && k < m {
				first, last := gray[0], gray[len(gray)-1]
				if LexRank(m, first) != 0 {
					t.Errorf("m=%d k=%d: first combo %v is not {0..k-1}", m, k, first)
				}
				if last[len(last)-1] != m-1 {
					t.Errorf("m=%d k=%d: last combo %v does not end at %d", m, k, last, m-1)
				}
			}
		}
	}
}

func sortedDistinctInRange(c []int, m int) bool {
	for i, v := range c {
		if v < 0 || v >= m || (i > 0 && v <= c[i-1]) {
			return false
		}
	}
	return true
}

// symDiff returns |a Δ b| for sorted slices.
func symDiff(a, b []int) int {
	i, j, d := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			i++
			d++
		default:
			j++
			d++
		}
	}
	return d + (len(a) - i) + (len(b) - j)
}

// TestCompileOrder checks the engine's compile planner: the order is always
// a permutation of the case indices; complete lexicographic blocks come back
// Gray-adjacent; size groups keep CombinationsUpTo's size-ascending layout;
// and partial or malformed case lists pass through untouched.
func TestCompileOrder(t *testing.T) {
	isPerm := func(t *testing.T, order []int, n int) {
		t.Helper()
		if len(order) != n {
			t.Fatalf("order has %d entries, want %d", len(order), n)
		}
		seen := make([]bool, n)
		for _, idx := range order {
			if idx < 0 || idx >= n || seen[idx] {
				t.Fatalf("order %v is not a permutation of [0,%d)", order, n)
			}
			seen[idx] = true
		}
	}

	t.Run("full enumeration is gray-adjacent", func(t *testing.T) {
		for _, mk := range [][2]int{{6, 2}, {6, 3}, {8, 4}, {5, 1}} {
			m, k := mk[0], mk[1]
			combos := scenario.Combinations(m, k)
			order := compileOrder(m, combos)
			isPerm(t, order, len(combos))
			for i := 1; i < len(order); i++ {
				if d := symDiff(combos[order[i-1]], combos[order[i]]); d != 2 && k > 1 {
					t.Fatalf("m=%d k=%d: compile neighbors %v -> %v differ by %d", m, k,
						combos[order[i-1]], combos[order[i]], d)
				}
			}
		}
	})

	t.Run("size groups stay size-ascending", func(t *testing.T) {
		combos := scenario.CombinationsUpTo(6, 3)
		order := compileOrder(6, combos)
		isPerm(t, order, len(combos))
		lastSize := 0
		for _, idx := range order {
			if s := len(combos[idx]); s < lastSize {
				t.Fatalf("size %d scheduled after size %d", s, lastSize)
			} else {
				lastSize = s
			}
		}
	})

	t.Run("partial and malformed lists pass through", func(t *testing.T) {
		for _, combos := range [][][]int{
			{{0, 2}, {1, 3}, {0, 5}}, // partial: not all C(6,2)
			{{0, 0}, {1, 2}},         // duplicate element
			{{-1, 2}, {1, 2}},        // out of range
			{{0, 1}, {0, 1}},         // repeated combo
		} {
			order := compileOrder(6, combos)
			isPerm(t, order, len(combos))
			for i, idx := range order {
				if idx != i {
					t.Fatalf("list %v reordered to %v; want pass-through", combos, order)
				}
			}
		}
	})
}
