package eval

import (
	"testing"
	"time"

	"pmedic/internal/core"
)

// mkCase hand-builds a CaseResult whose reports carry only runtimes; nil
// durations mean the algorithm had no result for the case.
func mkCase(runtimes map[string]time.Duration) *CaseResult {
	cr := &CaseResult{Reports: make(map[string]*core.Report, len(runtimes))}
	for name, rt := range runtimes {
		cr.Reports[name] = &core.Report{Runtime: rt}
	}
	return cr
}

// TestMeanRuntimeTable pins MeanRuntime's contract on hand-built cases,
// including the zero-case and missing-algorithm paths.
func TestMeanRuntimeTable(t *testing.T) {
	tests := []struct {
		name     string
		cases    []*CaseResult
		alg      string
		wantMean time.Duration
		wantN    int
	}{
		{name: "no cases", cases: nil, alg: "PM", wantMean: 0, wantN: 0},
		{name: "empty slice", cases: []*CaseResult{}, alg: "PM", wantMean: 0, wantN: 0},
		{
			name:  "algorithm missing everywhere",
			cases: []*CaseResult{mkCase(map[string]time.Duration{"PM": 10})},
			alg:   "Optimal", wantMean: 0, wantN: 0,
		},
		{
			name: "mean over present cases only",
			cases: []*CaseResult{
				mkCase(map[string]time.Duration{"PM": 10 * time.Millisecond}),
				mkCase(map[string]time.Duration{"RetroFlow": 99 * time.Millisecond}),
				mkCase(map[string]time.Duration{"PM": 30 * time.Millisecond}),
			},
			alg: "PM", wantMean: 20 * time.Millisecond, wantN: 2,
		},
		{
			name:  "single case exact",
			cases: []*CaseResult{mkCase(map[string]time.Duration{"PM": 7 * time.Millisecond})},
			alg:   "PM", wantMean: 7 * time.Millisecond, wantN: 1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			mean, n := MeanRuntime(tt.cases, tt.alg)
			if mean != tt.wantMean || n != tt.wantN {
				t.Fatalf("MeanRuntime = (%v, %d), want (%v, %d)", mean, n, tt.wantMean, tt.wantN)
			}
		})
	}
}

// TestRuntimePctTable pins RuntimePct's contract, including the missing
// numerator/baseline and zero-baseline paths.
func TestRuntimePctTable(t *testing.T) {
	cr := mkCase(map[string]time.Duration{
		"PM":      25 * time.Millisecond,
		"Optimal": 100 * time.Millisecond,
		"Frozen":  0,
	})
	tests := []struct {
		name          string
		alg, baseline string
		wantPct       float64
		wantOK        bool
	}{
		{name: "quarter of baseline", alg: "PM", baseline: "Optimal", wantPct: 25, wantOK: true},
		{name: "equal to itself", alg: "Optimal", baseline: "Optimal", wantPct: 100, wantOK: true},
		{name: "missing algorithm", alg: "Nope", baseline: "Optimal", wantOK: false},
		{name: "missing baseline", alg: "PM", baseline: "Nope", wantOK: false},
		{name: "zero-runtime baseline", alg: "PM", baseline: "Frozen", wantOK: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pct, ok := cr.RuntimePct(tt.alg, tt.baseline)
			if ok != tt.wantOK {
				t.Fatalf("RuntimePct(%q, %q) ok = %v, want %v", tt.alg, tt.baseline, ok, tt.wantOK)
			}
			if ok && pct != tt.wantPct {
				t.Fatalf("RuntimePct(%q, %q) = %v, want %v", tt.alg, tt.baseline, pct, tt.wantPct)
			}
			if !ok && pct != 0 {
				t.Fatalf("RuntimePct(%q, %q) = %v with ok=false, want 0", tt.alg, tt.baseline, pct)
			}
		})
	}
}
