package graphalg

import (
	"math"
	"testing"

	"pmedic/internal/topo"
)

func TestBetweennessStar(t *testing.T) {
	// A star: the center lies on every leaf-to-leaf shortest path.
	g := &topo.Graph{}
	center := g.AddNode("c", 0, 0)
	for i := 0; i < 4; i++ {
		leaf := g.AddNode("l", 0, 0)
		if err := g.AddEdge(center, leaf); err != nil {
			t.Fatal(err)
		}
	}
	bc := Betweenness(g)
	if math.Abs(bc[center]-1) > 1e-9 {
		t.Fatalf("center betweenness = %v, want 1 (normalized)", bc[center])
	}
	for v := 1; v < g.NumNodes(); v++ {
		if bc[v] != 0 {
			t.Fatalf("leaf %d betweenness = %v, want 0", v, bc[v])
		}
	}
}

func TestBetweennessPath(t *testing.T) {
	// Path 0-1-2: node 1 carries the single 0<->2 pair.
	g := &topo.Graph{}
	for i := 0; i < 3; i++ {
		g.AddNode("n", 0, 0)
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	bc := Betweenness(g)
	// Normalization: (n-1)(n-2) = 2 ordered pairs; node 1 is on both.
	if math.Abs(bc[1]-1) > 1e-9 {
		t.Fatalf("middle betweenness = %v, want 1", bc[1])
	}
}

func TestBetweennessSplitsOverEqualPaths(t *testing.T) {
	// Diamond 0-1-3, 0-2-3: nodes 1 and 2 each carry half of 0<->3.
	g := &topo.Graph{}
	for i := 0; i < 4; i++ {
		g.AddNode("n", 0, 0)
	}
	for _, e := range [][2]topo.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	bc := Betweenness(g)
	// Ordered pairs: (0,3) and (3,0) -> each contributes 0.5 to both 1 and 2.
	// Normalization (n-1)(n-2) = 6.
	want := 1.0 / 6.0
	if math.Abs(bc[1]-want) > 1e-9 || math.Abs(bc[2]-want) > 1e-9 {
		t.Fatalf("bc = %v, want %v at nodes 1 and 2", bc, want)
	}
	if math.Abs(bc[1]-bc[2]) > 1e-12 {
		t.Fatal("symmetric nodes must tie")
	}
}

func TestBetweennessTinyGraphs(t *testing.T) {
	g := &topo.Graph{}
	if bc := Betweenness(g); len(bc) != 0 {
		t.Fatal("empty graph")
	}
	g.AddNode("a", 0, 0)
	g.AddNode("b", 0, 0)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	bc := Betweenness(g)
	if bc[0] != 0 || bc[1] != 0 {
		t.Fatalf("two-node betweenness = %v", bc)
	}
}

func TestTopBetweennessOnATT(t *testing.T) {
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	top := TopBetweenness(dep.Graph, 3)
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	// The evaluation topology is built around hub 13 (Chicago): it must be
	// the single most central node.
	if top[0] != 13 {
		t.Fatalf("most central node = %d, want the hub 13", top[0])
	}
	if TopBetweenness(dep.Graph, 0) == nil {
		t.Skip("k=0 returns empty slice")
	}
	if got := TopBetweenness(dep.Graph, 100); len(got) != dep.Graph.NumNodes() {
		t.Fatalf("k beyond n should clamp, got %d", len(got))
	}
}
