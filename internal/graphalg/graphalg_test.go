package graphalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"pmedic/internal/topo"
)

// line builds a path graph 0-1-2-...-(n-1).
func line(t *testing.T, n int) *topo.Graph {
	t.Helper()
	g := &topo.Graph{}
	for i := 0; i < n; i++ {
		g.AddNode("n", 0, float64(i))
	}
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(topo.NodeID(i), topo.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// diamond builds 0-1, 0-2, 1-3, 2-3 (two disjoint 2-hop paths 0->3).
func diamond(t *testing.T) *topo.Graph {
	t.Helper()
	g := &topo.Graph{}
	for i := 0; i < 4; i++ {
		g.AddNode("n", 0, 0)
	}
	for _, e := range [][2]topo.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestDijkstraLine(t *testing.T) {
	g := line(t, 5)
	tr, err := Dijkstra(g, 0, UnitWeight)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if tr.Dist[i] != float64(i) {
			t.Fatalf("dist[%d] = %v, want %d", i, tr.Dist[i], i)
		}
	}
	path, err := tr.PathTo(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 5 || path[0] != 0 || path[4] != 4 {
		t.Fatalf("path = %v", path)
	}
}

func TestDijkstraWeighted(t *testing.T) {
	g := diamond(t)
	// Make 0-1-3 cheaper than 0-2-3.
	w := func(a, b topo.NodeID) float64 {
		if (a == 0 && b == 2) || (a == 2 && b == 0) {
			return 10
		}
		return 1
	}
	tr, err := Dijkstra(g, 0, w)
	if err != nil {
		t.Fatal(err)
	}
	path, err := tr.PathTo(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []topo.NodeID{0, 1, 3}
	if len(path) != 3 || path[1] != want[1] {
		t.Fatalf("path = %v, want %v", path, want)
	}
	if tr.Dist[3] != 2 {
		t.Fatalf("dist = %v, want 2", tr.Dist[3])
	}
}

func TestDijkstraDeterministicTieBreak(t *testing.T) {
	g := diamond(t)
	tr, err := Dijkstra(g, 0, UnitWeight)
	if err != nil {
		t.Fatal(err)
	}
	// Both parents of 3 give dist 2; the tie-break prefers node 1.
	if tr.Parent[3] != 1 {
		t.Fatalf("parent of 3 = %d, want 1 (lower-numbered)", tr.Parent[3])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := &topo.Graph{}
	g.AddNode("a", 0, 0)
	g.AddNode("b", 0, 0)
	g.AddNode("c", 0, 0)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	tr, err := Dijkstra(g, 0, UnitWeight)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(tr.Dist[2], 1) {
		t.Fatalf("dist to disconnected node = %v, want +inf", tr.Dist[2])
	}
	if _, err := tr.PathTo(2); !errors.Is(err, ErrNoPath) {
		t.Fatalf("PathTo error = %v, want ErrNoPath", err)
	}
}

func TestDijkstraBadSource(t *testing.T) {
	g := line(t, 3)
	if _, err := Dijkstra(g, 7, UnitWeight); err == nil {
		t.Fatal("out-of-range source must error")
	}
}

func TestHopDistances(t *testing.T) {
	g := diamond(t)
	d := HopDistances(g, 0)
	want := []int{0, 1, 1, 2}
	for i, v := range want {
		if d[i] != v {
			t.Fatalf("hop[%d] = %d, want %d", i, d[i], v)
		}
	}
	if HopDistances(g, -1)[0] != -1 {
		t.Fatal("invalid source should leave all distances -1")
	}
}

func TestCountSimplePathsDiamond(t *testing.T) {
	g := diamond(t)
	if got := CountSimplePaths(g, 0, 3, 2, 0); got != 2 {
		t.Fatalf("paths within 2 hops = %d, want 2", got)
	}
	// Allowing 3 hops adds no simple path in the diamond.
	if got := CountSimplePaths(g, 0, 3, 3, 0); got != 2 {
		t.Fatalf("paths within 3 hops = %d, want 2", got)
	}
}

func TestCountSimplePathsPaperExample(t *testing.T) {
	// Domain D2 of the paper's Fig. 1: s20..s24 as 0..4 with the links that
	// make f1 (s21->s24) have 2 paths and f2 (s24->s21) have 3 paths.
	// Edges: s21-s20, s21-s23, s20-s22, s20-s23(absent), s22-s24, s23-s24,
	// s22-s21? The enumerated paths are:
	//   f1: 21-20-22-24, 21-23-24
	//   f2: 24-23-21, 24-22-21, 24-22-20-21
	// which requires edges 21-20, 21-23, 20-22, 22-24, 23-24, 22-21.
	g := &topo.Graph{}
	for i := 0; i < 5; i++ {
		g.AddNode("s2x", 0, 0) // 0=s20 1=s21 2=s22 3=s23 4=s24
	}
	for _, e := range [][2]topo.NodeID{{1, 0}, {1, 3}, {0, 2}, {2, 4}, {3, 4}, {2, 1}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	// f1 at s21 toward s24: shortest 2 hops, slack 1.
	if got := CountSimplePaths(g, 1, 4, 3, 0); got != 3 {
		// 21-23-24, 21-22-24, 21-20-22-24: our graph adds edge 21-22 so f1
		// has 3; the paper's figure (without 21-22 counted for f1) reports 2.
		t.Fatalf("f1 paths = %d, want 3 with the 21-22 link present", got)
	}
	// f2 at s24 toward s21: shortest 2 hops, slack 1 -> the paper's 3 paths.
	if got := CountSimplePaths(g, 4, 1, 3, 0); got != 3 {
		t.Fatalf("f2 paths = %d, want 3", got)
	}
}

func TestCountSimplePathsLimit(t *testing.T) {
	g := diamond(t)
	if got := CountSimplePaths(g, 0, 3, 4, 1); got != 1 {
		t.Fatalf("limited count = %d, want 1", got)
	}
}

func TestCountSimplePathsEdgeCases(t *testing.T) {
	g := diamond(t)
	if CountSimplePaths(g, 0, 0, 5, 0) != 0 {
		t.Fatal("src == dst must count 0")
	}
	if CountSimplePaths(g, -1, 3, 5, 0) != 0 || CountSimplePaths(g, 0, 9, 5, 0) != 0 {
		t.Fatal("invalid endpoints must count 0")
	}
	if CountSimplePaths(g, 0, 3, 1, 0) != 0 {
		t.Fatal("budget below shortest distance must count 0")
	}
}

// TestCountSimplePathsAgainstBruteForce cross-checks the pruned DFS against a
// naive enumerator on random graphs.
func TestCountSimplePathsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(4)
		g := &topo.Graph{}
		for i := 0; i < n; i++ {
			g.AddNode("n", 0, 0)
		}
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if rng.Float64() < 0.5 {
					if err := g.AddEdge(topo.NodeID(a), topo.NodeID(b)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		src, dst := topo.NodeID(0), topo.NodeID(n-1)
		maxHops := 1 + rng.Intn(n)
		want := bruteForcePaths(g, src, dst, maxHops)
		if got := CountSimplePaths(g, src, dst, maxHops, 0); got != want {
			t.Fatalf("trial %d: count = %d, brute force %d (n=%d maxHops=%d)", trial, got, want, n, maxHops)
		}
	}
}

func bruteForcePaths(g *topo.Graph, src, dst topo.NodeID, maxHops int) int {
	if src == dst || maxHops < 1 {
		return 0
	}
	visited := map[topo.NodeID]bool{src: true}
	total := 0
	for _, v := range g.Neighbors(src) {
		if v == dst {
			total++
			continue
		}
		visited[v] = true
		total += recHelper(g, v, dst, 1, maxHops, visited)
		visited[v] = false
	}
	return total
}

func recHelper(g *topo.Graph, u, dst topo.NodeID, hops, maxHops int, visited map[topo.NodeID]bool) int {
	if hops >= maxHops {
		return 0
	}
	total := 0
	for _, v := range g.Neighbors(u) {
		if v == dst {
			total++
			continue
		}
		if !visited[v] {
			visited[v] = true
			total += recHelper(g, v, dst, hops+1, maxHops, visited)
			visited[v] = false
		}
	}
	return total
}

func TestPathWeight(t *testing.T) {
	g := line(t, 4)
	_ = g
	w := func(a, b topo.NodeID) float64 { return float64(a + b) }
	got := PathWeight([]topo.NodeID{0, 1, 2, 3}, w)
	if got != 1+3+5 {
		t.Fatalf("PathWeight = %v, want 9", got)
	}
	if PathWeight(nil, w) != 0 || PathWeight([]topo.NodeID{2}, w) != 0 {
		t.Fatal("degenerate paths must weigh 0")
	}
}

func TestKShortestPathsDiamond(t *testing.T) {
	g := diamond(t)
	paths, err := KShortestPaths(g, 0, 3, 3, UnitWeight)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2 (diamond has exactly two loopless paths)", len(paths))
	}
	for _, p := range paths {
		if p[0] != 0 || p[len(p)-1] != 3 {
			t.Fatalf("bad endpoints in %v", p)
		}
	}
}

func TestKShortestPathsOrdering(t *testing.T) {
	// Pentagon + chord: paths of increasing length from 0 to 2.
	g := &topo.Graph{}
	for i := 0; i < 5; i++ {
		g.AddNode("n", 0, 0)
	}
	for _, e := range [][2]topo.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := KShortestPaths(g, 0, 2, 5, UnitWeight)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	if len(paths[0]) > len(paths[1]) {
		t.Fatal("paths not ordered by weight")
	}
}

func TestKShortestPathsNoPath(t *testing.T) {
	g := &topo.Graph{}
	g.AddNode("a", 0, 0)
	g.AddNode("b", 0, 0)
	if _, err := KShortestPaths(g, 0, 1, 2, UnitWeight); !errors.Is(err, ErrNoPath) {
		t.Fatalf("error = %v, want ErrNoPath", err)
	}
}

func TestKShortestPathsZeroK(t *testing.T) {
	g := diamond(t)
	paths, err := KShortestPaths(g, 0, 3, 0, UnitWeight)
	if err != nil || paths != nil {
		t.Fatalf("k=0 should be (nil, nil), got (%v, %v)", paths, err)
	}
}

func TestHopMajorComposition(t *testing.T) {
	// A 2-hop cheap-delay path must lose to a 1-hop expensive-delay path.
	g := &topo.Graph{}
	for i := 0; i < 3; i++ {
		g.AddNode("n", 0, 0)
	}
	for _, e := range [][2]topo.NodeID{{0, 1}, {1, 2}, {0, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	delay := func(a, b topo.NodeID) float64 {
		if (a == 0 && b == 2) || (a == 2 && b == 0) {
			return 1000 // direct link is slow but one hop
		}
		return 1
	}
	tr, err := Dijkstra(g, 0, HopMajor(delay))
	if err != nil {
		t.Fatal(err)
	}
	path, err := tr.PathTo(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Fatalf("hop-major path = %v, want the direct 1-hop link", path)
	}
}
