// Package graphalg provides the graph algorithms the reproduction relies on:
// Dijkstra shortest paths (with a hop-primary composite metric for flow
// routing), BFS hop distances, bounded simple-path counting (the path
// programmability coefficient p_i^l of the paper), and Yen's k-shortest
// paths.
package graphalg

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"pmedic/internal/topo"
)

// Weight returns the weight of the directed edge (a, b). It is only called
// for pairs that are adjacent in the graph.
type Weight func(a, b topo.NodeID) float64

// ErrNoPath reports that the destination is unreachable from the source.
var ErrNoPath = errors.New("graphalg: no path")

// UnitWeight weighs every edge 1, producing hop-count shortest paths.
func UnitWeight(topo.NodeID, topo.NodeID) float64 { return 1 }

// HopMajor composes a hop-primary, delay-secondary metric: among paths with
// the same hop count, the one with the smaller total delay wins. delay must
// be strictly below hopUnit for the composition to be exact.
func HopMajor(delay Weight) Weight {
	const hopUnit = 1 << 20
	return func(a, b topo.NodeID) float64 {
		return hopUnit + delay(a, b)
	}
}

// item is a priority-queue entry for Dijkstra.
type item struct {
	node topo.NodeID
	dist float64
}

type pq []item

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }

func (q *pq) Push(x any) {
	it, ok := x.(item)
	if !ok {
		return // unreachable: Push is only called via heap.Push below
	}
	*q = append(*q, it)
}

func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Tree is a shortest-path tree rooted at Src: Dist[v] is the total weight of
// the shortest src→v path (math.Inf(1) if unreachable) and Parent[v] the
// predecessor of v on it (-1 for the root and unreachable nodes).
type Tree struct {
	Src    topo.NodeID
	Dist   []float64
	Parent []topo.NodeID
}

// Dijkstra computes a shortest-path tree from src under w. Ties are broken
// deterministically toward the lower-numbered parent node, so the routing it
// induces is stable across runs.
func Dijkstra(g *topo.Graph, src topo.NodeID, w Weight) (*Tree, error) {
	n := g.NumNodes()
	if src < 0 || int(src) >= n {
		return nil, fmt.Errorf("graphalg: dijkstra: source %d out of range [0,%d)", src, n)
	}
	t := &Tree{
		Src:    src,
		Dist:   make([]float64, n),
		Parent: make([]topo.NodeID, n),
	}
	for i := range t.Dist {
		t.Dist[i] = math.Inf(1)
		t.Parent[i] = -1
	}
	t.Dist[src] = 0
	done := make([]bool, n)
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it, _ := heap.Pop(q).(item)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		g.ForEachNeighbor(u, func(v topo.NodeID) {
			if done[v] {
				return
			}
			nd := t.Dist[u] + w(u, v)
			switch {
			case nd < t.Dist[v]:
				t.Dist[v] = nd
				t.Parent[v] = u
				heap.Push(q, item{node: v, dist: nd})
			case nd == t.Dist[v] && t.Parent[v] >= 0 && u < t.Parent[v]:
				// Deterministic tie-break: prefer the lower-numbered parent.
				t.Parent[v] = u
			}
		})
	}
	return t, nil
}

// PathTo extracts the src→dst node sequence (inclusive of both endpoints)
// from the tree. It returns ErrNoPath if dst is unreachable.
func (t *Tree) PathTo(dst topo.NodeID) ([]topo.NodeID, error) {
	if int(dst) >= len(t.Dist) || dst < 0 {
		return nil, fmt.Errorf("graphalg: path: destination %d out of range", dst)
	}
	if math.IsInf(t.Dist[dst], 1) {
		return nil, fmt.Errorf("%w: %d -> %d", ErrNoPath, t.Src, dst)
	}
	var rev []topo.NodeID
	for v := dst; ; v = t.Parent[v] {
		rev = append(rev, v)
		if v == t.Src {
			break
		}
		if t.Parent[v] < 0 {
			return nil, fmt.Errorf("%w: broken parent chain at %d", ErrNoPath, v)
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// AppendPathTo appends the src→dst node sequence (inclusive of both
// endpoints) to buf and returns the extended slice. It is the allocation-free
// sibling of PathTo for callers that concatenate many paths into one flat
// CSR-style array (internal/flow's workload storage).
func (t *Tree) AppendPathTo(buf []topo.NodeID, dst topo.NodeID) ([]topo.NodeID, error) {
	if int(dst) >= len(t.Dist) || dst < 0 {
		return buf, fmt.Errorf("graphalg: path: destination %d out of range", dst)
	}
	if math.IsInf(t.Dist[dst], 1) {
		return buf, fmt.Errorf("%w: %d -> %d", ErrNoPath, t.Src, dst)
	}
	start := len(buf)
	for v := dst; ; v = t.Parent[v] {
		buf = append(buf, v)
		if v == t.Src {
			break
		}
		if t.Parent[v] < 0 {
			return buf[:start], fmt.Errorf("%w: broken parent chain at %d", ErrNoPath, v)
		}
	}
	for i, j := start, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return buf, nil
}

// HopDistances returns BFS hop counts from src (-1 for unreachable nodes).
func HopDistances(g *topo.Graph, src topo.NodeID) []int {
	n := g.NumNodes()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || int(src) >= n {
		return dist
	}
	dist[src] = 0
	queue := make([]topo.NodeID, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		g.ForEachNeighbor(u, func(v topo.NodeID) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		})
	}
	return dist
}

// CountSimplePaths counts simple paths from src to dst whose hop length is at
// most maxHops, stopping early once limit paths have been found (limit <= 0
// means unlimited). The search is pruned with BFS hop distances to dst, so
// the cost is proportional to the number of enumerated prefixes that can
// still reach dst in budget.
func CountSimplePaths(g *topo.Graph, src, dst topo.NodeID, maxHops, limit int) int {
	n := g.NumNodes()
	if src < 0 || int(src) >= n || dst < 0 || int(dst) >= n {
		return 0
	}
	if src == dst {
		return 0
	}
	toDst := HopDistances(g, dst)
	return CountSimplePathsPruned(g, src, dst, maxHops, limit, toDst, make([]bool, n))
}

// CountSimplePathsPruned is CountSimplePaths with the per-destination BFS hop
// distances and the visited scratch supplied by the caller. Workload
// generation counts paths for up to n² (node, destination) pairs and already
// holds every destination's hop vector, so recomputing a BFS (O(V+E)) per
// count would dominate the search itself at scale. visited must be all-false
// on entry and is restored to all-false on return.
func CountSimplePathsPruned(g *topo.Graph, src, dst topo.NodeID, maxHops, limit int, toDst []int, visited []bool) int {
	n := g.NumNodes()
	if src < 0 || int(src) >= n || dst < 0 || int(dst) >= n {
		return 0
	}
	if src == dst {
		return 0
	}
	if toDst[src] < 0 || toDst[src] > maxHops {
		return 0
	}
	c := pathCounter{
		g:       g,
		dst:     dst,
		toDst:   toDst,
		limit:   limit,
		visited: visited,
	}
	c.visited[src] = true
	c.dfs(src, maxHops)
	c.visited[src] = false
	return c.count
}

type pathCounter struct {
	g       *topo.Graph
	dst     topo.NodeID
	toDst   []int
	limit   int
	visited []bool
	count   int
}

func (c *pathCounter) dfs(u topo.NodeID, budget int) {
	if c.limit > 0 && c.count >= c.limit {
		return
	}
	c.g.ForEachNeighbor(u, func(v topo.NodeID) {
		if c.limit > 0 && c.count >= c.limit {
			return
		}
		if v == c.dst {
			c.count++
			return
		}
		if c.visited[v] || c.toDst[v] < 0 || c.toDst[v] > budget-1 {
			return
		}
		c.visited[v] = true
		c.dfs(v, budget-1)
		c.visited[v] = false
	})
}

// PathWeight sums w over consecutive pairs of path.
func PathWeight(path []topo.NodeID, w Weight) float64 {
	var total float64
	for i := 1; i < len(path); i++ {
		total += w(path[i-1], path[i])
	}
	return total
}
