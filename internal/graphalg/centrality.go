package graphalg

import (
	"sort"

	"pmedic/internal/topo"
)

// Betweenness computes unweighted betweenness centrality for every node with
// Brandes' algorithm: the number of shortest paths passing through each node,
// summed over all ordered source/target pairs and normalized by the pair
// count. It is the structural quantity behind the evaluation topology's
// "hub" — the switch whose failure-domain loss dominates programmability.
func Betweenness(g *topo.Graph) []float64 {
	n := g.NumNodes()
	bc := make([]float64, n)
	if n < 3 {
		return bc
	}
	// Reusable per-source state.
	sigma := make([]float64, n) // shortest-path counts
	dist := make([]int, n)
	delta := make([]float64, n)
	order := make([]topo.NodeID, 0, n) // BFS finish order
	queue := make([]topo.NodeID, 0, n)
	preds := make([][]topo.NodeID, n)

	for s := 0; s < n; s++ {
		order = order[:0]
		queue = queue[:0]
		for v := 0; v < n; v++ {
			sigma[v] = 0
			dist[v] = -1
			delta[v] = 0
			preds[v] = preds[v][:0]
		}
		src := topo.NodeID(s)
		sigma[src] = 1
		dist[src] = 0
		queue = append(queue, src)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			g.ForEachNeighbor(v, func(w topo.NodeID) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			})
		}
		// Dependency accumulation in reverse BFS order.
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != src {
				bc[w] += delta[w]
			}
		}
	}
	// Normalize by the number of ordered pairs excluding the node itself.
	norm := float64((n - 1) * (n - 2))
	if norm > 0 {
		for v := range bc {
			bc[v] /= norm
		}
	}
	return bc
}

// TopBetweenness returns the k nodes with the highest betweenness,
// descending (ties toward lower IDs).
func TopBetweenness(g *topo.Graph, k int) []topo.NodeID {
	bc := Betweenness(g)
	ids := make([]topo.NodeID, g.NumNodes())
	for i := range ids {
		ids[i] = topo.NodeID(i)
	}
	sort.SliceStable(ids, func(a, b int) bool {
		if bc[ids[a]] != bc[ids[b]] {
			return bc[ids[a]] > bc[ids[b]]
		}
		return ids[a] < ids[b]
	})
	if k > len(ids) {
		k = len(ids)
	}
	if k < 0 {
		k = 0
	}
	return ids[:k]
}
