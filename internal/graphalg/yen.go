package graphalg

import (
	"container/heap"
	"fmt"
	"sort"

	"pmedic/internal/topo"
)

// KShortestPaths returns up to k loopless shortest paths from src to dst
// under w, ordered by increasing weight (ties broken lexicographically by
// node sequence), using Yen's algorithm on top of Dijkstra with node/edge
// masking. It returns ErrNoPath when dst is unreachable.
func KShortestPaths(g *topo.Graph, src, dst topo.NodeID, k int, w Weight) ([][]topo.NodeID, error) {
	if k <= 0 {
		return nil, nil
	}
	first, err := maskedShortest(g, src, dst, w, nil, nil)
	if err != nil {
		return nil, err
	}
	paths := [][]topo.NodeID{first}
	var candidates []candidatePath
	for len(paths) < k {
		prev := paths[len(paths)-1]
		for spur := 0; spur < len(prev)-1; spur++ {
			root := prev[:spur+1]
			banEdges := make(map[[2]topo.NodeID]bool)
			for _, p := range paths {
				if len(p) > spur && samePrefix(p, root) {
					banEdges[[2]topo.NodeID{p[spur], p[spur+1]}] = true
				}
			}
			banNodes := make(map[topo.NodeID]bool, spur)
			for _, v := range root[:len(root)-1] {
				banNodes[v] = true
			}
			tail, err := maskedShortest(g, prev[spur], dst, w, banNodes, banEdges)
			if err != nil {
				continue
			}
			full := make([]topo.NodeID, 0, len(root)-1+len(tail))
			full = append(full, root[:len(root)-1]...)
			full = append(full, tail...)
			candidates = appendCandidate(candidates, candidatePath{
				nodes:  full,
				weight: PathWeight(full, w),
			})
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(i, j int) bool {
			if candidates[i].weight != candidates[j].weight {
				return candidates[i].weight < candidates[j].weight
			}
			return lessPath(candidates[i].nodes, candidates[j].nodes)
		})
		paths = append(paths, candidates[0].nodes)
		candidates = candidates[1:]
	}
	return paths, nil
}

type candidatePath struct {
	nodes  []topo.NodeID
	weight float64
}

func appendCandidate(cands []candidatePath, c candidatePath) []candidatePath {
	for _, prev := range cands {
		if equalPath(prev.nodes, c.nodes) {
			return cands
		}
	}
	return append(cands, c)
}

func samePrefix(p, prefix []topo.NodeID) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i, v := range prefix {
		if p[i] != v {
			return false
		}
	}
	return true
}

func equalPath(a, b []topo.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessPath(a, b []topo.NodeID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// maskedShortest runs Dijkstra from src to dst skipping banned nodes and
// banned directed edges, and returns the resulting node sequence.
func maskedShortest(
	g *topo.Graph,
	src, dst topo.NodeID,
	w Weight,
	banNodes map[topo.NodeID]bool,
	banEdges map[[2]topo.NodeID]bool,
) ([]topo.NodeID, error) {
	if banNodes[src] || banNodes[dst] {
		return nil, fmt.Errorf("%w: endpoint banned", ErrNoPath)
	}
	n := g.NumNodes()
	const unreached = -1.0
	dist := make([]float64, n)
	parent := make([]topo.NodeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = unreached
		parent[i] = -1
	}
	dist[src] = 0
	q := &pq{{node: src, dist: 0}}
	heap.Init(q)
	for q.Len() > 0 {
		it, _ := heap.Pop(q).(item)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		g.ForEachNeighbor(u, func(v topo.NodeID) {
			if done[v] || banNodes[v] || banEdges[[2]topo.NodeID{u, v}] {
				return
			}
			nd := dist[u] + w(u, v)
			if dist[v] == unreached || nd < dist[v] {
				dist[v] = nd
				parent[v] = u
				heap.Push(q, item{node: v, dist: nd})
			}
		})
	}
	if src != dst && !done[dst] {
		return nil, fmt.Errorf("%w: %d -> %d", ErrNoPath, src, dst)
	}
	var rev []topo.NodeID
	for v := dst; ; v = parent[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
		if parent[v] < 0 {
			return nil, fmt.Errorf("%w: %d -> %d", ErrNoPath, src, dst)
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}
