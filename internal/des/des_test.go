package des

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	var s Simulator
	var got []int
	mustSchedule(t, &s, 5, func() { got = append(got, 2) })
	mustSchedule(t, &s, 1, func() { got = append(got, 1) })
	mustSchedule(t, &s, 9, func() { got = append(got, 3) })
	if n := s.Run(0); n != 3 {
		t.Fatalf("Run = %d events", n)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != 9 {
		t.Fatalf("clock = %v, want 9", s.Now())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	var s Simulator
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		mustSchedule(t, &s, 3, func() { got = append(got, i) })
	}
	s.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events out of scheduling order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var s Simulator
	var trace []Time
	mustSchedule(t, &s, 1, func() {
		trace = append(trace, s.Now())
		mustSchedule(t, &s, 2, func() {
			trace = append(trace, s.Now())
		})
	})
	s.Run(0)
	if len(trace) != 2 || trace[0] != 1 || trace[1] != 3 {
		t.Fatalf("trace = %v", trace)
	}
}

func TestScheduleValidation(t *testing.T) {
	var s Simulator
	if err := s.Schedule(-1, func() {}); !errors.Is(err, ErrBadDelay) {
		t.Fatalf("negative delay error = %v", err)
	}
	if err := s.Schedule(Time(math.NaN()), func() {}); !errors.Is(err, ErrBadDelay) {
		t.Fatalf("NaN delay error = %v", err)
	}
	if err := s.Schedule(Time(math.Inf(1)), func() {}); !errors.Is(err, ErrBadDelay) {
		t.Fatalf("inf delay error = %v", err)
	}
	if err := s.ScheduleAt(-5, func() {}); !errors.Is(err, ErrPastEvent) {
		t.Fatalf("past event error = %v", err)
	}
	if err := s.Schedule(1, nil); err == nil {
		t.Fatal("nil fn must be rejected")
	}
}

func TestRunLimit(t *testing.T) {
	var s Simulator
	count := 0
	for i := 0; i < 5; i++ {
		mustSchedule(t, &s, Time(i), func() { count++ })
	}
	if n := s.Run(2); n != 2 || count != 2 {
		t.Fatalf("Run(2) executed %d/%d", n, count)
	}
	if s.Pending() != 3 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	var s Simulator
	var fired []Time
	for _, at := range []Time{1, 2, 3, 10} {
		at := at
		mustSchedule(t, &s, at, func() { fired = append(fired, at) })
	}
	if n := s.RunUntil(5); n != 3 {
		t.Fatalf("RunUntil(5) = %d", n)
	}
	if s.Now() != 5 {
		t.Fatalf("clock = %v, want deadline 5", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	// The remaining event still runs after the deadline.
	s.Run(0)
	if s.Now() != 10 || len(fired) != 4 {
		t.Fatalf("after drain: now=%v fired=%v", s.Now(), fired)
	}
}

func TestFiredCounter(t *testing.T) {
	var s Simulator
	for i := 0; i < 7; i++ {
		mustSchedule(t, &s, 1, func() {})
	}
	s.Run(0)
	if s.Fired() != 7 {
		t.Fatalf("Fired = %d", s.Fired())
	}
}

// TestRandomizedClockMonotonicity fires random events and asserts the clock
// never goes backwards and all events execute in timestamp order.
func TestRandomizedClockMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var s Simulator
	var stamps []Time
	n := 500
	want := make([]Time, 0, n)
	for i := 0; i < n; i++ {
		at := Time(rng.Float64() * 1000)
		want = append(want, at)
		mustSchedule(t, &s, at, func() { stamps = append(stamps, s.Now()) })
	}
	s.Run(0)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(stamps) != n {
		t.Fatalf("executed %d, want %d", len(stamps), n)
	}
	for i := range stamps {
		if stamps[i] != want[i] {
			t.Fatalf("event %d at %v, want %v", i, stamps[i], want[i])
		}
		if i > 0 && stamps[i] < stamps[i-1] {
			t.Fatal("clock went backwards")
		}
	}
}

func mustSchedule(t *testing.T, s *Simulator, d Time, fn func()) {
	t.Helper()
	if err := s.Schedule(d, fn); err != nil {
		t.Fatal(err)
	}
}
