// Package des is a deterministic discrete-event simulation engine: a virtual
// millisecond clock and a priority queue of callbacks. Events scheduled for
// the same instant fire in scheduling order, so simulations are reproducible
// run to run.
package des

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Time is a virtual timestamp in milliseconds since simulation start.
type Time float64

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(event)
	if !ok {
		return // unreachable: Push is only invoked through heap.Push below
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Simulator owns the virtual clock and the pending-event queue. The zero
// value is ready to use. Simulator is not safe for concurrent use; a
// simulation is a single logical thread of control.
type Simulator struct {
	now     Time
	pending eventHeap
	seq     uint64
	fired   int
}

// Scheduling errors.
var (
	ErrPastEvent = errors.New("des: event scheduled in the past")
	ErrBadDelay  = errors.New("des: invalid delay")
)

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() int { return s.fired }

// Pending returns the number of events not yet executed.
func (s *Simulator) Pending() int { return len(s.pending) }

// Schedule runs fn after delay milliseconds of virtual time.
func (s *Simulator) Schedule(delay Time, fn func()) error {
	if delay < 0 || math.IsNaN(float64(delay)) || math.IsInf(float64(delay), 0) {
		return fmt.Errorf("%w: %v", ErrBadDelay, delay)
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt runs fn at the given absolute virtual time.
func (s *Simulator) ScheduleAt(at Time, fn func()) error {
	if at < s.now {
		return fmt.Errorf("%w: %v < now %v", ErrPastEvent, at, s.now)
	}
	if fn == nil {
		return errors.New("des: nil event function")
	}
	heap.Push(&s.pending, event{at: at, seq: s.seq, fn: fn})
	s.seq++
	return nil
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (s *Simulator) Step() bool {
	if len(s.pending) == 0 {
		return false
	}
	ev, _ := heap.Pop(&s.pending).(event)
	s.now = ev.at
	s.fired++
	ev.fn()
	return true
}

// Run executes events until the queue drains or limit events have fired
// (limit <= 0 means no limit). It returns the number of events executed by
// this call.
func (s *Simulator) Run(limit int) int {
	count := 0
	for (limit <= 0 || count < limit) && s.Step() {
		count++
	}
	return count
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to the deadline. It returns the number of events executed.
func (s *Simulator) RunUntil(deadline Time) int {
	count := 0
	for len(s.pending) > 0 && s.pending[0].at <= deadline {
		s.Step()
		count++
	}
	if s.now < deadline {
		s.now = deadline
	}
	return count
}
