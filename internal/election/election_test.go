package election

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func waitCond(t *testing.T, what string, within time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s not reached within %v", what, within)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func newElector(t *testing.T, dir, id string, ttl time.Duration, elected, deposed *atomic.Uint64) *Elector {
	t.Helper()
	e, err := New(Config{
		Dir: dir, ID: id, TTL: ttl, RenewEvery: ttl / 4, Seed: int64(len(id)),
		OnElected: func(uint64) {
			if elected != nil {
				elected.Add(1)
			}
		},
		OnDeposed: func() {
			if deposed != nil {
				deposed.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Stop)
	return e
}

func TestSingleReplicaAcquiresAndRenews(t *testing.T) {
	dir := t.TempDir()
	var elected atomic.Uint64
	e := newElector(t, dir, "r1", 80*time.Millisecond, &elected, nil)
	e.Start()
	waitCond(t, "leadership", 2*time.Second, e.IsLeader)
	if e.Term() != 1 {
		t.Fatalf("Term = %d, want 1", e.Term())
	}
	// Leadership survives several TTLs: renewals are happening.
	time.Sleep(300 * time.Millisecond)
	if !e.IsLeader() {
		t.Fatal("leadership lost despite renewals")
	}
	if elected.Load() != 1 {
		t.Fatalf("OnElected fired %d times, want 1", elected.Load())
	}
	lease, err := Leader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Holder != "r1" || lease.Term != 1 {
		t.Fatalf("lease = %+v", lease)
	}
}

// TestFailoverAfterLeaderDies kills the leader the SIGKILL way — Stop
// without Resign — and expects the follower to take over with a strictly
// higher term once the lease expires.
func TestFailoverAfterLeaderDies(t *testing.T) {
	dir := t.TempDir()
	ttl := 100 * time.Millisecond
	var dep1 atomic.Uint64
	e1 := newElector(t, dir, "r1", ttl, nil, &dep1)
	e1.Start()
	waitCond(t, "r1 leadership", 2*time.Second, e1.IsLeader)

	e2 := newElector(t, dir, "r2", ttl, nil, nil)
	e2.Start()
	time.Sleep(3 * ttl)
	if e2.IsLeader() {
		t.Fatal("r2 usurped a live lease")
	}

	e1.Stop() // SIGKILL: no resign, the lease just stops being renewed
	waitCond(t, "r2 takeover", 3*time.Second, e2.IsLeader)
	if e2.Term() != 2 {
		t.Fatalf("takeover term = %d, want 2", e2.Term())
	}
	// The dead leader's local guard fails closed after TTL even though it
	// never saw the usurper.
	if err := e1.Check(); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("dead leader Check = %v, want ErrNotLeader", err)
	}
}

func TestResignHandsOverImmediately(t *testing.T) {
	dir := t.TempDir()
	ttl := 200 * time.Millisecond
	e1 := newElector(t, dir, "r1", ttl, nil, nil)
	e1.Start()
	waitCond(t, "r1 leadership", 2*time.Second, e1.IsLeader)

	e2 := newElector(t, dir, "r2", ttl, nil, nil)
	e2.Start()

	if err := e1.Resign(); err != nil {
		t.Fatal(err)
	}
	if e1.IsLeader() {
		t.Fatal("still leader after Resign")
	}
	// Takeover needs only one campaign tick, not a TTL expiry.
	waitCond(t, "r2 takeover after resign", 2*time.Second, e2.IsLeader)
	if e2.Term() != 2 {
		t.Fatalf("takeover term = %d, want 2", e2.Term())
	}
}

// TestTermsFenceAcrossHandoffs walks leadership r1 → r2 → r3 and asserts
// the term rises monotonically — the property the epoch fencing builds on.
func TestTermsFenceAcrossHandoffs(t *testing.T) {
	dir := t.TempDir()
	ttl := 100 * time.Millisecond
	var lastTerm uint64
	for i, id := range []string{"a", "b", "c"} {
		e := newElector(t, dir, id, ttl, nil, nil)
		e.Start()
		waitCond(t, id+" leadership", 3*time.Second, e.IsLeader)
		if e.Term() != uint64(i+1) {
			t.Fatalf("%s term = %d, want %d", id, e.Term(), i+1)
		}
		if e.Term() <= lastTerm {
			t.Fatalf("term not monotone: %d after %d", e.Term(), lastTerm)
		}
		lastTerm = e.Term()
		e.Stop() // die without resigning
	}
}

func TestAtMostOneLeader(t *testing.T) {
	dir := t.TempDir()
	ttl := 80 * time.Millisecond
	es := make([]*Elector, 3)
	for i, id := range []string{"x", "y", "z"} {
		es[i] = newElector(t, dir, id, ttl, nil, nil)
		es[i].Start()
	}
	deadline := time.Now().Add(1 * time.Second)
	sawLeader := false
	for time.Now().Before(deadline) {
		n := 0
		for _, e := range es {
			if e.IsLeader() {
				n++
			}
		}
		if n > 1 {
			t.Fatalf("%d simultaneous leaders", n)
		}
		if n == 1 {
			sawLeader = true
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawLeader {
		t.Fatal("no leader ever elected")
	}
}
