// Package election is file/lease-based leader election for pmedicd
// replicas sharing a state directory. One lease file holds the current
// {holder, term, renewal time}; a replica that finds the lease expired
// acquires it with term+1, the holder renews it periodically, and everyone
// else follows. Read-modify-write of the lease is serialized through an
// flock(2)-held lock file, so the protocol is safe across processes on a
// shared filesystem and across goroutines inside one (flock follows the
// open file description, not the process).
//
// The term is the fencing token: it increases by at least one on every
// change of leadership, the medic folds it into its resume-epoch bump, and
// the epoch-derived OpenFlow generation IDs carry the fence to the wire —
// a deposed leader's in-flight pushes are refused by the switch agents,
// and its late WAL writes are refused by the store guard (Check).
//
// SIGKILL needs no cleanup: a dead leader simply stops renewing, its lease
// expires after TTL, and the next campaigner takes over. Graceful shutdown
// calls Resign to zero the lease so followers take over without waiting
// out the TTL.
package election

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"
)

const (
	leaseFile = "leader.lease"
	lockFile  = ".lease.lock"
)

// ErrNotLeader reports a leadership check by a replica that does not hold
// a live lease.
var ErrNotLeader = errors.New("election: not the leader")

// Lease is the on-disk record of who leads and until when.
type Lease struct {
	Holder string `json:"holder"`
	// Term increases by at least one per change of leadership — the fencing
	// token.
	Term      uint64    `json:"term"`
	RenewedAt time.Time `json:"renewed_at"`
	// TTLMillis is the validity window after RenewedAt.
	TTLMillis int64 `json:"ttl_ms"`
}

// Expired reports whether the lease is past its validity window at now.
// An empty holder (a resigned lease) is always expired.
func (l Lease) Expired(now time.Time) bool {
	return l.Holder == "" || now.After(l.RenewedAt.Add(time.Duration(l.TTLMillis)*time.Millisecond))
}

// Config wires an Elector. Dir and ID are required.
type Config struct {
	// Dir is the shared state directory the lease lives in.
	Dir string
	// ID names this replica in the lease.
	ID string
	// TTL is the lease validity window (default 2s). A leader that cannot
	// renew within it is deposed; failover latency after SIGKILL is at most
	// TTL + one campaign interval.
	TTL time.Duration
	// RenewEvery is the campaign/renew cadence (default TTL/3).
	RenewEvery time.Duration
	// Seed decorrelates campaign jitter between replicas.
	Seed int64
	// OnElected fires on the campaign goroutine when this replica acquires
	// the lease; OnDeposed fires when it loses a lease it held.
	OnElected func(term uint64)
	OnDeposed func()
}

func (c Config) withDefaults() Config {
	if c.TTL <= 0 {
		c.TTL = 2 * time.Second
	}
	if c.RenewEvery <= 0 {
		c.RenewEvery = c.TTL / 3
	}
	return c
}

// Elector campaigns for and maintains the lease. Create with New, start
// with Start; IsLeader/Term/Check expose the replica's current view.
type Elector struct {
	cfg Config

	mu sync.Mutex
	// leader and term are this replica's local view; renewedAt is when the
	// view was last confirmed against the file, the basis of Check's
	// local-clock expiry.
	leader    bool
	term      uint64
	renewedAt time.Time

	startOnce sync.Once
	stopOnce  sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// New validates the wiring and returns an idle Elector.
func New(cfg Config) (*Elector, error) {
	if cfg.Dir == "" || cfg.ID == "" {
		return nil, errors.New("election: Dir and ID are required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("election: %w", err)
	}
	return &Elector{cfg: cfg.withDefaults(), done: make(chan struct{})}, nil
}

// Start launches the campaign loop.
func (e *Elector) Start() {
	e.startOnce.Do(func() {
		e.wg.Add(1)
		go e.campaignLoop()
	})
}

// Stop halts the campaign loop without touching the lease: a stopped
// leader's lease simply expires (the SIGKILL path). Call Resign first for
// a graceful handoff.
func (e *Elector) Stop() {
	e.stopOnce.Do(func() {
		close(e.done)
		e.wg.Wait()
	})
}

// IsLeader reports this replica's current view of its leadership, expired
// leases included (a leader that could not renew within TTL answers false).
func (e *Elector) IsLeader() bool { return e.Check() == nil }

// Term returns the last term this replica observed.
func (e *Elector) Term() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.term
}

// Check is the leadership guard, cheap enough for a per-WAL-append call:
// nil iff this replica holds the lease and its last confirmed renewal is
// still inside TTL by the local clock. It never touches the filesystem, so
// a leader cut off from the lease file fails closed once TTL elapses.
func (e *Elector) Check() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.leader {
		return ErrNotLeader
	}
	if time.Since(e.renewedAt) > e.cfg.TTL {
		return fmt.Errorf("%w: lease renewal overdue", ErrNotLeader)
	}
	return nil
}

// Resign releases a held lease (graceful shutdown): the lease is zeroed at
// its current term so the next campaigner acquires immediately with
// term+1. A non-leader Resign is a no-op.
func (e *Elector) Resign() error {
	e.mu.Lock()
	wasLeader := e.leader
	e.leader = false
	e.mu.Unlock()
	if !wasLeader {
		return nil
	}
	return e.withLock(func() error {
		lease, err := e.readLease()
		if err != nil {
			return err
		}
		if lease.Holder != e.cfg.ID {
			return nil // already usurped
		}
		lease.Holder = ""
		lease.RenewedAt = time.Time{}
		return e.writeLease(lease)
	})
}

// Leader returns the lease as currently on disk — who leads, at what term.
// Followers use it for status reporting.
func Leader(dir string) (Lease, error) {
	raw, err := os.ReadFile(filepath.Join(dir, leaseFile))
	if errors.Is(err, os.ErrNotExist) {
		return Lease{}, nil
	}
	if err != nil {
		return Lease{}, fmt.Errorf("election: %w", err)
	}
	var l Lease
	if err := json.Unmarshal(raw, &l); err != nil {
		return Lease{}, fmt.Errorf("election: lease: %w", err)
	}
	return l, nil
}

func (e *Elector) campaignLoop() {
	defer e.wg.Done()
	rng := rand.New(rand.NewSource(e.cfg.Seed ^ int64(len(e.cfg.ID))*0x5DEECE66D))
	timer := time.NewTimer(time.Duration(rng.Int63n(int64(e.cfg.RenewEvery) + 1)))
	defer timer.Stop()
	for {
		select {
		case <-e.done:
			return
		case <-timer.C:
		}
		e.campaign()
		// Jitter up to a quarter interval so replicas with identical seeds
		// still decorrelate their file contention.
		timer.Reset(e.cfg.RenewEvery + time.Duration(rng.Int63n(int64(e.cfg.RenewEvery)/4+1)))
	}
}

// campaign runs one acquire-or-renew step and fires the transitions.
func (e *Elector) campaign() {
	var (
		elected bool
		deposed bool
		term    uint64
	)
	err := e.withLock(func() error {
		now := time.Now()
		lease, err := e.readLease()
		if err != nil {
			return err
		}
		e.mu.Lock()
		wasLeader := e.leader
		e.mu.Unlock()

		switch {
		case lease.Holder == e.cfg.ID && !lease.Expired(now):
			// Renew our own live lease.
			lease.RenewedAt = now
			if err := e.writeLease(lease); err != nil {
				return err
			}
			e.setView(true, lease.Term, now)
			return nil
		case lease.Expired(now):
			// Acquire: term+1 fences everything the previous holder signed.
			lease = Lease{
				Holder:    e.cfg.ID,
				Term:      lease.Term + 1,
				RenewedAt: now,
				TTLMillis: e.cfg.TTL.Milliseconds(),
			}
			if err := e.writeLease(lease); err != nil {
				return err
			}
			e.setView(true, lease.Term, now)
			elected, term = !wasLeader, lease.Term
			return nil
		default:
			// Someone else leads (or we expired and they took over).
			e.setView(false, lease.Term, now)
			deposed = wasLeader
			return nil
		}
	})
	if err != nil {
		// Filesystem trouble: fail closed. If we were leader, Check will
		// also depose us once TTL elapses without a renewal.
		e.mu.Lock()
		deposed = e.leader
		e.leader = false
		e.mu.Unlock()
	}
	if elected && e.cfg.OnElected != nil {
		e.cfg.OnElected(term)
	}
	if deposed && e.cfg.OnDeposed != nil {
		e.cfg.OnDeposed()
	}
}

func (e *Elector) setView(leader bool, term uint64, at time.Time) {
	e.mu.Lock()
	e.leader = leader
	e.term = term
	e.renewedAt = at
	e.mu.Unlock()
}

// withLock serializes a lease read-modify-write against every other
// replica, in-process or not, via flock on a sidecar lock file.
func (e *Elector) withLock(fn func() error) error {
	f, err := os.OpenFile(filepath.Join(e.cfg.Dir, lockFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("election: %w", err)
	}
	defer func() { _ = f.Close() }()
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		return fmt.Errorf("election: flock: %w", err)
	}
	defer func() { _ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN) }()
	return fn()
}

func (e *Elector) readLease() (Lease, error) {
	return Leader(e.cfg.Dir)
}

// writeLease persists the lease atomically (temp + rename) so readers
// never observe a torn lease.
func (e *Elector) writeLease(l Lease) error {
	raw, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("election: lease: %w", err)
	}
	tmp := filepath.Join(e.cfg.Dir, leaseFile+".tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("election: lease: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(e.cfg.Dir, leaseFile)); err != nil {
		return fmt.Errorf("election: lease: %w", err)
	}
	return nil
}
