// Package lp implements a linear-programming solver: a revised primal
// simplex with bounded variables, two phases (slack crash basis plus
// artificial variables for feasibility, then optimality), Dantzig pricing
// with a Bland anti-cycling fallback, and periodic basis refactorization.
// The constraint matrix is stored in compressed-sparse-column form; the
// basis inverse is a product-form eta file with sparse refactorization for
// large models and a dense explicit inverse for tiny ones. Solves can be
// warm-started from the basis of a related solve (Solution.Basis →
// Options.Warm), which branch & bound uses to start child nodes from their
// parent's vertex.
//
// It is the bottom layer of the reproduction's GUROBI substitute; package
// mip adds branch & bound for integer models on top of it.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense selects the optimization direction of a model.
type Sense int

// Model senses.
const (
	Minimize Sense = iota + 1
	Maximize
)

// Op is a linear constraint's comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota + 1 // Σ aᵢxᵢ ≤ b
	GE               // Σ aᵢxᵢ ≥ b
	EQ               // Σ aᵢxᵢ = b
)

// Term is one coefficient of a sparse constraint row.
type Term struct {
	Var   int
	Coeff float64
}

// row is a stored constraint.
type row struct {
	terms []Term
	op    Op
	rhs   float64
}

// Model is a linear program under construction. Build it with AddVar and
// AddRow, then call Solve. A Model may be solved repeatedly and mutated
// between solves (branch & bound relies on SetBounds).
type Model struct {
	sense Sense
	obj   []float64
	lower []float64
	upper []float64
	names []string
	rows  []row
}

// NewModel returns an empty model with the given sense.
func NewModel(sense Sense) *Model {
	return &Model{sense: sense}
}

// Model construction errors.
var (
	ErrBadBounds = errors.New("lp: lower bound exceeds upper bound")
	ErrBadVar    = errors.New("lp: variable index out of range")
)

// AddVar appends a variable with bounds [lower, upper] (upper may be
// math.Inf(1)) and the given objective coefficient, returning its index.
func (m *Model) AddVar(lower, upper, objCoeff float64, name string) int {
	m.lower = append(m.lower, lower)
	m.upper = append(m.upper, upper)
	m.obj = append(m.obj, objCoeff)
	m.names = append(m.names, name)
	return len(m.obj) - 1
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.obj) }

// NumRows returns the number of constraints.
func (m *Model) NumRows() int { return len(m.rows) }

// VarName returns the name given at AddVar, or "" for out-of-range indices.
func (m *Model) VarName(v int) string {
	if v < 0 || v >= len(m.names) {
		return ""
	}
	return m.names[v]
}

// SetBounds replaces variable v's bounds; used by branch & bound to fix
// binaries.
func (m *Model) SetBounds(v int, lower, upper float64) error {
	if v < 0 || v >= len(m.obj) {
		return fmt.Errorf("%w: %d", ErrBadVar, v)
	}
	if lower > upper {
		return fmt.Errorf("%w: var %d: [%g, %g]", ErrBadBounds, v, lower, upper)
	}
	m.lower[v] = lower
	m.upper[v] = upper
	return nil
}

// Bounds returns variable v's current bounds.
func (m *Model) Bounds(v int) (lower, upper float64, err error) {
	if v < 0 || v >= len(m.obj) {
		return 0, 0, fmt.Errorf("%w: %d", ErrBadVar, v)
	}
	return m.lower[v], m.upper[v], nil
}

// AddRow appends the constraint Σ terms op rhs. Terms may repeat a variable;
// coefficients are summed.
func (m *Model) AddRow(op Op, rhs float64, terms ...Term) error {
	if op != LE && op != GE && op != EQ {
		return fmt.Errorf("lp: invalid op %d", op)
	}
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(m.obj) {
			return fmt.Errorf("%w: %d", ErrBadVar, t.Var)
		}
	}
	cp := make([]Term, len(terms))
	copy(cp, terms)
	m.rows = append(m.rows, row{terms: cp, op: op, rhs: rhs})
	return nil
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	// StatusOptimal: an optimal solution was found.
	StatusOptimal Status = iota + 1
	// StatusInfeasible: the constraints admit no solution.
	StatusInfeasible
	// StatusUnbounded: the objective is unbounded in the optimization
	// direction.
	StatusUnbounded
	// StatusIterLimit: the iteration budget ran out before convergence.
	StatusIterLimit
)

// String renders the status for logs and errors.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("lp.Status(%d)", int(s))
	}
}

// Solution is the result of a successful or partially successful solve.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	// Duals holds one dual value (shadow price) per constraint row at
	// optimality, in the model's sense: the objective's rate of change per
	// unit of slack in the row's right-hand side. Nil unless StatusOptimal.
	Duals []float64
	// Basis is the final simplex basis, suitable for warm-starting a solve
	// of the same model after bound changes (Options.Warm). Nil unless
	// StatusOptimal, or when the final basis is not exportable (a redundant
	// row kept an artificial variable basic).
	Basis *Basis
	Iters int
}

// Basis is an opaque snapshot of a simplex basis over the model's expanded
// (structural + slack) variable space. It is only meaningful for a model
// with the same variables and rows it was exported from; bounds may differ.
type Basis struct {
	vars  []int32 // basic variable per position
	upper []int32 // nonbasic variables resting at their upper bound
}

// Factorization selects the basis-inverse representation.
type Factorization int

// Factorization choices.
const (
	// FactorAuto (the default) picks the sparse eta file for large models
	// and the dense explicit inverse for tiny ones.
	FactorAuto Factorization = iota
	// FactorDense forces the dense explicit inverse.
	FactorDense
	// FactorSparse forces the product-form eta file.
	FactorSparse
)

// Options tunes the solver. The zero value selects defaults.
type Options struct {
	// MaxIters bounds simplex iterations per phase (default 50 000).
	MaxIters int
	// Tol is the feasibility/optimality tolerance (default 1e-7).
	Tol float64
	// Factorization selects the basis-inverse representation (default
	// FactorAuto).
	Factorization Factorization
	// Warm, when non-nil, attempts to start from a basis exported by a
	// previous solve of the same model (Solution.Basis). A warm basis that
	// is singular or primal-infeasible under the current bounds is silently
	// discarded and the solve falls back to the two-phase cold start.
	Warm *Basis
}

func (o Options) withDefaults() Options {
	if o.MaxIters == 0 {
		o.MaxIters = 50000
	}
	if o.Tol == 0 {
		o.Tol = 1e-7
	}
	return o
}

// Solve optimizes the model with default options.
func (m *Model) Solve() (*Solution, error) {
	return m.SolveWith(Options{})
}

// SolveWith optimizes the model. The returned error is non-nil only for
// malformed models or solver failures; infeasibility and unboundedness are
// reported through Solution.Status.
func (m *Model) SolveWith(opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	for v := range m.obj {
		if m.lower[v] > m.upper[v] {
			// Trivially infeasible by bounds (branch & bound produces these).
			return &Solution{Status: StatusInfeasible}, nil
		}
		if math.IsInf(m.lower[v], -1) {
			return nil, fmt.Errorf("lp: var %d (%s): free and lower-unbounded variables are not supported", v, m.names[v])
		}
	}
	s := newSimplex(m, opts)
	return s.solve(opts.Warm)
}

// Clone returns a model sharing this model's immutable structure (rows,
// objective, names) with independent bounds. It exists so branch & bound
// workers can tighten bounds concurrently; neither model may gain variables
// or rows after cloning.
func (m *Model) Clone() *Model {
	cp := *m
	cp.lower = append([]float64(nil), m.lower...)
	cp.upper = append([]float64(nil), m.upper...)
	return &cp
}
