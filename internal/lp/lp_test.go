package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOrFatal(t *testing.T, m *Model) *Solution {
	t.Helper()
	sol, err := m.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func wantStatus(t *testing.T, sol *Solution, want Status) {
	t.Helper()
	if sol.Status != want {
		t.Fatalf("status = %v, want %v", sol.Status, want)
	}
}

func wantObj(t *testing.T, sol *Solution, want float64) {
	t.Helper()
	if math.Abs(sol.Objective-want) > 1e-6 {
		t.Fatalf("objective = %v, want %v", sol.Objective, want)
	}
}

func TestSolveTextbookMax(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> x=2, y=6, obj=36.
	m := NewModel(Maximize)
	x := m.AddVar(0, math.Inf(1), 3, "x")
	y := m.AddVar(0, math.Inf(1), 5, "y")
	mustRow(t, m, LE, 4, Term{x, 1})
	mustRow(t, m, LE, 12, Term{y, 2})
	mustRow(t, m, LE, 18, Term{x, 3}, Term{y, 2})
	sol := solveOrFatal(t, m)
	wantStatus(t, sol, StatusOptimal)
	wantObj(t, sol, 36)
	if math.Abs(sol.X[x]-2) > 1e-6 || math.Abs(sol.X[y]-6) > 1e-6 {
		t.Fatalf("x=%v y=%v, want 2, 6", sol.X[x], sol.X[y])
	}
}

func TestSolveMinWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x >= 2 -> y as large as cheap... both
	// positive costs: put everything on the cheaper x: x=10? x cost 2 < y
	// cost 3, so x=10, y=0, but x>=2 anyway. obj = 20.
	m := NewModel(Minimize)
	x := m.AddVar(2, math.Inf(1), 2, "x")
	y := m.AddVar(0, math.Inf(1), 3, "y")
	mustRow(t, m, GE, 10, Term{x, 1}, Term{y, 1})
	sol := solveOrFatal(t, m)
	wantStatus(t, sol, StatusOptimal)
	wantObj(t, sol, 20)
}

func TestSolveEquality(t *testing.T) {
	// max x + 2y s.t. x + y = 5, 0 <= x,y <= 4 -> y=4, x=1, obj=9.
	m := NewModel(Maximize)
	x := m.AddVar(0, 4, 1, "x")
	y := m.AddVar(0, 4, 2, "y")
	mustRow(t, m, EQ, 5, Term{x, 1}, Term{y, 1})
	sol := solveOrFatal(t, m)
	wantStatus(t, sol, StatusOptimal)
	wantObj(t, sol, 9)
	if math.Abs(sol.X[y]-4) > 1e-6 {
		t.Fatalf("y = %v, want 4", sol.X[y])
	}
}

func TestSolveUpperBoundsOnly(t *testing.T) {
	// max x + y with 0<=x<=3, 0<=y<=7 and no rows -> 10 via bound flips.
	m := NewModel(Maximize)
	m.AddVar(0, 3, 1, "x")
	m.AddVar(0, 7, 1, "y")
	sol := solveOrFatal(t, m)
	wantStatus(t, sol, StatusOptimal)
	wantObj(t, sol, 10)
}

func TestSolveInfeasible(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddVar(0, math.Inf(1), 1, "x")
	mustRow(t, m, LE, 3, Term{x, 1})
	mustRow(t, m, GE, 5, Term{x, 1})
	sol := solveOrFatal(t, m)
	wantStatus(t, sol, StatusInfeasible)
}

func TestSolveInfeasibleByBounds(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddVar(0, 5, 1, "x")
	if err := m.SetBounds(x, 3, 2); err == nil {
		t.Fatal("SetBounds(3, 2) should fail")
	}
	// Fixing disjoint bounds through two variables instead.
	y := m.AddVar(4, 9, 1, "y")
	mustRow(t, m, EQ, 1, Term{x, 1}, Term{y, -1}) // x = y + 1 >= 5 but also x <= 5: x=5, y=4 works
	sol := solveOrFatal(t, m)
	wantStatus(t, sol, StatusOptimal)
	wantObj(t, sol, 9)
}

func TestSolveUnbounded(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddVar(0, math.Inf(1), 1, "x")
	y := m.AddVar(0, math.Inf(1), 0, "y")
	mustRow(t, m, GE, 1, Term{x, 1}, Term{y, 1})
	sol := solveOrFatal(t, m)
	wantStatus(t, sol, StatusUnbounded)
}

func TestSolveDegenerate(t *testing.T) {
	// A classic degenerate LP; the solver must still terminate at 1.
	m := NewModel(Maximize)
	x := m.AddVar(0, math.Inf(1), 1, "x")
	y := m.AddVar(0, math.Inf(1), 1, "y")
	mustRow(t, m, LE, 1, Term{x, 1})
	mustRow(t, m, LE, 0, Term{y, 1}, Term{x, -1})
	mustRow(t, m, LE, 1, Term{x, 1}, Term{y, 1})
	sol := solveOrFatal(t, m)
	wantStatus(t, sol, StatusOptimal)
	wantObj(t, sol, 1)
}

func TestSolveNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -4  (x >= 4).
	m := NewModel(Minimize)
	x := m.AddVar(0, math.Inf(1), 1, "x")
	mustRow(t, m, LE, -4, Term{x, -1})
	sol := solveOrFatal(t, m)
	wantStatus(t, sol, StatusOptimal)
	wantObj(t, sol, 4)
}

func TestSolveDuplicateTermsMerge(t *testing.T) {
	// x + x <= 6 must behave as 2x <= 6.
	m := NewModel(Maximize)
	x := m.AddVar(0, math.Inf(1), 1, "x")
	mustRow(t, m, LE, 6, Term{x, 1}, Term{x, 1})
	sol := solveOrFatal(t, m)
	wantStatus(t, sol, StatusOptimal)
	wantObj(t, sol, 3)
}

func TestSolveFixedVariable(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddVar(2, 2, 5, "x")
	y := m.AddVar(0, 3, 1, "y")
	mustRow(t, m, LE, 4, Term{x, 1}, Term{y, 1})
	sol := solveOrFatal(t, m)
	wantStatus(t, sol, StatusOptimal)
	wantObj(t, sol, 12)
	if sol.X[x] != 2 {
		t.Fatalf("fixed x = %v, want 2", sol.X[x])
	}
	if math.Abs(sol.X[y]-2) > 1e-6 {
		t.Fatalf("y = %v, want 2", sol.X[y])
	}
}

func TestSolveLowerBoundedStart(t *testing.T) {
	// Nonzero lower bounds exercise the initial residual computation.
	m := NewModel(Minimize)
	x := m.AddVar(5, 10, 1, "x")
	y := m.AddVar(3, 10, 1, "y")
	mustRow(t, m, GE, 12, Term{x, 1}, Term{y, 1})
	sol := solveOrFatal(t, m)
	wantStatus(t, sol, StatusOptimal)
	wantObj(t, sol, 12)
}

func TestSetBoundsResolve(t *testing.T) {
	// Solve, tighten a bound, solve again (the branch & bound pattern).
	m := NewModel(Maximize)
	x := m.AddVar(0, 1, 1, "x")
	y := m.AddVar(0, 1, 1, "y")
	mustRow(t, m, LE, 1.5, Term{x, 1}, Term{y, 1})
	sol := solveOrFatal(t, m)
	wantObj(t, sol, 1.5)
	if err := m.SetBounds(x, 1, 1); err != nil {
		t.Fatalf("SetBounds: %v", err)
	}
	sol = solveOrFatal(t, m)
	wantStatus(t, sol, StatusOptimal)
	wantObj(t, sol, 1.5)
	if math.Abs(sol.X[x]-1) > 1e-9 {
		t.Fatalf("x = %v, want 1", sol.X[x])
	}
	if err := m.SetBounds(y, 1, 1); err != nil {
		t.Fatalf("SetBounds: %v", err)
	}
	sol = solveOrFatal(t, m)
	wantStatus(t, sol, StatusInfeasible)
}

// TestRandomFeasibleLPs generates random bounded LPs that are feasible by
// construction (the RHS of every row is set to make a random interior point
// feasible) and checks that the solver (a) claims optimality, (b) returns a
// point satisfying every constraint, and (c) weakly beats the known feasible
// point.
func TestRandomFeasibleLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nv := 1 + rng.Intn(6)
		nr := rng.Intn(8)
		m := NewModel(Maximize)
		point := make([]float64, nv)
		for v := 0; v < nv; v++ {
			ub := float64(1 + rng.Intn(9))
			obj := float64(rng.Intn(21) - 10)
			m.AddVar(0, ub, obj, "")
			point[v] = ub * rng.Float64()
		}
		type savedRow struct {
			coeffs []float64
			op     Op
			rhs    float64
		}
		var saved []savedRow
		for r := 0; r < nr; r++ {
			coeffs := make([]float64, nv)
			val := 0.0
			terms := make([]Term, 0, nv)
			for v := 0; v < nv; v++ {
				c := float64(rng.Intn(11) - 5)
				coeffs[v] = c
				val += c * point[v]
				if c != 0 {
					terms = append(terms, Term{v, c})
				}
			}
			var op Op
			var rhs float64
			switch rng.Intn(3) {
			case 0:
				op, rhs = LE, val+rng.Float64()*3
			case 1:
				op, rhs = GE, val-rng.Float64()*3
			default:
				op, rhs = EQ, val
			}
			if err := m.AddRow(op, rhs, terms...); err != nil {
				t.Fatalf("trial %d: AddRow: %v", trial, err)
			}
			saved = append(saved, savedRow{coeffs, op, rhs})
		}
		sol, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v, want optimal (feasible by construction)", trial, sol.Status)
		}
		// Feasibility of the returned point.
		const tol = 1e-6
		for v := 0; v < nv; v++ {
			lo, hi, _ := m.Bounds(v)
			if sol.X[v] < lo-tol || sol.X[v] > hi+tol {
				t.Fatalf("trial %d: x[%d]=%v out of [%v,%v]", trial, v, sol.X[v], lo, hi)
			}
		}
		for ri, r := range saved {
			val := 0.0
			for v := 0; v < nv; v++ {
				val += r.coeffs[v] * sol.X[v]
			}
			switch r.op {
			case LE:
				if val > r.rhs+tol {
					t.Fatalf("trial %d row %d: %v > %v", trial, ri, val, r.rhs)
				}
			case GE:
				if val < r.rhs-tol {
					t.Fatalf("trial %d row %d: %v < %v", trial, ri, val, r.rhs)
				}
			case EQ:
				if math.Abs(val-r.rhs) > tol {
					t.Fatalf("trial %d row %d: %v != %v", trial, ri, val, r.rhs)
				}
			}
		}
		// Optimality against the known feasible point.
		objAt := func(x []float64) float64 {
			total := 0.0
			for v := 0; v < nv; v++ {
				_, _, _ = v, x, total
				total += m.obj[v] * x[v]
			}
			return total
		}
		if sol.Objective < objAt(point)-1e-6 {
			t.Fatalf("trial %d: objective %v below feasible point's %v", trial, sol.Objective, objAt(point))
		}
	}
}

// TestRandomTwoVarExact cross-checks random 2-variable LPs against brute
// force over candidate vertices (all pairwise intersections of constraint
// and bound lines).
func TestRandomTwoVarExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		m := NewModel(Maximize)
		ubx := float64(1 + rng.Intn(8))
		uby := float64(1 + rng.Intn(8))
		cx := float64(rng.Intn(11) - 5)
		cy := float64(rng.Intn(11) - 5)
		x := m.AddVar(0, ubx, cx, "x")
		y := m.AddVar(0, uby, cy, "y")
		type line struct{ a, b, rhs float64 } // a·x + b·y <= rhs
		lines := []line{
			{-1, 0, 0}, {1, 0, ubx}, {0, -1, 0}, {0, 1, uby},
		}
		nr := 1 + rng.Intn(4)
		for r := 0; r < nr; r++ {
			a := float64(rng.Intn(9) - 4)
			b := float64(rng.Intn(9) - 4)
			if a == 0 && b == 0 {
				continue
			}
			rhs := float64(rng.Intn(15) - 2)
			if err := m.AddRow(LE, rhs, Term{x, a}, Term{y, b}); err != nil {
				t.Fatalf("AddRow: %v", err)
			}
			lines = append(lines, line{a, b, rhs})
		}
		// Brute force: intersect every pair of lines, keep feasible points.
		best := math.Inf(-1)
		feasible := false
		const tol = 1e-9
		check := func(px, py float64) {
			for _, l := range lines {
				if l.a*px+l.b*py > l.rhs+1e-7 {
					return
				}
			}
			feasible = true
			if v := cx*px + cy*py; v > best {
				best = v
			}
		}
		for i := 0; i < len(lines); i++ {
			for j := i + 1; j < len(lines); j++ {
				a1, b1, r1 := lines[i].a, lines[i].b, lines[i].rhs
				a2, b2, r2 := lines[j].a, lines[j].b, lines[j].rhs
				det := a1*b2 - a2*b1
				if math.Abs(det) < tol {
					continue
				}
				px := (r1*b2 - r2*b1) / det
				py := (a1*r2 - a2*r1) / det
				check(px, py)
			}
		}
		sol, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !feasible {
			if sol.Status != StatusInfeasible {
				t.Fatalf("trial %d: status %v, brute force found no feasible vertex", trial, sol.Status)
			}
			continue
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v, want optimal", trial, sol.Status)
		}
		if math.Abs(sol.Objective-best) > 1e-5 {
			t.Fatalf("trial %d: objective %v, brute force %v", trial, sol.Objective, best)
		}
	}
}

func mustRow(t *testing.T, m *Model, op Op, rhs float64, terms ...Term) {
	t.Helper()
	if err := m.AddRow(op, rhs, terms...); err != nil {
		t.Fatalf("AddRow: %v", err)
	}
}

func TestDualsKnownLP(t *testing.T) {
	// max 3x + 5y s.t. x <= 4 (y1), 2y <= 12 (y2), 3x + 2y <= 18 (y3).
	// Known duals: y1 = 0, y2 = 3/2, y3 = 1.
	m := NewModel(Maximize)
	x := m.AddVar(0, math.Inf(1), 3, "x")
	y := m.AddVar(0, math.Inf(1), 5, "y")
	mustRow(t, m, LE, 4, Term{x, 1})
	mustRow(t, m, LE, 12, Term{y, 2})
	mustRow(t, m, LE, 18, Term{x, 3}, Term{y, 2})
	sol := solveOrFatal(t, m)
	wantStatus(t, sol, StatusOptimal)
	if sol.Duals == nil {
		t.Fatal("no duals at optimality")
	}
	want := []float64{0, 1.5, 1}
	for i, w := range want {
		if math.Abs(sol.Duals[i]-w) > 1e-6 {
			t.Fatalf("dual[%d] = %v, want %v (all: %v)", i, sol.Duals[i], w, sol.Duals)
		}
	}
}

func TestDualsStrongDuality(t *testing.T) {
	// For random feasible bounded LPs with zero lower bounds and no upper
	// bounds, strong duality: c·x* = y*·b when all constraints are <=.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		nv := 1 + rng.Intn(5)
		nr := 1 + rng.Intn(5)
		m := NewModel(Maximize)
		point := make([]float64, nv)
		for v := 0; v < nv; v++ {
			m.AddVar(0, math.Inf(1), float64(rng.Intn(10)), "")
			point[v] = rng.Float64() * 3
		}
		rhs := make([]float64, nr)
		for r := 0; r < nr; r++ {
			terms := make([]Term, 0, nv)
			val := 0.0
			for v := 0; v < nv; v++ {
				c := float64(1 + rng.Intn(5)) // positive rows keep it bounded
				terms = append(terms, Term{v, c})
				val += c * point[v]
			}
			rhs[r] = val + rng.Float64()*2
			mustRow(t, m, LE, rhs[r], terms...)
		}
		sol := solveOrFatal(t, m)
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: %v", trial, sol.Status)
		}
		dualObj := 0.0
		for r := 0; r < nr; r++ {
			if sol.Duals[r] < -1e-8 {
				t.Fatalf("trial %d: negative dual %v on a <= row of a max LP", trial, sol.Duals[r])
			}
			dualObj += sol.Duals[r] * rhs[r]
		}
		if math.Abs(dualObj-sol.Objective) > 1e-5*(1+math.Abs(sol.Objective)) {
			t.Fatalf("trial %d: duality gap: primal %v dual %v", trial, sol.Objective, dualObj)
		}
	}
}
