package lp

import (
	"errors"
	"math"
	"sort"
)

// varState tracks where a variable currently sits.
type varState int8

const (
	atLower varState = iota
	atUpper
	inBasis
)

// simplex is a bounded-variable revised primal simplex over the expanded
// (structural + slack + artificial) variable space. The constraint matrix is
// stored in compressed-sparse-column (CSC) form; the basis inverse lives
// behind the factorizer interface (dense explicit inverse for tiny models,
// product-form eta file with sparse refactorization otherwise).
type simplex struct {
	opts Options

	m int // rows
	n int // structural variables

	// CSC storage for all columns, structural then slack then artificial.
	// Column v occupies rowIdx/colVal[colPtr[v]:colPtr[v+1]].
	colPtr []int32
	rowIdx []int32
	colVal []float64

	lower  []float64 // bounds per expanded variable
	upper  []float64
	costP2 []float64 // phase-2 (true, minimization) costs
	costP1 []float64 // phase-1 costs (1 on artificials)
	b      []float64 // right-hand sides

	slackVar []int32 // per row: slack variable index, or -1 (EQ rows)

	nArt     int
	artStart int // first artificial variable index

	basis []int // variable in each basis position (position == constraint row)
	state []varState
	xB    []float64 // values of basic variables by basis position

	fact         factorizer
	refreshEvery int

	maximize bool
	iters    int
}

func (s *simplex) numCols() int { return len(s.colPtr) - 1 }

// col returns column v's sparse entries.
func (s *simplex) col(v int) ([]int32, []float64) {
	a, b := s.colPtr[v], s.colPtr[v+1]
	return s.rowIdx[a:b], s.colVal[a:b]
}

// newSimplex expands the model into computational form.
func newSimplex(m *Model, opts Options) *simplex {
	s := &simplex{
		opts:     opts,
		m:        len(m.rows),
		n:        len(m.obj),
		maximize: m.sense == Maximize,
	}
	// Structural columns in CSC form: count, prefix-sum, fill, then merge
	// duplicate variable mentions within a row (AddRow permits them).
	counts := make([]int32, s.n+1)
	for _, r := range m.rows {
		for _, t := range r.terms {
			counts[t.Var+1]++
		}
	}
	s.colPtr = make([]int32, s.n+1)
	for v := 0; v < s.n; v++ {
		s.colPtr[v+1] = s.colPtr[v] + counts[v+1]
	}
	nnz := s.colPtr[s.n]
	s.rowIdx = make([]int32, nnz, nnz+int32(2*s.m))
	s.colVal = make([]float64, nnz, nnz+int32(2*s.m))
	next := make([]int32, s.n)
	copy(next, s.colPtr[:s.n])
	for i, r := range m.rows {
		for _, t := range r.terms {
			k := next[t.Var]
			s.rowIdx[k] = int32(i)
			s.colVal[k] = t.Coeff
			next[t.Var]++
		}
	}
	s.mergeDuplicates()

	s.lower = append(make([]float64, 0, s.n+2*s.m), m.lower...)
	s.upper = append(make([]float64, 0, s.n+2*s.m), m.upper...)
	s.costP2 = make([]float64, s.n, s.n+2*s.m)
	for v, c := range m.obj {
		if s.maximize {
			s.costP2[v] = -c
		} else {
			s.costP2[v] = c
		}
	}
	s.b = make([]float64, s.m)
	for i, r := range m.rows {
		s.b[i] = r.rhs
	}
	// Slack columns: LE -> +slack in [0, inf); GE -> -slack in [0, inf);
	// EQ -> none.
	s.slackVar = make([]int32, s.m)
	for i, r := range m.rows {
		switch r.op {
		case LE:
			s.slackVar[i] = int32(s.addCol(i, 1, 0, math.Inf(1), 0))
		case GE:
			s.slackVar[i] = int32(s.addCol(i, -1, 0, math.Inf(1), 0))
		case EQ:
			s.slackVar[i] = -1
		}
	}

	// Basis-inverse representation: dense explicit inverse for tiny models,
	// product-form eta file with sparse refactorization otherwise.
	useDense := s.m <= denseCutoff
	switch opts.Factorization {
	case FactorDense:
		useDense = true
	case FactorSparse:
		useDense = false
	}
	if useDense {
		s.fact = &denseFactor{}
		s.refreshEvery = 256
	} else {
		s.fact = &etaFactor{}
		s.refreshEvery = 96
	}
	return s
}

// denseCutoff is the row count below which the dense explicit inverse wins:
// at this size an O(m^3) refactorization is cheaper than the bookkeeping of
// the eta file.
const denseCutoff = 48

// mergeDuplicates sums repeated row entries inside each CSC column, keeping
// entries sorted by row.
func (s *simplex) mergeDuplicates() {
	write := int32(0)
	newPtr := make([]int32, len(s.colPtr))
	for v := 0; v < s.n; v++ {
		a, b := s.colPtr[v], s.colPtr[v+1]
		newPtr[v] = write
		if b > a+1 {
			seg := colSegment{rows: s.rowIdx[a:b], vals: s.colVal[a:b]}
			sort.Stable(seg)
		}
		for k := a; k < b; k++ {
			if write > newPtr[v] && s.rowIdx[write-1] == s.rowIdx[k] {
				s.colVal[write-1] += s.colVal[k]
				continue
			}
			s.rowIdx[write] = s.rowIdx[k]
			s.colVal[write] = s.colVal[k]
			write++
		}
	}
	newPtr[s.n] = write
	copy(s.colPtr, newPtr)
	s.rowIdx = s.rowIdx[:write]
	s.colVal = s.colVal[:write]
}

// colSegment sorts one CSC column's entries by row index.
type colSegment struct {
	rows []int32
	vals []float64
}

func (c colSegment) Len() int           { return len(c.rows) }
func (c colSegment) Less(i, j int) bool { return c.rows[i] < c.rows[j] }
func (c colSegment) Swap(i, j int) {
	c.rows[i], c.rows[j] = c.rows[j], c.rows[i]
	c.vals[i], c.vals[j] = c.vals[j], c.vals[i]
}

// addCol appends a single-entry column and returns its index.
func (s *simplex) addCol(row int, coeff, lo, hi, cost float64) int {
	s.rowIdx = append(s.rowIdx, int32(row))
	s.colVal = append(s.colVal, coeff)
	s.colPtr = append(s.colPtr, int32(len(s.rowIdx)))
	s.lower = append(s.lower, lo)
	s.upper = append(s.upper, hi)
	s.costP2 = append(s.costP2, cost)
	return s.numCols() - 1
}

// errNumerical reports unrecoverable numerical trouble.
var errNumerical = errors.New("lp: numerical failure")

func (s *simplex) solve(warm *Basis) (*Solution, error) {
	// Place nonbasic variables at their finite lower bound (validated by
	// SolveWith) and compute each row's residual.
	resid := make([]float64, s.m)
	s.residual(resid)

	warmStarted := warm != nil && s.tryWarm(warm)
	if !warmStarted {
		s.crashBasis(resid)
		if err := s.refactorize(); err != nil {
			return nil, err
		}
		if s.nArt > 0 {
			// Phase 1.
			s.costP1 = make([]float64, s.numCols())
			for v := s.artStart; v < s.numCols(); v++ {
				s.costP1[v] = 1
			}
			status, err := s.iterate(s.costP1)
			if err != nil {
				return nil, err
			}
			if status == StatusIterLimit {
				return &Solution{Status: StatusIterLimit, Iters: s.iters}, nil
			}
			if s.phase1Objective() > s.opts.Tol*float64(1+s.m) {
				return &Solution{Status: StatusInfeasible, Iters: s.iters}, nil
			}
			s.lockArtificials()
		}
	}

	// Phase 2.
	status, err := s.iterate(s.costP2)
	if err != nil {
		return nil, err
	}
	sol := &Solution{Status: status, Iters: s.iters}
	if status == StatusOptimal || status == StatusIterLimit {
		sol.X = s.extractX()
		var obj float64
		for v := 0; v < s.n; v++ {
			obj += s.costP2[v] * sol.X[v]
		}
		if s.maximize {
			obj = -obj
		}
		sol.Objective = obj
	}
	if status == StatusOptimal {
		sol.Duals = s.duals()
		sol.Basis = s.exportBasis()
	}
	return sol, nil
}

// residual fills resid with b - N x_N for all nonbasic variables at their
// lower bound (the pre-crash state).
func (s *simplex) residual(resid []float64) {
	copy(resid, s.b)
	for v := 0; v < s.numCols(); v++ {
		x := s.lower[v]
		if x == 0 {
			continue
		}
		rows, vals := s.col(v)
		for k, r := range rows {
			resid[r] -= vals[k] * x
		}
	}
}

// crashBasis builds the initial basis: each row's slack when the residual
// sign allows it to sit feasibly in the basis, an artificial otherwise. EQ
// rows (no slack) always get an artificial. Fewer artificials mean phase 1
// starts closer to feasibility — for all-LE models with nonnegative
// residuals it is skipped entirely.
func (s *simplex) crashBasis(resid []float64) {
	s.artStart = s.numCols()
	s.basis = make([]int, s.m)
	s.xB = make([]float64, s.m)
	s.state = make([]varState, s.artStart, s.artStart+s.m)
	s.nArt = 0
	for i := 0; i < s.m; i++ {
		if sv := s.slackVar[i]; sv >= 0 {
			// Slack value at this basis: +resid (LE) or -resid (GE); its
			// coefficient is ±1, so value = resid / coeff.
			_, vals := s.col(int(sv))
			val := resid[i] / vals[0]
			if val >= 0 {
				s.basis[i] = int(sv)
				s.state[sv] = inBasis
				s.xB[i] = val
				continue
			}
		}
		coeff := 1.0
		if resid[i] < 0 {
			coeff = -1.0
		}
		v := s.addCol(i, coeff, 0, math.Inf(1), 0)
		s.state = append(s.state, inBasis)
		s.basis[i] = v
		s.xB[i] = math.Abs(resid[i])
		s.nArt++
	}
}

// tryWarm attempts to start from a previously exported basis: it must have
// the right size, reference only structural/slack variables, and yield a
// primal-feasible, nonsingular starting point. On any failure the simplex is
// left ready for the cold-start path and false is returned.
func (s *simplex) tryWarm(warm *Basis) bool {
	if len(warm.vars) != s.m {
		return false
	}
	nCols := s.numCols()
	s.artStart = nCols
	s.nArt = 0
	s.state = make([]varState, nCols)
	seen := make([]bool, nCols)
	for _, v := range warm.vars {
		if v < 0 || int(v) >= nCols || seen[v] {
			return false
		}
		seen[v] = true
		s.state[v] = inBasis
	}
	for _, v := range warm.upper {
		if v < 0 || int(v) >= nCols || s.state[v] == inBasis || math.IsInf(s.upper[v], 1) {
			return false
		}
		s.state[v] = atUpper
	}
	s.basis = make([]int, s.m)
	for i, v := range warm.vars {
		s.basis[i] = int(v)
	}
	s.xB = make([]float64, s.m)
	if err := s.refactorize(); err != nil {
		// Singular warm basis: reset for the crash path.
		s.state = nil
		return false
	}
	tol := s.opts.Tol * 10
	feasible := true
	for i, v := range s.basis {
		if s.xB[i] < s.lower[v]-tol || s.xB[i] > s.upper[v]+tol {
			feasible = false
			break
		}
	}
	if feasible {
		return true
	}
	// Bound changes since the basis was exported (branch & bound tightens
	// one variable per node) leave it dual-feasible but primal-infeasible:
	// exactly the case dual simplex repairs in a handful of pivots.
	if s.dualRepair() {
		return true
	}
	s.state = nil
	return false
}

// dualRepair restores primal feasibility of a structurally valid warm basis
// by bounded-variable dual simplex: pick the most-violated basic variable,
// drive it to its violated bound, and choose the entering column by the
// dual ratio test so reduced costs keep their signs. Returns false when it
// cannot finish (no entering column — possibly primal-infeasible — or
// numerical trouble); the caller then falls back to the cold start, which
// settles feasibility authoritatively.
func (s *simplex) dualRepair() bool {
	const pivTol = 1e-9
	tol := s.opts.Tol
	cb := make([]float64, s.m)
	y := make([]float64, s.m)
	rho := make([]float64, s.m)
	unit := make([]float64, s.m)
	alpha := make([]float64, s.m)
	sinceRefresh := 0
	maxIter := 2*s.m + 100
	for iter := 0; iter < maxIter; iter++ {
		// Leaving row: the most violated basic bound.
		r := -1
		worst := tol * 10
		below := false
		for i, v := range s.basis {
			if d := s.lower[v] - s.xB[i]; d > worst {
				worst, r, below = d, i, true
			}
			if d := s.xB[i] - s.upper[v]; d > worst {
				worst, r, below = d, i, false
			}
		}
		if r < 0 {
			return true
		}
		s.iters++
		// Duals and row r of B⁻¹.
		for i, v := range s.basis {
			cb[i] = s.costP2[v]
		}
		s.fact.btran(s, cb, y)
		for i := range unit {
			unit[i] = 0
		}
		unit[r] = 1
		s.fact.btran(s, unit, rho)
		// Dual ratio test: among nonbasic columns able to move x_B[r] toward
		// its bound, take the one whose reduced cost gives way first.
		entering := -1
		best := math.Inf(1)
		for v := 0; v < s.numCols(); v++ {
			if s.state[v] == inBasis || s.lower[v] == s.upper[v] {
				continue
			}
			rows, vals := s.col(v)
			var w float64
			for k, rr := range rows {
				w += rho[rr] * vals[k]
			}
			var ok bool
			if below { // x_B[r] must increase
				ok = (s.state[v] == atLower && w < -pivTol) || (s.state[v] == atUpper && w > pivTol)
			} else { // x_B[r] must decrease
				ok = (s.state[v] == atLower && w > pivTol) || (s.state[v] == atUpper && w < -pivTol)
			}
			if !ok {
				continue
			}
			d := s.costP2[v]
			for k, rr := range rows {
				d -= y[rr] * vals[k]
			}
			ratio := math.Abs(d) / math.Abs(w)
			if ratio < best-1e-12 || (ratio < best+1e-12 && (entering < 0 || v < entering)) {
				best, entering = ratio, v
			}
		}
		if entering < 0 {
			return false
		}
		leavingVar := s.basis[r]
		target := s.upper[leavingVar]
		if below {
			target = s.lower[leavingVar]
		}
		delta := s.xB[r] - target
		s.fact.ftran(s, entering, alpha)
		if math.Abs(alpha[r]) < pivTol {
			// rho-based row entry disagreed with the recomputed column:
			// refactorize and retry the iteration.
			if s.refactorize() != nil {
				return false
			}
			continue
		}
		step := delta / alpha[r]
		rest := s.lower[entering]
		if s.state[entering] == atUpper {
			rest = s.upper[entering]
		}
		if err := s.fact.update(s, r, alpha); err != nil {
			if s.refactorize() != nil {
				return false
			}
			continue
		}
		for i := 0; i < s.m; i++ {
			if i != r {
				s.xB[i] -= alpha[i] * step
			}
		}
		s.xB[r] = rest + step
		s.basis[r] = entering
		s.state[entering] = inBasis
		if below {
			s.state[leavingVar] = atLower
		} else {
			s.state[leavingVar] = atUpper
		}
		sinceRefresh++
		if sinceRefresh >= s.refreshEvery {
			if s.refactorize() != nil {
				return false
			}
			sinceRefresh = 0
		}
	}
	return false
}

// exportBasis snapshots the final basis for warm-starting a related solve.
// Bases that still contain artificial variables are not exportable.
func (s *simplex) exportBasis() *Basis {
	bs := &Basis{vars: make([]int32, s.m)}
	for i, v := range s.basis {
		if v >= s.artStart {
			return nil
		}
		bs.vars[i] = int32(v)
	}
	for v := 0; v < s.artStart; v++ {
		if s.state[v] == atUpper {
			bs.upper = append(bs.upper, int32(v))
		}
	}
	return bs
}

// refactorize rebuilds the basis-inverse representation from s.basis and
// recomputes the basic values.
func (s *simplex) refactorize() error {
	if err := s.fact.refactorize(s); err != nil {
		return err
	}
	s.recomputeXB()
	return nil
}

// duals computes y = c_B B⁻¹ under the phase-2 costs, converted back to the
// model's sense.
func (s *simplex) duals() []float64 {
	cb := make([]float64, s.m)
	for i, v := range s.basis {
		cb[i] = s.costP2[v]
	}
	y := make([]float64, s.m)
	s.fact.btran(s, cb, y)
	if s.maximize {
		for j := range y {
			y[j] = -y[j]
		}
	}
	return y
}

func (s *simplex) phase1Objective() float64 {
	var sum float64
	for i, v := range s.basis {
		if v >= s.artStart {
			sum += s.xB[i]
		}
	}
	for v := s.artStart; v < s.numCols(); v++ {
		if s.state[v] == atUpper {
			// Artificials have infinite upper bound, so this cannot happen;
			// guarded for safety.
			sum += s.upper[v]
		}
	}
	return sum
}

// lockArtificials pins artificial variables to zero so phase 2 cannot use
// them. Artificials still basic (at value ~0) are pivoted out when possible;
// a row whose artificial cannot leave is linearly dependent and harmless.
func (s *simplex) lockArtificials() {
	for v := s.artStart; v < s.numCols(); v++ {
		s.upper[v] = 0
	}
	alpha := make([]float64, s.m)
	row := make([]float64, s.m)
	pivoted := false
	for i := 0; i < s.m; i++ {
		if s.basis[i] < s.artStart {
			continue
		}
		// Row i of B⁻¹, computed once: candidate directions' i-th entries are
		// then sparse dot products.
		for j := range row {
			row[j] = 0
		}
		row[i] = 1
		s.fact.btran(s, row, alpha)
		copy(row, alpha)
		art := s.basis[i]
		for v := 0; v < s.artStart; v++ {
			if s.state[v] == inBasis {
				continue
			}
			rows, vals := s.col(v)
			var entry float64
			for k, r := range rows {
				entry += row[r] * vals[k]
			}
			if math.Abs(entry) > 1e-7 {
				s.fact.ftran(s, v, alpha)
				if err := s.fact.update(s, i, alpha); err != nil {
					continue
				}
				s.basis[i] = v
				s.state[v] = inBasis
				s.state[art] = atLower
				pivoted = true
				break
			}
		}
	}
	if pivoted {
		s.recomputeXB()
	}
}

// iterate runs primal simplex on the given cost vector until optimal.
func (s *simplex) iterate(cost []float64) (Status, error) {
	cb := make([]float64, s.m)
	y := make([]float64, s.m)
	alpha := make([]float64, s.m)
	sinceRefresh := 0
	stall := 0
	prevObj := math.Inf(1)
	bland := false

	for iter := 0; iter < s.opts.MaxIters; iter++ {
		s.iters++
		// Duals: y = c_B B⁻¹.
		for i, v := range s.basis {
			cb[i] = cost[v]
		}
		s.fact.btran(s, cb, y)
		// Pricing: reduced costs touch only each column's nonzeros.
		entering := -1
		var bestScore float64
		enterDir := 1.0
		for v := 0; v < s.numCols(); v++ {
			if s.state[v] == inBasis || s.lower[v] == s.upper[v] {
				continue
			}
			d := cost[v]
			rows, vals := s.col(v)
			for k, r := range rows {
				d -= y[r] * vals[k]
			}
			var score float64
			var dir float64
			if s.state[v] == atLower && d < -s.opts.Tol {
				score, dir = -d, 1
			} else if s.state[v] == atUpper && d > s.opts.Tol {
				score, dir = d, -1
			} else {
				continue
			}
			if bland {
				entering, enterDir = v, dir
				break
			}
			if score > bestScore {
				bestScore, entering, enterDir = score, v, dir
			}
		}
		if entering < 0 {
			return StatusOptimal, nil
		}

		s.fact.ftran(s, entering, alpha)
		// Ratio test: the entering variable moves by enterDir * t, t >= 0;
		// basic variable i moves by -enterDir * alpha[i] * t.
		tMax := s.upper[entering] - s.lower[entering] // bound-flip distance
		leaving := -1
		leavingToUpper := false
		const pivTol = 1e-9
		for i := 0; i < s.m; i++ {
			rate := -enterDir * alpha[i]
			if rate < -pivTol { // basic decreases toward its lower bound
				lb := s.lower[s.basis[i]]
				t := (s.xB[i] - lb) / -rate
				if t < tMax-1e-12 || (leaving >= 0 && bland && t <= tMax+1e-12 && s.basis[i] < s.basis[leaving]) {
					tMax, leaving, leavingToUpper = t, i, false
				}
			} else if rate > pivTol { // basic increases toward its upper bound
				ub := s.upper[s.basis[i]]
				if math.IsInf(ub, 1) {
					continue
				}
				t := (ub - s.xB[i]) / rate
				if t < tMax-1e-12 || (leaving >= 0 && bland && t <= tMax+1e-12 && s.basis[i] < s.basis[leaving]) {
					tMax, leaving, leavingToUpper = t, i, true
				}
			}
		}
		if math.IsInf(tMax, 1) {
			return StatusUnbounded, nil
		}
		if tMax < 0 {
			tMax = 0
		}

		// Apply the step to basic values.
		for i := 0; i < s.m; i++ {
			s.xB[i] -= enterDir * alpha[i] * tMax
		}
		if leaving < 0 {
			// Bound flip: entering jumps to its other bound.
			if s.state[entering] == atLower {
				s.state[entering] = atUpper
			} else {
				s.state[entering] = atLower
			}
		} else {
			if math.Abs(alpha[leaving]) < pivTol {
				if err := s.refactorize(); err != nil {
					return 0, err
				}
				continue
			}
			enterVal := s.lower[entering]
			if s.state[entering] == atUpper {
				enterVal = s.upper[entering]
			}
			enterVal += enterDir * tMax
			leavingVar := s.basis[leaving]
			if err := s.fact.update(s, leaving, alpha); err != nil {
				if err := s.refactorize(); err != nil {
					return 0, err
				}
				continue
			}
			s.basis[leaving] = entering
			s.state[entering] = inBasis
			if leavingToUpper {
				s.state[leavingVar] = atUpper
			} else {
				s.state[leavingVar] = atLower
			}
			s.xB[leaving] = enterVal
			sinceRefresh++
		}

		// Stall detection drives the Bland fallback.
		obj := 0.0
		for i, v := range s.basis {
			obj += cost[v] * s.xB[i]
		}
		if obj < prevObj-1e-10 {
			prevObj = obj
			stall = 0
			bland = false
		} else {
			stall++
			if stall > 2*s.m+50 {
				bland = true
			}
		}

		if sinceRefresh >= s.refreshEvery {
			if err := s.refactorize(); err != nil {
				return 0, err
			}
			sinceRefresh = 0
		}
	}
	return StatusIterLimit, nil
}

// recomputeXB recomputes basic values from nonbasic bounds: x_B = B⁻¹ (b − N x_N).
func (s *simplex) recomputeXB() {
	resid := make([]float64, s.m)
	copy(resid, s.b)
	for v := 0; v < s.numCols(); v++ {
		if s.state[v] == inBasis {
			continue
		}
		x := s.lower[v]
		if s.state[v] == atUpper {
			x = s.upper[v]
		}
		if x == 0 {
			continue
		}
		rows, vals := s.col(v)
		for k, r := range rows {
			resid[r] -= vals[k] * x
		}
	}
	s.fact.applyInv(s, resid)
	copy(s.xB, resid)
}

// extractX returns structural variable values.
func (s *simplex) extractX() []float64 {
	x := make([]float64, s.n)
	for v := 0; v < s.n; v++ {
		switch s.state[v] {
		case atLower:
			x[v] = s.lower[v]
		case atUpper:
			x[v] = s.upper[v]
		}
	}
	for i, v := range s.basis {
		if v < s.n {
			x[v] = s.xB[i]
		}
	}
	return x
}
