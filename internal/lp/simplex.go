package lp

import (
	"errors"
	"fmt"
	"math"
)

// varState tracks where a variable currently sits.
type varState int8

const (
	atLower varState = iota
	atUpper
	inBasis
)

// column is a sparse constraint-matrix column.
type column struct {
	rows []int32
	vals []float64
}

// simplex is a bounded-variable revised primal simplex over the expanded
// (structural + slack + artificial) variable space.
type simplex struct {
	opts Options

	m int // rows
	n int // structural variables

	cols   []column  // all columns, structural then slack then artificial
	lower  []float64 // bounds per expanded variable
	upper  []float64
	costP2 []float64 // phase-2 (true, minimization) costs
	costP1 []float64 // phase-1 costs (1 on artificials)
	b      []float64 // right-hand sides

	nArt     int
	artStart int // first artificial variable index

	basis        []int // variable in each basis position
	state        []varState
	xB           []float64 // values of basic variables by basis position
	binv         [][]float64
	refreshEvery int

	maximize bool
	iters    int
}

// newSimplex expands the model into computational form.
func newSimplex(m *Model, opts Options) *simplex {
	s := &simplex{
		opts:         opts,
		m:            len(m.rows),
		n:            len(m.obj),
		maximize:     m.sense == Maximize,
		refreshEvery: 256,
	}
	// Structural columns.
	s.cols = make([]column, s.n, s.n+2*s.m)
	for i, r := range m.rows {
		for _, t := range r.terms {
			c := &s.cols[t.Var]
			// Merge duplicate variable mentions within the same row.
			merged := false
			for k := len(c.rows) - 1; k >= 0; k-- {
				if c.rows[k] == int32(i) {
					c.vals[k] += t.Coeff
					merged = true
					break
				}
			}
			if !merged {
				c.rows = append(c.rows, int32(i))
				c.vals = append(c.vals, t.Coeff)
			}
		}
	}
	s.lower = append(s.lower, m.lower...)
	s.upper = append(s.upper, m.upper...)
	s.costP2 = make([]float64, s.n)
	for v, c := range m.obj {
		if s.maximize {
			s.costP2[v] = -c
		} else {
			s.costP2[v] = c
		}
	}
	s.b = make([]float64, s.m)
	for i, r := range m.rows {
		s.b[i] = r.rhs
	}
	// Slack columns: LE -> +slack in [0, inf); GE -> -slack in [0, inf);
	// EQ -> none.
	for i, r := range m.rows {
		switch r.op {
		case LE:
			s.addCol(i, 1, 0, math.Inf(1), 0)
		case GE:
			s.addCol(i, -1, 0, math.Inf(1), 0)
		case EQ:
			// no slack
		}
	}
	return s
}

// addCol appends a single-entry column and returns its index.
func (s *simplex) addCol(row int, coeff, lo, hi, cost float64) int {
	s.cols = append(s.cols, column{rows: []int32{int32(row)}, vals: []float64{coeff}})
	s.lower = append(s.lower, lo)
	s.upper = append(s.upper, hi)
	s.costP2 = append(s.costP2, cost)
	return len(s.cols) - 1
}

// errNumerical reports unrecoverable numerical trouble.
var errNumerical = errors.New("lp: numerical failure")

func (s *simplex) solve() (*Solution, error) {
	// Place nonbasic variables at their finite lower bound (validated by
	// SolveWith) and compute the residual each row needs an artificial for.
	resid := make([]float64, s.m)
	copy(resid, s.b)
	for v := range s.cols {
		x := s.lower[v]
		if x != 0 {
			for k, r := range s.cols[v].rows {
				resid[r] -= s.cols[v].vals[k] * x
			}
		}
	}
	// Artificial variables form the initial basis.
	s.artStart = len(s.cols)
	s.basis = make([]int, s.m)
	s.xB = make([]float64, s.m)
	s.state = make([]varState, s.artStart, s.artStart+s.m)
	for i := 0; i < s.m; i++ {
		coeff := 1.0
		if resid[i] < 0 {
			coeff = -1.0
		}
		v := s.addCol(i, coeff, 0, math.Inf(1), 0)
		s.basis[i] = v
		s.state = append(s.state, inBasis)
		s.xB[i] = math.Abs(resid[i])
	}
	s.nArt = s.m
	s.costP1 = make([]float64, len(s.cols))
	for v := s.artStart; v < len(s.cols); v++ {
		s.costP1[v] = 1
	}
	if err := s.refactorize(); err != nil {
		return nil, err
	}

	// Phase 1.
	status, err := s.iterate(s.costP1)
	if err != nil {
		return nil, err
	}
	if status == StatusIterLimit {
		return &Solution{Status: StatusIterLimit, Iters: s.iters}, nil
	}
	if s.phase1Objective() > s.opts.Tol*float64(1+s.m) {
		return &Solution{Status: StatusInfeasible, Iters: s.iters}, nil
	}
	s.lockArtificials()

	// Phase 2.
	status, err = s.iterate(s.costP2)
	if err != nil {
		return nil, err
	}
	sol := &Solution{Status: status, Iters: s.iters}
	if status == StatusOptimal || status == StatusIterLimit {
		sol.X = s.extractX()
		var obj float64
		for v := 0; v < s.n; v++ {
			obj += s.costP2[v] * sol.X[v]
		}
		if s.maximize {
			obj = -obj
		}
		sol.Objective = obj
	}
	if status == StatusOptimal {
		sol.Duals = s.duals()
	}
	return sol, nil
}

// duals computes y = c_B B⁻¹ under the phase-2 costs, converted back to the
// model's sense.
func (s *simplex) duals() []float64 {
	y := make([]float64, s.m)
	for i, v := range s.basis {
		cb := s.costP2[v]
		if cb == 0 {
			continue
		}
		row := s.binv[i]
		for j := 0; j < s.m; j++ {
			y[j] += cb * row[j]
		}
	}
	if s.maximize {
		for j := range y {
			y[j] = -y[j]
		}
	}
	return y
}

func (s *simplex) phase1Objective() float64 {
	var sum float64
	for i, v := range s.basis {
		if v >= s.artStart {
			sum += s.xB[i]
		}
	}
	for v := s.artStart; v < len(s.cols); v++ {
		if s.state[v] == atUpper {
			// Artificials have infinite upper bound, so this cannot happen;
			// guarded for safety.
			sum += s.upper[v]
		}
	}
	return sum
}

// lockArtificials pins artificial variables to zero so phase 2 cannot use
// them. Artificials still basic (at value ~0) are pivoted out when possible;
// a row whose artificial cannot leave is linearly dependent and harmless.
func (s *simplex) lockArtificials() {
	for v := s.artStart; v < len(s.cols); v++ {
		s.upper[v] = 0
	}
	pivoted := false
	for i := 0; i < s.m; i++ {
		if s.basis[i] < s.artStart {
			continue
		}
		// Try to pivot the artificial out of basis position i.
		art := s.basis[i]
		for v := 0; v < s.artStart; v++ {
			if s.state[v] == inBasis {
				continue
			}
			alpha := s.ftranRow(i, v)
			if math.Abs(alpha) > 1e-7 {
				s.pivot(v, i, alpha)
				s.state[art] = atLower
				pivoted = true
				break
			}
		}
	}
	if pivoted {
		s.recomputeXB()
	}
}

// ftranRow returns (B⁻¹ A_v)[i] without materializing the full direction.
func (s *simplex) ftranRow(i, v int) float64 {
	var sum float64
	col := &s.cols[v]
	for k, r := range col.rows {
		sum += s.binv[i][r] * col.vals[k]
	}
	return sum
}

// ftran computes α = B⁻¹ A_v.
func (s *simplex) ftran(v int, alpha []float64) {
	for i := range alpha {
		alpha[i] = 0
	}
	col := &s.cols[v]
	for k, r := range col.rows {
		c := col.vals[k]
		row := int(r)
		for i := 0; i < s.m; i++ {
			alpha[i] += s.binv[i][row] * c
		}
	}
}

// iterate runs primal simplex on the given cost vector until optimal.
func (s *simplex) iterate(cost []float64) (Status, error) {
	y := make([]float64, s.m)
	alpha := make([]float64, s.m)
	sinceRefresh := 0
	stall := 0
	prevObj := math.Inf(1)
	bland := false

	for iter := 0; iter < s.opts.MaxIters; iter++ {
		s.iters++
		// Duals: y = c_B B⁻¹.
		for j := 0; j < s.m; j++ {
			y[j] = 0
		}
		for i, v := range s.basis {
			cb := cost[v]
			if cb == 0 {
				continue
			}
			row := s.binv[i]
			for j := 0; j < s.m; j++ {
				y[j] += cb * row[j]
			}
		}
		// Pricing.
		entering := -1
		var bestScore float64
		enterDir := 1.0
		for v := range s.cols {
			if s.state[v] == inBasis || s.lower[v] == s.upper[v] {
				continue
			}
			d := cost[v]
			col := &s.cols[v]
			for k, r := range col.rows {
				d -= y[r] * col.vals[k]
			}
			var score float64
			var dir float64
			if s.state[v] == atLower && d < -s.opts.Tol {
				score, dir = -d, 1
			} else if s.state[v] == atUpper && d > s.opts.Tol {
				score, dir = d, -1
			} else {
				continue
			}
			if bland {
				entering, enterDir = v, dir
				break
			}
			if score > bestScore {
				bestScore, entering, enterDir = score, v, dir
			}
		}
		if entering < 0 {
			return StatusOptimal, nil
		}

		s.ftran(entering, alpha)
		// Ratio test: the entering variable moves by enterDir * t, t >= 0;
		// basic variable i moves by -enterDir * alpha[i] * t.
		tMax := s.upper[entering] - s.lower[entering] // bound-flip distance
		leaving := -1
		leavingToUpper := false
		const pivTol = 1e-9
		for i := 0; i < s.m; i++ {
			rate := -enterDir * alpha[i]
			if rate < -pivTol { // basic decreases toward its lower bound
				lb := s.lower[s.basis[i]]
				t := (s.xB[i] - lb) / -rate
				if t < tMax-1e-12 || (leaving >= 0 && bland && t <= tMax+1e-12 && s.basis[i] < s.basis[leaving]) {
					tMax, leaving, leavingToUpper = t, i, false
				}
			} else if rate > pivTol { // basic increases toward its upper bound
				ub := s.upper[s.basis[i]]
				if math.IsInf(ub, 1) {
					continue
				}
				t := (ub - s.xB[i]) / rate
				if t < tMax-1e-12 || (leaving >= 0 && bland && t <= tMax+1e-12 && s.basis[i] < s.basis[leaving]) {
					tMax, leaving, leavingToUpper = t, i, true
				}
			}
		}
		if math.IsInf(tMax, 1) {
			return StatusUnbounded, nil
		}
		if tMax < 0 {
			tMax = 0
		}

		// Apply the step to basic values.
		for i := 0; i < s.m; i++ {
			s.xB[i] -= enterDir * alpha[i] * tMax
		}
		if leaving < 0 {
			// Bound flip: entering jumps to its other bound.
			if s.state[entering] == atLower {
				s.state[entering] = atUpper
			} else {
				s.state[entering] = atLower
			}
		} else {
			if math.Abs(alpha[leaving]) < pivTol {
				if err := s.refactorize(); err != nil {
					return 0, err
				}
				continue
			}
			enterVal := s.lower[entering]
			if s.state[entering] == atUpper {
				enterVal = s.upper[entering]
			}
			enterVal += enterDir * tMax
			leavingVar := s.basis[leaving]
			s.pivot(entering, leaving, alpha[leaving])
			if leavingToUpper {
				s.state[leavingVar] = atUpper
			} else {
				s.state[leavingVar] = atLower
			}
			s.xB[leaving] = enterVal
			sinceRefresh++
		}

		// Stall detection drives the Bland fallback.
		obj := 0.0
		for i, v := range s.basis {
			obj += cost[v] * s.xB[i]
		}
		if obj < prevObj-1e-10 {
			prevObj = obj
			stall = 0
			bland = false
		} else {
			stall++
			if stall > 2*s.m+50 {
				bland = true
			}
		}

		if sinceRefresh >= s.refreshEvery {
			if err := s.refactorize(); err != nil {
				return 0, err
			}
			sinceRefresh = 0
		}
	}
	return StatusIterLimit, nil
}

// pivot brings entering into basis position p (alphaP = (B⁻¹A_entering)[p]).
// The caller is responsible for setting the leaving variable's bound state
// and the new basic value xB[p].
func (s *simplex) pivot(entering, p int, alphaP float64) {
	s.basis[p] = entering
	s.state[entering] = inBasis

	// Update B⁻¹ by Gauss-Jordan on the entering direction. We recompute the
	// direction's entries against the pre-pivot inverse row by row.
	alpha := make([]float64, s.m)
	s.ftranInto(entering, alpha)
	pr := s.binv[p]
	inv := 1 / alphaP
	for j := 0; j < s.m; j++ {
		pr[j] *= inv
	}
	for i := 0; i < s.m; i++ {
		if i == p {
			continue
		}
		f := alpha[i]
		if f == 0 {
			continue
		}
		ri := s.binv[i]
		for j := 0; j < s.m; j++ {
			ri[j] -= f * pr[j]
		}
	}
}

// ftranInto is ftran against the current inverse (helper for pivot, which
// needs the direction before modifying binv).
func (s *simplex) ftranInto(v int, alpha []float64) {
	col := &s.cols[v]
	for i := 0; i < s.m; i++ {
		var sum float64
		row := s.binv[i]
		for k, r := range col.rows {
			sum += row[r] * col.vals[k]
		}
		alpha[i] = sum
	}
}

// refactorize rebuilds B⁻¹ from the basis columns by Gauss-Jordan with
// partial pivoting and recomputes basic values.
func (s *simplex) refactorize() error {
	m := s.m
	// Build the dense basis matrix.
	bmat := make([][]float64, m)
	for i := range bmat {
		bmat[i] = make([]float64, 2*m)
	}
	for pos, v := range s.basis {
		col := &s.cols[v]
		for k, r := range col.rows {
			bmat[r][pos] = col.vals[k]
		}
	}
	for i := 0; i < m; i++ {
		bmat[i][m+i] = 1
	}
	for c := 0; c < m; c++ {
		// Partial pivot.
		p := c
		for r := c + 1; r < m; r++ {
			if math.Abs(bmat[r][c]) > math.Abs(bmat[p][c]) {
				p = r
			}
		}
		if math.Abs(bmat[p][c]) < 1e-12 {
			return fmt.Errorf("%w: singular basis at column %d", errNumerical, c)
		}
		bmat[c], bmat[p] = bmat[p], bmat[c]
		inv := 1 / bmat[c][c]
		for j := c; j < 2*m; j++ {
			bmat[c][j] *= inv
		}
		for r := 0; r < m; r++ {
			if r == c {
				continue
			}
			f := bmat[r][c]
			if f == 0 {
				continue
			}
			for j := c; j < 2*m; j++ {
				bmat[r][j] -= f * bmat[c][j]
			}
		}
	}
	if s.binv == nil {
		s.binv = make([][]float64, m)
		for i := range s.binv {
			s.binv[i] = make([]float64, m)
		}
	}
	for i := 0; i < m; i++ {
		copy(s.binv[i], bmat[i][m:])
	}
	s.recomputeXB()
	return nil
}

// recomputeXB recomputes basic values from nonbasic bounds: x_B = B⁻¹ (b − N x_N).
func (s *simplex) recomputeXB() {
	resid := make([]float64, s.m)
	copy(resid, s.b)
	for v := range s.cols {
		if s.state[v] == inBasis {
			continue
		}
		x := s.lower[v]
		if s.state[v] == atUpper {
			x = s.upper[v]
		}
		if x == 0 {
			continue
		}
		col := &s.cols[v]
		for k, r := range col.rows {
			resid[r] -= col.vals[k] * x
		}
	}
	for i := 0; i < s.m; i++ {
		var sum float64
		row := s.binv[i]
		for j := 0; j < s.m; j++ {
			sum += row[j] * resid[j]
		}
		s.xB[i] = sum
	}
}

// extractX returns structural variable values.
func (s *simplex) extractX() []float64 {
	x := make([]float64, s.n)
	for v := 0; v < s.n; v++ {
		switch s.state[v] {
		case atLower:
			x[v] = s.lower[v]
		case atUpper:
			x[v] = s.upper[v]
		}
	}
	for i, v := range s.basis {
		if v < s.n {
			x[v] = s.xB[i]
		}
	}
	return x
}
