package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomModel generates a bounded LP that is feasible by construction about
// half the time (random RHS otherwise, so infeasible instances are also
// exercised), with controllable size and sparsity.
func randomModel(rng *rand.Rand, nv, nr int) *Model {
	m := NewModel(Maximize)
	point := make([]float64, nv)
	for v := 0; v < nv; v++ {
		ub := float64(1 + rng.Intn(9))
		if rng.Intn(4) == 0 {
			ub = math.Inf(1)
		}
		obj := float64(rng.Intn(21) - 10)
		if math.IsInf(ub, 1) && obj > 0 && rng.Intn(2) == 0 {
			obj = -obj // keep unbounded objectives rare but present
		}
		m.AddVar(0, ub, obj, "")
		hi := ub
		if math.IsInf(hi, 1) {
			hi = 6
		}
		point[v] = hi * rng.Float64()
	}
	for r := 0; r < nr; r++ {
		terms := make([]Term, 0, nv)
		val := 0.0
		for v := 0; v < nv; v++ {
			if rng.Intn(3) != 0 { // ~2/3 sparsity
				continue
			}
			c := float64(rng.Intn(11) - 5)
			if c == 0 {
				continue
			}
			terms = append(terms, Term{v, c})
			val += c * point[v]
		}
		if len(terms) == 0 {
			continue
		}
		var op Op
		var rhs float64
		switch rng.Intn(4) {
		case 0:
			op, rhs = LE, val+rng.Float64()*3
		case 1:
			op, rhs = GE, val-rng.Float64()*3
		case 2:
			op, rhs = EQ, val
		default:
			// Arbitrary RHS: possibly infeasible.
			op = []Op{LE, GE, EQ}[rng.Intn(3)]
			rhs = float64(rng.Intn(21) - 10)
		}
		if err := m.AddRow(op, rhs, terms...); err != nil {
			panic(err)
		}
	}
	return m
}

// checkFeasible verifies x against the model's bounds and rows.
func checkFeasible(t *testing.T, m *Model, x []float64, label string) {
	t.Helper()
	const tol = 1e-6
	for v := range m.obj {
		if x[v] < m.lower[v]-tol || x[v] > m.upper[v]+tol {
			t.Fatalf("%s: x[%d]=%v outside [%v, %v]", label, v, x[v], m.lower[v], m.upper[v])
		}
	}
	for ri, r := range m.rows {
		val := 0.0
		for _, tm := range r.terms {
			val += tm.Coeff * x[tm.Var]
		}
		switch r.op {
		case LE:
			if val > r.rhs+tol {
				t.Fatalf("%s: row %d: %v > %v", label, ri, val, r.rhs)
			}
		case GE:
			if val < r.rhs-tol {
				t.Fatalf("%s: row %d: %v < %v", label, ri, val, r.rhs)
			}
		case EQ:
			if math.Abs(val-r.rhs) > tol {
				t.Fatalf("%s: row %d: %v != %v", label, ri, val, r.rhs)
			}
		}
	}
}

// TestSparseDenseEquivalence pins the eta-file engine to the dense explicit
// inverse on generated LPs: identical statuses, objectives within tolerance,
// and both returned points feasible. The two engines may land on different
// optimal vertices, so X is checked for feasibility, not equality.
func TestSparseDenseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 250; trial++ {
		nv := 1 + rng.Intn(12)
		nr := rng.Intn(15)
		m := randomModel(rng, nv, nr)
		dense, err := m.SolveWith(Options{Factorization: FactorDense})
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		sparse, err := m.SolveWith(Options{Factorization: FactorSparse})
		if err != nil {
			t.Fatalf("trial %d: sparse: %v", trial, err)
		}
		if dense.Status != sparse.Status {
			t.Fatalf("trial %d: dense %v vs sparse %v", trial, dense.Status, sparse.Status)
		}
		if dense.Status != StatusOptimal {
			continue
		}
		if math.Abs(dense.Objective-sparse.Objective) > 1e-6*(1+math.Abs(dense.Objective)) {
			t.Fatalf("trial %d: dense obj %v vs sparse obj %v", trial, dense.Objective, sparse.Objective)
		}
		checkFeasible(t, m, dense.X, "dense")
		checkFeasible(t, m, sparse.X, "sparse")
	}
}

// TestSparseDenseEquivalenceLarge drives the equivalence on LPs big enough
// that FactorAuto actually selects the eta path (m > denseCutoff).
func TestSparseDenseEquivalenceLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		nv := 40 + rng.Intn(40)
		nr := denseCutoff + 10 + rng.Intn(40)
		m := randomModel(rng, nv, nr)
		dense, err := m.SolveWith(Options{Factorization: FactorDense})
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		auto, err := m.SolveWith(Options{})
		if err != nil {
			t.Fatalf("trial %d: auto: %v", trial, err)
		}
		if dense.Status != auto.Status {
			t.Fatalf("trial %d: dense %v vs auto %v", trial, dense.Status, auto.Status)
		}
		if dense.Status == StatusOptimal &&
			math.Abs(dense.Objective-auto.Objective) > 1e-6*(1+math.Abs(dense.Objective)) {
			t.Fatalf("trial %d: dense obj %v vs auto obj %v", trial, dense.Objective, auto.Objective)
		}
	}
}

// TestWarmStartReuse solves, re-solves with the exported basis under the
// same and tightened bounds, and checks the warm solve agrees with a cold
// solve. A same-bounds warm re-solve must converge without any simplex
// pivots beyond pricing confirmation.
func TestWarmStartReuse(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddVar(0, 10, 3, "x")
	y := m.AddVar(0, 10, 5, "y")
	mustRow(t, m, LE, 4, Term{x, 1})
	mustRow(t, m, LE, 12, Term{y, 2})
	mustRow(t, m, LE, 18, Term{x, 3}, Term{y, 2})
	cold := solveOrFatal(t, m)
	wantStatus(t, cold, StatusOptimal)
	if cold.Basis == nil {
		t.Fatal("no exported basis at optimality")
	}

	warm, err := m.SolveWith(Options{Warm: cold.Basis})
	if err != nil {
		t.Fatalf("warm re-solve: %v", err)
	}
	wantStatus(t, warm, StatusOptimal)
	wantObj(t, warm, cold.Objective)
	if warm.Iters > 1 {
		t.Fatalf("same-bounds warm start took %d iterations, want <= 1", warm.Iters)
	}

	// Tighten a bound that keeps the parent basis feasible.
	if err := m.SetBounds(y, 0, 6); err != nil {
		t.Fatal(err)
	}
	warm2, err := m.SolveWith(Options{Warm: cold.Basis})
	if err != nil {
		t.Fatalf("warm tightened: %v", err)
	}
	cold2, err := m.SolveWith(Options{})
	if err != nil {
		t.Fatalf("cold tightened: %v", err)
	}
	if warm2.Status != cold2.Status {
		t.Fatalf("warm %v vs cold %v", warm2.Status, cold2.Status)
	}
	if math.Abs(warm2.Objective-cold2.Objective) > 1e-6 {
		t.Fatalf("warm obj %v vs cold obj %v", warm2.Objective, cold2.Objective)
	}
}

// TestWarmStartRandom cross-checks warm-started solves against cold solves
// under random bound tightenings, for both factorizations.
func TestWarmStartRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5150))
	for trial := 0; trial < 120; trial++ {
		nv := 2 + rng.Intn(10)
		nr := 1 + rng.Intn(10)
		m := randomModel(rng, nv, nr)
		fact := Factorization(trial % 3) // auto, dense, sparse round-robin
		base, err := m.SolveWith(Options{Factorization: fact})
		if err != nil {
			t.Fatalf("trial %d: base: %v", trial, err)
		}
		if base.Status != StatusOptimal || base.Basis == nil {
			continue
		}
		// Tighten one variable's bounds around an integer split of its value.
		v := rng.Intn(nv)
		lo, hi, _ := m.Bounds(v)
		if rng.Intn(2) == 0 {
			hi = math.Floor(base.X[v])
		} else {
			lo = math.Ceil(base.X[v])
		}
		if lo > hi {
			continue
		}
		if err := m.SetBounds(v, lo, hi); err != nil {
			t.Fatalf("trial %d: SetBounds: %v", trial, err)
		}
		warm, err := m.SolveWith(Options{Factorization: fact, Warm: base.Basis})
		if err != nil {
			t.Fatalf("trial %d: warm: %v", trial, err)
		}
		cold, err := m.SolveWith(Options{Factorization: fact})
		if err != nil {
			t.Fatalf("trial %d: cold: %v", trial, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm %v vs cold %v", trial, warm.Status, cold.Status)
		}
		if warm.Status == StatusOptimal {
			if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
				t.Fatalf("trial %d: warm obj %v vs cold obj %v", trial, warm.Objective, cold.Objective)
			}
			checkFeasible(t, m, warm.X, "warm")
		}
	}
}
