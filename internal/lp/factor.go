package lp

import (
	"fmt"
	"math"
	"sort"
)

// factorizer is the basis-inverse representation behind the simplex: either
// a dense explicit inverse (tiny models) or a product-form eta file with
// sparse refactorization. Basis positions are identified with constraint
// rows; a factorizer's refactorize may permute s.basis to establish that
// identification.
type factorizer interface {
	// refactorize rebuilds the representation from s.basis. It may reorder
	// s.basis (the basis is a set; positions are representation-defined).
	// The caller recomputes xB afterwards.
	refactorize(s *simplex) error
	// ftran computes alpha = B⁻¹ A_v.
	ftran(s *simplex, v int, alpha []float64)
	// btran computes y = cb B⁻¹ (cb indexed by basis position).
	btran(s *simplex, cb, y []float64)
	// applyInv replaces x with B⁻¹ x.
	applyInv(s *simplex, x []float64)
	// update absorbs a pivot: basis position p is being replaced by the
	// variable whose pre-pivot direction is alpha (= B⁻¹ A_enter). It is
	// called before s.basis is rewritten.
	update(s *simplex, p int, alpha []float64) error
}

// --- dense explicit inverse ---

// denseFactor keeps B⁻¹ as a dense matrix, updated by Gauss-Jordan on each
// pivot and rebuilt by partial-pivoting elimination. O(m²) per pivot and
// O(m³) per refactorization — the right trade only for tiny models.
type denseFactor struct {
	binv [][]float64
}

func (d *denseFactor) refactorize(s *simplex) error {
	m := s.m
	// Build the dense basis matrix augmented with the identity.
	bmat := make([][]float64, m)
	for i := range bmat {
		bmat[i] = make([]float64, 2*m)
	}
	for pos, v := range s.basis {
		rows, vals := s.col(v)
		for k, r := range rows {
			bmat[r][pos] = vals[k]
		}
	}
	for i := 0; i < m; i++ {
		bmat[i][m+i] = 1
	}
	for c := 0; c < m; c++ {
		// Partial pivot.
		p := c
		for r := c + 1; r < m; r++ {
			if math.Abs(bmat[r][c]) > math.Abs(bmat[p][c]) {
				p = r
			}
		}
		if math.Abs(bmat[p][c]) < 1e-12 {
			return fmt.Errorf("%w: singular basis at column %d", errNumerical, c)
		}
		bmat[c], bmat[p] = bmat[p], bmat[c]
		inv := 1 / bmat[c][c]
		for j := c; j < 2*m; j++ {
			bmat[c][j] *= inv
		}
		for r := 0; r < m; r++ {
			if r == c {
				continue
			}
			f := bmat[r][c]
			if f == 0 {
				continue
			}
			for j := c; j < 2*m; j++ {
				bmat[r][j] -= f * bmat[c][j]
			}
		}
	}
	if d.binv == nil {
		d.binv = make([][]float64, m)
		for i := range d.binv {
			d.binv[i] = make([]float64, m)
		}
	}
	for i := 0; i < m; i++ {
		copy(d.binv[i], bmat[i][m:])
	}
	return nil
}

func (d *denseFactor) ftran(s *simplex, v int, alpha []float64) {
	for i := range alpha {
		alpha[i] = 0
	}
	rows, vals := s.col(v)
	for k, r := range rows {
		c := vals[k]
		row := int(r)
		for i := 0; i < s.m; i++ {
			alpha[i] += d.binv[i][row] * c
		}
	}
}

func (d *denseFactor) btran(s *simplex, cb, y []float64) {
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < s.m; i++ {
		c := cb[i]
		if c == 0 {
			continue
		}
		row := d.binv[i]
		for j := 0; j < s.m; j++ {
			y[j] += c * row[j]
		}
	}
}

func (d *denseFactor) applyInv(s *simplex, x []float64) {
	out := make([]float64, s.m)
	for i := 0; i < s.m; i++ {
		var sum float64
		row := d.binv[i]
		for j := 0; j < s.m; j++ {
			sum += row[j] * x[j]
		}
		out[i] = sum
	}
	copy(x, out)
}

func (d *denseFactor) update(s *simplex, p int, alpha []float64) error {
	// Gauss-Jordan on the entering direction: row p is scaled by 1/alpha_p,
	// every other row i is reduced by alpha_i times the new row p.
	pr := d.binv[p]
	inv := 1 / alpha[p]
	for j := 0; j < s.m; j++ {
		pr[j] *= inv
	}
	for i := 0; i < s.m; i++ {
		if i == p {
			continue
		}
		f := alpha[i]
		if f == 0 {
			continue
		}
		ri := d.binv[i]
		for j := 0; j < s.m; j++ {
			ri[j] -= f * pr[j]
		}
	}
	return nil
}

// --- product-form eta file ---

// eta is one elementary transformation: the matrix that equals the identity
// except in column p, where it holds diag on the diagonal and vals on rows.
type eta struct {
	p    int32
	diag float64
	rows []int32
	vals []float64
}

// etaFactor represents B⁻¹ as a product of elementary matrices
// E_k ··· E_1 (the product-form inverse). FTRAN applies the etas in order,
// BTRAN in reverse; each application touches only the eta's nonzeros, so the
// cost tracks the basis's fill rather than m². Refactorization rebuilds the
// product by sparse Gauss-Jordan elimination over the basis columns,
// processing sparsest columns first and permuting s.basis so that basis
// positions coincide with pivot rows.
type etaFactor struct {
	etas []eta
	// scratch buffers reused across calls.
	dense []float64
}

func (e *etaFactor) scratch(m int) []float64 {
	if cap(e.dense) < m {
		e.dense = make([]float64, m)
	}
	buf := e.dense[:m]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// dropTol discards eta entries smaller than this; they cannot influence a
// pivot decision above the solver tolerances but would accumulate fill.
const dropTol = 1e-13

func (e *etaFactor) refactorize(s *simplex) error {
	m := s.m
	e.etas = e.etas[:0]
	// Process basis columns sparsest-first (deterministic tiebreak on
	// position) — short columns early keep the partial products sparse.
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		va, vb := s.basis[order[a]], s.basis[order[b]]
		na := s.colPtr[va+1] - s.colPtr[va]
		nb := s.colPtr[vb+1] - s.colPtr[vb]
		if na != nb {
			return na < nb
		}
		return order[a] < order[b]
	})
	used := make([]bool, m)
	newBasis := make([]int, m)
	work := e.scratch(m)
	for _, pos := range order {
		v := s.basis[pos]
		// work = (E_t ··· E_1) A_v with the etas built so far.
		for i := range work {
			work[i] = 0
		}
		rows, vals := s.col(v)
		for k, r := range rows {
			work[r] = vals[k]
		}
		e.apply(work)
		// Pivot on the largest remaining row (stability; smallest index on
		// ties for determinism).
		p := -1
		best := 0.0
		for r := 0; r < m; r++ {
			if used[r] {
				continue
			}
			if a := math.Abs(work[r]); a > best {
				best, p = a, r
			}
		}
		if p < 0 || best < 1e-11 {
			return fmt.Errorf("%w: singular basis at position %d", errNumerical, pos)
		}
		e.push(p, work)
		used[p] = true
		newBasis[p] = v
	}
	copy(s.basis, newBasis)
	return nil
}

// push appends the eta eliminating column direction work with pivot row p.
func (e *etaFactor) push(p int, work []float64) {
	inv := 1 / work[p]
	et := eta{p: int32(p), diag: inv}
	for r, a := range work {
		if r == p || a == 0 {
			continue
		}
		val := -a * inv
		if math.Abs(val) < dropTol {
			continue
		}
		et.rows = append(et.rows, int32(r))
		et.vals = append(et.vals, val)
	}
	e.etas = append(e.etas, et)
}

// apply multiplies x by the eta product in order: x ← E_k ··· E_1 x.
func (e *etaFactor) apply(x []float64) {
	for idx := range e.etas {
		et := &e.etas[idx]
		xp := x[et.p]
		if xp == 0 {
			continue
		}
		x[et.p] = et.diag * xp
		for k, r := range et.rows {
			x[r] += et.vals[k] * xp
		}
	}
}

// applyT multiplies a row vector by the product from the right:
// y ← y E_k ··· E_1, processing etas last-to-first. Only component p of y
// changes per eta.
func (e *etaFactor) applyT(y []float64) {
	for idx := len(e.etas) - 1; idx >= 0; idx-- {
		et := &e.etas[idx]
		acc := et.diag * y[et.p]
		for k, r := range et.rows {
			acc += et.vals[k] * y[r]
		}
		y[et.p] = acc
	}
}

func (e *etaFactor) ftran(s *simplex, v int, alpha []float64) {
	for i := range alpha {
		alpha[i] = 0
	}
	rows, vals := s.col(v)
	for k, r := range rows {
		alpha[r] = vals[k]
	}
	e.apply(alpha)
}

func (e *etaFactor) btran(s *simplex, cb, y []float64) {
	copy(y, cb)
	e.applyT(y)
}

func (e *etaFactor) applyInv(s *simplex, x []float64) {
	e.apply(x)
}

func (e *etaFactor) update(s *simplex, p int, alpha []float64) error {
	if math.Abs(alpha[p]) < 1e-11 {
		return fmt.Errorf("%w: pivot %g at position %d", errNumerical, alpha[p], p)
	}
	e.push(p, alpha)
	return nil
}
