// Package medic is the event-driven recovery orchestrator of the online
// daemon (cmd/pmedicd): it consumes liveness events from internal/monitor
// and keeps the network's path programmability reconciled with the failure
// set the detector reports — the paper's PM algorithm, run continuously
// instead of once.
//
// One serialized reconcile loop owns all decisions. Per event batch it:
//
//   - compiles the current failure set into a scenario.Instance and solves
//     it (core.PM by default);
//   - for successive failures, reuses scenario.Instance.Residual to drop
//     switches already proven unreachable in this episode, so a new failure
//     does not re-spend push attempts on known-dead agents;
//   - pushes the plan through sdnsim.PushRecoveryResilient and adopts the
//     achieved mapping into the simulator's ownership bookkeeping;
//   - on controller return, restores the ideal configuration of the
//     returned domain through sdnsim.RestoreIdeal (fail-back) and re-plans
//     whatever failures remain.
//
// Epochs number the event batches; the generation IDs claimed on the wire
// are derived from the epoch, so a slow push from an earlier epoch can
// never re-take a switch from a newer one (the agents refuse the stale
// claim), and a plan computed for an epoch that queued newer events before
// it was pushed is discarded, never pushed. Every decision lands in a
// bounded structured event log, exposed with the rest of the daemon state
// via the HTTP status handler (status.go).
package medic

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/monitor"
	"pmedic/internal/planstore"
	"pmedic/internal/scenario"
	"pmedic/internal/sdnsim"
	"pmedic/internal/store"
	"pmedic/internal/topo"
)

// genStride spaces the wire generation IDs of successive epochs, leaving
// room for the push driver's stale-claim resynchronization bumps inside an
// epoch while keeping later epochs strictly larger.
const genStride = 1 << 20

// PushFunc delivers a recovery plan; it matches sdnsim.PushRecoveryResilient.
type PushFunc func(addrs map[topo.NodeID]string, flows *flow.Set, inst *scenario.Instance,
	sol *core.Solution, opts sdnsim.PushOptions) (*sdnsim.RecoveryReport, error)

// RestoreFunc delivers a fail-back; it matches sdnsim.RestoreIdeal.
type RestoreFunc func(addrs map[topo.NodeID]string, flows *flow.Set, switches []topo.NodeID,
	opts sdnsim.PushOptions) (*sdnsim.RestoreReport, error)

// Config wires a Medic. Dep, Flows, and Addrs are required.
type Config struct {
	Dep   *topo.Deployment
	Flows *flow.Set
	// Addrs is the switch-agent address registry pushes are delivered to.
	Addrs map[topo.NodeID]string
	// Net, when set, receives ownership bookkeeping (AdoptMapping) after
	// each successful push. Only the concurrency-safe lifecycle surface of
	// Network is used.
	Net *sdnsim.Network
	// Push tunes the wire drivers; GenerationID and Seed are overridden
	// per epoch.
	Push sdnsim.PushOptions
	// Solve replaces the planning algorithm (default core.PM).
	Solve func(*core.Problem) (*core.Solution, error)
	// Plans, when set, is the precompiled plan store consulted before every
	// solve: an exact hit serves the stored plan (byte-identical to a fresh
	// solve), an uncompiled set falls back to the nearest superset plan plus
	// a residual repair, and only a miss pays the full solve. The store's
	// lifecycle (Open/Close) belongs to the caller. A store whose topology
	// hash does not match Dep and Flows is refused at New and the daemon
	// degrades to the solve path.
	Plans *planstore.Store
	// Pusher and Restorer replace the wire drivers (defaults:
	// sdnsim.PushRecoveryResilient, sdnsim.RestoreIdeal); tests stub them.
	Pusher   PushFunc
	Restorer RestoreFunc
	// LogSize bounds the structured event log (default 256 entries).
	LogSize int

	// Store, when set, persists the daemon's durable state — epoch, failure
	// set, adopted mapping, unreachable set, event log — as snapshot+WAL.
	// New replays it, so a restarted daemon resumes mid-episode at an epoch
	// strictly greater than anything it persisted, instead of re-detecting
	// from scratch. The medic appends records; the store's lifecycle (Open/
	// Close) belongs to the caller.
	Store *store.Store
	// CheckpointEvery folds the WAL into a fresh snapshot once this many
	// records accumulate (default 64).
	CheckpointEvery int
	// ReplicaID names this daemon instance in Status (HA deployments).
	ReplicaID string
	// OnFenced fires (once per reconcile, on the loop goroutine) when a
	// push is refused by generation-ID fencing — the signal that a newer
	// leader has taken over and this daemon must step down.
	OnFenced func()
}

// Medic is the reconcile loop. Create with New, feed with Start.
type Medic struct {
	cfg Config
	// ctx caches the failure-independent scenario state (delay vectors,
	// middle-layer placement, domain loads), so every reconcile compiles its
	// failure set without re-walking the topology.
	ctx *scenario.Context
	// plans is cfg.Plans after the topology-hash gate: nil when no store is
	// configured or the store was compiled for a different deployment.
	plans *planstore.Store

	mu sync.Mutex
	// epoch counts applied event batches; 0 = nothing ever detected.
	epoch uint64
	// failed is the controller set currently believed down.
	failed map[int]bool
	// pendingRecovered are controllers whose return has been detected but
	// whose domains have not been restored yet.
	pendingRecovered []int
	// unreachable accumulates switches demoted by pushes in this failure
	// episode; cleared when the failure set empties.
	unreachable map[topo.NodeID]bool
	snap        snapshot
	// role and term are the HA identity Status reports (SetRole).
	role string
	term uint64

	log     *eventLog
	metrics *Metrics
	// persistFailures counts store writes that failed (durability degraded
	// but the daemon stays up).
	persistFailures uint64

	events    <-chan monitor.Event
	startOnce sync.Once
	stopOnce  sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// snapshot is the reconciled state Status reports. Every field is
// JSON-serializable because the same struct is the persisted "outcome"
// payload: what Status shows after a restart is byte-for-byte what the
// dead daemon last reconciled.
type snapshot struct {
	Converged bool   `json:"converged"`
	Ideal     bool   `json:"ideal"`
	Label     string `json:"label,omitempty"`
	Restores  int    `json:"restores"`

	MinProg        int `json:"min_prog"`
	TotalProg      int `json:"total_prog"`
	RecoveredFlows int `json:"recovered_flows"`
	OfflineFlows   int `json:"offline_flows"`
	PushRounds     int `json:"push_rounds,omitempty"`
	FlowModsAcked  int `json:"flow_mods_acked,omitempty"`

	Mapping  []MappingEntry `json:"mapping,omitempty"`
	FlowProg []FlowProg     `json:"flow_prog,omitempty"`

	UpdatedAt time.Time `json:"updated_at"`
}

// New validates the wiring and returns an idle Medic.
func New(cfg Config) (*Medic, error) {
	if cfg.Dep == nil || cfg.Flows == nil {
		return nil, errors.New("medic: Dep and Flows are required")
	}
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("medic: empty switch-agent address registry")
	}
	if cfg.Solve == nil {
		cfg.Solve = core.PM
	}
	if cfg.Pusher == nil {
		cfg.Pusher = sdnsim.PushRecoveryResilient
	}
	if cfg.Restorer == nil {
		cfg.Restorer = sdnsim.RestoreIdeal
	}
	if cfg.LogSize <= 0 {
		cfg.LogSize = 256
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 64
	}
	ctx, err := scenario.NewContext(cfg.Dep, cfg.Flows)
	if err != nil {
		return nil, fmt.Errorf("medic: %w", err)
	}
	m := &Medic{
		cfg:         cfg,
		ctx:         ctx,
		failed:      make(map[int]bool),
		unreachable: make(map[topo.NodeID]bool),
		snap:        snapshot{Converged: true, Ideal: true, UpdatedAt: time.Now()},
		log:         newEventLog(cfg.LogSize),
		metrics:     newMetrics(),
		done:        make(chan struct{}),
	}
	if cfg.Plans != nil {
		// A store compiled for a different deployment would serve plans whose
		// switch indices, delays, and capacities are all stale: refuse it and
		// keep recovering on the solve path instead of pushing garbage.
		if got, want := cfg.Plans.Header().TopoHash, planstore.TopoHash(cfg.Dep, cfg.Flows); got != want {
			m.log.addf(KindError, "plan store %s disabled: topology hash %#x does not match deployment %#x",
				cfg.Plans.Path(), got, want)
		} else {
			m.plans = cfg.Plans
			m.metrics.wirePlans()
			m.log.addf(KindPlan, "plan store %s: %d precompiled plans up to depth %d (%s)",
				cfg.Plans.Path(), cfg.Plans.Len(), cfg.Plans.Header().Depth, cfg.Plans.Header().Algorithm)
		}
	}
	if cfg.Store != nil {
		m.metrics.wireStore(cfg.Store)
		ds, err := replayDurable(cfg.Store.Snapshot(), cfg.Store.Records())
		if err != nil {
			return nil, fmt.Errorf("medic: restore: %w", err)
		}
		if ds != nil {
			m.restore(ds)
		}
		// Wire the log to the WAL only after restore, so replayed entries
		// are not re-appended.
		m.log.onAppend = m.persistLogEntry
		if ds != nil {
			m.log.addf(KindResume, "resumed at epoch %d from snapshot+WAL: failed=%v, %d unreachable, log seq %d",
				m.epoch, ds.Failed, len(ds.Unreachable), ds.LogSeq)
		}
	}
	return m, nil
}

// restore loads a replayed durable state and bumps the epoch, so the
// resumed daemon's first generation ID is strictly greater than anything
// the dead incarnation could have signed — its in-flight pushes are fenced
// on the wire.
func (m *Medic) restore(ds *durableState) {
	m.epoch = ds.Epoch + 1
	for _, j := range ds.Failed {
		m.failed[j] = true
	}
	m.pendingRecovered = append([]int(nil), ds.PendingRecovered...)
	for _, sw := range ds.Unreachable {
		m.unreachable[sw] = true
	}
	m.snap = ds.Snap
	m.log.restoreRing(ds.LogSeq, ds.LogEntries)
}

// Epoch returns the current epoch.
func (m *Medic) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// FenceGen is the generation a freshly promoted leader stamps onto the
// agents (sdnsim.FenceAgents): the bottom of the current epoch's range.
// Every claim signed by an earlier epoch — the deposed leader's — compares
// below it and is refused.
func (m *Medic) FenceGen() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch * genStride
}

// SetRole records the daemon's HA identity for Status and the leader
// gauge.
func (m *Medic) SetRole(role string, term uint64) {
	m.mu.Lock()
	m.role, m.term = role, term
	m.mu.Unlock()
	m.metrics.setLeader(role == "leader", term)
}

// Metrics exposes the daemon's metrics registry (the /metrics source).
func (m *Medic) Metrics() *Metrics { return m.metrics }

// Start launches the reconcile loop over the detector's event stream. The
// loop exits when the stream closes or Stop is called.
func (m *Medic) Start(events <-chan monitor.Event) {
	m.startOnce.Do(func() {
		m.events = events
		m.wg.Add(1)
		go m.run()
	})
}

// Stop halts the loop and waits for an in-flight reconcile to finish.
func (m *Medic) Stop() {
	m.stopOnce.Do(func() {
		close(m.done)
		m.wg.Wait()
	})
}

func (m *Medic) run() {
	defer m.wg.Done()
	for {
		select {
		case <-m.done:
			return
		case ev, ok := <-m.events:
			if !ok {
				return
			}
			m.apply(ev)
			// Batch whatever the detector queued behind it: correlated
			// events collapse into one reconcile.
			for drained := false; !drained; {
				select {
				case ev2, ok2 := <-m.events:
					if !ok2 {
						drained = true
						break
					}
					m.apply(ev2)
				default:
					drained = true
				}
			}
			m.reconcile()
		}
	}
}

// apply folds one detector event into the failure set and advances the
// epoch.
func (m *Medic) apply(ev monitor.Event) {
	m.mu.Lock()
	m.epoch++
	epoch := m.epoch
	for _, j := range ev.Failed {
		m.failed[j] = true
	}
	for _, j := range ev.Recovered {
		if m.failed[j] {
			delete(m.failed, j)
			m.pendingRecovered = append(m.pendingRecovered, j)
		}
	}
	m.mu.Unlock()
	m.metrics.addEpoch()
	m.persistDetect(epoch, ev)
	m.log.addf(KindDetect, "epoch %d: %s", epoch, ev)
}

// stalePlan reports whether newer detector events are already queued — the
// signal that a plan computed for the current epoch must be discarded
// instead of pushed.
func (m *Medic) stalePlan() bool { return len(m.events) > 0 }

// pushOpts derives the wire options for one epoch: an epoch-ranked
// generation ID (stale pushes are refused on the wire), the matching
// fencing limit (a push signed by this epoch may resynchronize inside the
// epoch's generation stride but never claim into a later epoch's range),
// and a decorrelated retry-jitter seed.
func (m *Medic) pushOpts(epoch uint64) sdnsim.PushOptions {
	opts := m.cfg.Push
	opts.GenerationID = epoch*genStride + 1
	opts.GenerationLimit = (epoch+1)*genStride - 1
	opts.Seed = m.cfg.Push.Seed ^ int64(epoch)
	return opts
}

// reconcile drives the failure set to a pushed, adopted plan. It runs only
// on the loop goroutine; the epoch cannot advance underneath it, but newer
// events can queue, which is checked between planning and pushing.
func (m *Medic) reconcile() {
	start := time.Now()
	defer func() {
		m.metrics.observeReconcile(time.Since(start))
		m.persistOutcome()
		m.maybeCheckpoint()
	}()

	m.mu.Lock()
	epoch := m.epoch
	failed := make([]int, 0, len(m.failed))
	for j := range m.failed {
		failed = append(failed, j)
	}
	sort.Ints(failed)
	recovered := m.pendingRecovered
	m.pendingRecovered = nil
	m.mu.Unlock()

	// Fail-back first: returned controllers re-took their domains; push the
	// ideal configuration back so demoted flows are SDN-routed again.
	for _, j := range recovered {
		m.restoreDomain(epoch, j)
	}

	if len(failed) == 0 {
		m.mu.Lock()
		m.unreachable = make(map[topo.NodeID]bool)
		m.snap = snapshot{Converged: true, Ideal: true, Restores: m.snap.Restores, UpdatedAt: time.Now()}
		m.mu.Unlock()
		if len(recovered) > 0 {
			m.log.addf(KindFailback, "epoch %d: all controllers back, ideal mapping restored", epoch)
		}
		return
	}

	inst, err := m.ctx.Build(failed)
	if err != nil {
		m.setUnconverged(fmt.Sprintf("failure set %v is unplannable", failed))
		m.log.addf(KindError, "epoch %d: compile %v: %v", epoch, failed, err)
		return
	}

	sol, err := m.plan(epoch, inst)
	if err != nil {
		m.setUnconverged(fmt.Sprintf("planning for %s failed", inst.Label()))
		m.log.addf(KindError, "epoch %d: plan %s: %v", epoch, inst.Label(), err)
		return
	}

	if m.stalePlan() {
		m.log.addf(KindStale, "epoch %d: plan for %s discarded, newer events queued", epoch, inst.Label())
		return
	}

	rep, err := m.cfg.Pusher(m.cfg.Addrs, m.cfg.Flows, inst, sol, m.pushOpts(epoch))
	if err != nil {
		m.setUnconverged(fmt.Sprintf("push for %s failed", inst.Label()))
		m.log.addf(KindError, "epoch %d: push %s: %v", epoch, inst.Label(), err)
		return
	}
	m.metrics.addPushRetries(pushRetries(rep))

	// A fenced push means a newer epoch — a newer leader — owns the
	// switches now. This daemon's view is stale: report, step down, and
	// leave the network to the claimant instead of fighting it.
	if n := fencedOutcomes(rep); n > 0 {
		m.metrics.addFenced(uint64(n))
		m.setUnconverged(fmt.Sprintf("push for %s fenced by a newer generation", inst.Label()))
		m.log.addf(KindFenced, "epoch %d: push %s refused by generation-ID fencing on %d switch(es); a newer leader owns the network",
			epoch, inst.Label(), n)
		if m.cfg.OnFenced != nil {
			m.cfg.OnFenced()
		}
		return
	}

	m.log.addf(KindPush, "epoch %d: pushed %s: %d flow-mods acked in %d round(s), %d demoted",
		epoch, inst.Label(), rep.FlowModsAcked, rep.Rounds, len(rep.Demoted))

	m.mu.Lock()
	for _, sw := range rep.Demoted {
		m.unreachable[sw] = true
	}
	m.mu.Unlock()

	if m.cfg.Net != nil {
		if err := m.cfg.Net.AdoptMapping(inst, rep.Final); err != nil {
			m.setUnconverged(fmt.Sprintf("adopting the %s mapping failed", inst.Label()))
			m.log.addf(KindError, "epoch %d: adopt %s: %v", epoch, inst.Label(), err)
			return
		}
	}

	m.mu.Lock()
	restores := m.snap.Restores
	m.snap = achievedSnapshot(inst, rep, restores)
	m.mu.Unlock()
	m.log.addf(KindConverged, "epoch %d: converged on %s: r=%d total=%d recovered=%d/%d",
		epoch, inst.Label(), rep.Achieved.MinProg, rep.Achieved.TotalProg,
		rep.Achieved.RecoveredFlows, inst.OfflineFlowCount())
}

// achievedSnapshot flattens a pushed plan into the serializable reconciled
// state: the mapping table in instance switch order, per-flow achieved
// programmability sorted by flow ID, and the plan metrics.
func achievedSnapshot(inst *scenario.Instance, rep *sdnsim.RecoveryReport, restores int) snapshot {
	s := snapshot{
		Converged:      true,
		Label:          inst.Label(),
		Restores:       restores,
		MinProg:        rep.Achieved.MinProg,
		TotalProg:      rep.Achieved.TotalProg,
		RecoveredFlows: rep.Achieved.RecoveredFlows,
		OfflineFlows:   inst.OfflineFlowCount(),
		PushRounds:     rep.Rounds,
		FlowModsAcked:  rep.FlowModsAcked,
		UpdatedAt:      time.Now(),
	}
	for i, jj := range rep.Final.SwitchController {
		e := MappingEntry{Switch: inst.Switches[i], Controller: -1}
		if jj >= 0 {
			e.Controller = inst.Active[jj]
		}
		s.Mapping = append(s.Mapping, e)
	}
	for l, prog := range rep.Achieved.FlowProg {
		s.FlowProg = append(s.FlowProg, FlowProg{Flow: inst.FlowIDs[l], Prog: prog})
	}
	for _, lid := range inst.Unrecoverable {
		s.FlowProg = append(s.FlowProg, FlowProg{Flow: lid, Prog: 0})
	}
	sort.Slice(s.FlowProg, func(a, b int) bool { return s.FlowProg[a].Flow < s.FlowProg[b].Flow })
	return s
}

// pushRetries totals the connection attempts beyond each switch's first.
func pushRetries(rep *sdnsim.RecoveryReport) uint64 {
	var n uint64
	for i := range rep.Outcomes {
		if a := rep.Outcomes[i].Attempts; a > 1 {
			n += uint64(a - 1)
		}
	}
	return n
}

// fencedOutcomes counts switches whose push was refused by generation-ID
// fencing.
func fencedOutcomes(rep *sdnsim.RecoveryReport) int {
	n := 0
	for i := range rep.Outcomes {
		if rep.Outcomes[i].Err != nil && errors.Is(rep.Outcomes[i].Err, sdnsim.ErrFenced) {
			n++
		}
	}
	return n
}

// plan solves the instance, incrementally when possible: switches already
// proven unreachable in this episode are dropped through Residual before
// solving, and the residual solution is translated back into the
// instance's pair index space.
func (m *Medic) plan(epoch uint64, inst *scenario.Instance) (*core.Solution, error) {
	// The common case — nothing demoted — must not allocate: plan runs per
	// failure event and the map is only needed when a push already failed.
	var demoted map[topo.NodeID]bool
	m.mu.Lock()
	for _, sw := range inst.Switches {
		if m.unreachable[sw] {
			if demoted == nil {
				demoted = make(map[topo.NodeID]bool, len(inst.Switches))
			}
			demoted[sw] = true
		}
	}
	m.mu.Unlock()

	if len(demoted) == 0 {
		// Failure-time fast path: serve the plan from the precompiled store
		// when one is wired. A store error (corrupt record, unplannable
		// superset) degrades to the solve path — the daemon keeps recovering
		// on a broken store, it just recovers slower.
		if m.plans != nil {
			sol, outcome, err := m.plans.Consult(m.ctx, inst, m.cfg.Solve)
			switch {
			case err != nil:
				m.metrics.addPlanError()
				m.log.addf(KindError, "epoch %d: plan store for %s: %v", epoch, inst.Label(), err)
			case outcome == planstore.OutcomeHit:
				m.metrics.addPlanHit()
				m.log.addf(KindPlan, "epoch %d: plan for %s served from the plan store in %s",
					epoch, inst.Label(), sol.Runtime)
				return sol, nil
			case outcome == planstore.OutcomeFallback:
				m.metrics.addPlanFallback()
				m.log.addf(KindPlan, "epoch %d: plan for %s projected from a precompiled superset plan and repaired in %s",
					epoch, inst.Label(), sol.Runtime)
				return sol, nil
			default:
				m.metrics.addPlanMiss()
			}
		}
		return m.cfg.Solve(inst.Problem)
	}
	rp, pairMap, err := inst.Residual(demoted)
	if err != nil {
		// The residual is an optimization; fall back to the full solve.
		m.log.addf(KindError, "epoch %d: residual for %s: %v", epoch, inst.Label(), err)
		return m.cfg.Solve(inst.Problem)
	}
	m.log.addf(KindPlan, "epoch %d: residual re-plan for %s excludes %d unreachable switch(es)",
		epoch, inst.Label(), len(demoted))
	rsol, err := m.cfg.Solve(rp)
	if err != nil {
		return nil, err
	}
	sol := core.NewSolution(rsol.Algorithm+"+residual", inst.Problem)
	copy(sol.SwitchController, rsol.SwitchController)
	for k, on := range rsol.Active {
		if on {
			sol.Active[pairMap[k]] = true
		}
	}
	return sol, nil
}

// restoreDomain pushes the ideal configuration back to one returned
// controller's domain and drops its switches from the unreachable set (a
// returned domain deserves fresh attempts).
func (m *Medic) restoreDomain(epoch uint64, j int) {
	if j < 0 || j >= len(m.cfg.Dep.Controllers) {
		m.log.addf(KindError, "epoch %d: recovery of unknown controller %d", epoch, j)
		return
	}
	domain := m.cfg.Dep.Controllers[j].Domain
	rep, err := m.cfg.Restorer(m.cfg.Addrs, m.cfg.Flows, domain, m.pushOpts(epoch))
	if err != nil {
		m.log.addf(KindError, "epoch %d: fail-back for controller %d: %v", epoch, j, err)
		return
	}
	m.mu.Lock()
	for _, sw := range domain {
		delete(m.unreachable, sw)
	}
	for _, sw := range rep.Failed {
		m.unreachable[sw] = true
	}
	m.snap.Restores++
	m.mu.Unlock()
	m.metrics.addRestore()
	m.log.addf(KindRestore, "epoch %d: controller %d returned: %d flow-mods restored to its domain, %d switch(es) unreachable",
		epoch, j, rep.FlowModsAcked, len(rep.Failed))
}

// setUnconverged marks the current failure set as lacking a pushed plan.
func (m *Medic) setUnconverged(why string) {
	m.mu.Lock()
	m.snap.Converged = false
	m.snap.Ideal = false
	m.snap.Label = why
	m.snap.UpdatedAt = time.Now()
	m.mu.Unlock()
}
