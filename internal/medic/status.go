package medic

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"pmedic/internal/flow"
	"pmedic/internal/monitor"
	"pmedic/internal/topo"
)

// Kind classifies a structured log entry.
type Kind string

// Log entry kinds.
const (
	KindDetect    Kind = "detect"    // a detector event was applied
	KindPlan      Kind = "plan"      // planning detail (e.g. residual re-plan)
	KindPush      Kind = "push"      // a recovery plan was pushed
	KindConverged Kind = "converged" // the failure set has a pushed, adopted plan
	KindRestore   Kind = "restore"   // a returned controller's domain was restored
	KindFailback  Kind = "failback"  // every controller is back; ideal state
	KindStale     Kind = "stale"     // a computed plan was discarded unpushed
	KindResume    Kind = "resume"    // a restarted daemon replayed snapshot+WAL
	KindFenced    Kind = "fenced"    // a push was refused by generation-ID fencing
	KindError     Kind = "error"
)

// LogEntry is one structured event-log record.
type LogEntry struct {
	Seq  uint64    `json:"seq"`
	At   time.Time `json:"at"`
	Kind Kind      `json:"kind"`
	Msg  string    `json:"msg"`
}

// eventLog is a bounded ring of LogEntries. The sequence counter is part
// of the daemon's durable state: restoreRing carries it across restarts so
// entries are never silently renumbered, and onAppend (when set) persists
// each new entry to the WAL.
type eventLog struct {
	mu      sync.Mutex
	seq     uint64
	entries []LogEntry
	next    int
	full    bool
	// onAppend, when set, receives every appended entry after the ring is
	// updated (outside the ring's lock). The medic wires it to the WAL.
	onAppend func(LogEntry)
}

func newEventLog(size int) *eventLog {
	return &eventLog{entries: make([]LogEntry, size)}
}

func (l *eventLog) addf(kind Kind, format string, args ...interface{}) {
	l.mu.Lock()
	l.seq++
	e := LogEntry{Seq: l.seq, At: time.Now(), Kind: kind, Msg: fmt.Sprintf(format, args...)}
	l.entries[l.next] = e
	l.next = (l.next + 1) % len(l.entries)
	if l.next == 0 {
		l.full = true
	}
	hook := l.onAppend
	l.mu.Unlock()
	if hook != nil {
		hook(e)
	}
}

// restoreRing reloads the ring from persisted state: the retained entries
// (oldest first, trimmed to the ring's capacity) and the monotonic
// sequence counter, so the first post-restart entry continues the
// numbering instead of starting over at 1.
func (l *eventLog) restoreRing(seq uint64, entries []LogEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	size := len(l.entries)
	if len(entries) > size {
		entries = entries[len(entries)-size:]
	}
	for i := range l.entries {
		l.entries[i] = LogEntry{}
	}
	copy(l.entries, entries)
	l.next = len(entries) % size
	l.full = len(entries) == size
	l.seq = seq
	// A durable seq can never run behind the restored entries.
	if n := len(entries); n > 0 && entries[n-1].Seq > l.seq {
		l.seq = entries[n-1].Seq
	}
}

// state snapshots the ring for a checkpoint: the sequence counter and the
// retained entries, oldest first.
func (l *eventLog) state() (uint64, []LogEntry) {
	l.mu.Lock()
	seq := l.seq
	l.mu.Unlock()
	return seq, l.snapshot()
}

// snapshot returns the retained entries, oldest first.
func (l *eventLog) snapshot() []LogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []LogEntry
	if l.full {
		out = append(out, l.entries[l.next:]...)
	}
	out = append(out, l.entries[:l.next]...)
	return out
}

// MappingEntry is one switch's current assignment in the achieved plan.
type MappingEntry struct {
	Switch topo.NodeID `json:"switch"`
	// Controller is the deployment controller index, -1 for legacy mode.
	Controller int `json:"controller"`
}

// FlowProg is one offline flow's achieved programmability.
type FlowProg struct {
	Flow flow.ID `json:"flow"`
	Prog int     `json:"prog"`
}

// Status is the daemon's reconciled state, JSON-ready for the HTTP
// endpoint.
type Status struct {
	Now   time.Time `json:"now"`
	Epoch uint64    `json:"epoch"`
	// Replica, Role, and Term identify this daemon in an HA deployment
	// (SetRole); empty when running standalone.
	Replica string `json:"replica,omitempty"`
	Role    string `json:"role,omitempty"`
	Term    uint64 `json:"term,omitempty"`
	// Failed is the controller set currently believed down.
	Failed []int `json:"failed_controllers"`
	// Ideal reports the steady state: nothing failed, ideal mapping in
	// force. Converged reports that the current failure set (possibly
	// empty) has a pushed plan.
	Ideal     bool   `json:"ideal"`
	Converged bool   `json:"converged"`
	Case      string `json:"case,omitempty"`
	// Unreachable lists switches demoted for agent unreachability this
	// episode, ascending.
	Unreachable []topo.NodeID `json:"unreachable_switches,omitempty"`

	// Plan metrics of the achieved (pushed) solution.
	MinProg        int `json:"min_prog"`
	TotalProg      int `json:"total_prog"`
	RecoveredFlows int `json:"recovered_flows"`
	OfflineFlows   int `json:"offline_flows"`
	PushRounds     int `json:"push_rounds,omitempty"`
	FlowModsAcked  int `json:"flow_mods_acked,omitempty"`
	Restores       int `json:"restores"`

	Mapping  []MappingEntry `json:"mapping,omitempty"`
	FlowProg []FlowProg     `json:"flow_prog,omitempty"`

	// NetworkMapping is the simulator's live switch→controller ownership
	// (present when the medic is wired to a Network).
	NetworkMapping []int `json:"network_mapping,omitempty"`

	// PersistFailures counts store writes that failed since startup;
	// nonzero means durability is degraded.
	PersistFailures uint64 `json:"persist_failures,omitempty"`

	Events   []LogEntry            `json:"events"`
	Detector []monitor.TargetState `json:"detector,omitempty"`
}

// Status snapshots the medic's reconciled state. Detector is left empty;
// Handler fills it from the monitor.
func (m *Medic) Status() Status {
	m.mu.Lock()
	snap := m.snap
	st := Status{
		Now:             time.Now(),
		Epoch:           m.epoch,
		Replica:         m.cfg.ReplicaID,
		Role:            m.role,
		Term:            m.term,
		Ideal:           snap.Ideal,
		Converged:       snap.Converged,
		Case:            snap.Label,
		Restores:        snap.Restores,
		MinProg:         snap.MinProg,
		TotalProg:       snap.TotalProg,
		RecoveredFlows:  snap.RecoveredFlows,
		OfflineFlows:    snap.OfflineFlows,
		PushRounds:      snap.PushRounds,
		FlowModsAcked:   snap.FlowModsAcked,
		Mapping:         snap.Mapping,
		FlowProg:        snap.FlowProg,
		PersistFailures: m.persistFailures,
	}
	for j := range m.failed {
		st.Failed = append(st.Failed, j)
	}
	for sw := range m.unreachable {
		st.Unreachable = append(st.Unreachable, sw)
	}
	m.mu.Unlock()
	sort.Ints(st.Failed)
	sort.Slice(st.Unreachable, func(a, b int) bool { return st.Unreachable[a] < st.Unreachable[b] })
	if st.Failed == nil {
		st.Failed = []int{}
	}
	if m.cfg.Net != nil {
		st.NetworkMapping = m.cfg.Net.MappingSnapshot()
	}
	st.Events = m.log.snapshot()
	return st
}

// Handler serves the daemon's HTTP surface:
//
//	GET /status  — the full Status JSON (detector state included when a
//	               monitor is attached)
//	GET /metrics — the daemon's metrics in Prometheus text format
//	GET /healthz — liveness of the daemon process itself
//
// mon may be nil.
func Handler(m *Medic, mon *monitor.Monitor) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		st := m.Status()
		if mon != nil {
			st.Detector = mon.State()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = m.metrics.WriteTo(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		_, _ = fmt.Fprintln(w, "ok")
	})
	return mux
}
