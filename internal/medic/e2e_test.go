package medic

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pmedic/internal/chaos"
	"pmedic/internal/flow"
	"pmedic/internal/monitor"
	"pmedic/internal/openflow"
	"pmedic/internal/sdnsim"
	"pmedic/internal/topo"
)

// TestDaemonEndToEnd runs the full daemon stack against a live simulated
// network, all over real sockets:
//
//	switch agents  <- resilient push / ideal restore       <- medic
//	echo servers   <- chaos-jittered openflow Echo probes  <- monitor
//
// and asserts the acceptance path of the online daemon: a two-controller
// failure injected through the network's lifecycle surface is detected
// without any external input, coalesced into one event, re-planned and
// pushed within a bounded number of detector ticks, and fully undone
// (ideal mapping restored) after the controllers return — all observed
// through the daemon's HTTP status endpoint, with zero false-positive
// failovers while the probe path suffers latency jitter.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e daemon test skipped in -short mode")
	}

	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	net, err := sdnsim.New(dep, flows)
	if err != nil {
		t.Fatal(err)
	}

	// One openflow agent per switch: the push and restore targets.
	agents := make(map[topo.NodeID]*sdnsim.Agent, len(net.Switches))
	for _, sw := range net.Switches {
		a, err := sdnsim.ServeSwitch(sw, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		agents[sw.ID] = a
	}
	defer func() {
		for _, a := range agents {
			_ = a.Close()
		}
	}()

	// One echo endpoint per controller, wired to the lifecycle hook so that
	// killing a controller takes its probe endpoint dark.
	echos := make([]*openflow.EchoServer, len(net.Controllers))
	for j := range net.Controllers {
		es, err := openflow.ServeEcho("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		echos[j] = es
	}
	defer func() {
		for _, es := range echos {
			_ = es.Close()
		}
	}()
	net.OnControllerChange = func(j int, alive bool) { echos[j].SetAlive(alive) }

	// The probe path runs under latency-jitter-only chaos: slow, never
	// broken. The detector must stay silent through it.
	chaosDial := chaos.NewDialer(chaos.Config{
		Seed:    99,
		Latency: time.Millisecond,
		Jitter:  3 * time.Millisecond,
	})
	probe := monitor.ProbeVia(func(addr string, timeout time.Duration) (*openflow.Conn, error) {
		tr, err := chaosDial.Dial(addr, timeout)
		if err != nil {
			return nil, err
		}
		c := openflow.NewConn(tr)
		c.SetIOTimeout(timeout)
		if err := c.Handshake(); err != nil {
			_ = tr.Close()
			return nil, err
		}
		c.SetIOTimeout(0)
		return c, nil
	})

	detCfg := monitor.Config{
		Interval:  10 * time.Millisecond,
		Jitter:    3 * time.Millisecond,
		Timeout:   250 * time.Millisecond,
		Threshold: 3,
		Debounce:  40 * time.Millisecond,
		Seed:      7,
		Probe:     probe,
	}
	targets := make([]monitor.Target, len(net.Controllers))
	for j := range net.Controllers {
		targets[j] = monitor.Target{ID: j, Name: fmt.Sprintf("c%d", j), Addr: echos[j].Addr()}
	}
	mon := monitor.New(targets, detCfg)

	m, err := New(Config{
		Dep:   dep,
		Flows: flows,
		Addrs: sdnsim.AgentAddrs(agents),
		Net:   net,
		Push:  sdnsim.PushOptions{Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.Start()
	m.Start(mon.Events())
	defer m.Stop()
	defer mon.Stop()

	srv := httptest.NewServer(Handler(m, mon))
	defer srv.Close()

	getStatus := func() Status {
		t.Helper()
		resp, err := http.Get(srv.URL + "/status")
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		var st Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	waitFor := func(what string, within time.Duration, cond func(Status) bool) Status {
		t.Helper()
		deadline := time.Now().Add(within)
		for {
			st := getStatus()
			if cond(st) {
				return st
			}
			if time.Now().After(deadline) {
				raw, _ := json.Marshal(st)
				t.Fatalf("%s not reached within %v; last status: %s", what, within, raw)
			}
			time.Sleep(detCfg.Interval)
		}
	}
	// Convergence budgets, in detector ticks: detection needs Threshold
	// misses plus one debounce window; planning and pushing ride on top.
	// 600 ticks (6s of wall clock here) is an order of magnitude of slack
	// over both, which the race detector's overhead still fits inside.
	budget := 600 * detCfg.Interval

	idealMapping := make([]int, len(net.Switches))
	for j, c := range dep.Controllers {
		for _, sw := range c.Domain {
			idealMapping[sw] = j
		}
	}

	// Phase 0 — steady state under jitter-only chaos: long enough for every
	// target to be probed many times past the suspicion threshold.
	time.Sleep(20 * detCfg.Interval)
	st := getStatus()
	if st.Epoch != 0 || !st.Ideal || !st.Converged {
		t.Fatalf("false positive under jitter-only chaos: %+v", st)
	}
	for _, d := range st.Detector {
		if !d.Up || d.Failures != 0 {
			t.Fatalf("detector flipped target %d under jitter-only chaos: %+v", d.ID, d)
		}
	}

	// Phase 1 — correlated two-controller failure, injected only through the
	// network; the daemon must notice, re-plan, and push on its own.
	if err := net.StopController(3); err != nil {
		t.Fatal(err)
	}
	if err := net.StopController(4); err != nil {
		t.Fatal(err)
	}
	st = waitFor("recovery convergence", budget, func(s Status) bool {
		return s.Converged && !s.Ideal && len(s.Failed) == 2
	})
	if st.Failed[0] != 3 || st.Failed[1] != 4 {
		t.Fatalf("Failed = %v, want [3 4]", st.Failed)
	}
	if st.MinProg < 1 {
		t.Fatalf("converged with r=%d; offline flows left unprogrammable", st.MinProg)
	}
	if st.FlowModsAcked == 0 {
		t.Fatal("converged without acking any flow-mod over the wire")
	}
	if len(st.Unreachable) != 0 {
		t.Fatalf("healthy agents, yet %v demoted as unreachable", st.Unreachable)
	}
	// The adopted ownership must only use live controllers, and must have
	// actually remapped something away from the dead ones.
	remapped := 0
	for sw, j := range st.NetworkMapping {
		if j == 3 || j == 4 {
			t.Fatalf("switch %d still owned by dead controller %d", sw, j)
		}
		if j >= 0 && j != idealMapping[sw] {
			remapped++
		}
	}
	if remapped == 0 {
		t.Fatal("no switch was remapped to a surviving controller")
	}

	// Phase 2 — both controllers return; the daemon must fail back to the
	// ideal mapping and restore the demoted data-plane entries.
	if err := net.StartController(3); err != nil {
		t.Fatal(err)
	}
	if err := net.StartController(4); err != nil {
		t.Fatal(err)
	}
	st = waitFor("fail-back to ideal", budget, func(s Status) bool {
		return s.Ideal && s.Converged && len(s.Failed) == 0
	})
	if st.Restores != 2 {
		t.Fatalf("Restores = %d, want one per returned controller", st.Restores)
	}
	for sw, j := range st.NetworkMapping {
		if j != idealMapping[sw] {
			t.Fatalf("switch %d owned by %d after fail-back, want %d", sw, j, idealMapping[sw])
		}
	}

	// Across the whole run the detector saw exactly the injected failures:
	// one down/up cycle on controllers 3 and 4, nothing anywhere else.
	for _, d := range mon.State() {
		want := uint64(0)
		if d.ID == 3 || d.ID == 4 {
			want = 1
		}
		if d.Failures != want || d.Recoveries != want {
			t.Fatalf("target %d saw %d failures / %d recoveries, want %d of each",
				d.ID, d.Failures, d.Recoveries, want)
		}
		if !d.Up {
			t.Fatalf("target %d left down at the end", d.ID)
		}
	}

	// The daemon's event log tells the full story in order.
	for _, kind := range []Kind{KindDetect, KindPush, KindConverged, KindRestore, KindFailback} {
		if !hasLogKind(st, kind, "") {
			t.Fatalf("no %q entry in the event log: %+v", kind, st.Events)
		}
	}
}
