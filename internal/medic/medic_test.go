package medic

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/monitor"
	"pmedic/internal/scenario"
	"pmedic/internal/sdnsim"
	"pmedic/internal/topo"
)

func testFixture(t *testing.T) (*topo.Deployment, *flow.Set) {
	t.Helper()
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dep, flows
}

// recorder stubs the wire drivers: pushes succeed instantly (demoting a
// configured switch set) and restores succeed instantly, while recording
// every call for assertions.
type recorder struct {
	mu       sync.Mutex
	demote   map[topo.NodeID]bool
	pushes   []*scenario.Instance
	sols     []*core.Solution
	gens     []uint64
	restores [][]topo.NodeID
}

func (r *recorder) push(_ map[topo.NodeID]string, _ *flow.Set, inst *scenario.Instance,
	sol *core.Solution, opts sdnsim.PushOptions) (*sdnsim.RecoveryReport, error) {
	r.mu.Lock()
	r.pushes = append(r.pushes, inst)
	r.sols = append(r.sols, sol)
	r.gens = append(r.gens, opts.GenerationID)
	demote := r.demote
	r.mu.Unlock()

	final := &core.Solution{
		Algorithm:        sol.Algorithm,
		SwitchController: append([]int(nil), sol.SwitchController...),
		Active:           append([]bool(nil), sol.Active...),
		SwitchLevel:      sol.SwitchLevel,
		MiddleLayer:      sol.MiddleLayer,
	}
	rep := &sdnsim.RecoveryReport{Rounds: 1}
	for i, swID := range inst.Switches {
		if demote[swID] {
			final.SwitchController[i] = -1
			for _, k := range inst.Problem.PairsAtSwitch(i) {
				final.Active[k] = false
			}
			rep.Demoted = append(rep.Demoted, swID)
		}
	}
	planned, err := inst.Evaluate(sol)
	if err != nil {
		return nil, err
	}
	achieved, err := inst.Evaluate(final)
	if err != nil {
		return nil, err
	}
	rep.Planned, rep.Achieved, rep.Final = planned, achieved, final
	return rep, nil
}

func (r *recorder) restore(_ map[topo.NodeID]string, _ *flow.Set, switches []topo.NodeID,
	_ sdnsim.PushOptions) (*sdnsim.RestoreReport, error) {
	r.mu.Lock()
	r.restores = append(r.restores, append([]topo.NodeID(nil), switches...))
	r.mu.Unlock()
	return &sdnsim.RestoreReport{}, nil
}

func newTestMedic(t *testing.T, rec *recorder) (*Medic, chan monitor.Event) {
	t.Helper()
	dep, flows := testFixture(t)
	m, err := New(Config{
		Dep:      dep,
		Flows:    flows,
		Addrs:    map[topo.NodeID]string{0: "stubbed"},
		Pusher:   rec.push,
		Restorer: rec.restore,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := make(chan monitor.Event, 8)
	m.Start(events)
	t.Cleanup(m.Stop)
	return m, events
}

func waitStatus(t *testing.T, m *Medic, cond func(Status) bool) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := m.Status()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("status never satisfied condition; last: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func hasLogKind(st Status, k Kind, substr string) bool {
	for _, e := range st.Events {
		if e.Kind == k && strings.Contains(e.Msg, substr) {
			return true
		}
	}
	return false
}

func TestFailureEventConvergesToPushedPlan(t *testing.T) {
	rec := &recorder{}
	m, events := newTestMedic(t, rec)

	events <- monitor.Event{Seq: 1, Failed: []int{3, 4}, At: time.Now()}
	st := waitStatus(t, m, func(s Status) bool { return s.Converged && !s.Ideal })

	if len(st.Failed) != 2 || st.Failed[0] != 3 || st.Failed[1] != 4 {
		t.Fatalf("Failed = %v, want [3 4]", st.Failed)
	}
	if st.Epoch != 1 {
		t.Fatalf("Epoch = %d, want 1", st.Epoch)
	}
	if st.MinProg < 1 || st.TotalProg == 0 || len(st.Mapping) == 0 || len(st.FlowProg) == 0 {
		t.Fatalf("achieved metrics missing: %+v", st)
	}
	if st.OfflineFlows == 0 || st.RecoveredFlows == 0 {
		t.Fatalf("flow accounting missing: %+v", st)
	}
	if !hasLogKind(st, KindDetect, "") || !hasLogKind(st, KindPush, "") || !hasLogKind(st, KindConverged, "") {
		t.Fatalf("expected detect/push/converged log entries, got %+v", st.Events)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.pushes) != 1 {
		t.Fatalf("pushes = %d, want 1", len(rec.pushes))
	}
	if rec.gens[0] != genStride+1 {
		t.Fatalf("generation = %d, want %d", rec.gens[0], genStride+1)
	}
}

func TestSuccessiveFailureReplansResidually(t *testing.T) {
	dep, _ := testFixture(t)
	victim := dep.Controllers[3].Domain[0]
	rec := &recorder{demote: map[topo.NodeID]bool{victim: true}}
	m, events := newTestMedic(t, rec)

	// First failure: the push demotes the victim switch.
	events <- monitor.Event{Seq: 1, Failed: []int{3}, At: time.Now()}
	st := waitStatus(t, m, func(s Status) bool { return s.Converged && s.Epoch == 1 })
	if len(st.Unreachable) != 1 || st.Unreachable[0] != victim {
		t.Fatalf("Unreachable = %v, want [%d]", st.Unreachable, victim)
	}

	// Successive failure: the new plan must route around the known-dead
	// switch via the residual instance instead of re-mapping it.
	events <- monitor.Event{Seq: 2, Failed: []int{4}, At: time.Now()}
	st = waitStatus(t, m, func(s Status) bool { return s.Converged && s.Epoch == 2 })
	if !hasLogKind(st, KindPlan, "residual") {
		t.Fatalf("no residual re-plan logged: %+v", st.Events)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.pushes) != 2 {
		t.Fatalf("pushes = %d, want 2", len(rec.pushes))
	}
	inst, sol := rec.pushes[1], rec.sols[1]
	for i, swID := range inst.Switches {
		if swID == victim && sol.SwitchController[i] >= 0 {
			t.Fatalf("residual plan still maps unreachable switch %d", victim)
		}
	}
	if rec.gens[1] <= rec.gens[0] {
		t.Fatalf("generation not monotone: %v", rec.gens)
	}
}

func TestRecoveryTriggersFailBack(t *testing.T) {
	dep, _ := testFixture(t)
	rec := &recorder{}
	m, events := newTestMedic(t, rec)

	events <- monitor.Event{Seq: 1, Failed: []int{3, 4}, At: time.Now()}
	waitStatus(t, m, func(s Status) bool { return s.Converged && s.Epoch == 1 })

	// One controller returns: its domain is restored, the rest re-planned.
	events <- monitor.Event{Seq: 2, Recovered: []int{3}, At: time.Now()}
	st := waitStatus(t, m, func(s Status) bool { return s.Converged && s.Epoch == 2 })
	if len(st.Failed) != 1 || st.Failed[0] != 4 {
		t.Fatalf("Failed = %v, want [4]", st.Failed)
	}
	if st.Restores != 1 {
		t.Fatalf("Restores = %d, want 1", st.Restores)
	}

	// The last controller returns: ideal state.
	events <- monitor.Event{Seq: 3, Recovered: []int{4}, At: time.Now()}
	st = waitStatus(t, m, func(s Status) bool { return s.Ideal })
	if !st.Converged || len(st.Failed) != 0 {
		t.Fatalf("not back to ideal: %+v", st)
	}
	if !hasLogKind(st, KindFailback, "") || !hasLogKind(st, KindRestore, "") {
		t.Fatalf("expected restore/failback log entries: %+v", st.Events)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.restores) != 2 {
		t.Fatalf("restores = %d, want 2", len(rec.restores))
	}
	if len(rec.restores[0]) != len(dep.Controllers[3].Domain) {
		t.Fatalf("first restore covered %d switches, want controller 3's domain (%d)",
			len(rec.restores[0]), len(dep.Controllers[3].Domain))
	}
}

func TestUnplannableFailureSetIsLoggedNotFatal(t *testing.T) {
	rec := &recorder{}
	m, events := newTestMedic(t, rec)

	// All six controllers down: nothing can be planned.
	events <- monitor.Event{Seq: 1, Failed: []int{0, 1, 2, 3, 4, 5}, At: time.Now()}
	st := waitStatus(t, m, func(s Status) bool { return !s.Converged })
	if !hasLogKind(st, KindError, "") {
		t.Fatalf("no error logged: %+v", st.Events)
	}

	// A controller returning makes the set plannable again.
	events <- monitor.Event{Seq: 2, Recovered: []int{0}, At: time.Now()}
	waitStatus(t, m, func(s Status) bool { return s.Converged && s.Epoch == 2 })
}

func TestPushFailureLeavesUnconverged(t *testing.T) {
	dep, flows := testFixture(t)
	m, err := New(Config{
		Dep:   dep,
		Flows: flows,
		Addrs: map[topo.NodeID]string{0: "stubbed"},
		Pusher: func(map[topo.NodeID]string, *flow.Set, *scenario.Instance,
			*core.Solution, sdnsim.PushOptions) (*sdnsim.RecoveryReport, error) {
			return nil, errors.New("wire is gone")
		},
		Restorer: (&recorder{}).restore,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := make(chan monitor.Event, 1)
	m.Start(events)
	defer m.Stop()
	events <- monitor.Event{Seq: 1, Failed: []int{3}, At: time.Now()}
	st := waitStatus(t, m, func(s Status) bool { return !s.Converged })
	if !hasLogKind(st, KindError, "wire is gone") {
		t.Fatalf("push error not logged: %+v", st.Events)
	}
}

func TestEventLogRingWraps(t *testing.T) {
	l := newEventLog(4)
	for i := 0; i < 10; i++ {
		l.addf(KindDetect, "entry %d", i)
	}
	got := l.snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d entries, want 4", len(got))
	}
	if got[0].Msg != "entry 6" || got[3].Msg != "entry 9" {
		t.Fatalf("wrong window: %v ... %v", got[0].Msg, got[3].Msg)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("non-monotone seqs: %+v", got)
		}
	}
}
