// Persistence: how a Medic's reconciled state survives the death of its
// process. Three WAL record kinds cover the loop's durability points —
//
//	detect   one detector event folded into the failure set (apply)
//	outcome  the full reconciled core state after a reconcile pass
//	log      one structured event-log entry
//
// Outcome records carry absolute state, not deltas, so replaying
// WAL-over-snapshot is idempotent: the last outcome wins, detect records
// after it only advance the epoch and failure set for events the dead
// process applied but never finished reconciling. All appends happen on
// the reconcile-loop goroutine; a persistence failure degrades durability
// (counted, surfaced in Status) but never stops the loop — recovering the
// network outranks journaling it.
package medic

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"pmedic/internal/monitor"
	"pmedic/internal/store"
	"pmedic/internal/topo"
)

// WAL record kinds (store.Record.Kind).
const (
	recDetect  = "detect"
	recOutcome = "outcome"
	recLog     = "log"
)

// detectRecord journals one applied detector event.
type detectRecord struct {
	Epoch     uint64 `json:"epoch"`
	Failed    []int  `json:"failed,omitempty"`
	Recovered []int  `json:"recovered,omitempty"`
}

// outcomeRecord journals the absolute reconciled state after one pass.
type outcomeRecord struct {
	Epoch            uint64        `json:"epoch"`
	Failed           []int         `json:"failed"`
	PendingRecovered []int         `json:"pending_recovered,omitempty"`
	Unreachable      []topo.NodeID `json:"unreachable,omitempty"`
	Snap             snapshot      `json:"snap"`
}

// durableState is the snapshot payload and the result of a replay: the
// state a restarted daemon resumes from.
type durableState struct {
	Epoch            uint64        `json:"epoch"`
	Failed           []int         `json:"failed"`
	PendingRecovered []int         `json:"pending_recovered,omitempty"`
	Unreachable      []topo.NodeID `json:"unreachable,omitempty"`
	Snap             snapshot      `json:"snap"`
	LogSeq           uint64        `json:"log_seq"`
	LogEntries       []LogEntry    `json:"log_entries,omitempty"`
}

// replayDurable folds a snapshot payload and the WAL records over it into
// the resumable state. A nil result means the directory was empty — a
// first boot, not a resume.
func replayDurable(snap []byte, recs []store.Record) (*durableState, error) {
	if len(snap) == 0 && len(recs) == 0 {
		return nil, nil
	}
	ds := &durableState{}
	if len(snap) > 0 {
		if err := json.Unmarshal(snap, ds); err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
	}
	failed := make(map[int]bool, len(ds.Failed))
	for _, j := range ds.Failed {
		failed[j] = true
	}
	for i, rec := range recs {
		switch rec.Kind {
		case recDetect:
			var dr detectRecord
			if err := rec.DecodeInto(&dr); err != nil {
				return nil, fmt.Errorf("record %d (%s): %w", i, rec.Kind, err)
			}
			if dr.Epoch > ds.Epoch {
				ds.Epoch = dr.Epoch
			}
			for _, j := range dr.Failed {
				failed[j] = true
			}
			for _, j := range dr.Recovered {
				if failed[j] {
					delete(failed, j)
					ds.PendingRecovered = append(ds.PendingRecovered, j)
				}
			}
		case recOutcome:
			var or outcomeRecord
			if err := rec.DecodeInto(&or); err != nil {
				return nil, fmt.Errorf("record %d (%s): %w", i, rec.Kind, err)
			}
			if or.Epoch > ds.Epoch {
				ds.Epoch = or.Epoch
			}
			failed = make(map[int]bool, len(or.Failed))
			for _, j := range or.Failed {
				failed[j] = true
			}
			ds.PendingRecovered = append([]int(nil), or.PendingRecovered...)
			ds.Unreachable = append([]topo.NodeID(nil), or.Unreachable...)
			ds.Snap = or.Snap
		case recLog:
			var e LogEntry
			if err := rec.DecodeInto(&e); err != nil {
				return nil, fmt.Errorf("record %d (%s): %w", i, rec.Kind, err)
			}
			ds.LogEntries = append(ds.LogEntries, e)
			if e.Seq > ds.LogSeq {
				ds.LogSeq = e.Seq
			}
		default:
			// An unknown kind was written by a newer version; skipping it
			// beats refusing to start.
		}
	}
	ds.Failed = ds.Failed[:0]
	for j := range failed {
		ds.Failed = append(ds.Failed, j)
	}
	sort.Ints(ds.Failed)
	return ds, nil
}

// persistDetect journals one applied detector event.
func (m *Medic) persistDetect(epoch uint64, ev monitor.Event) {
	if m.cfg.Store == nil {
		return
	}
	rec := detectRecord{Epoch: epoch, Failed: ev.Failed, Recovered: ev.Recovered}
	m.countPersist(m.cfg.Store.Append(recDetect, rec))
}

// persistOutcome journals the absolute reconciled state; reconcile defers
// it so every pass — converged or not — leaves a durable footprint.
func (m *Medic) persistOutcome() {
	if m.cfg.Store == nil {
		return
	}
	rec := m.outcomeLocked()
	m.countPersist(m.cfg.Store.Append(recOutcome, rec))
}

// persistLogEntry is the eventLog's onAppend hook. It must never log its
// own failure — that would recurse straight back here — so a failed append
// only bumps the counter.
func (m *Medic) persistLogEntry(e LogEntry) {
	if m.cfg.Store == nil {
		return
	}
	m.countPersist(m.cfg.Store.Append(recLog, e))
}

// maybeCheckpoint folds the WAL into a fresh snapshot once enough records
// accumulate — either past the medic's own CheckpointEvery or past the
// store's CompactEvery threshold (store.Options), whichever trips first.
func (m *Medic) maybeCheckpoint() {
	if m.cfg.Store == nil {
		return
	}
	if !m.cfg.Store.NeedsCheckpoint() && m.cfg.Store.Pending() < m.cfg.CheckpointEvery {
		return
	}
	m.countPersist(m.cfg.Store.Checkpoint(m.durableLocked()))
}

// FlushState checkpoints the full durable state unconditionally — the
// graceful-shutdown path, called after Stop so no reconcile is in flight.
// The WAL folds into the snapshot and truncates; a clean restart replays
// nothing.
func (m *Medic) FlushState() error {
	if m.cfg.Store == nil {
		return nil
	}
	if err := m.cfg.Store.Checkpoint(m.durableLocked()); err != nil {
		return err
	}
	return m.cfg.Store.Sync()
}

// outcomeLocked snapshots the core state into an outcome record.
func (m *Medic) outcomeLocked() outcomeRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec := outcomeRecord{Epoch: m.epoch, Failed: make([]int, 0, len(m.failed)), Snap: m.snap}
	for j := range m.failed {
		rec.Failed = append(rec.Failed, j)
	}
	sort.Ints(rec.Failed)
	rec.PendingRecovered = append([]int(nil), m.pendingRecovered...)
	for sw := range m.unreachable {
		rec.Unreachable = append(rec.Unreachable, sw)
	}
	sort.Slice(rec.Unreachable, func(a, b int) bool { return rec.Unreachable[a] < rec.Unreachable[b] })
	return rec
}

// durableLocked builds the full checkpoint payload: the outcome state plus
// the event-log ring.
func (m *Medic) durableLocked() durableState {
	rec := m.outcomeLocked()
	seq, entries := m.log.state()
	return durableState{
		Epoch:            rec.Epoch,
		Failed:           rec.Failed,
		PendingRecovered: rec.PendingRecovered,
		Unreachable:      rec.Unreachable,
		Snap:             rec.Snap,
		LogSeq:           seq,
		LogEntries:       entries,
	}
}

// ReadStatus loads the durable state in dir read-only — snapshot plus WAL,
// exactly what a restarted leader would resume from — and renders it as a
// Status. Follower replicas tail the leader's store with it: no lease, no
// reconcile loop, just the shared directory. An empty directory reads as
// the ideal steady state.
func ReadStatus(dir string) (Status, error) {
	snap, recs, err := store.ReadState(dir)
	if err != nil {
		return Status{}, err
	}
	ds, err := replayDurable(snap, recs)
	if err != nil {
		return Status{}, err
	}
	st := Status{Now: time.Now(), Failed: []int{}, Converged: true, Ideal: true}
	if ds == nil {
		return st, nil
	}
	st.Epoch = ds.Epoch
	st.Failed = append(st.Failed, ds.Failed...)
	st.Unreachable = ds.Unreachable
	st.Converged = ds.Snap.Converged
	st.Ideal = ds.Snap.Ideal
	st.Case = ds.Snap.Label
	st.Restores = ds.Snap.Restores
	st.MinProg = ds.Snap.MinProg
	st.TotalProg = ds.Snap.TotalProg
	st.RecoveredFlows = ds.Snap.RecoveredFlows
	st.OfflineFlows = ds.Snap.OfflineFlows
	st.PushRounds = ds.Snap.PushRounds
	st.FlowModsAcked = ds.Snap.FlowModsAcked
	st.Mapping = ds.Snap.Mapping
	st.FlowProg = ds.Snap.FlowProg
	st.Events = ds.LogEntries
	if len(st.Events) > 256 {
		st.Events = st.Events[len(st.Events)-256:]
	}
	return st, nil
}

// countPersist folds one store-write result into the degraded-durability
// counter.
func (m *Medic) countPersist(err error) {
	if err == nil {
		return
	}
	m.mu.Lock()
	m.persistFailures++
	m.mu.Unlock()
}
