package medic

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"pmedic/internal/monitor"
	"pmedic/internal/store"
	"pmedic/internal/topo"
)

// newStoredMedic builds a medic over an open store in dir, with the
// recorder stubbing the wire.
func newStoredMedic(t *testing.T, dir string, rec *recorder, extra func(*Config)) (*Medic, *store.Store, chan monitor.Event) {
	t.Helper()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	dep, flows := testFixture(t)
	cfg := Config{
		Dep:      dep,
		Flows:    flows,
		Addrs:    map[topo.NodeID]string{0: "stubbed"},
		Pusher:   rec.push,
		Restorer: rec.restore,
		Store:    st,
	}
	if extra != nil {
		extra(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events := make(chan monitor.Event, 8)
	m.Start(events)
	t.Cleanup(m.Stop)
	return m, st, events
}

// TestSnapshotReplayRoundTrip is the determinism property the crash-safety
// design rests on: for any sequence of applied events, a daemon restarted
// over the dead one's state directory reports byte-for-byte the same
// achieved mapping and flow programmability, resumes the failure set and
// event-log numbering, and bumps the epoch past everything persisted.
func TestSnapshotReplayRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		events []monitor.Event
		failed []int
	}{
		{"single failure", []monitor.Event{{Seq: 1, Failed: []int{3}}}, []int{3}},
		{"correlated pair", []monitor.Event{{Seq: 1, Failed: []int{3, 4}}}, []int{3, 4}},
		{"fail then partial recover", []monitor.Event{
			{Seq: 1, Failed: []int{2, 3}},
			{Seq: 2, Recovered: []int{2}},
		}, []int{3}},
		{"successive failures", []monitor.Event{
			{Seq: 1, Failed: []int{1}},
			{Seq: 2, Failed: []int{4}},
		}, []int{1, 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			rec := &recorder{}
			m1, _, events := newStoredMedic(t, dir, rec, nil)
			for i, ev := range tc.events {
				ev.At = time.Now()
				events <- ev
				waitStatus(t, m1, func(s Status) bool {
					return s.Converged && s.Epoch == uint64(i+1)
				})
			}
			before := m1.Status()
			m1.Stop() // the daemon dies; the WAL alone carries the state

			m2, _, _ := newStoredMedic(t, dir, &recorder{}, nil)
			after := m2.Status()

			if want := before.Epoch + 1; after.Epoch != want {
				t.Fatalf("resumed epoch = %d, want %d (persisted %d + fencing bump)",
					after.Epoch, want, before.Epoch)
			}
			if len(after.Failed) != len(tc.failed) {
				t.Fatalf("resumed Failed = %v, want %v", after.Failed, tc.failed)
			}
			for i, j := range tc.failed {
				if after.Failed[i] != j {
					t.Fatalf("resumed Failed = %v, want %v", after.Failed, tc.failed)
				}
			}
			mustJSONEqual(t, "mapping", before.Mapping, after.Mapping)
			mustJSONEqual(t, "flow programmability", before.FlowProg, after.FlowProg)
			if before.MinProg != after.MinProg || before.TotalProg != after.TotalProg ||
				before.RecoveredFlows != after.RecoveredFlows || before.OfflineFlows != after.OfflineFlows {
				t.Fatalf("plan metrics drifted: before %+v after %+v", before, after)
			}

			// The event log resumes its numbering: the resume entry itself
			// continues the dead daemon's sequence instead of restarting at 1.
			last := after.Events[len(after.Events)-1]
			if last.Kind != KindResume {
				t.Fatalf("last restored log entry is %q, want resume marker", last.Kind)
			}
			prevMax := before.Events[len(before.Events)-1].Seq
			if last.Seq != prevMax+1 {
				t.Fatalf("resume entry seq = %d, want %d (continuing the dead daemon's log)",
					last.Seq, prevMax+1)
			}
		})
	}
}

func mustJSONEqual(t *testing.T, what string, a, b any) {
	t.Helper()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("%s not byte-identical across restart:\n before: %s\n after:  %s", what, ja, jb)
	}
}

// TestCheckpointFoldsDaemonWAL drives enough reconciles to cross
// CheckpointEvery and asserts the WAL folded into a snapshot — and that a
// restart over the checkpointed directory still restores the same state.
func TestCheckpointFoldsDaemonWAL(t *testing.T) {
	dir := t.TempDir()
	rec := &recorder{}
	m1, st1, events := newStoredMedic(t, dir, rec, func(c *Config) { c.CheckpointEvery = 4 })

	toggles := []monitor.Event{
		{Seq: 1, Failed: []int{3}},
		{Seq: 2, Failed: []int{4}},
		{Seq: 3, Recovered: []int{4}},
		{Seq: 4, Failed: []int{4}},
	}
	for i, ev := range toggles {
		ev.At = time.Now()
		events <- ev
		waitStatus(t, m1, func(s Status) bool { return s.Converged && s.Epoch == uint64(i+1) })
	}
	if st1.Checkpoints() == 0 {
		t.Fatalf("no checkpoint after %d reconciles with CheckpointEvery=4", len(toggles))
	}
	before := m1.Status()
	m1.Stop()
	if err := m1.FlushState(); err != nil {
		t.Fatal(err)
	}
	if st1.Pending() != 0 {
		t.Fatalf("%d WAL records pending after FlushState, want 0", st1.Pending())
	}

	m2, _, _ := newStoredMedic(t, dir, &recorder{}, nil)
	after := m2.Status()
	if after.Epoch != before.Epoch+1 {
		t.Fatalf("epoch after checkpointed restart = %d, want %d", after.Epoch, before.Epoch+1)
	}
	mustJSONEqual(t, "mapping", before.Mapping, after.Mapping)
	if len(after.Failed) != 2 || after.Failed[0] != 3 || after.Failed[1] != 4 {
		t.Fatalf("Failed = %v, want [3 4]", after.Failed)
	}
}

// TestStoreCompactEveryBoundsReplay: the store's own CompactEvery knob
// (store.Options) forces folds even when the medic's CheckpointEvery would
// never trip, so the WAL a crashed daemon leaves behind — and hence restart
// replay work — stays bounded by the knob plus one reconcile's records.
func TestStoreCompactEveryBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true, CompactEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	rec := &recorder{}
	dep, flows := testFixture(t)
	m1, err := New(Config{
		Dep:             dep,
		Flows:           flows,
		Addrs:           map[topo.NodeID]string{0: "stubbed"},
		Pusher:          rec.push,
		Restorer:        rec.restore,
		Store:           st,
		CheckpointEvery: 1 << 30, // only the store's knob can trigger a fold
	})
	if err != nil {
		t.Fatal(err)
	}
	events := make(chan monitor.Event, 8)
	m1.Start(events)
	t.Cleanup(m1.Stop)

	toggles := []monitor.Event{
		{Seq: 1, Failed: []int{3}},
		{Seq: 2, Failed: []int{4}},
		{Seq: 3, Recovered: []int{4}},
	}
	for i, ev := range toggles {
		ev.At = time.Now()
		events <- ev
		waitStatus(t, m1, func(s Status) bool { return s.Converged && s.Epoch == uint64(i+1) })
	}
	if st.Checkpoints() == 0 {
		t.Fatal("store.CompactEvery=2 never forced a checkpoint despite CheckpointEvery=1<<30")
	}
	before := m1.Status()
	m1.Stop() // crash, no FlushState: the bounded WAL alone carries the tail

	m2, _, _ := newStoredMedic(t, dir, &recorder{}, nil)
	after := m2.Status()
	if after.Epoch != before.Epoch+1 {
		t.Fatalf("epoch after restart = %d, want %d", after.Epoch, before.Epoch+1)
	}
	if len(after.Failed) != 1 || after.Failed[0] != 3 {
		t.Fatalf("Failed = %v, want [3]", after.Failed)
	}
	mustJSONEqual(t, "mapping", before.Mapping, after.Mapping)
}

// TestGuardedStoreDegradesNotFatal: a medic whose store guard refuses every
// write (the deposed-leader path) keeps reconciling — recovery outranks
// journaling — and surfaces the degradation in Status.
func TestGuardedStoreDegradesNotFatal(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{
		NoSync: true,
		Guard:  func() error { return errors.New("lease lost") },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	dep, flows := testFixture(t)
	rec := &recorder{}
	m, err := New(Config{
		Dep:      dep,
		Flows:    flows,
		Addrs:    map[topo.NodeID]string{0: "stubbed"},
		Pusher:   rec.push,
		Restorer: rec.restore,
		Store:    st,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := make(chan monitor.Event, 1)
	m.Start(events)
	t.Cleanup(m.Stop)

	events <- monitor.Event{Seq: 1, Failed: []int{3}, At: time.Now()}
	stt := waitStatus(t, m, func(s Status) bool { return s.Converged && s.Epoch == 1 })
	if stt.PersistFailures == 0 {
		t.Fatal("guarded store refused every write, yet PersistFailures == 0")
	}
	if st.Pending() != 0 {
		t.Fatalf("guarded store accepted %d records", st.Pending())
	}
}

// TestStatusUnderConcurrentReconcile hammers the read surface (Status and
// the metrics renderer) from many goroutines while the loop reconciles a
// stream of events — the race detector is the assertion.
func TestStatusUnderConcurrentReconcile(t *testing.T) {
	rec := &recorder{}
	m, events := newTestMedic(t, rec)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sink bytes.Buffer
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := m.Status()
				if st.Epoch > 0 && st.Events == nil {
					t.Error("status with nonzero epoch but nil events")
					return
				}
				sink.Reset()
				_, _ = m.Metrics().WriteTo(&sink)
				_ = m.Epoch()
				_ = m.FenceGen()
			}
		}()
	}

	seq := uint64(0)
	for round := 0; round < 10; round++ {
		seq++
		events <- monitor.Event{Seq: seq, Failed: []int{3}, At: time.Now()}
		seq++
		events <- monitor.Event{Seq: seq, Recovered: []int{3}, At: time.Now()}
		m.SetRole("leader", uint64(round+1))
		waitStatus(t, m, func(s Status) bool { return s.Epoch == seq })
	}
	close(stop)
	wg.Wait()
}

// TestEventLogRestoreContinuesSeq: a ring restored from persisted state
// numbers its next entry after the durable counter — never renumbering
// from 1 — including when the counter ran ahead of the retained window.
func TestEventLogRestoreContinuesSeq(t *testing.T) {
	l := newEventLog(4)
	for i := 0; i < 10; i++ {
		l.addf(KindDetect, "entry %d", i)
	}
	seq, entries := l.state()
	if seq != 10 || len(entries) != 4 {
		t.Fatalf("state = seq %d, %d entries; want 10, 4", seq, len(entries))
	}

	fresh := newEventLog(4)
	fresh.restoreRing(seq, entries)
	fresh.addf(KindResume, "restarted")
	got := fresh.snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d entries, want 4", len(got))
	}
	if got[3].Seq != 11 || got[3].Msg != "restarted" {
		t.Fatalf("first post-restore entry = %+v, want seq 11", got[3])
	}
	if got[0].Msg != "entry 7" {
		t.Fatalf("oldest retained entry = %q, want the window shifted by one", got[0].Msg)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("non-monotone seqs after restore: %+v", got)
		}
	}

	// A ring smaller than the persisted window keeps the newest entries.
	small := newEventLog(2)
	small.restoreRing(seq, entries)
	small.addf(KindResume, "restarted")
	got = small.snapshot()
	if len(got) != 2 || got[1].Seq != 11 || got[0].Seq != 10 {
		t.Fatalf("small ring restore window wrong: %+v", got)
	}
}
