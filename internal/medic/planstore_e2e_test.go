package medic

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/monitor"
	"pmedic/internal/planstore"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

// newPlanMedic is newTestMedic with a plan store wired in.
func newPlanMedic(t *testing.T, rec *recorder, ps *planstore.Store) (*Medic, chan monitor.Event) {
	t.Helper()
	dep, flows := testFixture(t)
	m, err := New(Config{
		Dep:      dep,
		Flows:    flows,
		Addrs:    map[topo.NodeID]string{0: "stubbed"},
		Pusher:   rec.push,
		Restorer: rec.restore,
		Plans:    ps,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := make(chan monitor.Event, 8)
	m.Start(events)
	t.Cleanup(m.Stop)
	return m, events
}

// TestPlanStoreServesMedic is the end-to-end contract of the plan store
// inside the daemon, driven through the reconcile loop against a sparse
// store holding only the {3,4} plan:
//
//   - a precompiled failure set is served as a hit, and the pushed plan is
//     byte-identical to what a fresh PM solve would have produced;
//   - a subset of a compiled set ({3}) is served as a projected+repaired
//     fallback that stays feasible;
//   - a set no compiled plan covers ({0,3}) is a miss and degrades to the
//     ordinary solve path.
func TestPlanStoreServesMedic(t *testing.T) {
	dep, flows := testFixture(t)
	path := filepath.Join(t.TempDir(), "att.pmps")
	if _, err := planstore.Compile(dep, flows, path, planstore.CompileOptions{Sets: [][]int{{3, 4}}}); err != nil {
		t.Fatal(err)
	}
	ps, err := planstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ps.Close() })

	rec := &recorder{}
	m, events := newPlanMedic(t, rec, ps)

	// Hit: the correlated pair {3,4} was precompiled.
	events <- monitor.Event{Seq: 1, Failed: []int{3, 4}, At: time.Now()}
	st := waitStatus(t, m, func(s Status) bool { return s.Converged && s.Epoch == 1 })
	hits, fallbacks, misses, errs := m.Metrics().PlanStoreCounts()
	if hits != 1 || fallbacks != 0 || misses != 0 || errs != 0 {
		t.Fatalf("after hit: hits=%d fallbacks=%d misses=%d errors=%d, want 1/0/0/0", hits, fallbacks, misses, errs)
	}
	if !hasLogKind(st, KindPlan, "served from the plan store") {
		t.Fatalf("no plan-store hit log entry in %+v", st.Events)
	}
	ctx, err := scenario.NewContext(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := ctx.Build([]int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.PM(inst.Problem)
	if err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	got := rec.sols[0]
	rec.mu.Unlock()
	if got.Algorithm != want.Algorithm ||
		!reflect.DeepEqual(got.SwitchController, want.SwitchController) ||
		!reflect.DeepEqual(got.Active, want.Active) {
		t.Fatalf("stored plan for {3,4} is not byte-identical to a fresh PM solve:\n got %v\nwant %v",
			got.SwitchController, want.SwitchController)
	}

	// Fallback: {3} was never compiled, but {3,4} is a strict superset.
	events <- monitor.Event{Seq: 2, Recovered: []int{4}, At: time.Now()}
	st = waitStatus(t, m, func(s Status) bool { return s.Converged && s.Epoch == 2 })
	hits, fallbacks, misses, errs = m.Metrics().PlanStoreCounts()
	if hits != 1 || fallbacks != 1 || misses != 0 || errs != 0 {
		t.Fatalf("after fallback: hits=%d fallbacks=%d misses=%d errors=%d, want 1/1/0/0", hits, fallbacks, misses, errs)
	}
	if !hasLogKind(st, KindPlan, "projected from a precompiled superset plan") {
		t.Fatalf("no plan-store fallback log entry in %+v", st.Events)
	}
	sub, err := ctx.Build([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	fb := rec.sols[1]
	rec.mu.Unlock()
	loads, err := fb.ControllerLoads(sub.Problem)
	if err != nil {
		t.Fatal(err)
	}
	for j, l := range loads {
		if l > sub.Problem.Rest[j] {
			t.Fatalf("fallback plan overloads controller %d: %d > rest %d", j, l, sub.Problem.Rest[j])
		}
	}

	// Miss: {0,3} has no compiled plan and no compiled superset.
	events <- monitor.Event{Seq: 3, Failed: []int{0}, At: time.Now()}
	waitStatus(t, m, func(s Status) bool { return s.Converged && s.Epoch == 3 })
	hits, fallbacks, misses, errs = m.Metrics().PlanStoreCounts()
	if hits != 1 || fallbacks != 1 || misses != 1 || errs != 0 {
		t.Fatalf("after miss: hits=%d fallbacks=%d misses=%d errors=%d, want 1/1/1/0", hits, fallbacks, misses, errs)
	}
}

// TestPlanStoreHashMismatchDisabled: a store compiled for a different
// workload is refused at construction — logged, disabled, and the medic
// plans by solving as if no store were configured.
func TestPlanStoreHashMismatchDisabled(t *testing.T) {
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	other, err := flow.Generate(dep.Graph, flow.Options{Slack: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "other.pmps")
	if _, err := planstore.Compile(dep, other, path, planstore.CompileOptions{Sets: [][]int{{3}}}); err != nil {
		t.Fatal(err)
	}
	ps, err := planstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ps.Close() })

	rec := &recorder{}
	m, events := newPlanMedic(t, rec, ps)
	if !hasLogKind(m.Status(), KindError, "disabled: topology hash") {
		t.Fatalf("no hash-mismatch log entry in %+v", m.Status().Events)
	}

	// The daemon still recovers {3} — by solving, not from the store.
	events <- monitor.Event{Seq: 1, Failed: []int{3}, At: time.Now()}
	waitStatus(t, m, func(s Status) bool { return s.Converged && s.Epoch == 1 })
	hits, fallbacks, misses, errs := m.Metrics().PlanStoreCounts()
	if hits != 0 || fallbacks != 0 || misses != 0 || errs != 0 {
		t.Fatalf("disabled store was consulted: hits=%d fallbacks=%d misses=%d errors=%d", hits, fallbacks, misses, errs)
	}
}
