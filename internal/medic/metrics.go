package medic

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pmedic/internal/store"
)

// reconcileBuckets are the histogram upper bounds, in seconds, for
// reconcile-pass latency (plan + push + adopt).
var reconcileBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}

// Metrics is the daemon's metrics registry, rendered in Prometheus text
// exposition format by WriteTo (the /metrics handler). It is hand-rolled —
// the repo takes no dependency on a client library — and safe for
// concurrent use.
type Metrics struct {
	epochs      atomic.Uint64
	pushRetries atomic.Uint64
	fenced      atomic.Uint64
	restores    atomic.Uint64
	leader      atomic.Uint64 // 1 when leader
	term        atomic.Uint64

	// Plan-store consultation outcomes; rendered only when a store is wired.
	planHits      atomic.Uint64
	planFallbacks atomic.Uint64
	planMisses    atomic.Uint64
	planErrors    atomic.Uint64

	mu           sync.Mutex
	reconcileN   uint64
	reconcileSum float64
	reconcileLE  []uint64 // cumulative counts per bucket in reconcileBuckets

	st *store.Store // WAL fsync/checkpoint/pending sources, nil standalone
	// plansEnabled is set once at wiring time, before the loop starts.
	plansEnabled bool
}

func newMetrics() *Metrics {
	return &Metrics{reconcileLE: make([]uint64, len(reconcileBuckets))}
}

// wireStore attaches the persistence layer as a metrics source.
func (x *Metrics) wireStore(st *store.Store) { x.st = st }

// wirePlans enables the plan-store outcome counters.
func (x *Metrics) wirePlans() { x.plansEnabled = true }

func (x *Metrics) addEpoch()               { x.epochs.Add(1) }
func (x *Metrics) addPushRetries(n uint64) { x.pushRetries.Add(n) }
func (x *Metrics) addFenced(n uint64)      { x.fenced.Add(n) }
func (x *Metrics) addRestore()             { x.restores.Add(1) }
func (x *Metrics) addPlanHit()             { x.planHits.Add(1) }
func (x *Metrics) addPlanFallback()        { x.planFallbacks.Add(1) }
func (x *Metrics) addPlanMiss()            { x.planMisses.Add(1) }
func (x *Metrics) addPlanError()           { x.planErrors.Add(1) }

func (x *Metrics) setLeader(leader bool, term uint64) {
	if leader {
		x.leader.Store(1)
	} else {
		x.leader.Store(0)
	}
	x.term.Store(term)
}

func (x *Metrics) observeReconcile(d time.Duration) {
	secs := d.Seconds()
	x.mu.Lock()
	x.reconcileN++
	x.reconcileSum += secs
	for i, le := range reconcileBuckets {
		if secs <= le {
			x.reconcileLE[i]++
		}
	}
	x.mu.Unlock()
}

// PlanStoreCounts returns the plan-store outcome counters (hits, superset
// fallbacks, misses, errors) — a test and status convenience.
func (x *Metrics) PlanStoreCounts() (hits, fallbacks, misses, errors uint64) {
	return x.planHits.Load(), x.planFallbacks.Load(), x.planMisses.Load(), x.planErrors.Load()
}

// WriteTo renders the registry in Prometheus text format.
func (x *Metrics) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("pmedicd_epochs_applied_total", "Detector event batches folded into the failure set.", x.epochs.Load())
	counter("pmedicd_push_retries_total", "Per-switch push connection attempts beyond the first.", x.pushRetries.Load())
	counter("pmedicd_fenced_pushes_total", "Switch pushes refused by generation-ID fencing.", x.fenced.Load())
	counter("pmedicd_restores_total", "Returned controller domains restored to the ideal mapping.", x.restores.Load())
	gauge("pmedicd_leader", "1 when this replica holds the leader lease, 0 otherwise.", x.leader.Load())
	gauge("pmedicd_leader_term", "Fencing term of the last lease this replica held or observed.", x.term.Load())

	if x.st != nil {
		counter("pmedicd_wal_fsyncs_total", "fsync calls issued by the snapshot+WAL store.", x.st.Fsyncs())
		counter("pmedicd_wal_checkpoints_total", "WAL-into-snapshot checkpoints completed.", x.st.Checkpoints())
		gauge("pmedicd_wal_pending_records", "WAL records not yet folded into a snapshot.", uint64(x.st.Pending()))
	}

	if x.plansEnabled {
		counter("pmedicd_planstore_hits_total", "Recovery plans served from the precompiled plan store.", x.planHits.Load())
		counter("pmedicd_planstore_fallbacks_total", "Recovery plans projected from a precompiled superset plan.", x.planFallbacks.Load())
		counter("pmedicd_planstore_misses_total", "Failure sets absent from the plan store (full solve paid).", x.planMisses.Load())
		counter("pmedicd_planstore_errors_total", "Plan-store consultations that failed and degraded to a solve.", x.planErrors.Load())
	}

	x.mu.Lock()
	n, sum := x.reconcileN, x.reconcileSum
	le := append([]uint64(nil), x.reconcileLE...)
	x.mu.Unlock()
	name := "pmedicd_reconcile_duration_seconds"
	fmt.Fprintf(&b, "# HELP %s Latency of one reconcile pass (plan, push, adopt).\n# TYPE %s histogram\n", name, name)
	for i, bound := range reconcileBuckets {
		fmt.Fprintf(&b, "%s_bucket{le=\"%g\"} %d\n", name, bound, le[i])
	}
	fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, n)
	fmt.Fprintf(&b, "%s_sum %g\n", name, sum)
	fmt.Fprintf(&b, "%s_count %d\n", name, n)

	written, err := io.WriteString(w, b.String())
	return int64(written), err
}
