package medic

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pmedic/internal/election"
	"pmedic/internal/flow"
	"pmedic/internal/monitor"
	"pmedic/internal/openflow"
	"pmedic/internal/sdnsim"
	"pmedic/internal/store"
	"pmedic/internal/topo"
)

// liveStack is one simulated network with an openflow agent per switch and
// an echo liveness endpoint per controller — the shared substrate every
// daemon replica in the soak test operates on.
type liveStack struct {
	dep    *topo.Deployment
	flows  *flow.Set
	net    *sdnsim.Network
	addrs  map[topo.NodeID]string
	echos  []*openflow.EchoServer
	detCfg monitor.Config
}

func newLiveStack(t *testing.T, seed int64) *liveStack {
	t.Helper()
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	net, err := sdnsim.New(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	s := &liveStack{dep: dep, flows: flows, net: net}
	agents := make(map[topo.NodeID]*sdnsim.Agent, len(net.Switches))
	for _, sw := range net.Switches {
		a, err := sdnsim.ServeSwitch(sw, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		agents[sw.ID] = a
		t.Cleanup(func() { _ = a.Close() })
	}
	s.addrs = sdnsim.AgentAddrs(agents)
	s.echos = make([]*openflow.EchoServer, len(net.Controllers))
	for j := range net.Controllers {
		es, err := openflow.ServeEcho("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		s.echos[j] = es
		t.Cleanup(func() { _ = es.Close() })
	}
	net.OnControllerChange = func(j int, alive bool) { s.echos[j].SetAlive(alive) }
	s.detCfg = monitor.Config{
		Interval:  10 * time.Millisecond,
		Jitter:    3 * time.Millisecond,
		Timeout:   250 * time.Millisecond,
		Threshold: 3,
		Debounce:  40 * time.Millisecond,
		Seed:      seed,
	}
	return s
}

func (s *liveStack) targets() []monitor.Target {
	out := make([]monitor.Target, len(s.net.Controllers))
	for j := range s.net.Controllers {
		out[j] = monitor.Target{ID: j, Name: fmt.Sprintf("c%d", j), Addr: s.echos[j].Addr()}
	}
	return out
}

// replica is one pmedicd instance in the soak test: an elector plus, once
// promoted, the full store+medic+monitor pipeline over the shared stack.
type replica struct {
	id  string
	el  *election.Elector
	st  *store.Store
	mon *monitor.Monitor
	m   *Medic
}

// promote runs the leader takeover sequence a freshly elected replica
// performs — the same sequence cmd/pmedicd runs in its OnElected hook:
// open the shared store under the lease guard, replay it into a medic
// (epoch bump included), fence the agents at the new epoch's generation
// floor, hand the restored failure set to a fresh detector, and start the
// reconcile loop.
func (r *replica) promote(t *testing.T, s *liveStack, dir string) {
	t.Helper()
	st, err := store.Open(dir, store.Options{NoSync: true, Guard: r.el.Check})
	if err != nil {
		t.Fatal(err)
	}
	r.st = st
	m, err := New(Config{
		Dep:       s.dep,
		Flows:     s.flows,
		Addrs:     s.addrs,
		Net:       s.net,
		Push:      sdnsim.PushOptions{Seed: 5},
		Store:     st,
		ReplicaID: r.id,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.m = m
	m.SetRole("leader", r.el.Term())
	if gen := m.FenceGen(); gen > 0 {
		if _, _, err := sdnsim.FenceAgents(s.addrs, gen, sdnsim.PushOptions{}); err != nil {
			t.Fatalf("fencing sweep at generation %d: %v", gen, err)
		}
	}
	r.mon = monitor.New(s.targets(), s.detCfg)
	r.mon.MarkDown(m.Status().Failed...)
	r.mon.Start()
	m.Start(r.mon.Events())
}

// kill tears the replica down the SIGKILL way: no lease resignation, no
// WAL flush, no checkpoint — the lease must expire on its own and the
// state directory holds only what Append already made durable.
func (r *replica) kill() {
	if r.mon != nil {
		r.mon.Stop()
	}
	if r.m != nil {
		r.m.Stop()
	}
	if r.st != nil {
		_ = r.st.Close()
	}
	r.el.Stop()
}

// TestDaemonKillLeaderSoak is the crash-safety acceptance test: two
// replicas share a state directory, the leader is killed mid-recovery
// (failure detected and journaled, episode not finished), and the
// successor must take the lease, resume from snapshot+WAL at a strictly
// greater epoch, fence the dead leader's generations off the wire, and
// drive the network to exactly the mapping a never-killed daemon reaches.
func TestDaemonKillLeaderSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon soak test skipped in -short mode")
	}

	s := newLiveStack(t, 7)
	dir := t.TempDir()
	leaseCfg := func(id string, seed int64) election.Config {
		return election.Config{
			Dir:        dir,
			ID:         id,
			TTL:        300 * time.Millisecond,
			RenewEvery: 100 * time.Millisecond,
			Seed:       seed,
		}
	}

	elA, err := election.New(leaseCfg("replica-a", 1))
	if err != nil {
		t.Fatal(err)
	}
	a := &replica{id: "replica-a", el: elA}
	a.el.Start()
	waitUntil(t, "replica-a elected", 5*time.Second, a.el.IsLeader)

	// Open A's store at the shared dir (stateDir() needs it set first).
	stA, err := store.Open(dir, store.Options{NoSync: true, Guard: a.el.Check})
	if err != nil {
		t.Fatal(err)
	}
	a.st = stA
	a.promoteOver(t, s, stA)

	// A second replica campaigns but stays follower while A's lease is live.
	elB, err := election.New(leaseCfg("replica-b", 2))
	if err != nil {
		t.Fatal(err)
	}
	b := &replica{id: "replica-b", el: elB}
	b.el.Start()
	defer b.kill()

	// Phase 1 — controller 3 dies; wait only until A has detected and
	// journaled the failure (epoch >= 1), NOT until the episode is over:
	// the kill lands mid-recovery.
	if err := s.net.StopController(3); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, a.m, func(st Status) bool { return st.Epoch >= 1 })
	aStatus := a.m.Status()
	aEpoch := aStatus.Epoch
	aPushGen := aEpoch*genStride + 1 // the generation A's in-flight pushes carry

	// Phase 2 — SIGKILL the leader. The lease is not resigned; B must wait
	// out the TTL and win the next campaign.
	a.kill()
	if b.el.IsLeader() {
		t.Fatal("follower claims leadership while the dead leader's lease is live")
	}
	waitUntil(t, "replica-b elected after lease expiry", 5*time.Second, b.el.IsLeader)
	if b.el.Term() <= a.el.Term() {
		t.Fatalf("successor term %d not past predecessor term %d", b.el.Term(), a.el.Term())
	}

	// Phase 3 — a second controller dies while nobody is reconciling, then
	// the successor promotes over the shared directory.
	if err := s.net.StopController(4); err != nil {
		t.Fatal(err)
	}
	b.promote(t, s, dir)

	resumed := b.m.Status()
	if resumed.Epoch <= aEpoch {
		t.Fatalf("successor resumed at epoch %d, want strictly greater than predecessor's %d",
			resumed.Epoch, aEpoch)
	}
	if len(resumed.Failed) != 1 || resumed.Failed[0] != 3 {
		t.Fatalf("successor restored Failed = %v, want [3] from the dead leader's WAL", resumed.Failed)
	}
	if !hasLogKind(resumed, KindResume, "") {
		t.Fatalf("no resume marker in the successor's log: %+v", resumed.Events)
	}

	// Phase 4 — the dead leader's in-flight generation is fenced on the
	// wire: asserting mastership at it must be refused by every agent.
	fenced, _, err := sdnsim.FenceAgents(s.addrs, aPushGen, sdnsim.PushOptions{})
	if fenced != 0 || !errors.Is(err, sdnsim.ErrFenced) {
		t.Fatalf("dead leader's generation %d not fenced: fenced=%d err=%v", aPushGen, fenced, err)
	}

	// Phase 5 — the successor finishes the episode on its own: its detector
	// finds controller 4 down (3 was handed off via MarkDown, so it is not
	// re-announced) and reconciles the combined failure set.
	final := waitStatusLong(t, b.m, 30*time.Second, func(st Status) bool {
		return st.Converged && len(st.Failed) == 2
	})
	if final.Failed[0] != 3 || final.Failed[1] != 4 {
		t.Fatalf("final Failed = %v, want [3 4]", final.Failed)
	}
	for _, d := range b.mon.State() {
		if d.ID == 3 && d.Failures != 0 {
			t.Fatalf("handed-off controller 3 re-announced: %+v", d)
		}
	}
	for sw, j := range final.NetworkMapping {
		if j == 3 || j == 4 {
			t.Fatalf("switch %d still owned by dead controller %d after failover", sw, j)
		}
	}

	// Phase 6 — the reference run: a never-killed daemon on an identical
	// network, fed the same failure sequence, must land on the identical
	// mapping (the solver is deterministic, so any divergence means the
	// failover lost or invented state).
	ref := newLiveStack(t, 7)
	refMedic, err := New(Config{
		Dep:   ref.dep,
		Flows: ref.flows,
		Addrs: ref.addrs,
		Net:   ref.net,
		Push:  sdnsim.PushOptions{Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	refEvents := make(chan monitor.Event, 4)
	refMedic.Start(refEvents)
	defer refMedic.Stop()
	refEvents <- monitor.Event{Seq: 1, Failed: []int{3}, At: time.Now()}
	waitStatus(t, refMedic, func(st Status) bool { return st.Converged && st.Epoch == 1 })
	refEvents <- monitor.Event{Seq: 2, Failed: []int{4}, At: time.Now()}
	refFinal := waitStatus(t, refMedic, func(st Status) bool { return st.Converged && st.Epoch == 2 })

	mustJSONEqual(t, "post-failover mapping vs never-killed daemon", final.Mapping, refFinal.Mapping)
	mustJSONEqual(t, "post-failover flow programmability vs never-killed daemon", final.FlowProg, refFinal.FlowProg)
	if final.MinProg != refFinal.MinProg || final.TotalProg != refFinal.TotalProg {
		t.Fatalf("plan metrics diverged: failover r=%d total=%d, reference r=%d total=%d",
			final.MinProg, final.TotalProg, refFinal.MinProg, refFinal.TotalProg)
	}
}

// promoteOver is promote with an already-open store (the first boot, where
// the state directory is empty and FenceGen is still zero).
func (r *replica) promoteOver(t *testing.T, s *liveStack, st *store.Store) {
	t.Helper()
	m, err := New(Config{
		Dep:       s.dep,
		Flows:     s.flows,
		Addrs:     s.addrs,
		Net:       s.net,
		Push:      sdnsim.PushOptions{Seed: 5},
		Store:     st,
		ReplicaID: r.id,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.m = m
	m.SetRole("leader", r.el.Term())
	r.mon = monitor.New(s.targets(), s.detCfg)
	r.mon.Start()
	m.Start(r.mon.Events())
}

func waitUntil(t *testing.T, what string, within time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s not reached within %v", what, within)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitStatusLong(t *testing.T, m *Medic, within time.Duration, cond func(Status) bool) Status {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		st := m.Status()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("status never satisfied condition; last: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
