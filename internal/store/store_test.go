package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

type fact struct {
	N int    `json:"n"`
	S string `json:"s,omitempty"`
}

func openT(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Append("fact", fact{N: i, S: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", s.Pending())
	}
	if s.Fsyncs() == 0 {
		t.Fatal("no fsyncs counted on a syncing store")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A restart sees every record, in order.
	s2 := openT(t, dir, Options{})
	recs := s2.Records()
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.Kind != "fact" {
			t.Fatalf("record %d kind = %q", i, r.Kind)
		}
		var f fact
		if err := r.DecodeInto(&f); err != nil {
			t.Fatal(err)
		}
		if f.N != i {
			t.Fatalf("record %d decoded N=%d", i, f.N)
		}
	}
}

func TestCheckpointFoldsWAL(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := s.Append("fact", fact{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(fact{N: 99, S: "state"}); err != nil {
		t.Fatal(err)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after checkpoint, want 0", s.Pending())
	}
	if s.Checkpoints() != 1 {
		t.Fatalf("Checkpoints = %d, want 1", s.Checkpoints())
	}
	if err := s.Append("fact", fact{N: 7}); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()

	s2 := openT(t, dir, Options{})
	var snap fact
	if err := (Record{Data: s2.Snapshot()}).DecodeInto(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.N != 99 || snap.S != "state" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(s2.Records()) != 1 {
		t.Fatalf("post-checkpoint WAL has %d records, want 1", len(s2.Records()))
	}
}

// TestCompactEveryThreshold drives the store's own compaction knob: below
// the threshold NeedsCheckpoint stays quiet, at it the store asks for a
// fold, and a checkpoint (or an unset knob) silences it again.
func TestCompactEveryThreshold(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{NoSync: true, CompactEvery: 3})
	for i := 0; i < 2; i++ {
		if err := s.Append("fact", fact{N: i}); err != nil {
			t.Fatal(err)
		}
		if s.NeedsCheckpoint() {
			t.Fatalf("NeedsCheckpoint true at %d pending, threshold 3", s.Pending())
		}
	}
	if err := s.Append("fact", fact{N: 2}); err != nil {
		t.Fatal(err)
	}
	if !s.NeedsCheckpoint() {
		t.Fatalf("NeedsCheckpoint false at %d pending, threshold 3", s.Pending())
	}
	if err := s.Checkpoint(fact{N: 99}); err != nil {
		t.Fatal(err)
	}
	if s.NeedsCheckpoint() {
		t.Fatal("NeedsCheckpoint true immediately after checkpoint")
	}
	_ = s.Close()

	// A restart counts replayed records as pending: a WAL left past the
	// threshold by a crash asks for compaction right away.
	for i := 0; i < 4; i++ {
		s2 := openT(t, dir, Options{NoSync: true, CompactEvery: 3})
		if err := s2.Append("fact", fact{N: i}); err != nil {
			t.Fatal(err)
		}
		_ = s2.Close()
	}
	s3 := openT(t, dir, Options{NoSync: true, CompactEvery: 3})
	if !s3.NeedsCheckpoint() {
		t.Fatalf("NeedsCheckpoint false after replaying %d records, threshold 3", s3.Pending())
	}

	// The knob unset, the store never volunteers an opinion.
	s4 := openT(t, dir, Options{NoSync: true})
	if s4.NeedsCheckpoint() {
		t.Fatal("NeedsCheckpoint true with CompactEvery unset")
	}
}

// TestTruncatedTailTolerated chops the WAL mid-record — the footprint of a
// crash during Append — and expects a clean open that keeps every complete
// record and trims the stub.
func TestTruncatedTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 0; i < 4; i++ {
		if err := s.Append("fact", fact{N: i, S: "payload-padding-for-length"}); err != nil {
			t.Fatal(err)
		}
	}
	_ = s.Close()

	walPath := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 5, frameHdrSize + 3} {
		if err := os.WriteFile(walPath, raw[:len(raw)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if got := len(s2.Records()); got != 3 {
			t.Fatalf("cut %d: kept %d records, want 3", cut, got)
		}
		// The stub was trimmed: appends resume on a clean boundary.
		if err := s2.Append("fact", fact{N: 100}); err != nil {
			t.Fatal(err)
		}
		_ = s2.Close()
		s3, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := len(s3.Records()); got != 4 {
			t.Fatalf("cut %d: after re-append kept %d records, want 4", cut, got)
		}
		_ = s3.Close()
		if err := os.WriteFile(walPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTornMiddleFailsLoudly corrupts a byte inside an early record while
// later records stay intact; opening must refuse instead of silently
// dropping the durable tail.
func TestTornMiddleFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 0; i < 4; i++ {
		if err := s.Append("fact", fact{N: i, S: "abcdefghij"}); err != nil {
			t.Fatal(err)
		}
	}
	_ = s.Close()

	walPath := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[frameHdrSize+4] ^= 0xFF // flip a payload byte of record 0
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !Corrupt(err) {
		t.Fatalf("open over torn middle record: err = %v, want ErrCorrupt", err)
	}
	if _, _, err := ReadState(dir); !Corrupt(err) {
		t.Fatalf("ReadState over torn middle record: err = %v, want ErrCorrupt", err)
	}
}

func TestGuardFencesWrites(t *testing.T) {
	dir := t.TempDir()
	allowed := true
	s := openT(t, dir, Options{Guard: func() error {
		if !allowed {
			return errors.New("lease lost")
		}
		return nil
	}})
	if err := s.Append("fact", fact{N: 1}); err != nil {
		t.Fatal(err)
	}
	allowed = false
	if err := s.Append("fact", fact{N: 2}); !errors.Is(err, ErrGuarded) {
		t.Fatalf("guarded append: err = %v, want ErrGuarded", err)
	}
	if err := s.Checkpoint(fact{N: 2}); !errors.Is(err, ErrGuarded) {
		t.Fatalf("guarded checkpoint: err = %v, want ErrGuarded", err)
	}
	s2 := openT(t, dir, Options{})
	if len(s2.Records()) != 1 {
		t.Fatalf("fenced write landed: %d records, want 1", len(s2.Records()))
	}
}

func TestReadStateTailsLiveStore(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.Append("fact", fact{N: 1}); err != nil {
		t.Fatal(err)
	}
	// A follower reads while the leader still holds the WAL open.
	_, recs, err := ReadState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("follower saw %d records, want 1", len(recs))
	}
	if err := s.Append("fact", fact{N: 2}); err != nil {
		t.Fatal(err)
	}
	_, recs, err = ReadState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("follower saw %d records after second append, want 2", len(recs))
	}
}
