// Package store is the daemon's crash-safe persistence layer: a JSON
// snapshot plus a checksummed append-only write-ahead log, both in one
// state directory. The medic appends a record per state change, folds the
// log into a fresh snapshot every so often (Checkpoint), and on restart
// replays WAL-over-snapshot to resume exactly where the dead process
// stopped — the decoupling of daemon state from daemon lifetime that the
// openperouter resiliency design applies to forwarding state.
//
// Crash-consistency invariants:
//
//   - Every Append is one write(2) of a length-prefixed, CRC-framed record
//     followed (by default) by fsync: a record is either fully durable or
//     cleanly absent.
//   - A snapshot is written to a temp file, fsynced, and renamed over the
//     previous one; the WAL is truncated only after the rename is durable.
//     A crash between the two leaves a snapshot plus a WAL whose records
//     are all already folded in — replay is idempotent because records
//     carry absolute state, not deltas that double-apply.
//   - On open, a truncated tail record (the footprint of a crash mid-append)
//     is tolerated and trimmed; a torn record in the middle of the log —
//     bytes that can only come from corruption or a concurrent writer —
//     fails loudly instead of silently dropping the records behind it.
//
// Concurrent writers are excluded by lease, not by lock: callers wire
// Options.Guard to their elector's leadership check, and every Append and
// Checkpoint re-validates it, so a deposed leader's late writes are refused
// at the store boundary just as its late pushes are refused on the wire.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

const (
	snapshotFile = "snapshot.json"
	walFile      = "wal.log"

	// recMagic marks the start of every WAL frame; a frame is
	// [magic u16][payload length u32][payload CRC32 u32][payload].
	recMagic     = uint16(0xA17E)
	frameHdrSize = 2 + 4 + 4
	// maxRecordSize bounds one record's payload; larger lengths in a header
	// can only come from corruption.
	maxRecordSize = 64 << 20
)

// ErrCorrupt reports a torn WAL record in the middle of the log: valid
// records follow it, so trimming would silently lose durable state.
var ErrCorrupt = errors.New("store: torn WAL record mid-log")

// ErrGuarded reports a write refused by Options.Guard — the caller no
// longer holds the lease that makes it the store's legitimate writer.
var ErrGuarded = errors.New("store: write refused by guard")

// Record is one WAL entry: an opaque, kind-tagged JSON payload. The store
// frames and checksums it; the caller gives it meaning.
type Record struct {
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

// Options tunes a Store.
type Options struct {
	// NoSync skips the fsync after each append and checkpoint. Tests use it
	// for speed; a production daemon must not.
	NoSync bool
	// Guard, when set, is consulted before every Append and Checkpoint; a
	// non-nil error refuses the write with ErrGuarded. Wire it to the
	// elector's leadership check to fence a deposed leader's late writes.
	Guard func() error
	// CompactEvery is the store's own compaction threshold: once this many
	// records accumulate since the last checkpoint, NeedsCheckpoint reports
	// true and the owning daemon should fold the WAL into a snapshot. It
	// bounds both the WAL's size on disk and the replay work a restarted
	// process pays. Zero leaves the policy entirely to the caller.
	CompactEvery int
}

// Store is an open snapshot+WAL state directory. One process (the current
// leader) holds it for appending; followers read the same directory with
// ReadState.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	wal      *os.File
	snapshot []byte   // raw snapshot payload loaded at Open
	records  []Record // WAL records loaded at Open
	pending  int      // records in the WAL since the last checkpoint

	fsyncs      atomic.Uint64
	checkpoints atomic.Uint64
}

// Open loads the state directory: the snapshot payload (if any), then the
// WAL replayed over it. A truncated tail record is trimmed; a torn middle
// record returns ErrCorrupt. The returned store holds the WAL open for
// appending.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts}

	snap, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: snapshot: %w", err)
	}
	s.snapshot = snap

	walPath := filepath.Join(dir, walFile)
	raw, err := os.ReadFile(walPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: wal: %w", err)
	}
	records, good, err := decodeWAL(raw)
	if err != nil {
		return nil, err
	}
	s.records = records
	s.pending = len(records)

	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: wal: %w", err)
	}
	// Trim a tolerated truncated tail so the next append starts on a clean
	// frame boundary.
	if int64(good) < int64(len(raw)) {
		if err := f.Truncate(int64(good)); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("store: wal trim: %w", err)
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("store: wal seek: %w", err)
	}
	s.wal = f
	return s, nil
}

// ReadState loads a state directory read-only: the snapshot payload and the
// decoded WAL records. Followers tail the leader's store with it. The same
// corruption semantics apply, except nothing is trimmed on disk.
func ReadState(dir string) (snapshot []byte, records []Record, err error) {
	snap, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("store: snapshot: %w", err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("store: wal: %w", err)
	}
	records, _, err = decodeWAL(raw)
	if err != nil {
		return nil, nil, err
	}
	return snap, records, nil
}

// decodeWAL parses frames until the bytes run out. good is the offset of
// the last fully-valid frame boundary; bytes past it form a truncated tail
// the caller may trim. A CRC mismatch, bad magic, or oversized length on a
// frame that is followed by further bytes is a torn middle record and
// returns ErrCorrupt.
func decodeWAL(raw []byte) (records []Record, good int, err error) {
	off := 0
	for off < len(raw) {
		rest := raw[off:]
		if len(rest) < frameHdrSize {
			return records, off, nil // truncated tail header
		}
		magic := binary.BigEndian.Uint16(rest)
		length := binary.BigEndian.Uint32(rest[2:])
		sum := binary.BigEndian.Uint32(rest[6:])
		torn := magic != recMagic || length > maxRecordSize
		if !torn && len(rest) < frameHdrSize+int(length) {
			return records, off, nil // truncated tail payload
		}
		var payload []byte
		if !torn {
			payload = rest[frameHdrSize : frameHdrSize+int(length)]
			torn = crc32.ChecksumIEEE(payload) != sum
		}
		if torn {
			// A malformed frame with no valid frame behind it is a torn
			// tail — the same crash footprint as a short write — and is
			// trimmed. One followed by further valid records would silently
			// drop durable state if trimmed, so it must fail loudly.
			if nextFrame(rest) < 0 {
				return records, off, nil
			}
			return nil, 0, fmt.Errorf("%w: offset %d", ErrCorrupt, off)
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return nil, 0, fmt.Errorf("%w: offset %d: %v", ErrCorrupt, off, err)
		}
		records = append(records, rec)
		off += frameHdrSize + int(length)
		good = off
	}
	return records, good, nil
}

// nextFrame looks past the first (malformed) frame header for another
// plausible frame start; -1 means none, i.e. the malformed bytes are the
// log's tail.
func nextFrame(rest []byte) int {
	for off := 1; off+frameHdrSize <= len(rest); off++ {
		if binary.BigEndian.Uint16(rest[off:]) != recMagic {
			continue
		}
		length := binary.BigEndian.Uint32(rest[off+2:])
		if length > maxRecordSize || off+frameHdrSize+int(length) > len(rest) {
			continue
		}
		payload := rest[off+frameHdrSize : off+frameHdrSize+int(length)]
		if crc32.ChecksumIEEE(payload) == binary.BigEndian.Uint32(rest[off+6:]) {
			return off
		}
	}
	return -1
}

// Dir returns the state directory.
func (s *Store) Dir() string { return s.dir }

// Snapshot returns the raw snapshot payload loaded at Open (nil if the
// directory had none).
func (s *Store) Snapshot() []byte { return s.snapshot }

// Records returns the WAL records loaded at Open, in append order.
func (s *Store) Records() []Record { return s.records }

// Pending counts the WAL records not yet folded into a snapshot — the
// caller's cue to Checkpoint.
func (s *Store) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// NeedsCheckpoint reports whether the WAL has grown past the store's own
// CompactEvery threshold. Always false when the knob is unset (zero).
func (s *Store) NeedsCheckpoint() bool {
	if s.opts.CompactEvery <= 0 {
		return false
	}
	return s.Pending() >= s.opts.CompactEvery
}

// Fsyncs counts the fsync calls issued so far (a metrics source).
func (s *Store) Fsyncs() uint64 { return s.fsyncs.Load() }

// Checkpoints counts completed checkpoints.
func (s *Store) Checkpoints() uint64 { return s.checkpoints.Load() }

// Append marshals v, frames it under kind, writes it to the WAL in one
// write, and fsyncs (unless NoSync). It is the durability point of a state
// change: once Append returns nil the record survives SIGKILL.
func (s *Store) Append(kind string, v any) error {
	if err := s.guard(); err != nil {
		return err
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: append %s: %w", kind, err)
	}
	payload, err := json.Marshal(Record{Kind: kind, Data: data})
	if err != nil {
		return fmt.Errorf("store: append %s: %w", kind, err)
	}
	frame := make([]byte, frameHdrSize+len(payload))
	binary.BigEndian.PutUint16(frame, recMagic)
	binary.BigEndian.PutUint32(frame[2:], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[6:], crc32.ChecksumIEEE(payload))
	copy(frame[frameHdrSize:], payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return errors.New("store: closed")
	}
	if _, err := s.wal.Write(frame); err != nil {
		return fmt.Errorf("store: append %s: %w", kind, err)
	}
	if err := s.sync(s.wal); err != nil {
		return fmt.Errorf("store: append %s: %w", kind, err)
	}
	s.pending++
	return nil
}

// Checkpoint folds the current state into a fresh snapshot: state is
// marshaled, written to a temp file, fsynced, renamed over the snapshot,
// the directory is fsynced, and only then is the WAL truncated. A crash at
// any point leaves a readable directory.
func (s *Store) Checkpoint(state any) error {
	if err := s.guard(); err != nil {
		return err
	}
	payload, err := json.Marshal(state)
	if err != nil {
		return fmt.Errorf("store: checkpoint: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return errors.New("store: closed")
	}
	tmp := filepath.Join(s.dir, snapshotFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	if _, err := f.Write(payload); err != nil {
		_ = f.Close()
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	if err := s.sync(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotFile)); err != nil {
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	if err := s.syncDir(); err != nil {
		return err
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: checkpoint: wal truncate: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: checkpoint: wal seek: %w", err)
	}
	if err := s.sync(s.wal); err != nil {
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	s.snapshot = payload
	s.pending = 0
	s.checkpoints.Add(1)
	return nil
}

// Sync flushes the WAL file; a no-op under NoSync. Graceful shutdown calls
// it before exiting.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	return s.sync(s.wal)
}

// Close flushes and releases the WAL.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.sync(s.wal)
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.wal = nil
	return err
}

func (s *Store) guard() error {
	if s.opts.Guard == nil {
		return nil
	}
	if err := s.opts.Guard(); err != nil {
		return fmt.Errorf("%w: %v", ErrGuarded, err)
	}
	return nil
}

func (s *Store) sync(f *os.File) error {
	if s.opts.NoSync {
		return nil
	}
	if err := f.Sync(); err != nil {
		return err
	}
	s.fsyncs.Add(1)
	return nil
}

func (s *Store) syncDir() error {
	if s.opts.NoSync {
		return nil
	}
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	s.fsyncs.Add(1)
	return nil
}

// DecodeInto unmarshals a record's payload into v — sugar for replay loops.
func (r Record) DecodeInto(v any) error {
	return json.Unmarshal(r.Data, v)
}

// Corrupt reports whether err is the torn-middle-record failure.
func Corrupt(err error) bool { return errors.Is(err, ErrCorrupt) }
