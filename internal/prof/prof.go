// Package prof wires the standard pprof profilers into the command-line
// tools, so perf investigations start from an artifact instead of guesses.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuFile (when non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile into
// memFile (when non-empty). Call stop exactly once, after the workload.
// Empty filenames disable the corresponding profile; Start("", "") returns
// a no-op stop.
func Start(cpuFile, memFile string) (stop func() error, err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			_ = cpu.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			runtime.GC() // get up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				_ = f.Close()
				return fmt.Errorf("prof: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		return nil
	}, nil
}
