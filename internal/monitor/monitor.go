// Package monitor is a heartbeat-based controller failure detector. It
// probes each target's control-plane liveness endpoint (internal/openflow
// Echo by default) on a jittered per-target loop, turns consecutive probe
// misses into a down suspicion and a single successful probe into a
// recovery, and coalesces transitions inside a debounce window so a
// correlated multi-controller failure surfaces as one event — the input the
// recovery orchestrator (internal/medic) wants, since re-planning once for
// the combined failure beats re-planning per controller.
//
// Detection semantics:
//
//   - A target starts assumed up (the steady state the daemon boots into).
//   - Every probe failure increments a consecutive-miss counter; reaching
//     Threshold misses flips the target down. A single miss — a latency
//     spike, a dropped frame — never does, which is what keeps the detector
//     quiet under jitter-only chaos.
//   - Any successful probe resets the counter and flips a down target up
//     (fail-back detection).
//   - Raw transitions are buffered for Debounce before an Event is emitted;
//     transitions that cancel out within the window (a flap) are suppressed.
//
// All probe scheduling is seeded: loops start phase-staggered and tick with
// deterministic jitter drawn from per-target PRNG streams, so two monitors
// with the same seed probe on the same schedule.
package monitor

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"pmedic/internal/openflow"
)

// Target is one monitored controller endpoint.
type Target struct {
	// ID is the controller's deployment index; events carry it.
	ID int
	// Name is a human-readable label for logs and status.
	Name string
	// Addr is the liveness endpoint the probe dials.
	Addr string
}

// ProbeFunc checks one endpoint's liveness, bounded by timeout. Every call
// is independent (connection-per-probe); a nil error means alive.
type ProbeFunc func(addr string, timeout time.Duration) error

// ProbeVia builds a ProbeFunc from a control-channel dialer: each probe
// dials, runs one Echo round-trip, and closes. Substituting a chaos-wrapped
// dialer is how tests and demos put probe traffic under fault injection.
func ProbeVia(dial func(addr string, timeout time.Duration) (*openflow.Conn, error)) ProbeFunc {
	return func(addr string, timeout time.Duration) error {
		conn, err := dial(addr, timeout)
		if err != nil {
			return err
		}
		defer func() { _ = conn.Close() }()
		conn.SetIOTimeout(timeout)
		return conn.Ping([]byte("pmedicd"))
	}
}

// defaultProbe dials the endpoint over plain TCP and pings it.
var defaultProbe = ProbeVia(openflow.DialTimeout)

// Config tunes the detector. The zero value selects the defaults noted per
// field.
type Config struct {
	// Interval is the nominal gap between probes of one target (default
	// 500ms). Each target's loop starts phase-staggered within one Interval.
	Interval time.Duration
	// Jitter adds a uniform [0, Jitter) seeded extra delay per tick (default
	// Interval/4) so probe loops decorrelate instead of thundering together.
	Jitter time.Duration
	// Timeout bounds each probe (default Interval).
	Timeout time.Duration
	// Threshold is the number of consecutive misses that flips a target down
	// (default 3).
	Threshold int
	// Debounce is the coalescing window between the first raw transition and
	// the emitted event (default 2×Interval). Correlated failures landing
	// within one window become one event.
	Debounce time.Duration
	// Seed drives the probe schedule and jitter deterministically.
	Seed int64
	// Probe replaces the liveness check (default: openflow Echo ping).
	Probe ProbeFunc
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.Jitter <= 0 {
		c.Jitter = c.Interval / 4
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval
	}
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Debounce <= 0 {
		c.Debounce = 2 * c.Interval
	}
	if c.Probe == nil {
		c.Probe = defaultProbe
	}
	return c
}

// Event is one coalesced liveness delta: the targets that went down and the
// targets that came back since the previous event.
type Event struct {
	// Seq numbers events monotonically from 1.
	Seq uint64 `json:"seq"`
	// Failed and Recovered carry target IDs, ascending.
	Failed    []int `json:"failed,omitempty"`
	Recovered []int `json:"recovered,omitempty"`
	// At is the emission time (the end of the debounce window).
	At time.Time `json:"at"`
}

// String renders the event compactly.
func (e Event) String() string {
	return fmt.Sprintf("event #%d: failed=%v recovered=%v", e.Seq, e.Failed, e.Recovered)
}

// TargetState is one target's detector-side view, for status reporting.
type TargetState struct {
	ID                int       `json:"id"`
	Name              string    `json:"name,omitempty"`
	Addr              string    `json:"addr"`
	Up                bool      `json:"up"`
	ConsecutiveMisses int       `json:"consecutive_misses"`
	Probes            uint64    `json:"probes"`
	Misses            uint64    `json:"misses"`
	Failures          uint64    `json:"failures"`
	Recoveries        uint64    `json:"recoveries"`
	LastProbeAt       time.Time `json:"last_probe_at"`
	LastError         string    `json:"last_error,omitempty"`
}

// transition is one raw per-target state flip, pre-debounce.
type transition struct {
	id int
	up bool
}

type target struct {
	Target
	state TargetState
}

// Monitor drives the probe loops and the debouncing coalescer.
type Monitor struct {
	cfg     Config
	targets []*target

	mu sync.Mutex // guards every target's state

	transitions chan transition
	events      chan Event

	startOnce sync.Once
	stopOnce  sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// New builds a detector over the targets. Call Start to begin probing.
func New(targets []Target, cfg Config) *Monitor {
	m := &Monitor{
		cfg:         cfg.withDefaults(),
		transitions: make(chan transition, 4*len(targets)+4),
		events:      make(chan Event, 16),
		done:        make(chan struct{}),
	}
	for _, t := range targets {
		tt := &target{Target: t}
		tt.state = TargetState{ID: t.ID, Name: t.Name, Addr: t.Addr, Up: true}
		m.targets = append(m.targets, tt)
	}
	return m
}

// Events is the coalesced event stream. It is closed by Stop.
func (m *Monitor) Events() <-chan Event { return m.events }

// Start launches the probe loops and the coalescer.
func (m *Monitor) Start() {
	m.startOnce.Do(func() {
		m.wg.Add(1)
		go m.coalesce()
		for i, t := range m.targets {
			m.wg.Add(1)
			go m.probeLoop(t, m.cfg.Seed^(0x5DEECE66D*int64(i+1)))
		}
	})
}

// Stop halts probing, waits for in-flight probes, and closes Events.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() {
		close(m.done)
		m.wg.Wait()
		close(m.events)
	})
}

// MarkDown seeds targets as already down before Start — the detector-state
// handoff on daemon failover. A successor daemon that restored a failure
// set from the shared store marks those targets down so the fresh detector
// does not re-announce failures the previous leader already reconciled
// (which would burn an epoch and a redundant push), while a probe success
// on a marked target still emits the recovery event. Calling MarkDown
// after Start has no effect on already-running probe loops' past output.
func (m *Monitor) MarkDown(ids ...int) {
	down := make(map[int]bool, len(ids))
	for _, id := range ids {
		down[id] = true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range m.targets {
		if down[t.ID] {
			t.state.Up = false
			t.state.ConsecutiveMisses = m.cfg.Threshold
		}
	}
}

// State snapshots every target's detector-side view, in target order.
func (m *Monitor) State() []TargetState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]TargetState, len(m.targets))
	for i, t := range m.targets {
		out[i] = t.state
	}
	return out
}

// probeLoop drives one target: phase-staggered start, jittered ticks, one
// probe per tick.
func (m *Monitor) probeLoop(t *target, seed int64) {
	defer m.wg.Done()
	rng := rand.New(rand.NewSource(seed))
	timer := time.NewTimer(time.Duration(rng.Int63n(int64(m.cfg.Interval))))
	defer timer.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-timer.C:
		}
		err := m.cfg.Probe(t.Addr, m.cfg.Timeout)
		m.record(t, err)
		timer.Reset(m.cfg.Interval + time.Duration(rng.Int63n(int64(m.cfg.Jitter))))
	}
}

// record folds one probe result into the target's state and queues a raw
// transition when the suspicion threshold is crossed or the target returns.
func (m *Monitor) record(t *target, err error) {
	m.mu.Lock()
	s := &t.state
	s.Probes++
	s.LastProbeAt = time.Now()
	var tr *transition
	if err != nil {
		s.Misses++
		s.ConsecutiveMisses++
		s.LastError = err.Error()
		if s.Up && s.ConsecutiveMisses >= m.cfg.Threshold {
			s.Up = false
			s.Failures++
			tr = &transition{id: t.ID, up: false}
		}
	} else {
		s.ConsecutiveMisses = 0
		s.LastError = ""
		if !s.Up {
			s.Up = true
			s.Recoveries++
			tr = &transition{id: t.ID, up: true}
		}
	}
	m.mu.Unlock()
	if tr != nil {
		select {
		case m.transitions <- *tr:
		case <-m.done:
		}
	}
}

// coalesce buffers raw transitions for one debounce window and emits the
// surviving delta as a single event. reported tracks the state consumers
// last saw, so a flap inside the window cancels instead of emitting.
func (m *Monitor) coalesce() {
	defer m.wg.Done()
	// reported starts from each target's current view, not a blanket "up":
	// targets seeded down by MarkDown (failover handoff) must not emit a
	// failure event for a failure the consumer already knows about.
	reported := make(map[int]bool, len(m.targets))
	m.mu.Lock()
	for _, t := range m.targets {
		reported[t.ID] = t.state.Up
	}
	m.mu.Unlock()
	pending := make(map[int]bool)
	var (
		timer  *time.Timer
		timerC <-chan time.Time
		seq    uint64
	)
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		select {
		case <-m.done:
			return
		case tr := <-m.transitions:
			pending[tr.id] = tr.up
			if timerC == nil {
				timer = time.NewTimer(m.cfg.Debounce)
				timerC = timer.C
			}
		case <-timerC:
			timerC = nil
			ev := Event{At: time.Now()}
			for id, up := range pending {
				if up == reported[id] {
					continue // flapped back within the window
				}
				reported[id] = up
				if up {
					ev.Recovered = append(ev.Recovered, id)
				} else {
					ev.Failed = append(ev.Failed, id)
				}
			}
			pending = make(map[int]bool)
			if len(ev.Failed) == 0 && len(ev.Recovered) == 0 {
				continue
			}
			sort.Ints(ev.Failed)
			sort.Ints(ev.Recovered)
			seq++
			ev.Seq = seq
			select {
			case m.events <- ev:
			case <-m.done:
				return
			}
		}
	}
}
