package monitor

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pmedic/internal/openflow"
)

// fakeFleet is a probe-level stand-in for a set of controllers whose
// liveness the test flips directly.
type fakeFleet struct {
	mu   sync.Mutex
	up   map[string]bool
	hits map[string]uint64
}

func newFakeFleet(addrs ...string) *fakeFleet {
	f := &fakeFleet{up: make(map[string]bool), hits: make(map[string]uint64)}
	for _, a := range addrs {
		f.up[a] = true
	}
	return f
}

func (f *fakeFleet) set(addr string, up bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.up[addr] = up
}

func (f *fakeFleet) probe(addr string, _ time.Duration) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hits[addr]++
	if !f.up[addr] {
		return errors.New("probe refused")
	}
	return nil
}

func fastConfig(probe ProbeFunc) Config {
	return Config{
		Interval:  5 * time.Millisecond,
		Jitter:    2 * time.Millisecond,
		Timeout:   20 * time.Millisecond,
		Threshold: 3,
		Debounce:  25 * time.Millisecond,
		Seed:      42,
		Probe:     probe,
	}
}

func waitEvent(t *testing.T, m *Monitor, within time.Duration) Event {
	t.Helper()
	select {
	case ev, ok := <-m.Events():
		if !ok {
			t.Fatal("event stream closed")
		}
		return ev
	case <-time.After(within):
		t.Fatal("no event within deadline")
	}
	return Event{}
}

func TestHealthyTargetsEmitNothing(t *testing.T) {
	fleet := newFakeFleet("a", "b", "c")
	m := New([]Target{{ID: 0, Addr: "a"}, {ID: 1, Addr: "b"}, {ID: 2, Addr: "c"}},
		fastConfig(fleet.probe))
	m.Start()
	defer m.Stop()

	select {
	case ev := <-m.Events():
		t.Fatalf("unexpected %v from a healthy fleet", ev)
	case <-time.After(150 * time.Millisecond):
	}
	for _, s := range m.State() {
		if !s.Up || s.Failures != 0 {
			t.Fatalf("target %d: %+v", s.ID, s)
		}
		if s.Probes < 3 {
			t.Fatalf("target %d probed only %d times", s.ID, s.Probes)
		}
	}
}

func TestBlipsBelowThresholdAreSuppressed(t *testing.T) {
	// Every 4th probe fails: consecutive misses never reach 3, so the
	// detector must stay silent — the zero-false-positive property.
	var mu sync.Mutex
	calls := 0
	probe := func(string, time.Duration) error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls%4 == 0 {
			return errors.New("transient blip")
		}
		return nil
	}
	m := New([]Target{{ID: 0, Addr: "a"}}, fastConfig(probe))
	m.Start()
	defer m.Stop()

	select {
	case ev := <-m.Events():
		t.Fatalf("unexpected %v from sub-threshold blips", ev)
	case <-time.After(200 * time.Millisecond):
	}
	s := m.State()[0]
	if !s.Up || s.Failures != 0 {
		t.Fatalf("target flipped: %+v", s)
	}
	if s.Misses == 0 {
		t.Fatal("no miss recorded; blips not exercised")
	}
}

func TestCorrelatedFailuresCoalesce(t *testing.T) {
	fleet := newFakeFleet("a", "b", "c")
	m := New([]Target{{ID: 0, Addr: "a"}, {ID: 1, Addr: "b"}, {ID: 2, Addr: "c"}},
		fastConfig(fleet.probe))
	m.Start()
	defer m.Stop()

	// Two controllers die together: threshold crossings land within one
	// debounce window, so one event must carry both.
	fleet.set("a", false)
	fleet.set("c", false)
	ev := waitEvent(t, m, 5*time.Second)
	if len(ev.Failed) != 2 || ev.Failed[0] != 0 || ev.Failed[1] != 2 {
		t.Fatalf("Failed = %v, want [0 2]", ev.Failed)
	}
	if len(ev.Recovered) != 0 {
		t.Fatalf("Recovered = %v, want none", ev.Recovered)
	}

	// Both return: one coalesced recovery event.
	fleet.set("a", true)
	fleet.set("c", true)
	ev = waitEvent(t, m, 5*time.Second)
	if len(ev.Recovered) != 2 || ev.Recovered[0] != 0 || ev.Recovered[1] != 2 {
		t.Fatalf("Recovered = %v, want [0 2]", ev.Recovered)
	}
	if ev.Seq != 2 {
		t.Fatalf("Seq = %d, want 2", ev.Seq)
	}
	s := m.State()[0]
	if s.Failures != 1 || s.Recoveries != 1 {
		t.Fatalf("target 0 counters: %+v", s)
	}
}

func TestOpenflowProbeAgainstEchoServer(t *testing.T) {
	// The default probe against a real endpoint: detection and fail-back
	// over the wire protocol end to end.
	es, err := openflow.ServeEcho("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = es.Close() }()

	m := New([]Target{{ID: 4, Name: "c4", Addr: es.Addr()}}, Config{
		Interval:  10 * time.Millisecond,
		Jitter:    3 * time.Millisecond,
		Timeout:   100 * time.Millisecond,
		Threshold: 3,
		Debounce:  30 * time.Millisecond,
		Seed:      7,
	})
	m.Start()
	defer m.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for es.Pings() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no probe reached the endpoint")
		}
		time.Sleep(5 * time.Millisecond)
	}

	es.SetAlive(false)
	ev := waitEvent(t, m, 5*time.Second)
	if len(ev.Failed) != 1 || ev.Failed[0] != 4 {
		t.Fatalf("Failed = %v, want [4]", ev.Failed)
	}

	es.SetAlive(true)
	ev = waitEvent(t, m, 5*time.Second)
	if len(ev.Recovered) != 1 || ev.Recovered[0] != 4 {
		t.Fatalf("Recovered = %v, want [4]", ev.Recovered)
	}
}

func TestStopClosesEventStream(t *testing.T) {
	fleet := newFakeFleet("a")
	m := New([]Target{{ID: 0, Addr: "a"}}, fastConfig(fleet.probe))
	m.Start()
	m.Stop()
	if _, ok := <-m.Events(); ok {
		// Drain any event emitted before the stop; the stream must end.
		for range m.Events() {
		}
	}
}

// TestMarkDownHandsOffDetectorState covers the failover handoff: a
// successor daemon seeds its detector with the failure set restored from
// the shared store. Targets marked down must not re-announce their failure
// (the predecessor already reconciled it), but their recovery must still be
// detected and emitted.
func TestMarkDownHandsOffDetectorState(t *testing.T) {
	fleet := newFakeFleet("a", "b")
	fleet.set("a", false) // target 0 is genuinely down at takeover
	m := New([]Target{{ID: 0, Addr: "a"}, {ID: 1, Addr: "b"}}, fastConfig(fleet.probe))
	m.MarkDown(0)
	m.Start()
	defer m.Stop()

	// No duplicate failure event for the known-down target.
	select {
	case ev := <-m.Events():
		t.Fatalf("unexpected %v for a handed-off failure", ev)
	case <-time.After(150 * time.Millisecond):
	}
	st := m.State()
	if st[0].Up {
		t.Fatal("marked-down target reported up without a successful probe")
	}
	if st[0].Failures != 0 {
		t.Fatalf("handed-off target counted %d fresh failures", st[0].Failures)
	}
	if !st[1].Up {
		t.Fatalf("healthy target flipped: %+v", st[1])
	}

	// Its recovery is still detected as a normal event.
	fleet.set("a", true)
	ev := waitEvent(t, m, 5*time.Second)
	if len(ev.Recovered) != 1 || ev.Recovered[0] != 0 || len(ev.Failed) != 0 {
		t.Fatalf("event = %v, want recovery of target 0", ev)
	}
}
