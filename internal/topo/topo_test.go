package topo

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := &Graph{}
	for i := 0; i < 5; i++ {
		if id := g.AddNode("n", 0, 0); int(id) != i {
			t.Fatalf("AddNode #%d returned id %d", i, id)
		}
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := &Graph{}
	a := g.AddNode("a", 0, 0)
	b := g.AddNode("b", 1, 1)
	if err := g.AddEdge(a, b); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(b, a); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("duplicate edge error = %v, want ErrDuplicateEdge", err)
	}
	if err := g.AddEdge(a, a); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("self loop error = %v, want ErrSelfLoop", err)
	}
	if err := g.AddEdge(a, 99); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("out of range error = %v, want ErrNodeOutOfRange", err)
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	g := &Graph{}
	a := g.AddNode("a", 0, 0)
	b := g.AddNode("b", 0, 0)
	c := g.AddNode("c", 0, 0)
	for _, e := range [][2]NodeID{{a, c}, {a, b}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	got := g.Neighbors(a)
	if len(got) != 2 || got[0] != b || got[1] != c {
		t.Fatalf("Neighbors(a) = %v, want sorted [b c]", got)
	}
	if g.Degree(a) != 2 || g.Degree(b) != 1 {
		t.Fatalf("degrees: a=%d b=%d", g.Degree(a), g.Degree(b))
	}
	if g.Degree(-1) != 0 || g.Neighbors(99) != nil {
		t.Fatal("invalid IDs must yield zero degree / nil neighbors")
	}
	// The returned slice must be a copy.
	got[0] = 42
	if g.Neighbors(a)[0] == 42 {
		t.Fatal("Neighbors returned internal storage")
	}
}

func TestConnected(t *testing.T) {
	g := &Graph{}
	if !g.Connected() {
		t.Fatal("empty graph should count as connected")
	}
	a := g.AddNode("a", 0, 0)
	b := g.AddNode("b", 0, 0)
	g.AddNode("c", 0, 0)
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if g.Connected() {
		t.Fatal("graph with isolated node reported connected")
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	// New York -> Los Angeles is roughly 3936 km great-circle.
	d := HaversineKm(40.7128, -74.0060, 34.0522, -118.2437)
	if d < 3900 || d > 3975 {
		t.Fatalf("NYC-LA distance = %.1f km, want ~3936", d)
	}
	if HaversineKm(10, 20, 10, 20) != 0 {
		t.Fatal("identical coordinates must have zero distance")
	}
}

func TestHaversineProperties(t *testing.T) {
	symmetric := func(lat1, lon1, lat2, lon2 float64) bool {
		clamp := func(v, lo, hi float64) float64 {
			return math.Mod(math.Abs(v), hi-lo) + lo
		}
		la1, lo1 := clamp(lat1, -90, 90), clamp(lon1, -180, 180)
		la2, lo2 := clamp(lat2, -90, 90), clamp(lon2, -180, 180)
		d1 := HaversineKm(la1, lo1, la2, lo2)
		d2 := HaversineKm(la2, lo2, la1, lo1)
		return d1 >= 0 && math.Abs(d1-d2) < 1e-9 && d1 <= math.Pi*earthRadiusKm+1
	}
	if err := quick.Check(symmetric, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkDelayUsesPropagationSpeed(t *testing.T) {
	g := &Graph{}
	a := g.AddNode("a", 40.7128, -74.0060)
	b := g.AddNode("b", 34.0522, -118.2437)
	d, err := g.DistanceKm(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := g.LinkDelayMs(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ms-d/200.0) > 1e-9 {
		t.Fatalf("delay %.3f ms does not match distance %.1f km / 200 km/ms", ms, d)
	}
}

func TestATTDataset(t *testing.T) {
	dep, err := ATT()
	if err != nil {
		t.Fatalf("ATT: %v", err)
	}
	g := dep.Graph
	if g.NumNodes() != 25 {
		t.Fatalf("nodes = %d, want 25", g.NumNodes())
	}
	if g.NumDirectedLinks() != 112 {
		t.Fatalf("directed links = %d, want 112 (56 undirected)", g.NumDirectedLinks())
	}
	if err := dep.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(dep.Controllers) != 6 {
		t.Fatalf("controllers = %d, want 6", len(dep.Controllers))
	}
	sizes := map[int]int{}
	for _, c := range dep.Controllers {
		if c.Capacity != DefaultControllerCapacity {
			t.Fatalf("capacity = %d, want %d", c.Capacity, DefaultControllerCapacity)
		}
		sizes[len(c.Domain)]++
	}
	// Table III domain-size profile: {4, 4, 4, 5, 2, 6}.
	if sizes[4] != 3 || sizes[5] != 1 || sizes[2] != 1 || sizes[6] != 1 {
		t.Fatalf("domain size profile = %v, want 3×4, 1×5, 1×2, 1×6", sizes)
	}
}

func TestATTControllerOf(t *testing.T) {
	dep, err := ATT()
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range dep.Controllers {
		for _, sw := range c.Domain {
			if got := dep.ControllerOf(sw); got != j {
				t.Fatalf("ControllerOf(%d) = %d, want %d", sw, got, j)
			}
		}
	}
	if dep.ControllerOf(NodeID(99)) != -1 {
		t.Fatal("ControllerOf(out of range) should be -1")
	}
}

func TestDeploymentValidateCatchesOverlap(t *testing.T) {
	g := &Graph{}
	a := g.AddNode("a", 0, 0)
	b := g.AddNode("b", 1, 1)
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	d := &Deployment{
		Graph: g,
		Controllers: []Controller{
			{Site: a, Domain: []NodeID{a, b}, Capacity: 10},
			{Site: b, Domain: []NodeID{b}, Capacity: 10},
		},
	}
	if err := d.Validate(); err == nil {
		t.Fatal("overlapping domains must fail validation")
	}
}

func TestDeploymentValidateCatchesUncovered(t *testing.T) {
	g := &Graph{}
	a := g.AddNode("a", 0, 0)
	b := g.AddNode("b", 1, 1)
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	d := &Deployment{
		Graph:       g,
		Controllers: []Controller{{Site: a, Domain: []NodeID{a}, Capacity: 10}},
	}
	if err := d.Validate(); err == nil {
		t.Fatal("uncovered switches must fail validation")
	}
}

func TestEdgeDelaysMsSymmetric(t *testing.T) {
	dep, err := ATT()
	if err != nil {
		t.Fatal(err)
	}
	w, err := dep.Graph.EdgeDelaysMs()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range dep.Graph.Edges() {
		if w(e.A, e.B) != w(e.B, e.A) {
			t.Fatalf("delay asymmetric on edge %v", e)
		}
		if w(e.A, e.B) <= 0 {
			t.Fatalf("non-positive delay on edge %v", e)
		}
	}
}
