package topo

import "fmt"

// Controller describes one SDN controller of a deployment: the switch site it
// is co-located with, the switch domain it controls, and its control-plane
// processing capacity measured — as in the paper — in the number of flows it
// can control without queueing delay.
type Controller struct {
	Site     NodeID
	Domain   []NodeID
	Capacity int
}

// Deployment is a topology together with its control plane: a set of
// controllers partitioning the switches into domains.
type Deployment struct {
	Graph       *Graph
	Controllers []Controller
}

// ControllerOf returns the index (into Controllers) of the controller whose
// domain contains switch s, or -1 if no domain contains it.
func (d *Deployment) ControllerOf(s NodeID) int {
	for j, c := range d.Controllers {
		for _, sw := range c.Domain {
			if sw == s {
				return j
			}
		}
	}
	return -1
}

// Validate checks that the graph is valid and that the controller domains
// form a partition of the switch set.
func (d *Deployment) Validate() error {
	if err := d.Graph.Validate(); err != nil {
		return err
	}
	seen := make(map[NodeID]int, d.Graph.NumNodes())
	for j, c := range d.Controllers {
		if c.Capacity <= 0 {
			return fmt.Errorf("topo: controller %d has non-positive capacity %d", j, c.Capacity)
		}
		if !d.Graph.valid(c.Site) {
			return fmt.Errorf("topo: controller %d site %d: %w", j, c.Site, ErrNodeOutOfRange)
		}
		for _, sw := range c.Domain {
			if !d.Graph.valid(sw) {
				return fmt.Errorf("topo: controller %d domain switch %d: %w", j, sw, ErrNodeOutOfRange)
			}
			if prev, dup := seen[sw]; dup {
				return fmt.Errorf("topo: switch %d in domains of controllers %d and %d", sw, prev, j)
			}
			seen[sw] = j
		}
	}
	if len(seen) != d.Graph.NumNodes() {
		return fmt.Errorf("topo: domains cover %d of %d switches", len(seen), d.Graph.NumNodes())
	}
	return nil
}

// DefaultControllerCapacity is the per-controller control capacity used by
// the paper's evaluation ("the processing ability of each controller is 500").
const DefaultControllerCapacity = 500

// attCity is one row of the embedded dataset.
type attCity struct {
	name     string
	lat, lon float64
}

// attCities lists the 25 switch sites of the evaluation topology in node-ID
// order. The real Topology Zoo ATT GraphML cannot be fetched offline, so this
// is a faithful stand-in: a US national backbone with 25 nodes and 56
// undirected (112 directed) links whose structure mirrors the paper's
// Table III — six controller sites at nodes {2, 5, 6, 13, 20, 22}, domain
// sizes {4, 4, 4, 5, 2, 6}, and a dominant mid-continent hub (node 13,
// Chicago) that carries the largest flow count. See DESIGN.md §3.
var attCities = [...]attCity{
	0:  {"Boston", 42.3601, -71.0589},
	1:  {"New York", 40.7128, -74.0060},
	2:  {"Atlanta", 33.7490, -84.3880},
	3:  {"Charlotte", 35.2271, -80.8431},
	4:  {"New Orleans", 29.9511, -90.0715},
	5:  {"Dallas", 32.7767, -96.7970},
	6:  {"Philadelphia", 39.9526, -75.1652},
	7:  {"Washington DC", 38.9072, -77.0369},
	8:  {"Houston", 29.7604, -95.3698},
	9:  {"Orlando", 28.5384, -81.3789},
	10: {"Detroit", 42.3314, -83.0458},
	11: {"Cleveland", 41.4993, -81.6944},
	12: {"Indianapolis", 39.7684, -86.1581},
	13: {"Chicago", 41.8781, -87.6298},
	14: {"San Antonio", 29.4241, -98.4936},
	15: {"St. Louis", 38.6270, -90.1994},
	16: {"Miami", 25.7617, -80.1918},
	17: {"Seattle", 47.6062, -122.3321},
	18: {"Portland", 45.5152, -122.6784},
	19: {"Denver", 39.7392, -104.9903},
	20: {"Salt Lake City", 40.7608, -111.8910},
	21: {"San Francisco", 37.7749, -122.4194},
	22: {"Los Angeles", 34.0522, -118.2437},
	23: {"San Diego", 32.7157, -117.1611},
	24: {"Phoenix", 33.4484, -112.0740},
}

// attEdges is the 56-entry undirected link list of the embedded topology.
var attEdges = [...][2]NodeID{
	// Northeast.
	{0, 1}, {0, 6}, {0, 7}, {1, 6}, {1, 7}, {6, 7}, {1, 11}, {1, 13}, {3, 7}, {2, 7},
	// Southeast.
	{2, 3}, {3, 9}, {2, 9}, {2, 16}, {9, 16}, {2, 4}, {2, 13}, {4, 16},
	// South.
	{4, 8}, {4, 9}, {4, 14}, {5, 8}, {8, 14}, {8, 24}, {5, 14}, {14, 24}, {5, 13}, {5, 19}, {5, 24}, {2, 8}, {5, 22}, {5, 15},
	// Midwest (node 13 is the hub; its domain neighbors are spokes).
	{10, 11}, {10, 12}, {10, 13}, {11, 13}, {12, 13}, {13, 15}, {12, 15},
	// Mountain.
	{19, 20}, {13, 19}, {19, 24}, {17, 20}, {18, 20}, {20, 21}, {20, 22}, {20, 24}, {17, 19}, {19, 21}, {19, 22},
	// West coast.
	{17, 18}, {18, 21}, {21, 22}, {22, 23}, {22, 24}, {23, 24},
}

// attDomains maps each controller site to its switch domain, mirroring the
// structure of the paper's Table III: domain sizes {4, 4, 4, 5, 2, 6}, one
// hub-heavy domain (C13), and one lightly loaded two-switch domain (C16,
// Florida) whose controller is the only one with enough residual capacity to
// absorb a hub switch whole — the paper's C20 analog, whose joint failure
// with C13 produces the headline recovery gap.
var attDomains = map[NodeID][]NodeID{
	2:  {2, 3, 4, 8},
	5:  {5, 14, 19, 20},
	6:  {0, 1, 6, 7},
	13: {10, 11, 12, 13, 15},
	16: {9, 16},
	22: {17, 18, 21, 22, 23, 24},
}

// attControllerOrder fixes the controller indexing (C_1..C_6 in the paper's
// notation) to the ascending site order used by Table III.
var attControllerOrder = [...]NodeID{2, 5, 6, 13, 16, 22}

// ATT builds the embedded 25-node / 112-directed-link evaluation topology
// with its six-controller deployment (capacity 500 each). The returned
// deployment is validated; an error indicates a corrupted embedded dataset.
func ATT() (*Deployment, error) {
	g := &Graph{}
	for _, c := range attCities {
		g.AddNode(c.name, c.lat, c.lon)
	}
	for _, e := range attEdges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("topo: build ATT: %w", err)
		}
	}
	d := &Deployment{Graph: g}
	for _, site := range attControllerOrder {
		dom := attDomains[site]
		domain := make([]NodeID, len(dom))
		copy(domain, dom)
		d.Controllers = append(d.Controllers, Controller{
			Site:     site,
			Domain:   domain,
			Capacity: DefaultControllerCapacity,
		})
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("topo: build ATT: %w", err)
	}
	return d, nil
}
