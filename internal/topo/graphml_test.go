package topo

import (
	"errors"
	"strings"
	"testing"
)

// sampleGraphML is a minimal Topology-Zoo-style document: three nodes with
// coordinates (one labeled), one without, plus a parallel edge and a
// self-loop that loaders must tolerate when asked to.
const sampleGraphML = `<?xml version="1.0" encoding="utf-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key attr.name="Latitude" attr.type="double" for="node" id="d29"/>
  <key attr.name="Longitude" attr.type="double" for="node" id="d32"/>
  <key attr.name="label" attr.type="string" for="node" id="d33"/>
  <graph edgedefault="undirected">
    <node id="0">
      <data key="d29">40.71</data>
      <data key="d32">-74.00</data>
      <data key="d33">New York</data>
    </node>
    <node id="1">
      <data key="d29">41.88</data>
      <data key="d32">-87.63</data>
    </node>
    <node id="2">
      <data key="d29">34.05</data>
      <data key="d32">-118.24</data>
    </node>
    <node id="ghost"></node>
    <edge source="0" target="1"/>
    <edge source="1" target="0"/>
    <edge source="1" target="2"/>
    <edge source="2" target="2"/>
    <edge source="ghost" target="0"/>
  </graph>
</graphml>`

func TestLoadGraphMLSkipsAndCollapses(t *testing.T) {
	g, err := LoadGraphML(strings.NewReader(sampleGraphML), LoadGraphMLOptions{
		SkipNodesWithoutCoordinates: true,
		AllowParallelEdges:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3 (ghost dropped)", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2 (parallel + self-loop dropped)", g.NumEdges())
	}
	n, err := g.Node(0)
	if err != nil || n.Name != "New York" {
		t.Fatalf("node 0 = %+v, %v", n, err)
	}
	if n.Lat != 40.71 || n.Lon != -74.00 {
		t.Fatalf("coordinates = %v, %v", n.Lat, n.Lon)
	}
	// Unlabeled nodes keep their GraphML id as the name.
	n1, _ := g.Node(1)
	if n1.Name != "1" {
		t.Fatalf("node 1 name = %q", n1.Name)
	}
}

func TestLoadGraphMLStrictFailsOnMissingCoordinates(t *testing.T) {
	_, err := LoadGraphML(strings.NewReader(sampleGraphML), LoadGraphMLOptions{
		AllowParallelEdges: true,
	})
	if !errors.Is(err, ErrNoCoordinates) {
		t.Fatalf("error = %v, want ErrNoCoordinates", err)
	}
}

func TestLoadGraphMLStrictFailsOnParallelEdges(t *testing.T) {
	_, err := LoadGraphML(strings.NewReader(sampleGraphML), LoadGraphMLOptions{
		SkipNodesWithoutCoordinates: true,
	})
	if !errors.Is(err, ErrDuplicateEdge) && !errors.Is(err, ErrGraphML) {
		t.Fatalf("error = %v, want a duplicate-edge failure", err)
	}
}

func TestLoadGraphMLRejectsGarbage(t *testing.T) {
	if _, err := LoadGraphML(strings.NewReader("not xml at all"), LoadGraphMLOptions{}); !errors.Is(err, ErrGraphML) {
		t.Fatalf("error = %v, want ErrGraphML", err)
	}
	noKeys := `<graphml><graph><node id="a"/></graph></graphml>`
	if _, err := LoadGraphML(strings.NewReader(noKeys), LoadGraphMLOptions{}); !errors.Is(err, ErrGraphML) {
		t.Fatalf("error = %v, want ErrGraphML (missing keys)", err)
	}
	badLat := `<graphml>
	  <key attr.name="Latitude" for="node" id="a"/>
	  <key attr.name="Longitude" for="node" id="b"/>
	  <graph>
	    <node id="x"><data key="a">oops</data><data key="b">1</data></node>
	  </graph></graphml>`
	if _, err := LoadGraphML(strings.NewReader(badLat), LoadGraphMLOptions{}); !errors.Is(err, ErrGraphML) {
		t.Fatalf("error = %v, want ErrGraphML (bad latitude)", err)
	}
}

func TestLoadGraphMLRejectsDisconnected(t *testing.T) {
	doc := `<graphml>
	  <key attr.name="Latitude" for="node" id="a"/>
	  <key attr.name="Longitude" for="node" id="b"/>
	  <graph>
	    <node id="x"><data key="a">1</data><data key="b">1</data></node>
	    <node id="y"><data key="a">2</data><data key="b">2</data></node>
	    <node id="z"><data key="a">3</data><data key="b">3</data></node>
	    <edge source="x" target="y"/>
	  </graph></graphml>`
	if _, err := LoadGraphML(strings.NewReader(doc), LoadGraphMLOptions{}); err == nil {
		t.Fatal("disconnected topology must fail validation")
	}
}

func TestAutoDeployment(t *testing.T) {
	dep, err := ATT()
	if err != nil {
		t.Fatal(err)
	}
	auto, err := AutoDeployment(dep.Graph, 6, 500)
	if err != nil {
		t.Fatal(err)
	}
	if err := auto.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(auto.Controllers) != 6 {
		t.Fatalf("controllers = %d", len(auto.Controllers))
	}
	// Sites must be among the highest-degree nodes; the hub (13) certainly
	// qualifies.
	found := false
	for _, c := range auto.Controllers {
		if c.Site == 13 {
			found = true
		}
		// Every switch's site distance must be minimal over all sites —
		// spot-check that each domain member is no closer to another site.
		distSelf := bfsHops(dep.Graph, c.Site)
		for _, sw := range c.Domain {
			for _, o := range auto.Controllers {
				distOther := bfsHops(dep.Graph, o.Site)
				if distOther[sw] < distSelf[sw] {
					t.Fatalf("switch %d in domain of %d but closer to %d", sw, c.Site, o.Site)
				}
			}
		}
	}
	if !found {
		t.Fatal("hub 13 not chosen as a controller site")
	}
}

func TestAutoDeploymentValidation(t *testing.T) {
	dep, err := ATT()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AutoDeployment(dep.Graph, 0, 500); err == nil {
		t.Fatal("m=0 must fail")
	}
	if _, err := AutoDeployment(dep.Graph, 26, 500); err == nil {
		t.Fatal("m>n must fail")
	}
}
