package topo

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements a loader for the GraphML dialect used by the Internet
// Topology Zoo (the paper's source for the ATT topology), so the library can
// run on real Topology Zoo files when they are available. Node geographic
// coordinates come from the zoo's "Latitude"/"Longitude" node attributes.

// GraphML parsing errors.
var (
	ErrGraphML       = errors.New("topo: invalid graphml")
	ErrNoCoordinates = errors.New("topo: node without coordinates")
)

// xml schema subset of GraphML as emitted by the Topology Zoo.
type gmlDoc struct {
	XMLName xml.Name `xml:"graphml"`
	Keys    []gmlKey `xml:"key"`
	Graph   gmlGraph `xml:"graph"`
}

type gmlKey struct {
	ID   string `xml:"id,attr"`
	For  string `xml:"for,attr"`
	Name string `xml:"attr.name,attr"`
}

type gmlGraph struct {
	Nodes []gmlNode `xml:"node"`
	Edges []gmlEdge `xml:"edge"`
}

type gmlNode struct {
	ID   string    `xml:"id,attr"`
	Data []gmlData `xml:"data"`
}

type gmlEdge struct {
	Source string    `xml:"source,attr"`
	Target string    `xml:"target,attr"`
	Data   []gmlData `xml:"data"`
}

type gmlData struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

// LoadGraphMLOptions tunes loading.
type LoadGraphMLOptions struct {
	// SkipNodesWithoutCoordinates drops nodes missing Latitude/Longitude
	// (Topology Zoo files often contain a few such "external" nodes)
	// together with their edges, instead of failing.
	SkipNodesWithoutCoordinates bool
	// AllowParallelEdges silently collapses duplicate edges instead of
	// failing (zoo files frequently encode parallel links).
	AllowParallelEdges bool
}

// LoadGraphML parses a Topology-Zoo-style GraphML document into a Graph.
// Node IDs are re-numbered densely in the document's node order; the
// original "label" attribute (or the GraphML id) becomes the node name.
func LoadGraphML(r io.Reader, opts LoadGraphMLOptions) (*Graph, error) {
	var doc gmlDoc
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrGraphML, err)
	}
	// Resolve the attribute keys we care about.
	latKey, lonKey, labelKey := "", "", ""
	for _, k := range doc.Keys {
		if k.For != "node" {
			continue
		}
		switch strings.ToLower(k.Name) {
		case "latitude":
			latKey = k.ID
		case "longitude":
			lonKey = k.ID
		case "label":
			labelKey = k.ID
		}
	}
	if latKey == "" || lonKey == "" {
		return nil, fmt.Errorf("%w: missing Latitude/Longitude node keys", ErrGraphML)
	}

	g := &Graph{}
	idMap := make(map[string]NodeID, len(doc.Graph.Nodes))
	for _, n := range doc.Graph.Nodes {
		var lat, lon float64
		var haveLat, haveLon bool
		name := n.ID
		for _, d := range n.Data {
			v := strings.TrimSpace(d.Value)
			switch d.Key {
			case latKey:
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, fmt.Errorf("%w: node %s latitude %q", ErrGraphML, n.ID, v)
				}
				lat, haveLat = f, true
			case lonKey:
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, fmt.Errorf("%w: node %s longitude %q", ErrGraphML, n.ID, v)
				}
				lon, haveLon = f, true
			case labelKey:
				if v != "" {
					name = v
				}
			}
		}
		if !haveLat || !haveLon {
			if opts.SkipNodesWithoutCoordinates {
				continue
			}
			return nil, fmt.Errorf("%w: %s", ErrNoCoordinates, n.ID)
		}
		idMap[n.ID] = g.AddNode(name, lat, lon)
	}
	for _, e := range doc.Graph.Edges {
		a, okA := idMap[e.Source]
		b, okB := idMap[e.Target]
		if !okA || !okB {
			if opts.SkipNodesWithoutCoordinates {
				continue // edge touched a dropped node
			}
			return nil, fmt.Errorf("%w: edge %s-%s references unknown node", ErrGraphML, e.Source, e.Target)
		}
		if a == b {
			continue // zoo files occasionally carry self-loops; drop them
		}
		err := g.AddEdge(a, b)
		if errors.Is(err, ErrDuplicateEdge) && opts.AllowParallelEdges {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrGraphML, err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// AutoDeployment derives a plausible controller deployment for an arbitrary
// topology, for running the recovery pipeline on loaded GraphML files:
// the m highest-degree nodes become controller sites and every switch joins
// the domain of its nearest site (by hop count, ties toward the lower site
// index), each controller getting the given capacity.
func AutoDeployment(g *Graph, m, capacity int) (*Deployment, error) {
	n := g.NumNodes()
	if m <= 0 || m > n {
		return nil, fmt.Errorf("topo: auto deployment: %d controllers for %d nodes", m, n)
	}
	// Pick sites: highest degree, ties toward lower IDs.
	order := make([]NodeID, n)
	for v := range order {
		order[v] = NodeID(v)
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	sites := make([]NodeID, m)
	copy(sites, order[:m])
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })

	// BFS from every site simultaneously-ish: assign to nearest site.
	const inf = int(^uint(0) >> 1)
	best := make([]int, n)
	owner := make([]int, n)
	for v := range best {
		best[v], owner[v] = inf, -1
	}
	for si, site := range sites {
		dist := bfsHops(g, site)
		for v := 0; v < n; v++ {
			if dist[v] >= 0 && (dist[v] < best[v] || (dist[v] == best[v] && owner[v] > si)) {
				best[v], owner[v] = dist[v], si
			}
		}
	}
	d := &Deployment{Graph: g}
	for si, site := range sites {
		c := Controller{Site: site, Capacity: capacity}
		for v := 0; v < n; v++ {
			if owner[v] == si {
				c.Domain = append(c.Domain, NodeID(v))
			}
		}
		if len(c.Domain) == 0 {
			// Unreachable in a connected graph, but keep the invariant.
			c.Domain = []NodeID{site}
		}
		d.Controllers = append(d.Controllers, c)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("topo: auto deployment: %w", err)
	}
	return d, nil
}

// bfsHops returns hop distances from src (-1 unreachable).
func bfsHops(g *Graph, src NodeID) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}
