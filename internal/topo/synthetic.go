package topo

import "fmt"

// Synthetic builds a deterministic n-node deployment for scale tests and
// benchmarks: nodes on a ⌈√n⌉-wide geographic grid (so link delays vary but
// are reproducible), grid edges plus periodic chords to keep the diameter
// small, and m controllers placed by AutoDeployment with the given capacity.
// The same (n, m, capacity) always yields the same deployment — no
// randomness is involved. It is SyntheticWithOpts with the zero options.
func Synthetic(n, m, capacity int) (*Deployment, error) {
	return SyntheticWithOpts(n, m, capacity, SyntheticOpts{})
}

// SyntheticOpts tunes SyntheticWithOpts. The zero value selects the exact
// layout Synthetic has always produced, byte for byte.
type SyntheticOpts struct {
	// Seed perturbs node coordinates and chord targets through a splitmix64
	// stream, yielding diverse but reproducible graphs: the same (n, m,
	// capacity, opts) always builds the same deployment. Seed 0 draws nothing
	// from the stream and keeps the legacy deterministic layout.
	Seed uint64
	// Regions, when >= 2, arranges the nodes into that many dense clusters
	// joined by sparse deterministic bridges — the community structure a
	// region partitioner should recover — instead of one uniform grid.
	// Cluster c holds the contiguous index range [c·n/R, (c+1)·n/R).
	Regions int
}

// splitmix64 advances *x and returns the next value of the stream. It is the
// standard splitmix64 mixer: tiny, fast, and fully reproducible across
// platforms, which is all the synthetic generator needs.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SyntheticWithOpts is Synthetic with a seed and a region-count hint.
func SyntheticWithOpts(n, m, capacity int, opts SyntheticOpts) (*Deployment, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: synthetic: need at least 2 nodes, got %d", n)
	}
	if opts.Regions < 0 || opts.Regions > n/2 {
		return nil, fmt.Errorf("topo: synthetic: %d regions for %d nodes", opts.Regions, n)
	}
	g := &Graph{}
	var err error
	if opts.Regions >= 2 {
		err = buildClustered(g, n, opts.Regions, opts.Seed)
	} else {
		err = buildGrid(g, n, opts.Seed)
	}
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("topo: synthetic: %w", err)
	}
	return AutoDeployment(g, m, capacity)
}

// addSynthEdge links a and b unless the edge is degenerate or already present.
func addSynthEdge(g *Graph, a, b, n int) error {
	if a == b || a < 0 || b < 0 || a >= n || b >= n {
		return nil
	}
	if g.HasEdge(NodeID(a), NodeID(b)) {
		return nil
	}
	return g.AddEdge(NodeID(a), NodeID(b))
}

// buildGrid is the single-grid layout. With seed 0 it reproduces the legacy
// Synthetic graph exactly; a non-zero seed jitters coordinates and varies the
// chord targets.
func buildGrid(g *Graph, n int, seed uint64) error {
	side := 1
	for side*side < n {
		side++
	}
	jitter := func() float64 {
		if seed == 0 {
			return 0
		}
		return (float64(splitmix64(&seed)>>11)/(1<<53) - 0.5) * 0.2
	}
	for i := 0; i < n; i++ {
		row, col := i/side, i%side
		lat := 30 + 0.8*float64(row) + 0.13*float64(col%3) + jitter()
		lon := -120 + 0.9*float64(col) + 0.11*float64(row%2) + jitter()
		g.AddNode(fmt.Sprintf("n%d", i), lat, lon)
	}
	for i := 0; i < n; i++ {
		row, col := i/side, i%side
		if col+1 < side {
			if err := addSynthEdge(g, i, i+1, n); err != nil {
				return err
			}
		}
		if row+1 < n/side+1 {
			if err := addSynthEdge(g, i, i+side, n); err != nil {
				return err
			}
		}
		// Periodic long chords shrink the diameter the way real WAN
		// backbones do.
		if i%5 == 0 {
			stride := 3*side + 1
			if seed != 0 {
				stride += int(splitmix64(&seed) % uint64(side))
			}
			if err := addSynthEdge(g, i, (i+stride)%n, n); err != nil {
				return err
			}
		}
	}
	return nil
}

// buildClustered lays the nodes out as r dense sub-grids ("metro areas") on a
// coarse grid of cluster centers, with two deterministic bridges between ring-
// adjacent clusters and a few seeded long bridges — sparse enough that the
// cluster structure dominates any reasonable edge-cut objective.
func buildClustered(g *Graph, n, r int, seed uint64) error {
	cside := 1
	for cside*cside < r {
		cside++
	}
	jitter := func() float64 {
		if seed == 0 {
			return 0
		}
		return (float64(splitmix64(&seed)>>11)/(1<<53) - 0.5) * 0.2
	}
	// draw(k) is a deterministic pick in [0, k) that still consumes the
	// stream when seed is 0, so seed 0 is just one more reproducible layout.
	s := seed + 0x51ab_3c67
	draw := func(k int) int {
		return int(splitmix64(&s) % uint64(k))
	}
	clusterLo := func(c int) int { return c * n / r }

	for i := 0; i < n; i++ {
		c := i * r / n
		lo := clusterLo(c)
		sz := clusterLo(c+1) - lo
		side := 1
		for side*side < sz {
			side++
		}
		li := i - lo
		latC := 25 + 10*float64(c/cside)
		lonC := -120 + 12*float64(c%cside)
		lat := latC + 0.6*float64(li/side) + 0.11*float64(li%3) + jitter()
		lon := lonC + 0.7*float64(li%side) + 0.09*float64(li%2) + jitter()
		g.AddNode(fmt.Sprintf("n%d", i), lat, lon)
	}

	// Intra-cluster edges: local grid plus periodic chords within the cluster.
	for c := 0; c < r; c++ {
		lo, hi := clusterLo(c), clusterLo(c+1)
		sz := hi - lo
		side := 1
		for side*side < sz {
			side++
		}
		for li := 0; li < sz; li++ {
			i := lo + li
			if li%side+1 < side && li+1 < sz {
				if err := addSynthEdge(g, i, i+1, n); err != nil {
					return err
				}
			}
			if li+side < sz {
				if err := addSynthEdge(g, i, i+side, n); err != nil {
					return err
				}
			}
			if li%4 == 0 && sz > 2 {
				if err := addSynthEdge(g, i, lo+(li+2*side+1+draw(sz))%sz, n); err != nil {
					return err
				}
			}
		}
		// A tiny cluster (size 2) gets its single edge from the grid rules
		// only when side permits; force it so no node is isolated.
		if sz == 2 {
			if err := addSynthEdge(g, lo, lo+1, n); err != nil {
				return err
			}
		}
	}

	// Inter-cluster bridges: two per ring-adjacent pair keep the graph
	// connected; r/2 extra seeded bridges mimic the few long-haul links real
	// carrier backbones run between distant metros.
	bridge := func(ca, cb int) error {
		la, ha := clusterLo(ca), clusterLo(ca+1)
		lb, hb := clusterLo(cb), clusterLo(cb+1)
		return addSynthEdge(g, la+draw(ha-la), lb+draw(hb-lb), n)
	}
	for c := 0; c < r; c++ {
		next := (c + 1) % r
		if next == c {
			continue
		}
		for b := 0; b < 2; b++ {
			if err := bridge(c, next); err != nil {
				return err
			}
		}
	}
	for x := 0; x < r/2; x++ {
		ca, cb := draw(r), draw(r)
		if ca == cb {
			continue
		}
		if err := bridge(ca, cb); err != nil {
			return err
		}
	}
	return nil
}
