package topo

import "fmt"

// Synthetic builds a deterministic n-node deployment for scale tests and
// benchmarks: nodes on a ⌈√n⌉-wide geographic grid (so link delays vary but
// are reproducible), grid edges plus periodic chords to keep the diameter
// small, and m controllers placed by AutoDeployment with the given capacity.
// The same (n, m, capacity) always yields the same deployment — no
// randomness is involved.
func Synthetic(n, m, capacity int) (*Deployment, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: synthetic: need at least 2 nodes, got %d", n)
	}
	g := &Graph{}
	side := 1
	for side*side < n {
		side++
	}
	for i := 0; i < n; i++ {
		row, col := i/side, i%side
		lat := 30 + 0.8*float64(row) + 0.13*float64(col%3)
		lon := -120 + 0.9*float64(col) + 0.11*float64(row%2)
		g.AddNode(fmt.Sprintf("n%d", i), lat, lon)
	}
	addEdge := func(a, b int) error {
		if a == b || b >= n {
			return nil
		}
		if g.HasEdge(NodeID(a), NodeID(b)) {
			return nil
		}
		return g.AddEdge(NodeID(a), NodeID(b))
	}
	for i := 0; i < n; i++ {
		row, col := i/side, i%side
		if col+1 < side {
			if err := addEdge(i, i+1); err != nil {
				return nil, err
			}
		}
		if row+1 < n/side+1 {
			if err := addEdge(i, i+side); err != nil {
				return nil, err
			}
		}
		// Periodic long chords shrink the diameter the way real WAN
		// backbones do.
		if i%5 == 0 {
			if err := addEdge(i, (i+3*side+1)%n); err != nil {
				return nil, err
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("topo: synthetic: %w", err)
	}
	return AutoDeployment(g, m, capacity)
}
