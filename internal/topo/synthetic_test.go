package topo

import "testing"

func TestSyntheticDeterministic(t *testing.T) {
	a, err := Synthetic(100, 8, 400)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.Graph.Connected() {
		t.Fatal("synthetic graph not connected")
	}
	if a.Graph.NumNodes() != 100 {
		t.Fatalf("got %d nodes, want 100", a.Graph.NumNodes())
	}
	if len(a.Controllers) != 8 {
		t.Fatalf("got %d controllers, want 8", len(a.Controllers))
	}
	b, err := Synthetic(100, 8, 400)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatalf("edge count differs across builds: %d vs %d", a.Graph.NumEdges(), b.Graph.NumEdges())
	}
	for j := range a.Controllers {
		if a.Controllers[j].Site != b.Controllers[j].Site {
			t.Fatalf("controller %d site differs: %v vs %v", j, a.Controllers[j].Site, b.Controllers[j].Site)
		}
	}
}

func TestSyntheticSmall(t *testing.T) {
	dep, err := Synthetic(20, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Synthetic(1, 1, 10); err == nil {
		t.Fatal("want error for n < 2")
	}
}
