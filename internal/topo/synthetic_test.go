package topo

import "testing"

func TestSyntheticDeterministic(t *testing.T) {
	a, err := Synthetic(100, 8, 400)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.Graph.Connected() {
		t.Fatal("synthetic graph not connected")
	}
	if a.Graph.NumNodes() != 100 {
		t.Fatalf("got %d nodes, want 100", a.Graph.NumNodes())
	}
	if len(a.Controllers) != 8 {
		t.Fatalf("got %d controllers, want 8", len(a.Controllers))
	}
	b, err := Synthetic(100, 8, 400)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatalf("edge count differs across builds: %d vs %d", a.Graph.NumEdges(), b.Graph.NumEdges())
	}
	for j := range a.Controllers {
		if a.Controllers[j].Site != b.Controllers[j].Site {
			t.Fatalf("controller %d site differs: %v vs %v", j, a.Controllers[j].Site, b.Controllers[j].Site)
		}
	}
}

func TestSyntheticSmall(t *testing.T) {
	dep, err := Synthetic(20, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Synthetic(1, 1, 10); err == nil {
		t.Fatal("want error for n < 2")
	}
}

// TestSyntheticZeroOptsIdentical pins the compatibility contract: the zero
// SyntheticOpts must reproduce the legacy layout byte for byte — same
// coordinates, same edges, same deployment.
func TestSyntheticZeroOptsIdentical(t *testing.T) {
	a, err := Synthetic(100, 8, 400)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SyntheticWithOpts(100, 8, 400, SyntheticOpts{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameDeployment(t, a, b)
}

// TestSyntheticSeeded checks that seeds diversify the layout while staying
// reproducible, and that a region hint yields a valid clustered deployment.
func TestSyntheticSeeded(t *testing.T) {
	base, err := Synthetic(100, 8, 400)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := SyntheticWithOpts(100, 8, 400, SyntheticOpts{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s1b, err := SyntheticWithOpts(100, 8, 400, SyntheticOpts{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	requireSameDeployment(t, s1, s1b)
	n0, _ := base.Graph.Node(1)
	n1, _ := s1.Graph.Node(1)
	if n0.Lat == n1.Lat && n0.Lon == n1.Lon {
		t.Fatal("seed 1 did not perturb coordinates")
	}

	for _, seed := range []uint64{0, 3, 9} {
		clustered, err := SyntheticWithOpts(120, 12, 600, SyntheticOpts{Seed: seed, Regions: 4})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := clustered.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if clustered.Graph.NumNodes() != 120 || len(clustered.Controllers) != 12 {
			t.Fatalf("seed %d: got %d nodes / %d controllers", seed, clustered.Graph.NumNodes(), len(clustered.Controllers))
		}
		again, err := SyntheticWithOpts(120, 12, 600, SyntheticOpts{Seed: seed, Regions: 4})
		if err != nil {
			t.Fatal(err)
		}
		requireSameDeployment(t, clustered, again)
	}

	if _, err := SyntheticWithOpts(20, 4, 100, SyntheticOpts{Regions: 11}); err == nil {
		t.Fatal("want error for more regions than n/2")
	}
}

func requireSameDeployment(t *testing.T, a, b *Deployment) {
	t.Helper()
	if a.Graph.NumNodes() != b.Graph.NumNodes() {
		t.Fatalf("node counts differ: %d vs %d", a.Graph.NumNodes(), b.Graph.NumNodes())
	}
	for v := 0; v < a.Graph.NumNodes(); v++ {
		na, _ := a.Graph.Node(NodeID(v))
		nb, _ := b.Graph.Node(NodeID(v))
		if na != nb {
			t.Fatalf("node %d differs: %+v vs %+v", v, na, nb)
		}
	}
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for x := range ea {
		if ea[x] != eb[x] {
			t.Fatalf("edge %d differs: %v vs %v", x, ea[x], eb[x])
		}
	}
	if len(a.Controllers) != len(b.Controllers) {
		t.Fatalf("controller counts differ")
	}
	for j := range a.Controllers {
		ca, cb := a.Controllers[j], b.Controllers[j]
		if ca.Site != cb.Site || ca.Capacity != cb.Capacity || len(ca.Domain) != len(cb.Domain) {
			t.Fatalf("controller %d differs: %+v vs %+v", j, ca, cb)
		}
		for x := range ca.Domain {
			if ca.Domain[x] != cb.Domain[x] {
				t.Fatalf("controller %d domain differs", j)
			}
		}
	}
}
