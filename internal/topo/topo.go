// Package topo models wide-area network topologies: nodes with geographic
// coordinates, undirected links, and propagation delays derived from
// great-circle distances.
//
// The package is the substrate that replaces the Topology Zoo GraphML files
// used by the paper: the evaluation topology (an ATT-North-America-like US
// backbone) is embedded in Go (see ATT) because the build is fully offline.
package topo

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a node (an SDN switch site) within a Graph. IDs are
// dense: a graph with n nodes uses IDs 0..n-1.
type NodeID int

// Node is a switch site: a point of presence with a name and geographic
// coordinates in decimal degrees.
type Node struct {
	ID   NodeID
	Name string
	Lat  float64
	Lon  float64
}

// Edge is an undirected link between two sites. Invariant: A < B.
type Edge struct {
	A, B NodeID
}

// Graph is an undirected network topology. The zero value is an empty graph;
// use AddNode and AddEdge to populate it. Graph is not safe for concurrent
// mutation, but read-only use from multiple goroutines is safe.
type Graph struct {
	nodes []Node
	adj   [][]NodeID
	edges []Edge
}

// Errors returned by graph mutators and accessors.
var (
	// ErrNodeOutOfRange reports a NodeID that does not exist in the graph.
	ErrNodeOutOfRange = errors.New("topo: node id out of range")
	// ErrSelfLoop reports an attempt to link a node to itself.
	ErrSelfLoop = errors.New("topo: self loop")
	// ErrDuplicateEdge reports an attempt to add an edge twice.
	ErrDuplicateEdge = errors.New("topo: duplicate edge")
)

// AddNode appends a node and returns its ID. The caller-supplied ID field of
// the argument is ignored; IDs are assigned densely in insertion order.
func (g *Graph) AddNode(name string, lat, lon float64) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Name: name, Lat: lat, Lon: lon})
	g.adj = append(g.adj, nil)
	return id
}

// AddEdge adds an undirected link between a and b.
func (g *Graph) AddEdge(a, b NodeID) error {
	if !g.valid(a) || !g.valid(b) {
		return fmt.Errorf("%w: (%d, %d) with %d nodes", ErrNodeOutOfRange, a, b, len(g.nodes))
	}
	if a == b {
		return fmt.Errorf("%w: node %d", ErrSelfLoop, a)
	}
	if a > b {
		a, b = b, a
	}
	for _, n := range g.adj[a] {
		if n == b {
			return fmt.Errorf("%w: (%d, %d)", ErrDuplicateEdge, a, b)
		}
	}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	g.edges = append(g.edges, Edge{A: a, B: b})
	return nil
}

func (g *Graph) valid(id NodeID) bool {
	return id >= 0 && int(id) < len(g.nodes)
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of undirected links.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NumDirectedLinks returns the number of directed links (twice NumEdges);
// this is the convention Topology Zoo and the paper use when quoting
// "112 links" for the 56-edge ATT graph.
func (g *Graph) NumDirectedLinks() int { return 2 * len(g.edges) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) (Node, error) {
	if !g.valid(id) {
		return Node{}, fmt.Errorf("%w: %d", ErrNodeOutOfRange, id)
	}
	return g.nodes[id], nil
}

// Nodes returns a copy of all nodes in ID order.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Edges returns a copy of all undirected links.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Degree returns the number of neighbors of id, or 0 for an invalid ID.
func (g *Graph) Degree(id NodeID) int {
	if !g.valid(id) {
		return 0
	}
	return len(g.adj[id])
}

// Neighbors returns a sorted copy of id's neighbor list.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	if !g.valid(id) {
		return nil
	}
	out := make([]NodeID, len(g.adj[id]))
	copy(out, g.adj[id])
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForEachNeighbor calls fn for every neighbor of id. It avoids the allocation
// of Neighbors and is intended for hot paths such as path enumeration.
func (g *Graph) ForEachNeighbor(id NodeID, fn func(NodeID)) {
	if !g.valid(id) {
		return
	}
	for _, n := range g.adj[id] {
		fn(n)
	}
}

// HasEdge reports whether an undirected link (a, b) exists.
func (g *Graph) HasEdge(a, b NodeID) bool {
	if !g.valid(a) || !g.valid(b) {
		return false
	}
	for _, n := range g.adj[a] {
		if n == b {
			return true
		}
	}
	return false
}

// Connected reports whether the graph is connected (true for empty graphs).
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	seen := make([]bool, len(g.nodes))
	stack := []NodeID{0}
	seen[0] = true
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, n := range g.adj[v] {
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	return count == len(g.nodes)
}

const (
	earthRadiusKm = 6371.0
	// propagationSpeedKmPerMs is the signal propagation speed used by the
	// paper: 2*10^8 m/s = 200 km/ms.
	propagationSpeedKmPerMs = 200.0
)

// HaversineKm returns the great-circle distance in kilometers between two
// coordinates given in decimal degrees.
func HaversineKm(lat1, lon1, lat2, lon2 float64) float64 {
	const degToRad = math.Pi / 180
	phi1 := lat1 * degToRad
	phi2 := lat2 * degToRad
	dPhi := (lat2 - lat1) * degToRad
	dLambda := (lon2 - lon1) * degToRad
	s1 := math.Sin(dPhi / 2)
	s2 := math.Sin(dLambda / 2)
	a := s1*s1 + math.Cos(phi1)*math.Cos(phi2)*s2*s2
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// DistanceKm returns the great-circle distance between two nodes.
func (g *Graph) DistanceKm(a, b NodeID) (float64, error) {
	na, err := g.Node(a)
	if err != nil {
		return 0, err
	}
	nb, err := g.Node(b)
	if err != nil {
		return 0, err
	}
	return HaversineKm(na.Lat, na.Lon, nb.Lat, nb.Lon), nil
}

// LinkDelayMs returns the propagation delay of the direct link (a, b) in
// milliseconds, following the paper: haversine distance divided by 2*10^8 m/s.
// The link does not need to exist; the value is purely geometric.
func (g *Graph) LinkDelayMs(a, b NodeID) (float64, error) {
	d, err := g.DistanceKm(a, b)
	if err != nil {
		return 0, err
	}
	return d / propagationSpeedKmPerMs, nil
}

// EdgeDelaysMs returns, for every node, the per-neighbor link delays in the
// same order as the internal adjacency, as a weight function suitable for
// shortest-path computations.
func (g *Graph) EdgeDelaysMs() (func(a, b NodeID) float64, error) {
	n := len(g.nodes)
	w := make([]float64, n*n)
	for _, e := range g.edges {
		d, err := g.LinkDelayMs(e.A, e.B)
		if err != nil {
			return nil, err
		}
		w[int(e.A)*n+int(e.B)] = d
		w[int(e.B)*n+int(e.A)] = d
	}
	return func(a, b NodeID) float64 {
		return w[int(a)*n+int(b)]
	}, nil
}

// Validate checks structural invariants and returns a descriptive error for
// the first violation: the graph must be non-empty, connected, and free of
// isolated nodes.
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return errors.New("topo: empty graph")
	}
	for id := range g.nodes {
		if len(g.adj[id]) == 0 {
			return fmt.Errorf("topo: isolated node %d (%s)", id, g.nodes[id].Name)
		}
	}
	if !g.Connected() {
		return errors.New("topo: graph is not connected")
	}
	return nil
}
