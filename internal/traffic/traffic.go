// Package traffic models the traffic side of the paper's motivation: path
// programmability matters because flow demands vary, links saturate, and
// only programmable flows can be shifted away. It provides demand matrices
// (uniform and gravity), per-link load accounting for a routed workload,
// and the "sheddable load" metric: how much of a hot link's traffic the
// control plane could actually move, given which flows are programmable.
package traffic

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"pmedic/internal/flow"
	"pmedic/internal/topo"
)

// Matrix assigns a demand rate to every flow of a workload.
type Matrix struct {
	demand []float64
}

// Matrix errors.
var (
	ErrBadRate = errors.New("traffic: demand rates must be positive and finite")
	ErrBadFlow = errors.New("traffic: unknown flow")
)

// Uniform gives every flow the same rate.
func Uniform(flows *flow.Set, rate float64) (*Matrix, error) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("%w: %v", ErrBadRate, rate)
	}
	m := &Matrix{demand: make([]float64, flows.Len())}
	for i := range m.demand {
		m.demand[i] = rate
	}
	return m, nil
}

// Gravity builds a gravity-model matrix: a flow's demand is proportional to
// the product of its endpoints' masses (node degree as the size proxy),
// scaled so the mean demand equals meanRate. It is deterministic.
func Gravity(g *topo.Graph, flows *flow.Set, meanRate float64) (*Matrix, error) {
	if meanRate <= 0 || math.IsNaN(meanRate) || math.IsInf(meanRate, 0) {
		return nil, fmt.Errorf("%w: %v", ErrBadRate, meanRate)
	}
	m := &Matrix{demand: make([]float64, flows.Len())}
	var sum float64
	for i := range flows.Flows {
		f := &flows.Flows[i]
		mass := float64(g.Degree(f.Src) * g.Degree(f.Dst))
		if mass <= 0 {
			mass = 1
		}
		m.demand[i] = mass
		sum += mass
	}
	if sum == 0 {
		return nil, fmt.Errorf("%w: zero total mass", ErrBadRate)
	}
	scale := meanRate * float64(len(m.demand)) / sum
	for i := range m.demand {
		m.demand[i] *= scale
	}
	return m, nil
}

// Demand returns a flow's rate.
func (m *Matrix) Demand(id flow.ID) (float64, error) {
	if id < 0 || int(id) >= len(m.demand) {
		return 0, fmt.Errorf("%w: %d", ErrBadFlow, id)
	}
	return m.demand[id], nil
}

// Scale multiplies one flow's demand by factor (a traffic spike).
func (m *Matrix) Scale(id flow.ID, factor float64) error {
	if id < 0 || int(id) >= len(m.demand) {
		return fmt.Errorf("%w: %d", ErrBadFlow, id)
	}
	if factor <= 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		return fmt.Errorf("%w: factor %v", ErrBadRate, factor)
	}
	m.demand[id] *= factor
	return nil
}

// Total returns the summed demand.
func (m *Matrix) Total() float64 {
	var t float64
	for _, d := range m.demand {
		t += d
	}
	return t
}

// edgeKey canonicalizes an undirected link.
type edgeKey struct{ a, b topo.NodeID }

func keyOf(a, b topo.NodeID) edgeKey {
	if a > b {
		a, b = b, a
	}
	return edgeKey{a, b}
}

// LoadMap is per-link carried traffic for a routed workload.
type LoadMap struct {
	load     map[edgeKey]float64
	capacity float64
}

// Loads routes every flow's demand over its installed path and accumulates
// per-link load. linkCapacity is the uniform link capacity used for
// utilization (must be positive).
func Loads(flows *flow.Set, m *Matrix, linkCapacity float64) (*LoadMap, error) {
	if linkCapacity <= 0 || math.IsNaN(linkCapacity) || math.IsInf(linkCapacity, 0) {
		return nil, fmt.Errorf("%w: link capacity %v", ErrBadRate, linkCapacity)
	}
	lm := &LoadMap{load: make(map[edgeKey]float64), capacity: linkCapacity}
	for i := range flows.Flows {
		f := &flows.Flows[i]
		d, err := m.Demand(f.ID)
		if err != nil {
			return nil, err
		}
		for h := 1; h < len(f.Path); h++ {
			lm.load[keyOf(f.Path[h-1], f.Path[h])] += d
		}
	}
	return lm, nil
}

// Load returns the traffic carried by link (a, b).
func (lm *LoadMap) Load(a, b topo.NodeID) float64 { return lm.load[keyOf(a, b)] }

// Utilization returns Load/capacity for link (a, b).
func (lm *LoadMap) Utilization(a, b topo.NodeID) float64 {
	return lm.load[keyOf(a, b)] / lm.capacity
}

// Hottest returns the most utilized link and its utilization. ok is false
// for an empty map. Ties resolve toward the lexicographically first link, so
// the result is deterministic.
func (lm *LoadMap) Hottest() (a, b topo.NodeID, util float64, ok bool) {
	keys := make([]edgeKey, 0, len(lm.load))
	for k := range lm.load {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	best := edgeKey{-1, -1}
	for _, k := range keys {
		if best.a < 0 || lm.load[k] > lm.load[best] {
			best = k
		}
	}
	if best.a < 0 {
		return -1, -1, 0, false
	}
	return best.a, best.b, lm.load[best] / lm.capacity, true
}

// SheddableLoad computes how much of link (a, b)'s load could be moved away
// by the control plane: the summed demand of flows that cross the link and
// are programmable according to the supplied predicate (typically
// sdnsim.Network.Programmable, or a recovery report lookup). This is the
// traffic-engineering capability that controller failures destroy and
// recovery restores.
func SheddableLoad(flows *flow.Set, m *Matrix, a, b topo.NodeID, programmable func(flow.ID) bool) (float64, error) {
	var total float64
	for i := range flows.Flows {
		f := &flows.Flows[i]
		crosses := false
		for h := 1; h < len(f.Path); h++ {
			if keyOf(f.Path[h-1], f.Path[h]) == keyOf(a, b) {
				crosses = true
				break
			}
		}
		if !crosses || !programmable(f.ID) {
			continue
		}
		d, err := m.Demand(f.ID)
		if err != nil {
			return 0, err
		}
		total += d
	}
	return total, nil
}
