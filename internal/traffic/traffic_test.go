package traffic

import (
	"errors"
	"math"
	"testing"

	"pmedic/internal/flow"
	"pmedic/internal/topo"
)

func fixtures(t *testing.T) (*topo.Deployment, *flow.Set) {
	t.Helper()
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dep, flows
}

func TestUniformMatrix(t *testing.T) {
	_, flows := fixtures(t)
	m, err := Uniform(flows, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Demand(0)
	if err != nil || d != 2.5 {
		t.Fatalf("demand = %v, %v", d, err)
	}
	if math.Abs(m.Total()-2.5*float64(flows.Len())) > 1e-9 {
		t.Fatalf("total = %v", m.Total())
	}
}

func TestUniformValidation(t *testing.T) {
	_, flows := fixtures(t)
	for _, rate := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := Uniform(flows, rate); !errors.Is(err, ErrBadRate) {
			t.Fatalf("rate %v: error = %v", rate, err)
		}
	}
}

func TestGravityMatrix(t *testing.T) {
	dep, flows := fixtures(t)
	m, err := Gravity(dep.Graph, flows, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Mean must equal the requested mean.
	if mean := m.Total() / float64(flows.Len()); math.Abs(mean-1.0) > 1e-9 {
		t.Fatalf("mean = %v", mean)
	}
	// Hub-to-hub flows must outweigh leaf-to-leaf ones.
	var hubFlow, leafFlow flow.ID = -1, -1
	for i := range flows.Flows {
		f := &flows.Flows[i]
		if f.Src == 13 && dep.Graph.Degree(f.Dst) >= 6 && hubFlow < 0 {
			hubFlow = f.ID
		}
		if dep.Graph.Degree(f.Src) == 2 && dep.Graph.Degree(f.Dst) == 2 && leafFlow < 0 {
			leafFlow = f.ID
		}
	}
	if hubFlow < 0 || leafFlow < 0 {
		t.Skip("no suitable flows")
	}
	dh, _ := m.Demand(hubFlow)
	dl, _ := m.Demand(leafFlow)
	if dh <= dl {
		t.Fatalf("gravity: hub demand %v <= leaf demand %v", dh, dl)
	}
}

func TestScaleSpike(t *testing.T) {
	_, flows := fixtures(t)
	m, err := Uniform(flows, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Scale(3, 10); err != nil {
		t.Fatal(err)
	}
	d, _ := m.Demand(3)
	if d != 10 {
		t.Fatalf("spiked demand = %v", d)
	}
	if err := m.Scale(3, -1); !errors.Is(err, ErrBadRate) {
		t.Fatalf("error = %v", err)
	}
	if err := m.Scale(flow.ID(99999), 2); !errors.Is(err, ErrBadFlow) {
		t.Fatalf("error = %v", err)
	}
}

func TestLoadsConservation(t *testing.T) {
	_, flows := fixtures(t)
	m, err := Uniform(flows, 1)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := Loads(flows, m, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Total link load equals Σ demand × hops.
	var wantTotal float64
	for i := range flows.Flows {
		wantTotal += float64(len(flows.Flows[i].Path) - 1)
	}
	var gotTotal float64
	for k, v := range lm.load {
		if v < 0 {
			t.Fatalf("negative load on %v", k)
		}
		gotTotal += v
	}
	if math.Abs(gotTotal-wantTotal) > 1e-6 {
		t.Fatalf("total link load %v, want %v", gotTotal, wantTotal)
	}
}

func TestHottestIsHubAdjacent(t *testing.T) {
	_, flows := fixtures(t)
	m, err := Uniform(flows, 1)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := Loads(flows, m, 100)
	if err != nil {
		t.Fatal(err)
	}
	a, b, util, ok := lm.Hottest()
	if !ok || util <= 0 {
		t.Fatalf("hottest = %d-%d %v %v", a, b, util, ok)
	}
	if a != 13 && b != 13 && a != 19 && b != 19 {
		t.Fatalf("hottest link %d-%d does not touch a hub", a, b)
	}
	// Symmetric lookups agree.
	if lm.Load(a, b) != lm.Load(b, a) || lm.Utilization(a, b) != util {
		t.Fatal("undirected accounting broken")
	}
}

func TestSheddableLoad(t *testing.T) {
	_, flows := fixtures(t)
	m, err := Uniform(flows, 1)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := Loads(flows, m, 100)
	if err != nil {
		t.Fatal(err)
	}
	a, b, _, _ := lm.Hottest()
	// Everything programmable: sheddable equals the link's full load.
	all, err := SheddableLoad(flows, m, a, b, func(flow.ID) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(all-lm.Load(a, b)) > 1e-9 {
		t.Fatalf("sheddable %v != load %v", all, lm.Load(a, b))
	}
	// Nothing programmable: zero.
	none, err := SheddableLoad(flows, m, a, b, func(flow.ID) bool { return false })
	if err != nil || none != 0 {
		t.Fatalf("sheddable = %v, %v", none, err)
	}
	// Half: strictly between.
	half, err := SheddableLoad(flows, m, a, b, func(id flow.ID) bool { return id%2 == 0 })
	if err != nil || half <= 0 || half >= all {
		t.Fatalf("partial sheddable = %v", half)
	}
}

func TestLoadsValidation(t *testing.T) {
	_, flows := fixtures(t)
	m, err := Uniform(flows, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Loads(flows, m, 0); !errors.Is(err, ErrBadRate) {
		t.Fatalf("error = %v", err)
	}
}
