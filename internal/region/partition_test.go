package region

import (
	"reflect"
	"sync"
	"testing"

	"pmedic/internal/topo"
)

func clusteredDep(t *testing.T) *topo.Deployment {
	t.Helper()
	dep, err := topo.SyntheticWithOpts(120, 12, 600, topo.SyntheticOpts{Seed: 5, Regions: 4})
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

// TestPartitionDeterministic builds the same partition from many goroutines
// at once (the CI hierarchy job runs this under -race) and requires every
// build to be byte-identical: the partitioner must not depend on scheduling.
func TestPartitionDeterministic(t *testing.T) {
	dep := clusteredDep(t)
	const builders = 8
	parts := make([]*Partition, builders)
	var wg sync.WaitGroup
	for g := 0; g < builders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			part, err := New(dep, 4, 7)
			if err != nil {
				t.Error(err)
				return
			}
			parts[g] = part
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for g := 1; g < builders; g++ {
		requireSamePartition(t, parts[0], parts[g])
	}
}

func requireSamePartition(t *testing.T, a, b *Partition) {
	t.Helper()
	if a.K != b.K || a.Seed != b.Seed {
		t.Fatalf("K/Seed differ: %d/%d vs %d/%d", a.K, a.Seed, b.K, b.Seed)
	}
	if !reflect.DeepEqual(a.ControllerRegion, b.ControllerRegion) {
		t.Fatalf("ControllerRegion differs")
	}
	if !reflect.DeepEqual(a.NodeRegion, b.NodeRegion) {
		t.Fatalf("NodeRegion differs")
	}
	if !reflect.DeepEqual(a.Controllers, b.Controllers) {
		t.Fatalf("Controllers differ")
	}
	if !reflect.DeepEqual(a.SwitchCount, b.SwitchCount) {
		t.Fatalf("SwitchCount differs")
	}
	if !reflect.DeepEqual(a.Border, b.Border) {
		t.Fatalf("Border differs")
	}
	if !reflect.DeepEqual(a.Adjacent, b.Adjacent) {
		t.Fatalf("Adjacent differs")
	}
}

// TestPartitionInvariants checks the structural contract on a clustered
// synthetic WAN: every controller and node in exactly one region, regions
// nonempty and balanced, border/adjacency consistent with the cut edges.
func TestPartitionInvariants(t *testing.T) {
	dep := clusteredDep(t)
	const k = 4
	part, err := New(dep, k, 7)
	if err != nil {
		t.Fatal(err)
	}
	n := dep.Graph.NumNodes()
	if len(part.NodeRegion) != n || len(part.ControllerRegion) != len(dep.Controllers) {
		t.Fatalf("index sizes wrong")
	}
	seen := make([]bool, len(dep.Controllers))
	total := 0
	for r := 0; r < k; r++ {
		if len(part.Controllers[r]) == 0 {
			t.Fatalf("region %d has no controller", r)
		}
		for _, j := range part.Controllers[r] {
			if seen[j] {
				t.Fatalf("controller %d in two regions", j)
			}
			seen[j] = true
			if part.ControllerRegion[j] != r {
				t.Fatalf("controller %d: Controllers/ControllerRegion disagree", j)
			}
		}
		total += part.SwitchCount[r]
	}
	if total != n {
		t.Fatalf("SwitchCount sums to %d, want %d", total, n)
	}
	for j, c := range dep.Controllers {
		for _, sw := range c.Domain {
			if part.NodeRegion[sw] != part.ControllerRegion[j] {
				t.Fatalf("node %d not in its controller's region", sw)
			}
		}
	}
	// Balance: the refinement cap is 1.25x the average plus one domain, so 2x
	// the ideal share is a comfortable structural bound on this topology.
	for r := 0; r < k; r++ {
		if part.SwitchCount[r] > 2*n/k {
			t.Fatalf("region %d holds %d of %d switches", r, part.SwitchCount[r], n)
		}
	}
	// Border and adjacency must match the cut edges exactly.
	wantBorder := make([]bool, n)
	wantAdj := make([]bool, k*k)
	cut := 0
	for _, e := range dep.Graph.Edges() {
		ra, rb := part.NodeRegion[e.A], part.NodeRegion[e.B]
		if ra == rb {
			continue
		}
		cut++
		wantBorder[e.A], wantBorder[e.B] = true, true
		wantAdj[ra*k+rb], wantAdj[rb*k+ra] = true, true
	}
	if cut == 0 {
		t.Fatal("no cut edges at K=4: partition degenerate")
	}
	if part.CutEdges() != cut {
		t.Fatalf("CutEdges = %d, want %d", part.CutEdges(), cut)
	}
	for v := 0; v < n; v++ {
		if part.IsBorder(topo.NodeID(v)) != wantBorder[v] {
			t.Fatalf("IsBorder(%d) = %v", v, !wantBorder[v])
		}
	}
	x := 0
	for v := 0; v < n; v++ {
		if wantBorder[v] {
			if x >= len(part.Border) || part.Border[x] != topo.NodeID(v) {
				t.Fatalf("Border list wrong at %d", v)
			}
			x++
		}
	}
	if x != len(part.Border) {
		t.Fatalf("Border has %d extra entries", len(part.Border)-x)
	}
	for ra := 0; ra < k; ra++ {
		for _, rb := range part.Adjacent[ra] {
			if !wantAdj[ra*k+rb] {
				t.Fatalf("Adjacent[%d] lists %d without a cut edge", ra, rb)
			}
			wantAdj[ra*k+rb] = false
		}
	}
	for i, w := range wantAdj {
		if w {
			t.Fatalf("Adjacent misses pair (%d,%d)", i/k, i%k)
		}
	}
}

// TestPartitionK1 pins the trivial partition: everything in region 0, no
// border, no adjacency.
func TestPartitionK1(t *testing.T) {
	dep := clusteredDep(t)
	part, err := New(dep, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range part.NodeRegion {
		if r != 0 {
			t.Fatal("K=1 node outside region 0")
		}
	}
	for _, r := range part.ControllerRegion {
		if r != 0 {
			t.Fatal("K=1 controller outside region 0")
		}
	}
	if len(part.Border) != 0 || len(part.Adjacent[0]) != 0 || part.CutEdges() != 0 {
		t.Fatalf("K=1 has border structure: %d border, %d cut", len(part.Border), part.CutEdges())
	}
}

func TestPartitionValidation(t *testing.T) {
	dep := clusteredDep(t)
	if _, err := New(dep, 0, 1); err == nil {
		t.Fatal("want error for k=0")
	}
	if _, err := New(dep, len(dep.Controllers)+1, 1); err == nil {
		t.Fatal("want error for k > controllers")
	}
}
