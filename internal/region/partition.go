// Package region implements hierarchical, sharded planning for carrier-scale
// WANs: a deterministic partitioner that shards a deployment into K regions,
// per-region FMSSM/PM solves against region-local controller capacity, a
// top-level coordinator that only moves spare capacity and border-switch
// assignments across regions, and an optional anytime improver. The flat
// solvers walk every (switch, controller, flow-class) triple per case;
// sharding bounds each solve's working set to one region — its switches, its
// flows, and its m/K controllers — makes the region solves independent (the
// worker pool runs them concurrently, byte-identically for any worker
// count), and keeps cross-region reasoning to the border (see DESIGN.md §15
// for the measured costs and the quality-gap bound).
package region

import (
	"fmt"

	"pmedic/internal/topo"
)

// Partition shards a deployment into K regions at controller-domain
// granularity: a region is a set of controller domains, so every WAN node
// belongs to exactly one region and — crucially — a failed controller's
// offline switches always fall in exactly one region, which is what lets a
// failure case re-solve only the regions it touches.
type Partition struct {
	Dep *topo.Deployment
	// K is the region count, Seed the partitioner seed that produced the
	// layout. The same (deployment, K, seed) always yields the same
	// partition, byte for byte.
	K    int
	Seed uint64

	// ControllerRegion[j] is the region of deployment controller j.
	ControllerRegion []int
	// NodeRegion[v] is the region of WAN node v (its controller's region).
	NodeRegion []int
	// Controllers[r] lists the controller indices of region r, ascending.
	Controllers [][]int
	// SwitchCount[r] is the number of WAN nodes in region r.
	SwitchCount []int
	// Border lists the nodes with at least one WAN edge into another region,
	// ascending. Border switches are the only ones the coordinator may hand
	// across regions.
	Border []topo.NodeID
	// Adjacent[r] lists the regions sharing at least one WAN edge with r,
	// ascending.
	Adjacent [][]int

	borderSet []bool
}

// refinePasses bounds the label-propagation refinement; each pass is a full
// deterministic sweep over the domains.
const refinePasses = 4

// splitmix64 is the partitioner's seed stream (same mixer as topo's synthetic
// generator; duplicated to keep the packages decoupled).
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New partitions dep into k regions with a multilevel scheme, deterministic
// in (dep, k, seed):
//
//  1. Coarsen: collapse the WAN graph to its controller domains; coarse edge
//     weights count the WAN edges between two domains.
//  2. Seed: a splitmix64 draw picks the first seed domain, farthest-point
//     traversal (max min hop distance on the coarse graph, lowest index on
//     ties) the remaining k-1 — spread-out seeds keep regions compact.
//  3. Grow: BFS-growth balanced by switch count — the smallest region
//     repeatedly absorbs the unassigned domain with the heaviest edge weight
//     into it.
//  4. Refine: bounded label-propagation passes move boundary domains to the
//     region they share more WAN edges with, under a 1.25×-average balance
//     cap, never emptying a region.
func New(dep *topo.Deployment, k int, seed uint64) (*Partition, error) {
	m := len(dep.Controllers)
	n := dep.Graph.NumNodes()
	if k < 1 || k > m {
		return nil, fmt.Errorf("region: %d regions for %d controllers", k, m)
	}

	// Domain of every WAN node.
	domainOf := make([]int, n)
	for v := range domainOf {
		domainOf[v] = -1
	}
	for j, c := range dep.Controllers {
		for _, sw := range c.Domain {
			if int(sw) >= n || domainOf[sw] >= 0 {
				return nil, fmt.Errorf("region: controller domains do not partition the node set (node %d)", sw)
			}
			domainOf[sw] = j
		}
	}
	for v, j := range domainOf {
		if j < 0 {
			return nil, fmt.Errorf("region: node %d belongs to no controller domain", v)
		}
	}

	// Coarse graph over domains: weight = WAN edges between the two domains.
	weight := make([]int, m*m)
	coarseAdj := make([][]int, m)
	for _, e := range dep.Graph.Edges() {
		a, b := domainOf[e.A], domainOf[e.B]
		if a == b {
			continue
		}
		if weight[a*m+b] == 0 {
			coarseAdj[a] = append(coarseAdj[a], b)
			coarseAdj[b] = append(coarseAdj[b], a)
		}
		weight[a*m+b]++
		weight[b*m+a]++
	}

	regionOf := make([]int, m)
	for j := range regionOf {
		regionOf[j] = -1
	}
	domSize := make([]int, m)
	for j, c := range dep.Controllers {
		domSize[j] = len(c.Domain)
	}

	if k == 1 {
		for j := range regionOf {
			regionOf[j] = 0
		}
	} else {
		seeds := pickSeeds(m, k, seed, coarseAdj)
		switchCount := make([]int, k)
		assigned := 0
		for r, d := range seeds {
			regionOf[d] = r
			switchCount[r] += domSize[d]
			assigned++
		}
		growRegions(m, k, regionOf, switchCount, domSize, weight, &assigned)
		refine(m, k, n, regionOf, switchCount, domSize, weight)
	}

	return assemble(dep, k, seed, regionOf, domainOf)
}

// pickSeeds picks k seed domains: the first by a seeded draw, the rest by
// farthest-point traversal on coarse hop distance (ties toward lower index).
func pickSeeds(m, k int, seed uint64, coarseAdj [][]int) []int {
	s := seed
	seeds := []int{int(splitmix64(&s) % uint64(m))}
	const inf = int(^uint(0) >> 1)
	minDist := make([]int, m)
	for d := range minDist {
		minDist[d] = inf
	}
	relax := func(src int) {
		// BFS from src over the coarse adjacency, folding into minDist.
		dist := make([]int, m)
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range coarseAdj[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		for d := 0; d < m; d++ {
			if dist[d] >= 0 && dist[d] < minDist[d] {
				minDist[d] = dist[d]
			} else if dist[d] < 0 {
				// Disconnected coarse components count as nearby so later
				// seeds still spread within the main component.
				minDist[d] = 0
			}
		}
	}
	relax(seeds[0])
	for len(seeds) < k {
		best, bestDist := -1, -1
		for d := 0; d < m; d++ {
			if minDist[d] == inf {
				continue
			}
			taken := false
			for _, sd := range seeds {
				if sd == d {
					taken = true
					break
				}
			}
			if !taken && minDist[d] > bestDist {
				best, bestDist = d, minDist[d]
			}
		}
		if best < 0 {
			// Fewer reachable domains than regions: fall back to the lowest
			// unseeded index.
			for d := 0; d < m; d++ {
				taken := false
				for _, sd := range seeds {
					if sd == d {
						taken = true
						break
					}
				}
				if !taken {
					best = d
					break
				}
			}
		}
		seeds = append(seeds, best)
		relax(best)
	}
	return seeds
}

// growRegions assigns every remaining domain: the smallest region (by switch
// count, lowest index on ties) absorbs its heaviest-connected unassigned
// domain; a region with no unassigned neighbor defers to the next smallest,
// and fully detached domains go to the smallest region outright.
func growRegions(m, k int, regionOf, switchCount, domSize []int, weight []int, assigned *int) {
	order := make([]int, k)
	for *assigned < m {
		for r := range order {
			order[r] = r
		}
		// Stable selection sort by (switchCount, index): k is small.
		for a := 1; a < k; a++ {
			for b := a; b > 0 && switchCount[order[b-1]] > switchCount[order[b]]; b-- {
				order[b-1], order[b] = order[b], order[b-1]
			}
		}
		placed := false
		for _, r := range order {
			bestDom, bestW := -1, 0
			for d := 0; d < m; d++ {
				if regionOf[d] >= 0 {
					continue
				}
				w := 0
				for d2 := 0; d2 < m; d2++ {
					if regionOf[d2] == r {
						w += weight[d*m+d2]
					}
				}
				if w > bestW {
					bestDom, bestW = d, w
				}
			}
			if bestDom >= 0 {
				regionOf[bestDom] = r
				switchCount[r] += domSize[bestDom]
				*assigned++
				placed = true
				break
			}
		}
		if !placed {
			// No region touches any unassigned domain (disconnected coarse
			// graph): give the lowest unassigned domain to the smallest region.
			for d := 0; d < m; d++ {
				if regionOf[d] < 0 {
					r := order[0]
					regionOf[d] = r
					switchCount[r] += domSize[d]
					*assigned++
					break
				}
			}
		}
	}
}

// refine runs bounded label-propagation passes: a domain moves to the region
// it shares strictly more WAN edges with, provided the move neither empties
// its region nor pushes the target past the balance cap.
func refine(m, k, n int, regionOf, switchCount, domSize []int, weight []int) {
	capSw := (5*n)/(4*k) + 1
	domCount := make([]int, k)
	for _, r := range regionOf {
		domCount[r]++
	}
	wt := make([]int, k)
	for pass := 0; pass < refinePasses; pass++ {
		movedAny := false
		for d := 0; d < m; d++ {
			cur := regionOf[d]
			if domCount[cur] <= 1 {
				continue
			}
			for r := range wt {
				wt[r] = 0
			}
			for d2 := 0; d2 < m; d2++ {
				if w := weight[d*m+d2]; w > 0 {
					wt[regionOf[d2]] += w
				}
			}
			best := cur
			for r := 0; r < k; r++ {
				if r == cur || wt[r] <= wt[best] {
					continue
				}
				if switchCount[r]+domSize[d] > capSw {
					continue
				}
				best = r
			}
			if best != cur {
				regionOf[d] = best
				domCount[cur]--
				domCount[best]++
				switchCount[cur] -= domSize[d]
				switchCount[best] += domSize[d]
				movedAny = true
			}
		}
		if !movedAny {
			break
		}
	}
}

// assemble derives the node-level view: per-node regions, border switches,
// and region adjacency.
func assemble(dep *topo.Deployment, k int, seed uint64, regionOf, domainOf []int) (*Partition, error) {
	n := dep.Graph.NumNodes()
	p := &Partition{
		Dep:              dep,
		K:                k,
		Seed:             seed,
		ControllerRegion: regionOf,
		NodeRegion:       make([]int, n),
		Controllers:      make([][]int, k),
		SwitchCount:      make([]int, k),
		Adjacent:         make([][]int, k),
		borderSet:        make([]bool, n),
	}
	for v := 0; v < n; v++ {
		r := regionOf[domainOf[v]]
		p.NodeRegion[v] = r
		p.SwitchCount[r]++
	}
	for j, r := range regionOf {
		p.Controllers[r] = append(p.Controllers[r], j)
	}
	adjSet := make([]bool, k*k)
	for _, e := range dep.Graph.Edges() {
		ra, rb := p.NodeRegion[e.A], p.NodeRegion[e.B]
		if ra == rb {
			continue
		}
		p.borderSet[e.A] = true
		p.borderSet[e.B] = true
		adjSet[ra*k+rb] = true
		adjSet[rb*k+ra] = true
	}
	for v := 0; v < n; v++ {
		if p.borderSet[v] {
			p.Border = append(p.Border, topo.NodeID(v))
		}
	}
	for ra := 0; ra < k; ra++ {
		for rb := 0; rb < k; rb++ {
			if adjSet[ra*k+rb] {
				p.Adjacent[ra] = append(p.Adjacent[ra], rb)
			}
		}
	}
	return p, nil
}

// IsBorder reports whether WAN node v has an edge into another region.
func (p *Partition) IsBorder(v topo.NodeID) bool {
	return p.borderSet[v]
}

// CutEdges counts the WAN edges crossing region boundaries — the partition
// quality metric the refinement minimizes.
func (p *Partition) CutEdges() int {
	cut := 0
	for _, e := range p.Dep.Graph.Edges() {
		if p.NodeRegion[e.A] != p.NodeRegion[e.B] {
			cut++
		}
	}
	return cut
}
