package region

import (
	"sync"
	"testing"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

func attFixtures(t *testing.T) (*topo.Deployment, *flow.Set) {
	t.Helper()
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dep, flows
}

// hierFixtures builds the clustered synthetic WAN the hierarchy tests share:
// 120 nodes, 12 controllers, 4 natural clusters, capacity sized at 1.5x the
// heaviest domain load (the same two-pass sizing pmsim's scale mode uses).
// Everything is seeded, so the fixture is deterministic across runs.
var (
	hierOnce  sync.Once
	hierDep   *topo.Deployment
	hierFlows *flow.Set
	hierErr   error
)

func hierFixtures(t *testing.T) (*topo.Deployment, *flow.Set) {
	t.Helper()
	hierOnce.Do(func() {
		opts := topo.SyntheticOpts{Seed: 5, Regions: 4}
		dep, err := topo.SyntheticWithOpts(120, 12, 1, opts)
		if err != nil {
			hierErr = err
			return
		}
		flows, err := flow.Generate(dep.Graph, flow.Options{})
		if err != nil {
			hierErr = err
			return
		}
		maxLoad := 0
		for _, c := range dep.Controllers {
			load := 0
			for _, sw := range c.Domain {
				load += flows.SwitchFlowCount(sw)
			}
			if load > maxLoad {
				maxLoad = load
			}
		}
		hierDep, hierErr = topo.SyntheticWithOpts(120, 12, maxLoad+maxLoad/2+1, opts)
		hierFlows = flows
	})
	if hierErr != nil {
		t.Fatal(hierErr)
	}
	return hierDep, hierFlows
}

func requireSameSolution(t *testing.T, label string, a, b *core.Solution) {
	t.Helper()
	if a.SwitchLevel != b.SwitchLevel || a.MiddleLayer != b.MiddleLayer {
		t.Fatalf("%s: solution modes differ", label)
	}
	if (a.PairController == nil) != (b.PairController == nil) {
		t.Fatalf("%s: PairController presence differs", label)
	}
	for i := range a.SwitchController {
		if a.SwitchController[i] != b.SwitchController[i] {
			t.Fatalf("%s: switch %d mapped to %d vs %d", label, i, a.SwitchController[i], b.SwitchController[i])
		}
	}
	for k := range a.Active {
		if a.Active[k] != b.Active[k] {
			t.Fatalf("%s: pair %d active %v vs %v", label, k, a.Active[k], b.Active[k])
		}
	}
}

// TestHierK1MatchesFlatPM pins the degenerate hierarchy: with one region the
// slice is the whole problem, the coordinator has nothing to move, and the
// improver starts from PM quiescence — so the hierarchical solve must be
// byte-identical to flat core.PM, with and without improver rounds.
func TestHierK1MatchesFlatPM(t *testing.T) {
	dep, flows := attFixtures(t)
	part, err := New(dep, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := scenario.NewContext(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	cases := scenario.Combinations(len(dep.Controllers), 1)
	cases = append(cases, []int{0, 1}, []int{2, 4}, []int{3, 5})
	for _, failed := range cases {
		inst, err := ctx.Build(failed)
		if err != nil {
			t.Fatal(err)
		}
		flat, err := core.PM(inst.Problem)
		if err != nil {
			t.Fatal(err)
		}
		for _, rounds := range []int{0, 8} {
			hier, err := SolvePM(inst, part, SolveOptions{Workers: 3, ImproveRounds: rounds})
			if err != nil {
				t.Fatal(err)
			}
			requireSameSolution(t, inst.Label(), flat, hier)
		}
	}
}

// TestHierDeterministicAcrossWorkers requires the hierarchical solve to be
// byte-identical for any worker-pool width (the CI hierarchy job runs this
// under -race).
func TestHierDeterministicAcrossWorkers(t *testing.T) {
	dep, flows := hierFixtures(t)
	part, err := New(dep, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := scenario.NewContext(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	for _, failed := range [][]int{{0}, {5}, {3, 7}, {1, 10}, {2, 6, 11}} {
		inst, err := ctx.Build(failed)
		if err != nil {
			t.Fatal(err)
		}
		base, err := SolvePM(inst, part, SolveOptions{Workers: 1, ImproveRounds: 4})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			got, err := SolvePM(inst, part, SolveOptions{Workers: workers, ImproveRounds: 4})
			if err != nil {
				t.Fatal(err)
			}
			requireSameSolution(t, inst.Label(), base, got)
		}
	}
}

// TestHierQualityGap measures the price of sharding on the clustered WAN:
// over all single-failure cases, the K=4 hierarchical solve must stay
// feasible and recover at least 90% of flat PM's total programmability and
// recovered flows, per case. (Empirically the gap is far smaller — the
// coordinator hands border switches to spare capacity — but 90% is the bound
// this test and DESIGN.md §15 commit to.)
func TestHierQualityGap(t *testing.T) {
	dep, flows := hierFixtures(t)
	part, err := New(dep, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := scenario.NewContext(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < len(dep.Controllers); j++ {
		inst, err := ctx.Build([]int{j})
		if err != nil {
			t.Fatal(err)
		}
		flat, err := core.PM(inst.Problem)
		if err != nil {
			t.Fatal(err)
		}
		flatRep, err := inst.Evaluate(flat)
		if err != nil {
			t.Fatal(err)
		}
		hier, err := SolvePM(inst, part, SolveOptions{ImproveRounds: 16})
		if err != nil {
			t.Fatal(err)
		}
		hierRep, err := inst.Evaluate(hier)
		if err != nil {
			t.Fatalf("%s: hierarchical solution infeasible: %v", inst.Label(), err)
		}
		if 10*hierRep.TotalProg < 9*flatRep.TotalProg {
			t.Fatalf("%s: hier TotalProg %d below 90%% of flat %d", inst.Label(), hierRep.TotalProg, flatRep.TotalProg)
		}
		if 10*hierRep.RecoveredFlows < 9*flatRep.RecoveredFlows {
			t.Fatalf("%s: hier recovered %d below 90%% of flat %d", inst.Label(), hierRep.RecoveredFlows, flatRep.RecoveredFlows)
		}
	}
}

// TestHierImproveHelps checks the improver is worth its rounds: with the
// improver on, the objective is never worse than with it off.
func TestHierImproveHelps(t *testing.T) {
	dep, flows := hierFixtures(t)
	part, err := New(dep, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := scenario.NewContext(dep, flows)
	if err != nil {
		t.Fatal(err)
	}
	for _, failed := range [][]int{{0}, {4}, {2, 9}} {
		inst, err := ctx.Build(failed)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := SolvePM(inst, part, SolveOptions{ImproveRounds: 0})
		if err != nil {
			t.Fatal(err)
		}
		improved, err := SolvePM(inst, part, SolveOptions{ImproveRounds: 8})
		if err != nil {
			t.Fatal(err)
		}
		plainRep, err := inst.Evaluate(plain)
		if err != nil {
			t.Fatal(err)
		}
		improvedRep, err := inst.Evaluate(improved)
		if err != nil {
			t.Fatal(err)
		}
		if improvedRep.Objective < plainRep.Objective {
			t.Fatalf("%s: improver regressed objective %.4f -> %.4f", inst.Label(), plainRep.Objective, improvedRep.Objective)
		}
	}
}
