package region

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"time"

	"pmedic/internal/core"
	"pmedic/internal/scenario"
)

// SolveOptions tunes the hierarchical solve.
type SolveOptions struct {
	// Workers bounds the number of regions solved concurrently. 0 selects
	// one worker per available CPU; 1 forces a sequential solve. The output
	// is byte-identical regardless of the worker count: region solves are
	// independent and merge into disjoint index ranges.
	Workers int
	// ImproveRounds > 0 runs the anytime improver (core.Improve) for at most
	// that many rounds after the coordinator; 0 disables it. The deadline is
	// counted in rounds, so a given (instance, partition, ImproveRounds) is
	// fully deterministic.
	ImproveRounds int
}

// SolvePM solves one failure instance hierarchically:
//
//  1. Project the failure onto the partition; only touched regions (those
//     holding offline switches) are solved at all.
//  2. Slice the problem per touched region — region-local switches, flows,
//     and controller capacity — and run the flat/aggregated PM on each slice,
//     concurrently on a bounded worker pool.
//  3. Merge the per-region solutions (disjoint by construction) and run the
//     border coordinator: whole-switch moves of border switches — plus any
//     switch stranded in a region with no surviving controller — to
//     adjacent-region controllers with spare capacity.
//  4. Optionally refine with the anytime improver.
//
// With K=1 the single slice is the whole problem, the coordinator has no
// cross-region pair to consider, and the improver starts from PM quiescence:
// the output is byte-identical to flat core.PM (TestHierK1MatchesFlatPM).
func SolvePM(inst *scenario.Instance, part *Partition, opts SolveOptions) (*core.Solution, error) {
	start := time.Now()
	p := inst.Problem
	proj, err := inst.Project(part.NodeRegion, part.ControllerRegion, part.K)
	if err != nil {
		return nil, fmt.Errorf("region: %w", err)
	}
	s := core.NewSolution("PM-H", p)

	// Force the parent's flow-class index once, sequentially, before the
	// worker pool: region slices derive their own index from it (a regroup of
	// thousands of classes) instead of each re-hashing their flows, and the
	// index's first computation is not goroutine-safe. Flat PM pays this same
	// one-time cost inside its own solve, so K=1 stays cost- and
	// byte-identical.
	p.ClassCount()

	type job struct {
		sl  *core.Slice
		sub *core.Solution
		err error
	}
	jobs := make([]job, len(proj.Touched))
	solveRegion := func(x int) {
		r := proj.Touched[x]
		keepSw := make([]bool, p.NumSwitches)
		for i, ri := range proj.SwitchGroup {
			keepSw[i] = ri == r
		}
		keepCtl := make([]bool, p.NumControllers)
		any := false
		for jj, rj := range proj.ControllerGroup {
			if rj == r {
				keepCtl[jj] = true
				any = true
			}
		}
		if !any {
			// Orphan region: every controller in it failed. Its switches stay
			// unmapped here; the coordinator hands them to neighbors.
			return
		}
		sl, err := p.Slice(keepSw, keepCtl)
		if err != nil || sl == nil {
			jobs[x].err = err
			return
		}
		sub, err := core.PM(sl.Sub)
		if err != nil {
			jobs[x].err = err
			return
		}
		jobs[x].sl, jobs[x].sub = sl, sub
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(proj.Touched) {
		workers = len(proj.Touched)
	}
	if workers <= 1 {
		for x := range jobs {
			solveRegion(x)
		}
	} else {
		var wg sync.WaitGroup
		ch := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for x := range ch {
					solveRegion(x)
				}
			}()
		}
		for x := range jobs {
			ch <- x
		}
		close(ch)
		wg.Wait()
	}
	for x := range jobs {
		if jobs[x].err != nil {
			return nil, fmt.Errorf("region %d: %w", proj.Touched[x], jobs[x].err)
		}
	}
	// Merge order is fixed (touched ascending) and the target ranges are
	// disjoint, so the merged solution is scheduling-independent.
	for x := range jobs {
		if jobs[x].sl != nil {
			jobs[x].sl.MergeInto(s, jobs[x].sub)
		}
	}

	coordinate(p, s, proj, part, inst)

	if opts.ImproveRounds > 0 {
		if _, err := core.Improve(p, s, core.ImproveOptions{MaxRounds: opts.ImproveRounds}); err != nil {
			return nil, fmt.Errorf("region: improve: %w", err)
		}
	} else {
		unmapEmpty(p, s)
	}
	s.Runtime = time.Since(start)
	return s, nil
}

// coordinate is the top-level pass that moves only spare capacity and
// border-switch assignments across regions: a border switch (or any switch of
// an orphan region) whose own region cannot fund more of its pairs may be
// adopted — whole, preserving the single-controller mapping — by an
// adjacent region's controller with spare capacity, and the freed or spare
// capacity immediately funds the switch's inactive pairs, highest p̄ first.
// Interior switches of healthy regions are never touched, so the pass cost is
// proportional to the border, not the WAN. At K=1 there are no cross-region
// candidates and the pass is a no-op.
func coordinate(p *core.Problem, s *core.Solution, proj *scenario.Projection, part *Partition, inst *scenario.Instance) {
	// Residual capacity and per-switch pair counts from the merged solution.
	rest := make([]int, p.NumControllers)
	copy(rest, p.Rest)
	activated := make([]int, p.NumSwitches)
	inactive := make([]int, p.NumSwitches)
	for k, pr := range p.Pairs {
		if s.Active[k] {
			activated[pr.Switch]++
			rest[s.SwitchController[pr.Switch]]--
		} else {
			inactive[pr.Switch]++
		}
	}

	// Regions with no surviving controller: their switches may go anywhere.
	hasCtl := make([]bool, part.K)
	for _, rj := range proj.ControllerGroup {
		hasCtl[rj] = true
	}
	adjacent := func(ra, rb int) bool {
		for _, r := range part.Adjacent[ra] {
			if r == rb {
				return true
			}
		}
		return false
	}

	var scratch []int
	fund := func(i, jj int) {
		// Activate switch i's inactive pairs p̄-descending (pair index breaks
		// ties) while the adopting controller has capacity.
		scratch = scratch[:0]
		for _, k := range p.PairsAtSwitch(i) {
			if !s.Active[k] {
				scratch = append(scratch, k)
			}
		}
		slices.SortFunc(scratch, func(a, b int) int {
			if d := p.Pairs[b].PBar - p.Pairs[a].PBar; d != 0 {
				return d
			}
			return a - b
		})
		for _, k := range scratch {
			if rest[jj] <= 0 {
				break
			}
			s.Active[k] = true
			rest[jj]--
			activated[i]++
			inactive[i]--
		}
	}

	budget := 4 * p.NumSwitches
	for moved := true; moved && budget > 0; {
		moved = false
		budget--
		for i := 0; i < p.NumSwitches; i++ {
			if inactive[i] == 0 {
				continue
			}
			ri := proj.SwitchGroup[i]
			orphan := !hasCtl[ri]
			if !orphan && !part.IsBorder(inst.Switches[i]) {
				continue
			}
			j := s.SwitchController[i]
			stay := 0
			if j >= 0 {
				stay = min(rest[j], inactive[i])
			}
			bestJ, bestGain := -1, 0
			for jj := 0; jj < p.NumControllers; jj++ {
				rj := proj.ControllerGroup[jj]
				if rj == ri || rest[jj] < activated[i] {
					continue
				}
				if !orphan && !adjacent(ri, rj) {
					continue
				}
				gain := min(rest[jj]-activated[i], inactive[i]) - stay
				if gain > bestGain ||
					(gain == bestGain && bestJ >= 0 &&
						(p.Delay[i][jj] < p.Delay[i][bestJ] ||
							(p.Delay[i][jj] == p.Delay[i][bestJ] && jj < bestJ))) {
					bestGain, bestJ = gain, jj
				}
			}
			if bestJ < 0 {
				continue
			}
			if j >= 0 {
				rest[j] += activated[i]
			}
			rest[bestJ] -= activated[i]
			s.SwitchController[i] = bestJ
			fund(i, bestJ)
			moved = true
		}
	}
}

// unmapEmpty re-establishes PM's terminal invariant on the merged solution:
// a switch with no active pair stays unmapped.
func unmapEmpty(p *core.Problem, s *core.Solution) {
	activeAt := make([]bool, p.NumSwitches)
	for k, on := range s.Active {
		if on {
			activeAt[p.Pairs[k].Switch] = true
		}
	}
	for i := range s.SwitchController {
		if !activeAt[i] {
			s.SwitchController[i] = -1
		}
	}
}
