package opt

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"pmedic/internal/core"
)

// smallProblem builds an instance small enough for the exact solve to finish
// in milliseconds.
func smallProblem(t *testing.T, rng *rand.Rand, n, m, l int) *core.Problem {
	t.Helper()
	p := &core.Problem{
		NumSwitches:    n,
		NumControllers: m,
		NumFlows:       l,
		Rest:           make([]int, m),
		Gamma:          make([]int, n),
		Delay:          make([][]float64, n),
	}
	for j := range p.Rest {
		p.Rest[j] = 2 + rng.Intn(6)
	}
	for i := range p.Delay {
		row := make([]float64, m)
		for j := range row {
			row[j] = 0.5 + rng.Float64()*4
		}
		p.Delay[i] = row
	}
	for fl := 0; fl < l; fl++ {
		p.Pairs = append(p.Pairs, core.Pair{Switch: rng.Intn(n), Flow: fl, PBar: 2 + rng.Intn(5)})
	}
	for e := 0; e < l; e++ {
		p.Pairs = append(p.Pairs, core.Pair{Switch: rng.Intn(n), Flow: rng.Intn(l), PBar: 2 + rng.Intn(5)})
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	for i := range p.Gamma {
		p.Gamma[i] = p.EligiblePairCount(i) + rng.Intn(4)
	}
	p.BudgetMs = p.IdealDelayBudget()
	return p
}

func TestSolveSmallExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := smallProblem(t, rng, 2, 2, 4)
	sol, err := Solve(p, Options{TimeLimit: 20 * time.Second})
	if err != nil {
		if errors.Is(err, ErrNoSolution) {
			t.Skip("instance infeasible under r>=1; acceptable for this seed")
		}
		t.Fatal(err)
	}
	if err := sol.Verify(p); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if sol.Algorithm != "Optimal" {
		t.Fatalf("algorithm = %q", sol.Algorithm)
	}
}

// TestOptimalDominatesHeuristicsWhenProved: on instances it solves to proven
// optimality, Optimal's objective must be >= every feasible heuristic's
// objective (comparing only budget-feasible, full-coverage heuristic runs,
// which are feasible points of the same program).
func TestOptimalDominatesHeuristicsWhenProved(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tested := 0
	for trial := 0; trial < 20 && tested < 8; trial++ {
		p := smallProblem(t, rng, 1+rng.Intn(3), 1+rng.Intn(3), 2+rng.Intn(6))
		optSol, err := Solve(p, Options{TimeLimit: 30 * time.Second, RequireProved: true})
		if errors.Is(err, ErrNoSolution) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		optRep, err := core.Evaluate(p, optSol, core.EvaluateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		pmSol, err := core.PM(p)
		if err != nil {
			t.Fatal(err)
		}
		pmRep, err := core.Evaluate(p, pmSol, core.EvaluateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if pmRep.WithinBudget && pmRep.MinProg >= 1 && pmRep.Objective > optRep.Objective+1e-6 {
			t.Fatalf("trial %d: PM objective %v beats proven Optimal %v",
				trial, pmRep.Objective, optRep.Objective)
		}
		tested++
	}
	if tested == 0 {
		t.Fatal("no instance was solvable; generator is broken")
	}
}

func TestSolveInfeasibleWhenCapacityTooSmall(t *testing.T) {
	// Two flows, one controller with capacity 1, and r >= 1 requires both.
	p := &core.Problem{
		NumSwitches:    1,
		NumControllers: 1,
		NumFlows:       2,
		Rest:           []int{1},
		Gamma:          []int{5},
		Delay:          [][]float64{{1}},
		Pairs: []core.Pair{
			{Switch: 0, Flow: 0, PBar: 2},
			{Switch: 0, Flow: 1, PBar: 2},
		},
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	p.BudgetMs = p.IdealDelayBudget()
	if _, err := Solve(p, Options{TimeLimit: 10 * time.Second}); !errors.Is(err, ErrNoSolution) {
		t.Fatalf("error = %v, want ErrNoSolution", err)
	}
}

func TestSolveUsesWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := smallProblem(t, rng, 2, 2, 5)
	warm, err := core.PM(p)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(p, Options{TimeLimit: 20 * time.Second, Warm: warm})
	if errors.Is(err, ErrNoSolution) {
		t.Skip("instance infeasible for this seed")
	}
	if err != nil {
		t.Fatal(err)
	}
	warmRep, err := core.Evaluate(p, warm, core.EvaluateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	optRep, err := core.Evaluate(p, sol, core.EvaluateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if warmRep.WithinBudget && warmRep.MinProg >= 1 && optRep.Objective < warmRep.Objective-1e-6 {
		t.Fatalf("Optimal %v below its own warm start %v", optRep.Objective, warmRep.Objective)
	}
}

func TestSolveRejectsEmptyPairs(t *testing.T) {
	p := &core.Problem{
		NumSwitches:    1,
		NumControllers: 1,
		NumFlows:       1,
		Rest:           []int{1},
		Gamma:          []int{1},
		Delay:          [][]float64{{1}},
	}
	// Finalize fails on zero pairs only if a pair is invalid; an empty pair
	// set finalizes fine but opt must reject it.
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(p, Options{}); !errors.Is(err, ErrNoSolution) {
		t.Fatalf("error = %v, want ErrNoSolution", err)
	}
}

func TestSolveRespectsBudgetConstraint(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 6; trial++ {
		p := smallProblem(t, rng, 2, 2, 4)
		sol, err := Solve(p, Options{TimeLimit: 20 * time.Second})
		if errors.Is(err, ErrNoSolution) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		rep, err := core.Evaluate(p, sol, core.EvaluateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.WithinBudget {
			t.Fatalf("trial %d: Optimal exceeded the delay budget: %v > %v",
				trial, rep.OverheadMs, p.BudgetMs)
		}
		if rep.MinProg < 1 {
			t.Fatalf("trial %d: Optimal violated r >= 1", trial)
		}
	}
}

func TestSensitivities(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := smallProblem(t, rng, 2, 2, 5)
	s, err := Sensitivities(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.CapacityPrice) != p.NumControllers {
		t.Fatalf("prices = %v", s.CapacityPrice)
	}
	// Shadow prices of <=-resources in a maximization are non-negative.
	for j, price := range s.CapacityPrice {
		if price < -1e-8 {
			t.Fatalf("controller %d price %v < 0", j, price)
		}
	}
	if s.BudgetPrice < -1e-8 {
		t.Fatalf("budget price %v < 0", s.BudgetPrice)
	}
	// The relaxation bounds any integer-feasible solution's objective.
	sol, err := Solve(p, Options{TimeLimit: 20 * time.Second})
	if errors.Is(err, ErrNoSolution) {
		t.Skip("integer model infeasible for this seed")
	}
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Evaluate(p, sol, core.EvaluateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Objective > s.Objective+1e-6 {
		t.Fatalf("integer objective %v exceeds relaxation bound %v", rep.Objective, s.Objective)
	}
}

func TestSensitivitiesTightCapacityHasPositivePrice(t *testing.T) {
	// One controller, capacity 2, three flows wanting pairs: capacity binds,
	// so its shadow price must be strictly positive.
	p := &core.Problem{
		NumSwitches:    1,
		NumControllers: 1,
		NumFlows:       2,
		Rest:           []int{2},
		Gamma:          []int{5},
		Delay:          [][]float64{{1}},
		Pairs: []core.Pair{
			{Switch: 0, Flow: 0, PBar: 2},
			{Switch: 0, Flow: 1, PBar: 3},
			{Switch: 0, Flow: 1, PBar: 4},
		},
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	p.BudgetMs = 1e9
	s, err := Sensitivities(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.CapacityPrice[0] <= 0 {
		t.Fatalf("binding capacity has price %v, want > 0", s.CapacityPrice[0])
	}
}
