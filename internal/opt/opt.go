// Package opt implements the Optimal comparator of the paper's evaluation:
// the FMSSM problem P′ solved exactly (within a budget) by the pure-Go
// lp+mip stack.
//
// Instead of the paper's Θ(N·M·L) ω-linearization, it uses the equivalent
// compact model of DESIGN.md §4: binaries x_{ij} (switch→controller) and
// z_k (pair k in SDN mode) plus continuous per-switch-per-controller charged
// load c_{ij}. Because each switch maps to at most one controller, any
// feasible (x, z) extends uniquely to c and vice versa, and c's integrality
// is implied — the model has ~N·M + |pairs| binaries rather than ~N·M·L.
//
// As in the paper, the model carries the hard constraint r ≥ 1 ("each
// offline flow must be recovered"): in tight failure cases it is infeasible
// and Solve returns ErrNoSolution, mirroring GUROBI's missing results in
// 8 of 20 three-failure cases.
package opt

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"pmedic/internal/core"
	"pmedic/internal/lp"
	"pmedic/internal/mip"
)

// ErrNoSolution reports that no integer-feasible solution with r >= 1 was
// found: the model is infeasible, or the search budget expired first.
var ErrNoSolution = errors.New("opt: no solution")

// Options tunes the exact solve. The zero value selects defaults.
type Options struct {
	// TimeLimit bounds the branch & bound wall clock (default 60s).
	TimeLimit time.Duration
	// MaxNodes bounds explored nodes (default mip's).
	MaxNodes int
	// Warm optionally seeds the search with a heuristic solution (it is
	// used only if it is feasible for the model, i.e. recovers every flow
	// and respects the delay budget).
	Warm *core.Solution
	// Workers sets how many goroutines expand branch & bound nodes
	// concurrently (default 1). The search result is identical for any
	// worker count given the same node budget.
	Workers int
	// RequireProved makes Solve return ErrNoSolution unless optimality was
	// proved (tree exhausted); by default a budget-expired incumbent is
	// returned, matching how a time-limited GUROBI run is reported.
	RequireProved bool
}

func (o Options) withDefaults() Options {
	if o.TimeLimit == 0 {
		o.TimeLimit = 60 * time.Second
	}
	return o
}

// model holds the variable layout of one compiled instance.
type model struct {
	m    *mip.Model
	p    *core.Problem
	x    [][]int // x[i][j]
	z    []int   // z[k] per pair
	cij  [][]int // c[i][j]
	rVar int

	// Row indices for sensitivity analysis.
	capRows   []int // capacity row per controller
	budgetRow int   // delay-budget row
}

// Solve builds and solves the compact FMSSM model for p.
func Solve(p *core.Problem, opts Options) (*core.Solution, error) {
	opts = opts.withDefaults()
	start := time.Now()
	md, err := build(p)
	if err != nil {
		return nil, err
	}
	mipOpts := mip.Options{
		TimeLimit: opts.TimeLimit,
		MaxNodes:  opts.MaxNodes,
		Workers:   opts.Workers,
		Heuristic: md.repair,
	}
	if opts.Warm != nil {
		if pt, ok := md.warmPoint(opts.Warm); ok {
			mipOpts.Incumbent = pt
		}
	}
	res, err := md.m.Solve(mipOpts)
	if err != nil {
		return nil, fmt.Errorf("opt: %w", err)
	}
	switch res.Status {
	case mip.StatusOptimal:
	case mip.StatusFeasible:
		if opts.RequireProved {
			return nil, fmt.Errorf("%w: budget expired with gap %.3f", ErrNoSolution, res.Gap)
		}
	default:
		return nil, fmt.Errorf("%w: %v after %d nodes", ErrNoSolution, res.Status, res.Nodes)
	}
	sol := md.extract(res.X)
	sol.Runtime = time.Since(start)
	if err := sol.Verify(p); err != nil {
		return nil, fmt.Errorf("opt: extracted solution: %w", err)
	}
	return sol, nil
}

// build compiles the compact model.
func build(p *core.Problem) (*model, error) {
	if len(p.Pairs) == 0 {
		return nil, fmt.Errorf("opt: %w: no eligible pairs", ErrNoSolution)
	}
	md := &model{
		m: mip.NewModel(lp.Maximize),
		p: p,
	}
	N, M := p.NumSwitches, p.NumControllers

	md.rVar = md.m.AddVar(1, math.Inf(1), 1, "r", false)
	md.x = make([][]int, N)
	md.cij = make([][]int, N)
	for i := 0; i < N; i++ {
		md.x[i] = make([]int, M)
		md.cij[i] = make([]int, M)
		for j := 0; j < M; j++ {
			suffix := strconv.Itoa(i) + "_" + strconv.Itoa(j)
			md.x[i][j] = md.m.AddBinary(0, "x"+suffix)
			md.cij[i][j] = md.m.AddVar(0, float64(p.EligiblePairCount(i)), 0, "c"+suffix, false)
		}
	}
	md.z = make([]int, len(p.Pairs))
	for k, pr := range p.Pairs {
		md.z[k] = md.m.AddVar(0, 1, p.Lambda*float64(pr.PBar), "z"+strconv.Itoa(k), true)
	}

	// (2) Each switch maps to at most one controller.
	for i := 0; i < N; i++ {
		terms := make([]lp.Term, M)
		for j := 0; j < M; j++ {
			terms[j] = lp.Term{Var: md.x[i][j], Coeff: 1}
		}
		if err := md.m.AddRow(lp.LE, 1, terms...); err != nil {
			return nil, err
		}
	}
	// Linking: c_ij <= u_i·x_ij.
	for i := 0; i < N; i++ {
		u := float64(p.EligiblePairCount(i))
		for j := 0; j < M; j++ {
			if err := md.m.AddRow(lp.LE, 0,
				lp.Term{Var: md.cij[i][j], Coeff: 1},
				lp.Term{Var: md.x[i][j], Coeff: -u},
			); err != nil {
				return nil, err
			}
		}
	}
	// Balance: Σ_j c_ij = Σ_{k at i} z_k.
	for i := 0; i < N; i++ {
		terms := make([]lp.Term, 0, M+len(p.PairsAtSwitch(i)))
		for j := 0; j < M; j++ {
			terms = append(terms, lp.Term{Var: md.cij[i][j], Coeff: 1})
		}
		for _, k := range p.PairsAtSwitch(i) {
			terms = append(terms, lp.Term{Var: md.z[k], Coeff: -1})
		}
		if err := md.m.AddRow(lp.EQ, 0, terms...); err != nil {
			return nil, err
		}
	}
	// (12) Controller capacity: Σ_i c_ij <= A_j^rest. Row indices are
	// recorded for shadow-price queries: rows so far are N mapping +
	// N·M linking + N balance.
	rowBase := N + N*M + N
	md.capRows = make([]int, M)
	for j := 0; j < M; j++ {
		md.capRows[j] = rowBase + j
		terms := make([]lp.Term, N)
		for i := 0; i < N; i++ {
			terms[i] = lp.Term{Var: md.cij[i][j], Coeff: 1}
		}
		if err := md.m.AddRow(lp.LE, float64(p.Rest[j]), terms...); err != nil {
			return nil, err
		}
	}
	md.budgetRow = rowBase + M
	// (14) Delay budget: Σ_ij c_ij·D_ij <= G.
	{
		terms := make([]lp.Term, 0, N*M)
		for i := 0; i < N; i++ {
			for j := 0; j < M; j++ {
				terms = append(terms, lp.Term{Var: md.cij[i][j], Coeff: p.Delay[i][j]})
			}
		}
		if err := md.m.AddRow(lp.LE, p.BudgetMs, terms...); err != nil {
			return nil, err
		}
	}
	// (13) Per-flow programmability: Σ p̄·z − r >= 0.
	for l := 0; l < p.NumFlows; l++ {
		ks := p.PairsOfFlow(l)
		terms := make([]lp.Term, 0, len(ks)+1)
		for _, k := range ks {
			terms = append(terms, lp.Term{Var: md.z[k], Coeff: float64(p.Pairs[k].PBar)})
		}
		terms = append(terms, lp.Term{Var: md.rVar, Coeff: -1})
		if err := md.m.AddRow(lp.GE, 0, terms...); err != nil {
			return nil, err
		}
	}
	return md, nil
}

// warmPoint converts a heuristic solution into a model point, or reports
// that it cannot seed the model (flow-level solutions, unrecovered flows).
func (md *model) warmPoint(s *core.Solution) ([]float64, bool) {
	p := md.p
	if s.PairController != nil || s.SwitchLevel {
		return nil, false
	}
	if len(s.SwitchController) != p.NumSwitches || len(s.Active) != len(p.Pairs) {
		return nil, false
	}
	pt := make([]float64, md.m.NumVars())
	counts := make([][]float64, p.NumSwitches)
	for i := range counts {
		counts[i] = make([]float64, p.NumControllers)
	}
	pro := make([]int, p.NumFlows)
	for k, on := range s.Active {
		if !on {
			continue
		}
		i := p.Pairs[k].Switch
		j := s.SwitchController[i]
		if j < 0 {
			return nil, false
		}
		pt[md.z[k]] = 1
		counts[i][j]++
		pro[p.Pairs[k].Flow] += p.Pairs[k].PBar
	}
	r := math.MaxInt
	for _, v := range pro {
		if v < r {
			r = v
		}
	}
	if r < 1 {
		return nil, false // cannot satisfy the r >= 1 hard constraint
	}
	pt[md.rVar] = float64(r)
	for i, j := range s.SwitchController {
		if j >= 0 {
			pt[md.x[i][j]] = 1
		}
	}
	for i := range counts {
		for j := range counts[i] {
			pt[md.cij[i][j]] = counts[i][j]
		}
	}
	return pt, true
}

// Sensitivity is the LP-relaxation shadow-price view of an instance: how
// much the (relaxed) optimal objective would improve per extra unit of each
// resource. It identifies which surviving controller's capacity — or the
// delay budget — is the recovery bottleneck.
type Sensitivity struct {
	// CapacityPrice[j] is controller j's capacity shadow price.
	CapacityPrice []float64
	// BudgetPrice is the delay budget's shadow price.
	BudgetPrice float64
	// Objective is the relaxation's optimal objective (an upper bound on
	// the integer optimum).
	Objective float64
}

// Sensitivities solves the LP relaxation of the compact model and returns
// the capacity and budget shadow prices.
func Sensitivities(p *core.Problem) (*Sensitivity, error) {
	return SensitivitiesWith(p, lp.Options{})
}

// SensitivitiesWith is Sensitivities with explicit LP solver options; the
// scale benchmarks use it to force a factorization choice.
func SensitivitiesWith(p *core.Problem, lpOpts lp.Options) (*Sensitivity, error) {
	md, err := build(p)
	if err != nil {
		return nil, err
	}
	sol, err := md.m.SolveRelaxation(lpOpts)
	if err != nil {
		return nil, fmt.Errorf("opt: relaxation: %w", err)
	}
	if sol.Status != lp.StatusOptimal {
		return nil, fmt.Errorf("%w: relaxation %v", ErrNoSolution, sol.Status)
	}
	s := &Sensitivity{
		CapacityPrice: make([]float64, p.NumControllers),
		BudgetPrice:   sol.Duals[md.budgetRow],
		Objective:     sol.Objective,
	}
	for j, row := range md.capRows {
		s.CapacityPrice[j] = sol.Duals[row]
	}
	return s, nil
}

// repair turns a (generally fractional) relaxation point into an integer-
// feasible model point, or nil when it cannot. It tries two switch→controller
// mappings — the LP-preferred one, then a capacity-aware nearest-fit — and
// for each covers every flow with its cheapest affordable pair (the r >= 1
// hard constraint) before spending leftover capacity on high-p̄ pairs within
// the delay budget.
func (md *model) repair(relax []float64) []float64 {
	if pt := md.repairWith(md.lpMapping(relax)); pt != nil {
		return pt
	}
	return md.repairWith(md.fitMapping())
}

// lpMapping maps each switch to the argmax of its relaxed x row, ties and
// all-zero rows resolved toward the nearest controller.
func (md *model) lpMapping(relax []float64) []int {
	p := md.p
	ctrl := make([]int, p.NumSwitches)
	for i := range ctrl {
		ctrl[i] = -1
		best := 0.0
		for _, j := range p.NearestControllers(i) {
			if v := relax[md.x[i][j]]; v > best+1e-9 {
				best, ctrl[i] = v, j
			}
		}
		if ctrl[i] < 0 {
			ctrl[i] = p.NearestControllers(i)[0]
		}
	}
	return ctrl
}

// fitMapping assigns switches, largest pair count first, to the nearest
// controller whose uncommitted capacity covers the switch's pair count,
// falling back to the controller with the most uncommitted capacity.
func (md *model) fitMapping() []int {
	p := md.p
	ctrl := make([]int, p.NumSwitches)
	virt := make([]int, p.NumControllers)
	copy(virt, p.Rest)
	order := make([]int, p.NumSwitches)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return p.EligiblePairCount(order[a]) > p.EligiblePairCount(order[b])
	})
	for _, i := range order {
		ctrl[i] = -1
		for _, j := range p.NearestControllers(i) {
			if virt[j] >= p.EligiblePairCount(i) {
				ctrl[i] = j
				break
			}
		}
		if ctrl[i] < 0 {
			for j := 0; j < p.NumControllers; j++ {
				if ctrl[i] < 0 || virt[j] > virt[ctrl[i]] {
					ctrl[i] = j
				}
			}
		}
		virt[ctrl[i]] -= p.EligiblePairCount(i)
		if virt[ctrl[i]] < 0 {
			virt[ctrl[i]] = 0
		}
	}
	return ctrl
}

// repairWith builds a feasible model point under a fixed mapping, or nil.
func (md *model) repairWith(ctrl []int) []float64 {
	p := md.p
	N, M := p.NumSwitches, p.NumControllers
	rest := make([]int, M)
	copy(rest, p.Rest)
	used := 0.0
	active := make([]bool, len(p.Pairs))
	pro := make([]int, p.NumFlows)

	// Cover flows, fewest-options first, via their cheapest-delay pair.
	order := make([]int, p.NumFlows)
	for l := range order {
		order[l] = l
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(p.PairsOfFlow(order[a])) < len(p.PairsOfFlow(order[b]))
	})
	for _, l := range order {
		bestK, bestD := -1, math.Inf(1)
		for _, k := range p.PairsOfFlow(l) {
			i := p.Pairs[k].Switch
			if rest[ctrl[i]] <= 0 {
				continue
			}
			if d := p.Delay[i][ctrl[i]]; d < bestD {
				bestD, bestK = d, k
			}
		}
		if bestK < 0 || used+bestD > p.BudgetMs+1e-9 {
			return nil
		}
		i := p.Pairs[bestK].Switch
		rest[ctrl[i]]--
		used += bestD
		active[bestK] = true
		pro[l] += p.Pairs[bestK].PBar
	}

	// Spend what remains on the highest-p̄ pairs.
	byPBar := make([]int, 0, len(p.Pairs))
	for k := range p.Pairs {
		if !active[k] {
			byPBar = append(byPBar, k)
		}
	}
	sort.SliceStable(byPBar, func(a, b int) bool {
		return p.Pairs[byPBar[a]].PBar > p.Pairs[byPBar[b]].PBar
	})
	for _, k := range byPBar {
		i := p.Pairs[k].Switch
		d := p.Delay[i][ctrl[i]]
		if rest[ctrl[i]] <= 0 || used+d > p.BudgetMs+1e-9 {
			continue
		}
		rest[ctrl[i]]--
		used += d
		active[k] = true
		pro[p.Pairs[k].Flow] += p.Pairs[k].PBar
	}

	// Assemble the model point.
	pt := make([]float64, md.m.NumVars())
	counts := make([][]int, N)
	for i := range counts {
		counts[i] = make([]int, M)
	}
	r := math.MaxInt
	for _, v := range pro {
		if v < r {
			r = v
		}
	}
	if r < 1 {
		return nil
	}
	pt[md.rVar] = float64(r)
	for k, on := range active {
		if on {
			pt[md.z[k]] = 1
			counts[p.Pairs[k].Switch][ctrl[p.Pairs[k].Switch]]++
		}
	}
	for i := 0; i < N; i++ {
		if counts[i][ctrl[i]] > 0 {
			pt[md.x[i][ctrl[i]]] = 1
			pt[md.cij[i][ctrl[i]]] = float64(counts[i][ctrl[i]])
		}
	}
	return pt
}

// extract converts a model point into a core.Solution.
func (md *model) extract(x []float64) *core.Solution {
	p := md.p
	sol := core.NewSolution("Optimal", p)
	for i := 0; i < p.NumSwitches; i++ {
		for j := 0; j < p.NumControllers; j++ {
			if math.Round(x[md.x[i][j]]) == 1 {
				sol.SwitchController[i] = j
				break
			}
		}
	}
	for k := range p.Pairs {
		if math.Round(x[md.z[k]]) == 1 {
			sol.Active[k] = true
		}
	}
	// Drop mappings that carry no active pair (cosmetic, mirrors PM).
	activeAt := make([]bool, p.NumSwitches)
	for k, on := range sol.Active {
		if on {
			activeAt[p.Pairs[k].Switch] = true
		}
	}
	for i := range sol.SwitchController {
		if !activeAt[i] {
			sol.SwitchController[i] = -1
		}
	}
	return sol
}
