// Package flow generates the traffic workload of the paper's evaluation:
// one flow per pair of nodes, forwarded on a shortest path, together with the
// path-programmability coefficients (β_i^l, p_i^l, p̄_i^l) that drive the
// FMSSM optimization.
package flow

import (
	"fmt"

	"pmedic/internal/graphalg"
	"pmedic/internal/topo"
)

// ID identifies a flow within a Set; IDs are dense 0..L-1 in deterministic
// (src, dst) lexicographic order.
type ID int

// Stop is one switch on a flow's forwarding path together with the flow's
// path-count coefficient there: PathCount is p_i^l, the number of distinct
// simple paths from the switch to the flow's destination within the counting
// bound. The switch can reroute the flow (β_i^l = 1) iff PathCount >= 2.
type Stop struct {
	Node      topo.NodeID
	PathCount int
}

// Programmable reports β_i^l for this stop.
func (s Stop) Programmable() bool { return s.PathCount >= 2 }

// PBar returns p̄_i^l = β_i^l * p_i^l.
func (s Stop) PBar() int {
	if s.PathCount >= 2 {
		return s.PathCount
	}
	return 0
}

// Flow is a unidirectional traffic flow with its forwarding path and the
// programmability coefficients at every path switch except the destination
// (the destination cannot reroute the flow).
type Flow struct {
	ID       ID
	Src, Dst topo.NodeID
	Path     []topo.NodeID
	Stops    []Stop
}

// Traverses reports whether the flow's path includes node v.
func (f *Flow) Traverses(v topo.NodeID) bool {
	for _, n := range f.Path {
		if n == v {
			return true
		}
	}
	return false
}

// Options tunes workload generation. The zero value is replaced by Defaults.
type Options struct {
	// Unordered generates one flow per unordered node pair instead of the
	// default one per ordered pair. The paper's Table III flow-count
	// arithmetic is consistent with ordered pairs (600 flows on 25 nodes).
	Unordered bool
	// Slack bounds path counting: p_i^l counts simple paths from i to the
	// destination no longer than (hop distance + Slack). Default 1, which
	// matches the paths enumerated in the paper's Fig. 1 example.
	Slack int
	// Limit caps each p_i^l (0 = default 64). Counting is exact below the
	// cap; the cap prevents exponential blow-up on dense graphs.
	Limit int
}

const (
	defaultSlack = 1
	defaultLimit = 12
)

func (o Options) withDefaults() Options {
	if o.Slack == 0 {
		o.Slack = defaultSlack
	}
	if o.Limit == 0 {
		o.Limit = defaultLimit
	}
	return o
}

// Set is a generated workload: all flows plus per-switch traversal counts.
type Set struct {
	Flows []Flow
	// counts[i] is γ_i: the number of flows whose path includes switch i.
	counts []int
	opts   Options
}

// Generate routes one flow per node pair on a hop-primary/delay-secondary
// shortest path and computes programmability coefficients for every stop.
func Generate(g *topo.Graph, opts Options) (*Set, error) {
	opts = opts.withDefaults()
	if opts.Slack < 0 {
		return nil, fmt.Errorf("flow: negative slack %d", opts.Slack)
	}
	delay, err := g.EdgeDelaysMs()
	if err != nil {
		return nil, fmt.Errorf("flow: edge delays: %w", err)
	}
	routeWeight := graphalg.HopMajor(delay)

	n := g.NumNodes()
	s := &Set{counts: make([]int, n), opts: opts}

	// Hop distances from every destination, reused for both routing slack
	// bounds and path counting.
	hopsTo := make([][]int, n)
	for v := 0; v < n; v++ {
		hopsTo[v] = graphalg.HopDistances(g, topo.NodeID(v))
	}
	// Memoize path counts: (node, dst) pairs repeat across flows sharing a
	// destination. The memo is a dense at*n+dst table (-1 = unset): node IDs
	// are dense, so this replaces per-lookup map hashing with one index.
	countMemo := make([]int, n*n)
	for i := range countMemo {
		countMemo[i] = -1
	}
	countPaths := func(at, dst topo.NodeID) int {
		key := int(at)*n + int(dst)
		if c := countMemo[key]; c >= 0 {
			return c
		}
		maxHops := hopsTo[dst][at] + opts.Slack
		c := graphalg.CountSimplePaths(g, at, dst, maxHops, opts.Limit)
		countMemo[key] = c
		return c
	}

	for src := 0; src < n; src++ {
		tree, err := graphalg.Dijkstra(g, topo.NodeID(src), routeWeight)
		if err != nil {
			return nil, fmt.Errorf("flow: route from %d: %w", src, err)
		}
		for dst := 0; dst < n; dst++ {
			if dst == src {
				continue
			}
			if opts.Unordered && dst < src {
				continue
			}
			path, err := tree.PathTo(topo.NodeID(dst))
			if err != nil {
				return nil, fmt.Errorf("flow: route %d->%d: %w", src, dst, err)
			}
			f := Flow{
				ID:   ID(len(s.Flows)),
				Src:  topo.NodeID(src),
				Dst:  topo.NodeID(dst),
				Path: path,
			}
			f.Stops = make([]Stop, 0, len(path)-1)
			for _, v := range path[:len(path)-1] {
				f.Stops = append(f.Stops, Stop{
					Node:      v,
					PathCount: countPaths(v, topo.NodeID(dst)),
				})
			}
			for _, v := range path {
				s.counts[v]++
			}
			s.Flows = append(s.Flows, f)
		}
	}
	return s, nil
}

// Len returns the number of flows.
func (s *Set) Len() int { return len(s.Flows) }

// Options returns the (defaulted) options the set was generated with.
func (s *Set) Options() Options { return s.opts }

// SwitchFlowCount returns γ_i, the number of flows traversing switch i
// (including as source or destination), or 0 for out-of-range IDs.
func (s *Set) SwitchFlowCount(i topo.NodeID) int {
	if i < 0 || int(i) >= len(s.counts) {
		return 0
	}
	return s.counts[int(i)]
}

// TotalTraversals returns Σ_i γ_i, the summed per-switch flow counts
// (each flow contributes its path length in nodes).
func (s *Set) TotalTraversals() int {
	var total int
	for _, c := range s.counts {
		total += c
	}
	return total
}

// FlowsThrough returns the IDs of flows whose path includes any of the given
// switches, in ascending flow order. It sits on the daemon's reconcile path,
// so the membership mark is a dense []bool over node IDs rather than a map.
func (s *Set) FlowsThrough(switches []topo.NodeID) []ID {
	mark := make([]bool, len(s.counts))
	for _, sw := range switches {
		if sw >= 0 && int(sw) < len(mark) {
			mark[sw] = true
		}
	}
	var out []ID
	for l := range s.Flows {
		for _, v := range s.Flows[l].Path {
			if mark[v] {
				out = append(out, s.Flows[l].ID)
				break
			}
		}
	}
	return out
}
