// Package flow generates the traffic workload of the paper's evaluation:
// one flow per pair of nodes, forwarded on a shortest path, together with the
// path-programmability coefficients (β_i^l, p_i^l, p̄_i^l) that drive the
// FMSSM optimization.
//
// The workload is stored in CSR (compressed sparse row) form: all paths live
// in one flat node array indexed by per-flow offsets, all stops in one flat
// Stop array sharing those offsets, and a switch→flows index inverts the
// paths once at generation time. Per-flow Path/Stops slices are views into
// the flat arrays, so the familiar Flow API costs no per-flow allocations,
// and per-case consumers (scenario compilation, the daemon's reconcile path)
// can enumerate exactly the flows crossing a failed domain instead of
// scanning the whole workload.
package flow

import (
	"fmt"
	"sort"

	"pmedic/internal/graphalg"
	"pmedic/internal/topo"
)

// ID identifies a flow within a Set; IDs are dense 0..L-1 in deterministic
// (src, dst) lexicographic order.
type ID int

// Stop is one switch on a flow's forwarding path together with the flow's
// path-count coefficient there: PathCount is p_i^l, the number of distinct
// simple paths from the switch to the flow's destination within the counting
// bound. The switch can reroute the flow (β_i^l = 1) iff PathCount >= 2.
type Stop struct {
	Node      topo.NodeID
	PathCount int
}

// Programmable reports β_i^l for this stop.
func (s Stop) Programmable() bool { return s.PathCount >= 2 }

// PBar returns p̄_i^l = β_i^l * p_i^l.
func (s Stop) PBar() int {
	if s.PathCount >= 2 {
		return s.PathCount
	}
	return 0
}

// Flow is a unidirectional traffic flow with its forwarding path and the
// programmability coefficients at every path switch except the destination
// (the destination cannot reroute the flow). Path and Stops are views into
// the Set's flat CSR arrays; callers must not mutate them.
type Flow struct {
	ID       ID
	Src, Dst topo.NodeID
	Path     []topo.NodeID
	Stops    []Stop
}

// Traverses reports whether the flow's path includes node v.
func (f *Flow) Traverses(v topo.NodeID) bool {
	for _, n := range f.Path {
		if n == v {
			return true
		}
	}
	return false
}

// Options tunes workload generation. The zero value is replaced by Defaults.
type Options struct {
	// Unordered generates one flow per unordered node pair instead of the
	// default one per ordered pair. The paper's Table III flow-count
	// arithmetic is consistent with ordered pairs (600 flows on 25 nodes).
	Unordered bool
	// Slack bounds path counting: p_i^l counts simple paths from i to the
	// destination no longer than (hop distance + Slack). Default 1, which
	// matches the paths enumerated in the paper's Fig. 1 example.
	Slack int
	// Limit caps each p_i^l (0 = default 64). Counting is exact below the
	// cap; the cap prevents exponential blow-up on dense graphs.
	Limit int
}

const (
	defaultSlack = 1
	defaultLimit = 12
)

func (o Options) withDefaults() Options {
	if o.Slack == 0 {
		o.Slack = defaultSlack
	}
	if o.Limit == 0 {
		o.Limit = defaultLimit
	}
	return o
}

// Set is a generated workload: all flows plus per-switch traversal counts.
//
// Storage is CSR: pathArc holds every flow's path back to back (pathOff[l]
// .. pathOff[l+1] is flow l's slice of it), stopArc the matching stops, and
// swOff/swFlow the transposed switch→flows index. All arrays are built once
// by Generate; the exported Flows slice holds views into them.
type Set struct {
	Flows []Flow
	// counts[i] is γ_i: the number of flows whose path includes switch i.
	counts []int
	opts   Options

	// pathArc/stopArc are the flat backing arrays of every Flow's Path and
	// Stops views; pathOff[l] is flow l's start in both (stops are one
	// shorter per flow, offset by l).
	pathArc []topo.NodeID
	stopArc []Stop
	pathOff []int32
	// swOff/swFlow list, for each switch i, the IDs of the flows whose path
	// includes i (ascending): swFlow[swOff[i]:swOff[i+1]].
	swOff  []int32
	swFlow []int32
}

// Generate routes one flow per node pair on a hop-primary/delay-secondary
// shortest path and computes programmability coefficients for every stop.
func Generate(g *topo.Graph, opts Options) (*Set, error) {
	opts = opts.withDefaults()
	if opts.Slack < 0 {
		return nil, fmt.Errorf("flow: negative slack %d", opts.Slack)
	}
	delay, err := g.EdgeDelaysMs()
	if err != nil {
		return nil, fmt.Errorf("flow: edge delays: %w", err)
	}
	routeWeight := graphalg.HopMajor(delay)

	n := g.NumNodes()
	s := &Set{counts: make([]int, n), opts: opts}

	// Hop distances from every destination, reused for both routing slack
	// bounds and path counting.
	hopsTo := make([][]int, n)
	for v := 0; v < n; v++ {
		hopsTo[v] = graphalg.HopDistances(g, topo.NodeID(v))
	}
	// Memoize path counts: (node, dst) pairs repeat across flows sharing a
	// destination. The memo is a dense at*n+dst table (-1 = unset): node IDs
	// are dense, so this replaces per-lookup map hashing with one index.
	countMemo := make([]int, n*n)
	for i := range countMemo {
		countMemo[i] = -1
	}
	countVisited := make([]bool, n)
	countPaths := func(at, dst topo.NodeID) int {
		key := int(at)*n + int(dst)
		if c := countMemo[key]; c >= 0 {
			return c
		}
		maxHops := hopsTo[dst][at] + opts.Slack
		c := graphalg.CountSimplePathsPruned(g, at, dst, maxHops, opts.Limit, hopsTo[dst], countVisited)
		countMemo[key] = c
		return c
	}

	// Pass 1: route every pair, appending paths into the flat arc array and
	// recording offsets. Views are carved out afterwards, once the backing
	// array has stopped growing.
	numFlows := n * (n - 1)
	if opts.Unordered {
		numFlows = n * (n - 1) / 2
	}
	s.pathOff = make([]int32, 1, numFlows+1)
	s.pathArc = make([]topo.NodeID, 0, 4*numFlows)
	type endpoints struct{ src, dst topo.NodeID }
	ends := make([]endpoints, 0, numFlows)
	for src := 0; src < n; src++ {
		tree, err := graphalg.Dijkstra(g, topo.NodeID(src), routeWeight)
		if err != nil {
			return nil, fmt.Errorf("flow: route from %d: %w", src, err)
		}
		for dst := 0; dst < n; dst++ {
			if dst == src {
				continue
			}
			if opts.Unordered && dst < src {
				continue
			}
			s.pathArc, err = tree.AppendPathTo(s.pathArc, topo.NodeID(dst))
			if err != nil {
				return nil, fmt.Errorf("flow: route %d->%d: %w", src, dst, err)
			}
			s.pathOff = append(s.pathOff, int32(len(s.pathArc)))
			ends = append(ends, endpoints{topo.NodeID(src), topo.NodeID(dst)})
		}
	}

	// Pass 2: programmability coefficients for every stop, flat.
	s.stopArc = make([]Stop, 0, len(s.pathArc)-len(ends))
	for l := range ends {
		path := s.pathArc[s.pathOff[l]:s.pathOff[l+1]]
		dst := ends[l].dst
		for _, v := range path[:len(path)-1] {
			s.stopArc = append(s.stopArc, Stop{Node: v, PathCount: countPaths(v, dst)})
		}
		for _, v := range path {
			s.counts[v]++
		}
	}

	// Pass 3: flow views into the now-stable backing arrays, and the
	// switch→flows CSR transpose (a counting sort over the traversal counts).
	s.Flows = make([]Flow, len(ends))
	stopOff := int32(0)
	for l := range ends {
		lo, hi := s.pathOff[l], s.pathOff[l+1]
		s.Flows[l] = Flow{
			ID:    ID(l),
			Src:   ends[l].src,
			Dst:   ends[l].dst,
			Path:  s.pathArc[lo:hi:hi],
			Stops: s.stopArc[stopOff : stopOff+(hi-lo)-1 : stopOff+(hi-lo)-1],
		}
		stopOff += hi - lo - 1
	}
	s.swOff = make([]int32, n+1)
	for i, c := range s.counts {
		s.swOff[i+1] = s.swOff[i] + int32(c)
	}
	s.swFlow = make([]int32, len(s.pathArc))
	cursor := make([]int32, n)
	copy(cursor, s.swOff[:n])
	for l := range s.Flows {
		for _, v := range s.Flows[l].Path {
			s.swFlow[cursor[v]] = int32(l)
			cursor[v]++
		}
	}
	return s, nil
}

// Len returns the number of flows.
func (s *Set) Len() int { return len(s.Flows) }

// Options returns the (defaulted) options the set was generated with.
func (s *Set) Options() Options { return s.opts }

// SwitchFlowCount returns γ_i, the number of flows traversing switch i
// (including as source or destination), or 0 for out-of-range IDs.
func (s *Set) SwitchFlowCount(i topo.NodeID) int {
	if i < 0 || int(i) >= len(s.counts) {
		return 0
	}
	return s.counts[int(i)]
}

// TotalTraversals returns Σ_i γ_i, the summed per-switch flow counts
// (each flow contributes its path length in nodes).
func (s *Set) TotalTraversals() int {
	var total int
	for _, c := range s.counts {
		total += c
	}
	return total
}

// ForEachFlowThrough calls fn with the ID of every flow whose path includes
// switch i, in ascending flow order, straight off the switch→flows CSR
// index. Out-of-range switches have no flows.
func (s *Set) ForEachFlowThrough(i topo.NodeID, fn func(ID)) {
	if i < 0 || int(i) >= len(s.counts) {
		return
	}
	for _, l := range s.swFlow[s.swOff[i]:s.swOff[i+1]] {
		fn(ID(l))
	}
}

// AppendFlowsThrough appends the IDs (as int32) of flows traversing any of
// the given switches to buf — with duplicates when a flow crosses several of
// them — and returns the extended slice. It is the raw CSR gather behind
// FlowsThrough; callers that dedupe themselves (scenario compilation) use it
// to avoid the per-call mark array.
func (s *Set) AppendFlowsThrough(buf []int32, switches []topo.NodeID) []int32 {
	for _, sw := range switches {
		if sw < 0 || int(sw) >= len(s.counts) {
			continue
		}
		buf = append(buf, s.swFlow[s.swOff[sw]:s.swOff[sw+1]]...)
	}
	return buf
}

// FlowsThrough returns the IDs of flows whose path includes any of the given
// switches, in ascending flow order. It sits on the daemon's reconcile path,
// so it gathers candidates from the switch→flows CSR index — cost
// proportional to the traversals of the named switches, not the workload —
// and dedupes with one sort.
func (s *Set) FlowsThrough(switches []topo.NodeID) []ID {
	raw := s.AppendFlowsThrough(nil, switches)
	if len(raw) == 0 {
		return nil
	}
	sort.Slice(raw, func(a, b int) bool { return raw[a] < raw[b] })
	out := make([]ID, 0, len(raw))
	for i, l := range raw {
		if i > 0 && ID(l) == out[len(out)-1] {
			continue
		}
		out = append(out, ID(l))
	}
	return out
}
