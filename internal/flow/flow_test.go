package flow

import (
	"testing"

	"pmedic/internal/topo"
)

func attGraph(t *testing.T) *topo.Graph {
	t.Helper()
	dep, err := topo.ATT()
	if err != nil {
		t.Fatal(err)
	}
	return dep.Graph
}

func TestGenerateOrderedCount(t *testing.T) {
	g := attGraph(t)
	s, err := Generate(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One flow per ordered pair of 25 nodes.
	if s.Len() != 25*24 {
		t.Fatalf("flows = %d, want 600", s.Len())
	}
}

func TestGenerateUnorderedCount(t *testing.T) {
	g := attGraph(t)
	s, err := Generate(g, Options{Unordered: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 25*24/2 {
		t.Fatalf("flows = %d, want 300", s.Len())
	}
}

func TestGeneratePathsAreValidWalks(t *testing.T) {
	g := attGraph(t)
	s, err := Generate(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range s.Flows {
		if f.Path[0] != f.Src || f.Path[len(f.Path)-1] != f.Dst {
			t.Fatalf("flow %d endpoints: path %v, src %d dst %d", f.ID, f.Path, f.Src, f.Dst)
		}
		for i := 1; i < len(f.Path); i++ {
			if !g.HasEdge(f.Path[i-1], f.Path[i]) {
				t.Fatalf("flow %d uses non-edge %d-%d", f.ID, f.Path[i-1], f.Path[i])
			}
		}
		seen := map[topo.NodeID]bool{}
		for _, v := range f.Path {
			if seen[v] {
				t.Fatalf("flow %d path revisits %d", f.ID, v)
			}
			seen[v] = true
		}
	}
}

func TestGenerateStopsExcludeDestination(t *testing.T) {
	g := attGraph(t)
	s, err := Generate(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range s.Flows {
		if len(f.Stops) != len(f.Path)-1 {
			t.Fatalf("flow %d: %d stops for %d path nodes", f.ID, len(f.Stops), len(f.Path))
		}
		for _, st := range f.Stops {
			if st.Node == f.Dst {
				t.Fatalf("flow %d has a stop at its destination", f.ID)
			}
		}
	}
}

func TestSwitchFlowCountsConsistent(t *testing.T) {
	g := attGraph(t)
	s, err := Generate(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	manual := make([]int, g.NumNodes())
	for _, f := range s.Flows {
		for _, v := range f.Path {
			manual[v]++
		}
	}
	total := 0
	for v := 0; v < g.NumNodes(); v++ {
		got := s.SwitchFlowCount(topo.NodeID(v))
		if got != manual[v] {
			t.Fatalf("γ_%d = %d, manual %d", v, got, manual[v])
		}
		total += got
	}
	if s.TotalTraversals() != total {
		t.Fatalf("TotalTraversals = %d, manual %d", s.TotalTraversals(), total)
	}
	if s.SwitchFlowCount(-1) != 0 || s.SwitchFlowCount(999) != 0 {
		t.Fatal("out-of-range IDs must count 0")
	}
}

func TestEndpointFloor(t *testing.T) {
	// With ordered all-pairs flows, every node is an endpoint of 2*(n-1).
	g := attGraph(t)
	s, err := Generate(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		if got := s.SwitchFlowCount(topo.NodeID(v)); got < 48 {
			t.Fatalf("γ_%d = %d < endpoint floor 48", v, got)
		}
	}
}

func TestStopSemantics(t *testing.T) {
	if (Stop{PathCount: 1}).Programmable() {
		t.Fatal("one path is not programmable")
	}
	if !(Stop{PathCount: 2}).Programmable() {
		t.Fatal("two paths are programmable")
	}
	if (Stop{PathCount: 1}).PBar() != 0 {
		t.Fatal("p̄ must be 0 when β=0")
	}
	if (Stop{PathCount: 5}).PBar() != 5 {
		t.Fatal("p̄ must equal the path count when β=1")
	}
}

func TestPathCountRespectsLimit(t *testing.T) {
	g := attGraph(t)
	s, err := Generate(g, Options{Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range s.Flows {
		for _, st := range f.Stops {
			if st.PathCount > 3 {
				t.Fatalf("path count %d exceeds limit 3", st.PathCount)
			}
		}
	}
}

func TestSlackIncreasesCounts(t *testing.T) {
	g := attGraph(t)
	s0, err := Generate(g, Options{Slack: 1, Limit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Generate(g, Options{Slack: 2, Limit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	grew := false
	for l := range s0.Flows {
		for i := range s0.Flows[l].Stops {
			a := s0.Flows[l].Stops[i].PathCount
			b := s2.Flows[l].Stops[i].PathCount
			if b < a {
				t.Fatalf("flow %d stop %d: slack 2 count %d < slack 1 count %d", l, i, b, a)
			}
			if b > a {
				grew = true
			}
		}
	}
	if !grew {
		t.Fatal("extra slack should strictly increase at least one count")
	}
}

func TestNegativeSlackRejected(t *testing.T) {
	g := attGraph(t)
	if _, err := Generate(g, Options{Slack: -1}); err == nil {
		t.Fatal("negative slack must be rejected")
	}
}

func TestFlowsThrough(t *testing.T) {
	g := attGraph(t)
	s, err := Generate(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ids := s.FlowsThrough([]topo.NodeID{13})
	if len(ids) != s.SwitchFlowCount(13) {
		t.Fatalf("FlowsThrough(13) = %d flows, γ_13 = %d", len(ids), s.SwitchFlowCount(13))
	}
	for _, id := range ids {
		if !s.Flows[id].Traverses(13) {
			t.Fatalf("flow %d reported through 13 but does not traverse it", id)
		}
	}
	if got := s.FlowsThrough(nil); got != nil {
		t.Fatalf("FlowsThrough(nil) = %v, want nil", got)
	}
}

func TestTraverses(t *testing.T) {
	f := Flow{Path: []topo.NodeID{1, 2, 3}}
	if !f.Traverses(2) || f.Traverses(9) {
		t.Fatal("Traverses misbehaves")
	}
}

func TestOptionsDefaults(t *testing.T) {
	g := attGraph(t)
	s, err := Generate(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := s.Options()
	if opts.Slack != defaultSlack || opts.Limit != defaultLimit {
		t.Fatalf("defaults not applied: %+v", opts)
	}
}
