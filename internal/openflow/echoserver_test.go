package openflow

import (
	"testing"
	"time"
)

func echoProbe(t *testing.T, addr string) error {
	t.Helper()
	conn, err := DialTimeout(addr, time.Second)
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()
	conn.SetIOTimeout(time.Second)
	return conn.Ping([]byte("probe"))
}

func TestEchoServerAnswersProbes(t *testing.T) {
	s, err := ServeEcho("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	for i := 0; i < 3; i++ {
		if err := echoProbe(t, s.Addr()); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
	}
	if s.Pings() != 3 {
		t.Fatalf("pings = %d, want 3", s.Pings())
	}
}

func TestEchoServerToggleLiveness(t *testing.T) {
	s, err := ServeEcho("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	if err := echoProbe(t, s.Addr()); err != nil {
		t.Fatalf("probe while alive: %v", err)
	}

	s.SetAlive(false)
	if err := echoProbe(t, s.Addr()); err == nil {
		t.Fatal("probe succeeded against a dead endpoint")
	}

	// The endpoint resumes on the same address.
	s.SetAlive(true)
	if err := echoProbe(t, s.Addr()); err != nil {
		t.Fatalf("probe after revival: %v", err)
	}
}

func TestEchoServerDownKillsOpenChannels(t *testing.T) {
	s, err := ServeEcho("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	conn, err := DialTimeout(s.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	conn.SetIOTimeout(time.Second)
	if err := conn.Ping([]byte("up")); err != nil {
		t.Fatal(err)
	}

	s.SetAlive(false)
	if err := conn.Ping([]byte("down")); err == nil {
		t.Fatal("ping on an open channel succeeded after the endpoint died")
	}
}
