// Package openflow implements the control-channel wire protocol the
// simulated switches and controllers speak: an OpenFlow-1.3-flavored message
// set (hello/echo, features, flow-mod, packet-in/out, role, barrier, error)
// with a binary codec and a TCP connection wrapper. The subset covers what
// programmability recovery needs — installing and removing flow entries,
// claiming the master role over a re-mapped switch, and liveness probing.
package openflow

import "fmt"

// Version is the protocol version byte carried by every header (0x04 as in
// OpenFlow 1.3, whose switch specification the paper cites).
const Version uint8 = 0x04

// MsgType discriminates message bodies.
type MsgType uint8

// Message types.
const (
	TypeHello MsgType = iota + 1
	TypeError
	TypeEchoRequest
	TypeEchoReply
	TypeFeaturesRequest
	TypeFeaturesReply
	TypePacketIn
	TypePacketOut
	TypeFlowMod
	TypeRoleRequest
	TypeRoleReply
	TypeBarrierRequest
	TypeBarrierReply
)

// String renders the message type for diagnostics.
func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeError:
		return "error"
	case TypeEchoRequest:
		return "echo-request"
	case TypeEchoReply:
		return "echo-reply"
	case TypeFeaturesRequest:
		return "features-request"
	case TypeFeaturesReply:
		return "features-reply"
	case TypePacketIn:
		return "packet-in"
	case TypePacketOut:
		return "packet-out"
	case TypeFlowMod:
		return "flow-mod"
	case TypeRoleRequest:
		return "role-request"
	case TypeRoleReply:
		return "role-reply"
	case TypeBarrierRequest:
		return "barrier-request"
	case TypeBarrierReply:
		return "barrier-reply"
	default:
		return fmt.Sprintf("openflow.MsgType(%d)", uint8(t))
	}
}

// Header precedes every message on the wire: 8 bytes, big-endian.
type Header struct {
	Version uint8
	Type    MsgType
	Length  uint16 // total message length including the header
	XID     uint32
}

// HeaderLen is the encoded header size in bytes.
const HeaderLen = 4 + 4

// Message is any body that can ride under a Header.
type Message interface {
	// MsgType identifies the body's wire type.
	MsgType() MsgType
}

// Hello opens a control channel; both sides send one.
type Hello struct{}

// MsgType implements Message.
func (Hello) MsgType() MsgType { return TypeHello }

// Echo is a liveness probe (request) or its mirror (reply).
type Echo struct {
	Reply bool
	Data  []byte
}

// MsgType implements Message.
func (e Echo) MsgType() MsgType {
	if e.Reply {
		return TypeEchoReply
	}
	return TypeEchoRequest
}

// FeaturesRequest asks a switch for its datapath description.
type FeaturesRequest struct{}

// MsgType implements Message.
func (FeaturesRequest) MsgType() MsgType { return TypeFeaturesRequest }

// FeaturesReply describes a switch.
type FeaturesReply struct {
	DatapathID uint64
	NumTables  uint8
	// Hybrid reports the legacy-fallthrough capability of high-end switches
	// (the Brocade MLX-8-style OpenFlow/OSPF pipeline the paper relies on).
	Hybrid bool
}

// MsgType implements Message.
func (FeaturesReply) MsgType() MsgType { return TypeFeaturesReply }

// Match selects packets of one flow. The reproduction's flows are identified
// end-to-end, so an exact ternary match suffices: flow ID plus endpoints.
type Match struct {
	FlowID uint32
	Src    uint32
	Dst    uint32
}

// FlowModCommand selects the flow-table operation.
type FlowModCommand uint8

// Flow-mod commands.
const (
	FlowAdd FlowModCommand = iota + 1
	FlowDelete
	FlowDeleteAll
)

// FlowMod installs or removes a flow entry: on match, forward to NextHop.
type FlowMod struct {
	Command  FlowModCommand
	Priority uint16
	Match    Match
	NextHop  uint32
}

// MsgType implements Message.
func (FlowMod) MsgType() MsgType { return TypeFlowMod }

// PacketInReason explains why a switch punted a packet to its controller.
type PacketInReason uint8

// Packet-in reasons.
const (
	ReasonNoMatch PacketInReason = iota + 1
	ReasonAction
)

// PacketIn punts a packet to the controller.
type PacketIn struct {
	BufferID uint32
	Reason   PacketInReason
	Match    Match
	Data     []byte
}

// MsgType implements Message.
func (PacketIn) MsgType() MsgType { return TypePacketIn }

// PacketOut tells a switch to emit a (possibly buffered) packet.
type PacketOut struct {
	BufferID uint32
	NextHop  uint32
	Data     []byte
}

// MsgType implements Message.
func (PacketOut) MsgType() MsgType { return TypePacketOut }

// ControllerRole is the OpenFlow multi-controller role.
type ControllerRole uint32

// Controller roles.
const (
	RoleEqual ControllerRole = iota + 1
	RoleMaster
	RoleSlave
)

// RoleRequest claims or queries a controller role; recovery uses it to make
// an active controller the master of a re-mapped offline switch.
type RoleRequest struct {
	Role         ControllerRole
	GenerationID uint64
}

// MsgType implements Message.
func (RoleRequest) MsgType() MsgType { return TypeRoleRequest }

// RoleReply confirms the negotiated role.
type RoleReply struct {
	Role         ControllerRole
	GenerationID uint64
}

// MsgType implements Message.
func (RoleReply) MsgType() MsgType { return TypeRoleReply }

// BarrierRequest forces ordering: the switch answers only after processing
// everything received before it.
type BarrierRequest struct{}

// MsgType implements Message.
func (BarrierRequest) MsgType() MsgType { return TypeBarrierRequest }

// BarrierReply acknowledges a BarrierRequest.
type BarrierReply struct{}

// MsgType implements Message.
func (BarrierReply) MsgType() MsgType { return TypeBarrierReply }

// ErrorMsg reports a protocol failure.
type ErrorMsg struct {
	Code uint16
	Data []byte
}

// MsgType implements Message.
func (ErrorMsg) MsgType() MsgType { return TypeError }

// Error codes carried by ErrorMsg.
const (
	// ErrCodeRoleStale rejects a Master/Slave RoleRequest whose generation
	// ID is behind the switch's recorded one (the OpenFlow 1.3 stale-message
	// defense against delayed mastership claims). Data carries the switch's
	// current generation ID as 8 big-endian bytes, so the controller can
	// resynchronize and retry.
	ErrCodeRoleStale uint16 = 1
)

// RemoteError is a peer's ErrorMsg surfaced as a Go error by the
// request/reply helpers.
type RemoteError struct {
	Code uint16
	Data []byte
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("openflow: remote error code %d (%d data bytes)", e.Code, len(e.Data))
}

// StaleGeneration decodes the switch's current generation ID from a
// role-stale error; ok is false for other codes or malformed payloads.
func (e *RemoteError) StaleGeneration() (gen uint64, ok bool) {
	if e.Code != ErrCodeRoleStale || len(e.Data) < 8 {
		return 0, false
	}
	var g uint64
	for _, b := range e.Data[:8] {
		g = g<<8 | uint64(b)
	}
	return g, true
}
