package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Codec errors.
var (
	ErrBadVersion  = errors.New("openflow: unsupported version")
	ErrBadType     = errors.New("openflow: unknown message type")
	ErrTruncated   = errors.New("openflow: truncated message")
	ErrTooLong     = errors.New("openflow: message exceeds maximum length")
	ErrBadEncoding = errors.New("openflow: malformed body")
)

// MaxMessageLen bounds a single message on the wire (the uint16 length field
// caps it anyway; this constant documents it and guards encoders).
const MaxMessageLen = 1<<16 - 1

var byteOrder = binary.BigEndian

// Encode serializes msg under a header carrying xid.
func Encode(msg Message, xid uint32) ([]byte, error) {
	body, err := encodeBody(msg)
	if err != nil {
		return nil, err
	}
	total := HeaderLen + len(body)
	if total > MaxMessageLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLong, total)
	}
	buf := make([]byte, total)
	buf[0] = Version
	buf[1] = uint8(msg.MsgType())
	byteOrder.PutUint16(buf[2:4], uint16(total))
	byteOrder.PutUint32(buf[4:8], xid)
	copy(buf[HeaderLen:], body)
	return buf, nil
}

func encodeBody(msg Message) ([]byte, error) {
	switch m := msg.(type) {
	case Hello, FeaturesRequest, BarrierRequest, BarrierReply:
		return nil, nil
	case Echo:
		return append([]byte(nil), m.Data...), nil
	case FeaturesReply:
		b := make([]byte, 10)
		byteOrder.PutUint64(b[0:8], m.DatapathID)
		b[8] = m.NumTables
		if m.Hybrid {
			b[9] = 1
		}
		return b, nil
	case FlowMod:
		b := make([]byte, 1+2+12+4)
		b[0] = uint8(m.Command)
		byteOrder.PutUint16(b[1:3], m.Priority)
		putMatch(b[3:15], m.Match)
		byteOrder.PutUint32(b[15:19], m.NextHop)
		return b, nil
	case PacketIn:
		b := make([]byte, 4+1+12+len(m.Data))
		byteOrder.PutUint32(b[0:4], m.BufferID)
		b[4] = uint8(m.Reason)
		putMatch(b[5:17], m.Match)
		copy(b[17:], m.Data)
		return b, nil
	case PacketOut:
		b := make([]byte, 4+4+len(m.Data))
		byteOrder.PutUint32(b[0:4], m.BufferID)
		byteOrder.PutUint32(b[4:8], m.NextHop)
		copy(b[8:], m.Data)
		return b, nil
	case RoleRequest:
		return encodeRole(uint32(m.Role), m.GenerationID), nil
	case RoleReply:
		return encodeRole(uint32(m.Role), m.GenerationID), nil
	case ErrorMsg:
		b := make([]byte, 2+len(m.Data))
		byteOrder.PutUint16(b[0:2], m.Code)
		copy(b[2:], m.Data)
		return b, nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrBadType, msg)
	}
}

func encodeRole(role uint32, gen uint64) []byte {
	b := make([]byte, 12)
	byteOrder.PutUint32(b[0:4], role)
	byteOrder.PutUint64(b[4:12], gen)
	return b
}

func putMatch(b []byte, m Match) {
	byteOrder.PutUint32(b[0:4], m.FlowID)
	byteOrder.PutUint32(b[4:8], m.Src)
	byteOrder.PutUint32(b[8:12], m.Dst)
}

func getMatch(b []byte) Match {
	return Match{
		FlowID: byteOrder.Uint32(b[0:4]),
		Src:    byteOrder.Uint32(b[4:8]),
		Dst:    byteOrder.Uint32(b[8:12]),
	}
}

// DecodeHeader parses the 8-byte header.
func DecodeHeader(b []byte) (Header, error) {
	if len(b) < HeaderLen {
		return Header{}, fmt.Errorf("%w: header needs %d bytes, have %d", ErrTruncated, HeaderLen, len(b))
	}
	h := Header{
		Version: b[0],
		Type:    MsgType(b[1]),
		Length:  byteOrder.Uint16(b[2:4]),
		XID:     byteOrder.Uint32(b[4:8]),
	}
	if h.Version != Version {
		return Header{}, fmt.Errorf("%w: %#x", ErrBadVersion, h.Version)
	}
	if int(h.Length) < HeaderLen {
		return Header{}, fmt.Errorf("%w: declared length %d below header size", ErrBadEncoding, h.Length)
	}
	return h, nil
}

// Decode parses one full message (header + body) from b.
func Decode(b []byte) (Message, Header, error) {
	h, err := DecodeHeader(b)
	if err != nil {
		return nil, Header{}, err
	}
	if len(b) < int(h.Length) {
		return nil, Header{}, fmt.Errorf("%w: declared %d bytes, have %d", ErrTruncated, h.Length, len(b))
	}
	body := b[HeaderLen:h.Length]
	msg, err := decodeBody(h.Type, body)
	if err != nil {
		return nil, Header{}, err
	}
	return msg, h, nil
}

func decodeBody(t MsgType, body []byte) (Message, error) {
	need := func(n int) error {
		if len(body) < n {
			return fmt.Errorf("%w: %v body needs %d bytes, have %d", ErrTruncated, t, n, len(body))
		}
		return nil
	}
	switch t {
	case TypeHello:
		return Hello{}, nil
	case TypeFeaturesRequest:
		return FeaturesRequest{}, nil
	case TypeBarrierRequest:
		return BarrierRequest{}, nil
	case TypeBarrierReply:
		return BarrierReply{}, nil
	case TypeEchoRequest, TypeEchoReply:
		return Echo{Reply: t == TypeEchoReply, Data: append([]byte(nil), body...)}, nil
	case TypeFeaturesReply:
		if err := need(10); err != nil {
			return nil, err
		}
		return FeaturesReply{
			DatapathID: byteOrder.Uint64(body[0:8]),
			NumTables:  body[8],
			Hybrid:     body[9] == 1,
		}, nil
	case TypeFlowMod:
		if err := need(19); err != nil {
			return nil, err
		}
		cmd := FlowModCommand(body[0])
		if cmd < FlowAdd || cmd > FlowDeleteAll {
			return nil, fmt.Errorf("%w: flow-mod command %d", ErrBadEncoding, cmd)
		}
		return FlowMod{
			Command:  cmd,
			Priority: byteOrder.Uint16(body[1:3]),
			Match:    getMatch(body[3:15]),
			NextHop:  byteOrder.Uint32(body[15:19]),
		}, nil
	case TypePacketIn:
		if err := need(17); err != nil {
			return nil, err
		}
		return PacketIn{
			BufferID: byteOrder.Uint32(body[0:4]),
			Reason:   PacketInReason(body[4]),
			Match:    getMatch(body[5:17]),
			Data:     append([]byte(nil), body[17:]...),
		}, nil
	case TypePacketOut:
		if err := need(8); err != nil {
			return nil, err
		}
		return PacketOut{
			BufferID: byteOrder.Uint32(body[0:4]),
			NextHop:  byteOrder.Uint32(body[4:8]),
			Data:     append([]byte(nil), body[8:]...),
		}, nil
	case TypeRoleRequest, TypeRoleReply:
		if err := need(12); err != nil {
			return nil, err
		}
		role := ControllerRole(byteOrder.Uint32(body[0:4]))
		gen := byteOrder.Uint64(body[4:12])
		if role < RoleEqual || role > RoleSlave {
			return nil, fmt.Errorf("%w: role %d", ErrBadEncoding, role)
		}
		if t == TypeRoleRequest {
			return RoleRequest{Role: role, GenerationID: gen}, nil
		}
		return RoleReply{Role: role, GenerationID: gen}, nil
	case TypeError:
		if err := need(2); err != nil {
			return nil, err
		}
		return ErrorMsg{
			Code: byteOrder.Uint16(body[0:2]),
			Data: append([]byte(nil), body[2:]...),
		}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, uint8(t))
	}
}

// ReadMessage reads exactly one message from r (blocking until a full
// message arrives) and returns it with its header.
func ReadMessage(r io.Reader) (Message, Header, error) {
	var hb [HeaderLen]byte
	if _, err := io.ReadFull(r, hb[:]); err != nil {
		return nil, Header{}, err
	}
	h, err := DecodeHeader(hb[:])
	if err != nil {
		return nil, Header{}, err
	}
	body := make([]byte, int(h.Length)-HeaderLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, Header{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	msg, err := decodeBody(h.Type, body)
	if err != nil {
		return nil, Header{}, err
	}
	return msg, h, nil
}

// WriteMessage encodes msg under xid and writes it to w.
func WriteMessage(w io.Writer, msg Message, xid uint32) error {
	buf, err := Encode(msg, xid)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}
