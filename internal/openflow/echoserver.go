package openflow

import (
	"fmt"
	"sync"
	"time"
)

// EchoServer is a minimal control-plane liveness endpoint: it accepts
// control channels, completes the Hello handshake, and answers Echo
// requests — nothing else. It is the probe surface a failure detector
// (internal/monitor) pings to decide whether a controller is alive.
//
// The endpoint's liveness is toggleable without releasing its port:
// SetAlive(false) kills every open channel and makes new ones fail during
// the handshake, so probes see exactly what a crashed controller looks
// like, while SetAlive(true) resumes service on the same address. That
// address stability is what lets a simulated controller "return" and be
// re-detected without re-configuring the detector.
type EchoServer struct {
	listener *Listener

	mu    sync.Mutex
	alive bool
	conns map[*Conn]struct{}
	pings uint64

	wg   sync.WaitGroup
	done chan struct{}
}

// ServeEcho starts an echo endpoint on addr (e.g. "127.0.0.1:0"), initially
// alive.
func ServeEcho(addr string) (*EchoServer, error) {
	l, err := Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("openflow: echo server: %w", err)
	}
	s := &EchoServer{
		listener: l,
		alive:    true,
		conns:    make(map[*Conn]struct{}),
		done:     make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the endpoint's listen address.
func (s *EchoServer) Addr() string { return s.listener.Addr() }

// Alive reports whether the endpoint currently answers probes.
func (s *EchoServer) Alive() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alive
}

// Pings returns the number of Echo requests answered so far.
func (s *EchoServer) Pings() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pings
}

// SetAlive toggles the endpoint. Going down closes every open channel
// immediately (in-flight probes fail, as they would against a crashed
// process); going up resumes accepting on the same address.
func (s *EchoServer) SetAlive(alive bool) {
	s.mu.Lock()
	s.alive = alive
	var victims []*Conn
	if !alive {
		for c := range s.conns {
			victims = append(victims, c)
		}
	}
	s.mu.Unlock()
	for _, c := range victims {
		_ = c.Close()
	}
}

// Close stops the endpoint and waits for its channels to drain.
func (s *EchoServer) Close() error {
	close(s.done)
	err := s.listener.Close()
	s.SetAlive(false)
	s.wg.Wait()
	return err
}

func (s *EchoServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				// Handshake failure or transient accept error: keep serving.
				// A dead endpoint also lands here — Accept completes the TCP
				// connect but the refused handshake below kills the channel.
				continue
			}
		}
		s.mu.Lock()
		if !s.alive {
			s.mu.Unlock()
			_ = conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

// serve answers Echo requests on one channel until it closes or the
// endpoint goes down.
func (s *EchoServer) serve(conn *Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	conn.SetIOTimeout(30 * time.Second)
	for {
		msg, h, err := conn.Recv()
		if err != nil {
			return
		}
		s.mu.Lock()
		alive := s.alive
		s.mu.Unlock()
		if !alive {
			return
		}
		if e, ok := msg.(Echo); ok && !e.Reply {
			s.mu.Lock()
			s.pings++
			s.mu.Unlock()
			if err := conn.SendXID(Echo{Reply: true, Data: e.Data}, h.XID); err != nil {
				return
			}
		}
	}
}
