package openflow

import (
	"net"
	"sync"
	"testing"
	"time"
)

func TestHandshakeOverPipe(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = ca.Handshake() }()
	go func() { defer wg.Done(); errs[1] = cb.Handshake() }()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("side %d: %v", i, err)
		}
	}
	_ = ca.Close()
	_ = cb.Close()
}

func TestSendRecvOverPipe(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer func() {
		_ = ca.Close()
		_ = cb.Close()
	}()
	want := FlowMod{Command: FlowAdd, Priority: 50, Match: Match{FlowID: 11, Src: 0, Dst: 24}, NextHop: 13}
	done := make(chan error, 1)
	go func() {
		_, err := ca.Send(want)
		done <- err
	}()
	got, h, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	fm, ok := got.(FlowMod)
	if !ok || fm != want {
		t.Fatalf("got %#v (xid %d)", got, h.XID)
	}
}

func TestXIDsMonotone(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer func() {
		_ = ca.Close()
		_ = cb.Close()
	}()
	go func() {
		for i := 0; i < 3; i++ {
			if _, err := ca.Send(Hello{}); err != nil {
				return
			}
		}
	}()
	var last uint32
	for i := 0; i < 3; i++ {
		_, h, err := cb.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if h.XID <= last {
			t.Fatalf("xid %d not increasing past %d", h.XID, last)
		}
		last = h.XID
	}
}

func TestTCPDialListen(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()

	type result struct {
		conn *Conn
		err  error
	}
	acceptCh := make(chan result, 1)
	go func() {
		c, err := l.Accept()
		acceptCh <- result{c, err}
	}()

	client, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	srv := <-acceptCh
	if srv.err != nil {
		t.Fatal(srv.err)
	}
	defer func() { _ = srv.conn.Close() }()

	// Echo request/reply with matching XIDs across real TCP.
	xid, err := client.Send(Echo{Data: []byte("alive?")})
	if err != nil {
		t.Fatal(err)
	}
	msg, h, err := srv.conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	req, ok := msg.(Echo)
	if !ok || req.Reply {
		t.Fatalf("server got %#v", msg)
	}
	if err := srv.conn.SendXID(Echo{Reply: true, Data: req.Data}, h.XID); err != nil {
		t.Fatal(err)
	}
	reply, rh, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if rh.XID != xid {
		t.Fatalf("reply xid = %d, want %d", rh.XID, xid)
	}
	if rep, ok := reply.(Echo); !ok || !rep.Reply || string(rep.Data) != "alive?" {
		t.Fatalf("reply = %#v", reply)
	}
}

func TestHandshakeRejectsNonHello(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer func() {
		_ = ca.Close()
		_ = cb.Close()
	}()
	errCh := make(chan error, 1)
	go func() { errCh <- ca.Handshake() }()
	// Peer misbehaves: sends a BarrierRequest first.
	if _, _, err := cb.Recv(); err != nil { // consume ca's hello
		t.Fatal(err)
	}
	if _, err := cb.Send(BarrierRequest{}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("handshake accepted a non-hello first message")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handshake did not finish")
	}
}
