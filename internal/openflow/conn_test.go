package openflow

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func TestHandshakeOverPipe(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = ca.Handshake() }()
	go func() { defer wg.Done(); errs[1] = cb.Handshake() }()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("side %d: %v", i, err)
		}
	}
	_ = ca.Close()
	_ = cb.Close()
}

func TestSendRecvOverPipe(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer func() {
		_ = ca.Close()
		_ = cb.Close()
	}()
	want := FlowMod{Command: FlowAdd, Priority: 50, Match: Match{FlowID: 11, Src: 0, Dst: 24}, NextHop: 13}
	done := make(chan error, 1)
	go func() {
		_, err := ca.Send(want)
		done <- err
	}()
	got, h, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	fm, ok := got.(FlowMod)
	if !ok || fm != want {
		t.Fatalf("got %#v (xid %d)", got, h.XID)
	}
}

func TestXIDsMonotone(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer func() {
		_ = ca.Close()
		_ = cb.Close()
	}()
	go func() {
		for i := 0; i < 3; i++ {
			if _, err := ca.Send(Hello{}); err != nil {
				return
			}
		}
	}()
	var last uint32
	for i := 0; i < 3; i++ {
		_, h, err := cb.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if h.XID <= last {
			t.Fatalf("xid %d not increasing past %d", h.XID, last)
		}
		last = h.XID
	}
}

func TestTCPDialListen(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()

	type result struct {
		conn *Conn
		err  error
	}
	acceptCh := make(chan result, 1)
	go func() {
		c, err := l.Accept()
		acceptCh <- result{c, err}
	}()

	client, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	srv := <-acceptCh
	if srv.err != nil {
		t.Fatal(srv.err)
	}
	defer func() { _ = srv.conn.Close() }()

	// Echo request/reply with matching XIDs across real TCP.
	xid, err := client.Send(Echo{Data: []byte("alive?")})
	if err != nil {
		t.Fatal(err)
	}
	msg, h, err := srv.conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	req, ok := msg.(Echo)
	if !ok || req.Reply {
		t.Fatalf("server got %#v", msg)
	}
	if err := srv.conn.SendXID(Echo{Reply: true, Data: req.Data}, h.XID); err != nil {
		t.Fatal(err)
	}
	reply, rh, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if rh.XID != xid {
		t.Fatalf("reply xid = %d, want %d", rh.XID, xid)
	}
	if rep, ok := reply.(Echo); !ok || !rep.Reply || string(rep.Data) != "alive?" {
		t.Fatalf("reply = %#v", reply)
	}
}

func TestDialTimeoutUnresponsivePeer(t *testing.T) {
	// A raw TCP listener that accepts but never speaks: the handshake can
	// never complete, so DialTimeout must give up instead of hanging.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			defer func() { _ = c.Close() }()
			// Swallow the client's hello, reply with nothing.
			_, _ = c.Read(make([]byte, 64))
		}
	}()

	start := time.Now()
	_, err = DialTimeout(l.Addr().String(), 150*time.Millisecond)
	if err == nil {
		t.Fatal("DialTimeout succeeded against a mute peer")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("DialTimeout took %v, want prompt failure", elapsed)
	}
}

func TestAcceptTimesOutOnMuteClient(t *testing.T) {
	ofl, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ofl.Close() }()
	ofl.HandshakeTimeout = 150 * time.Millisecond

	// The client connects at the TCP level but never sends its hello.
	nc, err := net.Dial("tcp", ofl.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = nc.Close() }()

	done := make(chan error, 1)
	go func() {
		_, err := ofl.Accept()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Accept handshook with a mute client")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Accept hung on a mute client")
	}
}

func TestRequestMatchesXIDThroughInterleavedTraffic(t *testing.T) {
	a, b := net.Pipe()
	client, server := NewConn(a), NewConn(b)
	defer func() {
		_ = client.Close()
		_ = server.Close()
	}()

	serverDone := make(chan error, 1)
	go func() {
		serverDone <- func() error {
			msg, h, err := server.Recv()
			if err != nil {
				return err
			}
			if _, ok := msg.(BarrierRequest); !ok {
				return fmt.Errorf("server got %v", msg.MsgType())
			}
			// Interleave: an unrelated unsolicited reply, then an echo
			// request, then the real barrier reply.
			if err := server.SendXID(RoleReply{Role: RoleEqual, GenerationID: 0}, h.XID+100); err != nil {
				return err
			}
			if _, err := server.Send(Echo{Data: []byte("keepalive")}); err != nil {
				return err
			}
			// The client must answer our echo request while it waits for the
			// barrier reply; consume the answer before sending that reply, as
			// net.Pipe is fully synchronous.
			reply, _, err := server.Recv()
			if err != nil {
				return err
			}
			if e, ok := reply.(Echo); !ok || !e.Reply || string(e.Data) != "keepalive" {
				return fmt.Errorf("echo reply = %#v", reply)
			}
			return server.SendXID(BarrierReply{}, h.XID)
		}()
	}()

	msg, _, err := client.Request(BarrierRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(BarrierReply); !ok {
		t.Fatalf("request returned %v, want barrier reply", msg.MsgType())
	}
	if err := <-serverDone; err != nil {
		t.Fatal(err)
	}
}

func TestRequestSurfacesRemoteError(t *testing.T) {
	a, b := net.Pipe()
	client, server := NewConn(a), NewConn(b)
	defer func() {
		_ = client.Close()
		_ = server.Close()
	}()
	go func() {
		msg, h, err := server.Recv()
		if err != nil {
			return
		}
		if _, ok := msg.(RoleRequest); !ok {
			return
		}
		gen := make([]byte, 8)
		gen[7] = 9
		_ = server.SendXID(ErrorMsg{Code: ErrCodeRoleStale, Data: gen}, h.XID)
	}()

	_, _, err := client.Request(RoleRequest{Role: RoleMaster, GenerationID: 1})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error = %v, want *RemoteError", err)
	}
	if re.Code != ErrCodeRoleStale {
		t.Fatalf("code = %d", re.Code)
	}
	if gen, ok := re.StaleGeneration(); !ok || gen != 9 {
		t.Fatalf("stale generation = %d, %v", gen, ok)
	}
}

func TestPingAndIOTimeout(t *testing.T) {
	a, b := net.Pipe()
	client, server := NewConn(a), NewConn(b)
	defer func() {
		_ = client.Close()
		_ = server.Close()
	}()
	// A live peer answers the probe.
	go func() {
		msg, h, err := server.Recv()
		if err != nil {
			return
		}
		if e, ok := msg.(Echo); ok && !e.Reply {
			_ = server.SendXID(Echo{Reply: true, Data: e.Data}, h.XID)
		}
	}()
	if !client.SetIOTimeout(time.Second) {
		t.Fatal("net.Pipe should support deadlines")
	}
	if err := client.Ping([]byte("alive?")); err != nil {
		t.Fatal(err)
	}
	// A mute peer makes the next probe time out instead of hanging.
	client.SetIOTimeout(100 * time.Millisecond)
	start := time.Now()
	if err := client.Ping([]byte("anyone?")); err == nil {
		t.Fatal("ping against a mute peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("ping took %v, want prompt timeout", elapsed)
	}
}

func TestHandshakeRejectsNonHello(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer func() {
		_ = ca.Close()
		_ = cb.Close()
	}()
	errCh := make(chan error, 1)
	go func() { errCh <- ca.Handshake() }()
	// Peer misbehaves: sends a BarrierRequest first.
	if _, _, err := cb.Recv(); err != nil { // consume ca's hello
		t.Fatal(err)
	}
	if _, err := cb.Send(BarrierRequest{}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("handshake accepted a non-hello first message")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handshake did not finish")
	}
}
