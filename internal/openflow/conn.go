package openflow

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Conn is a control channel over a byte stream: buffered framing, an XID
// counter, and the opening Hello handshake. Reads and writes may proceed
// concurrently from one goroutine each; Send may additionally be called from
// multiple goroutines.
type Conn struct {
	raw io.Closer
	r   *bufio.Reader

	wmu sync.Mutex
	w   *bufio.Writer

	xid atomic.Uint32
}

// NewConn wraps a transport. For TCP, pass the *net.TCPConn (any
// io.ReadWriteCloser works, e.g. net.Pipe ends in tests).
func NewConn(rwc io.ReadWriteCloser) *Conn {
	return &Conn{
		raw: rwc,
		r:   bufio.NewReader(rwc),
		w:   bufio.NewWriter(rwc),
	}
}

// Handshake exchanges Hello messages: it sends one and requires the peer's
// first message to be one. Both sides of a channel call it; the send runs
// concurrently with the read so the exchange also completes over fully
// synchronous transports such as net.Pipe.
func (c *Conn) Handshake() error {
	sendErr := make(chan error, 1)
	go func() {
		_, err := c.Send(Hello{})
		sendErr <- err
	}()
	msg, _, err := c.Recv()
	if err != nil {
		return fmt.Errorf("openflow: handshake recv: %w", err)
	}
	if _, ok := msg.(Hello); !ok {
		return fmt.Errorf("openflow: handshake: got %v, want hello", msg.MsgType())
	}
	if err := <-sendErr; err != nil {
		return fmt.Errorf("openflow: handshake send: %w", err)
	}
	return nil
}

// Send writes one message, allocating a fresh XID, and returns the XID used.
func (c *Conn) Send(msg Message) (uint32, error) {
	xid := c.xid.Add(1)
	return xid, c.SendXID(msg, xid)
}

// SendXID writes one message under the caller's XID (for replies, which must
// echo the request's XID).
func (c *Conn) SendXID(msg Message, xid uint32) error {
	buf, err := Encode(msg, xid)
	if err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.w.Write(buf); err != nil {
		return err
	}
	return c.w.Flush()
}

// Recv blocks for the next message.
func (c *Conn) Recv() (Message, Header, error) {
	return ReadMessage(c.r)
}

// Close closes the underlying transport.
func (c *Conn) Close() error { return c.raw.Close() }

// Dial opens a control channel to addr over TCP and performs the handshake.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("openflow: dial %s: %w", addr, err)
	}
	c := NewConn(nc)
	if err := c.Handshake(); err != nil {
		_ = nc.Close()
		return nil, err
	}
	return c, nil
}

// Listener accepts control channels.
type Listener struct {
	l net.Listener
}

// Listen starts a control-channel listener on addr (e.g. "127.0.0.1:0").
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("openflow: listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept blocks for the next channel and performs the handshake.
func (l *Listener) Accept() (*Conn, error) {
	nc, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	c := NewConn(nc)
	if err := c.Handshake(); err != nil {
		_ = nc.Close()
		return nil, err
	}
	return c, nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }
