package openflow

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Default timeouts for the convenience constructors. Dial bounds connect +
// handshake; Accept bounds the server side of the handshake so one
// unresponsive client cannot wedge a listener forever.
const (
	DefaultDialTimeout      = 10 * time.Second
	DefaultHandshakeTimeout = 10 * time.Second
)

// deadliner is the deadline surface of net.Conn (and of transports, such as
// the chaos layer, that forward it).
type deadliner interface {
	SetReadDeadline(time.Time) error
	SetWriteDeadline(time.Time) error
}

// Conn is a control channel over a byte stream: buffered framing, an XID
// counter, per-operation deadlines, and the opening Hello handshake. Reads
// and writes may proceed concurrently from one goroutine each; Send may
// additionally be called from multiple goroutines.
//
// A Conn whose Recv fails with a timeout may have consumed part of a frame
// and is no longer usable for further traffic; close and redial.
type Conn struct {
	raw io.Closer
	dl  deadliner // nil when the transport has no deadline support
	r   *bufio.Reader

	wmu sync.Mutex
	w   *bufio.Writer

	xid     atomic.Uint32
	timeout atomic.Int64 // per-operation deadline, ns; 0 = none
}

// NewConn wraps a transport. For TCP, pass the *net.TCPConn (any
// io.ReadWriteCloser works, e.g. net.Pipe ends in tests). When the transport
// exposes SetReadDeadline/SetWriteDeadline, SetIOTimeout can arm
// per-operation deadlines.
func NewConn(rwc io.ReadWriteCloser) *Conn {
	c := &Conn{
		raw: rwc,
		r:   bufio.NewReader(rwc),
		w:   bufio.NewWriter(rwc),
	}
	if dl, ok := rwc.(deadliner); ok {
		c.dl = dl
	}
	return c
}

// SetIOTimeout arms a deadline applied independently to every subsequent
// Recv and Send; d <= 0 clears it. It reports whether the underlying
// transport supports deadlines (false means nothing was armed and
// operations can still block forever).
func (c *Conn) SetIOTimeout(d time.Duration) bool {
	if c.dl == nil {
		return false
	}
	if d <= 0 {
		c.timeout.Store(0)
		_ = c.dl.SetReadDeadline(time.Time{})
		_ = c.dl.SetWriteDeadline(time.Time{})
		return true
	}
	c.timeout.Store(int64(d))
	return true
}

func (c *Conn) armRead() error {
	if d := time.Duration(c.timeout.Load()); d > 0 && c.dl != nil {
		return c.dl.SetReadDeadline(time.Now().Add(d))
	}
	return nil
}

func (c *Conn) armWrite() error {
	if d := time.Duration(c.timeout.Load()); d > 0 && c.dl != nil {
		return c.dl.SetWriteDeadline(time.Now().Add(d))
	}
	return nil
}

// Handshake exchanges Hello messages: it sends one and requires the peer's
// first message to be one. Both sides of a channel call it; the send runs
// concurrently with the read so the exchange also completes over fully
// synchronous transports such as net.Pipe. An armed SetIOTimeout bounds the
// exchange.
func (c *Conn) Handshake() error {
	sendErr := make(chan error, 1)
	go func() {
		_, err := c.Send(Hello{})
		sendErr <- err
	}()
	msg, _, err := c.Recv()
	if err != nil {
		return fmt.Errorf("openflow: handshake recv: %w", err)
	}
	if _, ok := msg.(Hello); !ok {
		return fmt.Errorf("openflow: handshake: got %v, want hello", msg.MsgType())
	}
	if err := <-sendErr; err != nil {
		return fmt.Errorf("openflow: handshake send: %w", err)
	}
	return nil
}

// Send writes one message, allocating a fresh XID, and returns the XID used.
func (c *Conn) Send(msg Message) (uint32, error) {
	xid := c.xid.Add(1)
	return xid, c.SendXID(msg, xid)
}

// SendXID writes one message under the caller's XID (for replies, which must
// echo the request's XID).
func (c *Conn) SendXID(msg Message, xid uint32) error {
	buf, err := Encode(msg, xid)
	if err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.armWrite(); err != nil {
		return err
	}
	if _, err := c.w.Write(buf); err != nil {
		return err
	}
	return c.w.Flush()
}

// Recv blocks for the next message, honoring the armed per-operation
// deadline.
func (c *Conn) Recv() (Message, Header, error) {
	if err := c.armRead(); err != nil {
		return nil, Header{}, err
	}
	return ReadMessage(c.r)
}

// RecvXID reads messages until one carrying xid arrives. Along the way it
// transparently answers the peer's Echo requests (keeping the channel's
// liveness protocol running) and discards unrelated messages, so callers can
// match request/reply pairs over a channel with interleaved traffic. A peer
// ErrorMsg carrying the awaited XID is returned with a *RemoteError.
func (c *Conn) RecvXID(xid uint32) (Message, Header, error) {
	for {
		msg, h, err := c.Recv()
		if err != nil {
			return nil, Header{}, err
		}
		if e, ok := msg.(Echo); ok && !e.Reply {
			if err := c.SendXID(Echo{Reply: true, Data: e.Data}, h.XID); err != nil {
				return nil, Header{}, err
			}
			continue
		}
		if h.XID != xid {
			continue
		}
		if e, ok := msg.(ErrorMsg); ok {
			return msg, h, &RemoteError{Code: e.Code, Data: e.Data}
		}
		return msg, h, nil
	}
}

// Request sends msg and blocks for the XID-matched reply.
func (c *Conn) Request(msg Message) (Message, Header, error) {
	xid, err := c.Send(msg)
	if err != nil {
		return nil, Header{}, err
	}
	return c.RecvXID(xid)
}

// Ping probes channel liveness with an Echo round-trip carrying data. It
// fails on any transport error, on a timeout (arm SetIOTimeout first), or
// when the peer's reply does not mirror the payload.
func (c *Conn) Ping(data []byte) error {
	msg, _, err := c.Request(Echo{Data: data})
	if err != nil {
		return fmt.Errorf("openflow: ping: %w", err)
	}
	e, ok := msg.(Echo)
	if !ok || !e.Reply || !bytes.Equal(e.Data, data) {
		return fmt.Errorf("openflow: ping: unexpected reply %v", msg.MsgType())
	}
	return nil
}

// Close closes the underlying transport.
func (c *Conn) Close() error { return c.raw.Close() }

// Dial opens a control channel to addr over TCP with the default connect +
// handshake timeout.
func Dial(addr string) (*Conn, error) {
	return DialTimeout(addr, DefaultDialTimeout)
}

// DialTimeout opens a control channel to addr over TCP, bounding both the
// TCP connect and the Hello handshake by d (d <= 0 means no bound, the
// historical hang-forever behaviour). The returned Conn has no per-operation
// deadline armed; callers wanting bounded reads and writes call
// SetIOTimeout.
func DialTimeout(addr string, d time.Duration) (*Conn, error) {
	var (
		nc  net.Conn
		err error
	)
	if d > 0 {
		nc, err = net.DialTimeout("tcp", addr, d)
	} else {
		nc, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("openflow: dial %s: %w", addr, err)
	}
	c := NewConn(nc)
	if d > 0 {
		c.SetIOTimeout(d)
	}
	if err := c.Handshake(); err != nil {
		_ = nc.Close()
		return nil, err
	}
	c.SetIOTimeout(0)
	return c, nil
}

// Listener accepts control channels.
type Listener struct {
	l net.Listener
	// HandshakeTimeout bounds the Hello exchange of each accepted channel;
	// zero selects DefaultHandshakeTimeout and negative disables the bound.
	HandshakeTimeout time.Duration
}

// Listen starts a control-channel listener on addr (e.g. "127.0.0.1:0").
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("openflow: listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept blocks for the next channel and performs the handshake, bounded by
// the listener's handshake timeout.
func (l *Listener) Accept() (*Conn, error) {
	nc, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	c := NewConn(nc)
	d := l.HandshakeTimeout
	if d == 0 {
		d = DefaultHandshakeTimeout
	}
	if d > 0 {
		c.SetIOTimeout(d)
	}
	if err := c.Handshake(); err != nil {
		_ = nc.Close()
		return nil, err
	}
	c.SetIOTimeout(0)
	return c, nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }
