package openflow

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

// roundTrip encodes and re-decodes a message, failing on any mismatch.
func roundTrip(t *testing.T, msg Message, xid uint32) {
	t.Helper()
	buf, err := Encode(msg, xid)
	if err != nil {
		t.Fatalf("Encode(%T): %v", msg, err)
	}
	got, h, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode(%T): %v", msg, err)
	}
	if h.XID != xid {
		t.Fatalf("xid = %d, want %d", h.XID, xid)
	}
	if h.Type != msg.MsgType() {
		t.Fatalf("type = %v, want %v", h.Type, msg.MsgType())
	}
	if int(h.Length) != len(buf) {
		t.Fatalf("length = %d, buffer %d", h.Length, len(buf))
	}
	// Normalize nil vs empty slices before the deep comparison.
	if !reflect.DeepEqual(normalize(got), normalize(msg)) {
		t.Fatalf("round trip: got %#v, want %#v", got, msg)
	}
}

func normalize(m Message) Message {
	switch v := m.(type) {
	case Echo:
		if len(v.Data) == 0 {
			v.Data = nil
		}
		return v
	case PacketIn:
		if len(v.Data) == 0 {
			v.Data = nil
		}
		return v
	case PacketOut:
		if len(v.Data) == 0 {
			v.Data = nil
		}
		return v
	case ErrorMsg:
		if len(v.Data) == 0 {
			v.Data = nil
		}
		return v
	default:
		return m
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	match := Match{FlowID: 7, Src: 3, Dst: 21}
	msgs := []Message{
		Hello{},
		Echo{Data: []byte("ping")},
		Echo{Reply: true, Data: []byte("pong")},
		Echo{},
		FeaturesRequest{},
		FeaturesReply{DatapathID: 0xdeadbeef01020304, NumTables: 2, Hybrid: true},
		FeaturesReply{DatapathID: 1},
		FlowMod{Command: FlowAdd, Priority: 100, Match: match, NextHop: 9},
		FlowMod{Command: FlowDelete, Match: match},
		FlowMod{Command: FlowDeleteAll},
		PacketIn{BufferID: 5, Reason: ReasonNoMatch, Match: match, Data: []byte{1, 2, 3}},
		PacketOut{BufferID: 5, NextHop: 2, Data: []byte{9}},
		RoleRequest{Role: RoleMaster, GenerationID: 42},
		RoleReply{Role: RoleSlave, GenerationID: 43},
		BarrierRequest{},
		BarrierReply{},
		ErrorMsg{Code: 17, Data: []byte("bad flow mod")},
	}
	for i, m := range msgs {
		roundTrip(t, m, uint32(i*13+1))
	}
}

func TestRoundTripEchoQuick(t *testing.T) {
	f := func(data []byte, xid uint32, reply bool) bool {
		if len(data) > MaxMessageLen-HeaderLen {
			data = data[:MaxMessageLen-HeaderLen]
		}
		msg := Echo{Reply: reply, Data: data}
		buf, err := Encode(msg, xid)
		if err != nil {
			return false
		}
		got, h, err := Decode(buf)
		if err != nil || h.XID != xid {
			return false
		}
		e, ok := got.(Echo)
		return ok && e.Reply == reply && bytes.Equal(e.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripFlowModQuick(t *testing.T) {
	f := func(prio uint16, flowID, src, dst, nh uint32, cmdSel uint8) bool {
		cmd := FlowModCommand(cmdSel%3) + FlowAdd
		msg := FlowMod{
			Command:  cmd,
			Priority: prio,
			Match:    Match{FlowID: flowID, Src: src, Dst: dst},
			NextHop:  nh,
		}
		buf, err := Encode(msg, 1)
		if err != nil {
			return false
		}
		got, _, err := Decode(buf)
		if err != nil {
			return false
		}
		fm, ok := got.(FlowMod)
		return ok && fm == msg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	buf, err := Encode(Hello{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf[0] = 0x01
	if _, _, err := Decode(buf); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("error = %v, want ErrBadVersion", err)
	}
}

func TestDecodeRejectsUnknownType(t *testing.T) {
	buf, err := Encode(Hello{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf[1] = 0xEE
	if _, _, err := Decode(buf); !errors.Is(err, ErrBadType) {
		t.Fatalf("error = %v, want ErrBadType", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	buf, err := Encode(FlowMod{Command: FlowAdd, Match: Match{FlowID: 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := Decode(buf[:cut]); err == nil {
			t.Fatalf("Decode accepted a %d-byte prefix of a %d-byte message", cut, len(buf))
		}
	}
}

func TestDecodeRejectsBadFlowModCommand(t *testing.T) {
	buf, err := Encode(FlowMod{Command: FlowAdd, Match: Match{}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf[HeaderLen] = 99
	if _, _, err := Decode(buf); !errors.Is(err, ErrBadEncoding) {
		t.Fatalf("error = %v, want ErrBadEncoding", err)
	}
}

func TestDecodeRejectsBadRole(t *testing.T) {
	buf, err := Encode(RoleRequest{Role: RoleMaster}, 1)
	if err != nil {
		t.Fatal(err)
	}
	byteOrder.PutUint32(buf[HeaderLen:], 77)
	if _, _, err := Decode(buf); !errors.Is(err, ErrBadEncoding) {
		t.Fatalf("error = %v, want ErrBadEncoding", err)
	}
}

func TestDecodeDeclaredLengthBelowHeader(t *testing.T) {
	buf, err := Encode(Hello{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	byteOrder.PutUint16(buf[2:4], 3)
	if _, _, err := Decode(buf); !errors.Is(err, ErrBadEncoding) {
		t.Fatalf("error = %v, want ErrBadEncoding", err)
	}
}

func TestEncodeRejectsOversized(t *testing.T) {
	big := Echo{Data: make([]byte, MaxMessageLen)}
	if _, err := Encode(big, 1); !errors.Is(err, ErrTooLong) {
		t.Fatalf("error = %v, want ErrTooLong", err)
	}
}

func TestReadMessageStream(t *testing.T) {
	var stream bytes.Buffer
	want := []Message{
		Hello{},
		FlowMod{Command: FlowAdd, Priority: 9, Match: Match{FlowID: 4, Src: 1, Dst: 2}, NextHop: 3},
		Echo{Data: []byte("x")},
		BarrierRequest{},
	}
	for i, m := range want {
		if err := WriteMessage(&stream, m, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, wantMsg := range want {
		got, h, err := ReadMessage(&stream)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if h.XID != uint32(i) {
			t.Fatalf("message %d xid = %d", i, h.XID)
		}
		if !reflect.DeepEqual(normalize(got), normalize(wantMsg)) {
			t.Fatalf("message %d: got %#v want %#v", i, got, wantMsg)
		}
	}
}

func TestDecodeMutatedBytesNeverPanics(t *testing.T) {
	seed, err := Encode(PacketIn{BufferID: 1, Reason: ReasonNoMatch, Match: Match{FlowID: 2}, Data: []byte("abc")}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(seed); pos++ {
		for _, val := range []byte{0x00, 0x01, 0x7f, 0xff} {
			mut := append([]byte(nil), seed...)
			mut[pos] = val
			// Must not panic; errors are fine.
			_, _, _ = Decode(mut)
		}
	}
}
