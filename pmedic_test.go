package pmedic

import (
	"errors"
	"testing"
	"time"
)

func fixtures(t *testing.T) (*Deployment, *Workload) {
	t.Helper()
	dep, err := ATT()
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload(dep, WorkloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return dep, w
}

func TestFacadeEndToEnd(t *testing.T) {
	dep, w := fixtures(t)
	sc, err := NewScenario(dep, w, []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := PM(sc)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := RetroFlow(sc)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := PG(sc)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Report.RecoveredFlows <= rf.Report.RecoveredFlows {
		t.Fatalf("headline case: PM recovered %d, RetroFlow %d — PM must win",
			pm.Report.RecoveredFlows, rf.Report.RecoveredFlows)
	}
	if pm.Report.TotalProg <= rf.Report.TotalProg {
		t.Fatalf("headline case: PM total %d, RetroFlow %d", pm.Report.TotalProg, rf.Report.TotalProg)
	}
	if pg.Report.RecoveredFlows < pm.Report.RecoveredFlows {
		t.Fatalf("PG recovered %d < PM %d", pg.Report.RecoveredFlows, pm.Report.RecoveredFlows)
	}
	// PG pays the middle layer: higher per-flow overhead than PM.
	if pg.Report.PerFlowOverheadMs <= pm.Report.PerFlowOverheadMs {
		t.Fatalf("PG overhead %v <= PM %v", pg.Report.PerFlowOverheadMs, pm.Report.PerFlowOverheadMs)
	}
}

func TestFacadeOptimalSmallBudget(t *testing.T) {
	dep, w := fixtures(t)
	sc, err := NewScenario(dep, w, []int{4}) // tiny Florida-domain case
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimal(sc, OptimalOptions{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := PM(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Objective+1e-9 < pm.Report.Objective && pm.Report.WithinBudget {
		t.Fatalf("Optimal objective %v below budget-feasible PM %v",
			res.Report.Objective, pm.Report.Objective)
	}
}

func TestFacadeSweep(t *testing.T) {
	dep, w := fixtures(t)
	algs := Algorithms(time.Second)[:3] // heuristics only: fast
	cases, err := Sweep(dep, w, 1, algs)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 6 {
		t.Fatalf("cases = %d", len(cases))
	}
	for _, c := range cases {
		for _, name := range []string{"PM", "RetroFlow", "PG"} {
			if c.Report(name) == nil {
				t.Fatalf("case %s missing %s", c.Label, name)
			}
		}
	}
}

func TestFacadeSimulate(t *testing.T) {
	dep, w := fixtures(t)
	n, err := Simulate(dep, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.FailControllers(3); err != nil {
		t.Fatal(err)
	}
	sc, err := NewScenario(dep, w, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := PM(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.ApplyRecovery(sc, res.Solution); err != nil {
		t.Fatal(err)
	}
	tr, err := n.Inject(sc.FlowIDs[0])
	if err != nil || !tr.Delivered {
		t.Fatalf("delivery after recovery: %v %+v", err, tr)
	}
}

func TestFacadeScenarioValidation(t *testing.T) {
	dep, w := fixtures(t)
	if _, err := NewScenario(dep, w, nil); err == nil {
		t.Fatal("empty failure set must be rejected")
	}
	if _, err := NewScenario(dep, w, []int{0, 1, 2, 3, 4, 5}); err == nil {
		t.Fatal("all-failed must be rejected")
	}
}

func TestErrNoResultIsMatchable(t *testing.T) {
	if !errors.Is(ErrNoResult, ErrNoResult) {
		t.Fatal("sentinel broken")
	}
}
