// Command pmsim regenerates the paper's evaluation: for a given failure
// scenario (1, 2, or 3 simultaneous controller failures) it runs PM,
// RetroFlow, PG, and Optimal over every failure combination and prints the
// series behind each panel of Figs. 4, 5, and 6, plus the Fig. 7 computation-
// time comparison.
//
// Usage:
//
//	pmsim [-scenario 1|2|3|all] [-skip-optimal] [-opt-time 60s] [-opt-workers n]
//	      [-lambda 0.001] [-workers n] [-sweep-mode delta|scratch]
//	      [-regions k] [-improve-rounds n]
//	      [-cpuprofile f] [-memprofile f]
//
// With -scale n it instead runs a synthetic-deployment smoke at n switches:
// a depth-1 sweep with the fast heuristics over all-pairs traffic, printing
// per-case equivalence-class compression (the class-aggregated solver path is
// the one under test). CI runs `pmsim -scale 100` as a smoke check.
//
// -regions k switches the planner to the hierarchical region-sharded PM
// (internal/region): in figure mode PM-H joins the comparator table, in scale
// mode the deployment is built clustered and each case is solved with PM-H,
// planning every region against only its local controllers (see DESIGN.md
// §15). -improve-rounds bounds its anytime improver; -dry-run builds and
// partitions the deployment, prints the region layout, and exits without
// generating the workload (the CI smoke for the 1000-node path).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"pmedic/internal/core"
	"pmedic/internal/eval"
	"pmedic/internal/flow"
	"pmedic/internal/opt"
	"pmedic/internal/prof"
	"pmedic/internal/region"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
}

type config struct {
	scenarios   []int
	skipOptimal bool
	optTime     time.Duration
	optWorkers  int
	lambda      float64
	slack       int
	csvDir      string
	workers     int
	sweepMode   eval.SweepMode
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("pmsim", flag.ContinueOnError)
	scenarioFlag := fs.String("scenario", "all", "failure scenario: 1, 2, 3, or all")
	skipOptimal := fs.Bool("skip-optimal", false, "skip the Optimal (branch & bound) comparator")
	optTime := fs.Duration("opt-time", 60*time.Second, "time budget per case for Optimal")
	optWorkers := fs.Int("opt-workers", 0, "branch & bound worker goroutines per Optimal solve (0 = 1)")
	lambda := fs.Float64("lambda", 0, "objective weight λ (0 = default)")
	slack := fs.Int("slack", 0, "path-count hop slack (0 = default)")
	csvDir := fs.String("csv", "", "also write each figure panel as CSV into this directory")
	workers := fs.Int("workers", 0, "concurrent failure cases per sweep (0 = one per CPU, 1 = sequential)")
	sweepMode := fs.String("sweep-mode", "delta", "sweep case compilation: delta (incremental Gray chains) or scratch (per-case rebuild)")
	scale := fs.Int("scale", 0, "run a synthetic scale smoke at this many switches instead of the paper figures")
	regions := fs.Int("regions", 0, "shard the WAN into this many regions and solve hierarchically (0 = flat)")
	improveRounds := fs.Int("improve-rounds", 0, "anytime improver rounds after the hierarchical solve (0 = off)")
	dryRun := fs.Bool("dry-run", false, "with -scale: build and partition the deployment, then exit without solving")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stop, perr := prof.Start(*cpuProfile, *memProfile)
	if perr != nil {
		return perr
	}
	defer func() {
		if serr := stop(); serr != nil && err == nil {
			err = serr
		}
	}()
	cfg := config{
		skipOptimal: *skipOptimal,
		optTime:     *optTime,
		optWorkers:  *optWorkers,
		lambda:      *lambda,
		slack:       *slack,
		csvDir:      *csvDir,
		workers:     *workers,
	}
	if cfg.sweepMode, err = eval.ParseSweepMode(*sweepMode); err != nil {
		return err
	}
	if *scale > 0 {
		return runScale(out, *scale, *regions, *improveRounds, *dryRun)
	}
	if *dryRun {
		return errors.New("-dry-run needs -scale")
	}
	switch *scenarioFlag {
	case "all":
		cfg.scenarios = []int{1, 2, 3}
	case "1", "2", "3":
		k, _ := strconv.Atoi(*scenarioFlag)
		cfg.scenarios = []int{k}
	default:
		return fmt.Errorf("invalid -scenario %q", *scenarioFlag)
	}

	dep, err := topo.ATT()
	if err != nil {
		return err
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{Slack: cfg.slack})
	if err != nil {
		return err
	}

	// One scenario context serves all sweeps: Figs. 4–6 differ only in which
	// controllers fail, never in the topology or workload.
	sctx, err := scenario.NewContext(dep, flows)
	if err != nil {
		return err
	}
	algs := Algorithms(cfg.lambda, cfg.skipOptimal, cfg.optTime, cfg.optWorkers)
	if *regions > 0 {
		part, err := region.New(dep, *regions, 1)
		if err != nil {
			return err
		}
		algs = append(algs, eval.HierPM(part, region.SolveOptions{ImproveRounds: *improveRounds}))
	}
	for _, k := range cfg.scenarios {
		cases, err := eval.SweepOpts(dep, flows, k, algs, eval.Options{Workers: cfg.workers, Mode: cfg.sweepMode, Context: sctx})
		if err != nil {
			return err
		}
		printScenario(out, k, cases, algNames(algs))
		if cfg.csvDir != "" {
			if err := exportCSV(cfg.csvDir, k, cases, algNames(algs)); err != nil {
				return err
			}
		}
	}
	return nil
}

// runScale is the -scale smoke: a deterministic n-switch synthetic deployment
// with all-pairs traffic, swept at depth 1 with the fast heuristics. It prints
// the equivalence-class compression of every case — the class-aggregated
// solver path the million-flow benchmark exercises — and fails loudly if any
// case cannot be solved or recovers nothing.
//
// With regions > 0 the deployment is built clustered, the controller count
// scales with n (one per ~20 switches), and every case is solved with the
// hierarchical PM-H instead of the flat trio — the regime where a flat solve
// cannot finish. dryRun stops after building and partitioning.
func runScale(out io.Writer, n, regions, improveRounds int, dryRun bool) error {
	m := 8
	if regions > 0 && n/20 > m {
		m = n / 20
	}
	const seed = 1
	build := func(capacity int) (*topo.Deployment, error) {
		if regions > 0 {
			return topo.SyntheticWithOpts(n, m, capacity, topo.SyntheticOpts{Seed: seed, Regions: regions})
		}
		return topo.Synthetic(n, m, capacity)
	}
	start := time.Now()
	// Synthetic needs the controller capacity up front, but the right value
	// depends on the workload. The graph is deterministic in n, so: build once
	// with a placeholder, generate the flows, size capacity off the largest
	// pre-failure domain load, and rebuild the deployment around it.
	dep, err := build(1)
	if err != nil {
		return err
	}
	if dryRun {
		return dryRunScale(out, dep, n, m, regions, seed, start)
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		return err
	}
	maxLoad := 0
	for _, c := range dep.Controllers {
		load := 0
		for _, sw := range c.Domain {
			load += flows.SwitchFlowCount(sw)
		}
		if load > maxLoad {
			maxLoad = load
		}
	}
	capacity := maxLoad + maxLoad/2 + 1
	if dep, err = build(capacity); err != nil {
		return err
	}
	sctx, err := scenario.NewContext(dep, flows)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "scale smoke: %d switches, %d controllers (capacity %d), %d flows [setup %s]\n\n",
		n, m, capacity, flows.Len(), time.Since(start).Round(time.Millisecond))

	if regions > 0 {
		part, err := region.New(dep, regions, seed)
		if err != nil {
			return err
		}
		if err := runScaleHier(out, sctx, part, m, improveRounds); err != nil {
			return err
		}
	} else if err := runScaleFlat(out, sctx, m); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nscale smoke passed in %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// dryRunScale prints the deployment and region layout without generating the
// workload: the cheap CI smoke for the 1000-node hierarchical path.
func dryRunScale(out io.Writer, dep *topo.Deployment, n, m, regions int, seed uint64, start time.Time) error {
	if err := dep.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(out, "dry run: %d switches, %d controllers, %d edges\n",
		n, m, dep.Graph.NumEdges())
	if regions > 0 {
		part, err := region.New(dep, regions, seed)
		if err != nil {
			return err
		}
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintf(w, "REGION\tCONTROLLERS\tSWITCHES\tADJACENT\n")
		for r := 0; r < part.K; r++ {
			fmt.Fprintf(w, "%d\t%d\t%d\t%v\n",
				r, len(part.Controllers[r]), part.SwitchCount[r], part.Adjacent[r])
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(out, "border switches: %d, cut edges: %d\n", len(part.Border), part.CutEdges())
	}
	fmt.Fprintf(out, "dry run passed in %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runScaleFlat sweeps all single failures with the flat heuristic trio.
func runScaleFlat(out io.Writer, sctx *scenario.Context, m int) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "CASE\tOFFLINE FLOWS\tCLASSES\tFLOWS/CLASS\tPM PROG\tRETROFLOW PROG\tPG PROG\tPM TIME\n")
	for j := 0; j < m; j++ {
		inst, err := sctx.Build([]int{j})
		if err != nil {
			return fmt.Errorf("case {%d}: %w", j, err)
		}
		classes := inst.Problem.ClassCount()
		if classes <= 0 {
			return fmt.Errorf("case {%d}: not class-aggregable (classes=%d)", j, classes)
		}
		prog := make(map[string]int, 3)
		var pmTime time.Duration
		for _, alg := range []struct {
			name string
			run  func(*core.Problem) (*core.Solution, error)
		}{{"PM", core.PM}, {"RetroFlow", core.RetroFlow}, {"PG", core.PG}} {
			sol, err := alg.run(inst.Problem)
			if err != nil {
				return fmt.Errorf("case {%d}: %s: %w", j, alg.name, err)
			}
			rep, err := inst.Evaluate(sol)
			if err != nil {
				return fmt.Errorf("case {%d}: %s: %w", j, alg.name, err)
			}
			if rep.RecoveredFlows == 0 {
				return fmt.Errorf("case {%d}: %s recovered no flows", j, alg.name)
			}
			prog[alg.name] = rep.TotalProg
			if alg.name == "PM" {
				pmTime = sol.Runtime
			}
		}
		fmt.Fprintf(w, "{%d}\t%d\t%d\t%.1f\t%d\t%d\t%d\t%s\n",
			j, inst.Problem.NumFlows, classes,
			float64(inst.Problem.NumFlows)/float64(classes),
			prog["PM"], prog["RetroFlow"], prog["PG"],
			pmTime.Round(10*time.Microsecond))
	}
	return w.Flush()
}

// runScaleHier sweeps all single failures with the hierarchical PM-H.
func runScaleHier(out io.Writer, sctx *scenario.Context, part *region.Partition, m, improveRounds int) error {
	sopts := region.SolveOptions{ImproveRounds: improveRounds}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "CASE\tREGION\tOFFLINE FLOWS\tPM-H PROG\tRECOVERED\tTIME\n")
	for j := 0; j < m; j++ {
		inst, err := sctx.Build([]int{j})
		if err != nil {
			return fmt.Errorf("case {%d}: %w", j, err)
		}
		sol, err := region.SolvePM(inst, part, sopts)
		if err != nil {
			return fmt.Errorf("case {%d}: PM-H: %w", j, err)
		}
		rep, err := inst.Evaluate(sol)
		if err != nil {
			return fmt.Errorf("case {%d}: PM-H: %w", j, err)
		}
		if rep.RecoveredFlows == 0 {
			return fmt.Errorf("case {%d}: PM-H recovered no flows", j)
		}
		fmt.Fprintf(w, "{%d}\t%d\t%d\t%d\t%d/%d\t%s\n",
			j, part.ControllerRegion[j], inst.Problem.NumFlows,
			rep.TotalProg, rep.RecoveredFlows, inst.OfflineFlowCount(),
			sol.Runtime.Round(10*time.Microsecond))
	}
	return w.Flush()
}

// exportCSV writes every panel of the scenario's figure as a CSV file.
func exportCSV(dir string, k int, cases []*eval.CaseResult, names []string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	fig := map[int]string{1: "fig4", 2: "fig5", 3: "fig6"}[k]
	panels := []struct {
		suffix string
		metric eval.Metric
	}{
		{"a_programmability_box", eval.MetricProgBox()},
		{"b_total_prog_pct_of_retroflow", eval.MetricTotalProgPct("RetroFlow")},
		{"c_recovered_flows_pct", eval.MetricRecoveredFlowPct()},
		{"d_recovered_switches_pct", eval.MetricRecoveredSwitchPct()},
		{"e_controller_load", eval.MetricControllerLoad()},
		{"f_per_flow_overhead_ms", eval.MetricPerFlowOverhead()},
		{"runtime_micros", eval.MetricRuntimeMicros()},
	}
	for _, p := range panels {
		path := filepath.Join(dir, fig+p.suffix+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := eval.WriteCSV(f, cases, names, p.metric); err != nil {
			_ = f.Close()
			return fmt.Errorf("export %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Algorithms builds the comparator list. λ = 0 selects the default weight.
func Algorithms(lambda float64, skipOptimal bool, optTime time.Duration, optWorkers int) []eval.Algorithm {
	withLambda := func(inst *scenario.Instance) *core.Problem {
		if lambda > 0 {
			inst.Problem.Lambda = lambda
		}
		return inst.Problem
	}
	algs := []eval.Algorithm{
		{Name: "PM", Run: func(inst *scenario.Instance) (*core.Solution, error) {
			return core.PM(withLambda(inst))
		}},
		{Name: "RetroFlow", Run: func(inst *scenario.Instance) (*core.Solution, error) {
			return core.RetroFlow(withLambda(inst))
		}},
		{Name: "PG", Run: func(inst *scenario.Instance) (*core.Solution, error) {
			return core.PG(withLambda(inst))
		}},
	}
	if !skipOptimal {
		solve := func(inst *scenario.Instance, warm *core.Solution) (*core.Solution, error) {
			sol, err := opt.Solve(inst.Problem, opt.Options{
				TimeLimit: optTime,
				Workers:   optWorkers,
				Warm:      warm,
			})
			if errors.Is(err, opt.ErrNoSolution) {
				return nil, fmt.Errorf("%w: %v", eval.ErrNoResult, err)
			}
			return sol, err
		}
		algs = append(algs, eval.Algorithm{
			Name: "Optimal",
			// Direct runs compute the PM warm start themselves.
			Run: func(inst *scenario.Instance) (*core.Solution, error) {
				warm, err := core.PM(withLambda(inst))
				if err != nil {
					warm = nil
				}
				return solve(inst, warm)
			},
			// In a sweep the harness hands over the PM solution already
			// computed for the case, so the warm start is free.
			RunSeeded: func(inst *scenario.Instance, prior map[string]*core.Solution) (*core.Solution, error) {
				warm := prior["PM"]
				if warm == nil {
					warm, _ = core.PM(withLambda(inst))
				}
				return solve(inst, warm)
			},
		})
	}
	return algs
}

func algNames(algs []eval.Algorithm) []string {
	names := make([]string, len(algs))
	for i, a := range algs {
		names[i] = a.Name
	}
	return names
}

func printScenario(out io.Writer, k int, cases []*eval.CaseResult, names []string) {
	figure := map[int]string{1: "Fig. 4", 2: "Fig. 5", 3: "Fig. 6"}[k]
	fmt.Fprintf(out, "================ %d controller failure(s): %s (%d cases) ================\n\n",
		k, figure, len(cases))

	section(out, figure+"(a) Path programmability of recovered flows (min/q1/median/q3/max)")
	table(out, cases, names, func(c *eval.CaseResult, name string) string {
		box, ok := c.ProgBox(name)
		if !ok {
			return "-"
		}
		return fmt.Sprintf("%.0f/%.0f/%.1f/%.0f/%.0f", box.Min, box.Q1, box.Median, box.Q3, box.Max)
	})

	section(out, figure+"(b) Total path programmability, % of RetroFlow")
	table(out, cases, names, func(c *eval.CaseResult, name string) string {
		pct, ok := c.TotalProgPctOf(name, "RetroFlow")
		if !ok {
			return "-"
		}
		return fmt.Sprintf("%.0f%%", pct)
	})

	section(out, figure+"(c) Recovered programmable flows, % of offline flows")
	table(out, cases, names, func(c *eval.CaseResult, name string) string {
		pct, ok := c.RecoveredFlowPct(name)
		if !ok {
			return "-"
		}
		return fmt.Sprintf("%.0f%%", pct)
	})

	if k >= 2 {
		section(out, figure+"(d) Recovered offline switches")
		table(out, cases, names, func(c *eval.CaseResult, name string) string {
			rep := c.Report(name)
			if rep == nil {
				return "-"
			}
			return fmt.Sprintf("%d/%d", rep.RecoveredSwitches, len(c.Instance.Switches))
		})

		section(out, figure+"(e) Control resource used on active controllers (Σ load / Σ residual)")
		table(out, cases, names, func(c *eval.CaseResult, name string) string {
			rep := c.Report(name)
			if rep == nil {
				return "-"
			}
			used := 0
			for _, l := range rep.ControllerLoad {
				used += l
			}
			return fmt.Sprintf("%d/%d", used, c.Instance.Problem.TotalRest())
		})
	}

	suffix := "(d)"
	if k >= 2 {
		suffix = "(f)"
	}
	section(out, figure+suffix+" Per-flow communication overhead (ms)")
	table(out, cases, names, func(c *eval.CaseResult, name string) string {
		ms, ok := c.PerFlowOverheadMs(name)
		if !ok {
			return "-"
		}
		return fmt.Sprintf("%.3f", ms)
	})

	section(out, "Fig. 7 input: computation time")
	table(out, cases, names, func(c *eval.CaseResult, name string) string {
		rep := c.Report(name)
		if rep == nil {
			return "-"
		}
		return rep.Runtime.Round(10 * time.Microsecond).String()
	})
	if hasAlg(names, "Optimal") {
		var sumPct float64
		n := 0
		for _, c := range cases {
			if pct, ok := c.RuntimePct("PM", "Optimal"); ok {
				sumPct += pct
				n++
			}
		}
		if n > 0 {
			fmt.Fprintf(out, "Fig. 7: PM computation time = %.2f%% of Optimal on average (%d cases with results)\n\n",
				sumPct/float64(n), n)
		}
	}
}

func hasAlg(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

func section(out io.Writer, title string) {
	fmt.Fprintln(out, title)
	fmt.Fprintln(out, strings.Repeat("-", len(title)))
}

func table(out io.Writer, cases []*eval.CaseResult, names []string, cell func(*eval.CaseResult, string) string) {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "CASE\t%s\n", strings.Join(names, "\t"))
	for _, c := range cases {
		row := make([]string, len(names))
		for i, name := range names {
			row[i] = cell(c, name)
		}
		fmt.Fprintf(w, "%s\t%s\n", c.Label, strings.Join(row, "\t"))
	}
	_ = w.Flush()
	fmt.Fprintln(out)
}
