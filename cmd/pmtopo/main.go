// Command pmtopo prints the embedded evaluation topology: its nodes, links,
// controller domains, and the per-switch flow counts — the reproduction's
// equivalent of the paper's Table III — plus the residual control capacity
// of every controller.
//
// Usage:
//
//	pmtopo [-unordered] [-slack n] [-limit n]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"pmedic/internal/flow"
	"pmedic/internal/graphalg"
	"pmedic/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pmtopo:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("pmtopo", flag.ContinueOnError)
	unordered := fs.Bool("unordered", false, "one flow per unordered node pair instead of per ordered pair")
	slack := fs.Int("slack", 0, "path-count hop slack (0 = default)")
	limit := fs.Int("limit", 0, "path-count cap (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	dep, err := topo.ATT()
	if err != nil {
		return err
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{Unordered: *unordered, Slack: *slack, Limit: *limit})
	if err != nil {
		return err
	}

	g := dep.Graph
	fmt.Fprintf(out, "Topology: %d nodes, %d undirected links (%d directed)\n",
		g.NumNodes(), g.NumEdges(), g.NumDirectedLinks())
	fmt.Fprintf(out, "Workload: %d flows, total per-switch traversals %d\n\n",
		flows.Len(), flows.TotalTraversals())

	betweenness := graphalg.Betweenness(g)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "NODE\tCITY\tDEGREE\tFLOWS (γ)\tBETWEENNESS")
	for _, n := range g.Nodes() {
		fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%.3f\n",
			n.ID, n.Name, g.Degree(n.ID), flows.SwitchFlowCount(n.ID), betweenness[n.ID])
	}
	if err := w.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(out, "\nControllers (Table III equivalent):")
	w = tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "CTRL\tSITE\tDOMAIN\tDOMAIN LOAD\tCAPACITY\tRESIDUAL")
	for j, c := range dep.Controllers {
		load := 0
		for _, sw := range c.Domain {
			load += flows.SwitchFlowCount(sw)
		}
		fmt.Fprintf(w, "C%d\t%d\t%v\t%d\t%d\t%d\n", j+1, c.Site, c.Domain, load, c.Capacity, c.Capacity-load)
	}
	return w.Flush()
}
