// Command benchdiff compares two `go test -json` benchmark streams (the
// BENCH_<n>.json baselines written by `make bench`) and prints a
// benchstat-style old/new/delta table.
//
// Usage:
//
//	benchdiff [old.json new.json]
//	benchdiff -gate 'BenchmarkFig5' -max-regress 0.20 old.json new.json
//	benchdiff -gate '...' -max-allocs-regress 0.10 old.json new.json
//
// With no positional arguments it discovers the two newest BENCH_<n>.json
// baselines in the current directory (highest n = new). With -gate, any
// benchmark whose name matches the regexp and whose ns/op regressed by more
// than -max-regress exits nonzero — the CI perf gate. When either stream was
// collected with -benchmem, B/op and allocs/op columns are shown as well;
// with -max-allocs-regress >= 0, gated benchmarks where both streams carry
// memory stats additionally fail on allocs/op regressions beyond that
// fraction (plus one alloc of absolute slack, since pooled paths can differ
// by a stray warm-up allocation between runs).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	gate := fs.String("gate", "", "regexp of benchmarks that must not regress")
	maxRegress := fs.Float64("max-regress", 0.20, "allowed ns/op regression for gated benchmarks (fraction)")
	maxAllocsRegress := fs.Float64("max-allocs-regress", -1, "allowed allocs/op regression for gated benchmarks (fraction; negative disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	oldPath, newPath, err := pickFiles(fs.Args())
	if err != nil {
		return err
	}
	oldRes, err := parseBenchJSON(oldPath)
	if err != nil {
		return fmt.Errorf("%s: %w", oldPath, err)
	}
	newRes, err := parseBenchJSON(newPath)
	if err != nil {
		return fmt.Errorf("%s: %w", newPath, err)
	}
	if len(oldRes) == 0 {
		return fmt.Errorf("%s: no benchmark results", oldPath)
	}
	if len(newRes) == 0 {
		return fmt.Errorf("%s: no benchmark results", newPath)
	}

	names := make([]string, 0, len(oldRes))
	for name := range oldRes {
		names = append(names, name)
	}
	for name := range newRes {
		if _, ok := oldRes[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var gateRe *regexp.Regexp
	if *gate != "" {
		gateRe, err = regexp.Compile(*gate)
		if err != nil {
			return fmt.Errorf("bad -gate: %w", err)
		}
	}

	// Memory columns appear only when at least one stream was collected with
	// -benchmem; mixed baselines (old without, new with) show "-" on the side
	// that lacks the stats.
	haveMem := false
	for _, r := range oldRes {
		haveMem = haveMem || r.hasMem
	}
	for _, r := range newRes {
		haveMem = haveMem || r.hasMem
	}

	fmt.Fprintf(out, "old: %s\nnew: %s\n\n", oldPath, newPath)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', tabwriter.AlignRight)
	if haveMem {
		fmt.Fprintf(w, "benchmark\told ns/op\tnew ns/op\tdelta\told B/op\tnew B/op\told allocs/op\tnew allocs/op\t\n")
	} else {
		fmt.Fprintf(w, "benchmark\told ns/op\tnew ns/op\tdelta\t\n")
	}
	memCols := func(o, n result, haveOld, haveNew bool) string {
		if !haveMem {
			return ""
		}
		cell := func(ok bool, v float64) string {
			if !ok {
				return "-"
			}
			return strconv.FormatFloat(v, 'f', 0, 64)
		}
		return fmt.Sprintf("%s\t%s\t%s\t%s\t",
			cell(haveOld && o.hasMem, o.bytes), cell(haveNew && n.hasMem, n.bytes),
			cell(haveOld && o.hasMem, o.allocs), cell(haveNew && n.hasMem, n.allocs))
	}
	var regressed []string
	for _, name := range names {
		o, haveOld := oldRes[name]
		n, haveNew := newRes[name]
		switch {
		case !haveOld:
			fmt.Fprintf(w, "%s\t-\t%.0f\tnew\t%s\n", name, n.ns, memCols(o, n, false, true))
		case !haveNew:
			fmt.Fprintf(w, "%s\t%.0f\t-\tgone\t%s\n", name, o.ns, memCols(o, n, true, false))
		default:
			delta := (n.ns - o.ns) / o.ns
			mark := ""
			if gateRe != nil && gateRe.MatchString(name) {
				if delta > *maxRegress {
					mark = "  REGRESSED"
					regressed = append(regressed, name)
				}
				// The allocs gate tolerates one alloc of absolute slack:
				// pooled solver paths legitimately differ by a stray warm-up
				// allocation between runs.
				if *maxAllocsRegress >= 0 && o.hasMem && n.hasMem &&
					n.allocs > o.allocs*(1+*maxAllocsRegress)+1 {
					if mark == "" {
						mark = "  REGRESSED(allocs)"
						regressed = append(regressed, name)
					}
				}
			}
			fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%+.1f%%%s\t%s\n", name, o.ns, n.ns, 100*delta, mark, memCols(o, n, true, true))
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d gated benchmark(s) regressed more than %.0f%%: %s",
			len(regressed), 100**maxRegress, strings.Join(regressed, ", "))
	}
	return nil
}

// pickFiles resolves the (old, new) pair: explicit positional args, or the
// two newest BENCH_<n>.json baselines in the current directory.
func pickFiles(args []string) (string, string, error) {
	switch len(args) {
	case 2:
		return args[0], args[1], nil
	case 0:
		matches, err := filepath.Glob("BENCH_*.json")
		if err != nil {
			return "", "", err
		}
		type baseline struct {
			path string
			n    int
		}
		var found []baseline
		for _, m := range matches {
			s := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(m), "BENCH_"), ".json")
			if n, err := strconv.Atoi(s); err == nil {
				found = append(found, baseline{m, n})
			}
		}
		if len(found) < 2 {
			return "", "", fmt.Errorf("need two BENCH_<n>.json baselines, found %d (run `make bench`)", len(found))
		}
		sort.Slice(found, func(i, j int) bool { return found[i].n < found[j].n })
		return found[len(found)-2].path, found[len(found)-1].path, nil
	default:
		return "", "", fmt.Errorf("want 0 or 2 file arguments, got %d", len(args))
	}
}

// event is the subset of test2json's output we care about.
type event struct {
	Action  string
	Package string
	Output  string
}

// result is one benchmark's measurements; bytes and allocs are populated
// only when the stream was produced with -benchmem (hasMem).
type result struct {
	ns     float64
	bytes  float64
	allocs float64
	hasMem bool
}

// benchLine matches a benchmark result, tolerating a -<GOMAXPROCS> name
// suffix so baselines from machines with different core counts compare,
// custom ReportMetric columns between ns/op and the memory stats, and
// optional -benchmem columns.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

// parseBenchJSON extracts name -> result from a `go test -json` stream.
// test2json fragments long lines across several output events, so the
// output text is reassembled per package before scanning for bench lines.
func parseBenchJSON(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	text := make(map[string]*strings.Builder)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("bad event line: %w", err)
		}
		if ev.Action != "output" {
			continue
		}
		b := text[ev.Package]
		if b == nil {
			b = &strings.Builder{}
			text[ev.Package] = b
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	results := make(map[string]result)
	for _, b := range text {
		for _, line := range strings.Split(b.String(), "\n") {
			m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			r := result{ns: ns}
			if m[3] != "" {
				if by, err := strconv.ParseFloat(m[3], 64); err == nil {
					if al, err := strconv.ParseFloat(m[4], 64); err == nil {
						r.bytes, r.allocs, r.hasMem = by, al, true
					}
				}
			}
			results[m[1]] = r
		}
	}
	return results, nil
}
