// Command pmstore compiles a plan store: it sweeps every controller-failure
// combination of the ATT deployment up to -depth with the parallel sweep
// engine, solves each case with the PM heuristic, delta-encodes the plans
// against the ideal mapping, and writes one mmap-ready binary the daemon
// serves failures from (pmedicd -plan-store).
//
// Usage:
//
//	pmstore -out att.pmps [-depth 2] [-sets 3,4;2,3,4] [-workers 0]
//	        [-sweep-mode delta|scratch] [-info]
//
// -sets compiles exactly the named failure sets (semicolon-separated lists
// of comma-separated controller indices) instead of a full depth sweep —
// the sparse-store mode for deployments where only some combinations are
// credible. -info opens an existing store and prints its header instead of
// compiling.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pmedic/internal/eval"
	"pmedic/internal/flow"
	"pmedic/internal/planstore"
	"pmedic/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pmstore:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pmstore", flag.ContinueOnError)
	outPath := fs.String("out", "att.pmps", "plan-store file to write")
	depth := fs.Int("depth", 2, "sweep every failure combination of size 1..depth")
	sets := fs.String("sets", "", "compile exactly these failure sets instead (e.g. '3,4;2,3,4')")
	workers := fs.Int("workers", 0, "solver concurrency (0 = one per CPU)")
	sweepMode := fs.String("sweep-mode", "delta", "sweep case compilation: delta (incremental Gray chains) or scratch (per-case rebuild)")
	info := fs.String("info", "", "print an existing store's header and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *info != "" {
		return printInfo(*info, out)
	}

	dep, err := topo.ATT()
	if err != nil {
		return err
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		return err
	}

	opts := planstore.CompileOptions{Depth: *depth, Workers: *workers}
	if opts.Mode, err = eval.ParseSweepMode(*sweepMode); err != nil {
		return err
	}
	if *sets != "" {
		if opts.Sets, err = parseSets(*sets); err != nil {
			return err
		}
	}
	stats, err := planstore.Compile(dep, flows, *outPath, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "pmstore: %s: %d plans up to depth %d, %d bytes (%d delta payload) in %v, topo %#x\n",
		*outPath, stats.Entries, stats.Depth, stats.Bytes, stats.PayloadBytes, stats.Elapsed.Round(stats.Elapsed/100+1), stats.TopoHash)
	return nil
}

// parseSets decodes '3,4;2,3,4' into [][]int{{3,4},{2,3,4}}.
func parseSets(s string) ([][]int, error) {
	var out [][]int
	for _, group := range strings.Split(s, ";") {
		group = strings.TrimSpace(group)
		if group == "" {
			continue
		}
		var set []int
		for _, part := range strings.Split(group, ",") {
			j, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, fmt.Errorf("-sets: %w", err)
			}
			set = append(set, j)
		}
		out = append(out, set)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-sets: no failure sets in %q", s)
	}
	return out, nil
}

func printInfo(path string, out io.Writer) error {
	st, err := planstore.Open(path)
	if err != nil {
		return err
	}
	defer st.Close()
	h := st.Header()
	fmt.Fprintf(out, "pmstore: %s: v%d, %d plans up to depth %d, alg %s, M=%d, topo %#x\n",
		path, h.Version, st.Len(), h.Depth, h.Algorithm, h.NumControllers, h.TopoHash)
	return nil
}
