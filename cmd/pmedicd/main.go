// Command pmedicd runs the online recovery daemon over a simulated SD-WAN:
// it boots the ATT deployment with an openflow agent per switch and an echo
// liveness endpoint per controller, starts the heartbeat failure detector
// (internal/monitor) and the event-driven recovery orchestrator
// (internal/medic), and serves the daemon's state over HTTP.
//
// With -state-dir the daemon is crash-safe and replicable: its reconciled
// state persists as snapshot+WAL (internal/store) in the directory, and a
// lease there (internal/election) elects one leader among every replica
// sharing it. Only the leader reconciles and pushes; followers tail the
// store read-only and serve /status from it. Failover is fenced: a new
// leader resumes at an epoch past everything the dead one persisted,
// stamps the matching OpenFlow generation ID onto the agents, and the
// predecessor's in-flight pushes and late WAL writes are both refused.
//
// Controller failures are injected either externally (the status endpoint
// tells you where the echo endpoints listen) or with the built-in chaos
// script: -kill fails a controller set after -kill-after, and -revive-after
// brings it back, demonstrating the full detect → re-plan → push →
// fail-back cycle.
//
// Usage:
//
//	pmedicd [-listen 127.0.0.1:8080] [-interval 500ms] [-timeout 0]
//	        [-threshold 3] [-debounce 0] [-jitter 0] [-seed 1]
//	        [-plan-store ""] [-state-dir ""] [-replica-id ""] [-peers ""]
//	        [-lease-ttl 2s] [-compact-every 0]
//	        [-kill 3,4] [-kill-after 5s] [-revive-after 10s]
//	        [-run-for 0] [-dry-run]
//
// With -plan-store the medic serves failure plans from a precompiled plan
// store (written by pmstore) instead of solving at failure time; the store's
// topology hash must match the deployment or the daemon refuses to boot.
// Unswept failure combinations fall back to superset projection + repair,
// then to a fresh solve.
//
// Durations given as 0 pick the detector's defaults (timeout = interval,
// jitter = interval/4, debounce = 2×interval). -run-for 0 runs until
// interrupted; SIGINT/SIGTERM drain the reconcile loop, flush the WAL,
// resign the lease, and exit 0. -dry-run builds the whole stack, prints
// the wiring, and exits without serving — the CI smoke mode.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"pmedic/internal/election"
	"pmedic/internal/flow"
	"pmedic/internal/medic"
	"pmedic/internal/monitor"
	"pmedic/internal/openflow"
	"pmedic/internal/planstore"
	"pmedic/internal/sdnsim"
	"pmedic/internal/store"
	"pmedic/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pmedicd:", err)
		os.Exit(1)
	}
}

type config struct {
	listen      string
	interval    time.Duration
	timeout     time.Duration
	threshold   int
	debounce    time.Duration
	jitter      time.Duration
	seed        int64
	kill        []int
	killAfter   time.Duration
	reviveAfter time.Duration
	runFor      time.Duration
	dryRun      bool

	// planStore points at a precompiled plan-store file (cmd/pmstore); the
	// medic serves failure plans from it instead of solving.
	planStore string

	// HA: a non-empty stateDir turns on persistence and leader election.
	stateDir     string
	replicaID    string
	peers        []string
	leaseTTL     time.Duration
	compactEvery int
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("pmedicd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8080", "HTTP status listen address")
	interval := fs.Duration("interval", 500*time.Millisecond, "probe interval per controller")
	timeout := fs.Duration("timeout", 0, "per-probe timeout (0 = interval)")
	threshold := fs.Int("threshold", 3, "consecutive misses before a controller is declared down")
	debounce := fs.Duration("debounce", 0, "failure-coalescing window (0 = 2×interval)")
	jitter := fs.Duration("jitter", 0, "probe schedule jitter (0 = interval/4)")
	seed := fs.Int64("seed", 1, "seed for probe schedules and push retry jitter")
	stateDir := fs.String("state-dir", "", "snapshot+WAL state directory; enables crash-safe HA mode")
	replicaID := fs.String("replica-id", "", "this replica's name in the leader lease (default pmedicd-<pid>)")
	peers := fs.String("peers", "", "comma-separated replica IDs expected to share -state-dir (informational)")
	leaseTTL := fs.Duration("lease-ttl", 2*time.Second, "leader lease validity; failover latency after SIGKILL is about one TTL")
	planStore := fs.String("plan-store", "", "precompiled plan-store file (see cmd/pmstore); failure plans are served from it instead of solved")
	compactEvery := fs.Int("compact-every", 0, "WAL records since the last checkpoint before the store asks for compaction (0 = medic default)")
	kill := fs.String("kill", "", "comma-separated controller indices the chaos script kills")
	killAfter := fs.Duration("kill-after", 5*time.Second, "delay before the chaos kill")
	reviveAfter := fs.Duration("revive-after", 10*time.Second, "delay before the killed controllers return (0 = never)")
	runFor := fs.Duration("run-for", 0, "total run time (0 = until interrupted)")
	dryRun := fs.Bool("dry-run", false, "build the stack, print the wiring, and exit")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	cfg := config{
		listen:       *listen,
		interval:     *interval,
		timeout:      *timeout,
		threshold:    *threshold,
		debounce:     *debounce,
		jitter:       *jitter,
		seed:         *seed,
		killAfter:    *killAfter,
		reviveAfter:  *reviveAfter,
		runFor:       *runFor,
		dryRun:       *dryRun,
		planStore:    *planStore,
		stateDir:     *stateDir,
		replicaID:    *replicaID,
		leaseTTL:     *leaseTTL,
		compactEvery: *compactEvery,
	}
	if cfg.replicaID == "" {
		cfg.replicaID = fmt.Sprintf("pmedicd-%d", os.Getpid())
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			cfg.peers = append(cfg.peers, strings.TrimSpace(p))
		}
	}
	if *kill != "" {
		for _, part := range strings.Split(*kill, ",") {
			j, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return config{}, fmt.Errorf("-kill: %w", err)
			}
			cfg.kill = append(cfg.kill, j)
		}
	}
	return cfg, nil
}

// stack is the simulated substrate every daemon role operates on: the
// network, an agent per switch, an echo endpoint per controller.
type stack struct {
	dep     *topo.Deployment
	flows   *flow.Set
	network *sdnsim.Network
	addrs   map[topo.NodeID]string
	echos   []*openflow.EchoServer
	targets []monitor.Target
	close   func()
}

func buildStack() (*stack, error) {
	dep, err := topo.ATT()
	if err != nil {
		return nil, err
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		return nil, err
	}
	network, err := sdnsim.New(dep, flows)
	if err != nil {
		return nil, err
	}
	s := &stack{dep: dep, flows: flows, network: network}

	agents := make(map[topo.NodeID]*sdnsim.Agent, len(network.Switches))
	echos := make([]*openflow.EchoServer, 0, len(network.Controllers))
	s.close = func() {
		for _, a := range agents {
			_ = a.Close()
		}
		for _, es := range echos {
			_ = es.Close()
		}
	}
	for _, sw := range network.Switches {
		a, err := sdnsim.ServeSwitch(sw, "127.0.0.1:0")
		if err != nil {
			s.close()
			return nil, err
		}
		agents[sw.ID] = a
	}
	s.addrs = sdnsim.AgentAddrs(agents)
	for range network.Controllers {
		es, err := openflow.ServeEcho("127.0.0.1:0")
		if err != nil {
			s.close()
			return nil, err
		}
		echos = append(echos, es)
	}
	s.echos = echos
	network.OnControllerChange = func(j int, alive bool) { echos[j].SetAlive(alive) }
	s.targets = make([]monitor.Target, len(network.Controllers))
	for j := range network.Controllers {
		s.targets[j] = monitor.Target{ID: j, Name: fmt.Sprintf("controller-%d", j), Addr: echos[j].Addr()}
	}
	return s, nil
}

// swapHandler atomically swaps the live HTTP surface as the replica moves
// between follower and leader.
type swapHandler struct{ v atomic.Value }

func (h *swapHandler) Set(inner http.Handler) { h.v.Store(inner) }
func (h *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.v.Load().(http.Handler).ServeHTTP(w, r)
}

// followerHandler serves a follower's read-only view: /status tailed from
// the shared store, /metrics with just the leader gauge, /healthz.
func followerHandler(dir, id string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		st, err := medic.ReadStatus(dir)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		st.Replica = id
		st.Role = "follower"
		if lease, err := election.Leader(dir); err == nil {
			st.Term = lease.Term
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, "# HELP pmedicd_leader 1 when this replica holds the leader lease, 0 otherwise.\n# TYPE pmedicd_leader gauge\npmedicd_leader 0\n")
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		_, _ = fmt.Fprintln(w, "ok")
	})
	return mux
}

// daemon is one pmedicd replica: always the stack and the HTTP surface,
// plus — while leading — the store, detector, and reconcile loop.
type daemon struct {
	cfg   config
	s     *stack
	out   io.Writer
	plans *planstore.Store // immutable, shared across promote/demote cycles

	handler *swapHandler
	el      *election.Elector
	st      *store.Store
	mon     *monitor.Monitor
	m       *medic.Medic
	fenced  chan struct{}
}

func (d *daemon) detectorConfig() monitor.Config {
	return monitor.Config{
		Interval:  d.cfg.interval,
		Jitter:    d.cfg.jitter,
		Timeout:   d.cfg.timeout,
		Threshold: d.cfg.threshold,
		Debounce:  d.cfg.debounce,
		Seed:      d.cfg.seed,
	}
}

// promote runs the leader takeover sequence: open the store under the
// lease guard, replay it into a medic (the epoch bump fences the dead
// leader), stamp the new epoch's generation floor onto the agents, hand
// the restored failure set to a fresh detector, start reconciling, and
// swap in the leader HTTP surface.
func (d *daemon) promote(term uint64) error {
	opts := store.Options{CompactEvery: d.cfg.compactEvery}
	if d.el != nil {
		opts.Guard = d.el.Check
	}
	var err error
	if d.cfg.stateDir != "" {
		if d.st, err = store.Open(d.cfg.stateDir, opts); err != nil {
			return err
		}
	}
	d.m, err = medic.New(medic.Config{
		Dep:       d.s.dep,
		Flows:     d.s.flows,
		Addrs:     d.s.addrs,
		Net:       d.s.network,
		Push:      sdnsim.PushOptions{Seed: d.cfg.seed},
		Store:     d.st,
		Plans:     d.plans,
		ReplicaID: d.cfg.replicaID,
		OnFenced: func() {
			select {
			case d.fenced <- struct{}{}:
			default:
			}
		},
	})
	if err != nil {
		if d.st != nil {
			_ = d.st.Close()
			d.st = nil
		}
		return err
	}
	d.m.SetRole("leader", term)
	if gen := d.m.FenceGen(); gen > 0 {
		fenced, _, err := sdnsim.FenceAgents(d.s.addrs, gen, sdnsim.PushOptions{Seed: d.cfg.seed})
		if err != nil {
			// Unreachable agents are demoted later by the push path; a fenced
			// sweep error only means this replica is itself stale.
			fmt.Fprintf(d.out, "pmedicd: fencing sweep at generation %d: %d fenced, %v\n", gen, fenced, err)
		} else {
			fmt.Fprintf(d.out, "pmedicd: fenced %d agents at generation %d\n", fenced, gen)
		}
	}
	d.mon = monitor.New(d.s.targets, d.detectorConfig())
	if restored := d.m.Status().Failed; len(restored) > 0 {
		d.mon.MarkDown(restored...)
		fmt.Fprintf(d.out, "pmedicd: detector handoff: controllers %v restored as down\n", restored)
	}
	d.mon.Start()
	d.m.Start(d.mon.Events())
	d.handler.Set(medic.Handler(d.m, d.mon))
	fmt.Fprintf(d.out, "pmedicd: %s leading at term %d, epoch %d\n", d.cfg.replicaID, term, d.m.Epoch())
	return nil
}

// demote tears the leader pipeline down: stop probing, drain the reconcile
// loop, flush the WAL into a checkpoint (graceful only), release the
// store, and fall back to the follower HTTP surface.
func (d *daemon) demote(graceful bool) {
	if d.cfg.stateDir != "" {
		d.handler.Set(followerHandler(d.cfg.stateDir, d.cfg.replicaID))
	}
	if d.mon != nil {
		d.mon.Stop()
		d.mon = nil
	}
	if d.m != nil {
		d.m.Stop()
		if graceful {
			if err := d.m.FlushState(); err != nil {
				fmt.Fprintf(d.out, "pmedicd: flush on shutdown: %v\n", err)
			}
		}
		d.m = nil
	}
	if d.st != nil {
		_ = d.st.Close()
		d.st = nil
	}
}

func run(args []string, out io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}

	s, err := buildStack()
	if err != nil {
		return err
	}
	defer s.close()
	for _, j := range cfg.kill {
		if j < 0 || j >= len(s.network.Controllers) {
			return fmt.Errorf("-kill: controller %d out of range [0,%d)", j, len(s.network.Controllers))
		}
	}

	d := &daemon{cfg: cfg, s: s, out: out, handler: &swapHandler{}, fenced: make(chan struct{}, 1)}
	if cfg.planStore != "" {
		// The store is read-only and immutable: open it once, validate it
		// against this deployment up front, and share it across every
		// promote/demote cycle. A mismatched store is an operator error —
		// refusing to boot beats silently solving from scratch.
		ps, err := planstore.Open(cfg.planStore)
		if err != nil {
			return err
		}
		defer ps.Close()
		if got, want := ps.Header().TopoHash, planstore.TopoHash(s.dep, s.flows); got != want {
			return fmt.Errorf("plan store %s: topology hash %#x does not match this deployment (%#x); recompile with pmstore", cfg.planStore, got, want)
		}
		d.plans = ps
	}

	fmt.Fprintf(out, "pmedicd: ATT: %d switches (agents up), %d controllers (echo endpoints up)\n",
		len(s.network.Switches), len(s.network.Controllers))
	for j := range s.network.Controllers {
		fmt.Fprintf(out, "  controller %d: site %d, probe endpoint %s\n",
			j, s.dep.Controllers[j].Site, s.echos[j].Addr())
	}
	fmt.Fprintf(out, "  detector: interval=%v threshold=%d\n", cfg.interval, cfg.threshold)
	if d.plans != nil {
		h := d.plans.Header()
		fmt.Fprintf(out, "  plan store: %s: %d plans up to depth %d (%s, M=%d, topo %#x)\n",
			cfg.planStore, d.plans.Len(), h.Depth, h.Algorithm, h.NumControllers, h.TopoHash)
	}
	if cfg.stateDir != "" {
		fmt.Fprintf(out, "  HA: replica %s, state dir %s, lease TTL %v, peers %v\n",
			cfg.replicaID, cfg.stateDir, cfg.leaseTTL, cfg.peers)
	}

	d.handler.Set(followerHandler(cfg.stateDir, cfg.replicaID))

	if cfg.dryRun {
		if cfg.stateDir != "" {
			st, err := store.Open(cfg.stateDir, store.Options{CompactEvery: cfg.compactEvery})
			if err != nil {
				return err
			}
			_ = st.Close()
		}
		fmt.Fprintln(out, "pmedicd: dry run, exiting")
		return nil
	}

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: d.handler}
	httpErr := make(chan error, 1)
	go func() { httpErr <- srv.Serve(ln) }()
	fmt.Fprintf(out, "pmedicd: status at http://%s/status\n", ln.Addr())

	// Standalone mode leads unconditionally; HA mode leads only on
	// election, and every transition flows through the channels.
	electedC := make(chan uint64, 1)
	deposedC := make(chan struct{}, 1)
	if cfg.stateDir == "" {
		if err := d.promote(0); err != nil {
			return err
		}
	} else {
		d.el, err = election.New(election.Config{
			Dir:  cfg.stateDir,
			ID:   cfg.replicaID,
			TTL:  cfg.leaseTTL,
			Seed: cfg.seed,
			OnElected: func(term uint64) {
				select {
				case electedC <- term:
				default:
				}
			},
			OnDeposed: func() {
				select {
				case deposedC <- struct{}{}:
				default:
				}
			},
		})
		if err != nil {
			return err
		}
		d.el.Start()
		fmt.Fprintf(out, "pmedicd: %s campaigning for the lease in %s\n", cfg.replicaID, cfg.stateDir)
	}

	// The optional chaos script: kill, then maybe revive.
	var killC, reviveC <-chan time.Time
	if len(cfg.kill) > 0 {
		kt := time.NewTimer(cfg.killAfter)
		defer kt.Stop()
		killC = kt.C
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var runC <-chan time.Time
	if cfg.runFor > 0 {
		rt := time.NewTimer(cfg.runFor)
		defer rt.Stop()
		runC = rt.C
	}

	for {
		select {
		case term := <-electedC:
			if err := d.promote(term); err != nil {
				fmt.Fprintf(out, "pmedicd: promotion at term %d failed: %v\n", term, err)
				d.demote(false)
			}
		case <-deposedC:
			fmt.Fprintf(out, "pmedicd: %s deposed, stepping down\n", cfg.replicaID)
			d.demote(false)
		case <-d.fenced:
			// A push was refused by a newer generation: a newer leader owns
			// the network even if our lease view lags. Step down and resign
			// so the real leader's term advances cleanly.
			fmt.Fprintf(out, "pmedicd: %s fenced on the wire, stepping down\n", cfg.replicaID)
			d.demote(false)
			if d.el != nil {
				_ = d.el.Resign()
			}
		case <-killC:
			killC = nil
			fmt.Fprintf(out, "pmedicd: chaos: killing controllers %v\n", cfg.kill)
			for _, j := range cfg.kill {
				if err := s.network.StopController(j); err != nil {
					return err
				}
			}
			if cfg.reviveAfter > 0 {
				rt := time.NewTimer(cfg.reviveAfter)
				defer rt.Stop()
				reviveC = rt.C
			}
		case <-reviveC:
			reviveC = nil
			fmt.Fprintf(out, "pmedicd: chaos: reviving controllers %v\n", cfg.kill)
			for _, j := range cfg.kill {
				if err := s.network.StartController(j); err != nil && !errors.Is(err, sdnsim.ErrControllerAlive) {
					return err
				}
			}
		case sig := <-stop:
			fmt.Fprintf(out, "pmedicd: %v, shutting down\n", sig)
			return shutdown(srv, d, out)
		case <-runC:
			fmt.Fprintf(out, "pmedicd: run time elapsed, shutting down\n")
			return shutdown(srv, d, out)
		case err := <-httpErr:
			if errors.Is(err, http.ErrServerClosed) {
				return nil
			}
			return err
		}
	}
}

// shutdown is the graceful exit: drain the reconcile loop, flush the WAL
// into a checkpoint, resign the lease for an immediate handoff, close the
// HTTP server, and print the daemon's final state. It returns nil — the
// exit-0 contract of SIGINT/SIGTERM.
func shutdown(srv *http.Server, d *daemon, out io.Writer) error {
	var final *medic.Status
	if d.m != nil {
		st := d.m.Status()
		final = &st
	}
	d.demote(true)
	if d.el != nil {
		if err := d.el.Resign(); err != nil {
			fmt.Fprintf(out, "pmedicd: resign: %v\n", err)
		}
		d.el.Stop()
	}
	_ = srv.Close()
	if final == nil {
		fmt.Fprintln(out, "pmedicd: shut down as follower")
		return nil
	}
	raw, err := json.MarshalIndent(final, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "pmedicd: final state:\n%s\n", raw)
	return nil
}
