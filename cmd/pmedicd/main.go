// Command pmedicd runs the online recovery daemon over a simulated SD-WAN:
// it boots the ATT deployment with an openflow agent per switch and an echo
// liveness endpoint per controller, starts the heartbeat failure detector
// (internal/monitor) and the event-driven recovery orchestrator
// (internal/medic), and serves the daemon's state over HTTP.
//
// Controller failures are injected either externally (the status endpoint
// tells you where the echo endpoints listen) or with the built-in chaos
// script: -kill fails a controller set after -kill-after, and -revive-after
// brings it back, demonstrating the full detect → re-plan → push →
// fail-back cycle.
//
// Usage:
//
//	pmedicd [-listen 127.0.0.1:8080] [-interval 500ms] [-timeout 0]
//	        [-threshold 3] [-debounce 0] [-jitter 0] [-seed 1]
//	        [-kill 3,4] [-kill-after 5s] [-revive-after 10s]
//	        [-run-for 0] [-dry-run]
//
// Durations given as 0 pick the detector's defaults (timeout = interval,
// jitter = interval/4, debounce = 2×interval). -run-for 0 runs until
// interrupted. -dry-run builds the whole stack, prints the wiring, and
// exits without serving — the CI smoke mode.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pmedic/internal/flow"
	"pmedic/internal/medic"
	"pmedic/internal/monitor"
	"pmedic/internal/openflow"
	"pmedic/internal/sdnsim"
	"pmedic/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pmedicd:", err)
		os.Exit(1)
	}
}

type config struct {
	listen      string
	interval    time.Duration
	timeout     time.Duration
	threshold   int
	debounce    time.Duration
	jitter      time.Duration
	seed        int64
	kill        []int
	killAfter   time.Duration
	reviveAfter time.Duration
	runFor      time.Duration
	dryRun      bool
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("pmedicd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8080", "HTTP status listen address")
	interval := fs.Duration("interval", 500*time.Millisecond, "probe interval per controller")
	timeout := fs.Duration("timeout", 0, "per-probe timeout (0 = interval)")
	threshold := fs.Int("threshold", 3, "consecutive misses before a controller is declared down")
	debounce := fs.Duration("debounce", 0, "failure-coalescing window (0 = 2×interval)")
	jitter := fs.Duration("jitter", 0, "probe schedule jitter (0 = interval/4)")
	seed := fs.Int64("seed", 1, "seed for probe schedules and push retry jitter")
	kill := fs.String("kill", "", "comma-separated controller indices the chaos script kills")
	killAfter := fs.Duration("kill-after", 5*time.Second, "delay before the chaos kill")
	reviveAfter := fs.Duration("revive-after", 10*time.Second, "delay before the killed controllers return (0 = never)")
	runFor := fs.Duration("run-for", 0, "total run time (0 = until interrupted)")
	dryRun := fs.Bool("dry-run", false, "build the stack, print the wiring, and exit")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	cfg := config{
		listen:      *listen,
		interval:    *interval,
		timeout:     *timeout,
		threshold:   *threshold,
		debounce:    *debounce,
		jitter:      *jitter,
		seed:        *seed,
		killAfter:   *killAfter,
		reviveAfter: *reviveAfter,
		runFor:      *runFor,
		dryRun:      *dryRun,
	}
	if *kill != "" {
		for _, part := range strings.Split(*kill, ",") {
			j, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return config{}, fmt.Errorf("-kill: %w", err)
			}
			cfg.kill = append(cfg.kill, j)
		}
	}
	return cfg, nil
}

func run(args []string, out io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}

	dep, err := topo.ATT()
	if err != nil {
		return err
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{})
	if err != nil {
		return err
	}
	network, err := sdnsim.New(dep, flows)
	if err != nil {
		return err
	}
	for _, j := range cfg.kill {
		if j < 0 || j >= len(network.Controllers) {
			return fmt.Errorf("-kill: controller %d out of range [0,%d)", j, len(network.Controllers))
		}
	}

	// One openflow agent per switch.
	agents := make(map[topo.NodeID]*sdnsim.Agent, len(network.Switches))
	defer func() {
		for _, a := range agents {
			_ = a.Close()
		}
	}()
	for _, sw := range network.Switches {
		a, err := sdnsim.ServeSwitch(sw, "127.0.0.1:0")
		if err != nil {
			return err
		}
		agents[sw.ID] = a
	}

	// One echo liveness endpoint per controller, wired to the lifecycle hook.
	echos := make([]*openflow.EchoServer, len(network.Controllers))
	defer func() {
		for _, es := range echos {
			if es != nil {
				_ = es.Close()
			}
		}
	}()
	for j := range network.Controllers {
		es, err := openflow.ServeEcho("127.0.0.1:0")
		if err != nil {
			return err
		}
		echos[j] = es
	}
	network.OnControllerChange = func(j int, alive bool) { echos[j].SetAlive(alive) }

	targets := make([]monitor.Target, len(network.Controllers))
	for j := range network.Controllers {
		targets[j] = monitor.Target{ID: j, Name: fmt.Sprintf("controller-%d", j), Addr: echos[j].Addr()}
	}
	mon := monitor.New(targets, monitor.Config{
		Interval:  cfg.interval,
		Jitter:    cfg.jitter,
		Timeout:   cfg.timeout,
		Threshold: cfg.threshold,
		Debounce:  cfg.debounce,
		Seed:      cfg.seed,
	})

	m, err := medic.New(medic.Config{
		Dep:   dep,
		Flows: flows,
		Addrs: sdnsim.AgentAddrs(agents),
		Net:   network,
		Push:  sdnsim.PushOptions{Seed: cfg.seed},
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "pmedicd: ATT: %d switches (agents up), %d controllers (echo endpoints up)\n",
		len(network.Switches), len(network.Controllers))
	for j := range network.Controllers {
		fmt.Fprintf(out, "  controller %d: site %d, probe endpoint %s\n",
			j, dep.Controllers[j].Site, echos[j].Addr())
	}
	fmt.Fprintf(out, "  detector: interval=%v threshold=%d\n", cfg.interval, cfg.threshold)

	if cfg.dryRun {
		fmt.Fprintln(out, "pmedicd: dry run, exiting")
		return nil
	}

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: medic.Handler(m, mon)}
	httpErr := make(chan error, 1)
	go func() { httpErr <- srv.Serve(ln) }()
	fmt.Fprintf(out, "pmedicd: status at http://%s/status\n", ln.Addr())

	mon.Start()
	m.Start(mon.Events())
	defer m.Stop()
	defer mon.Stop()

	// The optional chaos script: kill, then maybe revive.
	var killC, reviveC <-chan time.Time
	if len(cfg.kill) > 0 {
		kt := time.NewTimer(cfg.killAfter)
		defer kt.Stop()
		killC = kt.C
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var runC <-chan time.Time
	if cfg.runFor > 0 {
		rt := time.NewTimer(cfg.runFor)
		defer rt.Stop()
		runC = rt.C
	}

	for {
		select {
		case <-killC:
			killC = nil
			fmt.Fprintf(out, "pmedicd: chaos: killing controllers %v\n", cfg.kill)
			for _, j := range cfg.kill {
				if err := network.StopController(j); err != nil {
					return err
				}
			}
			if cfg.reviveAfter > 0 {
				rt := time.NewTimer(cfg.reviveAfter)
				defer rt.Stop()
				reviveC = rt.C
			}
		case <-reviveC:
			reviveC = nil
			fmt.Fprintf(out, "pmedicd: chaos: reviving controllers %v\n", cfg.kill)
			for _, j := range cfg.kill {
				if err := network.StartController(j); err != nil && !errors.Is(err, sdnsim.ErrControllerAlive) {
					return err
				}
			}
		case sig := <-stop:
			fmt.Fprintf(out, "pmedicd: %v, shutting down\n", sig)
			return shutdown(srv, m, out)
		case <-runC:
			fmt.Fprintf(out, "pmedicd: run time elapsed, shutting down\n")
			return shutdown(srv, m, out)
		case err := <-httpErr:
			if errors.Is(err, http.ErrServerClosed) {
				return nil
			}
			return err
		}
	}
}

// shutdown closes the HTTP server and prints the daemon's final state.
func shutdown(srv *http.Server, m *medic.Medic, out io.Writer) error {
	_ = srv.Close()
	st := m.Status()
	raw, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "pmedicd: final state:\n%s\n", raw)
	return nil
}
