// Command pmsolve solves one failure case and emits the result as JSON:
// the switch→controller mapping, per-flow modes, and the paper's metrics.
// It is the scriptable entry point for driving the library from other
// tooling.
//
// Usage:
//
//	pmsolve -failed 13,16 [-algorithm pm|retroflow|pg|optimal|hier]
//	        [-opt-time 60s] [-opt-workers n] [-regions k] [-improve-rounds n]
//	        [-unordered] [-slack n] [-limit n]
//	        [-pretty] [-cpuprofile f] [-memprofile f]
//
// The -failed list names controllers by their site IDs as printed by pmtopo
// (e.g. "13,16" is the paper-style case (13, 16)).
//
// -algorithm hier runs the hierarchical region-sharded PM (internal/region):
// -regions picks the region count, -improve-rounds bounds its anytime
// improver.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"pmedic/internal/core"
	"pmedic/internal/flow"
	"pmedic/internal/opt"
	"pmedic/internal/prof"
	"pmedic/internal/region"
	"pmedic/internal/scenario"
	"pmedic/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pmsolve:", err)
		os.Exit(1)
	}
}

// output is the JSON document pmsolve emits.
type output struct {
	Case        string         `json:"case"`
	Algorithm   string         `json:"algorithm"`
	NoResult    bool           `json:"noResult,omitempty"`
	Reason      string         `json:"reason,omitempty"`
	Metrics     *metrics       `json:"metrics,omitempty"`
	Mapping     []mappingEntry `json:"mapping,omitempty"`
	SDNFlows    []sdnFlowEntry `json:"sdnFlows,omitempty"`
	Sensitivity *sensitivity   `json:"sensitivity,omitempty"`
}

// sensitivity carries the LP-relaxation shadow prices (-sensitivity flag):
// which surviving controller's capacity, or the delay budget, bottlenecks
// the recovery.
type sensitivity struct {
	// CapacityPrice maps controller site -> shadow price.
	CapacityPrice map[string]float64 `json:"capacityPrice"`
	BudgetPrice   float64            `json:"budgetPrice"`
	UpperBound    float64            `json:"relaxationObjective"`
}

type metrics struct {
	MinProgrammability   int     `json:"minProgrammability"`
	TotalProgrammability int     `json:"totalProgrammability"`
	RecoveredFlows       int     `json:"recoveredFlows"`
	OfflineFlows         int     `json:"offlineFlows"`
	UnrecoverableFlows   int     `json:"unrecoverableFlows"`
	RecoveredSwitches    int     `json:"recoveredSwitches"`
	OfflineSwitches      int     `json:"offlineSwitches"`
	OverheadMs           float64 `json:"overheadMs"`
	PerFlowOverheadMs    float64 `json:"perFlowOverheadMs"`
	BudgetMs             float64 `json:"budgetMs"`
	WithinBudget         bool    `json:"withinBudget"`
	RuntimeMicros        int64   `json:"runtimeMicros"`
}

type mappingEntry struct {
	Switch     int `json:"switch"`
	Controller int `json:"controller"` // controller site, -1 = legacy
}

type sdnFlowEntry struct {
	Switch int   `json:"switch"`
	Flows  []int `json:"flows"`
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("pmsolve", flag.ContinueOnError)
	failedFlag := fs.String("failed", "", "comma-separated failed controller site IDs, e.g. 13,16")
	algFlag := fs.String("algorithm", "pm", "pm, retroflow, pg, optimal, or hier")
	optTime := fs.Duration("opt-time", 60*time.Second, "time budget for -algorithm optimal")
	optWorkers := fs.Int("opt-workers", 0, "branch & bound worker goroutines for -algorithm optimal (0 = 1)")
	regionsFlag := fs.Int("regions", 2, "region count for -algorithm hier")
	improveRounds := fs.Int("improve-rounds", 0, "anytime improver rounds for -algorithm hier (0 = off)")
	unordered := fs.Bool("unordered", false, "one flow per unordered pair")
	slack := fs.Int("slack", 0, "path-count hop slack (0 = default)")
	limit := fs.Int("limit", 0, "path-count cap (0 = default)")
	pretty := fs.Bool("pretty", false, "indent the JSON output")
	withSensitivity := fs.Bool("sensitivity", false, "include LP-relaxation shadow prices")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *failedFlag == "" {
		return errors.New("-failed is required (site IDs, e.g. -failed 13,16)")
	}
	stop, perr := prof.Start(*cpuProfile, *memProfile)
	if perr != nil {
		return perr
	}
	defer func() {
		if serr := stop(); serr != nil && err == nil {
			err = serr
		}
	}()

	dep, err := topo.ATT()
	if err != nil {
		return err
	}
	failed, err := parseFailed(dep, *failedFlag)
	if err != nil {
		return err
	}
	flows, err := flow.Generate(dep.Graph, flow.Options{Unordered: *unordered, Slack: *slack, Limit: *limit})
	if err != nil {
		return err
	}
	sctx, err := scenario.NewContext(dep, flows)
	if err != nil {
		return err
	}
	inst, err := sctx.Build(failed)
	if err != nil {
		return err
	}

	doc := output{Case: inst.Label(), Algorithm: strings.ToLower(*algFlag)}
	var sol *core.Solution
	switch doc.Algorithm {
	case "pm":
		sol, err = core.PM(inst.Problem)
	case "retroflow":
		sol, err = core.RetroFlow(inst.Problem)
	case "pg":
		sol, err = core.PG(inst.Problem)
	case "hier":
		var part *region.Partition
		if part, err = region.New(dep, *regionsFlag, 1); err != nil {
			return err
		}
		sol, err = region.SolvePM(inst, part, region.SolveOptions{ImproveRounds: *improveRounds})
	case "optimal":
		var warm *core.Solution
		if warm, err = core.PM(inst.Problem); err != nil {
			warm = nil
		}
		sol, err = opt.Solve(inst.Problem, opt.Options{TimeLimit: *optTime, Workers: *optWorkers, Warm: warm})
		if errors.Is(err, opt.ErrNoSolution) {
			doc.NoResult = true
			doc.Reason = err.Error()
			return emit(out, doc, *pretty)
		}
	default:
		return fmt.Errorf("unknown algorithm %q", *algFlag)
	}
	if err != nil {
		return err
	}
	rep, err := inst.Evaluate(sol)
	if err != nil {
		return err
	}
	fill(&doc, inst, sol, rep)
	if *withSensitivity {
		s, err := opt.Sensitivities(inst.Problem)
		if err == nil {
			doc.Sensitivity = &sensitivity{
				CapacityPrice: make(map[string]float64, len(s.CapacityPrice)),
				BudgetPrice:   s.BudgetPrice,
				UpperBound:    s.Objective,
			}
			for jj, price := range s.CapacityPrice {
				site := strconv.Itoa(int(dep.Controllers[inst.Active[jj]].Site))
				doc.Sensitivity.CapacityPrice[site] = price
			}
		}
	}
	return emit(out, doc, *pretty)
}

func parseFailed(dep *topo.Deployment, s string) ([]int, error) {
	var failed []int
	for _, part := range strings.Split(s, ",") {
		site, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad site id %q: %w", part, err)
		}
		idx := -1
		for j, c := range dep.Controllers {
			if int(c.Site) == site {
				idx = j
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("no controller at site %d", site)
		}
		failed = append(failed, idx)
	}
	return failed, nil
}

func fill(doc *output, inst *scenario.Instance, sol *core.Solution, rep *core.Report) {
	p := inst.Problem
	doc.Metrics = &metrics{
		MinProgrammability:   rep.MinProg,
		TotalProgrammability: rep.TotalProg,
		RecoveredFlows:       rep.RecoveredFlows,
		OfflineFlows:         p.NumFlows,
		UnrecoverableFlows:   len(inst.Unrecoverable),
		RecoveredSwitches:    rep.RecoveredSwitches,
		OfflineSwitches:      len(inst.Switches),
		OverheadMs:           rep.OverheadMs,
		PerFlowOverheadMs:    rep.PerFlowOverheadMs,
		BudgetMs:             p.BudgetMs,
		WithinBudget:         rep.WithinBudget,
		RuntimeMicros:        rep.Runtime.Microseconds(),
	}
	for i, sw := range inst.Switches {
		site := -1
		if jj := sol.SwitchController[i]; jj >= 0 {
			site = int(inst.Dep.Controllers[inst.Active[jj]].Site)
		}
		doc.Mapping = append(doc.Mapping, mappingEntry{Switch: int(sw), Controller: site})
	}
	perSwitch := make(map[int][]int)
	for k, on := range sol.Active {
		if !on {
			continue
		}
		pr := p.Pairs[k]
		sw := int(inst.Switches[pr.Switch])
		perSwitch[sw] = append(perSwitch[sw], int(inst.FlowIDs[pr.Flow]))
	}
	for _, sw := range inst.Switches {
		if flows := perSwitch[int(sw)]; flows != nil {
			doc.SDNFlows = append(doc.SDNFlows, sdnFlowEntry{Switch: int(sw), Flows: flows})
		}
	}
}

func emit(w io.Writer, doc output, pretty bool) error {
	enc := json.NewEncoder(w)
	if pretty {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(doc)
}
